// Jacobi heat-diffusion stencil — a second DPS application demonstrating
// the neighbourhood-exchange communication pattern of paper §2 ("relative
// thread indices") and the simulator's what-if capabilities on a
// communication pattern very different from the LU factorization.
//
//   $ ./examples/jacobi_stencil --rows=2880 --cols=2880 --sweeps=50
#include <cstdio>
#include <iostream>

#include "core/engine.hpp"
#include "jacobi/app.hpp"
#include "jacobi/objects.hpp"
#include "net/profile.hpp"
#include "runtime/engine.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace dps;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  jacobi::JacobiConfig cfg;
  cfg.rows = static_cast<std::int32_t>(cli.integer("rows", 2880, "grid rows"));
  cfg.cols = static_cast<std::int32_t>(cli.integer("cols", 2880, "grid cols"));
  cfg.sweeps = static_cast<std::int32_t>(cli.integer("sweeps", 50, "relaxation sweeps"));
  if (cli.helpRequested()) {
    std::printf("%s", cli.helpText().c_str());
    return 0;
  }
  cli.finish();

  const jacobi::JacobiCostModel model;

  // --- predicted strong scaling on the 2006 reference platform -----------
  Table t("Predicted strong scaling (UltraSparc-440 / Fast Ethernet)");
  t.header({"workers", "predicted [s]", "speedup", "efficiency", "network MB"});
  double serial = 0;
  for (std::int32_t w : {2, 4, 6, 8, 12, 16}) {
    if (cfg.rows % w != 0) continue;
    auto c = cfg;
    c.workers = w;
    core::SimConfig sc;
    sc.profile = net::ultraSparc440();
    sc.mode = core::ExecutionMode::Pdexec;
    sc.allocatePayloads = false;
    core::SimEngine engine(sc);
    auto build = jacobi::buildJacobi(c, model, false);
    auto result = jacobi::runJacobi(engine, build);
    const double secs = toSeconds(result.makespan);
    if (serial == 0)
      serial = secs * 2; // 2-worker run approximates serial/1 x2 for speedup base
    t.row({std::to_string(w), Table::num(secs, 2), Table::num(serial / secs, 2),
           Table::pct(serial / secs / w, 0),
           Table::num(static_cast<double>(result.counters.networkBytes) / 1048576.0, 1)});
  }
  t.print(std::cout);
  std::printf("\nNote the scaling wall: each sweep is two master barriers, so the\n"
              "latency-bound exchange phase grows with workers while compute shrinks.\n\n");

  // --- run a small instance for real and verify ---------------------------
  jacobi::JacobiConfig smallCfg;
  smallCfg.rows = 64;
  smallCfg.cols = 64;
  smallCfg.sweeps = 20;
  smallCfg.workers = 4;
  auto build = jacobi::buildJacobi(smallCfg, model, true);
  rt::RuntimeEngine runtime;
  auto real = runtime.run(jacobi::makeProgram(build));
  const auto& res = dynamic_cast<const jacobi::JacobiResult&>(*real.outputs.at(0));
  const double diff = jacobi::verifyJacobi(smallCfg, real, build.workers);
  std::printf("real run (64x64, 20 sweeps, 4 strips on OS threads): final residual %.3e,\n"
              "max deviation from the serial reference: %.1e (bit-exact expected)\n",
              res.residual, diff);
  return diff == 0.0 ? 0 : 1;
}
