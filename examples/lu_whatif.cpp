// What-if studies with the simulator as an optimization tool (paper §4:
// "One may modify the bandwidth and latency parameters to evaluate the
// benefits of a faster network, or reduce the duration of various
// operations to identify the ones that should be optimized").
//
//   $ ./examples/lu_whatif --n=2592 --r=216 --workers=8
#include <cstdio>
#include <iostream>

#include "core/engine.hpp"
#include "lu/app.hpp"
#include "lu/builder.hpp"
#include "net/profile.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace dps;

namespace {

double predict(const lu::LuConfig& cfg, const lu::KernelCostModel& model,
               net::PlatformProfile profile) {
  core::SimConfig sc;
  sc.profile = std::move(profile);
  sc.mode = core::ExecutionMode::Pdexec;
  sc.allocatePayloads = false;
  sc.recordTrace = false;
  core::SimEngine engine(sc);
  lu::LuBuild build = lu::buildLu(cfg, model, false);
  return toSeconds(lu::runLu(engine, build).makespan);
}

} // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  lu::LuConfig cfg;
  cfg.n = static_cast<std::int32_t>(cli.integer("n", 2592, "matrix dimension"));
  cfg.r = static_cast<std::int32_t>(cli.integer("r", 216, "block size"));
  cfg.workers = static_cast<std::int32_t>(cli.integer("workers", 8, "compute nodes"));
  cfg.pipelined = cli.flag("pipelined", "use the pipelined flow graph");
  if (cli.helpRequested()) {
    std::printf("%s", cli.helpText().c_str());
    return 0;
  }
  cli.finish();

  const auto model = lu::KernelCostModel::ultraSparc440();
  const auto base = net::ultraSparc440();
  const double baseline = predict(cfg, model, base);
  std::printf("LU %dx%d, r=%d, %s graph on %d nodes\n", cfg.n, cfg.n, cfg.r,
              cfg.variantName().c_str(), cfg.workers);
  std::printf("baseline prediction on %s: %.1fs\n\n", base.name.c_str(), baseline);

  // --- what if the network were faster? ----------------------------------
  Table net("What if the network changed?");
  net.header({"network", "predicted [s]", "speedup"});
  {
    auto p = base;
    net.row({"Fast Ethernet (baseline)", Table::num(baseline, 1), "1.00"});
    p.bandwidthBytesPerSec *= 10;
    const double t = predict(cfg, model, p);
    net.row({"10x bandwidth", Table::num(t, 1), Table::num(baseline / t, 2)});
    p.latency = microseconds(10);
    const double t2 = predict(cfg, model, p);
    net.row({"10x bandwidth + 12us latency", Table::num(t2, 1), Table::num(baseline / t2, 2)});
    auto gig = net::commodityGigabit();
    gig.computeScale = 1.0; // same CPUs, modern network
    const double t3 = predict(cfg, model, gig);
    net.row({"commodity gigabit", Table::num(t3, 1), Table::num(baseline / t3, 2)});
  }
  net.print(std::cout);

  // --- which kernel should we optimize? ----------------------------------
  Table k("\nWhat if one kernel were 2x faster?");
  k.header({"kernel sped up 2x", "predicted [s]", "speedup"});
  {
    auto m = model;
    m.gemmFlopsPerSec *= 2;
    const double t = predict(cfg, m, base);
    k.row({"block multiplication (gemm)", Table::num(t, 1), Table::num(baseline / t, 2)});
  }
  {
    auto m = model;
    m.panelFlopsPerSec *= 2;
    const double t = predict(cfg, m, base);
    k.row({"panel LU factorization", Table::num(t, 1), Table::num(baseline / t, 2)});
  }
  {
    auto m = model;
    m.trsmFlopsPerSec *= 2;
    const double t = predict(cfg, m, base);
    k.row({"triangular solve (trsm)", Table::num(t, 1), Table::num(baseline / t, 2)});
  }
  k.print(std::cout);

  // --- how many nodes are worth allocating? -------------------------------
  Table s("\nScaling: nodes vs predicted time");
  s.header({"nodes", "predicted [s]", "speedup", "efficiency"});
  const double serial = [&] {
    auto c = cfg;
    c.workers = 1;
    return predict(c, model, base);
  }();
  for (std::int32_t w : {1, 2, 4, 8, 12, 16}) {
    auto c = cfg;
    c.workers = w;
    const double t = predict(c, model, base);
    s.row({std::to_string(w), Table::num(t, 1), Table::num(serial / t, 2),
           Table::pct(serial / t / w, 0)});
  }
  s.print(std::cout);
  std::printf("\nAll numbers are pure predictions: no kernel was executed (PDEXEC+NOALLOC).\n");
  return 0;
}
