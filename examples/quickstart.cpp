// Quickstart: the paper's Fig. 1 flow graph — split, parallel compute,
// merge — written once and executed twice:
//   1. on the discrete-event simulator (predicting its running time on an
//      8-node Fast-Ethernet cluster of 2006-era workstations), and
//   2. on the OS-thread runtime engine (actually computing the result).
//
//   $ ./examples/quickstart --jobs=32 --workers=8
#include <cstdio>
#include <iostream>
#include <memory>

#include "core/engine.hpp"
#include "flow/graph.hpp"
#include "flow/ops.hpp"
#include "flow/routing.hpp"
#include "net/profile.hpp"
#include "runtime/engine.hpp"
#include "support/cli.hpp"
#include "trace/gantt.hpp"

using namespace dps;

namespace {

// ---- data objects -------------------------------------------------------

struct WorkItem final : serial::Object<WorkItem> {
  static constexpr const char* kTypeName = "quickstart.work";
  std::int64_t index = 0;
  std::vector<double> samples; // payload whose size drives transfer costs
  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, index, samples);
  }
};

struct Result final : serial::Object<Result> {
  static constexpr const char* kTypeName = "quickstart.result";
  std::int64_t index = 0;
  double mean = 0;
  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, index, mean);
  }
};

struct Report final : serial::Object<Report> {
  static constexpr const char* kTypeName = "quickstart.report";
  double grandMean = 0;
  std::int64_t count = 0;
  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, grandMean, count);
  }
};

// ---- operations ---------------------------------------------------------

/// Split: generate `jobs` work items (paper: "divide the incoming data
/// objects into smaller objects representing subtasks").
class Generate final : public flow::QueueEmitter {
public:
  Generate(std::int32_t jobs, std::int32_t samplesPerJob)
      : jobs_(jobs), samples_(samplesPerJob) {}
  void onInput(flow::OpContext& ctx, const serial::ObjectBase&) override {
    for (std::int32_t j = 0; j < jobs_; ++j) {
      auto item = std::make_shared<WorkItem>();
      item->index = j;
      if (ctx.allocatePayloads()) {
        item->samples.resize(samples_);
        for (auto& s : item->samples) s = ctx.rng().uniform();
      } else {
        item->samples.resize(samples_); // quickstart always allocates
      }
      // Generating one item costs ~50 us of master CPU in the model.
      enqueue(std::move(item), 0, microseconds(50));
    }
  }

private:
  std::int32_t jobs_;
  std::int32_t samples_;
};

/// Leaf: numeric work on the payload.  ctx.kernel() runs the real loop
/// under direct execution and charges the modeled duration under PDEXEC.
class Analyze final : public flow::Operation {
public:
  void onInput(flow::OpContext& ctx, const serial::ObjectBase& in) override {
    const auto& item = dynamic_cast<const WorkItem&>(in);
    auto out = std::make_shared<Result>();
    out->index = item.index;
    // Model: ~4 ns per sample per pass on the 2006 reference machine.
    const auto modeled = scale(microseconds(4), static_cast<double>(item.samples.size()) / 1000.0);
    ctx.kernel(scale(modeled, 1000.0), [&] {
      double acc = 0;
      for (int pass = 0; pass < 1000; ++pass)
        for (double s : item.samples) acc += s * 1.0000001;
      out->mean = acc / (1000.0 * static_cast<double>(item.samples.size()));
    });
    ctx.post(std::move(out));
  }
};

/// Merge: aggregate results into one report.
class Aggregate final : public flow::Operation {
public:
  void onInput(flow::OpContext& ctx, const serial::ObjectBase& in) override {
    ctx.charge(microseconds(20));
    sum_ += dynamic_cast<const Result&>(in).mean;
    ++count_;
  }
  void onAllInputsDone(flow::OpContext& ctx) override {
    auto report = std::make_shared<Report>();
    report->count = count_;
    report->grandMean = count_ ? sum_ / static_cast<double>(count_) : 0.0;
    ctx.post(std::move(report));
  }

private:
  double sum_ = 0;
  std::int64_t count_ = 0;
};

} // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto jobs = static_cast<std::int32_t>(cli.integer("jobs", 32, "work items"));
  const auto workers = static_cast<std::int32_t>(cli.integer("workers", 8, "worker threads"));
  const auto samples =
      static_cast<std::int32_t>(cli.integer("samples", 20000, "doubles per item"));
  if (cli.helpRequested()) {
    std::printf("%s", cli.helpText().c_str());
    return 0;
  }
  cli.finish();

  // --- build the flow graph (paper Fig. 1) -------------------------------
  flow::FlowGraph graph;
  const auto master = graph.addGroup("master");
  const auto pool = graph.addGroup("pool");
  const auto split = graph.addSplit("generate", master, flow::makeOp<Generate>(jobs, samples));
  const auto leaf = graph.addLeaf("analyze", pool, flow::makeOp<Analyze>());
  const auto merge = graph.addMerge("aggregate", master, flow::makeOp<Aggregate>());
  graph.setEntry(split);
  graph.connect(split, 0, leaf, flow::roundRobinActive());
  graph.pair(split, 0, merge);
  graph.connect(leaf, 0, merge, flow::routeTo(0));
  graph.connectOutput(merge, 0);

  flow::Program program;
  program.graph = &graph;
  // Master on node 0, workers on nodes 1..workers.
  program.deployment.nodeCount = workers + 1;
  program.deployment.groupNodes.resize(2);
  program.deployment.groupNodes[master] = {0};
  for (std::int32_t w = 0; w < workers; ++w)
    program.deployment.groupNodes[pool].push_back(1 + w);
  program.inputs.push_back(std::make_shared<WorkItem>());

  // --- 1. predict on the simulator ---------------------------------------
  core::SimConfig sc;
  sc.profile = net::ultraSparc440();
  sc.mode = core::ExecutionMode::Pdexec;
  core::SimEngine sim(sc);
  auto predicted = sim.run(program);
  std::printf("predicted on %s: %s for %d jobs on %d workers\n",
              sc.profile.name.c_str(), formatDuration(predicted.makespan).c_str(), jobs,
              workers);
  std::printf("  %llu atomic steps, %llu messages, %.1f KB over the network\n",
              static_cast<unsigned long long>(predicted.counters.steps),
              static_cast<unsigned long long>(predicted.counters.messages),
              static_cast<double>(predicted.counters.networkBytes) / 1024.0);
  std::printf("\nper-node activity (predicted):\n%s\n",
              trace::renderGantt(*predicted.trace, simEpoch(),
                                 simEpoch() + predicted.makespan, 72)
                  .c_str());

  // --- 2. run for real on OS threads --------------------------------------
  rt::RuntimeEngine runtime;
  auto real = runtime.run(program);
  const auto& report = dynamic_cast<const Report&>(*real.outputs.at(0));
  std::printf("real run on %d OS threads: wall %.3fs, grand mean = %.6f over %lld items\n",
              workers + 1, real.wallSeconds, report.grandMean,
              static_cast<long long>(report.count));
  return 0;
}
