// Dynamic node allocation in action (paper §6/§8): run the LU application
// under a removal plan, watch per-iteration dynamic efficiency, allocation
// timeline and migration traffic.
//
//   $ ./examples/malleable_lu --plan=4@1            # kill 4 after iter 1
//   $ ./examples/malleable_lu --plan=2@2+2@3        # staged removal
#include <cstdio>
#include <iostream>
#include <sstream>

#include "core/engine.hpp"
#include "lu/app.hpp"
#include "malleable/controller.hpp"
#include "net/profile.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "trace/efficiency.hpp"
#include "trace/gantt.hpp"

using namespace dps;

namespace {

/// Parses "4@1" / "2@2+2@3" into a removal plan over `workers` threads
/// (threads are removed from the highest index down).
mall::AllocationPlan parsePlan(const std::string& text, std::int32_t workers) {
  mall::AllocationPlan plan;
  if (text.empty() || text == "static") return plan;
  std::int32_t nextVictim = workers - 1;
  std::stringstream ss(text);
  std::string part;
  while (std::getline(ss, part, '+')) {
    const auto at = part.find('@');
    DPS_CHECK(at != std::string::npos, "plan syntax: COUNT@ITERATION[+COUNT@ITERATION...]");
    const int count = std::stoi(part.substr(0, at));
    const int iter = std::stoi(part.substr(at + 1));
    mall::RemovalStep step;
    step.afterIteration = iter;
    for (int i = 0; i < count; ++i) step.threads.push_back(nextVictim--);
    DPS_CHECK(nextVictim >= 0, "plan removes every worker");
    plan.steps.push_back(std::move(step));
  }
  return plan;
}

} // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  lu::LuConfig cfg;
  cfg.n = static_cast<std::int32_t>(cli.integer("n", 2592, "matrix dimension"));
  cfg.r = static_cast<std::int32_t>(cli.integer("r", 324, "block size"));
  cfg.workers = static_cast<std::int32_t>(cli.integer("workers", 8, "initial nodes"));
  const std::string planText = cli.str("plan", "4@1", "removal plan, e.g. 4@1 or 2@2+2@3");
  if (cli.helpRequested()) {
    std::printf("%s", cli.helpText().c_str());
    return 0;
  }
  cli.finish();

  const auto model = lu::KernelCostModel::ultraSparc440();
  core::SimConfig sc;
  sc.profile = net::ultraSparc440();
  sc.mode = core::ExecutionMode::Pdexec;
  sc.allocatePayloads = false;

  auto runWith = [&](const mall::AllocationPlan& plan) {
    core::SimEngine engine(sc);
    lu::LuBuild build = lu::buildLu(cfg, model, false);
    mall::LuMalleabilityController controller(engine, build, plan);
    auto result = lu::runLu(engine, build);
    return std::pair{std::move(result), controller.migratedBytes()};
  };

  const auto plan = parsePlan(planText, cfg.workers);
  auto [staticRun, staticMig] = runWith(mall::AllocationPlan{});
  auto [malleableRun, migBytes] = runWith(plan);
  (void)staticMig;

  std::printf("LU %dx%d r=%d on %d nodes (%s graph) — plan: %s\n\n", cfg.n, cfg.n, cfg.r,
              cfg.workers, cfg.variantName().c_str(), plan.describe().c_str());

  // Per-iteration dynamic efficiency, static vs malleable.
  const auto effStatic = trace::dynamicEfficiency(*staticRun.trace, "iteration", simEpoch(),
                                                  simEpoch() + staticRun.makespan);
  const auto effMall = trace::dynamicEfficiency(*malleableRun.trace, "iteration", simEpoch(),
                                                simEpoch() + malleableRun.makespan);
  Table t("Dynamic efficiency per iteration");
  t.header({"iteration", "duration (static)", "eff (static)", "duration (plan)", "eff (plan)"});
  for (std::size_t i = 0; i < std::max(effStatic.size(), effMall.size()); ++i) {
    auto dur = [&](const std::vector<trace::EfficiencyPoint>& v) {
      return i < v.size() ? formatDuration(v[i].end - v[i].start) : std::string("-");
    };
    auto eff = [&](const std::vector<trace::EfficiencyPoint>& v) {
      return i < v.size() ? Table::pct(v[i].efficiency, 1) : std::string("-");
    };
    t.row({std::to_string(i + 1), dur(effStatic), eff(effStatic), dur(effMall), eff(effMall)});
  }
  t.print(std::cout);

  // Allocation timeline + headline numbers.
  std::printf("\nallocation timeline (plan run):\n");
  for (const auto& a : malleableRun.trace->allocations())
    std::printf("  t=%-12s %d nodes allocated\n",
                formatDuration(a.time.time_since_epoch()).c_str(), a.allocatedNodes);

  const double tStatic = toSeconds(staticRun.makespan);
  const double tMall = toSeconds(malleableRun.makespan);
  const double nodeSecondsStatic =
      staticRun.trace->nodeSecondsIn(simEpoch(), simEpoch() + staticRun.makespan);
  const double nodeSecondsMall =
      malleableRun.trace->nodeSecondsIn(simEpoch(), simEpoch() + malleableRun.makespan);

  std::printf("\nstatic    : %7.1fs on a constant allocation  (%.0f node-seconds)\n", tStatic,
              nodeSecondsStatic);
  std::printf("malleable : %7.1fs, %.1f MB of state migrated   (%.0f node-seconds)\n", tMall,
              static_cast<double>(migBytes) / 1048576.0, nodeSecondsMall);
  std::printf("=> %.1f%% slower, but %.1f%% fewer node-seconds for the cluster to resell\n",
              (tMall / tStatic - 1.0) * 100.0, (1.0 - nodeSecondsMall / nodeSecondsStatic) * 100.0);

  std::printf("\nper-node activity under the plan:\n%s",
              trace::renderGantt(*malleableRun.trace, simEpoch(),
                                 simEpoch() + malleableRun.makespan, 72)
                  .c_str());
  return 0;
}
