// Cluster-server study — the paper's future-work scenario (§9): "simulate
// a cluster server running concurrently multiple applications whose
// allocations of compute nodes vary dynamically over time".
//
// A queue of LU jobs arrives at a cluster.  Two admission policies:
//   * static    — every job holds its full allocation until it finishes;
//   * malleable — jobs release half their nodes after the iteration where
//     the simulator-predicted dynamic efficiency drops below a threshold,
//     so the next job can start earlier on the freed nodes.
//
// Per-iteration duration/efficiency profiles come from the DPS simulator.
// What-if queries ("release half the nodes after iteration k") are served
// through the svc::ProfileCache acquisition API on a shared simulation
// pool: every candidate shrink point is simulated concurrently
// (--pool-jobs), duplicate queries across a batch are cache hits, and the
// admission policy then just looks its answer up.  The job-level queueing
// itself runs on the same discrete-event kernel.
//
// Batch mode (--batch FILE) profiles a *heterogeneous* set of shrink
// queries concurrently on the same shared pool — one line per job, one
// result table per job.  Lines are `n=<int> r=<int> workers=<int>
// [threshold=<float>]`; blank lines and `#` comments are skipped:
//
//   $ ./examples/cluster_server --jobs=6 --nodes=16 --pool-jobs=8
//   $ ./examples/cluster_server --batch queries.txt --pool-jobs=8
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "des/scheduler.hpp"
#include "lu/builder.hpp"
#include "obs/clock.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sched/engine_run.hpp"
#include "sched/profile.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "svc/profile_cache.hpp"

using namespace dps;

namespace {

/// Result of one what-if query: shrink to half the nodes after `iteration`.
struct WhatIf {
  std::int64_t iteration = 0; // 0 = never shrink
  double duration = 0;        // total runtime under this plan
  double shrinkAt = 0;        // when the released nodes actually free up
};

/// All what-if answers for one job configuration.
struct WhatIfSet {
  std::vector<WhatIf> answers; // [0] = static (never shrink)
  // Static run's per-iteration efficiency curve (marker value, efficiency).
  std::vector<std::int64_t> staticMarker;
  std::vector<double> staticEff;
};

/// The spec of one what-if query: a full engine run under "release
/// workers/2 nodes after iteration q" (q = 0: the static run, sliced into
/// the per-iteration efficiency curve the admission policy reads).
sched::EngineRunSpec whatIfSpec(const lu::LuConfig& cfg, std::int64_t q,
                                const sched::ProfileSettings& settings) {
  sched::EngineRunSpec spec;
  spec.app = sched::AppKind::Lu;
  spec.lu = cfg;
  spec.config = settings.simConfig();
  spec.luModel = settings.luModel;
  spec.jacobiModel = settings.jacobiModel;
  spec.slicePhases = q == 0;
  if (q >= 1) {
    mall::RemovalStep step;
    step.afterIteration = q;
    for (std::int32_t t = cfg.workers / 2; t < cfg.workers; ++t) step.threads.push_back(t);
    spec.plan = mall::AllocationPlan::killAfter({step});
  }
  return spec;
}

/// Simulates "release workers/2 nodes after iteration k" for every candidate
/// k of every job on the shared pool, each run acquired through the profile
/// cache (duplicate queries in a batch simulate once).  The (job, candidate)
/// pairs of the whole — possibly heterogeneous — batch are flattened into
/// one index space, so small and large jobs interleave across the pool
/// instead of serializing per job.  answers[0] of each set is the static
/// run, whose per-iteration efficiency curve feeds the admission policy.
std::vector<WhatIfSet> evaluateWhatIfs(ThreadPool& pool, const std::vector<lu::LuConfig>& cfgs,
                                       svc::ProfileCache& cache,
                                       obs::TraceSink* trace = nullptr,
                                       const obs::WallClock* wall = nullptr) {
  const sched::ProfileSettings settings;
  struct Pair {
    std::size_t job;
    std::size_t q;
  };
  std::vector<WhatIfSet> sets(cfgs.size());
  std::vector<Pair> pairs;
  for (std::size_t j = 0; j < cfgs.size(); ++j) {
    sets[j].answers.resize(static_cast<std::size_t>(cfgs[j].levels() - 1));
    for (std::size_t q = 0; q < sets[j].answers.size(); ++q) pairs.push_back(Pair{j, q});
  }
  parallelFor(pool, pairs.size(), [&](std::size_t i) {
    const lu::LuConfig& cfg = cfgs[pairs[i].job];
    const std::size_t q = pairs[i].q;
    WhatIf& ans = sets[pairs[i].job].answers[q];
    ans.iteration = static_cast<std::int64_t>(q); // 0 = static
    // Wall-time span per what-if query: cache hits show up as near-zero
    // spans next to the full-simulation misses.
    const double spanStart = wall != nullptr ? wall->elapsedMicros() : 0;
    const auto rec = svc::acquireRun(whatIfSpec(cfg, ans.iteration, settings), cache);
    if (trace != nullptr && wall != nullptr)
      trace->completeSpan("what-if", "svc", spanStart, wall->elapsedMicros() - spanStart, 0,
                          static_cast<std::int32_t>(pairs[i].job),
                          "{\"job\":" + std::to_string(pairs[i].job) +
                              ",\"shrink_after\":" + std::to_string(ans.iteration) + "}");
    ans.duration = rec.totalSec;
    ans.shrinkAt = ans.duration; // fallback: nodes free at completion
    if (ans.iteration >= 1) {
      for (const auto& a : rec.allocEvents) {
        if (a.nodes <= cfg.workers / 2) {
          ans.shrinkAt = a.timeSec;
          break;
        }
      }
    } else {
      sets[pairs[i].job].staticMarker = rec.phaseMarker;
      sets[pairs[i].job].staticEff = rec.phaseEff;
    }
  });
  return sets;
}

struct JobProfile {
  double staticDuration = 0;        // full-allocation runtime
  double malleableDuration = 0;     // runtime under the shrink plan
  double shrinkAt = 0;              // when half the nodes free up
  std::int64_t shrinkIteration = 0; // 0 = never
};

/// Picks the efficiency-driven shrink point from the precomputed what-ifs.
JobProfile profileJob(const WhatIfSet& set, const lu::LuConfig& cfg,
                      double efficiencyThreshold) {
  JobProfile profile;
  profile.staticDuration = set.answers[0].duration;

  // Find the first iteration whose dynamic efficiency drops below the
  // threshold — the earliest point where holding all nodes is wasteful.
  profile.shrinkIteration = 0;
  for (std::size_t i = 0; i < set.staticEff.size(); ++i) {
    if (set.staticEff[i] < efficiencyThreshold && set.staticMarker[i] + 1 < cfg.levels()) {
      profile.shrinkIteration = set.staticMarker[i];
      break;
    }
  }
  if (profile.shrinkIteration < 1) {
    profile.malleableDuration = profile.staticDuration;
    profile.shrinkAt = profile.staticDuration;
    return profile;
  }
  const auto& ans = set.answers[static_cast<std::size_t>(profile.shrinkIteration)];
  profile.malleableDuration = ans.duration;
  profile.shrinkAt = ans.shrinkAt;
  return profile;
}

/// Job-level cluster simulation: first-come-first-served over `nodes`.
struct ServiceResult {
  double makespan = 0;
  double meanWait = 0;
  double nodeSecondsUsed = 0;
};

ServiceResult serve(std::int32_t nodes, std::int32_t jobCount, std::int32_t jobNodes,
                    const JobProfile& profile, bool malleable) {
  des::Scheduler sched;
  std::int32_t freeNodes = nodes;
  std::vector<double> waits;
  std::int32_t started = 0;
  double nodeSeconds = 0;
  double lastEnd = 0;

  // FCFS launcher: starts the next job whenever enough nodes are free.
  std::function<void()> tryLaunch = [&] {
    while (started < jobCount && freeNodes >= jobNodes) {
      freeNodes -= jobNodes;
      ++started;
      waits.push_back(toSeconds(sched.now().time_since_epoch()));
      const double dur = malleable ? profile.malleableDuration : profile.staticDuration;
      if (malleable && profile.shrinkIteration >= 1) {
        nodeSeconds += jobNodes * profile.shrinkAt + (jobNodes / 2.0) * (dur - profile.shrinkAt);
        sched.scheduleAfter(seconds(profile.shrinkAt), [&] {
          freeNodes += jobNodes / 2;
          tryLaunch();
        });
        sched.scheduleAfter(seconds(dur), [&] {
          freeNodes += jobNodes - jobNodes / 2;
          lastEnd = toSeconds(sched.now().time_since_epoch());
          tryLaunch();
        });
      } else {
        nodeSeconds += static_cast<double>(jobNodes) * dur;
        sched.scheduleAfter(seconds(dur), [&] {
          freeNodes += jobNodes;
          lastEnd = toSeconds(sched.now().time_since_epoch());
          tryLaunch();
        });
      }
    }
  };
  tryLaunch();
  sched.run();

  ServiceResult res;
  res.makespan = lastEnd;
  double sum = 0;
  for (double w : waits) sum += w;
  res.meanWait = waits.empty() ? 0 : sum / static_cast<double>(waits.size());
  res.nodeSecondsUsed = nodeSeconds;
  return res;
}

/// One line of a --batch file: an LU shrink query at its own size/allocation.
struct BatchQuery {
  lu::LuConfig cfg;
  double threshold = 0.35;
};

/// Parses `n=.. r=.. workers=.. [threshold=..]` lines; '#' starts a comment.
std::vector<BatchQuery> readBatchFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot read batch file " + path);
  std::vector<BatchQuery> queries;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (const auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string token;
    BatchQuery q;
    q.cfg.n = 0;
    bool any = false;
    while (ls >> token) {
      const auto eq = token.find('=');
      if (eq == std::string::npos)
        throw ConfigError(path + ":" + std::to_string(lineNo) + ": expected key=value, got '" +
                          token + "'");
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      try {
        std::size_t consumed = 0;
        if (key == "n") q.cfg.n = std::stoi(value, &consumed);
        else if (key == "r") q.cfg.r = std::stoi(value, &consumed);
        else if (key == "workers") q.cfg.workers = std::stoi(value, &consumed);
        else if (key == "threshold") q.threshold = std::stod(value, &consumed);
        else
          throw ConfigError(path + ":" + std::to_string(lineNo) + ": unknown key '" + key + "'");
        if (consumed != value.size()) throw std::invalid_argument(value);
      } catch (const std::invalid_argument&) {
        throw ConfigError(path + ":" + std::to_string(lineNo) + ": bad value for '" + key + "'");
      } catch (const std::out_of_range&) {
        throw ConfigError(path + ":" + std::to_string(lineNo) + ": bad value for '" + key + "'");
      }
      any = true;
    }
    if (!any) continue; // blank / comment-only line
    if (q.cfg.n <= 0) throw ConfigError(path + ":" + std::to_string(lineNo) + ": missing n=");
    q.cfg.validate();
    if (q.cfg.workers < 2)
      throw ConfigError(path + ":" + std::to_string(lineNo) + ": shrink needs workers >= 2");
    queries.push_back(q);
  }
  if (queries.empty()) throw ConfigError("batch file " + path + " contains no queries");
  return queries;
}

/// Prints one job's what-if table and returns its efficiency-driven pick.
JobProfile reportJob(const std::string& title, const WhatIfSet& set, const lu::LuConfig& cfg,
                     double threshold) {
  Table w(title);
  w.header({"shrink after it.", "runtime [s]", "vs static", "nodes freed at [s]"});
  for (const auto& a : set.answers) {
    if (a.iteration == 0) {
      w.row({"never (static)", Table::num(a.duration, 1), "-", "-"});
    } else {
      w.row({std::to_string(a.iteration), Table::num(a.duration, 1),
             Table::pct(a.duration / set.answers[0].duration - 1, 1),
             Table::num(a.shrinkAt, 1)});
    }
  }
  w.print(std::cout);

  const JobProfile profile = profileJob(set, cfg, threshold);
  std::printf("  static runtime    : %.1fs\n", profile.staticDuration);
  if (profile.shrinkIteration >= 1) {
    std::printf("  efficiency < %.0f%% after iteration %lld -> release %d nodes at t=%.1fs\n",
                threshold * 100.0, static_cast<long long>(profile.shrinkIteration),
                cfg.workers / 2, profile.shrinkAt);
    std::printf("  malleable runtime : %.1fs (+%.1f%%)\n\n", profile.malleableDuration,
                (profile.malleableDuration / profile.staticDuration - 1) * 100.0);
  } else {
    std::printf("  efficiency never drops below %.0f%%: no shrink point chosen\n\n",
                threshold * 100.0);
  }
  return profile;
}

} // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  // 12 nodes + 8-node jobs: a fresh job never fits next to a running one,
  // but two half-released jobs free enough capacity — the configuration
  // where malleability pays off most visibly.
  const auto nodes = static_cast<std::int32_t>(cli.integer("nodes", 12, "cluster size"));
  const auto jobCount = static_cast<std::int32_t>(cli.integer("jobs", 6, "queued LU jobs"));
  const auto jobNodes = static_cast<std::int32_t>(cli.integer("job-nodes", 8, "nodes per job"));
  const double threshold = cli.real("threshold", 0.35, "efficiency threshold for shrinking");
  const std::int64_t poolJobsRaw =
      cli.integer("pool-jobs", 0, "concurrent what-if simulations (0 = hardware concurrency)");
  const std::string batchPath =
      cli.str("batch", "", "file of heterogeneous shrink queries (one n=/r=/workers= line each)");
  const std::string metricsPath =
      cli.str("metrics", "", "write the obs registry snapshot (svc.cache.*, engine.*, mall.*) "
                             "to this JSON file");
  const std::string tracePath =
      cli.str("trace", "", "write a Chrome trace-event JSON of the what-if queries (wall time) "
                           "to this file");
  if (poolJobsRaw < 0 || poolJobsRaw > 4096)
    throw ConfigError("--pool-jobs must be in [0, 4096], got " + std::to_string(poolJobsRaw));
  const auto poolJobs = static_cast<unsigned>(poolJobsRaw);
  if (cli.helpRequested()) {
    std::printf("%s", cli.helpText().c_str());
    return 0;
  }
  cli.finish();

  // The caller participates in pool sweeps, so jobs - 1 workers give exactly
  // `effectiveJobs` concurrent simulations (a worker-less pool runs inline).
  const unsigned effectiveJobs = poolJobs == 0 ? ThreadPool::hardwareJobs() : poolJobs;
  ThreadPool pool(effectiveJobs - 1);
  svc::ProfileCache cache;

  // Observability: the cache records svc.cache.* (and the engine runs it
  // executes record engine.*/mall.*) into the registry; each what-if query
  // gets a wall-time trace span.  Both disabled unless a flag asked.
  obs::Registry registry;
  obs::TraceSink trace;
  const obs::WallClock wall;
  obs::TraceSink* const traceSink = tracePath.empty() ? nullptr : &trace;
  cache.attachRegistry(metricsPath.empty() ? nullptr : &registry);
  if (traceSink != nullptr) trace.processName(0, "cluster_server what-if pool");
  const auto writeObs = [&]() -> int {
    if (!metricsPath.empty()) {
      std::ofstream os(metricsPath);
      if (!os) {
        std::fprintf(stderr, "cannot write metrics to %s\n", metricsPath.c_str());
        return 1;
      }
      os << registry.jsonString() << "\n";
      std::printf("wrote %s\n", metricsPath.c_str());
    }
    if (traceSink != nullptr) {
      if (!trace.writeFile(tracePath)) {
        std::fprintf(stderr, "cannot write trace to %s\n", tracePath.c_str());
        return 1;
      }
      std::printf("wrote %s (%zu trace events)\n", tracePath.c_str(), trace.eventCount());
    }
    return 0;
  };

  if (!batchPath.empty()) {
    // Batch what-if mode: profile every query of the file concurrently on
    // the shared pool, then report one table per job.
    const auto queries = readBatchFile(batchPath);
    std::vector<lu::LuConfig> cfgs;
    std::size_t candidates = 0;
    for (const auto& q : queries) {
      cfgs.push_back(q.cfg);
      candidates += static_cast<std::size_t>(q.cfg.levels() - 1);
    }
    std::printf("batch what-if pool: %zu jobs, %zu candidate shrink points, %u concurrent "
                "simulations\n\n",
                queries.size(), candidates, effectiveJobs);
    const auto sets = evaluateWhatIfs(pool, cfgs, cache, traceSink, &wall);
    for (std::size_t j = 0; j < queries.size(); ++j) {
      const lu::LuConfig& cfg = cfgs[j];
      reportJob("job " + std::to_string(j) + ": " + std::to_string(cfg.n) + "x" +
                    std::to_string(cfg.n) + " r=" + std::to_string(cfg.r) + " on " +
                    std::to_string(cfg.workers) + " nodes",
                sets[j], cfg, queries[j].threshold);
    }
    const auto cs = cache.stats();
    std::printf("what-if cache: %llu queries, %llu simulations (%.0f%% served from cache)\n",
                static_cast<unsigned long long>(cs.lookups()),
                static_cast<unsigned long long>(cs.engineRuns), cs.hitRate() * 100.0);
    return writeObs();
  }

  lu::LuConfig cfg;
  cfg.n = 2592;
  cfg.r = 324;
  cfg.workers = jobNodes;

  std::printf("what-if pool: simulating %d candidate shrink points for one LU job\n",
              cfg.levels() - 1);
  std::printf("(%dx%d, r=%d, %d nodes; %u concurrent simulations)\n", cfg.n, cfg.n, cfg.r,
              jobNodes, effectiveJobs);
  const auto sets = evaluateWhatIfs(pool, {cfg}, cache, traceSink, &wall);
  const JobProfile profile = reportJob({}, sets[0], cfg, threshold);

  const auto staticRes = serve(nodes, jobCount, jobNodes, profile, false);
  const auto mallRes = serve(nodes, jobCount, jobNodes, profile, true);

  std::printf("\ncluster of %d nodes serving %d queued jobs of %d nodes each:\n\n", nodes,
              jobCount, jobNodes);
  Table t;
  t.header({"policy", "all jobs done [s]", "mean job wait [s]", "node-seconds used"});
  t.row({"static allocations", Table::num(staticRes.makespan, 1),
         Table::num(staticRes.meanWait, 1), Table::num(staticRes.nodeSecondsUsed, 0)});
  t.row({"malleable (efficiency-driven)", Table::num(mallRes.makespan, 1),
         Table::num(mallRes.meanWait, 1), Table::num(mallRes.nodeSecondsUsed, 0)});
  t.print(std::cout);
  std::printf("\nservice-rate gain from malleability: %.1f%% (paper §8: \"the service rate\n"
              "of the cluster can be significantly increased\")\n",
              (staticRes.makespan / mallRes.makespan - 1.0) * 100.0);
  return writeObs();
}
