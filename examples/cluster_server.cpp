// Cluster-server study — the paper's future-work scenario (§9): "simulate
// a cluster server running concurrently multiple applications whose
// allocations of compute nodes vary dynamically over time".
//
// A queue of LU jobs arrives at a cluster.  Two admission policies:
//   * static    — every job holds its full allocation until it finishes;
//   * malleable — jobs release half their nodes after the iteration where
//     the simulator-predicted dynamic efficiency drops below a threshold,
//     so the next job can start earlier on the freed nodes.
//
// Per-iteration duration/efficiency profiles come from the DPS simulator.
// What-if queries ("release half the nodes after iteration k") are served
// by a shared simulation pool: every candidate shrink point is simulated
// concurrently (--pool-jobs) and the admission policy then just looks its
// answer up.  The job-level queueing itself runs on the same discrete-event
// kernel.
//
//   $ ./examples/cluster_server --jobs=6 --nodes=16 --pool-jobs=8
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/engine.hpp"
#include "des/scheduler.hpp"
#include "lu/app.hpp"
#include "malleable/controller.hpp"
#include "net/profile.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "trace/efficiency.hpp"

using namespace dps;

namespace {

core::SimConfig simConfig() {
  core::SimConfig sc;
  sc.profile = net::ultraSparc440();
  sc.mode = core::ExecutionMode::Pdexec;
  sc.allocatePayloads = false;
  return sc;
}

/// Result of one what-if query: shrink to half the nodes after `iteration`.
struct WhatIf {
  std::int64_t iteration = 0; // 0 = never shrink
  double duration = 0;        // total runtime under this plan
  double shrinkAt = 0;        // when the released nodes actually free up
};

/// Simulates "release workers/2 nodes after iteration k" for every candidate
/// k on the shared pool; answers[0] is the static (never-shrink) run, whose
/// per-iteration efficiency curve comes back in `staticEfficiency` for the
/// admission policy to scan.
std::vector<WhatIf> evaluateWhatIfs(ThreadPool& pool, const lu::LuConfig& cfg,
                                    std::vector<trace::EfficiencyPoint>& staticEfficiency) {
  const auto model = lu::KernelCostModel::ultraSparc440();
  std::vector<WhatIf> answers(static_cast<std::size_t>(cfg.levels() - 1));
  parallelFor(pool, answers.size(), [&](std::size_t q) {
    WhatIf& ans = answers[q];
    ans.iteration = static_cast<std::int64_t>(q); // 0 = static
    core::SimEngine engine(simConfig());
    lu::LuBuild build = lu::buildLu(cfg, model, false);
    std::unique_ptr<mall::LuMalleabilityController> controller;
    if (ans.iteration >= 1) {
      mall::RemovalStep step;
      step.afterIteration = ans.iteration;
      for (std::int32_t t = cfg.workers / 2; t < cfg.workers; ++t) step.threads.push_back(t);
      controller = std::make_unique<mall::LuMalleabilityController>(
          engine, build, mall::AllocationPlan::killAfter({step}));
    }
    const auto run = lu::runLu(engine, build);
    ans.duration = toSeconds(run.makespan);
    ans.shrinkAt = ans.duration; // fallback: nodes free at completion
    if (ans.iteration >= 1) {
      for (const auto& a : run.trace->allocations()) {
        if (a.allocatedNodes <= cfg.workers / 2) {
          ans.shrinkAt = toSeconds(a.time.time_since_epoch());
          break;
        }
      }
    } else {
      staticEfficiency = trace::dynamicEfficiency(*run.trace, "iteration", simEpoch(),
                                                  simEpoch() + run.makespan);
    }
  });
  return answers;
}

struct JobProfile {
  double staticDuration = 0;        // full-allocation runtime
  double malleableDuration = 0;     // runtime under the shrink plan
  double shrinkAt = 0;              // when half the nodes free up
  std::int64_t shrinkIteration = 0; // 0 = never
};

/// Picks the efficiency-driven shrink point from the precomputed what-ifs.
JobProfile profileJob(const std::vector<WhatIf>& answers,
                      const std::vector<trace::EfficiencyPoint>& staticEfficiency,
                      const lu::LuConfig& cfg, double efficiencyThreshold) {
  JobProfile profile;
  profile.staticDuration = answers[0].duration;

  // Find the first iteration whose dynamic efficiency drops below the
  // threshold — the earliest point where holding all nodes is wasteful.
  profile.shrinkIteration = 0;
  for (const auto& p : staticEfficiency) {
    if (p.efficiency < efficiencyThreshold && p.markerValue + 1 < cfg.levels()) {
      profile.shrinkIteration = p.markerValue;
      break;
    }
  }
  if (profile.shrinkIteration < 1) {
    profile.malleableDuration = profile.staticDuration;
    profile.shrinkAt = profile.staticDuration;
    return profile;
  }
  const auto& ans = answers[static_cast<std::size_t>(profile.shrinkIteration)];
  profile.malleableDuration = ans.duration;
  profile.shrinkAt = ans.shrinkAt;
  return profile;
}

/// Job-level cluster simulation: first-come-first-served over `nodes`.
struct ServiceResult {
  double makespan = 0;
  double meanWait = 0;
  double nodeSecondsUsed = 0;
};

ServiceResult serve(std::int32_t nodes, std::int32_t jobCount, std::int32_t jobNodes,
                    const JobProfile& profile, bool malleable) {
  des::Scheduler sched;
  std::int32_t freeNodes = nodes;
  std::vector<double> waits;
  std::int32_t started = 0;
  double nodeSeconds = 0;
  double lastEnd = 0;

  // FCFS launcher: starts the next job whenever enough nodes are free.
  std::function<void()> tryLaunch = [&] {
    while (started < jobCount && freeNodes >= jobNodes) {
      freeNodes -= jobNodes;
      ++started;
      waits.push_back(toSeconds(sched.now().time_since_epoch()));
      const double dur = malleable ? profile.malleableDuration : profile.staticDuration;
      if (malleable && profile.shrinkIteration >= 1) {
        nodeSeconds += jobNodes * profile.shrinkAt + (jobNodes / 2.0) * (dur - profile.shrinkAt);
        sched.scheduleAfter(seconds(profile.shrinkAt), [&] {
          freeNodes += jobNodes / 2;
          tryLaunch();
        });
        sched.scheduleAfter(seconds(dur), [&] {
          freeNodes += jobNodes - jobNodes / 2;
          lastEnd = toSeconds(sched.now().time_since_epoch());
          tryLaunch();
        });
      } else {
        nodeSeconds += static_cast<double>(jobNodes) * dur;
        sched.scheduleAfter(seconds(dur), [&] {
          freeNodes += jobNodes;
          lastEnd = toSeconds(sched.now().time_since_epoch());
          tryLaunch();
        });
      }
    }
  };
  tryLaunch();
  sched.run();

  ServiceResult res;
  res.makespan = lastEnd;
  double sum = 0;
  for (double w : waits) sum += w;
  res.meanWait = waits.empty() ? 0 : sum / static_cast<double>(waits.size());
  res.nodeSecondsUsed = nodeSeconds;
  return res;
}

} // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  // 12 nodes + 8-node jobs: a fresh job never fits next to a running one,
  // but two half-released jobs free enough capacity — the configuration
  // where malleability pays off most visibly.
  const auto nodes = static_cast<std::int32_t>(cli.integer("nodes", 12, "cluster size"));
  const auto jobCount = static_cast<std::int32_t>(cli.integer("jobs", 6, "queued LU jobs"));
  const auto jobNodes = static_cast<std::int32_t>(cli.integer("job-nodes", 8, "nodes per job"));
  const double threshold = cli.real("threshold", 0.35, "efficiency threshold for shrinking");
  const std::int64_t poolJobsRaw =
      cli.integer("pool-jobs", 0, "concurrent what-if simulations (0 = hardware concurrency)");
  if (poolJobsRaw < 0 || poolJobsRaw > 4096)
    throw ConfigError("--pool-jobs must be in [0, 4096], got " + std::to_string(poolJobsRaw));
  const auto poolJobs = static_cast<unsigned>(poolJobsRaw);
  if (cli.helpRequested()) {
    std::printf("%s", cli.helpText().c_str());
    return 0;
  }
  cli.finish();

  lu::LuConfig cfg;
  cfg.n = 2592;
  cfg.r = 324;
  cfg.workers = jobNodes;

  // The caller participates in pool sweeps, so jobs - 1 workers give exactly
  // `effectiveJobs` concurrent simulations (a worker-less pool runs inline).
  const unsigned effectiveJobs = poolJobs == 0 ? ThreadPool::hardwareJobs() : poolJobs;
  ThreadPool pool(effectiveJobs - 1);

  std::printf("what-if pool: simulating %d candidate shrink points for one LU job\n",
              cfg.levels() - 1);
  std::printf("(%dx%d, r=%d, %d nodes; %u concurrent simulations)\n", cfg.n, cfg.n, cfg.r,
              jobNodes, effectiveJobs);
  std::vector<trace::EfficiencyPoint> staticEfficiency;
  const auto answers = evaluateWhatIfs(pool, cfg, staticEfficiency);

  Table w;
  w.header({"shrink after it.", "runtime [s]", "vs static", "nodes freed at [s]"});
  for (const auto& a : answers) {
    if (a.iteration == 0) {
      w.row({"never (static)", Table::num(a.duration, 1), "-", "-"});
    } else {
      w.row({std::to_string(a.iteration), Table::num(a.duration, 1),
             Table::pct(a.duration / answers[0].duration - 1, 1), Table::num(a.shrinkAt, 1)});
    }
  }
  w.print(std::cout);

  const JobProfile profile = profileJob(answers, staticEfficiency, cfg, threshold);
  std::printf("\n  static runtime    : %.1fs\n", profile.staticDuration);
  if (profile.shrinkIteration >= 1) {
    std::printf("  efficiency < %.0f%% after iteration %lld -> release %d nodes at t=%.1fs\n",
                threshold * 100.0, static_cast<long long>(profile.shrinkIteration),
                jobNodes / 2, profile.shrinkAt);
    std::printf("  malleable runtime : %.1fs (+%.1f%%)\n", profile.malleableDuration,
                (profile.malleableDuration / profile.staticDuration - 1) * 100.0);
  }

  const auto staticRes = serve(nodes, jobCount, jobNodes, profile, false);
  const auto mallRes = serve(nodes, jobCount, jobNodes, profile, true);

  std::printf("\ncluster of %d nodes serving %d queued jobs of %d nodes each:\n\n", nodes,
              jobCount, jobNodes);
  Table t;
  t.header({"policy", "all jobs done [s]", "mean job wait [s]", "node-seconds used"});
  t.row({"static allocations", Table::num(staticRes.makespan, 1),
         Table::num(staticRes.meanWait, 1), Table::num(staticRes.nodeSecondsUsed, 0)});
  t.row({"malleable (efficiency-driven)", Table::num(mallRes.makespan, 1),
         Table::num(mallRes.meanWait, 1), Table::num(mallRes.nodeSecondsUsed, 0)});
  t.print(std::cout);
  std::printf("\nservice-rate gain from malleability: %.1f%% (paper §8: \"the service rate\n"
              "of the cluster can be significantly increased\")\n",
              (staticRes.makespan / mallRes.makespan - 1.0) * 100.0);
  return 0;
}
