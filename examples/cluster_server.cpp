// Cluster-server study — the paper's future-work scenario (§9): "simulate
// a cluster server running concurrently multiple applications whose
// allocations of compute nodes vary dynamically over time".
//
// A queue of LU jobs arrives at a cluster.  Two admission policies:
//   * static    — every job holds its full allocation until it finishes;
//   * malleable — jobs release half their nodes after the iteration where
//     the simulator-predicted dynamic efficiency drops below a threshold,
//     so the next job can start earlier on the freed nodes.
//
// Per-iteration duration/efficiency profiles come from the DPS simulator;
// the job-level queueing itself runs on the same discrete-event kernel.
//
//   $ ./examples/cluster_server --jobs=6 --nodes=16
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/engine.hpp"
#include "des/scheduler.hpp"
#include "lu/app.hpp"
#include "malleable/controller.hpp"
#include "net/profile.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "trace/efficiency.hpp"

using namespace dps;

namespace {

struct JobProfile {
  double staticDuration = 0;                       // full-allocation runtime
  double malleableDuration = 0;                    // runtime under the shrink plan
  double shrinkAt = 0;                             // when half the nodes free up
  std::int64_t shrinkIteration = 0;                // -1 = never
};

/// Predicts one LU job's behaviour with the DPS simulator and derives the
/// efficiency-driven shrink point.
JobProfile profileJob(const lu::LuConfig& cfg, double efficiencyThreshold) {
  const auto model = lu::KernelCostModel::ultraSparc440();
  core::SimConfig sc;
  sc.profile = net::ultraSparc440();
  sc.mode = core::ExecutionMode::Pdexec;
  sc.allocatePayloads = false;

  JobProfile profile;
  core::SimEngine engine(sc);
  lu::LuBuild build = lu::buildLu(cfg, model, false);
  auto staticRun = lu::runLu(engine, build);
  profile.staticDuration = toSeconds(staticRun.makespan);

  // Find the first iteration whose dynamic efficiency drops below the
  // threshold — the earliest point where holding all nodes is wasteful.
  const auto eff = trace::dynamicEfficiency(*staticRun.trace, "iteration", simEpoch(),
                                            simEpoch() + staticRun.makespan);
  profile.shrinkIteration = -1;
  for (const auto& p : eff) {
    if (p.efficiency < efficiencyThreshold && p.markerValue + 1 < cfg.levels()) {
      profile.shrinkIteration = p.markerValue;
      break;
    }
  }
  if (profile.shrinkIteration < 1) {
    profile.malleableDuration = profile.staticDuration;
    profile.shrinkAt = profile.staticDuration;
    return profile;
  }

  // Re-simulate under the shrink plan to get the malleable runtime and the
  // moment the nodes actually free up.
  mall::RemovalStep step;
  step.afterIteration = profile.shrinkIteration;
  for (std::int32_t t = cfg.workers / 2; t < cfg.workers; ++t) step.threads.push_back(t);
  core::SimEngine engine2(sc);
  lu::LuBuild build2 = lu::buildLu(cfg, model, false);
  mall::LuMalleabilityController controller(engine2, build2,
                                            mall::AllocationPlan::killAfter({step}));
  auto mallRun = lu::runLu(engine2, build2);
  profile.malleableDuration = toSeconds(mallRun.makespan);
  profile.shrinkAt = profile.malleableDuration; // fallback
  for (const auto& a : mallRun.trace->allocations()) {
    if (a.allocatedNodes <= cfg.workers / 2 + 0) {
      profile.shrinkAt = toSeconds(a.time.time_since_epoch());
      break;
    }
  }
  return profile;
}

/// Job-level cluster simulation: first-come-first-served over `nodes`.
struct ServiceResult {
  double makespan = 0;
  double meanWait = 0;
  double nodeSecondsUsed = 0;
};

ServiceResult serve(std::int32_t nodes, std::int32_t jobCount, std::int32_t jobNodes,
                    const JobProfile& profile, bool malleable) {
  des::Scheduler sched;
  std::int32_t freeNodes = nodes;
  std::vector<double> waits;
  std::int32_t started = 0;
  double nodeSeconds = 0;
  double lastEnd = 0;

  // FCFS launcher: starts the next job whenever enough nodes are free.
  std::function<void()> tryLaunch = [&] {
    while (started < jobCount && freeNodes >= jobNodes) {
      freeNodes -= jobNodes;
      ++started;
      waits.push_back(toSeconds(sched.now().time_since_epoch()));
      const double dur = malleable ? profile.malleableDuration : profile.staticDuration;
      if (malleable && profile.shrinkIteration >= 1) {
        nodeSeconds += jobNodes * profile.shrinkAt + (jobNodes / 2.0) * (dur - profile.shrinkAt);
        sched.scheduleAfter(seconds(profile.shrinkAt), [&] {
          freeNodes += jobNodes / 2;
          tryLaunch();
        });
        sched.scheduleAfter(seconds(dur), [&] {
          freeNodes += jobNodes - jobNodes / 2;
          lastEnd = toSeconds(sched.now().time_since_epoch());
          tryLaunch();
        });
      } else {
        nodeSeconds += static_cast<double>(jobNodes) * dur;
        sched.scheduleAfter(seconds(dur), [&] {
          freeNodes += jobNodes;
          lastEnd = toSeconds(sched.now().time_since_epoch());
          tryLaunch();
        });
      }
    }
  };
  tryLaunch();
  sched.run();

  ServiceResult res;
  res.makespan = lastEnd;
  double sum = 0;
  for (double w : waits) sum += w;
  res.meanWait = waits.empty() ? 0 : sum / static_cast<double>(waits.size());
  res.nodeSecondsUsed = nodeSeconds;
  return res;
}

} // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  // 12 nodes + 8-node jobs: a fresh job never fits next to a running one,
  // but two half-released jobs free enough capacity — the configuration
  // where malleability pays off most visibly.
  const auto nodes = static_cast<std::int32_t>(cli.integer("nodes", 12, "cluster size"));
  const auto jobCount = static_cast<std::int32_t>(cli.integer("jobs", 6, "queued LU jobs"));
  const auto jobNodes = static_cast<std::int32_t>(cli.integer("job-nodes", 8, "nodes per job"));
  const double threshold = cli.real("threshold", 0.35, "efficiency threshold for shrinking");
  if (cli.helpRequested()) {
    std::printf("%s", cli.helpText().c_str());
    return 0;
  }
  cli.finish();

  lu::LuConfig cfg;
  cfg.n = 2592;
  cfg.r = 324;
  cfg.workers = jobNodes;

  std::printf("profiling one LU job (%dx%d, r=%d, %d nodes) with the DPS simulator...\n",
              cfg.n, cfg.n, cfg.r, jobNodes);
  const JobProfile profile = profileJob(cfg, threshold);
  std::printf("  static runtime    : %.1fs\n", profile.staticDuration);
  if (profile.shrinkIteration >= 1) {
    std::printf("  efficiency < %.0f%% after iteration %lld -> release %d nodes at t=%.1fs\n",
                threshold * 100.0, static_cast<long long>(profile.shrinkIteration),
                jobNodes / 2, profile.shrinkAt);
    std::printf("  malleable runtime : %.1fs (+%.1f%%)\n", profile.malleableDuration,
                (profile.malleableDuration / profile.staticDuration - 1) * 100.0);
  }

  const auto staticRes = serve(nodes, jobCount, jobNodes, profile, false);
  const auto mallRes = serve(nodes, jobCount, jobNodes, profile, true);

  std::printf("\ncluster of %d nodes serving %d queued jobs of %d nodes each:\n\n", nodes,
              jobCount, jobNodes);
  Table t;
  t.header({"policy", "all jobs done [s]", "mean job wait [s]", "node-seconds used"});
  t.row({"static allocations", Table::num(staticRes.makespan, 1),
         Table::num(staticRes.meanWait, 1), Table::num(staticRes.nodeSecondsUsed, 0)});
  t.row({"malleable (efficiency-driven)", Table::num(mallRes.makespan, 1),
         Table::num(mallRes.meanWait, 1), Table::num(mallRes.nodeSecondsUsed, 0)});
  t.print(std::cout);
  std::printf("\nservice-rate gain from malleability: %.1f%% (paper §8: \"the service rate\n"
              "of the cluster can be significantly increased\")\n",
              (staticRes.makespan / mallRes.makespan - 1.0) * 100.0);
  return 0;
}
