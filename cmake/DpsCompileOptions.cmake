# Shared compile-option interface targets.
#
#   dps::common    — include root + sanitizer flags; every target links this
#   dps::warnings  — -Wall -Wextra (+ -Werror unless DPS_WERROR=OFF); src/ layers only
#
# Tests/bench/examples link dps::common but use the relaxed warning set below
# so fixture-heavy code is not held to -Werror.

add_library(dps_common INTERFACE)
add_library(dps::common ALIAS dps_common)
target_include_directories(dps_common INTERFACE "${CMAKE_CURRENT_SOURCE_DIR}/src")

# support/thread_pool (and everything above it) uses std::thread.
set(THREADS_PREFER_PTHREAD_FLAG ON)
find_package(Threads REQUIRED)
target_link_libraries(dps_common INTERFACE Threads::Threads)

if(DPS_SANITIZE)
  string(REPLACE "," ";" _dps_san_list "${DPS_SANITIZE}")
  foreach(_san IN LISTS _dps_san_list)
    target_compile_options(dps_common INTERFACE "-fsanitize=${_san}" -fno-omit-frame-pointer)
    target_link_options(dps_common INTERFACE "-fsanitize=${_san}")
  endforeach()
endif()

add_library(dps_warnings INTERFACE)
add_library(dps::warnings ALIAS dps_warnings)
target_compile_options(dps_warnings INTERFACE -Wall -Wextra)
if(DPS_WERROR)
  target_compile_options(dps_warnings INTERFACE -Werror)
endif()

add_library(dps_warnings_relaxed INTERFACE)
add_library(dps::warnings_relaxed ALIAS dps_warnings_relaxed)
target_compile_options(dps_warnings_relaxed INTERFACE -Wall)

# dps_add_layer(<name> DEPS <layer...>)
#
# Declares the static library for one src/<name> layer from the .cpp files in
# the current directory and records the architecture edges explicitly: a layer
# may only link the layers named in DEPS.  Header-only layers get an INTERFACE
# target so the dependency edge still exists in the graph.
function(dps_add_layer name)
  cmake_parse_arguments(ARG "" "" "DEPS;SOURCES;EXCLUDE" ${ARGN})
  if(NOT ARG_SOURCES)
    file(GLOB ARG_SOURCES CONFIGURE_DEPENDS "${CMAKE_CURRENT_SOURCE_DIR}/*.cpp")
  endif()
  foreach(_ex IN LISTS ARG_EXCLUDE)
    list(REMOVE_ITEM ARG_SOURCES "${CMAKE_CURRENT_SOURCE_DIR}/${_ex}")
  endforeach()

  if(ARG_SOURCES)
    add_library(dps_${name} STATIC ${ARG_SOURCES})
    target_link_libraries(dps_${name} PRIVATE dps::warnings)
    set(_scope PUBLIC)
  else()
    add_library(dps_${name} INTERFACE)
    set(_scope INTERFACE)
  endif()
  add_library(dps::${name} ALIAS dps_${name})
  target_link_libraries(dps_${name} ${_scope} dps::common)
  foreach(_dep IN LISTS ARG_DEPS)
    target_link_libraries(dps_${name} ${_scope} dps::${_dep})
  endforeach()
endfunction()
