// Serialization archives.
//
// Three archives share one `describe()` traversal of a data object:
//   * WriteArchive  — byte-exact encoding (little-endian host layout).
//   * ReadArchive   — decoding; mirrors WriteArchive.
//   * SizingArchive — the paper's "modified serializer": computes the wire
//     size of a data object *without touching payload memory*, enabling the
//     NOALLOC simulation mode where large payloads are never allocated
//     (paper §4: "the modified serializer only counts the number of bytes
//     ... without performing any memory copies").
//
// Collections are encoded as u64 length + elements.  `phantom(n)` models a
// payload that logically occupies n bytes but has no backing storage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "support/error.hpp"

namespace dps::serial {

class WriteArchive {
public:
  static constexpr bool isWriting = true;
  static constexpr bool isReading = false;
  static constexpr bool isSizing = false;

  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  /// Phantom payloads encode as zero bytes (content-free, size preserved).
  void phantom(std::size_t n) { buf_.resize(buf_.size() + n); }

  template <typename T>
    requires std::is_arithmetic_v<T> || std::is_enum_v<T>
  void value(const T& v) {
    raw(&v, sizeof v);
  }

  const std::vector<std::byte>& bytes() const { return buf_; }
  std::vector<std::byte> take() { return std::move(buf_); }

private:
  std::vector<std::byte> buf_;
};

class ReadArchive {
public:
  static constexpr bool isWriting = false;
  static constexpr bool isReading = true;
  static constexpr bool isSizing = false;

  explicit ReadArchive(std::span<const std::byte> data) : data_(data) {}

  void raw(void* p, std::size_t n) {
    DPS_CHECK(pos_ + n <= data_.size(), "read archive underflow");
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
  }

  void phantom(std::size_t n) {
    DPS_CHECK(pos_ + n <= data_.size(), "read archive underflow (phantom)");
    pos_ += n;
  }

  template <typename T>
    requires std::is_arithmetic_v<T> || std::is_enum_v<T>
  void value(T& v) {
    raw(&v, sizeof v);
  }

  std::size_t consumed() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }

private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

class SizingArchive {
public:
  static constexpr bool isWriting = false;
  static constexpr bool isReading = false;
  static constexpr bool isSizing = true;

  void raw(const void*, std::size_t n) { size_ += n; }
  void phantom(std::size_t n) { size_ += n; }

  template <typename T>
    requires std::is_arithmetic_v<T> || std::is_enum_v<T>
  void value(const T&) {
    size_ += sizeof(T);
  }

  std::size_t size() const { return size_; }

private:
  std::size_t size_ = 0;
};

// ---------------------------------------------------------------------------
// Generic field dispatch: ar & field
// ---------------------------------------------------------------------------

template <typename Ar, typename T>
  requires std::is_arithmetic_v<T> || std::is_enum_v<T>
void field(Ar& ar, T& v) {
  ar.value(v);
}

template <typename Ar>
void field(Ar& ar, std::string& s) {
  if constexpr (Ar::isReading) {
    std::uint64_t n = 0;
    ar.value(n);
    s.resize(n);
    if (n) ar.raw(s.data(), n);
  } else {
    std::uint64_t n = s.size();
    ar.value(n);
    if constexpr (Ar::isSizing) ar.raw(nullptr, n);
    else if (n) ar.raw(s.data(), n);
  }
}

template <typename Ar, typename T>
void field(Ar& ar, std::vector<T>& v) {
  if constexpr (Ar::isReading) {
    std::uint64_t n = 0;
    ar.value(n);
    v.resize(n);
    if constexpr (std::is_arithmetic_v<T>) {
      if (n) ar.raw(v.data(), n * sizeof(T));
    } else {
      for (auto& e : v) field(ar, e);
    }
  } else {
    std::uint64_t n = v.size();
    ar.value(n);
    if constexpr (std::is_arithmetic_v<T>) {
      if constexpr (Ar::isSizing) ar.raw(nullptr, n * sizeof(T));
      else if (n) ar.raw(v.data(), n * sizeof(T));
    } else {
      for (auto& e : v) field(ar, e);
    }
  }
}

template <typename Ar, typename A, typename B>
void field(Ar& ar, std::pair<A, B>& p) {
  field(ar, p.first);
  field(ar, p.second);
}

/// Variadic convenience: fields(ar, a, b, c).
template <typename Ar, typename... Ts>
void fields(Ar& ar, Ts&... vs) {
  (field(ar, vs), ...);
}

} // namespace dps::serial
