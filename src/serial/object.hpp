// Strongly-typed data objects circulating in DPS flow graphs.
//
// An object derives from serial::Object<Derived>, declares a kTypeName and a
// `template <class Ar> void describe(Ar&)` traversal; the CRTP base supplies
// wire encoding, decoding and zero-copy size measurement, plus factory
// registration for receive-side reconstruction.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>

#include "serial/archive.hpp"
#include "support/error.hpp"

namespace dps::serial {

class ObjectBase {
public:
  virtual ~ObjectBase() = default;

  virtual const char* typeName() const = 0;
  virtual void save(WriteArchive& ar) const = 0;
  virtual void load(ReadArchive& ar) = 0;
  virtual void measure(SizingArchive& ar) const = 0;

  /// Wire size in bytes, computed without copying payload memory.
  std::size_t wireSize() const {
    SizingArchive ar;
    measure(ar);
    return ar.size();
  }

  std::vector<std::byte> encode() const {
    WriteArchive ar;
    save(ar);
    return ar.take();
  }
};

using ObjectPtr = std::shared_ptr<const ObjectBase>;

/// Factory registry mapping type names to default-constructors; used by the
/// wire decoder and by the serialization round-trip tests.  Mutex-guarded:
/// campaign workers may register application object types (or decode) from
/// several threads concurrently.
class Registry {
public:
  using Factory = std::function<std::unique_ptr<ObjectBase>()>;

  static Registry& instance();

  void add(std::string name, Factory f);
  bool contains(const std::string& name) const;
  std::unique_ptr<ObjectBase> create(const std::string& name) const;

  /// Decodes a framed object (type name + payload) produced by encodeFramed.
  std::unique_ptr<ObjectBase> decodeFramed(std::span<const std::byte> data) const;

private:
  Factory find(const std::string& name) const;

  mutable std::mutex mutex_;
  std::map<std::string, Factory> factories_;
};

/// Encodes an object with a self-describing frame (type name + payload).
std::vector<std::byte> encodeFramed(const ObjectBase& obj);

template <typename Derived>
class Object : public ObjectBase {
public:
  const char* typeName() const override { return Derived::kTypeName; }

  void save(WriteArchive& ar) const override {
    // describe() is logically const for non-reading archives.
    const_cast<Derived&>(static_cast<const Derived&>(*this)).describe(ar);
  }
  void load(ReadArchive& ar) override { static_cast<Derived&>(*this).describe(ar); }
  void measure(SizingArchive& ar) const override {
    const_cast<Derived&>(static_cast<const Derived&>(*this)).describe(ar);
  }
};

namespace detail {
template <typename T>
struct Registrar {
  Registrar() {
    Registry::instance().add(T::kTypeName, [] { return std::make_unique<T>(); });
  }
};
} // namespace detail

} // namespace dps::serial

/// Place in one translation unit per object type to enable wire decoding.
#define DPS_REGISTER_OBJECT(Type)                                          \
  namespace {                                                              \
  [[maybe_unused]] const ::dps::serial::detail::Registrar<Type>            \
      dpsRegistrar_##Type;                                                 \
  }
