#include "serial/object.hpp"

namespace dps::serial {

Registry& Registry::instance() {
  static Registry r;
  return r;
}

void Registry::add(std::string name, Factory f) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = factories_.emplace(std::move(name), std::move(f));
  DPS_CHECK(inserted, "duplicate object type registration: " + it->first);
}

bool Registry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return factories_.count(name) > 0;
}

Registry::Factory Registry::find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = factories_.find(name);
  if (it == factories_.end()) throw Error("unknown object type: " + name);
  return it->second;
}

std::unique_ptr<ObjectBase> Registry::create(const std::string& name) const {
  // The factory is copied out so construction runs outside the lock.
  return find(name)();
}

std::vector<std::byte> encodeFramed(const ObjectBase& obj) {
  WriteArchive ar;
  std::string name = obj.typeName();
  field(ar, name);
  obj.save(ar);
  return ar.take();
}

std::unique_ptr<ObjectBase> Registry::decodeFramed(std::span<const std::byte> data) const {
  ReadArchive ar(data);
  std::string name;
  field(ar, name);
  auto obj = create(name);
  obj->load(ar);
  return obj;
}

} // namespace dps::serial
