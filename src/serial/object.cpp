#include "serial/object.hpp"

namespace dps::serial {

Registry& Registry::instance() {
  static Registry r;
  return r;
}

void Registry::add(std::string name, Factory f) {
  auto [it, inserted] = factories_.emplace(std::move(name), std::move(f));
  DPS_CHECK(inserted, "duplicate object type registration: " + it->first);
}

std::unique_ptr<ObjectBase> Registry::create(const std::string& name) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) throw Error("unknown object type: " + name);
  return it->second();
}

std::vector<std::byte> encodeFramed(const ObjectBase& obj) {
  WriteArchive ar;
  std::string name = obj.typeName();
  field(ar, name);
  obj.save(ar);
  return ar.take();
}

std::unique_ptr<ObjectBase> Registry::decodeFramed(std::span<const std::byte> data) const {
  ReadArchive ar(data);
  std::string name;
  field(ar, name);
  auto obj = create(name);
  obj->load(ar);
  return obj;
}

} // namespace dps::serial
