// Identifier types for the DPS flow-graph model.
#pragma once

#include <cstdint>
#include <functional>

namespace dps::flow {

/// Index of a virtual compute node within a deployment.
using NodeId = std::int32_t;
/// Index of a thread group declared on a flow graph.
using GroupId = std::int32_t;
/// Vertex id within a flow graph.
using OpId = std::int32_t;

constexpr OpId kNoOp = -1;

/// A logical DPS thread: (group, index-within-group).  DPS threads are a
/// logical execution environment; deployment maps each to a compute node.
struct ThreadRef {
  GroupId group = -1;
  std::int32_t index = -1;

  friend bool operator==(const ThreadRef&, const ThreadRef&) = default;
  friend auto operator<=>(const ThreadRef&, const ThreadRef&) = default;
};

} // namespace dps::flow

template <>
struct std::hash<dps::flow::ThreadRef> {
  std::size_t operator()(const dps::flow::ThreadRef& t) const noexcept {
    return std::hash<std::uint64_t>()(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(t.group)) << 32) |
        static_cast<std::uint32_t>(t.index));
  }
};
