#include "flow/ledger.hpp"

#include "support/error.hpp"

namespace dps::flow {

std::uint64_t Ledger::openInstance(OpId opener, std::int32_t maxInFlight) {
  const std::uint64_t id = nextInstance_++;
  Entry e;
  e.opener = opener;
  e.maxInFlight = maxInFlight;
  table_.emplace(id, e);
  return id;
}

const Ledger::Entry& Ledger::get(std::uint64_t instance) const {
  auto it = table_.find(instance);
  DPS_CHECK(it != table_.end(), "unknown instance " + std::to_string(instance));
  return it->second;
}

Ledger::Entry& Ledger::get(std::uint64_t instance) {
  return const_cast<Entry&>(static_cast<const Ledger*>(this)->get(instance));
}

bool Ledger::canEmit(std::uint64_t instance) const {
  const Entry& e = get(instance);
  DPS_CHECK(!e.emitterClosed, "emission after emitter closed");
  return e.maxInFlight == 0 || e.tokensHeld < e.maxInFlight;
}

std::uint64_t Ledger::recordEmission(std::uint64_t instance) {
  Entry& e = get(instance);
  DPS_CHECK(!e.emitterClosed, "emission after emitter closed");
  DPS_CHECK(e.maxInFlight == 0 || e.tokensHeld < e.maxInFlight,
            "emission without available flow-control token");
  if (e.maxInFlight > 0) ++e.tokensHeld;
  return e.emitted++;
}

bool Ledger::closeEmitter(std::uint64_t instance) {
  Entry& e = get(instance);
  DPS_CHECK(!e.emitterClosed, "emitter closed twice");
  DPS_CHECK(e.emitted > 0, "instance closed with zero emissions (empty split scopes "
                           "are not allowed; emit a sentinel object instead)");
  e.emitterClosed = true;
  return e.absorbed == e.emitted;
}

bool Ledger::recordAbsorb(std::uint64_t instance) {
  Entry& e = get(instance);
  ++e.absorbed;
  DPS_CHECK(!e.emitterClosed || e.absorbed <= e.emitted,
            "closer absorbed more objects than the opener emitted");
  return e.emitterClosed && e.absorbed == e.emitted;
}

bool Ledger::releaseToken(std::uint64_t instance) {
  Entry& e = get(instance);
  if (e.maxInFlight == 0) return false;
  DPS_CHECK(e.tokensHeld > 0, "token release without held token");
  const bool wasBlocked = e.tokensHeld == e.maxInFlight;
  --e.tokensHeld;
  return wasBlocked && !e.emitterClosed;
}

bool Ledger::isComplete(std::uint64_t instance) const {
  const Entry& e = get(instance);
  return e.emitterClosed && e.absorbed == e.emitted;
}

std::uint64_t Ledger::emitted(std::uint64_t instance) const { return get(instance).emitted; }
std::uint64_t Ledger::absorbed(std::uint64_t instance) const { return get(instance).absorbed; }
OpId Ledger::openerOf(std::uint64_t instance) const { return get(instance).opener; }

void Ledger::erase(std::uint64_t instance) {
  DPS_CHECK(table_.erase(instance) == 1, "erasing unknown instance");
}

} // namespace dps::flow
