// Reusable operation adaptors.
//
// QueueEmitter implements the split/stream emission protocol (hasPending /
// pendingPort / emitOne) over an internal FIFO; concrete splits and streams
// enqueue emissions from onInput / onAllInputsDone and inherit correct
// flow-control behaviour for free.  LambdaLeaf/LambdaSplit cover the small
// one-off operations (tests, examples).
#pragma once

#include <deque>
#include <functional>
#include <utility>

#include "flow/operation.hpp"
#include "support/error.hpp"

namespace dps::flow {

/// Base class for splits and streams: queue emissions, emit one per step.
class QueueEmitter : public Operation {
public:
  bool hasPending() const final { return !queue_.empty(); }
  std::int32_t pendingPort() const final {
    DPS_CHECK(!queue_.empty(), "pendingPort with empty queue");
    return queue_.front().port;
  }
  void emitOne(OpContext& ctx) final {
    DPS_CHECK(!queue_.empty(), "emitOne with empty queue");
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    if (p.charge > SimDuration::zero()) ctx.charge(p.charge);
    if (p.prepare) p.prepare(ctx);
    ctx.post(std::move(p.obj), p.port);
  }

protected:
  /// Queues an emission; `charge` models the cost of generating the object
  /// (PDEXEC), `prepare` runs just before the post (direct execution work
  /// such as copying payload blocks).
  void enqueue(serial::ObjectPtr obj, std::int32_t port = 0,
               SimDuration charge = SimDuration::zero(),
               std::function<void(OpContext&)> prepare = nullptr) {
    DPS_CHECK(obj != nullptr, "enqueueing null object");
    queue_.push_back(Pending{std::move(obj), port, charge, std::move(prepare)});
  }

  std::size_t queuedCount() const { return queue_.size(); }

private:
  struct Pending {
    serial::ObjectPtr obj;
    std::int32_t port;
    SimDuration charge;
    std::function<void(OpContext&)> prepare;
  };
  std::deque<Pending> queue_;
};

/// Leaf from a callable: void(OpContext&, const ObjectBase&).
class LambdaLeaf final : public Operation {
public:
  using Fn = std::function<void(OpContext&, const serial::ObjectBase&)>;
  explicit LambdaLeaf(Fn fn) : fn_(std::move(fn)) {}
  void onInput(OpContext& ctx, const serial::ObjectBase& in) override { fn_(ctx, in); }

private:
  Fn fn_;
};

/// Split from a callable that enqueues emissions through the emitter.
class LambdaSplit final : public QueueEmitter {
public:
  /// The callable receives (*this) to enqueue emissions.
  using Fn = std::function<void(LambdaSplit&, OpContext&, const serial::ObjectBase&)>;
  explicit LambdaSplit(Fn fn) : fn_(std::move(fn)) {}
  void onInput(OpContext& ctx, const serial::ObjectBase& in) override { fn_(*this, ctx, in); }
  using QueueEmitter::enqueue; // expose to the callable

private:
  Fn fn_;
};

/// Merge from callables: absorb per input, finish once all inputs arrived.
class LambdaMerge final : public Operation {
public:
  using AbsorbFn = std::function<void(OpContext&, const serial::ObjectBase&)>;
  using FinishFn = std::function<void(OpContext&)>;
  LambdaMerge(AbsorbFn absorb, FinishFn finish)
      : absorb_(std::move(absorb)), finish_(std::move(finish)) {}
  void onInput(OpContext& ctx, const serial::ObjectBase& in) override { absorb_(ctx, in); }
  void onAllInputsDone(OpContext& ctx) override {
    if (finish_) finish_(ctx);
  }

private:
  AbsorbFn absorb_;
  FinishFn finish_;
};

/// Factory helper: makeOp<MyOperation>(ctor args...) returns an
/// OperationFactory creating a fresh instance per activation.
template <typename T, typename... Args>
OperationFactory makeOp(Args... args) {
  return [=]() -> std::unique_ptr<Operation> { return std::make_unique<T>(args...); };
}

} // namespace dps::flow
