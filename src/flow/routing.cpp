#include "flow/routing.hpp"

#include "support/error.hpp"

namespace dps::flow {

RoutingFn routeTo(std::int32_t index) {
  return [index](const RouteContext&, const serial::ObjectBase&) { return index; };
}

RoutingFn roundRobinActive() {
  return [](const RouteContext& rc, const serial::ObjectBase&) {
    DPS_CHECK(!rc.dstActive.empty(), "routing into group with no active threads");
    return rc.dstActive[rc.emission % rc.dstActive.size()];
  };
}

RoutingFn sameIndex() {
  return [](const RouteContext& rc, const serial::ObjectBase&) { return rc.srcThreadIndex; };
}

RoutingFn byKeyActive(std::function<std::uint64_t(const serial::ObjectBase&)> key) {
  return [key = std::move(key)](const RouteContext& rc, const serial::ObjectBase& obj) {
    DPS_CHECK(!rc.dstActive.empty(), "routing into group with no active threads");
    return rc.dstActive[key(obj) % rc.dstActive.size()];
  };
}

RoutingFn byKeyStatic(std::function<std::uint64_t(const serial::ObjectBase&)> key) {
  return [key = std::move(key)](const RouteContext& rc, const serial::ObjectBase& obj) {
    DPS_CHECK(rc.dstGroupSize > 0, "routing into empty group");
    return static_cast<std::int32_t>(key(obj) % static_cast<std::uint64_t>(rc.dstGroupSize));
  };
}

} // namespace dps::flow
