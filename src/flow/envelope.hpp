// Message envelopes and split/merge instance frames.
//
// Every data object travelling through a flow graph carries a stack of
// instance frames.  A split (or the split side of a stream) pushes a frame;
// the matching merge pops it.  The frame stack is what lets the engines
// track nested split-merge scopes, decide merge completion and account
// flow-control tokens (paper §2).
#pragma once

#include <cstdint>
#include <vector>

#include "flow/ids.hpp"
#include "serial/object.hpp"

namespace dps::flow {

struct InstanceFrame {
  /// The split/stream op that opened this scope.
  OpId opener = kNoOp;
  /// The opener's output port the scope belongs to (an op may open one
  /// scope per emitting port, e.g. the LU app's next-level stream emits
  /// trsm requests on one port and row-flip requests on another).
  std::int32_t port = 0;
  /// Globally unique activation id of that opener's scope on that port.
  std::uint64_t instance = 0;
  /// Index of this object among the instance's emissions (0-based).
  std::uint64_t emission = 0;

  friend bool operator==(const InstanceFrame&, const InstanceFrame&) = default;
};

using InstancePath = std::vector<InstanceFrame>;

struct Envelope {
  serial::ObjectPtr payload;
  OpId srcOp = kNoOp;
  OpId dstOp = kNoOp;
  ThreadRef src;
  ThreadRef dst;
  InstancePath path;
  /// Global delivery sequence number (determinism + tracing).
  std::uint64_t seq = 0;
  /// Serialized size, computed by the sizing archive (no payload copies).
  std::size_t wireBytes = 0;
};

} // namespace dps::flow
