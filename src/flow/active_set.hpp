// Active-thread tracking for dynamic node allocation.
//
// Each thread group keeps the set of thread indices that are currently
// allocated.  Routing helpers consult this set, so deactivating a thread
// immediately steers new work away from it — the mechanism behind the
// paper's "kill N threads after iteration k" experiments (§8).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/error.hpp"

namespace dps::flow {

class ActiveSet {
public:
  ActiveSet() = default;
  explicit ActiveSet(std::int32_t size) { reset(size); }

  void reset(std::int32_t size) {
    DPS_CHECK(size > 0, "active set needs positive size");
    active_.assign(size, true);
    rebuild();
  }

  std::int32_t size() const { return static_cast<std::int32_t>(active_.size()); }
  std::int32_t activeCount() const { return static_cast<std::int32_t>(indices_.size()); }
  bool isActive(std::int32_t idx) const { return active_.at(idx); }

  /// Active indices in ascending order; stable until the next (de)activation.
  std::span<const std::int32_t> indices() const { return indices_; }

  /// Returns false if the thread was already in the requested state.
  bool setActive(std::int32_t idx, bool on) {
    if (active_.at(idx) == on) return false;
    DPS_CHECK(on || activeCount() > 1, "cannot deactivate the last active thread");
    active_[idx] = on;
    rebuild();
    return true;
  }

private:
  void rebuild() {
    indices_.clear();
    for (std::int32_t i = 0; i < size(); ++i)
      if (active_[i]) indices_.push_back(i);
  }

  std::vector<bool> active_;
  std::vector<std::int32_t> indices_;
};

} // namespace dps::flow
