#include "flow/graph.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace dps::flow {

const char* toString(OpKind k) {
  switch (k) {
    case OpKind::Leaf: return "leaf";
    case OpKind::Split: return "split";
    case OpKind::Merge: return "merge";
    case OpKind::Stream: return "stream";
  }
  return "?";
}

GroupId FlowGraph::addGroup(std::string name, ThreadStateFactory stateFactory) {
  groups_.push_back(GroupSpec{std::move(name), std::move(stateFactory)});
  return static_cast<GroupId>(groups_.size() - 1);
}

OpId FlowGraph::addOp(std::string name, OpKind kind, GroupId group, OperationFactory factory) {
  if (group < 0 || static_cast<std::size_t>(group) >= groups_.size())
    throw GraphError("op '" + name + "' references unknown group");
  if (!factory) throw GraphError("op '" + name + "' has no operation factory");
  OpSpec spec;
  spec.name = std::move(name);
  spec.kind = kind;
  spec.group = group;
  spec.factory = std::move(factory);
  ops_.push_back(std::move(spec));
  return static_cast<OpId>(ops_.size() - 1);
}

OpId FlowGraph::addLeaf(std::string name, GroupId group, OperationFactory f) {
  return addOp(std::move(name), OpKind::Leaf, group, std::move(f));
}
OpId FlowGraph::addSplit(std::string name, GroupId group, OperationFactory f) {
  return addOp(std::move(name), OpKind::Split, group, std::move(f));
}
OpId FlowGraph::addMerge(std::string name, GroupId group, OperationFactory f) {
  return addOp(std::move(name), OpKind::Merge, group, std::move(f));
}
OpId FlowGraph::addStream(std::string name, GroupId group, OperationFactory f) {
  return addOp(std::move(name), OpKind::Stream, group, std::move(f));
}

const OpSpec& FlowGraph::op(OpId id) const {
  DPS_CHECK(id >= 0 && static_cast<std::size_t>(id) < ops_.size(), "bad op id");
  return ops_[id];
}

const GroupSpec& FlowGraph::group(GroupId id) const {
  DPS_CHECK(id >= 0 && static_cast<std::size_t>(id) < groups_.size(), "bad group id");
  return groups_[id];
}

void FlowGraph::pair(OpId opener, std::int32_t port, OpId closer) {
  OpSpec& o = ops_.at(opener);
  OpSpec& c = ops_.at(closer);
  if (o.kind != OpKind::Split && o.kind != OpKind::Stream)
    throw GraphError("pair(): opener '" + o.name + "' must be a split or stream");
  if (c.kind != OpKind::Merge && c.kind != OpKind::Stream)
    throw GraphError("pair(): closer '" + c.name + "' must be a merge or stream");
  if (port < 0) throw GraphError("pair(): negative port");
  if (o.scopeCloserByPort.count(port))
    throw GraphError("port " + std::to_string(port) + " of opener '" + o.name + "' already paired");
  o.scopeCloserByPort[port] = closer;
  c.closes.emplace_back(opener, port);
}

void FlowGraph::setFlowControl(OpId opener, std::int32_t port, FlowControlSpec fc) {
  OpSpec& o = ops_.at(opener);
  if (!o.scopeCloserByPort.count(port))
    throw GraphError("flow control requires a paired scope port ('" + o.name + "' port " +
                     std::to_string(port) + ")");
  if (fc.maxInFlight < 0) throw GraphError("flow control limit must be >= 0");
  o.flowControlByPort[port] = fc;
}

OpId FlowGraph::closerOf(OpId opener, std::int32_t port) const {
  const OpSpec& o = op(opener);
  auto it = o.scopeCloserByPort.find(port);
  return it == o.scopeCloserByPort.end() ? kNoOp : it->second;
}

FlowControlSpec FlowGraph::flowControlOf(OpId opener, std::int32_t port) const {
  const OpSpec& o = op(opener);
  auto it = o.flowControlByPort.find(port);
  return it == o.flowControlByPort.end() ? FlowControlSpec{} : it->second;
}

void FlowGraph::connect(OpId from, std::int32_t port, OpId to, RoutingFn route) {
  OpSpec& f = ops_.at(from);
  (void)ops_.at(to); // bounds check
  if (!route) throw GraphError("edge from '" + f.name + "' has no routing function");
  if (port < 0) throw GraphError("negative port");
  if (edgeAt(from, port) || isOutputPort(from, port))
    throw GraphError("port " + std::to_string(port) + " of '" + f.name + "' already connected");
  edges_.push_back(EdgeSpec{from, port, to, std::move(route)});
  if (static_cast<std::size_t>(port) >= f.outEdges.size()) f.outEdges.resize(port + 1, -1);
  f.outEdges[port] = static_cast<std::int32_t>(edges_.size() - 1);
}

void FlowGraph::connectOutput(OpId from, std::int32_t port) {
  OpSpec& f = ops_.at(from);
  if (edgeAt(from, port) || isOutputPort(from, port))
    throw GraphError("port " + std::to_string(port) + " of '" + f.name + "' already connected");
  outputPorts_.emplace_back(from, port);
}

void FlowGraph::setEntry(OpId op, std::int32_t entryThread) {
  (void)ops_.at(op);
  if (entryThread < 0) throw GraphError("negative entry thread");
  entry_ = op;
  entryThread_ = entryThread;
}

std::optional<std::int32_t> FlowGraph::edgeAt(OpId op, std::int32_t port) const {
  const OpSpec& o = ops_.at(op);
  if (port < 0 || static_cast<std::size_t>(port) >= o.outEdges.size()) return std::nullopt;
  if (o.outEdges[port] < 0) return std::nullopt;
  return o.outEdges[port];
}

bool FlowGraph::isOutputPort(OpId op, std::int32_t port) const {
  return std::find(outputPorts_.begin(), outputPorts_.end(),
                   std::make_pair(op, port)) != outputPorts_.end();
}

void FlowGraph::validate() const {
  if (ops_.empty()) throw GraphError("graph has no operations");
  if (entry_ == kNoOp) throw GraphError("graph has no entry operation");

  // Pairing completeness.
  for (const OpSpec& o : ops_) {
    if ((o.kind == OpKind::Split || o.kind == OpKind::Stream) && o.scopeCloserByPort.empty())
      throw GraphError(std::string(toString(o.kind)) + " '" + o.name +
                       "' opens no scope (pair at least one emitting port)");
    if ((o.kind == OpKind::Merge || o.kind == OpKind::Stream) && o.closes.empty())
      throw GraphError(std::string(toString(o.kind)) + " '" + o.name +
                       "' closes no scope (pair it with an opener)");
    if (o.kind == OpKind::Leaf && !o.scopeCloserByPort.empty())
      throw GraphError("leaf '" + o.name + "' cannot open scopes");
  }

  // Acyclicity (paper: applications are directed *acyclic* graphs).
  std::vector<int> state(ops_.size(), 0); // 0 unvisited, 1 in-stack, 2 done
  std::vector<OpId> stack{entry_};
  std::vector<std::size_t> edgeIdx{0};
  // Iterative DFS with explicit colouring.
  std::function<void(OpId)> dfs = [&](OpId u) {
    state[u] = 1;
    for (std::int32_t ei : ops_[u].outEdges) {
      if (ei < 0) continue;
      const OpId v = edges_[ei].to;
      if (state[v] == 1)
        throw GraphError("cycle through '" + ops_[u].name + "' -> '" + ops_[v].name + "'");
      if (state[v] == 0) dfs(v);
    }
    state[u] = 2;
  };
  dfs(entry_);

  // Every op reachable from the entry (unreachable ops are dead weight and
  // almost always a wiring bug).
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (state[i] == 0)
      throw GraphError("op '" + ops_[i].name + "' is unreachable from the entry");
  }

  // Non-merge ops must have at least one out-edge or output port; merges and
  // streams may legitimately terminate a lineage only via outputs.
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const OpSpec& o = ops_[i];
    bool hasOut = std::any_of(o.outEdges.begin(), o.outEdges.end(),
                              [](std::int32_t e) { return e >= 0; });
    for (const auto& [op, port] : outputPorts_) {
      (void)port;
      if (op == static_cast<OpId>(i)) hasOut = true;
    }
    if (!hasOut)
      throw GraphError("op '" + o.name + "' has no outgoing edge or output port");
  }
}

Deployment Deployment::roundRobin(const FlowGraph& g,
                                  const std::vector<std::int32_t>& groupThreadCounts,
                                  std::int32_t nodes) {
  if (nodes <= 0) throw ConfigError("deployment needs at least one node");
  if (groupThreadCounts.size() != g.groupCount())
    throw ConfigError("thread count list does not match group count");
  Deployment d;
  d.nodeCount = nodes;
  d.groupNodes.resize(g.groupCount());
  for (std::size_t gi = 0; gi < g.groupCount(); ++gi) {
    const std::int32_t n = groupThreadCounts[gi];
    if (n <= 0) throw ConfigError("group '" + g.group(static_cast<GroupId>(gi)).name +
                                  "' needs at least one thread");
    d.groupNodes[gi].resize(n);
    for (std::int32_t t = 0; t < n; ++t) d.groupNodes[gi][t] = t % nodes;
  }
  return d;
}

void Deployment::validateAgainst(const FlowGraph& g) const {
  if (nodeCount <= 0) throw ConfigError("deployment has no nodes");
  if (groupNodes.size() != g.groupCount())
    throw ConfigError("deployment group count mismatch");
  for (const auto& nodes : groupNodes) {
    if (nodes.empty()) throw ConfigError("deployment has a group with no threads");
    for (NodeId n : nodes)
      if (n < 0 || n >= nodeCount) throw ConfigError("deployment maps a thread to a bad node");
  }
  if (g.entryThread() >= threadsIn(g.op(g.entryOp()).group))
    throw ConfigError("entry thread index out of range");
}

} // namespace dps::flow
