// Flow graph construction and validation.
//
// A flow graph is a DAG of leaf / split / merge / stream operations with
// routing functions on edges (paper §2, Fig. 1).  Graphs are built at run
// time by application code; thread groups declare the logical DPS threads
// operations run on, and a Deployment maps threads onto compute nodes.
//
// Split/stream scopes are paired explicitly with their closing merge/stream
// via pair(); validate() checks acyclicity, port uniqueness, pairing
// completeness and reachability, so malformed graphs fail before any engine
// runs them.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "flow/ids.hpp"
#include "flow/operation.hpp"
#include "flow/routing.hpp"

namespace dps::flow {

enum class OpKind : std::uint8_t { Leaf, Split, Merge, Stream };

const char* toString(OpKind k);

/// Limits the number of data objects in circulation between a split/stream
/// instance and its matching merge (paper §2 flow control, Fig. 6).
struct FlowControlSpec {
  std::int32_t maxInFlight = 0; // 0 = unlimited
};

/// Pseudo destination: objects posted on an edge to kOutputOp become run
/// results instead of being delivered to an operation.
constexpr OpId kOutputOp = -2;

struct EdgeSpec {
  OpId from = kNoOp;
  std::int32_t port = 0;
  OpId to = kNoOp;
  RoutingFn route;
};

struct OpSpec {
  std::string name;
  OpKind kind = OpKind::Leaf;
  GroupId group = -1;
  OperationFactory factory;
  /// For split/stream: port -> merge/stream closing that port's scope.
  std::map<std::int32_t, OpId> scopeCloserByPort;
  /// For split/stream: port -> flow control on that port's emissions.
  std::map<std::int32_t, FlowControlSpec> flowControlByPort;
  /// For merge/stream: the (opener, port) scopes this op closes.
  std::vector<std::pair<OpId, std::int32_t>> closes;
  /// Out-edges indexed by port (dense, port p stored at outEdges[p]).
  std::vector<std::int32_t> outEdges; // indices into FlowGraph::edges_
};

struct GroupSpec {
  std::string name;
  ThreadStateFactory stateFactory; // may be null
};

class FlowGraph {
public:
  GroupId addGroup(std::string name, ThreadStateFactory stateFactory = nullptr);

  OpId addLeaf(std::string name, GroupId group, OperationFactory factory);
  OpId addSplit(std::string name, GroupId group, OperationFactory factory);
  OpId addMerge(std::string name, GroupId group, OperationFactory factory);
  OpId addStream(std::string name, GroupId group, OperationFactory factory);

  /// Declares that `closer` (merge or stream) closes the scope opened by
  /// `opener`'s emissions on `port`.  An opener may open one scope per
  /// emitting port; a closer may close scopes of several openers.
  void pair(OpId opener, std::int32_t port, OpId closer);

  /// Enables flow control on a split/stream port's emissions.
  void setFlowControl(OpId opener, std::int32_t port, FlowControlSpec fc);

  /// Adds the edge (from, port) -> to with the given routing function.
  void connect(OpId from, std::int32_t port, OpId to, RoutingFn route);
  /// Marks (from, port) as a program output.
  void connectOutput(OpId from, std::int32_t port);

  /// Declares the operation that receives program input objects.
  void setEntry(OpId op, std::int32_t entryThread = 0);

  /// Structural validation; throws GraphError on any defect.  Must be
  /// called (directly or by an engine) before execution.
  void validate() const;

  // --- engine accessors ---
  std::size_t opCount() const { return ops_.size(); }
  std::size_t groupCount() const { return groups_.size(); }
  const OpSpec& op(OpId id) const;
  const GroupSpec& group(GroupId id) const;
  const EdgeSpec& edge(std::int32_t idx) const { return edges_.at(idx); }
  /// Edge leaving (op, port); nullopt if the port is a program output or
  /// unconnected.
  std::optional<std::int32_t> edgeAt(OpId op, std::int32_t port) const;
  bool isOutputPort(OpId op, std::int32_t port) const;
  /// Closer of (opener, port)'s scope; kNoOp if the port is unpaired (its
  /// posts forward the current lineage instead of opening a scope).
  OpId closerOf(OpId opener, std::int32_t port) const;
  FlowControlSpec flowControlOf(OpId opener, std::int32_t port) const;
  OpId entryOp() const { return entry_; }
  std::int32_t entryThread() const { return entryThread_; }

private:
  OpId addOp(std::string name, OpKind kind, GroupId group, OperationFactory factory);

  std::vector<OpSpec> ops_;
  std::vector<GroupSpec> groups_;
  std::vector<EdgeSpec> edges_;
  std::vector<std::pair<OpId, std::int32_t>> outputPorts_;
  OpId entry_ = kNoOp;
  std::int32_t entryThread_ = 0;
};

/// Maps every logical thread of every group onto a compute node.
struct Deployment {
  /// groupNodes[g][t] = node hosting thread t of group g.
  std::vector<std::vector<NodeId>> groupNodes;
  std::int32_t nodeCount = 0;

  /// Round-robins `threads` threads of each group over `nodes` nodes.
  static Deployment roundRobin(const FlowGraph& g,
                               const std::vector<std::int32_t>& groupThreadCounts,
                               std::int32_t nodes);

  NodeId nodeOf(ThreadRef t) const { return groupNodes.at(t.group).at(t.index); }
  std::int32_t threadsIn(GroupId g) const {
    return static_cast<std::int32_t>(groupNodes.at(g).size());
  }
  void validateAgainst(const FlowGraph& g) const;
};

/// A complete executable: graph + deployment + input objects.
struct Program {
  const FlowGraph* graph = nullptr;
  Deployment deployment;
  std::vector<serial::ObjectPtr> inputs;
};

} // namespace dps::flow
