// Application-facing operation interface.
//
// Operations are written once and run unchanged on both the discrete-event
// simulator and the OS-thread runtime engine — the paper's "the real and
// simulated applications may be run identically" property (§3).
//
// The engine drives operations through an incremental protocol whose call
// boundaries are exactly the paper's *atomic steps*:
//
//   onInput(ctx, obj)   one step: leaf compute, split intake, merge/stream
//                       absorb.  May post() (each post ends a timing
//                       segment, like S1/S2 in Fig. 2).
//   hasPending()        split/stream: more emissions queued?
//   emitOne(ctx)        emits exactly ONE object; called only when a
//                       flow-control token is available, which realizes
//                       operation suspension without suspending any thread.
//   onAllInputsDone(ctx) merge finalization / stream group completion.
//
// Kernel execution vs. modeling (partial direct execution, §4): wrap every
// expensive computation in ctx.kernel(modeledCost, realWork).  Under direct
// execution the work runs (and is measured); under PDEXEC only the modeled
// cost is charged.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "flow/ids.hpp"
#include "serial/object.hpp"
#include "support/rng.hpp"
#include "support/time.hpp"

namespace dps::flow {

/// Per-(thread, run) application state; the "local thread state" DPS ops use
/// to hold data between operations (e.g. the LU app's column blocks).
class ThreadState {
public:
  virtual ~ThreadState() = default;
};

class OpContext {
public:
  virtual ~OpContext() = default;

  /// Current virtual (sim engine) or wall-relative (runtime engine) time.
  virtual SimTime now() const = 0;
  /// Index of the executing thread within the operation's group.
  virtual std::int32_t threadIndex() const = 0;
  virtual std::int32_t groupSize(GroupId g) const = 0;
  /// Active thread indices of a group (dynamic allocation aware).
  virtual std::span<const std::int32_t> activeThreads(GroupId g) const = 0;
  /// This thread's application state (created by the group's state factory).
  virtual ThreadState* threadState() = 0;

  /// Posts a data object on the given output port.  Ends the current timing
  /// segment: the transfer departs at the corresponding virtual instant.
  virtual void post(serial::ObjectPtr obj, std::int32_t port = 0) = 0;

  /// Charges modeled computation time to the current atomic step (PDEXEC).
  virtual void charge(SimDuration d) = 0;
  /// True when real kernels should execute (direct execution); false when
  /// the engine runs in PDEXEC mode and modeled costs should be charged.
  virtual bool executeKernels() const = 0;
  /// False in NOALLOC mode: applications should create phantom payloads and
  /// skip large allocations (paper §7, "PDEXEC NOALLOC").
  virtual bool allocatePayloads() const = 0;

  /// Emits an application progress marker, e.g. ("iteration", 3).  Markers
  /// segment the dynamic-efficiency timeline and trigger allocation events.
  virtual void marker(std::string_view name, std::int64_t value) = 0;

  /// Deterministic per-thread random stream.
  virtual Rng& rng() = 0;

  /// Runs `realWork` under direct execution, otherwise charges `modeled`.
  template <typename Fn>
  void kernel(SimDuration modeled, Fn&& realWork) {
    if (executeKernels()) {
      realWork();
    } else {
      charge(modeled);
    }
  }
};

class Operation {
public:
  virtual ~Operation() = default;

  /// Consumes one input object (one atomic step).
  virtual void onInput(OpContext& ctx, const serial::ObjectBase& in) = 0;

  /// Split/stream: true while emissions are queued.
  virtual bool hasPending() const { return false; }

  /// Split/stream: output port of the next queued emission.  The engine
  /// checks this port's flow-control token before calling emitOne, which is
  /// what suspends an operation that ran out of tokens (paper §2/§3).
  virtual std::int32_t pendingPort() const { return 0; }

  /// Split/stream: emits exactly one queued object (one atomic step) on
  /// pendingPort().
  virtual void emitOne(OpContext& ctx);

  /// Merge: all inputs of the instance absorbed — aggregate and post.
  /// Stream: the upstream scope closed — flush any trailing emissions.
  virtual void onAllInputsDone(OpContext& ctx) { (void)ctx; }
};

using OperationFactory = std::function<std::unique_ptr<Operation>()>;
using ThreadStateFactory = std::function<std::unique_ptr<ThreadState>(std::int32_t threadIndex)>;

} // namespace dps::flow
