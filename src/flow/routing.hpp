// Routing functions: user-defined mapping of data objects onto the threads
// of the destination group (paper §2: "evaluating at runtime a user defined
// routing function attached to the corresponding directed edge").
//
// Routing sees the *active* thread set, which is how dynamically varying
// node allocation reaches applications: a removed thread simply disappears
// from `active`, and helpers like roundRobinActive spread work over the
// remaining ones.
#pragma once

#include <functional>
#include <span>

#include "serial/object.hpp"

namespace dps::flow {

struct RouteContext {
  /// Index of the posting thread within its own group.
  std::int32_t srcThreadIndex = 0;
  /// Declared size of the destination group (includes inactive threads).
  std::int32_t dstGroupSize = 0;
  /// Currently active thread indices of the destination group, ascending.
  std::span<const std::int32_t> dstActive;
  /// Index of this object within its split/stream instance's emissions.
  std::uint64_t emission = 0;
  /// Global object sequence number.
  std::uint64_t seq = 0;
};

/// Returns the destination thread index within the target group.
using RoutingFn = std::function<std::int32_t(const RouteContext&, const serial::ObjectBase&)>;

/// Always routes to a fixed thread index.
RoutingFn routeTo(std::int32_t index);

/// Routes emission i to active[i mod |active|] — the paper's "evenly
/// distributed on all threads" pattern, allocation-aware.
RoutingFn roundRobinActive();

/// Routes back to the thread index the object was posted from (useful for
/// results returning to a per-thread master).
RoutingFn sameIndex();

/// Routes by an application key: thread = active[key(obj) mod |active|].
RoutingFn byKeyActive(std::function<std::uint64_t(const serial::ObjectBase&)> key);

/// Routes by key over the *declared* group, ignoring allocation state (for
/// data-locality routing where state must stay put, e.g. column owners).
RoutingFn byKeyStatic(std::function<std::uint64_t(const serial::ObjectBase&)> key);

} // namespace dps::flow
