// Split/merge instance bookkeeping and flow-control token accounting.
//
// Engine-agnostic: both the discrete-event simulator and the OS-thread
// runtime drive this ledger (the runtime under its dispatch lock).  It
// answers the two questions the DPS runtime must answer:
//
//   1. *Merge completion* — a merge instance completes when its opener has
//      finished emitting AND every emission has been absorbed (paper §2:
//      "once all the results corresponding to the data objects originally
//      sent by a split operation have been collected").
//   2. *Flow control* — an opener instance may hold at most maxInFlight
//      objects between itself and its closer; emissions acquire a token,
//      absorptions at the closer release it (paper §2, Fig. 6).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "flow/ids.hpp"

namespace dps::flow {

class Ledger {
public:
  /// Opens a new instance scope for `opener`; returns its unique id.
  /// `maxInFlight` of 0 disables flow control for the instance.
  std::uint64_t openInstance(OpId opener, std::int32_t maxInFlight);

  /// Records one emission; returns the emission index.  Flow-control token
  /// availability must be checked first via canEmit().
  std::uint64_t recordEmission(std::uint64_t instance);

  /// True when the instance may emit (token available or FC disabled).
  bool canEmit(std::uint64_t instance) const;

  /// Opener finished emitting.  Returns true if the instance is already
  /// fully absorbed (the closer should finalize now).
  bool closeEmitter(std::uint64_t instance);

  /// Closer absorbed one object of the instance.  Returns true if this
  /// absorption completes the instance.
  bool recordAbsorb(std::uint64_t instance);

  /// Releases one flow-control token (called together with recordAbsorb).
  /// Returns true if an emitter might be unblocked by the release.
  bool releaseToken(std::uint64_t instance);

  bool isComplete(std::uint64_t instance) const;
  std::uint64_t emitted(std::uint64_t instance) const;
  std::uint64_t absorbed(std::uint64_t instance) const;
  OpId openerOf(std::uint64_t instance) const;

  /// Drops a completed instance's state.
  void erase(std::uint64_t instance);

  std::size_t liveInstances() const { return table_.size(); }

private:
  struct Entry {
    OpId opener = kNoOp;
    std::uint64_t emitted = 0;
    std::uint64_t absorbed = 0;
    std::int32_t maxInFlight = 0; // 0 = unlimited
    std::int32_t tokensHeld = 0;
    bool emitterClosed = false;
  };

  const Entry& get(std::uint64_t instance) const;
  Entry& get(std::uint64_t instance);

  std::unordered_map<std::uint64_t, Entry> table_;
  std::uint64_t nextInstance_ = 1;
};

} // namespace dps::flow
