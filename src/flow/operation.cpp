#include "flow/operation.hpp"

#include "support/error.hpp"

namespace dps::flow {

void Operation::emitOne(OpContext&) {
  DPS_CHECK(false, "emitOne called on an operation that never reports pending emissions");
}

} // namespace dps::flow
