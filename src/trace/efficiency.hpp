// Dynamic efficiency (the paper's central metric, §1/§8 Fig. 11).
//
// Efficiency over an interval = useful computation performed (contention-
// free step work, node-seconds) divided by the node-seconds of allocated
// capacity in the interval.  The *dynamic* efficiency evaluates this per
// application phase — here, between successive "iteration" markers —
// exposing how a shrinking workload wastes a static allocation.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace dps::trace {

struct EfficiencyPoint {
  std::int64_t markerValue = 0; // e.g. iteration number
  SimTime start{};
  SimTime end{};
  double efficiency = 0.0; // in [0, 1]
};

/// Splits [runStart, runEnd) at markers named `markerName` and computes the
/// efficiency of each segment.  Segment i ends at the i-th marker; its
/// markerValue is taken from that marker.
std::vector<EfficiencyPoint> dynamicEfficiency(const Trace& trace, const std::string& markerName,
                                               SimTime runStart, SimTime runEnd);

/// Whole-run efficiency over [runStart, runEnd).
double overallEfficiency(const Trace& trace, SimTime runStart, SimTime runEnd);

} // namespace dps::trace
