// Trace container and summary queries.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/records.hpp"

namespace dps::trace {

class Trace {
public:
  void add(StepRecord r) { steps_.push_back(std::move(r)); }
  void add(TransferRecord r) { transfers_.push_back(std::move(r)); }
  void add(MarkerRecord r) { markers_.push_back(std::move(r)); }
  void add(AllocationRecord r) { allocations_.push_back(std::move(r)); }

  const std::vector<StepRecord>& steps() const { return steps_; }
  const std::vector<TransferRecord>& transfers() const { return transfers_; }
  const std::vector<MarkerRecord>& markers() const { return markers_; }
  const std::vector<AllocationRecord>& allocations() const { return allocations_; }

  /// Total contention-free work across all steps.
  SimDuration totalWork() const;
  /// Total bytes moved across the network (excludes same-node hops).
  std::uint64_t totalBytes() const;
  /// Busy (wall) time share of a node in [from, to): fraction of the window
  /// during which at least one step ran on the node.
  double nodeBusyFraction(flow::NodeId node, SimTime from, SimTime to) const;
  /// Sum of step work overlapping [from, to), attributed proportionally to
  /// the overlapped portion of each step's span.
  SimDuration workIn(SimTime from, SimTime to) const;
  /// Time-integral of the allocated node count over [from, to) in
  /// node-seconds.  Allocation records must cover the window.
  double nodeSecondsIn(SimTime from, SimTime to) const;

  /// Marker timestamps with the given name, in time order.
  std::vector<MarkerRecord> markersNamed(const std::string& name) const;

private:
  std::vector<StepRecord> steps_;
  std::vector<TransferRecord> transfers_;
  std::vector<MarkerRecord> markers_;
  std::vector<AllocationRecord> allocations_;
};

} // namespace dps::trace
