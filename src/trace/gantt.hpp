// Timeline rendering: ASCII Gantt charts (one lane per node, like the
// paper's Fig. 2) and CSV export for external plotting.
#pragma once

#include <ostream>
#include <string>

#include "trace/trace.hpp"

namespace dps::trace {

/// Renders per-node activity lanes over [from, to) with `width` character
/// columns.  '#' = computing, '.' = idle; lane labels are node ids.
std::string renderGantt(const Trace& trace, SimTime from, SimTime to, std::size_t width = 100,
                        std::int32_t nodeCount = -1);

/// Writes steps and transfers as CSV rows:
///   step,node,group,thread,op,kind,start_us,end_us,work_us
///   transfer,src,dst,bytes,start_us,end_us
void writeCsv(const Trace& trace, std::ostream& os);

} // namespace dps::trace
