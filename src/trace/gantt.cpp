#include "trace/gantt.hpp"

#include <algorithm>
#include <cstdio>

#include "support/error.hpp"

namespace dps::trace {

std::string renderGantt(const Trace& trace, SimTime from, SimTime to, std::size_t width,
                        std::int32_t nodeCount) {
  DPS_CHECK(to > from, "empty gantt window");
  DPS_CHECK(width >= 10, "gantt too narrow");
  if (nodeCount < 0) {
    for (const auto& s : trace.steps()) nodeCount = std::max(nodeCount, s.node);
    ++nodeCount;
  }
  if (nodeCount <= 0) return "(no steps)\n";

  const double span = toSeconds(to - from);
  std::string out;
  char label[64];
  for (std::int32_t n = 0; n < nodeCount; ++n) {
    std::string lane(width, '.');
    for (const auto& s : trace.steps()) {
      if (s.node != n || s.end <= from || s.start >= to) continue;
      auto col = [&](SimTime t) {
        const double f = toSeconds(t - from) / span;
        return static_cast<std::size_t>(
            std::clamp(f, 0.0, 1.0) * static_cast<double>(width - 1));
      };
      const std::size_t lo = col(std::max(s.start, from));
      const std::size_t hi = col(std::min(s.end, to));
      for (std::size_t c = lo; c <= hi && c < width; ++c) lane[c] = '#';
    }
    std::snprintf(label, sizeof label, "node %2d |", n);
    out += label;
    out += lane;
    out += "|\n";
  }
  return out;
}

void writeCsv(const Trace& trace, std::ostream& os) {
  os << "record,a,b,c,d,kind,start_us,end_us,work_us\n";
  for (const auto& s : trace.steps()) {
    os << "step," << s.node << ',' << s.thread.group << ',' << s.thread.index << ',' << s.op
       << ',' << toString(s.kind) << ',' << toMicros(s.start.time_since_epoch()) << ','
       << toMicros(s.end.time_since_epoch()) << ',' << toMicros(s.work) << '\n';
  }
  for (const auto& t : trace.transfers()) {
    os << "transfer," << t.src << ',' << t.dst << ',' << t.bytes << ",,,"
       << toMicros(t.start.time_since_epoch()) << ',' << toMicros(t.end.time_since_epoch())
       << ",\n";
  }
  for (const auto& m : trace.markers()) {
    os << "marker," << m.name << ',' << m.value << ",,,," << toMicros(m.time.time_since_epoch())
       << ",,\n";
  }
}

} // namespace dps::trace
