// Execution trace records emitted by the engines.
//
// Traces capture everything needed to reconstruct a timing diagram like the
// paper's Fig. 2/4 (steps and transfers per node) and to compute dynamic
// efficiency (paper §1, §8): atomic steps with their contention-free work
// amounts, network transfers, application progress markers, and allocation
// changes.
#pragma once

#include <cstdint>
#include <string>

#include "flow/ids.hpp"
#include "support/time.hpp"

namespace dps::trace {

enum class StepKind : std::uint8_t {
  Input,    // onInput — leaf compute, split intake, merge/stream absorb
  Emit,     // emitOne — split/stream emission
  Finalize, // onAllInputsDone — merge aggregation / stream flush
};

const char* toString(StepKind k);

/// One atomic step: executed without suspension on one thread (paper §3).
struct StepRecord {
  flow::NodeId node = -1;
  flow::ThreadRef thread;
  flow::OpId op = flow::kNoOp;
  StepKind kind = StepKind::Input;
  SimTime start{};
  SimTime end{};
  /// Contention-free work content (the duration the step would take alone
  /// on an idle node); end-start may be larger under CPU sharing.
  SimDuration work{};
};

struct TransferRecord {
  flow::NodeId src = -1;
  flow::NodeId dst = -1;
  std::size_t bytes = 0;
  SimTime start{};
  SimTime end{};
};

/// Application progress marker, e.g. {"iteration", 3}.
struct MarkerRecord {
  std::string name;
  std::int64_t value = 0;
  SimTime time{};
};

/// Allocation change: after this instant, `allocatedNodes` nodes are held.
struct AllocationRecord {
  SimTime time{};
  std::int32_t allocatedNodes = 0;
};

} // namespace dps::trace
