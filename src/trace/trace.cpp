#include "trace/trace.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace dps::trace {

const char* toString(StepKind k) {
  switch (k) {
    case StepKind::Input: return "input";
    case StepKind::Emit: return "emit";
    case StepKind::Finalize: return "finalize";
  }
  return "?";
}

SimDuration Trace::totalWork() const {
  SimDuration total{};
  for (const auto& s : steps_) total += s.work;
  return total;
}

std::uint64_t Trace::totalBytes() const {
  std::uint64_t total = 0;
  for (const auto& t : transfers_) total += t.bytes;
  return total;
}

namespace {
SimDuration overlap(SimTime aLo, SimTime aHi, SimTime bLo, SimTime bHi) {
  const SimTime lo = std::max(aLo, bLo);
  const SimTime hi = std::min(aHi, bHi);
  return hi > lo ? hi - lo : SimDuration::zero();
}
} // namespace

double Trace::nodeBusyFraction(flow::NodeId node, SimTime from, SimTime to) const {
  DPS_CHECK(to > from, "empty busy-fraction window");
  // Collect intervals on the node, merge overlaps, integrate.
  std::vector<std::pair<SimTime, SimTime>> spans;
  for (const auto& s : steps_) {
    if (s.node != node || s.end <= from || s.start >= to) continue;
    spans.emplace_back(std::max(s.start, from), std::min(s.end, to));
  }
  std::sort(spans.begin(), spans.end());
  SimDuration busy{};
  SimTime cursor = from;
  for (const auto& [lo, hi] : spans) {
    const SimTime start = std::max(lo, cursor);
    if (hi > start) {
      busy += hi - start;
      cursor = hi;
    }
  }
  return toSeconds(busy) / toSeconds(to - from);
}

SimDuration Trace::workIn(SimTime from, SimTime to) const {
  DPS_CHECK(to > from, "empty work window");
  SimDuration total{};
  for (const auto& s : steps_) {
    const SimDuration span = s.end - s.start;
    if (span <= SimDuration::zero()) {
      // Instantaneous step: attribute fully if the instant lies inside.
      if (s.start >= from && s.start < to) total += s.work;
      continue;
    }
    const SimDuration ov = overlap(s.start, s.end, from, to);
    if (ov > SimDuration::zero())
      total += scale(s.work, toSeconds(ov) / toSeconds(span));
  }
  return total;
}

double Trace::nodeSecondsIn(SimTime from, SimTime to) const {
  DPS_CHECK(to > from, "empty node-seconds window");
  DPS_CHECK(!allocations_.empty(), "no allocation records");
  double nodeSeconds = 0.0;
  // allocations_ are appended in time order; integrate piecewise.
  for (std::size_t i = 0; i < allocations_.size(); ++i) {
    const SimTime lo = allocations_[i].time;
    const SimTime hi = (i + 1 < allocations_.size()) ? allocations_[i + 1].time : to;
    const SimDuration ov = overlap(lo, std::max(hi, lo), from, to);
    nodeSeconds += toSeconds(ov) * allocations_[i].allocatedNodes;
  }
  return nodeSeconds;
}

std::vector<MarkerRecord> Trace::markersNamed(const std::string& name) const {
  std::vector<MarkerRecord> out;
  for (const auto& m : markers_)
    if (m.name == name) out.push_back(m);
  std::sort(out.begin(), out.end(),
            [](const MarkerRecord& a, const MarkerRecord& b) { return a.time < b.time; });
  return out;
}

} // namespace dps::trace
