#include "trace/efficiency.hpp"

#include "support/error.hpp"

namespace dps::trace {

namespace {
double segmentEfficiency(const Trace& trace, SimTime lo, SimTime hi) {
  if (hi <= lo) return 0.0;
  const double nodeSeconds = trace.nodeSecondsIn(lo, hi);
  if (nodeSeconds <= 0.0) return 0.0;
  return toSeconds(trace.workIn(lo, hi)) / nodeSeconds;
}
} // namespace

std::vector<EfficiencyPoint> dynamicEfficiency(const Trace& trace, const std::string& markerName,
                                               SimTime runStart, SimTime runEnd) {
  const auto markers = trace.markersNamed(markerName);
  std::vector<EfficiencyPoint> points;
  SimTime cursor = runStart;
  for (const auto& m : markers) {
    EfficiencyPoint p;
    p.markerValue = m.value;
    p.start = cursor;
    p.end = m.time;
    p.efficiency = segmentEfficiency(trace, p.start, p.end);
    points.push_back(p);
    cursor = m.time;
  }
  if (cursor < runEnd) {
    EfficiencyPoint p;
    p.markerValue = points.empty() ? 0 : points.back().markerValue + 1;
    p.start = cursor;
    p.end = runEnd;
    p.efficiency = segmentEfficiency(trace, cursor, runEnd);
    points.push_back(p);
  }
  return points;
}

double overallEfficiency(const Trace& trace, SimTime runStart, SimTime runEnd) {
  return segmentEfficiency(trace, runStart, runEnd);
}

} // namespace dps::trace
