// Per-node CPU model (paper §4).
//
// Each virtual node has one unit of processing power.  Active network
// transfers consume a fixed fraction each (receiving costs more than
// sending); the remainder is shared evenly among all atomic steps currently
// running on the node.  Steps are processor-sharing customers: their
// completion times are re-planned whenever node membership or communication
// activity changes.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "des/scheduler.hpp"
#include "flow/ids.hpp"
#include "support/time.hpp"

namespace dps::core {

class CpuModel {
public:
  struct Config {
    bool sharing = true;       // divide remaining CPU among running steps
    bool commOverhead = true;  // transfers consume CPU
    double cpuPerIncoming = 0.02;
    double cpuPerOutgoing = 0.01;
    /// CPU never drops below this floor (a saturated NIC still leaves the
    /// kernel scheduler a little time for user code).
    double minAvailable = 0.05;
  };

  using StepHandle = std::uint64_t;
  using Completion = std::function<void()>;

  CpuModel(des::Scheduler& sched, Config cfg, std::int32_t nodeCount);

  /// Starts an atomic step of `work` contention-free duration on `node`;
  /// `onDone` fires when the (possibly stretched) step completes.
  StepHandle startStep(flow::NodeId node, SimDuration work, Completion onDone);

  /// Updates communication activity (wired to StarNetwork's observer).
  void setCommActivity(flow::NodeId node, int activeIn, int activeOut);

  int runningSteps(flow::NodeId node) const;
  /// CPU fraction currently available to computation on the node.
  double availableCpu(flow::NodeId node) const;

private:
  struct Step {
    flow::NodeId node;
    double remainingWork; // seconds at rate 1.0
    double rate = 0.0;
    SimTime lastUpdate{};
    Completion onDone;
    des::EventId completion;
  };
  struct Node {
    int activeIn = 0;
    int activeOut = 0;
    std::vector<StepHandle> running;
  };

  void replanNode(flow::NodeId node);
  double stepRate(const Node& n) const;
  void finish(StepHandle h);

  des::Scheduler& sched_;
  Config cfg_;
  std::vector<Node> nodes_;
  std::unordered_map<StepHandle, Step> steps_;
  StepHandle next_ = 1;
};

} // namespace dps::core
