#include "core/cpu_model.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace dps::core {

CpuModel::CpuModel(des::Scheduler& sched, Config cfg, std::int32_t nodeCount)
    : sched_(sched), cfg_(cfg), nodes_(nodeCount) {
  DPS_CHECK(nodeCount > 0, "cpu model needs nodes");
  DPS_CHECK(cfg_.minAvailable > 0.0, "minAvailable must be positive");
}

double CpuModel::availableCpu(flow::NodeId node) const {
  const Node& n = nodes_.at(node);
  if (!cfg_.commOverhead) return 1.0;
  const double used = n.activeIn * cfg_.cpuPerIncoming + n.activeOut * cfg_.cpuPerOutgoing;
  return std::max(cfg_.minAvailable, 1.0 - used);
}

double CpuModel::stepRate(const Node& n) const {
  double avail = 1.0;
  if (cfg_.commOverhead) {
    const double used = n.activeIn * cfg_.cpuPerIncoming + n.activeOut * cfg_.cpuPerOutgoing;
    avail = std::max(cfg_.minAvailable, 1.0 - used);
  }
  if (cfg_.sharing) {
    const int k = std::max<std::size_t>(1, n.running.size());
    return avail / k;
  }
  return avail;
}

CpuModel::StepHandle CpuModel::startStep(flow::NodeId node, SimDuration work, Completion onDone) {
  DPS_CHECK(node >= 0 && static_cast<std::size_t>(node) < nodes_.size(), "bad node");
  DPS_CHECK(work >= SimDuration::zero(), "negative work");
  const StepHandle h = next_++;
  Step s;
  s.node = node;
  s.remainingWork = toSeconds(work);
  s.lastUpdate = sched_.now();
  s.onDone = std::move(onDone);
  steps_.emplace(h, std::move(s));
  nodes_[node].running.push_back(h);
  replanNode(node);
  return h;
}

void CpuModel::setCommActivity(flow::NodeId node, int activeIn, int activeOut) {
  Node& n = nodes_.at(node);
  if (n.activeIn == activeIn && n.activeOut == activeOut) return;
  n.activeIn = activeIn;
  n.activeOut = activeOut;
  if (cfg_.commOverhead) replanNode(node);
}

int CpuModel::runningSteps(flow::NodeId node) const {
  return static_cast<int>(nodes_.at(node).running.size());
}

void CpuModel::replanNode(flow::NodeId node) {
  Node& n = nodes_.at(node);
  const double rate = stepRate(n);
  const SimTime now = sched_.now();
  for (StepHandle h : n.running) {
    Step& s = steps_.at(h);
    if (s.rate > 0.0) {
      const double elapsed = toSeconds(now - s.lastUpdate);
      s.remainingWork = std::max(0.0, s.remainingWork - s.rate * elapsed);
    }
    s.lastUpdate = now;
    s.rate = rate;
    if (s.completion.pending()) sched_.cancel(s.completion);
    s.completion = sched_.scheduleAfter(seconds(s.remainingWork / rate),
                                        [this, h] { finish(h); });
  }
}

void CpuModel::finish(StepHandle h) {
  auto it = steps_.find(h);
  DPS_CHECK(it != steps_.end(), "unknown step finished");
  const flow::NodeId node = it->second.node;
  Completion done = std::move(it->second.onDone);
  auto& running = nodes_[node].running;
  running.erase(std::remove(running.begin(), running.end(), h), running.end());
  steps_.erase(it);
  replanNode(node);
  done();
}

} // namespace dps::core
