// Simulator configuration: execution mode, model knobs, fidelity layer.
#pragma once

#include <cstdint>

#include "net/profile.hpp"
#include "support/fingerprint.hpp"
#include "support/time.hpp"

namespace dps::core {

/// How atomic-step durations are obtained (paper §4).
enum class ExecutionMode : std::uint8_t {
  /// Direct execution: operation bodies (including kernels) really run and
  /// each step's wall-clock time becomes its simulated duration.  Accurate
  /// but host-dependent and as slow as the serial application.
  DirectExec,
  /// Partial direct execution (PDEXEC): kernels are skipped; applications
  /// charge modeled costs via OpContext::charge().  Fast, deterministic and
  /// portable across simulation hosts.
  Pdexec,
};

/// High-fidelity layer used when the simulator stands in for a physical
/// cluster (the "measured" side of the validation experiments; DESIGN.md
/// §4).  Adds the messiness a simple l + s/b + even-sharing model does not
/// capture: per-message protocol overheads, packetization, bandwidth
/// derating, and per-step compute-time variation.  All noise is drawn from
/// a seeded generator, so "measurements" are reproducible.
struct FidelityConfig {
  bool enabled = false;
  std::uint64_t seed = 0x5EED;

  /// Std-dev of multiplicative per-step compute noise (lognormal-ish).
  double computeJitter = 0.03;
  /// Per-node speed deviation sampled once per run: background daemons,
  /// thermal state — the slowest node drags barriers, exactly the effect a
  /// calibrated-mean predictor cannot see.
  double perNodeSpeedSigma = 0.02;
  /// Whole-run speed deviation (shared by all nodes): the day-to-day drift
  /// between the calibration run and the measured run.
  double perRunSpeedSigma = 0.015;
  /// Fixed per-message protocol/interrupt overhead, plus uniform jitter.
  SimDuration perMessageOverhead = microseconds(55);
  SimDuration perMessageJitter = microseconds(30);
  /// Packetization: per-chunk overhead on top of the byte stream.
  std::size_t chunkBytes = 1460;
  SimDuration perChunkOverhead = microseconds(2);
  /// Achievable fraction of nominal bandwidth.
  double bandwidthEfficiency = 0.93;
};

struct SimConfig {
  net::PlatformProfile profile;
  ExecutionMode mode = ExecutionMode::Pdexec;

  /// NOALLOC: applications should use phantom payloads; engine asserts no
  /// real serialization happens.  (paper §7, "PDEXEC NOALLOC")
  bool allocatePayloads = true;

  /// Model ablation knobs (all on = the paper's model).
  bool cpuSharing = true;       // running steps share node CPU evenly
  bool commCpuOverhead = true;  // transfers consume node CPU
  bool networkContention = true; // equal-share link bandwidth

  FidelityConfig fidelity;

  /// Record a full trace (steps/transfers/markers).  Required for the
  /// efficiency analyses; can be disabled for large capacity studies.
  bool recordTrace = true;

  std::uint64_t seed = 42;
};

/// Hashes every semantic field into `fp` (cache-key identity).
inline void fingerprintInto(Fingerprint& fp, const FidelityConfig& f) {
  fp.add(f.enabled)
      .add(f.seed)
      .add(f.computeJitter)
      .add(f.perNodeSpeedSigma)
      .add(f.perRunSpeedSigma)
      .add(f.perMessageOverhead)
      .add(f.perMessageJitter)
      .add(static_cast<std::uint64_t>(f.chunkBytes))
      .add(f.perChunkOverhead)
      .add(f.bandwidthEfficiency);
}

/// Hashes every semantic field into `fp` (cache-key identity).  Two configs
/// with equal fingerprints produce bit-identical simulations of the same
/// program (recordTrace included: it changes what a run *returns*).
inline void fingerprintInto(Fingerprint& fp, const SimConfig& c) {
  net::fingerprintInto(fp, c.profile);
  fp.add(static_cast<std::int32_t>(c.mode))
      .add(c.allocatePayloads)
      .add(c.cpuSharing)
      .add(c.commCpuOverhead)
      .add(c.networkContention);
  fingerprintInto(fp, c.fidelity);
  fp.add(c.recordTrace).add(c.seed);
}

} // namespace dps::core
