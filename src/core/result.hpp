// Result of an engine run.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "flow/operation.hpp"
#include "serial/object.hpp"
#include "support/time.hpp"
#include "trace/trace.hpp"

namespace dps::core {

struct RunCounters {
  std::uint64_t steps = 0;        // atomic steps executed
  std::uint64_t messages = 0;     // data objects posted (incl. same-node)
  std::uint64_t networkBytes = 0; // wire bytes crossing the network
  std::uint64_t kernelsSkipped = 0; // informational (PDEXEC)
};

struct RunResult {
  /// Predicted (sim engine) or elapsed (runtime engine) application time.
  SimDuration makespan{};
  /// Objects posted to program output ports, in completion order.
  std::vector<serial::ObjectPtr> outputs;
  RunCounters counters;
  /// Full execution trace; null when trace recording is disabled.
  std::shared_ptr<trace::Trace> trace;
  /// Thread states harvested after the run ([group][thread]); lets callers
  /// verify application results (e.g. the factored matrix blocks).
  std::vector<std::vector<std::unique_ptr<flow::ThreadState>>> threadStates;
  /// Wall-clock cost of performing the run itself (the paper's Table 1
  /// "running time" column for the simulator rows).
  double wallSeconds = 0.0;
};

} // namespace dps::core
