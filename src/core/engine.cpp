#include "core/engine.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "support/error.hpp"
#include "support/log.hpp"

namespace dps::core {

namespace {
/// Fixed per-message envelope overhead on the wire (headers, framing).
constexpr std::size_t kEnvelopeOverhead = 64;
} // namespace

// ---------------------------------------------------------------------------
// OpContext implementation
// ---------------------------------------------------------------------------

class SimEngine::ContextImpl final : public flow::OpContext {
public:
  ContextImpl(SimEngine& e, ThreadCtx& t, Activation& a) : e_(e), t_(t), a_(a) {
    if (measured()) stamp_ = std::chrono::steady_clock::now();
  }

  SimTime now() const override { return e_.sched_->now(); }
  std::int32_t threadIndex() const override { return a_.thread.index; }

  std::int32_t groupSize(flow::GroupId g) const override {
    return static_cast<std::int32_t>(e_.threads_.at(g).size());
  }

  std::span<const std::int32_t> activeThreads(flow::GroupId g) const override {
    return e_.activeSets_.at(g).indices();
  }

  flow::ThreadState* threadState() override { return t_.state.get(); }

  void post(serial::ObjectPtr obj, std::int32_t port) override {
    DPS_CHECK(obj != nullptr, "posting null data object");
    boundary(Segment::After::Post);
    segs_.back().post = Emission{std::move(obj), port};
    ++posts_;
    lastPostPort_ = port;
  }

  void charge(SimDuration d) override {
    DPS_CHECK(d >= SimDuration::zero(), "negative charge");
    pending_ += d;
  }

  bool executeKernels() const override { return e_.cfg_.mode == ExecutionMode::DirectExec; }
  bool allocatePayloads() const override { return e_.cfg_.allocatePayloads; }

  void marker(std::string_view name, std::int64_t value) override {
    boundary(Segment::After::Mark);
    segs_.back().markName = std::string(name);
    segs_.back().markValue = value;
  }

  Rng& rng() override { return t_.rng; }

  /// Closes the final segment and returns the collected chain.
  std::vector<Segment> take() {
    boundary(Segment::After::Nothing);
    return std::move(segs_);
  }

  int posts() const { return posts_; }
  std::int32_t lastPostPort() const { return lastPostPort_; }

private:
  bool measured() const { return e_.cfg_.mode == ExecutionMode::DirectExec; }

  void boundary(Segment::After after) {
    SimDuration w = pending_;
    pending_ = SimDuration::zero();
    if (measured()) {
      const auto n = std::chrono::steady_clock::now();
      w += std::chrono::duration_cast<SimDuration>(n - stamp_);
      stamp_ = n;
    }
    Segment s;
    s.work = w;
    s.after = after;
    segs_.push_back(std::move(s));
  }

  SimEngine& e_;
  ThreadCtx& t_;
  Activation& a_;
  std::vector<Segment> segs_;
  SimDuration pending_{};
  std::chrono::steady_clock::time_point stamp_{};
  int posts_ = 0;
  std::int32_t lastPostPort_ = -1;
};

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

SimEngine::SimEngine(SimConfig cfg) : cfg_(std::move(cfg)) {}
SimEngine::~SimEngine() = default;

SimEngine::ThreadCtx& SimEngine::thread(flow::ThreadRef ref) {
  return threads_.at(ref.group).at(ref.index);
}

SimEngine::Activation& SimEngine::activation(std::uint64_t id) {
  auto it = activations_.find(id);
  DPS_CHECK(it != activations_.end(), "unknown activation");
  return it->second;
}

SimTime SimEngine::now() const {
  DPS_CHECK(sched_ != nullptr, "now() outside a run");
  return sched_->now();
}

RunResult SimEngine::run(const flow::Program& program) {
  DPS_CHECK(!running_, "SimEngine::run is not reentrant");
  running_ = true;
  const auto wallStart = std::chrono::steady_clock::now();

  DPS_CHECK(program.graph != nullptr, "program has no graph");
  graph_ = program.graph;
  graph_->validate();
  program.deployment.validateAgainst(*graph_);
  deployment_ = &program.deployment;
  inputs_ = &program.inputs;
  DPS_CHECK(!program.inputs.empty(), "program has no inputs");

  // --- per-run state ---
  sched_ = std::make_unique<des::Scheduler>();
  fidelityRng_.reseed(cfg_.fidelity.seed);
  nodeSpeedFactor_.assign(static_cast<std::size_t>(deployment_->nodeCount), 1.0);
  if (cfg_.fidelity.enabled) {
    const double runFactor =
        std::max(0.7, 1.0 + fidelityRng_.normal(0.0, cfg_.fidelity.perRunSpeedSigma));
    for (auto& f : nodeSpeedFactor_)
      f = std::max(0.7, runFactor *
                            (1.0 + fidelityRng_.normal(0.0, cfg_.fidelity.perNodeSpeedSigma)));
  }

  net::StarNetwork::Config ncfg;
  ncfg.latency = cfg_.profile.latency;
  ncfg.bytesPerSec = cfg_.profile.bandwidthBytesPerSec;
  ncfg.localDelivery = cfg_.profile.localDelivery;
  ncfg.fairShare = cfg_.networkContention;
  if (cfg_.fidelity.enabled) {
    ncfg.bandwidthEfficiency = cfg_.fidelity.bandwidthEfficiency;
    ncfg.extraLatency = [this](std::size_t bytes) {
      const FidelityConfig& f = cfg_.fidelity;
      SimDuration extra = f.perMessageOverhead;
      extra += scale(f.perMessageJitter, fidelityRng_.uniform());
      if (f.chunkBytes > 0)
        extra += f.perChunkOverhead * static_cast<std::int64_t>(bytes / f.chunkBytes);
      return extra;
    };
  }
  network_ = std::make_unique<net::StarNetwork>(*sched_, std::move(ncfg),
                                                deployment_->nodeCount);

  CpuModel::Config ccfg;
  ccfg.sharing = cfg_.cpuSharing;
  ccfg.commOverhead = cfg_.commCpuOverhead;
  ccfg.cpuPerIncoming = cfg_.profile.cpuPerIncomingTransfer;
  ccfg.cpuPerOutgoing = cfg_.profile.cpuPerOutgoingTransfer;
  cpu_ = std::make_unique<CpuModel>(*sched_, ccfg, deployment_->nodeCount);
  network_->setActivityObserver([this](net::NodeIndex node, int in, int out) {
    cpu_->setCommActivity(node, in, out);
  });

  ledger_ = flow::Ledger{};
  activations_.clear();
  closerByInstance_.clear();
  tokenWaiters_.clear();
  outputs_.clear();
  counters_ = RunCounters{};
  nextActivation_ = 1;
  nextSeq_ = 1;
  trace_ = cfg_.recordTrace ? std::make_shared<trace::Trace>() : nullptr;

  Rng master(cfg_.seed);
  threads_.clear();
  threads_.resize(graph_->groupCount());
  activeSets_.assign(graph_->groupCount(), flow::ActiveSet{});
  for (std::size_t g = 0; g < graph_->groupCount(); ++g) {
    const std::int32_t n = deployment_->threadsIn(static_cast<flow::GroupId>(g));
    activeSets_[g].reset(n);
    threads_[g].resize(n);
    const auto& stateFactory = graph_->group(static_cast<flow::GroupId>(g)).stateFactory;
    for (std::int32_t i = 0; i < n; ++i) {
      ThreadCtx& t = threads_[g][i];
      t.ref = flow::ThreadRef{static_cast<flow::GroupId>(g), i};
      t.node = deployment_->nodeOf(t.ref);
      t.rng = master.fork();
      if (stateFactory) t.state = stateFactory(i);
    }
  }
  recordAllocation();

  if (runStartHook_) runStartHook_();
  injectInputs();
  sched_->run();
  checkQuiescence();

  RunResult result;
  result.makespan = sched_->now().time_since_epoch();
  result.outputs = std::move(outputs_);
  result.counters = counters_;
  result.trace = trace_;
  result.threadStates.resize(threads_.size());
  for (std::size_t g = 0; g < threads_.size(); ++g)
    for (auto& t : threads_[g]) result.threadStates[g].push_back(std::move(t.state));
  result.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wallStart).count();
  running_ = false;
  return result;
}

void SimEngine::injectInputs() {
  // Inputs are delivered to the entry op on the configured entry thread
  // with an empty instance path, as if posted from outside the graph.
  const flow::OpId entry = graph_->entryOp();
  const flow::GroupId g = graph_->op(entry).group;
  ThreadCtx& t = threads_.at(g).at(graph_->entryThread());
  for (const auto& obj : *inputs_) {
    flow::Envelope env;
    env.payload = obj;
    env.dstOp = entry;
    env.dst = t.ref;
    env.seq = nextSeq_++;
    env.wireBytes = obj->wireSize() + kEnvelopeOverhead;
    enqueue(t, Task{Task::Kind::Input, std::move(env), 0});
  }
}

void SimEngine::enqueue(ThreadCtx& t, Task task, bool front) {
  if (front) t.ready.push_front(std::move(task));
  else t.ready.push_back(std::move(task));
  maybeDispatch(t);
}

void SimEngine::maybeDispatch(ThreadCtx& t) {
  if (t.busy || t.ready.empty()) return;
  t.busy = true;
  Task task = std::move(t.ready.front());
  t.ready.pop_front();
  executeTask(t, std::move(task));
}

SimEngine::Activation& SimEngine::resolveInputActivation(ThreadCtx& t, const flow::Envelope& env) {
  const flow::OpSpec& spec = graph_->op(env.dstOp);
  if (spec.kind == flow::OpKind::Leaf || spec.kind == flow::OpKind::Split) {
    const std::uint64_t id = nextActivation_++;
    Activation a;
    a.id = id;
    a.op = env.dstOp;
    a.thread = t.ref;
    a.impl = spec.factory();
    a.basePath = env.path;
    auto [it, ok] = activations_.emplace(id, std::move(a));
    DPS_CHECK(ok, "activation id collision");
    return it->second;
  }

  // Merge / stream: keyed by the scope instance being closed.
  DPS_CHECK(!env.path.empty(),
            "object reached closer '" + spec.name + "' without an enclosing scope");
  const flow::InstanceFrame& frame = env.path.back();
  DPS_CHECK(graph_->closerOf(frame.opener, frame.port) == env.dstOp,
            "object of scope opened by '" + graph_->op(frame.opener).name + "' port " +
                std::to_string(frame.port) + " arrived at non-matching closer '" + spec.name + "'");
  if (auto it = closerByInstance_.find(frame.instance); it != closerByInstance_.end()) {
    Activation& a = activation(it->second);
    DPS_CHECK(a.thread == t.ref,
              "closer '" + spec.name + "' instance received objects on two different threads; "
              "routing into a merge must be instance-consistent");
    return a;
  }
  const std::uint64_t id = nextActivation_++;
  Activation a;
  a.id = id;
  a.op = env.dstOp;
  a.thread = t.ref;
  a.impl = spec.factory();
  a.basePath = env.path;
  a.basePath.pop_back();
  a.isCloser = true;
  a.closingInstance = frame.instance;
  auto [it, ok] = activations_.emplace(id, std::move(a));
  DPS_CHECK(ok, "activation id collision");
  closerByInstance_[frame.instance] = id;
  return it->second;
}

void SimEngine::executeTask(ThreadCtx& t, Task task) {
  Activation* act = nullptr;
  std::optional<flow::InstanceFrame> absorbedFrame;

  switch (task.kind) {
    case Task::Kind::Input: {
      act = &resolveInputActivation(t, task.env);
      if (act->isCloser) absorbedFrame = task.env.path.back();
      act->inFlight++;
      break;
    }
    case Task::Kind::Emit:
    case Task::Kind::Finalize:
      act = &activation(task.act);
      break;
  }

  ContextImpl ctx(*this, t, *act);
  switch (task.kind) {
    case Task::Kind::Input:
      act->impl->onInput(ctx, *task.env.payload);
      act->inputConsumed = true;
      break;
    case Task::Kind::Emit: {
      act->emitQueued = false;
      DPS_CHECK(act->impl->hasPending(), "emit dispatched with nothing pending");
      const std::int32_t expectedPort = act->impl->pendingPort();
      act->impl->emitOne(ctx);
      DPS_CHECK(ctx.posts() == 1, "emitOne must post exactly one object");
      DPS_CHECK(ctx.lastPostPort() == expectedPort,
                "emitOne posted on a different port than pendingPort()");
      break;
    }
    case Task::Kind::Finalize:
      act->impl->onAllInputsDone(ctx);
      break;
  }

  auto segments = std::make_shared<std::vector<Segment>>(ctx.take());
  DPS_CHECK(!segments->empty(), "empty segment chain");
  (*segments)[0].work += cfg_.profile.perStepOverhead;
  counters_.steps++;

  runChain(std::move(segments), 0, t.ref, act->id, task.kind, absorbedFrame,
           sched_->now());
}

SimDuration SimEngine::stepNoise(SimDuration work, flow::NodeId node) {
  if (!cfg_.fidelity.enabled || work <= SimDuration::zero()) return work;
  const double jitter = 1.0 + fidelityRng_.normal(0.0, cfg_.fidelity.computeJitter);
  const double factor = std::max(0.5, jitter * nodeSpeedFactor_.at(node));
  return scale(work, factor);
}

void SimEngine::runChain(std::shared_ptr<std::vector<Segment>> segments, std::size_t idx,
                         flow::ThreadRef tref, std::uint64_t actId, Task::Kind kind,
                         std::optional<flow::InstanceFrame> absorbedFrame, SimTime chainStart) {
  if (idx == segments->size()) {
    ThreadCtx& t = thread(tref);
    Activation& act = activation(actId);
    if (trace_) {
      trace::StepRecord rec;
      rec.node = t.node;
      rec.thread = tref;
      rec.op = act.op;
      rec.kind = kind == Task::Kind::Input     ? trace::StepKind::Input
                 : kind == Task::Kind::Emit    ? trace::StepKind::Emit
                                               : trace::StepKind::Finalize;
      rec.start = chainStart;
      rec.end = sched_->now();
      for (const auto& s : *segments) rec.work += s.work;
      trace_->add(std::move(rec));
    }
    finishTask(t, act, kind, absorbedFrame);
    return;
  }

  Segment& seg = (*segments)[idx];
  const flow::NodeId node = thread(tref).node;
  seg.work = stepNoise(seg.work, node); // settle noise into the record
  cpu_->startStep(node, seg.work,
                  [this, segments, idx, tref, actId, kind, absorbedFrame, chainStart] {
                    applySegmentAction(activation(actId), (*segments)[idx]);
                    runChain(segments, idx + 1, tref, actId, kind, absorbedFrame, chainStart);
                  });
}

void SimEngine::applySegmentAction(Activation& act, const Segment& seg) {
  switch (seg.after) {
    case Segment::After::Nothing:
      break;
    case Segment::After::Post: {
      // Routing hint: forwards inherit the consumed emission index so that
      // round-robin routing of forwarded objects stays balanced.
      const std::uint64_t hint = act.basePath.empty() ? 0 : act.basePath.back().emission;
      sendObject(act, seg.post, hint);
      break;
    }
    case Segment::After::Mark: {
      if (trace_) trace_->add(trace::MarkerRecord{seg.markName, seg.markValue, sched_->now()});
      if (markerHook_) markerHook_(seg.markName, seg.markValue, sched_->now());
      break;
    }
  }
}

std::uint64_t SimEngine::scopeInstance(Activation& act, std::int32_t port) {
  if (auto it = act.openScopes.find(port); it != act.openScopes.end()) return it->second;
  DPS_CHECK(graph_->closerOf(act.op, port) != flow::kNoOp,
            "op '" + graph_->op(act.op).name + "' has no scope on port " + std::to_string(port));
  const auto fc = graph_->flowControlOf(act.op, port);
  const std::uint64_t inst = ledger_.openInstance(act.op, fc.maxInFlight);
  act.openScopes.emplace(port, inst);
  return inst;
}

void SimEngine::sendObject(Activation& act, const Emission& em, std::uint64_t routeEmissionHint) {
  const flow::OpSpec& spec = graph_->op(act.op);
  flow::Envelope env;
  env.payload = em.obj;
  env.srcOp = act.op;
  env.src = act.thread;
  env.path = act.basePath;
  std::uint64_t rcEmission = routeEmissionHint;

  if (graph_->closerOf(act.op, em.port) != flow::kNoOp) {
    // Opener port: the post is an emission of this activation's scope.
    const std::uint64_t inst = scopeInstance(act, em.port);
    DPS_CHECK(ledger_.canEmit(inst),
              "flow-controlled port " + std::to_string(em.port) + " of '" + spec.name +
                  "' posted without a token; emit through hasPending()/emitOne()");
    const std::uint64_t emission = ledger_.recordEmission(inst);
    env.path.push_back(flow::InstanceFrame{act.op, em.port, inst, emission});
    rcEmission = emission;
  }

  counters_.messages++;

  if (graph_->isOutputPort(act.op, em.port)) {
    outputs_.push_back(em.obj);
    return;
  }

  const auto edgeIdx = graph_->edgeAt(act.op, em.port);
  DPS_CHECK(edgeIdx.has_value(),
            "op '" + spec.name + "' posted on unconnected port " + std::to_string(em.port));
  const flow::EdgeSpec& edge = graph_->edge(*edgeIdx);
  const flow::GroupId dstGroup = graph_->op(edge.to).group;

  flow::RouteContext rc;
  rc.srcThreadIndex = act.thread.index;
  rc.dstGroupSize = static_cast<std::int32_t>(threads_.at(dstGroup).size());
  rc.dstActive = activeSets_.at(dstGroup).indices();
  rc.emission = rcEmission;
  rc.seq = nextSeq_;
  const std::int32_t dstIdx = edge.route(rc, *em.obj);
  DPS_CHECK(dstIdx >= 0 && dstIdx < rc.dstGroupSize,
            "routing function returned out-of-range thread for edge into '" +
                graph_->op(edge.to).name + "'");

  env.dstOp = edge.to;
  env.dst = flow::ThreadRef{dstGroup, dstIdx};
  env.seq = nextSeq_++;
  env.wireBytes = em.obj->wireSize() + kEnvelopeOverhead;

  const flow::NodeId srcNode = thread(act.thread).node;
  const flow::NodeId dstNode = deployment_->nodeOf(env.dst);
  if (srcNode != dstNode) counters_.networkBytes += env.wireBytes;

  const SimTime sentAt = sched_->now();
  const std::size_t wireBytes = env.wireBytes;
  network_->send(srcNode, dstNode, wireBytes,
                 [this, env = std::move(env), sentAt]() mutable { deliver(std::move(env), sentAt); });
}

void SimEngine::deliver(flow::Envelope env, SimTime sentAt) {
  if (trace_) {
    trace::TransferRecord rec;
    rec.src = deployment_->nodeOf(env.src);
    rec.dst = deployment_->nodeOf(env.dst);
    rec.bytes = env.wireBytes;
    rec.start = sentAt;
    rec.end = sched_->now();
    trace_->add(std::move(rec));
  }
  ThreadCtx& t = thread(env.dst);
  enqueue(t, Task{Task::Kind::Input, std::move(env), 0});
}

void SimEngine::finishTask(ThreadCtx& t, Activation& act, Task::Kind kind,
                           std::optional<flow::InstanceFrame> absorbedFrame) {
  DPS_CHECK(act.inFlight > 0, "task accounting underflow");
  act.inFlight--;

  if (kind == Task::Kind::Input && act.isCloser) {
    DPS_CHECK(absorbedFrame.has_value(), "closer input without frame");
    const std::uint64_t inst = absorbedFrame->instance;
    const bool completed = ledger_.recordAbsorb(inst);
    if (ledger_.releaseToken(inst)) {
      // A parked emitter may now resume.
      if (auto it = tokenWaiters_.find(inst); it != tokenWaiters_.end()) {
        Activation& waiter = activation(it->second);
        tokenWaiters_.erase(it);
        waiter.parked = false;
        DPS_CHECK(!waiter.emitQueued, "parked activation had a queued emit");
        waiter.emitQueued = true;
        waiter.inFlight++;
        enqueue(thread(waiter.thread), Task{Task::Kind::Emit, {}, waiter.id});
      }
    }
    if (completed) scheduleFinalize(inst);
  }

  if (kind == Task::Kind::Finalize) {
    act.finalized = true;
    closerByInstance_.erase(act.closingInstance);
    ledger_.erase(act.closingInstance);
  }

  drainOrPark(t, act);
  maybeRetire(act); // may invalidate `act`
  t.busy = false;
  maybeDispatch(t);
}

void SimEngine::drainOrPark(ThreadCtx& t, Activation& act) {
  if (act.parked || act.emitQueued || !act.impl->hasPending()) return;
  const std::int32_t port = act.impl->pendingPort();
  const std::uint64_t inst = scopeInstance(act, port);
  if (ledger_.canEmit(inst)) {
    act.emitQueued = true;
    act.inFlight++;
    // Front of the queue: an operation keeps emitting without being
    // preempted by queued arrivals (paper Fig. 4: Split1, Split2 run
    // back-to-back even though T1 is delivered in between).
    enqueue(t, Task{Task::Kind::Emit, {}, act.id}, /*front=*/true);
  } else {
    act.parked = true;
    auto [it, ok] = tokenWaiters_.emplace(inst, act.id);
    (void)it;
    DPS_CHECK(ok, "two emitters parked on one instance");
  }
}

void SimEngine::maybeRetire(Activation& act) {
  if (act.inFlight > 0 || act.parked || act.emitQueued || act.impl->hasPending()) return;
  const flow::OpSpec& spec = graph_->op(act.op);
  bool done = false;
  switch (spec.kind) {
    case flow::OpKind::Leaf:
    case flow::OpKind::Split:
      done = act.inputConsumed;
      break;
    case flow::OpKind::Merge:
    case flow::OpKind::Stream:
      done = act.finalized;
      break;
  }
  if (!done) return;

  // Close every scope this activation opened; a scope whose emissions are
  // all absorbed already triggers its closer's finalization now.
  for (const auto& [port, inst] : act.openScopes) {
    (void)port;
    if (ledger_.closeEmitter(inst)) scheduleFinalize(inst);
  }
  activations_.erase(act.id);
}

void SimEngine::scheduleFinalize(std::uint64_t instance) {
  auto it = closerByInstance_.find(instance);
  DPS_CHECK(it != closerByInstance_.end(), "completed instance has no closer activation");
  Activation& a = activation(it->second);
  DPS_CHECK(!a.finalizeQueued, "instance finalized twice");
  a.finalizeQueued = true;
  a.inFlight++;
  enqueue(thread(a.thread), Task{Task::Kind::Finalize, {}, a.id});
}

void SimEngine::deactivateThread(flow::GroupId group, std::int32_t index) {
  DPS_CHECK(running_, "allocation changes are only valid during a run");
  if (activeSets_.at(group).setActive(index, false)) {
    DPS_INFO("deactivated thread ", group, ":", index, " at ", sched_->now());
    recordAllocation();
  }
}

void SimEngine::activateThread(flow::GroupId group, std::int32_t index) {
  DPS_CHECK(running_, "allocation changes are only valid during a run");
  if (activeSets_.at(group).setActive(index, true)) recordAllocation();
}

std::int32_t SimEngine::allocatedNodes() const { return allocatedNodes_; }

flow::ThreadState* SimEngine::threadStateDuringRun(flow::GroupId group, std::int32_t index) {
  DPS_CHECK(running_, "thread states are only accessible during a run");
  return threads_.at(group).at(index).state.get();
}

flow::NodeId SimEngine::nodeOfThread(flow::GroupId group, std::int32_t index) const {
  DPS_CHECK(running_, "deployment is only bound during a run");
  return threads_.at(group).at(index).node;
}

void SimEngine::recordAllocation() {
  std::vector<char> used(static_cast<std::size_t>(deployment_->nodeCount), 0);
  for (std::size_t g = 0; g < threads_.size(); ++g)
    for (std::int32_t idx : activeSets_[g].indices())
      used[static_cast<std::size_t>(threads_[g][idx].node)] = 1;
  allocatedNodes_ = static_cast<std::int32_t>(std::count(used.begin(), used.end(), 1));
  if (trace_)
    trace_->add(trace::AllocationRecord{sched_ ? sched_->now() : simEpoch(), allocatedNodes_});
}

void SimEngine::injectTransfer(flow::NodeId src, flow::NodeId dst, std::size_t bytes,
                               std::function<void()> onDone) {
  DPS_CHECK(running_, "injectTransfer is only valid during a run");
  const SimTime sentAt = sched_->now();
  network_->send(src, dst, bytes, [this, src, dst, bytes, sentAt, onDone = std::move(onDone)] {
    if (trace_)
      trace_->add(trace::TransferRecord{src, dst, bytes, sentAt, sched_->now()});
    if (onDone) onDone();
  });
  if (src != dst) counters_.networkBytes += bytes;
}

void SimEngine::checkQuiescence() {
  if (activations_.empty() && ledger_.liveInstances() == 0 && tokenWaiters_.empty()) return;
  std::ostringstream os;
  os << "deadlock: simulation quiesced with unfinished work:";
  std::size_t listed = 0;
  for (const auto& [id, act] : activations_) {
    (void)id;
    if (listed++ >= 8) {
      os << " ...";
      break;
    }
    os << " [op '" << graph_->op(act.op).name << "' thread " << act.thread.group << ':'
       << act.thread.index << (act.parked ? " PARKED" : "")
       << (act.isCloser ? " closer" : "") << " inFlight=" << act.inFlight << ']';
  }
  os << " liveInstances=" << ledger_.liveInstances() << " waiters=" << tokenWaiters_.size();
  throw Error(os.str());
}

} // namespace dps::core
