// SimEngine — the paper's simulator (§3–§4).
//
// Executes a DPS flow-graph application under a discrete-event virtual
// clock.  Operation bodies are *directly executed* (the DPS runtime and the
// application's routing/decomposition logic really run); only the duration
// of each atomic step is virtual, obtained either from wall-clock
// measurement of the body (DirectExec) or from application-charged model
// costs (Pdexec).  Exactly one operation body runs at a time — the inline
// equivalent of the paper's simulator-thread/execution-thread alternation
// (Fig. 3/4) — while steps overlap freely in *virtual* time.
//
// The engine owns:
//   * a StarNetwork (latency + equal-share bandwidth, §4),
//   * a CpuModel (even CPU sharing, communication CPU overhead, §4),
//   * the split/merge instance ledger and flow-control tokens (§2),
//   * dynamic allocation state (thread activation per group, §6/§8),
//   * trace recording for dynamic-efficiency analysis (§8).
//
// Thread-compatibility: an engine instance runs one program at a time on
// the calling thread; it is not reentrant.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"
#include "core/cpu_model.hpp"
#include "core/result.hpp"
#include "des/scheduler.hpp"
#include "flow/active_set.hpp"
#include "flow/envelope.hpp"
#include "flow/graph.hpp"
#include "flow/ledger.hpp"
#include "net/network.hpp"
#include "support/rng.hpp"

namespace dps::core {

class SimEngine {
public:
  explicit SimEngine(SimConfig cfg);
  ~SimEngine();
  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  /// Called at every application progress marker, in virtual-time order.
  /// Hooks may call deactivateThread/activateThread/injectTransfer — this
  /// is how malleability controllers steer allocation during a run.
  using MarkerHook = std::function<void(const std::string&, std::int64_t, SimTime)>;
  void setMarkerHook(MarkerHook hook) { markerHook_ = std::move(hook); }

  /// Called once per run() after threads, states and the network exist but
  /// before the first input injects — the only instant an allocation change
  /// can apply before any compute segment.  Replay controllers use this to
  /// start a program below its build-time worker count (e.g. a job admitted
  /// at 2 of its 4 feasible nodes).  Allowed calls match marker hooks:
  /// deactivateThread/activateThread/injectTransfer/threadStateDuringRun.
  using RunStartHook = std::function<void()>;
  void setRunStartHook(RunStartHook hook) { runStartHook_ = std::move(hook); }

  /// Runs the program to completion and returns predictions + trace.
  /// Throws Error on deadlock (incomplete scopes at quiescence).
  RunResult run(const flow::Program& program);

  // --- dynamic allocation (valid during run(), e.g. from marker hooks) ---
  void deactivateThread(flow::GroupId group, std::int32_t index);
  void activateThread(flow::GroupId group, std::int32_t index);
  std::int32_t allocatedNodes() const;
  /// Injects a raw data movement (e.g. state migration when a thread is
  /// deallocated); `onDone` fires at delivery time.
  void injectTransfer(flow::NodeId src, flow::NodeId dst, std::size_t bytes,
                      std::function<void()> onDone = nullptr);
  /// Application state of a thread, accessible while a run is in progress
  /// (marker hooks use this to migrate state off deallocated threads).
  flow::ThreadState* threadStateDuringRun(flow::GroupId group, std::int32_t index);
  /// Node hosting a thread under the current deployment.
  flow::NodeId nodeOfThread(flow::GroupId group, std::int32_t index) const;
  /// The trace being recorded, readable during a run (null when trace
  /// recording is disabled).  Online policies use this to evaluate the
  /// dynamic efficiency of the interval just completed.
  const trace::Trace* liveTrace() const { return trace_.get(); }
  SimTime now() const;

  const SimConfig& config() const { return cfg_; }

private:
  // --- body execution ---
  struct Emission {
    serial::ObjectPtr obj;
    std::int32_t port = 0;
  };
  struct Segment {
    SimDuration work{};
    enum class After : std::uint8_t { Nothing, Post, Mark } after = After::Nothing;
    Emission post;
    std::string markName;
    std::int64_t markValue = 0;
  };

  struct Task {
    enum class Kind : std::uint8_t { Input, Emit, Finalize } kind = Kind::Input;
    flow::Envelope env;       // Input
    std::uint64_t act = 0;    // Emit / Finalize
  };

  struct Activation {
    std::uint64_t id = 0;
    flow::OpId op = flow::kNoOp;
    flow::ThreadRef thread;
    std::unique_ptr<flow::Operation> impl;
    flow::InstancePath basePath;
    /// Opener scopes: port -> ledger instance (opened lazily on first use).
    std::map<std::int32_t, std::uint64_t> openScopes;
    /// Closer state: the scope instance this activation is collecting.
    std::uint64_t closingInstance = 0;
    bool isCloser = false;
    bool inputConsumed = false; // leaf/split: the triggering input was processed
    bool finalized = false;     // closer: onAllInputsDone completed
    bool finalizeQueued = false;
    bool parked = false;        // waiting for a flow-control token
    /// At most one Emit task may be queued per activation; otherwise a
    /// token-release wake racing with an input's drain enqueues two and
    /// the second finds no token.
    bool emitQueued = false;
    std::uint32_t inFlight = 0; // queued or running tasks
  };

  struct ThreadCtx {
    flow::ThreadRef ref;
    flow::NodeId node = -1;
    std::deque<Task> ready;
    bool busy = false;
    std::unique_ptr<flow::ThreadState> state;
    Rng rng;
  };

  class ContextImpl; // OpContext implementation (defined in engine.cpp)
  friend class ContextImpl;

  ThreadCtx& thread(flow::ThreadRef ref);
  Activation& activation(std::uint64_t id);

  void injectInputs();
  void enqueue(ThreadCtx& t, Task task, bool front = false);
  void maybeDispatch(ThreadCtx& t);
  void executeTask(ThreadCtx& t, Task task);
  Activation& resolveInputActivation(ThreadCtx& t, const flow::Envelope& env);
  /// Runs segment `idx` of the current chain; continues via CPU-model
  /// completions until all segments are done, then finishes the task.
  void runChain(std::shared_ptr<std::vector<Segment>> segments, std::size_t idx,
                flow::ThreadRef tref, std::uint64_t actId, Task::Kind kind,
                std::optional<flow::InstanceFrame> absorbedFrame, SimTime chainStart);
  void finishTask(ThreadCtx& t, Activation& act, Task::Kind kind,
                  std::optional<flow::InstanceFrame> absorbedFrame);
  void applySegmentAction(Activation& act, const Segment& seg);

  void sendObject(Activation& act, const Emission& em, std::uint64_t routeEmissionHint);
  void deliver(flow::Envelope env, SimTime sentAt);
  void drainOrPark(ThreadCtx& t, Activation& act);
  void maybeRetire(Activation& act);
  void scheduleFinalize(std::uint64_t instance);
  std::uint64_t scopeInstance(Activation& act, std::int32_t port);
  void recordAllocation();
  void checkQuiescence();

  SimDuration stepNoise(SimDuration work, flow::NodeId node);

  SimConfig cfg_;
  MarkerHook markerHook_;
  RunStartHook runStartHook_;

  // --- per-run state ---
  const flow::FlowGraph* graph_ = nullptr;
  const flow::Deployment* deployment_ = nullptr;
  const std::vector<serial::ObjectPtr>* inputs_ = nullptr;
  std::unique_ptr<des::Scheduler> sched_;
  std::unique_ptr<net::StarNetwork> network_;
  std::unique_ptr<CpuModel> cpu_;
  flow::Ledger ledger_;
  std::vector<std::vector<ThreadCtx>> threads_; // [group][index]
  std::vector<flow::ActiveSet> activeSets_;     // [group]
  std::unordered_map<std::uint64_t, Activation> activations_;
  std::unordered_map<std::uint64_t, std::uint64_t> closerByInstance_;
  std::unordered_map<std::uint64_t, std::uint64_t> tokenWaiters_; // instance -> activation
  std::vector<serial::ObjectPtr> outputs_;
  RunCounters counters_;
  std::shared_ptr<trace::Trace> trace_;
  Rng fidelityRng_;
  std::vector<double> nodeSpeedFactor_;
  std::uint64_t nextActivation_ = 1;
  std::uint64_t nextSeq_ = 1;
  std::int32_t allocatedNodes_ = 0;
  bool running_ = false;
};

} // namespace dps::core
