// Deterministic discrete-event scheduler.
//
// The kernel under both the paper-model simulator and the high-fidelity
// reference executor.  Events at equal timestamps fire in scheduling order
// (FIFO), which makes every simulation a pure function of its inputs.
//
// Cancellation uses lazy deletion: cancel() empties the stored action, pop
// skips dead entries.  This keeps the queue a plain binary heap (O(log n)
// schedule/pop), the right trade-off because cancellations are rare (only
// re-planned transfer completions) while schedules are massive.
//
// Hot-path layout: a plain std::vector binary heap of 32-byte entries with
// capacity reserved up-front.  Actions are taken by value and moved — never
// copied — into a single shared slot per event; popping moves entries out of
// the heap (std::priority_queue::top() forces a copy and its underlying
// vector cannot be pre-reserved or reused across reset()).  The action stays
// out-of-line deliberately: a 64-byte entry with the std::function inlined
// makes every sift move heavier and measured ~25% slower on the micro_infra
// event-throughput bench at 100k queued events.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "support/time.hpp"

namespace dps::des {

/// Opaque handle to a scheduled event; cancel through Scheduler::cancel.
class EventId {
public:
  EventId() = default;
  /// True while the event is still pending.
  bool pending() const {
    auto sp = action_.lock();
    return sp && *sp;
  }

private:
  friend class Scheduler;
  explicit EventId(std::weak_ptr<std::function<void()>> a) : action_(std::move(a)) {}
  std::weak_ptr<std::function<void()>> action_;
};

class Scheduler {
public:
  using Action = std::function<void()>;

  /// `reserveCapacity` pre-sizes the event heap (amortizes away vector
  /// growth during the schedule-heavy start of a simulation).
  explicit Scheduler(std::size_t reserveCapacity = kDefaultReserve);
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Grows the heap's reserved capacity (never shrinks).
  void reserve(std::size_t capacity);

  SimTime now() const { return now_; }

  /// Schedules `action` at absolute time `at` (>= now).
  EventId scheduleAt(SimTime at, Action action);
  /// Schedules `action` after `delay` (>= 0).
  EventId scheduleAfter(SimDuration delay, Action action);

  /// Cancels a pending event.  Returns false if it already fired / was
  /// cancelled.  Safe to call from inside event handlers.
  bool cancel(EventId id);

  /// Runs until the queue is empty.  Returns the number of events fired.
  std::size_t run();
  /// Runs until the queue is empty or the next event lies past `deadline`
  /// (the clock never passes the deadline).
  std::size_t runUntil(SimTime deadline);
  /// Fires exactly one event if any is pending; returns whether one fired.
  bool step();

  bool empty() const { return liveCount_ == 0; }
  std::size_t pendingCount() const { return liveCount_; }
  std::uint64_t firedCount() const { return fired_; }
  /// Most live events ever pending at once (queue-depth high-water mark).
  std::size_t queueHighWater() const { return highWater_; }

  /// Resets clock and queue; handles from before reset are invalidated.
  void reset();

private:
  static constexpr std::size_t kDefaultReserve = 1024;

  struct Entry {
    SimTime at;
    std::uint64_t seq;
    std::shared_ptr<Action> action; // *action empty <=> cancelled
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq; // FIFO among equal timestamps
    }
  };

  /// Pops the next live entry (moved into `out`); returns false if none.
  bool popLive(Entry& out);

  std::vector<Entry> heap_; // min-heap via std::push_heap/pop_heap + Later
  SimTime now_ = simEpoch();
  std::uint64_t nextSeq_ = 1;
  std::uint64_t fired_ = 0;
  std::size_t liveCount_ = 0;
  std::size_t highWater_ = 0;
};

} // namespace dps::des
