// Deterministic discrete-event scheduler.
//
// The kernel under both the paper-model simulator and the high-fidelity
// reference executor.  Events at equal timestamps fire in scheduling order
// (FIFO), which makes every simulation a pure function of its inputs.
//
// Cancellation uses lazy deletion: cancel() empties the stored action, pop
// skips dead entries.  This keeps the queue a plain binary heap (O(log n)
// schedule/pop), the right trade-off because cancellations are rare (only
// re-planned transfer completions) while schedules are massive.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "support/time.hpp"

namespace dps::des {

/// Opaque handle to a scheduled event; cancel through Scheduler::cancel.
class EventId {
public:
  EventId() = default;
  /// True while the event is still pending.
  bool pending() const {
    auto sp = action_.lock();
    return sp && *sp;
  }

private:
  friend class Scheduler;
  explicit EventId(std::weak_ptr<std::function<void()>> a) : action_(std::move(a)) {}
  std::weak_ptr<std::function<void()>> action_;
};

class Scheduler {
public:
  using Action = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `action` at absolute time `at` (>= now).
  EventId scheduleAt(SimTime at, Action action);
  /// Schedules `action` after `delay` (>= 0).
  EventId scheduleAfter(SimDuration delay, Action action);

  /// Cancels a pending event.  Returns false if it already fired / was
  /// cancelled.  Safe to call from inside event handlers.
  bool cancel(EventId id);

  /// Runs until the queue is empty.  Returns the number of events fired.
  std::size_t run();
  /// Runs until the queue is empty or the next event lies past `deadline`
  /// (the clock never passes the deadline).
  std::size_t runUntil(SimTime deadline);
  /// Fires exactly one event if any is pending; returns whether one fired.
  bool step();

  bool empty() const { return liveCount_ == 0; }
  std::size_t pendingCount() const { return liveCount_; }
  std::uint64_t firedCount() const { return fired_; }

  /// Resets clock and queue; handles from before reset are invalidated.
  void reset();

private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    std::shared_ptr<Action> action; // *action empty <=> cancelled
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq; // FIFO among equal timestamps
    }
  };

  /// Pops the next live entry; returns false if none.
  bool popLive(Entry& out);

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  SimTime now_ = simEpoch();
  std::uint64_t nextSeq_ = 1;
  std::uint64_t fired_ = 0;
  std::size_t liveCount_ = 0;
};

} // namespace dps::des
