#include "des/scheduler.hpp"

#include "support/error.hpp"

namespace dps::des {

EventId Scheduler::scheduleAt(SimTime at, Action action) {
  DPS_CHECK(at >= now_, "cannot schedule event in the past");
  DPS_CHECK(static_cast<bool>(action), "cannot schedule empty action");
  auto sp = std::make_shared<Action>(std::move(action));
  queue_.push(Entry{at, nextSeq_++, sp});
  ++liveCount_;
  return EventId(sp);
}

EventId Scheduler::scheduleAfter(SimDuration delay, Action action) {
  DPS_CHECK(delay >= SimDuration::zero(), "cannot schedule with negative delay");
  return scheduleAt(now_ + delay, std::move(action));
}

bool Scheduler::cancel(EventId id) {
  auto sp = id.action_.lock();
  if (!sp || !*sp) return false;
  *sp = Action{};
  DPS_CHECK(liveCount_ > 0, "live count underflow");
  --liveCount_;
  return true;
}

bool Scheduler::popLive(Entry& out) {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    if (e.action && *e.action) {
      out = std::move(e);
      return true;
    }
  }
  return false;
}

bool Scheduler::step() {
  Entry e;
  if (!popLive(e)) return false;
  now_ = e.at;
  --liveCount_;
  ++fired_;
  // Move the action out so re-entrant schedules/cancels see a clean state.
  Action action = std::move(*e.action);
  *e.action = Action{};
  action();
  return true;
}

std::size_t Scheduler::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t Scheduler::runUntil(SimTime deadline) {
  std::size_t n = 0;
  for (;;) {
    // Peek: drop dead entries to find the next live event time.
    Entry e;
    if (!popLive(e)) break;
    if (e.at > deadline) {
      queue_.push(e); // put it back; clock stops at the deadline
      now_ = deadline;
      return n;
    }
    now_ = e.at;
    --liveCount_;
    ++fired_;
    Action action = std::move(*e.action);
    *e.action = Action{};
    action();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

void Scheduler::reset() {
  queue_ = {};
  now_ = simEpoch();
  nextSeq_ = 1;
  fired_ = 0;
  liveCount_ = 0;
}

} // namespace dps::des
