#include "des/scheduler.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace dps::des {

Scheduler::Scheduler(std::size_t reserveCapacity) { heap_.reserve(reserveCapacity); }

void Scheduler::reserve(std::size_t capacity) {
  if (capacity > heap_.capacity()) heap_.reserve(capacity);
}

EventId Scheduler::scheduleAt(SimTime at, Action action) {
  DPS_CHECK(at >= now_, "cannot schedule event in the past");
  DPS_CHECK(static_cast<bool>(action), "cannot schedule empty action");
  auto sp = std::make_shared<Action>(std::move(action));
  EventId id{sp};
  heap_.push_back(Entry{at, nextSeq_++, std::move(sp)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++liveCount_;
  if (liveCount_ > highWater_) highWater_ = liveCount_;
  return id;
}

EventId Scheduler::scheduleAfter(SimDuration delay, Action action) {
  DPS_CHECK(delay >= SimDuration::zero(), "cannot schedule with negative delay");
  return scheduleAt(now_ + delay, std::move(action));
}

bool Scheduler::cancel(EventId id) {
  auto sp = id.action_.lock();
  if (!sp || !*sp) return false;
  *sp = Action{};
  DPS_CHECK(liveCount_ > 0, "live count underflow");
  --liveCount_;
  return true;
}

bool Scheduler::popLive(Entry& out) {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    if (e.action && *e.action) {
      out = std::move(e);
      return true;
    }
  }
  return false;
}

bool Scheduler::step() {
  Entry e;
  if (!popLive(e)) return false;
  now_ = e.at;
  --liveCount_;
  ++fired_;
  // Move the action out so re-entrant schedules/cancels see a clean state.
  Action action = std::move(*e.action);
  *e.action = Action{};
  action();
  return true;
}

std::size_t Scheduler::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t Scheduler::runUntil(SimTime deadline) {
  std::size_t n = 0;
  for (;;) {
    // Peek: drop dead entries to find the next live event time.
    Entry e;
    if (!popLive(e)) break;
    if (e.at > deadline) {
      // Put it back; the clock stops at the deadline.
      heap_.push_back(std::move(e));
      std::push_heap(heap_.begin(), heap_.end(), Later{});
      now_ = deadline;
      return n;
    }
    now_ = e.at;
    --liveCount_;
    ++fired_;
    Action action = std::move(*e.action);
    *e.action = Action{};
    action();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

void Scheduler::reset() {
  // clear() keeps the reserved capacity, so a reused scheduler re-enters its
  // steady state without reallocation.
  heap_.clear();
  now_ = simEpoch();
  nextSeq_ = 1;
  fired_ = 0;
  liveCount_ = 0;
  highWater_ = 0;
}

} // namespace dps::des
