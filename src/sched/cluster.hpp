// ClusterScheduler: a whole simulated machine serving a stream of malleable
// jobs (the paper's §9 outlook, executed at cluster scale).
//
// The event loop runs on the same des::Scheduler kernel as the application
// engine.  Jobs arrive per the workload's Poisson process and queue in
// arrival order; the policy is consulted at admission and at every phase
// boundary of every running job.  Reallocation semantics:
//
//   * shrink — the released nodes free immediately (they stop computing at
//     the boundary) while the job pays a migration delay before its next
//     phase starts: latency + movedBytes / migrationBandwidth, with
//     movedBytes from ClassProfile::migrationBytes — the same state-motion
//     accounting the in-engine malleability controller injects.
//   * grow   — granted only from currently free nodes (clamped to the
//     largest feasible allocation not exceeding nodes + free), charged the
//     same migration delay.
//
// Everything is deterministic: the DES kernel fires equal-time events in
// scheduling order, policies are pure, and the profile table is
// bit-identical at any build concurrency — so a cluster run is a pure
// function of (workload, profiles, policy, config) at any --jobs value.
//
// Two implementations share these semantics event-for-event:
// simulateCluster is the production loop whose per-event hot paths are
// O(1)/O(log n) — precomputed remaining-time suffix sums, an ordered
// estimated-finish index over the running set for backfill's shadow-time
// computation, a lazily compacted queue — and simulateClusterReference is
// the pre-optimization loop (full-array scans, tail sums recomputed per
// query) kept as the oracle: tests assert bit-identical metrics and
// bench/cluster_scale measures the throughput gap.
#pragma once

#include <cstdint>
#include <functional>

#include "net/profile.hpp"
#include "sched/metrics.hpp"
#include "sched/policy.hpp"
#include "sched/profile.hpp"
#include "sched/workload.hpp"

namespace dps::obs {
class Recorder;
class Registry;
class TraceSink;
} // namespace dps::obs

namespace dps::sched {

/// Snapshot handed to ClusterConfig::onProgress while a simulation runs.
struct ClusterProgress {
  std::int64_t events = 0;       // arrivals + phase boundaries processed
  std::int32_t finishedJobs = 0;
  std::int32_t totalJobs = 0;
  double simNowSec = 0;          // simulated clock, not wall clock
  std::int32_t runningJobs = 0;
  std::int32_t queuedJobs = 0;
};

struct ClusterConfig {
  std::int32_t nodes = 8;
  /// Reconfiguration cost model: one-way latency plus bytes / bandwidth.
  SimDuration migrationLatency = microseconds(100);
  double migrationBandwidthBytesPerSec = 12.5e6;
  /// Ablation: zero-cost reconfiguration (isolates policy quality from
  /// migration overhead).
  bool chargeMigration = true;
  /// EASY backfill (Lifka) on the admission scan: when the head of the
  /// queue is capacity-blocked it receives a reservation at the earliest
  /// time enough nodes free up — computed from the running jobs' remaining
  /// phase profiles at their current allocations — and younger queued jobs
  /// may start now only if they cannot delay that reservation (they finish
  /// before the shadow time, or fit into the nodes spare beyond the head's
  /// need).  Off by default: the scan stops at the first blocked job.
  bool easyBackfill = false;
  /// Cap on how many younger queued jobs one backfill pass offers to the
  /// policy (SLURM's bf_max_job_test): deep queues otherwise make every
  /// blocked-head pass O(queue).  0 = unlimited, classic EASY.
  std::int32_t backfillDepth = 0;
  /// Invoke `onProgress` every this many processed events (0 = never).
  std::int64_t progressEvery = 0;
  std::function<void(const ClusterProgress&)> onProgress{};
  /// Observability (all optional; null = disabled, zero cost).  The run's
  /// aggregate counters/gauges/histograms fold into `metrics` under
  /// `metricsPrefix` when the loop quiesces; instrumentation never feeds
  /// back into the simulation, so results are bit-identical either way —
  /// both loops record the same values, proving their equivalence extends
  /// to what they observe.
  obs::Registry* metrics = nullptr;
  std::string metricsPrefix;
  /// Per-job spans (queued/run), realloc instants and backfill decisions in
  /// *simulated* microseconds, one trace tid per job id.  Only the
  /// optimized loop emits traces (the reference loop is an oracle, not a
  /// production path).
  obs::TraceSink* trace = nullptr;
  /// Trace process lane, so several policies share one trace file.
  std::int32_t tracePid = 0;
  /// Flight recorder: the full decision audit log (admit/hold verdicts
  /// with typed wait reasons, backfill passes and candidates, realloc
  /// grants with policy rationale), per-job wait intervals, and the
  /// simulated-time timeseries.  BOTH loops feed it from the same semantic
  /// points, so equal recorder contents across loops is a per-decision
  /// correctness check.  Null = off (zero cost); wait *attribution* is
  /// always-on integer bookkeeping either way, so metrics JSON is
  /// bit-identical with and without a recorder.
  obs::Recorder* recorder = nullptr;

  static ClusterConfig fromProfile(const net::PlatformProfile& p, std::int32_t nodes) {
    ClusterConfig cfg;
    cfg.nodes = nodes;
    cfg.migrationLatency = p.latency;
    cfg.migrationBandwidthBytesPerSec = p.bandwidthBytesPerSec;
    return cfg;
  }
};

/// Runs one policy over one workload against one profile table.
ClusterMetrics simulateCluster(const ClusterConfig& cfg, const Workload& workload,
                               const JobProfileTable& profiles, Policy& policy);

/// The pre-optimization event loop (linear scans, per-query tail sums),
/// semantically identical to simulateCluster and kept as its oracle and
/// throughput baseline.  Do not use at scale.
ClusterMetrics simulateClusterReference(const ClusterConfig& cfg, const Workload& workload,
                                        const JobProfileTable& profiles, Policy& policy);

} // namespace dps::sched
