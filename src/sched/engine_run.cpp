#include "sched/engine_run.hpp"

#include <memory>
#include <sstream>

#include "core/engine.hpp"
#include "jacobi/app.hpp"
#include "lu/app.hpp"
#include "obs/registry.hpp"
#include "support/error.hpp"
#include "support/fingerprint.hpp"
#include "trace/efficiency.hpp"

namespace dps::sched {

std::uint64_t EngineRunSpec::engineFingerprint() const {
  Fingerprint fp;
  core::fingerprintInto(fp, config);
  lu::fingerprintInto(fp, luModel);
  jacobi::fingerprintInto(fp, jacobiModel);
  return fp.value();
}

std::string EngineRunSpec::cacheSpec() const {
  std::ostringstream os;
  if (app == AppKind::Lu) {
    os << "lu;n=" << lu.n << ";r=" << lu.r << ";seed=" << lu.seed << ";pipe=" << lu.pipelined
       << ";fc=" << lu.flowControl << ";fcl=" << lu.fcLimit << ";pm=" << lu.parallelMult
       << ";sub=" << lu.subBlock << ";w=" << lu.workers;
  } else {
    os << "jacobi;rows=" << jacobi.rows << ";cols=" << jacobi.cols << ";sweeps=" << jacobi.sweeps
       << ";w=" << jacobi.workers << ";seed=" << jacobi.seed;
  }
  os << ";start=" << startAlloc << ";slice=" << slicePhases
     << ";policy=" << static_cast<int>(policy) << ";plan=";
  for (const mall::RemovalStep& s : plan.steps) {
    os << "S@" << s.afterIteration << ":";
    for (std::size_t i = 0; i < s.threads.size(); ++i) os << (i ? "," : "") << s.threads[i];
    os << ";";
  }
  for (const mall::GrowStep& g : plan.grows) {
    os << "G@" << g.afterIteration << ":";
    for (std::size_t i = 0; i < g.threads.size(); ++i) os << (i ? "," : "") << g.threads[i];
    os << ";";
  }
  return os.str();
}

std::uint64_t EngineRunSpec::fingerprint() const {
  Fingerprint fp;
  fp.add(engineFingerprint()).add(cacheSpec());
  return fp.value();
}

EngineRunRecord executeEngineRun(const EngineRunSpec& spec) {
  return executeEngineRun(spec, nullptr);
}

EngineRunRecord executeEngineRun(const EngineRunSpec& spec, obs::Registry* metrics) {
  core::SimEngine engine(spec.config);
  core::RunResult run;
  const char* markerName = nullptr;
  EngineRunRecord rec;

  if (spec.app == AppKind::Lu) {
    spec.lu.validate();
    DPS_CHECK(spec.startAlloc >= 0 && spec.startAlloc <= spec.lu.workers,
              "startAlloc out of range for the LU worker count");
    lu::LuBuild build = lu::buildLu(spec.lu, spec.luModel, spec.config.allocatePayloads);
    if (spec.startAlloc > 0 && spec.startAlloc < spec.lu.workers) {
      // Spread columns the way a native build at the start allocation
      // would, so an iteration-0 removal deactivates the surplus workers
      // without moving state.
      for (std::int32_t c = 0; c < build.directory->columns(); ++c)
        build.directory->setOwner(c, c % spec.startAlloc);
    }
    std::unique_ptr<mall::LuMalleabilityController> controller;
    if (!spec.plan.empty()) {
      controller =
          std::make_unique<mall::LuMalleabilityController>(engine, build, spec.plan, spec.policy);
      controller->observeWith(metrics);
    }
    run = lu::runLu(engine, build);
    markerName = "iteration";
    if (controller) rec.migratedBytes = static_cast<double>(controller->migratedBytes());
  } else {
    spec.jacobi.validate();
    DPS_CHECK(spec.plan.empty(), "no Jacobi malleability controller exists");
    DPS_CHECK(spec.startAlloc == 0 || spec.startAlloc == spec.jacobi.workers,
              "Jacobi runs cannot start below their worker count");
    jacobi::JacobiBuild build =
        jacobi::buildJacobi(spec.jacobi, spec.jacobiModel, spec.config.allocatePayloads);
    run = jacobi::runJacobi(engine, build);
    markerName = "sweep";
  }

  rec.totalSec = toSeconds(run.makespan);
  if (spec.slicePhases) {
    DPS_CHECK(run.trace != nullptr, "phase slicing requires trace recording");
    const auto segments = trace::dynamicEfficiency(*run.trace, markerName, simEpoch(),
                                                   simEpoch() + run.makespan);
    DPS_CHECK(!segments.empty(), "run produced no phases");
    for (const auto& seg : segments) {
      rec.phaseSec.push_back(toSeconds(seg.end - seg.start));
      rec.phaseEff.push_back(seg.efficiency);
      rec.phaseMarker.push_back(seg.markerValue);
    }
  }
  if (run.trace != nullptr) {
    for (const auto& a : run.trace->allocations())
      rec.allocEvents.push_back(
          AllocEvent{toSeconds(a.time.time_since_epoch()), a.allocatedNodes});
  }
  if (metrics != nullptr) {
    metrics->counter("engine.runs").add();
    metrics->histogram("engine.sim_sec", obs::secondsBounds()).observe(rec.totalSec);
  }
  return rec;
}

EngineRunSpec profileRunSpec(const JobClass& klass, std::int32_t nodes,
                             const ProfileSettings& settings) {
  EngineRunSpec spec;
  spec.app = klass.app;
  if (klass.app == AppKind::Lu) spec.lu = klass.luAt(nodes);
  else spec.jacobi = klass.jacobiAt(nodes);
  spec.slicePhases = true;
  spec.config = settings.simConfig();
  spec.luModel = settings.luModel;
  spec.jacobiModel = settings.jacobiModel;
  return spec;
}

PhaseProfile phaseProfileFromRecord(const EngineRunRecord& rec, std::int32_t nodes) {
  PhaseProfile p;
  p.nodes = nodes;
  p.totalSec = rec.totalSec;
  p.phaseSec = rec.phaseSec;
  p.phaseEff = rec.phaseEff;
  p.finalizeRemaining();
  return p;
}

ClassProfile classProfileSkeleton(const JobClass& klass, std::int32_t clusterNodes) {
  ClassProfile cp;
  cp.name = klass.name;
  cp.app = klass.app;
  cp.allocs = feasibleAllocations(klass, clusterNodes);
  if (klass.app == AppKind::Lu) {
    cp.stateBytes = static_cast<double>(klass.lu.n) * klass.lu.n * sizeof(double);
    cp.stateShrinks = true;
  } else {
    cp.stateBytes =
        static_cast<double>(klass.jacobi.rows) * klass.jacobi.cols * sizeof(double);
    cp.stateShrinks = false;
  }
  cp.byAlloc.resize(cp.allocs.size());
  return cp;
}

} // namespace dps::sched
