// Job phase profiles: the bridge between the per-application DPS engine and
// the cluster event loop.
//
// For every (job class, allocation) pair the cluster scheduler needs a
// *phase profile*: per-phase durations and dynamic efficiencies, obtained by
// slicing a PDEXEC NOALLOC simulation at the application's progress markers
// (LU "iteration", Jacobi "sweep").  The cluster scheduler then models a
// running job as a sequence of phases whose durations come from the profile
// at the job's current allocation, and may re-decide the allocation at every
// phase boundary (the only points where the malleable applications can
// reconfigure).  Allocation changes charge a migration delay derived from
// the bytes of application state that move — the same accounting
// mall::LuMalleabilityController injects in-engine.
//
// Running one full engine simulation per (class x allocation) point is the
// scaling wall: a class that is malleable across 64 allocation levels costs
// 64 simulations to profile exhaustively.  InterpolatedProfile removes it:
// only a small set of *anchor* allocations (min, max, and a few log-spaced
// interior points) run on the engine, and the profiles for every other
// feasible allocation are synthesized by per-phase log-log interpolation
// between the bracketing anchors.  Anchors reproduce their engine profiles
// bit-for-bit; ProfileBuildOptions::interpolate = false (the tools'
// --exact-profiles) restores the exhaustive build unchanged.
//
// Profile construction fans the independent simulations out on the
// support::ThreadPool with the campaign layer's determinism contract:
// results land in index-addressed slots, so the table is bit-identical at
// any --jobs value.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/config.hpp"
#include "net/profile.hpp"
#include "sched/workload.hpp"

namespace dps::sched {

/// Engine settings the profile simulations run with.
struct ProfileSettings {
  net::PlatformProfile platform = net::ultraSparc440();
  lu::KernelCostModel luModel = lu::KernelCostModel::ultraSparc440();
  jacobi::JacobiCostModel jacobiModel{};

  /// The engine configuration every profile run uses: PDEXEC NOALLOC on
  /// this platform.  sched::replay runs with the identical configuration so
  /// prediction and replay differ only by what the cluster loop abstracts.
  core::SimConfig simConfig() const {
    core::SimConfig sc;
    sc.profile = platform;
    sc.mode = core::ExecutionMode::Pdexec;
    sc.allocatePayloads = false;
    return sc;
  }

  /// Stable structural hash over the full engine configuration these
  /// settings induce (platform, mode knobs, fidelity, both kernel cost
  /// models).  Any field change changes the value, so two divergent
  /// settings can never alias one svc::ProfileCache entry.
  std::uint64_t fingerprint() const;
};

/// One class's behaviour at one allocation.
struct PhaseProfile {
  std::int32_t nodes = 0;
  std::vector<double> phaseSec; // per-phase durations, sum == totalSec
  std::vector<double> phaseEff; // profiled dynamic efficiency per phase
  double totalSec = 0;          // simulated makespan at this allocation
  /// remainSec[i] == phaseSec[i] + phaseSec[i+1] + ... — the event loop's
  /// remaining-runtime query in O(1).  Each entry is the plain left-to-right
  /// accumulation from i, so it is bitwise identical to summing the tail on
  /// the spot (the pre-optimization loop's behaviour).  Filled by
  /// finalizeRemaining(); remainingFrom() falls back to the direct sum when
  /// a hand-built profile never called it.
  std::vector<double> remainSec;

  void finalizeRemaining();
  double remainingFrom(std::int32_t phase) const;
};

/// One class's profiles across its feasible allocations.
struct ClassProfile {
  std::string name;
  AppKind app = AppKind::Lu;
  std::vector<std::int32_t> allocs; // ascending feasible allocations
  std::vector<PhaseProfile> byAlloc;
  /// Total bytes of distributed application state (LU: the n x n matrix;
  /// Jacobi: the grid) — the unit of the migration-cost model.
  double stateBytes = 0;
  /// True when completed phases retire their state from future migrations
  /// (LU columns already factored stay put; the Jacobi grid stays live).
  bool stateShrinks = false;

  std::int32_t phases() const;
  std::int32_t maxNodes() const { return allocs.back(); }
  std::int32_t minNodes() const { return allocs.front(); }
  /// O(log levels) lookups: `allocs` is ascending by contract.
  const PhaseProfile& at(std::int32_t nodes) const;
  bool feasible(std::int32_t nodes) const;
  /// Largest feasible allocation <= want; the smallest one when none is.
  std::int32_t clampFeasible(std::int32_t want) const;
  /// Shortest achievable runtime across allocations (slowdown denominator).
  double bestSec() const;
  /// Bytes that move when reallocating from -> to before phase `phase`,
  /// mirroring the in-engine controller's per-direction accounting: shrink
  /// moves every column the removed workers own (full panels, factored or
  /// not); grow moves only still-unfactored columns, a ceil-share per
  /// re-added worker.  sched::replay validates this model against the
  /// controller's actual shrink/grow byte counters.
  double migrationBytes(std::int32_t phase, std::int32_t from, std::int32_t to) const;
};

/// Per-phase duration and efficiency curves fitted from engine profiles at
/// a few anchor allocations, able to synthesize a PhaseProfile for any
/// allocation in between.  Durations interpolate linearly in
/// (log nodes, log seconds) between the bracketing anchors — exact at the
/// anchors, a piecewise power law in between, which is the shape parallel
/// phase runtimes follow until efficiency rolls off (and enough anchors
/// track the roll-off).  Efficiencies interpolate linearly in log nodes.
class InterpolatedProfile {
public:
  /// `count` anchors out of `allocs` (ascending): always the endpoints,
  /// interior points log-spaced in allocation value, snapped to distinct
  /// feasible levels.  count >= allocs.size() returns every level.
  static std::vector<std::int32_t> pickAnchors(const std::vector<std::int32_t>& allocs,
                                               std::int32_t count);
  /// The default anchor budget for a class with `levels` feasible
  /// allocations: every level while profiling stays cheap (<= 5), else
  /// levels/4 clamped into [3, 8] — at least a 4x engine-run reduction once
  /// classes are 12+ levels malleable.
  static std::int32_t autoAnchorCount(std::size_t levels);

  /// Fits the curves from a ClassProfile holding *exact* engine profiles at
  /// its (anchor) allocations.
  static InterpolatedProfile fit(ClassProfile anchored);

  const std::vector<std::int32_t>& anchors() const { return anchored_.allocs; }

  /// Synthesizes the profile at `nodes` (clamped into the anchor range).
  /// An anchor allocation returns its stored engine profile bit-for-bit.
  PhaseProfile at(std::int32_t nodes) const;

  /// Fills `skeleton.byAlloc` (one entry per skeleton.allocs) from the
  /// fitted curves.
  ClassProfile synthesize(ClassProfile skeleton) const;

private:
  ClassProfile anchored_;
};

struct EngineRunSpec;
struct EngineRunRecord;

/// How JobProfileTable::build turns (class x allocation) points into
/// profiles.
struct ProfileBuildOptions {
  /// Profile only anchor allocations on the engine and synthesize the rest
  /// (classes with <= autoAnchorCount-exact levels still run exhaustively,
  /// so small tables are bit-identical either way).  false = today's
  /// exhaustive build, one engine run per allocation (--exact-profiles).
  bool interpolate = true;
  /// Anchor budget per class; 0 = autoAnchorCount.  Clamped to [2, levels].
  std::int32_t anchors = 0;
  /// Invoked after each completed engine run with (done, planned) — from
  /// pool threads, so the callback must be thread-safe.  Drives --progress.
  std::function<void(std::size_t, std::size_t)> onRunDone{};
};

/// Profiles for every class of a workload mix.
class JobProfileTable {
public:
  /// Runs the (class x anchor allocation) profile simulations with up to
  /// `jobs` concurrent engines (0 = hardware concurrency) and synthesizes
  /// the remaining allocations per `options`.  Bit-identical at any jobs
  /// value.  A non-null `runner` executes the per-point engine runs
  /// (svc::cachedRunner memoizes them); null runs them directly.
  static JobProfileTable build(
      const std::vector<JobClass>& classes, std::int32_t clusterNodes,
      const ProfileSettings& settings = {}, unsigned jobs = 1,
      const std::function<EngineRunRecord(const EngineRunSpec&)>& runner = {},
      const ProfileBuildOptions& options = {});

  /// Wraps hand-built profiles into a table without running the engine —
  /// for tests and the explorer's hand-computable oracle workloads, where
  /// the phase durations must be chosen, not profiled.  Every ClassProfile
  /// must already satisfy the table invariants (ascending `allocs`, one
  /// PhaseProfile per allocation, equal phase counts across allocations).
  static JobProfileTable fromProfiles(std::vector<ClassProfile> classes);

  std::size_t classCount() const { return classes_.size(); }
  const ClassProfile& of(std::size_t klass) const { return classes_.at(klass); }

  /// What the build cost versus what it produced.
  struct BuildInfo {
    std::size_t engineRunPoints = 0; // (class x allocation) points simulated
    std::size_t profiledAllocs = 0;  // profile entries produced (incl. synthesized)
    /// profiledAllocs / engineRunPoints — the engine-run reduction an
    /// exhaustive build of the same table would have paid.
    double runReduction() const {
      return engineRunPoints == 0
                 ? 1.0
                 : static_cast<double>(profiledAllocs) / static_cast<double>(engineRunPoints);
    }
  };
  const BuildInfo& buildInfo() const { return info_; }

private:
  std::vector<ClassProfile> classes_;
  BuildInfo info_;
};

} // namespace dps::sched
