// Job phase profiles: the bridge between the per-application DPS engine and
// the cluster event loop.
//
// For every (job class, feasible allocation) pair one PDEXEC NOALLOC
// simulation runs on the discrete-event engine; its trace is sliced at the
// application's progress markers (LU "iteration", Jacobi "sweep") into
// *phases* — per-phase durations and dynamic efficiencies.  The cluster
// scheduler then models a running job as a sequence of phases whose
// durations come from the profile at the job's current allocation, and may
// re-decide the allocation at every phase boundary (the only points where
// the malleable applications can reconfigure).  Allocation changes charge a
// migration delay derived from the bytes of application state that move —
// the same accounting mall::LuMalleabilityController injects in-engine.
//
// Profile construction fans the independent simulations out on the
// support::ThreadPool with the campaign layer's determinism contract:
// results land in index-addressed slots, so the table is bit-identical at
// any --jobs value.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/config.hpp"
#include "net/profile.hpp"
#include "sched/workload.hpp"

namespace dps::sched {

/// Engine settings the profile simulations run with.
struct ProfileSettings {
  net::PlatformProfile platform = net::ultraSparc440();
  lu::KernelCostModel luModel = lu::KernelCostModel::ultraSparc440();
  jacobi::JacobiCostModel jacobiModel{};

  /// The engine configuration every profile run uses: PDEXEC NOALLOC on
  /// this platform.  sched::replay runs with the identical configuration so
  /// prediction and replay differ only by what the cluster loop abstracts.
  core::SimConfig simConfig() const {
    core::SimConfig sc;
    sc.profile = platform;
    sc.mode = core::ExecutionMode::Pdexec;
    sc.allocatePayloads = false;
    return sc;
  }

  /// Stable structural hash over the full engine configuration these
  /// settings induce (platform, mode knobs, fidelity, both kernel cost
  /// models).  Any field change changes the value, so two divergent
  /// settings can never alias one svc::ProfileCache entry.
  std::uint64_t fingerprint() const;
};

/// One class's behaviour at one allocation.
struct PhaseProfile {
  std::int32_t nodes = 0;
  std::vector<double> phaseSec; // per-phase durations, sum == totalSec
  std::vector<double> phaseEff; // profiled dynamic efficiency per phase
  double totalSec = 0;          // simulated makespan at this allocation
};

/// One class's profiles across its feasible allocations.
struct ClassProfile {
  std::string name;
  AppKind app = AppKind::Lu;
  std::vector<std::int32_t> allocs; // ascending feasible allocations
  std::vector<PhaseProfile> byAlloc;
  /// Total bytes of distributed application state (LU: the n x n matrix;
  /// Jacobi: the grid) — the unit of the migration-cost model.
  double stateBytes = 0;
  /// True when completed phases retire their state from future migrations
  /// (LU columns already factored stay put; the Jacobi grid stays live).
  bool stateShrinks = false;

  std::int32_t phases() const;
  std::int32_t maxNodes() const { return allocs.back(); }
  std::int32_t minNodes() const { return allocs.front(); }
  const PhaseProfile& at(std::int32_t nodes) const;
  bool feasible(std::int32_t nodes) const;
  /// Largest feasible allocation <= want; the smallest one when none is.
  std::int32_t clampFeasible(std::int32_t want) const;
  /// Shortest achievable runtime across allocations (slowdown denominator).
  double bestSec() const;
  /// Bytes that move when reallocating from -> to before phase `phase`,
  /// mirroring the in-engine controller's per-direction accounting: shrink
  /// moves every column the removed workers own (full panels, factored or
  /// not); grow moves only still-unfactored columns, a ceil-share per
  /// re-added worker.  sched::replay validates this model against the
  /// controller's actual shrink/grow byte counters.
  double migrationBytes(std::int32_t phase, std::int32_t from, std::int32_t to) const;
};

struct EngineRunSpec;
struct EngineRunRecord;

/// Profiles for every class of a workload mix.
class JobProfileTable {
public:
  /// Runs the (class x allocation) profile simulations with up to `jobs`
  /// concurrent engines (0 = hardware concurrency).  Bit-identical at any
  /// jobs value.  A non-null `runner` executes the per-point engine runs
  /// (svc::cachedRunner memoizes them); null runs them directly.
  static JobProfileTable build(
      const std::vector<JobClass>& classes, std::int32_t clusterNodes,
      const ProfileSettings& settings = {}, unsigned jobs = 1,
      const std::function<EngineRunRecord(const EngineRunSpec&)>& runner = {});

  std::size_t classCount() const { return classes_.size(); }
  const ClassProfile& of(std::size_t klass) const { return classes_.at(klass); }

private:
  std::vector<ClassProfile> classes_;
};

} // namespace dps::sched
