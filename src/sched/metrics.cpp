#include "sched/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "support/csv.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace dps::sched {

namespace {
/// Local shorthand for the shared round-trippable formatter.
std::string fmt(double v) { return jsonDouble(v); }
} // namespace

void ClusterMetrics::recordUse(double timeSec, std::int32_t usedNodes) {
  if (!timeline.empty() && timeline.back().timeSec == timeSec) {
    // Same instant: the previous point is zero-width; keep only the final
    // value, and drop the point entirely if the value ends up unchanged.
    if (timeline.size() >= 2 && timeline[timeline.size() - 2].usedNodes == usedNodes) {
      timeline.pop_back();
      return;
    }
    timeline.back().usedNodes = usedNodes;
    return;
  }
  if (!timeline.empty() && timeline.back().usedNodes == usedNodes) return;
  timeline.push_back(UtilizationPoint{timeSec, usedNodes});
}

void ClusterMetrics::finalize() {
  makespanSec = 0;
  meanSlowdown = maxSlowdown = meanWaitSec = migratedBytes = 0;
  reallocations = 0;
  backfillFires = 0;
  attribution = obs::WaitAttribution{};
  for (const JobOutcome& j : jobs) {
    makespanSec = std::max(makespanSec, j.finishSec);
    meanSlowdown += j.slowdown();
    maxSlowdown = std::max(maxSlowdown, j.slowdown());
    meanWaitSec += j.waitSec();
    migratedBytes += j.migratedBytes;
    reallocations += j.reallocations;
    if (j.backfilled) ++backfillFires;
    for (std::size_t r = 0; r < obs::kWaitReasonCount; ++r)
      attribution.byReason[r] += j.wait.byReason[r];
    attribution.totalNs += j.wait.totalNs;
    attribution.migrationDelayNs += j.wait.migrationDelayNs;
  }
  if (!jobs.empty()) {
    meanSlowdown /= static_cast<double>(jobs.size());
    meanWaitSec /= static_cast<double>(jobs.size());
  }

  // Utilization: integrate the piecewise-constant used-node curve over
  // [0, makespan].
  utilization = 0;
  if (makespanSec > 0 && nodes > 0 && !timeline.empty()) {
    double integral = 0;
    for (std::size_t i = 0; i < timeline.size(); ++i) {
      const double end = i + 1 < timeline.size() ? timeline[i + 1].timeSec : makespanSec;
      const double span = std::max(0.0, std::min(end, makespanSec) - timeline[i].timeSec);
      integral += span * timeline[i].usedNodes;
    }
    utilization = integral / (static_cast<double>(nodes) * makespanSec);
  }
}

void ClusterMetrics::writeAttributionJson(std::ostream& os) const {
  JsonWriter w(os);
  w.beginObject();
  for (std::size_t r = 0; r < obs::kWaitReasonCount; ++r) {
    std::string k = waitReasonName(static_cast<obs::WaitReason>(r));
    k += "_sec";
    w.field(k, static_cast<double>(attribution.byReason[r]) * 1e-9);
  }
  w.field("total_wait_sec", static_cast<double>(attribution.totalNs) * 1e-9)
      .field("migration_delay_sec", static_cast<double>(attribution.migrationDelayNs) * 1e-9)
      .field("dominant",
             attribution.totalNs > 0 ? waitReasonName(attribution.dominant()) : "none")
      .field("dominant_share", attribution.dominantShare())
      .endObject();
  DPS_CHECK(w.closed(), "unbalanced attribution JSON");
}

void ClusterMetrics::writeJson(std::ostream& os, std::int32_t timelineMaxPoints) const {
  JsonWriter w(os);
  w.beginObject()
      .field("policy", policy)
      .field("nodes", nodes)
      .field("seed", seed)
      .field("makespan_sec", makespanSec)
      .field("utilization", utilization)
      .field("mean_slowdown", meanSlowdown)
      .field("max_slowdown", maxSlowdown)
      .field("mean_wait_sec", meanWaitSec)
      .field("migrated_bytes", migratedBytes)
      .field("reallocations", reallocations)
      .field("backfill_fires", backfillFires)
      .field("events_processed", events)
      .field("timeline_points", static_cast<std::uint64_t>(timeline.size()));
  {
    std::ostringstream attr;
    writeAttributionJson(attr);
    w.key("attribution").raw(attr.str());
  }
  w.key("jobs").beginArray();
  for (const JobOutcome& j : jobs) {
    w.beginObject()
        .field("id", j.id)
        .field("class", j.klass)
        .field("arrival_sec", j.arrivalSec)
        .field("start_sec", j.startSec)
        .field("finish_sec", j.finishSec)
        .field("best_sec", j.bestSec)
        .field("wait_sec", j.waitSec())
        .field("slowdown", j.slowdown())
        .field("reallocations", j.reallocations)
        .field("migrated_bytes", j.migratedBytes)
        .field("backfilled", j.backfilled);
    w.key("wait_ns").beginObject();
    for (std::size_t r = 0; r < obs::kWaitReasonCount; ++r)
      w.field(waitReasonName(static_cast<obs::WaitReason>(r)), j.wait.byReason[r]);
    w.field("total", j.wait.totalNs)
        .field("migration_delay", j.wait.migrationDelayNs)
        .endObject();
    w.key("allocs").beginArray();
    for (std::int32_t a : j.allocs) w.value(a);
    w.endArray().endObject();
  }
  w.endArray();
  w.key("timeline").beginArray();
  const std::size_t n = timeline.size();
  const std::size_t cap = timelineMaxPoints > 0 ? static_cast<std::size_t>(timelineMaxPoints) : n;
  if (n <= cap) {
    for (const auto& t : timeline)
      w.beginObject().field("t", t.timeSec).field("used", t.usedNodes).endObject();
  } else {
    // Evenly strided down-sample that always keeps the first and last
    // points; duplicate picks (cap close to n) collapse.
    std::size_t last = n; // sentinel: nothing emitted yet
    for (std::size_t k = 0; k < cap; ++k) {
      const std::size_t idx = cap == 1 ? 0 : k * (n - 1) / (cap - 1);
      if (idx == last) continue;
      last = idx;
      w.beginObject().field("t", timeline[idx].timeSec).field("used", timeline[idx].usedNodes)
          .endObject();
    }
  }
  w.endArray().endObject();
  DPS_CHECK(w.closed(), "unbalanced cluster-metrics JSON");
}

std::string ClusterMetrics::jsonString(std::int32_t timelineMaxPoints) const {
  std::ostringstream os;
  writeJson(os, timelineMaxPoints);
  return os.str();
}

void ClusterMetrics::writeCsv(std::ostream& os) const {
  os << "id,class,arrival_sec,start_sec,finish_sec,best_sec,wait_sec,slowdown,"
        "reallocations,migrated_bytes,backfilled\n";
  for (const JobOutcome& j : jobs) {
    os << j.id << "," << csvQuote(j.klass) << "," << fmt(j.arrivalSec) << "," << fmt(j.startSec)
       << "," << fmt(j.finishSec) << "," << fmt(j.bestSec) << "," << fmt(j.waitSec()) << ","
       << fmt(j.slowdown()) << "," << j.reallocations << "," << fmt(j.migratedBytes) << ","
       << (j.backfilled ? 1 : 0) << "\n";
  }
}

} // namespace dps::sched
