#include "sched/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "support/csv.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace dps::sched {

namespace {
/// Local shorthand for the shared round-trippable formatter.
std::string fmt(double v) { return jsonDouble(v); }
} // namespace

void ClusterMetrics::finalize() {
  makespanSec = 0;
  meanSlowdown = maxSlowdown = meanWaitSec = migratedBytes = 0;
  reallocations = 0;
  for (const JobOutcome& j : jobs) {
    makespanSec = std::max(makespanSec, j.finishSec);
    meanSlowdown += j.slowdown();
    maxSlowdown = std::max(maxSlowdown, j.slowdown());
    meanWaitSec += j.waitSec();
    migratedBytes += j.migratedBytes;
    reallocations += j.reallocations;
  }
  if (!jobs.empty()) {
    meanSlowdown /= static_cast<double>(jobs.size());
    meanWaitSec /= static_cast<double>(jobs.size());
  }

  // Utilization: integrate the piecewise-constant used-node curve over
  // [0, makespan].
  utilization = 0;
  if (makespanSec > 0 && nodes > 0 && !timeline.empty()) {
    double integral = 0;
    for (std::size_t i = 0; i < timeline.size(); ++i) {
      const double end = i + 1 < timeline.size() ? timeline[i + 1].timeSec : makespanSec;
      const double span = std::max(0.0, std::min(end, makespanSec) - timeline[i].timeSec);
      integral += span * timeline[i].usedNodes;
    }
    utilization = integral / (static_cast<double>(nodes) * makespanSec);
  }
}

void ClusterMetrics::writeJson(std::ostream& os) const {
  os << "{\"policy\":\"" << jsonEscape(policy) << "\",\"nodes\":" << nodes << ",\"seed\":" << seed
     << ",\"makespan_sec\":" << fmt(makespanSec) << ",\"utilization\":" << fmt(utilization)
     << ",\"mean_slowdown\":" << fmt(meanSlowdown) << ",\"max_slowdown\":" << fmt(maxSlowdown)
     << ",\"mean_wait_sec\":" << fmt(meanWaitSec) << ",\"migrated_bytes\":" << fmt(migratedBytes)
     << ",\"reallocations\":" << reallocations;
  os << ",\"jobs\":[";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobOutcome& j = jobs[i];
    if (i) os << ",";
    os << "{\"id\":" << j.id << ",\"class\":\"" << jsonEscape(j.klass) << "\""
       << ",\"arrival_sec\":" << fmt(j.arrivalSec) << ",\"start_sec\":" << fmt(j.startSec)
       << ",\"finish_sec\":" << fmt(j.finishSec) << ",\"best_sec\":" << fmt(j.bestSec)
       << ",\"wait_sec\":" << fmt(j.waitSec()) << ",\"slowdown\":" << fmt(j.slowdown())
       << ",\"reallocations\":" << j.reallocations
       << ",\"migrated_bytes\":" << fmt(j.migratedBytes)
       << ",\"backfilled\":" << (j.backfilled ? "true" : "false") << ",\"allocs\":[";
    for (std::size_t a = 0; a < j.allocs.size(); ++a) {
      if (a) os << ",";
      os << j.allocs[a];
    }
    os << "]}";
  }
  os << "],\"timeline\":[";
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    if (i) os << ",";
    os << "{\"t\":" << fmt(timeline[i].timeSec) << ",\"used\":" << timeline[i].usedNodes << "}";
  }
  os << "]}";
}

std::string ClusterMetrics::jsonString() const {
  std::ostringstream os;
  writeJson(os);
  return os.str();
}

void ClusterMetrics::writeCsv(std::ostream& os) const {
  os << "id,class,arrival_sec,start_sec,finish_sec,best_sec,wait_sec,slowdown,"
        "reallocations,migrated_bytes,backfilled\n";
  for (const JobOutcome& j : jobs) {
    os << j.id << "," << csvQuote(j.klass) << "," << fmt(j.arrivalSec) << "," << fmt(j.startSec)
       << "," << fmt(j.finishSec) << "," << fmt(j.bestSec) << "," << fmt(j.waitSec()) << ","
       << fmt(j.slowdown()) << "," << j.reallocations << "," << fmt(j.migratedBytes) << ","
       << (j.backfilled ? 1 : 0) << "\n";
  }
}

} // namespace dps::sched
