#include "sched/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "support/csv.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace dps::sched {

namespace {
/// Local shorthand for the shared round-trippable formatter.
std::string fmt(double v) { return jsonDouble(v); }
} // namespace

void ClusterMetrics::finalize() {
  makespanSec = 0;
  meanSlowdown = maxSlowdown = meanWaitSec = migratedBytes = 0;
  reallocations = 0;
  for (const JobOutcome& j : jobs) {
    makespanSec = std::max(makespanSec, j.finishSec);
    meanSlowdown += j.slowdown();
    maxSlowdown = std::max(maxSlowdown, j.slowdown());
    meanWaitSec += j.waitSec();
    migratedBytes += j.migratedBytes;
    reallocations += j.reallocations;
  }
  if (!jobs.empty()) {
    meanSlowdown /= static_cast<double>(jobs.size());
    meanWaitSec /= static_cast<double>(jobs.size());
  }

  // Utilization: integrate the piecewise-constant used-node curve over
  // [0, makespan].
  utilization = 0;
  if (makespanSec > 0 && nodes > 0 && !timeline.empty()) {
    double integral = 0;
    for (std::size_t i = 0; i < timeline.size(); ++i) {
      const double end = i + 1 < timeline.size() ? timeline[i + 1].timeSec : makespanSec;
      const double span = std::max(0.0, std::min(end, makespanSec) - timeline[i].timeSec);
      integral += span * timeline[i].usedNodes;
    }
    utilization = integral / (static_cast<double>(nodes) * makespanSec);
  }
}

void ClusterMetrics::writeJson(std::ostream& os) const {
  JsonWriter w(os);
  w.beginObject()
      .field("policy", policy)
      .field("nodes", nodes)
      .field("seed", seed)
      .field("makespan_sec", makespanSec)
      .field("utilization", utilization)
      .field("mean_slowdown", meanSlowdown)
      .field("max_slowdown", maxSlowdown)
      .field("mean_wait_sec", meanWaitSec)
      .field("migrated_bytes", migratedBytes)
      .field("reallocations", reallocations);
  w.key("jobs").beginArray();
  for (const JobOutcome& j : jobs) {
    w.beginObject()
        .field("id", j.id)
        .field("class", j.klass)
        .field("arrival_sec", j.arrivalSec)
        .field("start_sec", j.startSec)
        .field("finish_sec", j.finishSec)
        .field("best_sec", j.bestSec)
        .field("wait_sec", j.waitSec())
        .field("slowdown", j.slowdown())
        .field("reallocations", j.reallocations)
        .field("migrated_bytes", j.migratedBytes)
        .field("backfilled", j.backfilled);
    w.key("allocs").beginArray();
    for (std::int32_t a : j.allocs) w.value(a);
    w.endArray().endObject();
  }
  w.endArray();
  w.key("timeline").beginArray();
  for (const auto& t : timeline)
    w.beginObject().field("t", t.timeSec).field("used", t.usedNodes).endObject();
  w.endArray().endObject();
  DPS_CHECK(w.closed(), "unbalanced cluster-metrics JSON");
}

std::string ClusterMetrics::jsonString() const {
  std::ostringstream os;
  writeJson(os);
  return os.str();
}

void ClusterMetrics::writeCsv(std::ostream& os) const {
  os << "id,class,arrival_sec,start_sec,finish_sec,best_sec,wait_sec,slowdown,"
        "reallocations,migrated_bytes,backfilled\n";
  for (const JobOutcome& j : jobs) {
    os << j.id << "," << csvQuote(j.klass) << "," << fmt(j.arrivalSec) << "," << fmt(j.startSec)
       << "," << fmt(j.finishSec) << "," << fmt(j.bestSec) << "," << fmt(j.waitSec()) << ","
       << fmt(j.slowdown()) << "," << j.reallocations << "," << fmt(j.migratedBytes) << ","
       << (j.backfilled ? 1 : 0) << "\n";
  }
}

} // namespace dps::sched
