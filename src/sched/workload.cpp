#include "sched/workload.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace dps::sched {

lu::LuConfig JobClass::luAt(std::int32_t workers) const {
  DPS_CHECK(app == AppKind::Lu, "not an LU job class");
  lu::LuConfig cfg = lu;
  cfg.workers = workers;
  return cfg;
}

jacobi::JacobiConfig JobClass::jacobiAt(std::int32_t workers) const {
  DPS_CHECK(app == AppKind::Jacobi, "not a Jacobi job class");
  jacobi::JacobiConfig cfg = jacobi;
  cfg.workers = workers;
  return cfg;
}

bool JobClass::feasibleAt(std::int32_t workers) const {
  if (workers < 1 || workers > maxNodes()) return false;
  if (app == AppKind::Lu) return true;
  return workers >= 2 && jacobi.rows % workers == 0;
}

std::vector<std::int32_t> feasibleAllocations(const JobClass& klass, std::int32_t clusterNodes) {
  const std::int32_t cap = std::min(klass.maxNodes(), clusterNodes);
  std::vector<std::int32_t> allocs;
  if (klass.denseAllocs) {
    for (std::int32_t w = 1; w <= cap; ++w)
      if (klass.feasibleAt(w)) allocs.push_back(w);
  } else {
    for (std::int32_t w = 1; w <= cap; w *= 2)
      if (klass.feasibleAt(w)) allocs.push_back(w);
    if (klass.feasibleAt(cap) && (allocs.empty() || allocs.back() != cap)) allocs.push_back(cap);
  }
  DPS_CHECK(!allocs.empty(), "job class " + klass.name + " cannot run on this cluster");
  return allocs;
}

Workload Workload::generate(WorkloadConfig cfg, std::int32_t clusterNodes) {
  DPS_CHECK(clusterNodes > 0, "cluster needs at least one node");
  DPS_CHECK(cfg.jobCount > 0, "workload needs at least one job");
  DPS_CHECK(cfg.arrivalRatePerSec > 0, "arrival rate must be positive");
  if (cfg.classes.empty()) cfg.classes = defaultMix(clusterNodes);
  double totalWeight = 0;
  for (const JobClass& k : cfg.classes) {
    DPS_CHECK(k.weight > 0, "job class weights must be positive");
    DPS_CHECK(k.maxNodes() >= 1, "job class requests no nodes");
    totalWeight += k.weight;
  }

  Workload wl;
  Rng rng(cfg.seed);
  double t = 0;
  for (std::int32_t i = 0; i < cfg.jobCount; ++i) {
    t += rng.exponential(cfg.arrivalRatePerSec);
    const double pick = rng.uniform() * totalWeight;
    double cumulative = 0;
    std::size_t klass = cfg.classes.size() - 1;
    for (std::size_t c = 0; c < cfg.classes.size(); ++c) {
      cumulative += cfg.classes[c].weight;
      if (pick < cumulative) {
        klass = c;
        break;
      }
    }
    wl.jobs.push_back(Job{i, klass, t});
  }
  wl.cfg = std::move(cfg);
  return wl;
}

std::vector<JobClass> Workload::defaultMix(std::int32_t clusterNodes) {
  DPS_CHECK(clusterNodes >= 2, "default mix needs a cluster of at least two nodes");
  const auto clamp = [&](std::int32_t want) { return std::min(want, clusterNodes); };
  // Largest power of two <= clusterNodes: keeps Jacobi strip counts valid.
  std::int32_t pow2 = 1;
  while (pow2 * 2 <= clusterNodes) pow2 *= 2;

  std::vector<JobClass> classes;
  {
    JobClass k;
    k.name = "lu-wide";
    k.app = AppKind::Lu;
    k.lu.n = 1296;
    k.lu.r = 162; // 8 levels
    k.lu.seed = 20060425;
    k.lu.workers = clamp(8);
    k.weight = 1.0;
    classes.push_back(k);
  }
  {
    JobClass k;
    k.name = "lu-small";
    k.app = AppKind::Lu;
    k.lu.n = 648;
    k.lu.r = 81; // 8 levels
    k.lu.seed = 20060425;
    k.lu.workers = clamp(4);
    k.weight = 1.0;
    classes.push_back(k);
  }
  {
    JobClass k;
    k.name = "jacobi-hot";
    k.app = AppKind::Jacobi;
    k.jacobi.rows = 512;
    k.jacobi.cols = 512;
    k.jacobi.sweeps = 48;
    k.jacobi.seed = 11;
    k.jacobi.workers = std::min(pow2, 8);
    k.weight = 1.5;
    classes.push_back(k);
  }
  {
    JobClass k;
    k.name = "jacobi-thin";
    k.app = AppKind::Jacobi;
    k.jacobi.rows = 256;
    k.jacobi.cols = 256;
    k.jacobi.sweeps = 24;
    k.jacobi.seed = 11;
    k.jacobi.workers = std::min(pow2, 4);
    k.weight = 1.5;
    classes.push_back(k);
  }
  return classes;
}

std::vector<JobClass> Workload::scaledMix(std::int32_t clusterNodes) {
  DPS_CHECK(clusterNodes >= 2, "scaled mix needs a cluster of at least two nodes");
  const auto clamp = [&](std::int32_t want) { return std::min(want, clusterNodes); };

  std::vector<JobClass> classes;
  {
    // Up to 64 malleability levels (every worker count 1..64).
    JobClass k;
    k.name = "lu-band";
    k.app = AppKind::Lu;
    k.lu.n = 2592;
    k.lu.r = 81; // 32 phases
    k.lu.seed = 20060425;
    k.lu.workers = clamp(64);
    k.denseAllocs = true;
    k.weight = 1.0;
    classes.push_back(k);
  }
  {
    JobClass k;
    k.name = "lu-sheet";
    k.app = AppKind::Lu;
    k.lu.n = 1296;
    k.lu.r = 81; // 16 phases, up to 16 dense levels
    k.lu.seed = 20060425;
    k.lu.workers = clamp(16);
    k.denseAllocs = true;
    k.weight = 1.0;
    classes.push_back(k);
  }
  {
    // 720 is divisor-rich: 29 feasible strip counts between 2 and 720.
    JobClass k;
    k.name = "jacobi-field";
    k.app = AppKind::Jacobi;
    k.jacobi.rows = 720;
    k.jacobi.cols = 720;
    k.jacobi.sweeps = 24;
    k.jacobi.seed = 11;
    k.jacobi.workers = clamp(720);
    k.denseAllocs = true;
    k.weight = 1.5;
    classes.push_back(k);
  }
  {
    JobClass k;
    k.name = "jacobi-strip";
    k.app = AppKind::Jacobi;
    k.jacobi.rows = 240;
    k.jacobi.cols = 240;
    k.jacobi.sweeps = 12;
    k.jacobi.seed = 11;
    k.jacobi.workers = clamp(30); // 13 divisor levels between 2 and 30
    k.denseAllocs = true;
    k.weight = 1.5;
    classes.push_back(k);
  }
  return classes;
}

std::string Workload::describe() const {
  std::ostringstream os;
  os << jobs.size() << " jobs, rate " << cfg.arrivalRatePerSec << "/s, seed " << cfg.seed
     << ", mix";
  std::vector<std::size_t> counts(cfg.classes.size(), 0);
  for (const Job& j : jobs) counts[j.klass]++;
  for (std::size_t c = 0; c < cfg.classes.size(); ++c)
    os << " " << cfg.classes[c].name << ":" << counts[c];
  return os.str();
}

} // namespace dps::sched
