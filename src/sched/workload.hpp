// Cluster workload generation (sched:: subsystem).
//
// The paper simulates one application whose allocation varies; related
// cluster simulators (SST job scheduling, CGSim) treat the *cluster* as the
// unit of simulation: a stream of heterogeneous jobs arrives at a shared
// machine and a scheduler policy decides allocations online.  This header
// provides that stream: a deterministic seeded Poisson process of arrivals
// drawn from a weighted mix of LU and Jacobi job classes at different
// sizes/durations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "jacobi/app.hpp"
#include "lu/builder.hpp"

namespace dps::sched {

enum class AppKind : std::uint8_t { Lu, Jacobi };

/// One entry of the heterogeneous job mix: an application configured at its
/// *maximum* (requested) allocation, plus the relative arrival weight.
struct JobClass {
  std::string name;
  AppKind app = AppKind::Lu;
  lu::LuConfig lu{};
  jacobi::JacobiConfig jacobi{};
  double weight = 1.0;
  /// When set, feasibleAllocations() returns *every* feasible worker count
  /// up to the class maximum (LU: every integer; Jacobi: every divisor of
  /// the grid rows) instead of just the powers of two.  Dense classes are
  /// what make profile interpolation pay: tens of malleability levels from
  /// a handful of anchor engine runs.
  bool denseAllocs = false;

  /// The allocation the job asks for when rigid.
  std::int32_t maxNodes() const { return app == AppKind::Lu ? lu.workers : jacobi.workers; }
  /// The class configuration re-targeted to `workers` nodes.
  lu::LuConfig luAt(std::int32_t workers) const;
  jacobi::JacobiConfig jacobiAt(std::int32_t workers) const;
  /// True when the class can run on `workers` nodes (LU: any >= 1;
  /// Jacobi: >= 2 strips that evenly divide the grid rows).
  bool feasibleAt(std::int32_t workers) const;
};

/// Ascending malleability levels a job of this class can run at on a
/// cluster of `clusterNodes`: the feasible powers of two plus the class's
/// requested maximum (bounded so exhaustive profiling stays cheap), or all
/// feasible counts for denseAllocs classes.
std::vector<std::int32_t> feasibleAllocations(const JobClass& klass, std::int32_t clusterNodes);

/// One arriving job.
struct Job {
  std::int32_t id = 0;
  std::size_t klass = 0;
  double arrivalSec = 0;
};

struct WorkloadConfig {
  std::uint64_t seed = 1;
  std::int32_t jobCount = 12;
  /// Poisson arrival process rate (jobs per simulated second).
  double arrivalRatePerSec = 0.15;
  /// Empty selects Workload::defaultMix(clusterNodes).
  std::vector<JobClass> classes;
};

struct Workload {
  WorkloadConfig cfg; // with classes resolved
  std::vector<Job> jobs;

  /// Deterministic in (cfg.seed, cfg.jobCount, cfg.arrivalRatePerSec,
  /// classes): per job, one exponential inter-arrival draw then one
  /// weighted class draw, in that order.
  static Workload generate(WorkloadConfig cfg, std::int32_t clusterNodes);

  /// The bench/tool default mix: two LU classes (wide/small) and two Jacobi
  /// stencil classes (hot/thin), workers clamped to the cluster size.
  static std::vector<JobClass> defaultMix(std::int32_t clusterNodes);

  /// The large-machine mix (--mix scaled): the same four-way LU/Jacobi
  /// shape but denseAllocs classes that are malleable across every feasible
  /// worker count — up to 64 LU levels and every grid-divisor Jacobi strip
  /// count.  Exhaustive profiling of this mix is exactly the scaling wall
  /// interpolated tables remove.
  static std::vector<JobClass> scaledMix(std::int32_t clusterNodes);

  std::string describe() const;
};

} // namespace dps::sched
