#include "sched/explore.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_set>
#include <utility>

#include "obs/recorder.hpp"
#include "support/error.hpp"
#include "support/fingerprint.hpp"

namespace dps::sched {

namespace {

constexpr std::int64_t kNoEvent = std::numeric_limits<std::int64_t>::max();
constexpr std::size_t kMaxViolations = 8;
constexpr double kEps = 1e-9;

/// Matches toSeconds(SimDuration) for a raw nanosecond count.
double nsToSec(std::int64_t ns) { return static_cast<double>(ns) * 1e-9; }

enum class JobSt : std::uint8_t { Pending, Queued, Running, Migrating, Boundary, Finished };

/// One job's slot of the instant machine.  `phase` is the currently
/// executing phase while Running, and the *next* phase to run while
/// Migrating or at a Boundary; `nextNs` is the phase end (Running) or the
/// migration end (Migrating).
struct JobState {
  JobSt st = JobSt::Pending;
  std::int32_t alloc = 0;
  std::int32_t phase = 0;
  std::int64_t nextNs = 0;
  std::int64_t startNs = -1;
  std::int64_t finishNs = -1;
};

struct State {
  std::int64_t nowNs = 0;
  std::int32_t free = 0;
  std::vector<JobState> jobs;
};

/// Per-class integer-nanosecond tables, quantized exactly as the event loop
/// quantizes: phase durations through seconds(), so explorer finish times
/// land on the same ticks simulateCluster produces.
struct ClassTab {
  const ClassProfile* profile = nullptr;
  std::int32_t phases = 0;
  std::vector<std::vector<std::int64_t>> durNs; ///< [alloc level][phase]
  /// minRemainNs[p] = sum_{q >= p} min_level durNs[level][q] — the
  /// admissible remaining-time bound (migration delays ignored).
  std::vector<std::int64_t> minRemainNs;
  double bestSec = 0;
};

/// The deterministic instant machine the search and the replay share: the
/// cluster loop's semantics (admission, phase boundaries, shrink-frees-now,
/// migration delays) re-expressed as explicit state + decision application,
/// with event processing factored out of decision enumeration.
class Machine {
public:
  Machine(const ClusterConfig& cfg, const Workload& workload, const JobProfileTable& profiles)
      : cfg_(cfg), workload_(workload) {
    DPS_CHECK(cfg.nodes > 0, "explorer needs at least one node");
    DPS_CHECK(cfg.migrationBandwidthBytesPerSec > 0, "migration bandwidth must be positive");
    tabs_.reserve(profiles.classCount());
    for (std::size_t c = 0; c < profiles.classCount(); ++c) {
      const ClassProfile& cp = profiles.of(c);
      DPS_CHECK(cp.maxNodes() <= cfg.nodes,
                "job class " + cp.name + " cannot fit the cluster");
      ClassTab t;
      t.profile = &cp;
      t.phases = cp.phases();
      t.bestSec = cp.bestSec();
      t.durNs.resize(cp.allocs.size());
      for (std::size_t lvl = 0; lvl < cp.allocs.size(); ++lvl) {
        t.durNs[lvl].reserve(static_cast<std::size_t>(t.phases));
        for (double sec : cp.byAlloc[lvl].phaseSec)
          t.durNs[lvl].push_back(seconds(sec).count());
      }
      t.minRemainNs.assign(static_cast<std::size_t>(t.phases) + 1, 0);
      for (std::int32_t p = t.phases - 1; p >= 0; --p) {
        std::int64_t best = kNoEvent;
        for (const auto& lvl : t.durNs) best = std::min(best, lvl[static_cast<std::size_t>(p)]);
        t.minRemainNs[static_cast<std::size_t>(p)] =
            t.minRemainNs[static_cast<std::size_t>(p) + 1] + best;
      }
      tabs_.push_back(std::move(t));
    }
    arrivalNs_.reserve(workload.jobs.size());
    for (const Job& j : workload.jobs) arrivalNs_.push_back(seconds(j.arrivalSec).count());
  }

  std::int32_t nodes() const { return cfg_.nodes; }
  std::size_t jobCount() const { return workload_.jobs.size(); }
  std::int64_t arrivalNs(std::size_t j) const { return arrivalNs_[j]; }
  double arrivalSec(std::size_t j) const { return workload_.jobs[j].arrivalSec; }
  const ClassTab& tab(std::size_t j) const { return tabs_[workload_.jobs[j].klass]; }

  State initial() const {
    State s;
    s.free = cfg_.nodes;
    s.jobs.resize(workload_.jobs.size());
    return s;
  }

  std::int64_t durNs(std::size_t j, std::int32_t phase, std::int32_t alloc) const {
    const ClassTab& t = tab(j);
    return t.durNs[level(t, alloc)][static_cast<std::size_t>(phase)];
  }

  std::int64_t migrationDelayNs(std::size_t j, std::int32_t phase, std::int32_t from,
                                std::int32_t to, double* bytesOut) const {
    const double bytes = tab(j).profile->migrationBytes(phase, from, to);
    if (bytesOut != nullptr) *bytesOut = bytes;
    if (!cfg_.chargeMigration) return 0;
    return (cfg_.migrationLatency + seconds(bytes / cfg_.migrationBandwidthBytesPerSec)).count();
  }

  /// The next instant anything happens on its own (arrival, migration end,
  /// phase end); kNoEvent when every unfinished job is held in the queue —
  /// a dead branch, since nothing will ever wake the machine again.
  std::int64_t nextEventNs(const State& s) const {
    std::int64_t t = kNoEvent;
    for (std::size_t j = 0; j < s.jobs.size(); ++j) {
      const JobState& js = s.jobs[j];
      if (js.st == JobSt::Pending)
        t = std::min(t, arrivalNs_[j]);
      else if (js.st == JobSt::Running || js.st == JobSt::Migrating)
        t = std::min(t, js.nextNs);
    }
    return t;
  }

  /// Advances the clock to `t` and fires everything due: arrivals queue,
  /// migration ends begin their phase, phase ends finish the job or leave
  /// it at a Boundary awaiting a decision.
  void advance(State& s, std::int64_t t) const {
    s.nowNs = t;
    for (std::size_t j = 0; j < s.jobs.size(); ++j) {
      JobState& js = s.jobs[j];
      switch (js.st) {
      case JobSt::Pending:
        if (arrivalNs_[j] <= t) js.st = JobSt::Queued;
        break;
      case JobSt::Migrating:
        if (js.nextNs == t) {
          js.st = JobSt::Running;
          js.nextNs = t + durNs(j, js.phase, js.alloc);
        }
        break;
      case JobSt::Running:
        if (js.nextNs == t) {
          ++js.phase;
          if (js.phase >= tab(j).phases) {
            s.free += js.alloc;
            js.alloc = 0;
            js.st = JobSt::Finished;
            js.finishNs = t;
          } else {
            js.st = JobSt::Boundary;
          }
        }
        break;
      default:
        break;
      }
    }
  }

  ExploreDecision applyStart(State& s, std::size_t j, std::int32_t alloc) const {
    JobState& js = s.jobs[j];
    js.st = JobSt::Running;
    js.alloc = alloc;
    js.phase = 0;
    js.startNs = s.nowNs;
    js.nextNs = s.nowNs + durNs(j, 0, alloc);
    s.free -= alloc;
    ExploreDecision d;
    d.timeNs = s.nowNs;
    d.job = static_cast<std::int32_t>(j);
    d.kind = ExploreDecision::Kind::Start;
    d.toNodes = alloc;
    return d;
  }

  /// Applies one boundary decision; shrink frees nodes immediately while
  /// grow debits them (free may go negative mid-cascade — the joint
  /// combination is only kept if the instant ends with free >= 0).
  ExploreDecision applyBoundary(State& s, std::size_t j, std::int32_t target,
                                double* bytesOut = nullptr,
                                std::int64_t* delayOut = nullptr) const {
    JobState& js = s.jobs[j];
    const std::int32_t from = js.alloc;
    ExploreDecision d;
    d.timeNs = s.nowNs;
    d.job = static_cast<std::int32_t>(j);
    d.fromNodes = from;
    d.toNodes = target;
    d.phase = js.phase;
    if (target == from) {
      js.st = JobSt::Running;
      js.nextNs = s.nowNs + durNs(j, js.phase, from);
      d.kind = ExploreDecision::Kind::Keep;
      if (bytesOut != nullptr) *bytesOut = 0;
      if (delayOut != nullptr) *delayOut = 0;
      return d;
    }
    const std::int64_t delay = migrationDelayNs(j, js.phase, from, target, bytesOut);
    if (delayOut != nullptr) *delayOut = delay;
    s.free += from - target;
    js.alloc = target;
    if (delay > 0) {
      js.st = JobSt::Migrating;
      js.nextNs = s.nowNs + delay;
    } else {
      js.st = JobSt::Running;
      js.nextNs = s.nowNs + durNs(j, js.phase, target);
    }
    d.kind = ExploreDecision::Kind::Realloc;
    return d;
  }

  bool allFinished(const State& s) const {
    return std::all_of(s.jobs.begin(), s.jobs.end(),
                       [](const JobState& js) { return js.st == JobSt::Finished; });
  }

  /// Admissible earliest-possible finish: ignores migration delays and lets
  /// every remaining phase run at its per-phase fastest allocation.
  std::int64_t earliestFinishNs(const State& s, std::size_t j) const {
    const JobState& js = s.jobs[j];
    const ClassTab& t = tab(j);
    switch (js.st) {
    case JobSt::Finished:
      return js.finishNs;
    case JobSt::Pending:
      return arrivalNs_[j] + t.minRemainNs[0];
    case JobSt::Queued:
      return std::max(s.nowNs, arrivalNs_[j]) + t.minRemainNs[0];
    case JobSt::Boundary:
      return s.nowNs + t.minRemainNs[static_cast<std::size_t>(js.phase)];
    case JobSt::Migrating:
      return js.nextNs + t.minRemainNs[static_cast<std::size_t>(js.phase)];
    case JobSt::Running:
      return js.nextNs + t.minRemainNs[static_cast<std::size_t>(js.phase) + 1];
    }
    return kNoEvent;
  }

  double makespanSec(const State& s) const {
    std::int64_t last = 0;
    for (const JobState& js : s.jobs) last = std::max(last, js.finishNs);
    return nsToSec(last);
  }

  double meanSlowdown(const State& s) const {
    double sum = 0;
    for (std::size_t j = 0; j < s.jobs.size(); ++j)
      sum += (nsToSec(s.jobs[j].finishNs) - arrivalSec(j)) / tab(j).bestSec;
    return sum / static_cast<double>(s.jobs.size());
  }

  double lowerBound(const State& s, ExploreObjective obj) const {
    if (obj == ExploreObjective::Makespan) {
      std::int64_t lb = 0;
      for (std::size_t j = 0; j < s.jobs.size(); ++j)
        lb = std::max(lb, earliestFinishNs(s, j));
      return nsToSec(lb);
    }
    double sum = 0;
    for (std::size_t j = 0; j < s.jobs.size(); ++j)
      sum += (nsToSec(earliestFinishNs(s, j)) - arrivalSec(j)) / tab(j).bestSec;
    return sum / static_cast<double>(s.jobs.size());
  }

  /// FNV-1a over the complete search-relevant state.  Two states with equal
  /// fingerprint fields have identical reachable futures *and* identical
  /// already-banked objective contributions, so collapsing them is sound
  /// for both objectives.
  std::uint64_t hash(const State& s) const {
    Fingerprint f;
    f.add(s.nowNs).add(s.free);
    for (const JobState& js : s.jobs) {
      f.add(static_cast<std::int64_t>(js.st))
          .add(js.alloc)
          .add(js.phase)
          .add(js.nextNs)
          .add(js.startNs)
          .add(js.finishNs);
    }
    return f.value();
  }

private:
  static std::size_t level(const ClassTab& t, std::int32_t alloc) {
    const auto& a = t.profile->allocs;
    const auto it = std::lower_bound(a.begin(), a.end(), alloc);
    DPS_CHECK(it != a.end() && *it == alloc,
              "allocation " + std::to_string(alloc) + " not feasible for " + t.profile->name);
    return static_cast<std::size_t>(it - a.begin());
  }

  const ClusterConfig& cfg_;
  const Workload& workload_;
  std::vector<ClassTab> tabs_;
  std::vector<std::int64_t> arrivalNs_;
};

/// The depth-first search driver.  Oracle mode runs branch-and-bound for
/// the optimal schedule; Verify mode disables pruning (it could hide
/// violating states) and checks the structural invariants at every instant.
class Explorer {
public:
  enum class Mode : std::uint8_t { Oracle, Verify };

  Explorer(const Machine& m, Mode mode, ExploreObjective obj, const ExploreLimits& limits,
           VerifyReport* report)
      : m_(m), mode_(mode), obj_(obj), limits_(limits), report_(report) {
    if (mode_ == Mode::Verify) limits_.prune = false;
  }

  void run() { dfs(m_.initial()); }

  const ExploreStats& stats() const { return stats_; }
  bool found() const { return found_; }
  double best() const { return best_; }
  double bestMakespan() const { return bestMakespan_; }
  double bestSlowdown() const { return bestSlowdown_; }
  const std::vector<ExploreDecision>& bestTrace() const { return bestTrace_; }

private:
  bool stop() const {
    if (!stats_.complete) return true;
    return mode_ == Mode::Verify && report_->violations.size() >= kMaxViolations;
  }

  /// Advances through bookkeeping instants until a decision opens (or the
  /// schedule completes / the branch dies), then forks the joint decision.
  void dfs(State s) {
    if (stop()) return;
    std::vector<std::size_t> boundary;
    std::vector<std::size_t> queued;
    for (;;) {
      if (m_.allFinished(s)) {
        complete(s);
        return;
      }
      const std::int64_t t = m_.nextEventNs(s);
      if (t == kNoEvent) return; // all held, nothing pending: dead branch
      m_.advance(s, t);
      boundary.clear();
      queued.clear();
      for (std::size_t j = 0; j < s.jobs.size(); ++j) {
        if (s.jobs[j].st == JobSt::Boundary)
          boundary.push_back(j);
        else if (s.jobs[j].st == JobSt::Queued)
          queued.push_back(j);
      }
      if (!boundary.empty() || !queued.empty()) break;
    }
    branchBoundary(s, boundary, 0, queued);
  }

  /// Forks every feasible target for boundary job k, then k+1, ...; the
  /// combination survives only if the instant ends with free >= 0.
  void branchBoundary(const State& s, const std::vector<std::size_t>& boundary, std::size_t k,
                      const std::vector<std::size_t>& queued) {
    if (stop()) return;
    if (k == boundary.size()) {
      if (s.free < 0) return; // joint grow oversubscribed: unreachable
      branchQueued(s, queued, 0);
      return;
    }
    const std::size_t j = boundary[k];
    for (const std::int32_t target : m_.tab(j).profile->allocs) {
      State child = s;
      path_.push_back(m_.applyBoundary(child, j, target));
      branchBoundary(child, boundary, k + 1, queued);
      path_.pop_back();
    }
  }

  /// Forks hold-or-start(alloc) for queued job k; starts debit the free
  /// nodes remaining after the boundary cascade and earlier starts.
  void branchQueued(const State& s, const std::vector<std::size_t>& queued, std::size_t k) {
    if (stop()) return;
    if (k == queued.size()) {
      instantDone(s);
      return;
    }
    const std::size_t j = queued[k];
    branchQueued(s, queued, k + 1); // hold
    for (const std::int32_t alloc : m_.tab(j).profile->allocs) {
      if (alloc > s.free) continue;
      State child = s;
      path_.push_back(m_.applyStart(child, j, alloc));
      branchQueued(child, queued, k + 1);
      path_.pop_back();
    }
  }

  /// The joint decision is fixed: check invariants, dedup, bound, recurse.
  /// Pruned states are NOT marked seen — a later revisit under a smaller
  /// incumbent prunes at least as much, so skipping the insert costs only
  /// a recomputation, never completeness.
  void instantDone(const State& s) {
    if (mode_ == Mode::Verify) checkInstant(s);
    std::uint64_t h = 0;
    if (limits_.dedup) {
      h = m_.hash(s);
      if (seen_.contains(h)) {
        ++stats_.statesDeduped;
        return;
      }
    }
    if (limits_.prune) {
      const double lb = m_.lowerBound(s, obj_);
      if ((found_ && lb >= best_) ||
          (limits_.upperBound > 0 && lb > limits_.upperBound + kEps)) {
        ++stats_.branchesPruned;
        return;
      }
    }
    if (stats_.statesExplored >= limits_.maxStates) {
      stats_.complete = false;
      return;
    }
    ++stats_.statesExplored;
    if (limits_.dedup) seen_.insert(h);
    dfs(s);
  }

  void complete(const State& s) {
    ++stats_.schedulesSeen;
    if (mode_ == Mode::Verify) return;
    const double mk = m_.makespanSec(s);
    const double sl = m_.meanSlowdown(s);
    const double obj = obj_ == ExploreObjective::Makespan ? mk : sl;
    if (!found_ || obj < best_) {
      found_ = true;
      best_ = obj;
      bestMakespan_ = mk;
      bestSlowdown_ = sl;
      bestTrace_ = path_;
    }
  }

  // ------------------------------------------------------ space invariants --

  void violation(Invariant inv, std::int32_t job, double tSec, std::string detail) {
    if (report_->violations.size() >= kMaxViolations) return;
    InvariantViolation v;
    v.invariant = inv;
    v.job = job;
    v.tSec = tSec;
    v.detail = std::move(detail);
    v.trace = path_;
    report_->violations.push_back(std::move(v));
  }

  void checkInstant(const State& s) {
    VerifyReport& rep = *report_;
    const double now = nsToSec(s.nowNs);

    ++rep.checks[static_cast<std::size_t>(Invariant::NodeConservation)];
    std::int32_t used = 0;
    for (const JobState& js : s.jobs)
      if (js.st == JobSt::Running || js.st == JobSt::Migrating) used += js.alloc;
    if (used + s.free != m_.nodes() || s.free < 0)
      violation(Invariant::NodeConservation, -1, now,
                "used " + std::to_string(used) + " + free " + std::to_string(s.free) +
                    " != nodes " + std::to_string(m_.nodes()));

    for (std::size_t j = 0; j < s.jobs.size(); ++j) {
      const JobState& js = s.jobs[j];
      if (js.st != JobSt::Running && js.st != JobSt::Migrating) continue;
      ++rep.checks[static_cast<std::size_t>(Invariant::FeasibleAllocation)];
      if (!m_.tab(j).profile->feasible(js.alloc))
        violation(Invariant::FeasibleAllocation, static_cast<std::int32_t>(j), now,
                  "allocation " + std::to_string(js.alloc) + " infeasible for class " +
                      m_.tab(j).profile->name);
    }

    for (const ExploreDecision& d : path_) {
      if (d.timeNs != s.nowNs) continue;
      const std::size_t j = static_cast<std::size_t>(d.job);
      if (d.kind == ExploreDecision::Kind::Start) {
        ++rep.checks[static_cast<std::size_t>(Invariant::WaitTelescoping)];
        if (d.timeNs < m_.arrivalNs(j))
          violation(Invariant::WaitTelescoping, d.job, now, "started before arrival");
      } else if (d.kind == ExploreDecision::Kind::Realloc) {
        if (d.toNodes > d.fromNodes) {
          ++rep.checks[static_cast<std::size_t>(Invariant::GrowFromFree)];
          if (s.free < 0)
            violation(Invariant::GrowFromFree, d.job, now, "grow oversubscribed the cluster");
        } else {
          ++rep.checks[static_cast<std::size_t>(Invariant::ShrinkPreservesColumns)];
          const ClassProfile& cp = *m_.tab(j).profile;
          const double bytes = cp.migrationBytes(d.phase, d.fromNodes, d.toNodes);
          if (bytes < -kEps || bytes > cp.stateBytes * (1 + kEps))
            violation(Invariant::ShrinkPreservesColumns, d.job, now,
                      "shrink moved " + std::to_string(bytes) + " bytes of " +
                          std::to_string(cp.stateBytes) + " state bytes");
        }
      }
    }
  }

  const Machine& m_;
  Mode mode_;
  ExploreObjective obj_;
  ExploreLimits limits_;
  VerifyReport* report_;

  ExploreStats stats_;
  bool found_ = false;
  double best_ = 0;
  double bestMakespan_ = 0;
  double bestSlowdown_ = 0;
  std::vector<ExploreDecision> bestTrace_;
  std::vector<ExploreDecision> path_;
  std::unordered_set<std::uint64_t> seen_;
};

} // namespace

const char* exploreObjectiveName(ExploreObjective o) {
  switch (o) {
  case ExploreObjective::Makespan:
    return "makespan";
  case ExploreObjective::MeanSlowdown:
    return "mean_slowdown";
  }
  return "?";
}

const char* exploreDecisionKindName(ExploreDecision::Kind k) {
  switch (k) {
  case ExploreDecision::Kind::Start:
    return "start";
  case ExploreDecision::Kind::Keep:
    return "keep";
  case ExploreDecision::Kind::Realloc:
    return "realloc";
  }
  return "?";
}

const char* invariantName(Invariant inv) {
  switch (inv) {
  case Invariant::NodeConservation:
    return "node-conservation";
  case Invariant::FeasibleAllocation:
    return "feasible-allocation";
  case Invariant::GrowFromFree:
    return "grow-from-free";
  case Invariant::ShrinkPreservesColumns:
    return "shrink-preserves-columns";
  case Invariant::WaitTelescoping:
    return "wait-telescoping";
  case Invariant::BackfillNoHeadDelay:
    return "backfill-no-head-delay";
  case Invariant::NoStarvation:
    return "no-starvation";
  }
  return "?";
}

const char* invariantSummary(Invariant inv) {
  switch (inv) {
  case Invariant::NodeConservation:
    return "used + free == nodes at every instant; utilization <= 1";
  case Invariant::FeasibleAllocation:
    return "every running allocation is in its class's feasible set";
  case Invariant::GrowFromFree:
    return "growth is granted from free nodes only";
  case Invariant::ShrinkPreservesColumns:
    return "shrink moves a bounded, non-negative slice of live state";
  case Invariant::WaitTelescoping:
    return "wait buckets telescope exactly to start - arrival (integer ns)";
  case Invariant::BackfillNoHeadDelay:
    return "backfill never delays the blocked head's reservation";
  case Invariant::NoStarvation:
    return "no job waits beyond the starvation bound";
  }
  return "?";
}

std::uint64_t VerifyReport::totalChecks() const {
  std::uint64_t total = 0;
  for (const std::uint64_t c : checks) total += c;
  return total;
}

ExploreResult exploreOptimal(const ClusterConfig& cfg, const Workload& workload,
                             const JobProfileTable& profiles, ExploreObjective objective,
                             const ExploreLimits& limits) {
  const Machine m(cfg, workload, profiles);
  Explorer ex(m, Explorer::Mode::Oracle, objective, limits, nullptr);
  ex.run();
  ExploreResult r;
  r.objective = objective;
  r.found = ex.found();
  r.bestObjective = ex.best();
  r.makespanSec = ex.bestMakespan();
  r.meanSlowdown = ex.bestSlowdown();
  r.trace = ex.bestTrace();
  r.stats = ex.stats();
  return r;
}

VerifyReport verifySpace(const ClusterConfig& cfg, const Workload& workload,
                         const JobProfileTable& profiles, const ExploreLimits& limits) {
  const Machine m(cfg, workload, profiles);
  VerifyReport rep;
  Explorer ex(m, Explorer::Mode::Verify, ExploreObjective::Makespan, limits, &rep);
  ex.run();
  rep.stats = ex.stats();
  return rep;
}

TraceReplay replayTrace(const ClusterConfig& cfg, const Workload& workload,
                        const JobProfileTable& profiles,
                        const std::vector<ExploreDecision>& trace) {
  const Machine m(cfg, workload, profiles);
  std::map<std::pair<std::int64_t, std::int32_t>, ExploreDecision> byKey;
  for (const ExploreDecision& d : trace)
    DPS_CHECK(byKey.emplace(std::make_pair(d.timeNs, d.job), d).second,
              "trace has two decisions for one (instant, job)");

  TraceReplay out;
  out.jobs.resize(m.jobCount());
  for (std::size_t j = 0; j < m.jobCount(); ++j) {
    JobOutcome& o = out.jobs[j];
    o.id = workload.jobs[j].id;
    o.klass = m.tab(j).profile->name;
    o.arrivalSec = workload.jobs[j].arrivalSec;
    o.bestSec = m.tab(j).bestSec;
  }

  State s = m.initial();
  std::size_t consumed = 0;
  std::vector<JobSt> before(m.jobCount());
  while (!m.allFinished(s)) {
    const std::int64_t t = m.nextEventNs(s);
    DPS_CHECK(t != kNoEvent, "trace stalls: every unfinished job held with nothing pending");
    for (std::size_t j = 0; j < m.jobCount(); ++j) before[j] = s.jobs[j].st;
    m.advance(s, t);
    for (std::size_t j = 0; j < m.jobCount(); ++j) {
      // A migration that just completed begins its phase at this instant.
      if (before[j] == JobSt::Migrating && s.jobs[j].st == JobSt::Running)
        out.jobs[j].allocs.push_back(s.jobs[j].alloc);
      if (before[j] != JobSt::Finished && s.jobs[j].st == JobSt::Finished)
        out.jobs[j].finishSec = nsToSec(s.jobs[j].finishNs);
    }
    for (std::size_t j = 0; j < m.jobCount(); ++j) {
      if (s.jobs[j].st != JobSt::Boundary) continue;
      const auto it = byKey.find({t, static_cast<std::int32_t>(j)});
      DPS_CHECK(it != byKey.end(), "trace misses a boundary decision for job " +
                                       std::to_string(j) + " at t=" + std::to_string(t) + "ns");
      const ExploreDecision& d = it->second;
      DPS_CHECK(d.kind != ExploreDecision::Kind::Start && d.fromNodes == s.jobs[j].alloc,
                "trace boundary decision does not match machine state");
      double bytes = 0;
      std::int64_t delay = 0;
      m.applyBoundary(s, j, d.toNodes, &bytes, &delay);
      ++consumed;
      if (d.toNodes != d.fromNodes) {
        JobOutcome& o = out.jobs[j];
        ++o.reallocations;
        o.migratedBytes += bytes;
        o.wait.migrationDelayNs += delay;
        if (delay == 0) o.allocs.push_back(d.toNodes); // phase began immediately
      } else {
        out.jobs[j].allocs.push_back(d.toNodes);
      }
    }
    for (std::size_t j = 0; j < m.jobCount(); ++j) {
      if (s.jobs[j].st != JobSt::Queued) continue;
      const auto it = byKey.find({t, static_cast<std::int32_t>(j)});
      if (it == byKey.end()) continue; // held at this instant
      const ExploreDecision& d = it->second;
      DPS_CHECK(d.kind == ExploreDecision::Kind::Start,
                "trace has a non-start decision for a queued job");
      m.applyStart(s, j, d.toNodes);
      ++consumed;
      JobOutcome& o = out.jobs[j];
      o.startSec = nsToSec(t);
      o.allocs.push_back(d.toNodes);
      const std::int64_t waited = t - m.arrivalNs(j);
      o.wait.totalNs = waited;
      o.wait.byReason[static_cast<std::size_t>(obs::WaitReason::PolicyHeld)] = waited;
    }
    DPS_CHECK(s.free >= 0, "trace oversubscribes the cluster");
  }
  DPS_CHECK(consumed == trace.size(), "trace has decisions the machine never reached");

  out.makespanSec = m.makespanSec(s);
  out.meanSlowdown = m.meanSlowdown(s);
  return out;
}

// ------------------------------------------------------------ policy audit --

double derivedStarvationBound(const Workload& workload, const JobProfileTable& profiles) {
  // The reference misbehavior is full serialization: each job runs alone
  // at its best allocation, in arrival order.  That chain's waits are
  // exactly computable from the workload (start_k = max(finish_{k-1},
  // arrival_k)), and a serializing scheduler realizes essentially all of
  // the worst one.  A working policy on the explorer-scale machines
  // always co-schedules at least two jobs — every explore-mix class fits
  // in at most half the cluster — so its worst wait stays near half the
  // serialized figure.  Eight tenths splits the regimes with margin on
  // both sides.
  double finishPrev = 0;
  double worstWait = 0;
  for (const Job& j : workload.jobs) {
    const double start = std::max(finishPrev, j.arrivalSec);
    worstWait = std::max(worstWait, start - j.arrivalSec);
    finishPrev = start + profiles.of(j.klass).bestSec();
  }
  return 0.8 * worstWait;
}

VerifyReport auditRecord(const ClusterMetrics& metrics, const obs::Recorder& record,
                         const Workload& workload, const JobProfileTable& profiles,
                         double starvationBoundSec) {
  VerifyReport rep;
  const auto fail = [&rep](Invariant inv, std::int32_t job, double tSec, std::string detail) {
    if (rep.violations.size() >= kMaxViolations) return;
    InvariantViolation v;
    v.invariant = inv;
    v.job = job;
    v.tSec = tSec;
    v.detail = std::move(detail);
    rep.violations.push_back(std::move(v));
  };
  const auto bump = [&rep](Invariant inv) { ++rep.checks[static_cast<std::size_t>(inv)]; };

  DPS_CHECK(metrics.jobs.size() == workload.jobs.size(),
            "audit needs the metrics of exactly this workload");

  for (std::size_t i = 0; i < metrics.jobs.size(); ++i) {
    const JobOutcome& out = metrics.jobs[i];
    DPS_CHECK(out.id == workload.jobs[i].id, "metrics jobs not in workload order");
    const ClassProfile& cp = profiles.of(workload.jobs[i].klass);

    // Exact integer telescoping, then the ns total against the float span.
    bump(Invariant::WaitTelescoping);
    if (out.wait.sumNs() != out.wait.totalNs)
      fail(Invariant::WaitTelescoping, out.id, out.startSec,
           "wait buckets sum to " + std::to_string(out.wait.sumNs()) + "ns, total is " +
               std::to_string(out.wait.totalNs) + "ns");
    else if (std::abs(nsToSec(out.wait.totalNs) - (out.startSec - out.arrivalSec)) > 2e-9)
      fail(Invariant::WaitTelescoping, out.id, out.startSec,
           "wait total disagrees with start - arrival");

    for (const std::int32_t a : out.allocs) {
      bump(Invariant::FeasibleAllocation);
      if (!cp.feasible(a))
        fail(Invariant::FeasibleAllocation, out.id, out.startSec,
             "phase ran at infeasible allocation " + std::to_string(a));
    }

    bump(Invariant::NoStarvation);
    if (out.waitSec() > starvationBoundSec + kEps)
      fail(Invariant::NoStarvation, out.id, out.startSec,
           "waited " + std::to_string(out.waitSec()) + "s, bound " +
               std::to_string(starvationBoundSec) + "s");
  }

  // Arrival order is the workload order; a later job starting strictly
  // earlier than an older one must carry the backfilled flag.
  for (std::size_t i = 0; i + 1 < metrics.jobs.size(); ++i) {
    for (std::size_t j = i + 1; j < metrics.jobs.size(); ++j) {
      bump(Invariant::BackfillNoHeadDelay);
      if (metrics.jobs[j].startSec < metrics.jobs[i].startSec - kEps &&
          !metrics.jobs[j].backfilled)
        fail(Invariant::BackfillNoHeadDelay, metrics.jobs[j].id, metrics.jobs[j].startSec,
             "job " + std::to_string(metrics.jobs[j].id) + " overtook job " +
                 std::to_string(metrics.jobs[i].id) + " without backfilling");
    }
  }

  for (const UtilizationPoint& p : metrics.timeline) {
    bump(Invariant::NodeConservation);
    if (p.usedNodes < 0 || p.usedNodes > metrics.nodes)
      fail(Invariant::NodeConservation, -1, p.timeSec,
           "timeline uses " + std::to_string(p.usedNodes) + " of " +
               std::to_string(metrics.nodes) + " nodes");
  }
  bump(Invariant::NodeConservation);
  if (metrics.utilization > 1 + kEps)
    fail(Invariant::NodeConservation, -1, metrics.makespanSec,
         "utilization " + std::to_string(metrics.utilization) + " exceeds 1");

  // Decision-log checks: realloc grants and backfill candidate verdicts.
  std::vector<const obs::Recorder::Decision*> candidates;
  for (const obs::Recorder::Decision& d : record.decisions()) {
    switch (d.kind) {
    case obs::Recorder::Kind::Realloc: {
      const ClassProfile& cp = profiles.of(workload.jobs[static_cast<std::size_t>(d.job)].klass);
      if (d.toNodes > d.fromNodes) {
        bump(Invariant::GrowFromFree);
        if (d.toNodes - d.fromNodes > d.freeNodes)
          fail(Invariant::GrowFromFree, d.job, d.tSec,
               "grow " + std::to_string(d.fromNodes) + "->" + std::to_string(d.toNodes) +
                   " with only " + std::to_string(d.freeNodes) + " free");
      } else {
        bump(Invariant::ShrinkPreservesColumns);
        if (d.bytes < -kEps || d.bytes > cp.stateBytes * (1 + kEps))
          fail(Invariant::ShrinkPreservesColumns, d.job, d.tSec,
               "shrink moved " + std::to_string(d.bytes) + " of " +
                   std::to_string(cp.stateBytes) + " state bytes");
      }
      break;
    }
    case obs::Recorder::Kind::Candidate:
      candidates.push_back(&d);
      break;
    case obs::Recorder::Kind::Pass: {
      for (const obs::Recorder::Decision* c : candidates) {
        if (!c->started) continue;
        bump(Invariant::BackfillNoHeadDelay);
        const ClassProfile& cp =
            profiles.of(workload.jobs[static_cast<std::size_t>(c->job)].klass);
        const bool finishesInTime =
            d.shadowSec >= 0 && c->tSec + cp.at(c->alloc).totalSec <= d.shadowSec + kEps;
        if (!finishesInTime && c->alloc > c->spare)
          fail(Invariant::BackfillNoHeadDelay, c->job, c->tSec,
               "backfilled " + std::to_string(c->alloc) + " nodes past the shadow time with " +
                   std::to_string(c->spare) + " spare");
      }
      candidates.clear();
      break;
    }
    default:
      break;
    }
  }
  return rep;
}

PolicyVerifyResult verifyPolicy(const PolicyVerifyOptions& opts, const Workload& workload,
                                const JobProfileTable& profiles, Policy& policy) {
  obs::Recorder rec;
  ClusterConfig cfg = opts.cluster;
  cfg.recorder = &rec;
  cfg.metrics = nullptr;
  cfg.trace = nullptr;
  cfg.onProgress = {};
  cfg.progressEvery = 0;

  PolicyVerifyResult r;
  r.metrics = simulateCluster(cfg, workload, profiles, policy);
  const double bound = opts.starvationBoundSec > 0 ? opts.starvationBoundSec
                                                   : derivedStarvationBound(workload, profiles);
  r.report = auditRecord(r.metrics, rec, workload, profiles, bound);
  r.recordJson = rec.jsonString();
  if (!r.report.pass()) {
    const std::int32_t job = r.report.violations.front().job;
    if (job >= 0) r.explainText = rec.explain(job);
  }
  return r;
}

std::int32_t HeadHoldMutant::admit(const QueuedJobView& job, const ClassProfile& profile,
                                   const ClusterView& view, DecisionContext& ctx) {
  (void)job;
  if (view.runningJobs > 0) {
    ctx.rule = "head-hold";
    ctx.score = view.runningJobs;
    return 0; // hold while anything runs: serializes the whole queue
  }
  ctx.rule = "idle-admit";
  return profile.maxNodes();
}

std::int32_t HeadHoldMutant::reallocate(const RunningJobView& job, const ClassProfile& profile,
                                        const ClusterView& view, DecisionContext& ctx) {
  (void)profile;
  (void)view;
  ctx.rule = "keep";
  return job.nodes;
}

std::vector<JobClass> exploreMix(std::int32_t clusterNodes) {
  DPS_CHECK(clusterNodes >= 4, "explore mix needs a cluster of at least four nodes");
  std::vector<JobClass> classes;
  {
    JobClass k;
    k.name = "lu-probe";
    k.app = AppKind::Lu;
    k.lu.n = 648;
    k.lu.r = 216; // 3 phases
    k.lu.seed = 20060425;
    k.lu.workers = 4; // allocs {1, 2, 4}
    k.weight = 1.0;
    classes.push_back(k);
  }
  {
    JobClass k;
    k.name = "jacobi-probe";
    k.app = AppKind::Jacobi;
    k.jacobi.rows = 4096;
    k.jacobi.cols = 8192;
    k.jacobi.sweeps = 3; // 3 phases
    k.jacobi.seed = 11;
    k.jacobi.workers = 4; // allocs {2, 4}
    k.weight = 1.0;
    classes.push_back(k);
  }
  return classes;
}

} // namespace dps::sched
