#include "sched/observe.hpp"

#include <array>
#include <string>

#include "obs/recorder.hpp"
#include "obs/registry.hpp"
#include "sched/cluster.hpp"
#include "sched/metrics.hpp"

namespace dps::sched {

void recordClusterRun(const ClusterConfig& cfg, const ClusterMetrics& m,
                      std::uint64_t desEventsFired, std::size_t desQueueHighWater) {
  // Recorder fold: the per-job summary rows and the run seal come from the
  // finalized metrics, so both loops hand the recorder identical rows by
  // construction (their metrics are bit-identical).
  if (cfg.recorder != nullptr) {
    for (const JobOutcome& j : m.jobs)
      cfg.recorder->jobSummary(j.id, j.klass, j.arrivalSec, j.startSec, j.finishSec, j.backfilled,
                               j.wait);
    cfg.recorder->endRun(m.makespanSec);
  }

  obs::Registry* reg = cfg.metrics;
  if (reg == nullptr) return;
  const std::string& p = cfg.metricsPrefix;

  reg->counter(p + "events_processed").add(static_cast<std::uint64_t>(m.events));
  reg->counter(p + "jobs_finished").add(m.jobs.size());
  reg->counter(p + "reallocations").add(static_cast<std::uint64_t>(m.reallocations));
  reg->counter(p + "backfill_fires").add(static_cast<std::uint64_t>(m.backfillFires));
  reg->counter(p + "migrated_bytes").add(static_cast<std::uint64_t>(m.migratedBytes));
  reg->counter(p + "des.events_fired").add(desEventsFired);
  reg->gauge(p + "des.queue_high_water").set(static_cast<double>(desQueueHighWater));
  reg->gauge(p + "makespan_sec").set(m.makespanSec);
  reg->gauge(p + "utilization").set(m.utilization);
  reg->gauge(p + "mean_slowdown").set(m.meanSlowdown);

  obs::Histogram wait = reg->histogram(p + "job_wait_sec", obs::secondsBounds());
  obs::Histogram bytes = reg->histogram(p + "job_migrated_bytes", obs::bytesBounds());
  obs::Histogram stall = reg->histogram(p + "job_migration_stall_sec", obs::secondsBounds());
  std::array<obs::Histogram, obs::kWaitReasonCount> byReason;
  for (std::size_t r = 0; r < obs::kWaitReasonCount; ++r) {
    std::string name = p;
    name += "job_wait.";
    name += waitReasonName(static_cast<obs::WaitReason>(r));
    name += "_sec";
    byReason[r] = reg->histogram(name, obs::secondsBounds());
  }
  for (const JobOutcome& j : m.jobs) {
    wait.observe(j.waitSec());
    if (j.migratedBytes > 0) bytes.observe(j.migratedBytes);
    if (j.wait.migrationDelayNs > 0)
      stall.observe(static_cast<double>(j.wait.migrationDelayNs) * 1e-9);
    for (std::size_t r = 0; r < obs::kWaitReasonCount; ++r)
      if (j.wait.byReason[r] > 0)
        byReason[r].observe(static_cast<double>(j.wait.byReason[r]) * 1e-9);
  }
}

} // namespace dps::sched
