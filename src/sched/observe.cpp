#include "sched/observe.hpp"

#include "obs/registry.hpp"
#include "sched/cluster.hpp"
#include "sched/metrics.hpp"

namespace dps::sched {

void recordClusterRun(const ClusterConfig& cfg, const ClusterMetrics& m,
                      std::uint64_t desEventsFired, std::size_t desQueueHighWater) {
  obs::Registry* reg = cfg.metrics;
  if (reg == nullptr) return;
  const std::string& p = cfg.metricsPrefix;

  reg->counter(p + "events_processed").add(static_cast<std::uint64_t>(m.events));
  reg->counter(p + "jobs_finished").add(m.jobs.size());
  reg->counter(p + "reallocations").add(static_cast<std::uint64_t>(m.reallocations));
  reg->counter(p + "backfill_fires").add(static_cast<std::uint64_t>(m.backfillFires));
  reg->counter(p + "migrated_bytes").add(static_cast<std::uint64_t>(m.migratedBytes));
  reg->counter(p + "des.events_fired").add(desEventsFired);
  reg->gauge(p + "des.queue_high_water").set(static_cast<double>(desQueueHighWater));
  reg->gauge(p + "makespan_sec").set(m.makespanSec);
  reg->gauge(p + "utilization").set(m.utilization);
  reg->gauge(p + "mean_slowdown").set(m.meanSlowdown);

  obs::Histogram wait = reg->histogram(p + "job_wait_sec", obs::secondsBounds());
  obs::Histogram bytes = reg->histogram(p + "job_migrated_bytes", obs::bytesBounds());
  for (const JobOutcome& j : m.jobs) {
    wait.observe(j.waitSec());
    if (j.migratedBytes > 0) bytes.observe(j.migratedBytes);
  }
}

} // namespace dps::sched
