// The one engine-run primitive behind every profile consumer.
//
// Profile builds, replay validation, autocal reference runs and the cluster
// server's what-if queries all used to construct their own SimEngine +
// build + controller; svc::ProfileCache needs those paths to produce
// *identical* work units so results can be memoized across them.  This
// module is that unit: an EngineRunSpec is a complete, self-contained
// description of one single-threaded simulation (application config,
// allocation plan, engine configuration, kernel cost models), and
// executeEngineRun() is the only function that turns one into a result.
//
// A spec has two-part cache identity:
//   * engineFingerprint() — stable hash over the SimConfig and both kernel
//     cost models (the fields sched::ProfileSettings::fingerprint() hashes,
//     so settings-level and spec-level fingerprints coincide);
//   * cacheSpec() — a canonical string for everything else (app config,
//     plan, policy, start allocation, phase slicing).  Kept as a string so
//     key equality is exact rather than hash-collision-probable.
//
// Callers that want memoization inject an EngineRunFn (svc:: provides one
// backed by its ProfileCache); passing none means "execute directly".
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "malleable/controller.hpp"
#include "malleable/plan.hpp"
#include "sched/profile.hpp"
#include "sched/workload.hpp"

namespace dps::obs {
class Registry;
} // namespace dps::obs

namespace dps::sched {

/// Complete description of one single-threaded engine run.
struct EngineRunSpec {
  AppKind app = AppKind::Lu;
  lu::LuConfig lu{};
  jacobi::JacobiConfig jacobi{};

  /// Allocation plan executed by the malleability controller; empty = a
  /// plain static run.  LU only — Jacobi has no controller.
  mall::AllocationPlan plan{};
  mall::RemovalPolicy policy = mall::RemovalPolicy::MigrateColumns;
  /// Workers active at t=0; 0 = the config's worker count.  When below it
  /// (a replayed job admitted under its maximum) column ownership is
  /// re-spread over the first startAlloc workers before the run, so the
  /// plan's iteration-0 removal deactivates the surplus without migration.
  std::int32_t startAlloc = 0;

  /// Slice the trace at the app's progress markers into phases (requires
  /// config.recordTrace).
  bool slicePhases = true;

  core::SimConfig config{};
  lu::KernelCostModel luModel{};
  jacobi::JacobiCostModel jacobiModel{};

  /// Stable hash over config + both cost models; equals
  /// ProfileSettings::fingerprint() when config == settings.simConfig().
  std::uint64_t engineFingerprint() const;
  /// Canonical string for the app/plan/slicing half of the cache identity.
  std::string cacheSpec() const;
  /// Both halves combined (convenience for tests and logs).
  std::uint64_t fingerprint() const;
};

/// One allocation-history event of a run (trace::AllocationRecord in
/// seconds), exposed so what-if consumers can locate shrink instants.
struct AllocEvent {
  double timeSec = 0;
  std::int32_t nodes = 0;
};

/// Everything any current consumer reads out of a run.
struct EngineRunRecord {
  double totalSec = 0; // simulated makespan

  // Phase slices (filled when spec.slicePhases).
  std::vector<double> phaseSec;
  std::vector<double> phaseEff;
  std::vector<std::int64_t> phaseMarker; // marker value ending each phase

  /// Controller's total migrated bytes (0 for plan-free runs).
  double migratedBytes = 0;
  /// Allocation-change events (empty without trace recording).
  std::vector<AllocEvent> allocEvents;
};

/// Executes the spec on a fresh engine.  Pure function of the spec:
/// bit-identical on every call, safe to run concurrently from pool workers.
EngineRunRecord executeEngineRun(const EngineRunSpec& spec);
/// Observed variant: engine-run counters plus the malleability
/// controller's migration metrics (bytes by direction) land in `metrics`.
/// Identical results — observation never reaches simulation state.
EngineRunRecord executeEngineRun(const EngineRunSpec& spec, obs::Registry* metrics);

/// Injection point for memoization: callers hand profile/replay code a
/// runner (svc::cachedRunner) and identical specs simulate only once.
using EngineRunFn = std::function<EngineRunRecord(const EngineRunSpec&)>;

/// The spec a profile build runs for (class, allocation): a static PDEXEC
/// NOALLOC run sliced at the app's markers.  Replay and svc construct their
/// static runs through this same function, which is what lets them share
/// cache entries with profile builds.
EngineRunSpec profileRunSpec(const JobClass& klass, std::int32_t nodes,
                             const ProfileSettings& settings);

/// Converts a sliced run record into the profile-table phase form.
PhaseProfile phaseProfileFromRecord(const EngineRunRecord& rec, std::int32_t nodes);

/// The per-class profile skeleton (name, app, feasible allocations, state
/// model) with byAlloc sized but unfilled — shared by JobProfileTable and
/// the svc acquisition path.
ClassProfile classProfileSkeleton(const JobClass& klass, std::int32_t clusterNodes);

} // namespace dps::sched
