#include "sched/replay.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "support/error.hpp"
#include "support/json.hpp"
#include "support/thread_pool.hpp"

namespace dps::sched {

const char* replayModeName(ReplayMode mode) {
  switch (mode) {
    case ReplayMode::Controller: return "controller";
    case ReplayMode::Static: return "static";
    case ReplayMode::Unsupported: return "unsupported";
  }
  return "?";
}

namespace {

double signedError(double predicted, double replayed, double denom) {
  return denom > 0 ? (predicted - replayed) / denom : 0.0;
}

} // namespace

double JobReplayOutcome::makespanError() const {
  return signedError(predictedSec, replayedSec, replayedSec);
}

double JobReplayOutcome::bytesError() const {
  return signedError(predictedBytes, replayedBytes,
                     replayedBytes > 0 ? replayedBytes : predictedBytes);
}

mall::AllocationPlan planFromHistory(const std::vector<std::int32_t>& allocs) {
  DPS_CHECK(!allocs.empty(), "cannot build a plan from an empty allocation history");
  const std::int32_t top = *std::max_element(allocs.begin(), allocs.end());
  DPS_CHECK(allocs.front() >= 1, "allocation history starts below one node");

  mall::AllocationPlan plan;
  // Active workers always form the prefix [0, active); shrinking removes the
  // highest indices (pushed high-to-low, so the stack top is the lowest
  // removed worker) and growing re-adds in LIFO order, restoring the prefix.
  std::vector<std::int32_t> removed;
  std::int32_t active = top;
  const auto shrinkTo = [&](std::int64_t afterIteration, std::int32_t target) {
    mall::RemovalStep step;
    step.afterIteration = afterIteration;
    for (std::int32_t t = active - 1; t >= target; --t) {
      step.threads.push_back(t);
      removed.push_back(t);
    }
    plan.steps.push_back(std::move(step));
    active = target;
  };
  const auto growTo = [&](std::int64_t afterIteration, std::int32_t target) {
    mall::GrowStep step;
    step.afterIteration = afterIteration;
    while (active < target) {
      DPS_CHECK(!removed.empty(), "grow step without a previously removed worker");
      step.threads.push_back(removed.back());
      removed.pop_back();
      ++active;
    }
    plan.grows.push_back(std::move(step));
  };

  if (allocs.front() < top) shrinkTo(0, allocs.front());
  for (std::size_t p = 1; p < allocs.size(); ++p) {
    if (allocs[p] < active) shrinkTo(static_cast<std::int64_t>(p), allocs[p]);
    else if (allocs[p] > active) growTo(static_cast<std::int64_t>(p), allocs[p]);
  }
  return plan;
}

namespace {

/// Replays one job's allocation history through the full per-application
/// simulation; pure function of its arguments (runs on the pool).
JobReplayOutcome replayOne(const JobOutcome& out, const JobClass& klass,
                           const ClassProfile& profile, const ReplaySettings& settings) {
  JobReplayOutcome r;
  r.id = out.id;
  r.klass = out.klass;
  r.predictedSec = out.finishSec - out.startSec;
  r.predictedBytes = out.migratedBytes;
  DPS_CHECK(!out.allocs.empty(), "job has no allocation history to replay");
  DPS_CHECK(static_cast<std::int32_t>(out.allocs.size()) == profile.phases(),
            "allocation history length does not match the class phase count");

  const bool constant =
      std::all_of(out.allocs.begin(), out.allocs.end(),
                  [&](std::int32_t a) { return a == out.allocs.front(); });

  const auto execute = [&](const EngineRunSpec& spec) {
    return settings.runner ? settings.runner(spec) : executeEngineRun(spec);
  };

  if (constant) {
    // No reallocation ever happened: the replay is a plain simulation at
    // the admitted allocation — exactly the run the profile was sliced
    // from, so the prediction must match up to SimTime quantization.  The
    // spec is *the profile spec* on purpose: a caching runner serves it
    // from the profile build's entry without simulating.
    r.mode = ReplayMode::Static;
    r.plan = "static @ " + std::to_string(out.allocs.front());
    r.replayedSec = execute(profileRunSpec(klass, out.allocs.front(), settings.engine)).totalSec;
    return r;
  }

  if (klass.app != AppKind::Lu) {
    // No Jacobi malleability controller exists (yet); be honest about it
    // rather than replaying something else.
    r.mode = ReplayMode::Unsupported;
    r.plan = "varying history, no jacobi controller";
    return r;
  }

  r.mode = ReplayMode::Controller;
  const std::int32_t top = *std::max_element(out.allocs.begin(), out.allocs.end());
  EngineRunSpec spec;
  spec.app = AppKind::Lu;
  spec.lu = klass.luAt(top);
  // The job may have started below its historical maximum; the executor
  // re-spreads column ownership so the plan's iteration-0 removal
  // deactivates the surplus workers without moving state — the scheduler
  // charged no migration for admission either.
  spec.startAlloc = out.allocs.front();
  spec.plan = planFromHistory(out.allocs);
  spec.slicePhases = false;
  spec.config = settings.engine.simConfig();
  spec.luModel = settings.engine.luModel;
  spec.jacobiModel = settings.engine.jacobiModel;
  r.plan = spec.plan.describe();
  const EngineRunRecord rec = execute(spec);
  r.replayedSec = rec.totalSec;
  r.replayedBytes = rec.migratedBytes;
  return r;
}

} // namespace

void ReplayReport::finalize() {
  replayed = unsupported = bytesJobs = 0;
  meanMakespanError = meanAbsMakespanError = maxAbsMakespanError = 0;
  meanBytesError = meanAbsBytesError = maxAbsBytesError = 0;
  for (const JobReplayOutcome& j : jobs) {
    if (j.mode == ReplayMode::Unsupported) {
      ++unsupported;
      continue;
    }
    ++replayed;
    const double e = j.makespanError();
    meanMakespanError += e;
    meanAbsMakespanError += std::abs(e);
    maxAbsMakespanError = std::max(maxAbsMakespanError, std::abs(e));
    if (j.predictedBytes > 0 || j.replayedBytes > 0) {
      ++bytesJobs;
      const double b = j.bytesError();
      meanBytesError += b;
      meanAbsBytesError += std::abs(b);
      maxAbsBytesError = std::max(maxAbsBytesError, std::abs(b));
    }
  }
  if (replayed > 0) {
    meanMakespanError /= replayed;
    meanAbsMakespanError /= replayed;
  }
  if (bytesJobs > 0) {
    meanBytesError /= bytesJobs;
    meanAbsBytesError /= bytesJobs;
  }
}

void ReplayReport::writeJson(std::ostream& os) const {
  JsonWriter w(os);
  w.beginObject()
      .field("policy", policy)
      .field("nodes", nodes)
      .field("seed", seed)
      .field("replayed", replayed)
      .field("unsupported", unsupported);
  w.key("makespan_error")
      .beginObject()
      .field("mean_signed", meanMakespanError)
      .field("mean_abs", meanAbsMakespanError)
      .field("max_abs", maxAbsMakespanError)
      .endObject();
  w.key("bytes_error")
      .beginObject()
      .field("jobs", bytesJobs)
      .field("mean_signed", meanBytesError)
      .field("mean_abs", meanAbsBytesError)
      .field("max_abs", maxAbsBytesError)
      .endObject();
  w.key("jobs").beginArray();
  for (const JobReplayOutcome& j : jobs) {
    w.beginObject()
        .field("id", j.id)
        .field("class", j.klass)
        .field("mode", replayModeName(j.mode))
        .field("plan", j.plan)
        .field("predicted_sec", j.predictedSec)
        .field("replayed_sec", j.replayedSec)
        .field("makespan_error", j.makespanError())
        .field("predicted_bytes", j.predictedBytes)
        .field("replayed_bytes", j.replayedBytes)
        .field("bytes_error", j.bytesError())
        .endObject();
  }
  w.endArray().endObject();
  DPS_CHECK(w.closed(), "unbalanced replay-report JSON");
}

std::string ReplayReport::jsonString() const {
  std::ostringstream os;
  writeJson(os);
  return os.str();
}

ReplayReport replaySchedule(const ClusterMetrics& metrics, const Workload& workload,
                            const JobProfileTable& profiles, const ReplaySettings& settings) {
  DPS_CHECK(workload.jobs.size() == metrics.jobs.size(),
            "metrics and workload disagree on the job count");
  ReplayReport rep;
  rep.policy = metrics.policy;
  rep.nodes = metrics.nodes;
  rep.seed = metrics.seed;
  rep.jobs.resize(metrics.jobs.size());

  // One independent single-threaded replay per job, landing in
  // index-addressed slots: identical reports at any `jobs` value.
  parallelFor(metrics.jobs.size(), settings.jobs, [&](std::size_t i) {
    const JobOutcome& out = metrics.jobs[i];
    const Job* wj = nullptr;
    for (const Job& candidate : workload.jobs)
      if (candidate.id == out.id) wj = &candidate;
    DPS_CHECK(wj != nullptr, "replayed job missing from the workload");
    rep.jobs[i] = replayOne(out, workload.cfg.classes.at(wj->klass), profiles.of(wj->klass),
                            settings);
  });
  rep.finalize();
  return rep;
}

} // namespace dps::sched
