#include "sched/policy.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace dps::sched {

std::int32_t FcfsRigid::admit(const QueuedJobView&, const ClassProfile& profile,
                              const ClusterView&) {
  return profile.maxNodes();
}

std::int32_t FcfsRigid::reallocate(const RunningJobView& job, const ClassProfile&,
                                   const ClusterView&) {
  return job.nodes;
}

namespace {

/// totalNodes / max(1, running + queued), clamped into the class's feasible
/// allocation set.
std::int32_t fairShare(const ClassProfile& profile, const ClusterView& view) {
  const std::int32_t jobs = std::max(1, view.runningJobs + view.queuedJobs);
  const std::int32_t fair = std::max(1, view.totalNodes / jobs);
  return profile.clampFeasible(std::min(fair, profile.maxNodes()));
}

/// Admission for share-based policies: the fair share when it fits, else
/// the largest feasible allocation that does — rather than idling the free
/// nodes behind a blocked head job, the job starts small and grows back
/// toward its entitlement at the next phase boundaries.  When nothing
/// feasible fits, returns the (too large) share, which keeps the job
/// queued.
std::int32_t admitShareOrFit(const ClassProfile& profile, const ClusterView& view) {
  const std::int32_t fair = fairShare(profile, view);
  if (fair <= view.freeNodes) return fair;
  const std::int32_t fit = profile.clampFeasible(view.freeNodes);
  return fit <= view.freeNodes ? fit : fair;
}

} // namespace

std::int32_t Equipartition::share(const ClassProfile& profile, const ClusterView& view) {
  return fairShare(profile, view);
}

std::int32_t Equipartition::admit(const QueuedJobView&, const ClassProfile& profile,
                                  const ClusterView& view) {
  return admitShareOrFit(profile, view);
}

std::int32_t Equipartition::reallocate(const RunningJobView&, const ClassProfile& profile,
                                       const ClusterView& view) {
  // The job itself counts as one of the running jobs in the view.
  return share(profile, view);
}

std::int32_t EfficiencyShrink::admit(const QueuedJobView&, const ClassProfile& profile,
                                     const ClusterView& view) {
  // Moldable admission: as large as currently fits, the smallest feasible
  // allocation when even that is unavailable (keeps the job queued).
  return profile.clampFeasible(std::max(profile.minNodes(), view.freeNodes));
}

std::int32_t EfficiencyShrink::reallocate(const RunningJobView& job, const ClassProfile& profile,
                                          const ClusterView&) {
  if (job.efficiencyNext >= threshold_) return job.nodes;
  // Release: step down one feasible level (never below the minimum).
  std::int32_t below = profile.minNodes();
  for (std::int32_t a : profile.allocs)
    if (a < job.nodes) below = a;
  return below;
}

std::int32_t GrowEager::admit(const QueuedJobView&, const ClassProfile& profile,
                              const ClusterView& view) {
  // Start at the (fitting) fair share like Equipartition — under contention
  // jobs begin small, which is exactly what makes later growth grants
  // possible once the cluster drains.
  return admitShareOrFit(profile, view);
}

std::int32_t GrowEager::reallocate(const RunningJobView& job, const ClassProfile& profile,
                                   const ClusterView& view) {
  // Absorb whatever is free: clampFeasible never steps below the job's
  // current (feasible) allocation, so this policy only ever grows.
  return profile.clampFeasible(job.nodes + view.freeNodes);
}

std::unique_ptr<Policy> makePolicy(const std::string& name) {
  if (name == "fcfs-rigid") return std::make_unique<FcfsRigid>();
  if (name == "equipartition") return std::make_unique<Equipartition>();
  if (name == "efficiency-shrink") return std::make_unique<EfficiencyShrink>();
  if (name == "grow-eager") return std::make_unique<GrowEager>();
  throw ConfigError("unknown policy '" + name +
                    "' (expected fcfs-rigid | equipartition | efficiency-shrink | grow-eager)");
}

std::vector<std::string> policyNames() {
  return {"fcfs-rigid", "equipartition", "efficiency-shrink", "grow-eager"};
}

} // namespace dps::sched
