#include "sched/policy.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace dps::sched {

std::int32_t FcfsRigid::admit(const QueuedJobView&, const ClassProfile& profile,
                              const ClusterView&, DecisionContext& ctx) {
  ctx.rule = "full-request";
  return profile.maxNodes();
}

std::int32_t FcfsRigid::reallocate(const RunningJobView& job, const ClassProfile&,
                                   const ClusterView&, DecisionContext& ctx) {
  ctx.rule = "rigid";
  return job.nodes;
}

namespace {

/// totalNodes / max(1, running + queued), clamped into the class's feasible
/// allocation set.
std::int32_t fairShare(const ClassProfile& profile, const ClusterView& view) {
  const std::int32_t jobs = std::max(1, view.runningJobs + view.queuedJobs);
  const std::int32_t fair = std::max(1, view.totalNodes / jobs);
  return profile.clampFeasible(std::min(fair, profile.maxNodes()));
}

/// Admission for share-based policies: the fair share when it fits, else
/// the largest feasible allocation that does — rather than idling the free
/// nodes behind a blocked head job, the job starts small and grows back
/// toward its entitlement at the next phase boundaries.  When nothing
/// feasible fits, returns the (too large) share, which keeps the job
/// queued.
std::int32_t admitShareOrFit(const ClassProfile& profile, const ClusterView& view,
                             DecisionContext& ctx) {
  const std::int32_t fair = fairShare(profile, view);
  ctx.score = fair;
  if (fair <= view.freeNodes) {
    ctx.rule = "fair-share";
    return fair;
  }
  const std::int32_t fit = profile.clampFeasible(view.freeNodes);
  if (fit <= view.freeNodes) {
    ctx.rule = "largest-fit";
    return fit;
  }
  ctx.rule = "share-too-large";
  return fair;
}

} // namespace

std::int32_t Equipartition::share(const ClassProfile& profile, const ClusterView& view) {
  return fairShare(profile, view);
}

std::int32_t Equipartition::admit(const QueuedJobView&, const ClassProfile& profile,
                                  const ClusterView& view, DecisionContext& ctx) {
  return admitShareOrFit(profile, view, ctx);
}

std::int32_t Equipartition::reallocate(const RunningJobView&, const ClassProfile& profile,
                                       const ClusterView& view, DecisionContext& ctx) {
  // The job itself counts as one of the running jobs in the view.
  ctx.rule = "fair-share";
  const std::int32_t fair = share(profile, view);
  ctx.score = fair;
  return fair;
}

std::int32_t EfficiencyShrink::admit(const QueuedJobView&, const ClassProfile& profile,
                                     const ClusterView& view, DecisionContext& ctx) {
  // Moldable admission: as large as currently fits, the smallest feasible
  // allocation when even that is unavailable (keeps the job queued).
  ctx.rule = "moldable-fit";
  return profile.clampFeasible(std::max(profile.minNodes(), view.freeNodes));
}

std::int32_t EfficiencyShrink::reallocate(const RunningJobView& job, const ClassProfile& profile,
                                          const ClusterView&, DecisionContext& ctx) {
  ctx.score = job.efficiencyNext;
  ctx.threshold = threshold_;
  if (job.efficiencyNext >= threshold_) {
    ctx.rule = "above-threshold";
    return job.nodes;
  }
  // Release: step down one feasible level (never below the minimum).
  ctx.rule = "step-down";
  std::int32_t below = profile.minNodes();
  for (std::int32_t a : profile.allocs)
    if (a < job.nodes) below = a;
  return below;
}

std::int32_t GrowEager::admit(const QueuedJobView&, const ClassProfile& profile,
                              const ClusterView& view, DecisionContext& ctx) {
  // Start at the (fitting) fair share like Equipartition — under contention
  // jobs begin small, which is exactly what makes later growth grants
  // possible once the cluster drains.
  return admitShareOrFit(profile, view, ctx);
}

std::int32_t GrowEager::reallocate(const RunningJobView& job, const ClassProfile& profile,
                                   const ClusterView& view, DecisionContext& ctx) {
  // Absorb whatever is free: clampFeasible never steps below the job's
  // current (feasible) allocation, so this policy only ever grows.
  ctx.rule = "absorb-free";
  ctx.score = view.freeNodes;
  return profile.clampFeasible(job.nodes + view.freeNodes);
}

std::unique_ptr<Policy> makePolicy(const std::string& name) {
  if (name == "fcfs-rigid") return std::make_unique<FcfsRigid>();
  if (name == "equipartition") return std::make_unique<Equipartition>();
  if (name == "efficiency-shrink") return std::make_unique<EfficiencyShrink>();
  if (name == "grow-eager") return std::make_unique<GrowEager>();
  throw ConfigError("unknown policy '" + name +
                    "' (expected fcfs-rigid | equipartition | efficiency-shrink | grow-eager)");
}

std::vector<std::string> policyNames() {
  return {"fcfs-rigid", "equipartition", "efficiency-shrink", "grow-eager"};
}

} // namespace dps::sched
