#include "sched/policy.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace dps::sched {

std::int32_t FcfsRigid::admit(const QueuedJobView&, const ClassProfile& profile,
                              const ClusterView&) {
  return profile.maxNodes();
}

std::int32_t FcfsRigid::reallocate(const RunningJobView& job, const ClassProfile&,
                                   const ClusterView&) {
  return job.nodes;
}

std::int32_t Equipartition::share(const ClassProfile& profile, const ClusterView& view) {
  const std::int32_t jobs = std::max(1, view.runningJobs + view.queuedJobs);
  const std::int32_t fair = std::max(1, view.totalNodes / jobs);
  return profile.clampFeasible(std::min(fair, profile.maxNodes()));
}

std::int32_t Equipartition::admit(const QueuedJobView&, const ClassProfile& profile,
                                  const ClusterView& view) {
  return share(profile, view);
}

std::int32_t Equipartition::reallocate(const RunningJobView&, const ClassProfile& profile,
                                       const ClusterView& view) {
  // The job itself counts as one of the running jobs in the view.
  return share(profile, view);
}

std::int32_t EfficiencyShrink::admit(const QueuedJobView&, const ClassProfile& profile,
                                     const ClusterView& view) {
  // Moldable admission: as large as currently fits, the smallest feasible
  // allocation when even that is unavailable (keeps the job queued).
  return profile.clampFeasible(std::max(profile.minNodes(), view.freeNodes));
}

std::int32_t EfficiencyShrink::reallocate(const RunningJobView& job, const ClassProfile& profile,
                                          const ClusterView&) {
  if (job.efficiencyNext >= threshold_) return job.nodes;
  // Release: step down one feasible level (never below the minimum).
  std::int32_t below = profile.minNodes();
  for (std::int32_t a : profile.allocs)
    if (a < job.nodes) below = a;
  return below;
}

std::unique_ptr<Policy> makePolicy(const std::string& name) {
  if (name == "fcfs-rigid") return std::make_unique<FcfsRigid>();
  if (name == "equipartition") return std::make_unique<Equipartition>();
  if (name == "efficiency-shrink") return std::make_unique<EfficiencyShrink>();
  throw ConfigError("unknown policy '" + name +
                    "' (expected fcfs-rigid | equipartition | efficiency-shrink)");
}

std::vector<std::string> policyNames() {
  return {"fcfs-rigid", "equipartition", "efficiency-shrink"};
}

} // namespace dps::sched
