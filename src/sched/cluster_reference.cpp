// The pre-optimization cluster event loop, frozen as an oracle.
//
// This is the original simulateCluster implementation: remaining runtimes
// recomputed as tail sums per query, the EASY shadow-time pass rebuilding
// and sorting a (finish, nodes) vector scraped from the full jobs_ array on
// every blocked-head event, mid-deque queue erases.  Per-event cost grows
// with the total job count, which is exactly why it was replaced — but its
// semantics are the specification.  sched_test pins the optimized loop to
// this one bit-for-bit (identical ClusterMetrics JSON across policies,
// backfill modes and saturation levels) and bench/cluster_scale measures
// the throughput ratio between the two, so every hot-path optimization
// stays an optimization, never a behaviour change.
//
// Shared semantics added since the split (timeline coalescing via
// ClusterMetrics::recordUse, the backfillDepth candidate bound, event
// counting, progress callbacks) are implemented here too, in the same
// places — the two loops must stay observationally identical.
#include "sched/cluster.hpp"

#include <algorithm>
#include <deque>
#include <utility>
#include <vector>

#include "des/scheduler.hpp"
#include "obs/recorder.hpp"
#include "sched/observe.hpp"
#include "support/error.hpp"

namespace dps::sched {

namespace {

class ClusterSimReference {
public:
  ClusterSimReference(const ClusterConfig& cfg, const Workload& workload,
                      const JobProfileTable& profiles, Policy& policy)
      : cfg_(cfg), workload_(workload), profiles_(profiles), policy_(policy) {
    DPS_CHECK(cfg_.nodes > 0, "cluster needs at least one node");
    DPS_CHECK(cfg_.migrationBandwidthBytesPerSec > 0, "migration bandwidth must be positive");
    free_ = cfg_.nodes;
    jobs_.resize(workload.jobs.size());
    for (std::size_t i = 0; i < workload.jobs.size(); ++i) {
      const Job& job = workload.jobs[i];
      const ClassProfile& profile = profiles_.of(job.klass);
      DPS_CHECK(profile.maxNodes() <= cfg_.nodes,
                "job class " + profile.name + " cannot fit the cluster");
      JobRt& rt = jobs_[i];
      rt.out.id = job.id;
      rt.out.klass = profile.name;
      rt.out.arrivalSec = job.arrivalSec;
      rt.out.bestSec = profile.bestSec();
    }
  }

  ClusterMetrics run() {
    if (cfg_.recorder != nullptr)
      cfg_.recorder->beginRun(policy_.name(), cfg_.nodes, workload_.cfg.seed);
    metrics_.timeline.push_back(UtilizationPoint{0.0, 0});
    for (std::size_t i = 0; i < workload_.jobs.size(); ++i)
      sched_.scheduleAt(simEpoch() + seconds(workload_.jobs[i].arrivalSec),
                        [this, i] { onArrival(i); });
    sched_.run();

    metrics_.policy = policy_.name();
    metrics_.nodes = cfg_.nodes;
    metrics_.seed = workload_.cfg.seed;
    metrics_.events = events_;
    for (JobRt& rt : jobs_) {
      DPS_CHECK(rt.finished, "cluster simulation quiesced with unfinished jobs");
      metrics_.jobs.push_back(std::move(rt.out));
    }
    metrics_.finalize();
    recordClusterRun(cfg_, metrics_, sched_.firedCount(), sched_.queueHighWater());
    return std::move(metrics_);
  }

private:
  struct JobRt {
    std::int32_t nodes = 0; // current allocation (0 = not running)
    std::int32_t phase = 0; // next phase index
    bool finished = false;
    /// Profile-estimated finish assuming the current allocation holds —
    /// the running-job knowledge EASY backfill reserves against.
    double estFinishSec = 0;
    /// Wait attribution (integer SimTime ticks — see the optimized loop;
    /// both loops must bank identical buckets and recorder intervals).
    std::int64_t arrivalNs = 0;
    std::int64_t waitSinceNs = 0;
    obs::WaitReason waitReason = obs::WaitReason::HeadOfLine;
    JobOutcome out;
  };

  double nowSec() const { return toSeconds(sched_.now().time_since_epoch()); }
  std::int64_t nowNs() const { return sched_.now().time_since_epoch().count(); }

  const ClassProfile& profileOf(std::size_t i) const {
    return profiles_.of(workload_.jobs[i].klass);
  }

  ClusterView view() const {
    ClusterView v;
    v.totalNodes = cfg_.nodes;
    v.freeNodes = free_;
    v.runningJobs = running_;
    v.queuedJobs = static_cast<std::int32_t>(queue_.size());
    return v;
  }

  void recordUse() {
    metrics_.recordUse(nowSec(), cfg_.nodes - free_);
    recordState();
  }

  /// Same state-change sample points as the optimized loop (the reference
  /// queue holds no tombstones, so its raw size is the live queue depth).
  void recordState() {
    if (cfg_.recorder != nullptr)
      cfg_.recorder->stateSample(nowSec(), cfg_.nodes - free_, free_, running_,
                                 static_cast<std::int32_t>(queue_.size()));
  }

  void closeWait(JobRt& rt, std::int64_t t) {
    if (t <= rt.waitSinceNs) return;
    rt.out.wait.byReason[static_cast<std::size_t>(rt.waitReason)] += t - rt.waitSinceNs;
    if (cfg_.recorder != nullptr)
      cfg_.recorder->waitInterval(rt.out.id, static_cast<double>(rt.waitSinceNs) * 1e-9,
                                  static_cast<double>(t) * 1e-9, rt.waitReason);
  }

  void markWait(std::size_t i, obs::WaitReason reason) {
    JobRt& rt = jobs_[i];
    if (reason == rt.waitReason) return;
    const std::int64_t t = nowNs();
    closeWait(rt, t);
    rt.waitSinceNs = t;
    rt.waitReason = reason;
  }

  void closeWaitFinal(std::size_t i) {
    JobRt& rt = jobs_[i];
    const std::int64_t t = nowNs();
    closeWait(rt, t);
    rt.out.wait.totalNs = t - rt.arrivalNs;
  }

  void maybeProgress() {
    if (cfg_.progressEvery <= 0 || !cfg_.onProgress) return;
    if (events_ - lastProgressEvents_ < cfg_.progressEvery) return;
    lastProgressEvents_ = events_;
    ClusterProgress p;
    p.events = events_;
    p.finishedJobs = finished_;
    p.totalJobs = static_cast<std::int32_t>(jobs_.size());
    p.simNowSec = nowSec();
    p.runningJobs = running_;
    p.queuedJobs = static_cast<std::int32_t>(queue_.size());
    cfg_.onProgress(p);
  }

  void onArrival(std::size_t i) {
    ++events_;
    JobRt& rt = jobs_[i];
    rt.arrivalNs = rt.waitSinceNs = nowNs();
    rt.waitReason = obs::WaitReason::HeadOfLine;
    queue_.push_back(i);
    recordState();
    admissionScan();
    maybeProgress();
  }

  /// Offers queued jobs to the policy strictly in arrival order; stops at
  /// the first one that does not start.  With EASY backfill enabled, a
  /// capacity-blocked head additionally triggers a backfill pass over the
  /// younger queued jobs.
  void admissionScan() {
    while (!queue_.empty()) {
      const std::size_t i = queue_.front();
      const ClassProfile& profile = profileOf(i);
      QueuedJobView qv;
      qv.id = jobs_[i].out.id;
      qv.waitedSec = nowSec() - jobs_[i].out.arrivalSec;
      DecisionContext ctx;
      const std::int32_t want = policy_.admit(qv, profile, view(), ctx);
      if (want <= 0) { // the policy itself keeps the head queued
        markWait(i, obs::WaitReason::PolicyHeld);
        if (cfg_.recorder != nullptr)
          cfg_.recorder->admitDecision(nowSec(), qv.id, want, 0, free_, false,
                                       obs::WaitReason::PolicyHeld, ctx.rule, ctx.score,
                                       ctx.threshold);
        return;
      }
      const std::int32_t alloc = profile.clampFeasible(std::min(want, profile.maxNodes()));
      if (alloc > free_) { // head-of-line blocked until nodes free up
        markWait(i, obs::WaitReason::InsufficientFree);
        if (cfg_.recorder != nullptr)
          cfg_.recorder->admitDecision(nowSec(), qv.id, want, alloc, free_, false,
                                       obs::WaitReason::InsufficientFree, ctx.rule, ctx.score,
                                       ctx.threshold);
        if (cfg_.easyBackfill) backfillScan(i, alloc);
        return;
      }
      if (cfg_.recorder != nullptr)
        cfg_.recorder->admitDecision(nowSec(), qv.id, want, alloc, free_, true,
                                     obs::WaitReason::HeadOfLine, ctx.rule, ctx.score,
                                     ctx.threshold);
      queue_.pop_front();
      startJob(i, alloc);
    }
  }

  /// EASY backfill (Lifka '95): the blocked head holds a reservation of
  /// `headAlloc` nodes at the *shadow time* — the earliest instant enough
  /// nodes are free assuming running jobs keep their allocations and finish
  /// per their remaining phase profiles.  A younger job may start now only
  /// if it cannot delay that reservation: it finishes before the shadow
  /// time, or it fits into the `spare` nodes left over once the head
  /// starts.
  void backfillScan(std::size_t head, std::int32_t headAlloc) {
    std::vector<std::pair<double, std::int32_t>> frees; // (est finish, nodes)
    for (const JobRt& rt : jobs_)
      if (rt.nodes > 0 && !rt.finished) frees.emplace_back(rt.estFinishSec, rt.nodes);
    std::sort(frees.begin(), frees.end());
    const double now = nowSec();
    std::int32_t avail = free_;
    double shadow = -1;
    std::int32_t spare = 0;
    for (const auto& [finish, nodes] : frees) {
      avail += nodes;
      if (avail >= headAlloc) {
        shadow = std::max(finish, now);
        spare = avail - headAlloc;
        break;
      }
    }
    if (shadow < 0) { // the head can never fit; nothing to reserve
      if (cfg_.recorder != nullptr)
        cfg_.recorder->backfillPass(now, jobs_[head].out.id, headAlloc, -1, 0, 0, 0);
      return;
    }
    const std::int32_t spare0 = spare;

    std::int32_t considered = 0;
    std::int32_t startedCount = 0;
    for (std::size_t qi = 1; qi < queue_.size();) {
      if (cfg_.backfillDepth > 0 && considered >= cfg_.backfillDepth) {
        // queue_[qi] is the first excluded candidate (the reference queue
        // holds no tombstones) — the same job the optimized loop marks.
        markWait(queue_[qi], obs::WaitReason::DepthCutoff);
        if (cfg_.recorder != nullptr) cfg_.recorder->depthCutoff(now, jobs_[queue_[qi]].out.id);
        break;
      }
      ++considered;
      const std::size_t i = queue_[qi];
      const ClassProfile& profile = profileOf(i);
      QueuedJobView qv;
      qv.id = jobs_[i].out.id;
      qv.waitedSec = now - jobs_[i].out.arrivalSec;
      DecisionContext ctx;
      const std::int32_t want = policy_.admit(qv, profile, view(), ctx);
      bool started = false;
      if (want > 0) {
        const std::int32_t alloc = profile.clampFeasible(std::min(want, profile.maxNodes()));
        if (alloc <= free_) {
          const bool finishesInTime = now + profile.at(alloc).totalSec <= shadow + 1e-9;
          if (finishesInTime || alloc <= spare) {
            if (cfg_.recorder != nullptr)
              cfg_.recorder->backfillCandidate(now, qv.id, want, alloc, free_, spare, true,
                                               obs::WaitReason::HeadOfLine, ctx.rule, ctx.score,
                                               ctx.threshold);
            if (!finishesInTime) spare -= alloc; // occupies part of the surplus past the shadow
            queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(qi));
            jobs_[i].out.backfilled = true;
            ++startedCount;
            startJob(i, alloc);
            started = true;
          } else {
            markWait(i, obs::WaitReason::ShadowTime);
            if (cfg_.recorder != nullptr)
              cfg_.recorder->backfillCandidate(now, qv.id, want, alloc, free_, spare, false,
                                               obs::WaitReason::ShadowTime, ctx.rule, ctx.score,
                                               ctx.threshold);
          }
        } else {
          markWait(i, obs::WaitReason::InsufficientFree);
          if (cfg_.recorder != nullptr)
            cfg_.recorder->backfillCandidate(now, qv.id, want, alloc, free_, spare, false,
                                             obs::WaitReason::InsufficientFree, ctx.rule,
                                             ctx.score, ctx.threshold);
        }
      } else {
        markWait(i, obs::WaitReason::PolicyHeld);
        if (cfg_.recorder != nullptr)
          cfg_.recorder->backfillCandidate(now, qv.id, want, 0, free_, spare, false,
                                           obs::WaitReason::PolicyHeld, ctx.rule, ctx.score,
                                           ctx.threshold);
      }
      if (!started) ++qi;
    }
    if (cfg_.recorder != nullptr)
      cfg_.recorder->backfillPass(now, jobs_[head].out.id, headAlloc, shadow, spare0, considered,
                                  startedCount);
  }

  void startJob(std::size_t i, std::int32_t alloc) {
    JobRt& rt = jobs_[i];
    closeWaitFinal(i);
    free_ -= alloc;
    ++running_;
    rt.nodes = alloc;
    rt.out.startSec = nowSec();
    recordUse();
    schedulePhase(i);
  }

  /// Profiled runtime of phases [first, phases) at `nodes` — recomputed as
  /// a tail sum on every query (the O(phases) cost the optimized loop's
  /// suffix arrays remove).
  double remainingSec(std::size_t i, std::int32_t first, std::int32_t nodes) const {
    const PhaseProfile& p = profileOf(i).at(nodes);
    double rest = 0;
    for (std::size_t q = static_cast<std::size_t>(first); q < p.phaseSec.size(); ++q)
      rest += p.phaseSec[q];
    return rest;
  }

  void schedulePhase(std::size_t i) {
    JobRt& rt = jobs_[i];
    const PhaseProfile& p = profileOf(i).at(rt.nodes);
    rt.out.allocs.push_back(rt.nodes);
    rt.estFinishSec = nowSec() + remainingSec(i, rt.phase, rt.nodes);
    sched_.scheduleAfter(seconds(p.phaseSec[static_cast<std::size_t>(rt.phase)]),
                         [this, i] { onPhaseEnd(i); });
  }

  void onPhaseEnd(std::size_t i) {
    ++events_;
    JobRt& rt = jobs_[i];
    const ClassProfile& profile = profileOf(i);
    ++rt.phase;
    if (rt.phase >= profile.phases()) {
      free_ += rt.nodes;
      --running_;
      ++finished_;
      rt.nodes = 0;
      rt.finished = true;
      rt.out.finishSec = nowSec();
      recordUse();
      admissionScan();
      maybeProgress();
      return;
    }

    RunningJobView rv;
    rv.id = rt.out.id;
    rv.nodes = rt.nodes;
    rv.phase = rt.phase;
    rv.phases = profile.phases();
    rv.efficiencyNext = profile.at(rt.nodes).phaseEff[static_cast<std::size_t>(rt.phase)];
    DecisionContext ctx;
    std::int32_t target = profile.clampFeasible(policy_.reallocate(rv, profile, view(), ctx));
    if (target > rt.nodes) // growth comes out of currently free nodes only
      target = std::min(target, profile.clampFeasible(rt.nodes + free_));

    if (target == rt.nodes) {
      schedulePhase(i);
      maybeProgress();
      return;
    }
    const double bytes = profile.migrationBytes(rt.phase, rt.nodes, target);
    if (cfg_.recorder != nullptr)
      cfg_.recorder->reallocDecision(nowSec(), rt.out.id, rt.nodes, target, free_, bytes, ctx.rule,
                                     ctx.score, ctx.threshold);
    if (target < rt.nodes) {
      free_ += rt.nodes - target; // released nodes stop computing now
    } else {
      free_ -= target - rt.nodes;
    }
    rt.nodes = target;
    rt.out.reallocations++;
    rt.out.migratedBytes += bytes;
    recordUse();
    admissionScan(); // shrink may have freed capacity for the queue
    if (cfg_.chargeMigration) {
      const SimDuration delay =
          cfg_.migrationLatency + seconds(bytes / cfg_.migrationBandwidthBytesPerSec);
      rt.out.wait.migrationDelayNs += delay.count();
      if (cfg_.recorder != nullptr)
        cfg_.recorder->migrationDelay(nowSec(), rt.out.id, toSeconds(delay), bytes);
      rt.estFinishSec = nowSec() + toSeconds(delay) + remainingSec(i, rt.phase, rt.nodes);
      sched_.scheduleAfter(delay, [this, i] { schedulePhase(i); });
    } else {
      schedulePhase(i);
    }
    maybeProgress();
  }

  const ClusterConfig& cfg_;
  const Workload& workload_;
  const JobProfileTable& profiles_;
  Policy& policy_;

  des::Scheduler sched_;
  std::deque<std::size_t> queue_;
  std::vector<JobRt> jobs_;
  std::int32_t free_ = 0;
  std::int32_t running_ = 0;
  std::int32_t finished_ = 0;
  std::int64_t events_ = 0;
  std::int64_t lastProgressEvents_ = 0;
  ClusterMetrics metrics_;
};

} // namespace

ClusterMetrics simulateClusterReference(const ClusterConfig& cfg, const Workload& workload,
                                        const JobProfileTable& profiles, Policy& policy) {
  return ClusterSimReference(cfg, workload, profiles, policy).run();
}

} // namespace dps::sched
