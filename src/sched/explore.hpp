// sched::explore — exhaustive schedule-space search over the cluster
// scheduler's decision points: a model checker for scheduling policies.
//
// The cluster event loop is deterministic, so for a fixed (workload,
// profiles, config) the only degrees of freedom are the decisions a policy
// returns: start a queued job now or hold it (and at which feasible
// allocation), and keep / shrink / grow each running job at its phase
// boundaries.  On small workloads (<= 8 jobs, <= 16 nodes) that decision
// space is finite and enumerable.  This module walks it depth-first the way
// SimGrid's DFSExplorer walks interleavings: snapshot the cluster state,
// fork every branch a policy could take, restore, and deduplicate revisited
// states with an FNV-1a fingerprint (support/fingerprint.hpp) so the search
// visits each reachable cluster state once.
//
// Decision model.  The explorer advances an "instant machine" that mirrors
// simulateCluster's integer-nanosecond arithmetic exactly (the same
// seconds() quantization for phase durations, arrivals, and migration
// delays), so its schedule objectives are bit-comparable with the event
// loop's metrics.  At every instant where at least one decision is open, it
// enumerates the *joint* decision: each running job at a boundary picks any
// feasible target allocation (keep, shrink, or grow), then each queued job
// either starts at any feasible allocation that fits the remaining free
// nodes or keeps waiting.  Joint enumeration makes the reachable set a
// superset of what any Policy can induce through the sequential event loop
// (equal-time DES events fire in *some* order; the explorer covers every
// order's outcome), which is exactly what an oracle needs: no policy can
// beat the optimum found here.
//
// Two consumers:
//   * oracle (exploreOptimal) — branch-and-bound for the true optimal
//     makespan or mean slowdown.  The admissible lower bound is built from
//     the profile table's remaining-time suffix sums: a job that still has
//     phases p.. to run needs at least sum_{q>=p} min_alloc phaseSec[q]
//     seconds, regardless of any future decisions (migration delays ignored
//     — the bound stays admissible).  Pruning with an admissible bound and
//     strict-improvement incumbents returns the same optimum as the
//     unpruned search (tests assert bit-identical objective values).
//   * verifier (verifySpace / verifyPolicy) — typed invariants checked
//     either structurally over the entire reachable space (no objective
//     pruning) or over one policy's actual run via the obs::Recorder
//     decision audit log, with the flight record itself serving as the
//     replayable counterexample when a check fails.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sched/cluster.hpp"
#include "sched/metrics.hpp"
#include "sched/policy.hpp"
#include "sched/profile.hpp"
#include "sched/workload.hpp"

namespace dps::obs {
class Recorder;
}

namespace dps::sched {

/// What the oracle minimizes.
enum class ExploreObjective : std::uint8_t { Makespan, MeanSlowdown };
const char* exploreObjectiveName(ExploreObjective o);

/// One edge of a schedule: what a job did at one instant.  Holds are
/// implicit (a queued job with no Start decision at an instant waited), so
/// a trace lists exactly the actions that shape the schedule.
struct ExploreDecision {
  enum class Kind : std::uint8_t {
    Start,   ///< queued -> running at `toNodes`
    Keep,    ///< phase boundary, allocation kept at `toNodes`
    Realloc, ///< phase boundary, `fromNodes` -> `toNodes` (migration charged)
  };
  std::int64_t timeNs = 0;
  std::int32_t job = -1;
  Kind kind = Kind::Start;
  std::int32_t fromNodes = 0;
  std::int32_t toNodes = 0;
  /// 0-based phase the decision applies to (0 for Start).
  std::int32_t phase = 0;
};
const char* exploreDecisionKindName(ExploreDecision::Kind k);

/// Search effort counters.
struct ExploreStats {
  std::uint64_t statesExplored = 0;  ///< instant-states expanded
  std::uint64_t statesDeduped = 0;   ///< subtrees cut by the state hash
  std::uint64_t branchesPruned = 0;  ///< subtrees cut by the B&B bound
  std::uint64_t schedulesSeen = 0;   ///< complete schedules evaluated
  bool complete = true;              ///< false when maxStates truncated
};

/// Search knobs.  Defaults run the full exhaustive search.
struct ExploreLimits {
  /// Hard cap on expanded states; exceeding it clears ExploreStats::complete
  /// (the result is then an upper bound, not a proven optimum).
  std::uint64_t maxStates = 20'000'000;
  bool prune = true; ///< branch-and-bound on the admissible lower bound
  bool dedup = true; ///< FNV-1a state-hash deduplication
  /// External upper bound on the objective (e.g. the best policy's value).
  /// Branches are cut only when their lower bound strictly exceeds it, so
  /// an optimum equal to the bound is still found and proven.  <= 0 = off.
  double upperBound = 0;
};

/// The oracle's answer: the optimal schedule and how hard it was to prove.
struct ExploreResult {
  ExploreObjective objective = ExploreObjective::Makespan;
  bool found = false;          ///< false only if maxStates hit before any schedule
  double bestObjective = 0;    ///< optimal makespanSec or meanSlowdown
  double makespanSec = 0;      ///< of the best schedule
  double meanSlowdown = 0;     ///< of the best schedule
  std::vector<ExploreDecision> trace; ///< the optimal schedule's decisions
  ExploreStats stats;
};

/// Exhaustive branch-and-bound search for the optimal schedule.  The
/// config contributes nodes and the migration cost model; policy-only
/// fields (backfill, recorder, ...) are ignored — the explorer's decision
/// space already subsumes anything backfill can do.
ExploreResult exploreOptimal(const ClusterConfig& cfg, const Workload& workload,
                             const JobProfileTable& profiles, ExploreObjective objective,
                             const ExploreLimits& limits = {});

/// A replayed trace's schedule, recomputed independently of the search.
struct TraceReplay {
  double makespanSec = 0;
  double meanSlowdown = 0;
  std::vector<JobOutcome> jobs; ///< workload order; wait attributed PolicyHeld
};

/// Deterministically re-executes a decision trace through the instant
/// machine.  Replaying ExploreResult::trace reproduces the search's
/// objective bit-for-bit — the oracle's self-validation.  Throws
/// support::Error on a trace the machine cannot follow (wrong instant,
/// infeasible allocation, negative free nodes).
TraceReplay replayTrace(const ClusterConfig& cfg, const Workload& workload,
                        const JobProfileTable& profiles,
                        const std::vector<ExploreDecision>& trace);

// --------------------------------------------------------------- verifier --

/// The typed invariant taxonomy.  Space invariants are checked structurally
/// at every reachable instant by verifySpace; policy invariants need a
/// concrete run's flight record and are checked by verifyPolicy.
enum class Invariant : std::uint8_t {
  /// used + free == nodes at every instant; utilization never exceeds 1.
  NodeConservation = 0,
  /// Every running allocation is in its class's feasible set.
  FeasibleAllocation = 1,
  /// Growth is granted from free nodes only (never oversubscribes).
  GrowFromFree = 2,
  /// Shrink migration moves a non-negative byte count bounded by the live
  /// application state, and never discards completed phases.
  ShrinkPreservesColumns = 3,
  /// Per-reason wait buckets telescope exactly to start - arrival
  /// (integer nanoseconds, no tolerance).
  WaitTelescoping = 4,
  /// EASY backfill starts a younger job only when it cannot delay the
  /// blocked head's shadow-time reservation; non-backfilled jobs never
  /// overtake arrival order.
  BackfillNoHeadDelay = 5,
  /// No job waits longer than the starvation bound.
  NoStarvation = 6,
};
inline constexpr std::size_t kInvariantCount = 7;
const char* invariantName(Invariant inv);    ///< slug, e.g. "node-conservation"
const char* invariantSummary(Invariant inv); ///< one-line description

/// One failed check, with enough context to reproduce it.
struct InvariantViolation {
  Invariant invariant = Invariant::NodeConservation;
  std::int32_t job = -1; ///< -1 when not job-specific
  double tSec = 0;
  std::string detail;
  /// Space mode: the decision path that reached the violating state.
  std::vector<ExploreDecision> trace;
};

/// The verifier's verdict: per-invariant evaluation counts plus every
/// violation found (empty == all checks passed).
struct VerifyReport {
  std::array<std::uint64_t, kInvariantCount> checks{};
  std::vector<InvariantViolation> violations;
  ExploreStats stats; ///< space mode only; zeroed for policy audits
  bool pass() const { return violations.empty(); }
  std::uint64_t totalChecks() const;
};

/// Exhaustively checks the space invariants (NodeConservation,
/// FeasibleAllocation, GrowFromFree, ShrinkPreservesColumns,
/// WaitTelescoping) over every reachable instant of the joint decision
/// space.  No objective pruning — pruning could hide violating states.
VerifyReport verifySpace(const ClusterConfig& cfg, const Workload& workload,
                         const JobProfileTable& profiles, const ExploreLimits& limits = {});

/// verifyPolicy knobs.
struct PolicyVerifyOptions {
  ClusterConfig cluster; ///< recorder/metrics/trace fields are overridden
  /// NoStarvation bound in seconds; <= 0 derives one from the workload
  /// (derivedStarvationBound).
  double starvationBoundSec = 0;
};

/// One policy run's verdict: the audit report, the run's metrics, and the
/// flight record — which *is* the counterexample when the audit fails
/// (re-running simulateCluster with a fresh recorder reproduces it
/// byte-for-byte; `explainText` carries the recorder's causal narrative
/// for the first violating job).
struct PolicyVerifyResult {
  VerifyReport report;
  ClusterMetrics metrics;
  std::string recordJson;
  std::string explainText;
};

/// Runs `policy` through simulateCluster with a flight recorder attached
/// and audits the full invariant set against the recorded decisions and
/// the finalized metrics.
PolicyVerifyResult verifyPolicy(const PolicyVerifyOptions& opts, const Workload& workload,
                                const JobProfileTable& profiles, Policy& policy);

/// The decision-level audit alone: checks an existing (metrics, record)
/// pair produced by simulateCluster.  Exposed so a counterexample replay
/// can re-audit independently of verifyPolicy.
VerifyReport auditRecord(const ClusterMetrics& metrics, const obs::Recorder& record,
                         const Workload& workload, const JobProfileTable& profiles,
                         double starvationBoundSec);

/// Workload-derived NoStarvation bound: generous for every shipped policy
/// on the explorer-scale workloads, violated by schedules that serialize
/// the queue (see HeadHoldMutant).
double derivedStarvationBound(const Workload& workload, const JobProfileTable& profiles);

/// Intentionally broken policy for counterexample demonstrations: admits
/// the queue head only into an idle machine (holds while anything runs),
/// which serializes every job — a head-delay/starvation bug by design.
/// Deadlock-free: the machine always drains, so the head eventually runs.
class HeadHoldMutant final : public Policy {
public:
  std::string name() const override { return "head-hold-mutant"; }
  std::int32_t admit(const QueuedJobView& job, const ClassProfile& profile,
                     const ClusterView& view, DecisionContext& ctx) override;
  std::int32_t reallocate(const RunningJobView& job, const ClassProfile& profile,
                          const ClusterView& view, DecisionContext& ctx) override;
};

/// The tiny two-class mix the explorer-scale tools search over: a 3-phase
/// LU class malleable across {1, 2, 4} workers and a 3-sweep Jacobi class
/// malleable across {2, 4} strips — small enough that an engine-profiled
/// table plus an exhaustive optimality proof fit in a smoke test.
std::vector<JobClass> exploreMix(std::int32_t clusterNodes);

} // namespace dps::sched
