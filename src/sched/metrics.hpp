// Cluster-simulation result set: per-job outcomes, the node-utilization
// timeline, and the aggregate numbers scheduling studies report (makespan,
// utilization, mean/max slowdown), with JSON and CSV emitters for cross-PR
// trajectory tracking.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/recorder.hpp" // obs::WaitAttribution

namespace dps::sched {

struct JobOutcome {
  std::int32_t id = 0;
  std::string klass;
  double arrivalSec = 0;
  double startSec = 0;
  double finishSec = 0;
  double bestSec = 0; // shortest profiled runtime (slowdown denominator)
  /// Allocation at each executed phase, in phase order.
  std::vector<std::int32_t> allocs;
  std::int32_t reallocations = 0;
  double migratedBytes = 0;
  /// Started ahead of an older blocked job under EASY backfill.
  bool backfilled = false;
  /// Queue-wait decomposition in integer simulated ns (always filled by
  /// both cluster loops, recorder or not — so metrics JSON is identical
  /// with and without a recorder attached).
  obs::WaitAttribution wait;

  /// Clamped at zero: SimTime quantization can land the start a nanosecond
  /// before the nominal arrival.
  double waitSec() const { return startSec > arrivalSec ? startSec - arrivalSec : 0.0; }
  /// (finish - arrival) / bestSec, the standard job-scheduling slowdown.
  double slowdown() const { return bestSec > 0 ? (finishSec - arrivalSec) / bestSec : 0; }
};

/// Node usage after the change at `timeSec`.
struct UtilizationPoint {
  double timeSec = 0;
  std::int32_t usedNodes = 0;
};

struct ClusterMetrics {
  std::string policy;
  std::int32_t nodes = 0;
  std::uint64_t seed = 0;

  std::vector<JobOutcome> jobs;
  std::vector<UtilizationPoint> timeline;
  /// Events the cluster loop processed (arrivals + phase boundaries) —
  /// the numerator of the bench layer's events/sec throughput.
  std::int64_t events = 0;

  /// Appends a utilization change, coalescing: consecutive points with the
  /// same used count merge, and several changes at the same instant keep
  /// only the final value (zero-width segments carry no information and no
  /// integral).  Memory stays O(distinct changes), not O(events).
  void recordUse(double timeSec, std::int32_t usedNodes);

  // Aggregates (filled by finalize()).
  double makespanSec = 0;    // last job finish
  double utilization = 0;    // integral of used nodes / (nodes * makespan)
  double meanSlowdown = 0;
  double maxSlowdown = 0;
  double meanWaitSec = 0;
  double migratedBytes = 0;
  std::int32_t reallocations = 0;
  /// Jobs started ahead of an older blocked job by EASY backfill.
  std::int32_t backfillFires = 0;
  /// Summed per-job wait attribution (integer ns buckets telescoping over
  /// all jobs) — the "attribution" JSON block.
  obs::WaitAttribution attribution;

  /// Computes the aggregate block from jobs + timeline.
  void finalize();

  /// Emits the aggregate attribution as raw JSON members (per-reason
  /// seconds, dominant reason + share) — shared by writeJson and the
  /// benches that embed attribution in their own documents.
  void writeAttributionJson(std::ostream& os) const;

  /// {"policy":...,"nodes":...,"makespan_sec":...,"jobs":[...],
  ///  "timeline":[...]}.  `timelineMaxPoints` > 0 down-samples the emitted
  /// timeline to at most that many points (first and last always kept;
  /// "timeline_points" reports the full resolution either way); 0 emits
  /// every point.
  void writeJson(std::ostream& os, std::int32_t timelineMaxPoints = 0) const;
  std::string jsonString(std::int32_t timelineMaxPoints = 0) const;
  /// One row per job, header included.
  void writeCsv(std::ostream& os) const;
};

} // namespace dps::sched
