// Folds one finished cluster run into an obs::Registry.
//
// Called by BOTH event loops (optimized and reference) with the finalized
// metrics, so whichever loop ran, an attached registry ends up with the
// same values — the bit-identity contract between the loops extends to
// their observability output.  Everything here reads the result; nothing
// feeds back into simulation state.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dps::sched {

struct ClusterConfig;
struct ClusterMetrics;

/// No-op when cfg.metrics is null.  `desEventsFired` / `desQueueHighWater`
/// surface the DES kernel's own counters (events dispatched, queue-depth
/// high-water) under the same prefix.
void recordClusterRun(const ClusterConfig& cfg, const ClusterMetrics& m,
                      std::uint64_t desEventsFired, std::size_t desQueueHighWater);

} // namespace dps::sched
