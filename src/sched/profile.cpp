#include "sched/profile.hpp"

#include <algorithm>
#include <cmath>

#include "sched/engine_run.hpp"
#include "support/error.hpp"
#include "support/fingerprint.hpp"
#include "support/thread_pool.hpp"

namespace dps::sched {

std::uint64_t ProfileSettings::fingerprint() const {
  // Identical byte sequence to EngineRunSpec::engineFingerprint() for a
  // spec built from these settings: the two values coincide by design.
  Fingerprint fp;
  core::fingerprintInto(fp, simConfig());
  lu::fingerprintInto(fp, luModel);
  jacobi::fingerprintInto(fp, jacobiModel);
  return fp.value();
}

std::int32_t ClassProfile::phases() const {
  DPS_CHECK(!byAlloc.empty(), "empty class profile");
  return static_cast<std::int32_t>(byAlloc.front().phaseSec.size());
}

const PhaseProfile& ClassProfile::at(std::int32_t nodes) const {
  for (std::size_t i = 0; i < allocs.size(); ++i)
    if (allocs[i] == nodes) return byAlloc[i];
  throw Error("no profile for " + name + " at " + std::to_string(nodes) + " nodes");
}

bool ClassProfile::feasible(std::int32_t nodes) const {
  return std::find(allocs.begin(), allocs.end(), nodes) != allocs.end();
}

std::int32_t ClassProfile::clampFeasible(std::int32_t want) const {
  std::int32_t best = allocs.front();
  for (std::int32_t a : allocs)
    if (a <= want) best = a;
  return best;
}

double ClassProfile::bestSec() const {
  double best = byAlloc.front().totalSec;
  for (const PhaseProfile& p : byAlloc) best = std::min(best, p.totalSec);
  return best;
}

double ClassProfile::migrationBytes(std::int32_t phase, std::int32_t from, std::int32_t to) const {
  if (from == to) return 0;
  if (!stateShrinks) {
    // Live-grid apps (Jacobi): the whole state is evenly spread over the
    // current workers; moving between allocations relocates the share held
    // by the workers that appear or disappear.
    const double churn = static_cast<double>(std::abs(from - to)) / std::max(from, to);
    return stateBytes * churn;
  }
  // Column-granular apps (LU): mirror mall::LuMalleabilityController's
  // per-direction byte accounting.  One column block = stateBytes / phases
  // (the controller charges the full n x r panel per move, factored or not).
  const double cols = phases();
  const double colBytes = stateBytes / cols;
  if (to < from) {
    // Shrink: a removed worker migrates *every* column it owns — factored
    // columns included (the column whose panel is about to run is merely
    // deferred to the next boundary, not exempted).  With ownership evenly
    // spread, the removed workers hold a (from - to) / from share.
    return colBytes * cols * static_cast<double>(from - to) / from;
  }
  // Grow: re-added workers receive only still-unfactored, unpinned columns
  // (index > phase).  The controller rebalances one worker at a time toward
  // a ceil-share of the future columns over the then-active workers, so the
  // k-th re-added worker pulls ceil(future / (from + k)) columns — when the
  // future columns are scarcer than the re-added workers the same column
  // hops across each of them in turn, and the traffic reflects that.
  const double future = std::max(0.0, cols - 1.0 - static_cast<double>(phase));
  double moved = 0;
  for (std::int32_t k = 1; k <= to - from; ++k)
    moved += std::ceil(future / static_cast<double>(from + k));
  return colBytes * moved;
}

JobProfileTable JobProfileTable::build(
    const std::vector<JobClass>& classes, std::int32_t clusterNodes,
    const ProfileSettings& settings, unsigned jobs,
    const std::function<EngineRunRecord(const EngineRunSpec&)>& runner) {
  DPS_CHECK(!classes.empty(), "profile table needs at least one job class");
  JobProfileTable table;
  struct Slot {
    std::size_t klass;
    std::int32_t nodes;
  };
  std::vector<Slot> slots;
  for (std::size_t c = 0; c < classes.size(); ++c) {
    ClassProfile cp = classProfileSkeleton(classes[c], clusterNodes);
    for (std::int32_t a : cp.allocs) slots.push_back(Slot{c, a});
    table.classes_.push_back(std::move(cp));
  }

  // Independent single-threaded simulations into index-addressed slots:
  // identical tables at any `jobs` value.
  parallelFor(slots.size(), jobs, [&](std::size_t i) {
    ClassProfile& cp = table.classes_[slots[i].klass];
    const std::size_t ai = static_cast<std::size_t>(
        std::find(cp.allocs.begin(), cp.allocs.end(), slots[i].nodes) - cp.allocs.begin());
    const EngineRunSpec spec =
        profileRunSpec(classes[slots[i].klass], slots[i].nodes, settings);
    cp.byAlloc[ai] =
        phaseProfileFromRecord(runner ? runner(spec) : executeEngineRun(spec), slots[i].nodes);
  });

  for (const ClassProfile& cp : table.classes_) {
    for (const PhaseProfile& p : cp.byAlloc) {
      DPS_CHECK(p.totalSec > 0, "profile with zero makespan for " + cp.name);
      DPS_CHECK(p.phaseSec.size() == cp.byAlloc.front().phaseSec.size(),
                "inconsistent phase count across allocations of " + cp.name);
    }
  }
  return table;
}

} // namespace dps::sched
