#include "sched/profile.hpp"

#include <algorithm>
#include <cmath>

#include "core/engine.hpp"
#include "jacobi/app.hpp"
#include "lu/app.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"
#include "trace/efficiency.hpp"

namespace dps::sched {

std::int32_t ClassProfile::phases() const {
  DPS_CHECK(!byAlloc.empty(), "empty class profile");
  return static_cast<std::int32_t>(byAlloc.front().phaseSec.size());
}

const PhaseProfile& ClassProfile::at(std::int32_t nodes) const {
  for (std::size_t i = 0; i < allocs.size(); ++i)
    if (allocs[i] == nodes) return byAlloc[i];
  throw Error("no profile for " + name + " at " + std::to_string(nodes) + " nodes");
}

bool ClassProfile::feasible(std::int32_t nodes) const {
  return std::find(allocs.begin(), allocs.end(), nodes) != allocs.end();
}

std::int32_t ClassProfile::clampFeasible(std::int32_t want) const {
  std::int32_t best = allocs.front();
  for (std::int32_t a : allocs)
    if (a <= want) best = a;
  return best;
}

double ClassProfile::bestSec() const {
  double best = byAlloc.front().totalSec;
  for (const PhaseProfile& p : byAlloc) best = std::min(best, p.totalSec);
  return best;
}

double ClassProfile::migrationBytes(std::int32_t phase, std::int32_t from, std::int32_t to) const {
  if (from == to) return 0;
  if (!stateShrinks) {
    // Live-grid apps (Jacobi): the whole state is evenly spread over the
    // current workers; moving between allocations relocates the share held
    // by the workers that appear or disappear.
    const double churn = static_cast<double>(std::abs(from - to)) / std::max(from, to);
    return stateBytes * churn;
  }
  // Column-granular apps (LU): mirror mall::LuMalleabilityController's
  // per-direction byte accounting.  One column block = stateBytes / phases
  // (the controller charges the full n x r panel per move, factored or not).
  const double cols = phases();
  const double colBytes = stateBytes / cols;
  if (to < from) {
    // Shrink: a removed worker migrates *every* column it owns — factored
    // columns included (the column whose panel is about to run is merely
    // deferred to the next boundary, not exempted).  With ownership evenly
    // spread, the removed workers hold a (from - to) / from share.
    return colBytes * cols * static_cast<double>(from - to) / from;
  }
  // Grow: re-added workers receive only still-unfactored, unpinned columns
  // (index > phase).  The controller rebalances one worker at a time toward
  // a ceil-share of the future columns over the then-active workers, so the
  // k-th re-added worker pulls ceil(future / (from + k)) columns — when the
  // future columns are scarcer than the re-added workers the same column
  // hops across each of them in turn, and the traffic reflects that.
  const double future = std::max(0.0, cols - 1.0 - static_cast<double>(phase));
  double moved = 0;
  for (std::int32_t k = 1; k <= to - from; ++k)
    moved += std::ceil(future / static_cast<double>(from + k));
  return colBytes * moved;
}

namespace {

/// Runs one (class, allocation) simulation and slices the trace at the
/// app's progress markers.
PhaseProfile profileOne(const JobClass& klass, std::int32_t nodes,
                        const ProfileSettings& settings) {
  core::SimEngine engine(settings.simConfig());
  core::RunResult run;
  const char* markerName = nullptr;
  if (klass.app == AppKind::Lu) {
    const lu::LuConfig cfg = klass.luAt(nodes);
    cfg.validate();
    lu::LuBuild build = lu::buildLu(cfg, settings.luModel, false);
    run = lu::runLu(engine, build);
    markerName = "iteration";
  } else {
    const jacobi::JacobiConfig cfg = klass.jacobiAt(nodes);
    cfg.validate();
    jacobi::JacobiBuild build = jacobi::buildJacobi(cfg, settings.jacobiModel, false);
    run = jacobi::runJacobi(engine, build);
    markerName = "sweep";
  }
  DPS_CHECK(run.trace != nullptr, "profile runs require trace recording");

  PhaseProfile p;
  p.nodes = nodes;
  p.totalSec = toSeconds(run.makespan);
  const auto segments = trace::dynamicEfficiency(*run.trace, markerName, simEpoch(),
                                                 simEpoch() + run.makespan);
  DPS_CHECK(!segments.empty(), "profile run produced no phases");
  for (const auto& seg : segments) {
    p.phaseSec.push_back(toSeconds(seg.end - seg.start));
    p.phaseEff.push_back(seg.efficiency);
  }
  return p;
}

} // namespace

JobProfileTable JobProfileTable::build(const std::vector<JobClass>& classes,
                                       std::int32_t clusterNodes,
                                       const ProfileSettings& settings, unsigned jobs) {
  DPS_CHECK(!classes.empty(), "profile table needs at least one job class");
  JobProfileTable table;
  struct Slot {
    std::size_t klass;
    std::int32_t nodes;
  };
  std::vector<Slot> slots;
  for (std::size_t c = 0; c < classes.size(); ++c) {
    ClassProfile cp;
    cp.name = classes[c].name;
    cp.app = classes[c].app;
    cp.allocs = feasibleAllocations(classes[c], clusterNodes);
    if (classes[c].app == AppKind::Lu) {
      cp.stateBytes = static_cast<double>(classes[c].lu.n) * classes[c].lu.n * sizeof(double);
      cp.stateShrinks = true;
    } else {
      cp.stateBytes =
          static_cast<double>(classes[c].jacobi.rows) * classes[c].jacobi.cols * sizeof(double);
      cp.stateShrinks = false;
    }
    cp.byAlloc.resize(cp.allocs.size());
    for (std::int32_t a : cp.allocs) slots.push_back(Slot{c, a});
    table.classes_.push_back(std::move(cp));
  }

  // Independent single-threaded simulations into index-addressed slots:
  // identical tables at any `jobs` value.
  parallelFor(slots.size(), jobs, [&](std::size_t i) {
    ClassProfile& cp = table.classes_[slots[i].klass];
    const std::size_t ai = static_cast<std::size_t>(
        std::find(cp.allocs.begin(), cp.allocs.end(), slots[i].nodes) - cp.allocs.begin());
    cp.byAlloc[ai] = profileOne(classes[slots[i].klass], slots[i].nodes, settings);
  });

  for (const ClassProfile& cp : table.classes_) {
    for (const PhaseProfile& p : cp.byAlloc) {
      DPS_CHECK(p.totalSec > 0, "profile with zero makespan for " + cp.name);
      DPS_CHECK(p.phaseSec.size() == cp.byAlloc.front().phaseSec.size(),
                "inconsistent phase count across allocations of " + cp.name);
    }
  }
  return table;
}

} // namespace dps::sched
