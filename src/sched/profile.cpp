#include "sched/profile.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "sched/engine_run.hpp"
#include "support/error.hpp"
#include "support/fingerprint.hpp"
#include "support/thread_pool.hpp"

namespace dps::sched {

std::uint64_t ProfileSettings::fingerprint() const {
  // Identical byte sequence to EngineRunSpec::engineFingerprint() for a
  // spec built from these settings: the two values coincide by design.
  Fingerprint fp;
  core::fingerprintInto(fp, simConfig());
  lu::fingerprintInto(fp, luModel);
  jacobi::fingerprintInto(fp, jacobiModel);
  return fp.value();
}

void PhaseProfile::finalizeRemaining() {
  const std::size_t n = phaseSec.size();
  remainSec.assign(n, 0.0);
  // Each entry is its own left-to-right accumulation, not a shared backward
  // sweep: a backward sweep rounds differently, and remainingFrom() promises
  // bitwise equality with summing the tail directly.  O(phases^2) once per
  // profile, with phases in the tens.
  for (std::size_t i = 0; i < n; ++i) {
    double rest = 0;
    for (std::size_t q = i; q < n; ++q) rest += phaseSec[q];
    remainSec[i] = rest;
  }
}

double PhaseProfile::remainingFrom(std::int32_t phase) const {
  const std::size_t first = static_cast<std::size_t>(std::max<std::int32_t>(phase, 0));
  if (first >= phaseSec.size()) return 0;
  if (!remainSec.empty()) return remainSec[first];
  double rest = 0;
  for (std::size_t q = first; q < phaseSec.size(); ++q) rest += phaseSec[q];
  return rest;
}

std::int32_t ClassProfile::phases() const {
  DPS_CHECK(!byAlloc.empty(), "empty class profile");
  return static_cast<std::int32_t>(byAlloc.front().phaseSec.size());
}

const PhaseProfile& ClassProfile::at(std::int32_t nodes) const {
  const auto it = std::lower_bound(allocs.begin(), allocs.end(), nodes);
  if (it == allocs.end() || *it != nodes)
    throw Error("no profile for " + name + " at " + std::to_string(nodes) + " nodes");
  return byAlloc[static_cast<std::size_t>(it - allocs.begin())];
}

bool ClassProfile::feasible(std::int32_t nodes) const {
  return std::binary_search(allocs.begin(), allocs.end(), nodes);
}

std::int32_t ClassProfile::clampFeasible(std::int32_t want) const {
  // First allocation strictly above `want`; the one before it (if any) is
  // the largest feasible <= want.
  const auto it = std::upper_bound(allocs.begin(), allocs.end(), want);
  return it == allocs.begin() ? allocs.front() : *(it - 1);
}

double ClassProfile::bestSec() const {
  double best = byAlloc.front().totalSec;
  for (const PhaseProfile& p : byAlloc) best = std::min(best, p.totalSec);
  return best;
}

double ClassProfile::migrationBytes(std::int32_t phase, std::int32_t from, std::int32_t to) const {
  if (from == to) return 0;
  if (!stateShrinks) {
    // Live-grid apps (Jacobi): the whole state is evenly spread over the
    // current workers; moving between allocations relocates the share held
    // by the workers that appear or disappear.
    const double churn = static_cast<double>(std::abs(from - to)) / std::max(from, to);
    return stateBytes * churn;
  }
  // Column-granular apps (LU): mirror mall::LuMalleabilityController's
  // per-direction byte accounting.  One column block = stateBytes / phases
  // (the controller charges the full n x r panel per move, factored or not).
  const double cols = phases();
  const double colBytes = stateBytes / cols;
  if (to < from) {
    // Shrink: a removed worker migrates *every* column it owns — factored
    // columns included (the column whose panel is about to run is merely
    // deferred to the next boundary, not exempted).  With ownership evenly
    // spread, the removed workers hold a (from - to) / from share.
    return colBytes * cols * static_cast<double>(from - to) / from;
  }
  // Grow: re-added workers receive only still-unfactored, unpinned columns
  // (index > phase).  The controller rebalances one worker at a time toward
  // a ceil-share of the future columns over the then-active workers, so the
  // k-th re-added worker pulls ceil(future / (from + k)) columns — when the
  // future columns are scarcer than the re-added workers the same column
  // hops across each of them in turn, and the traffic reflects that.
  const double future = std::max(0.0, cols - 1.0 - static_cast<double>(phase));
  double moved = 0;
  for (std::int32_t k = 1; k <= to - from; ++k)
    moved += std::ceil(future / static_cast<double>(from + k));
  return colBytes * moved;
}

std::int32_t InterpolatedProfile::autoAnchorCount(std::size_t levels) {
  if (levels <= 5) return static_cast<std::int32_t>(levels);
  const std::int32_t quarter = static_cast<std::int32_t>(levels / 4);
  return std::clamp<std::int32_t>(quarter, 3, 8);
}

std::vector<std::int32_t> InterpolatedProfile::pickAnchors(const std::vector<std::int32_t>& allocs,
                                                           std::int32_t count) {
  DPS_CHECK(!allocs.empty(), "pickAnchors on empty allocation list");
  const std::size_t n = allocs.size();
  if (count >= static_cast<std::int32_t>(n) || n <= 2) return allocs;
  count = std::max<std::int32_t>(count, 2);

  std::vector<bool> chosen(n, false);
  chosen.front() = chosen.back() = true;
  const double lnLo = std::log(static_cast<double>(allocs.front()));
  const double lnHi = std::log(static_cast<double>(allocs.back()));
  for (std::int32_t k = 1; k + 1 < count; ++k) {
    // Ideal k-th interior anchor in log-allocation space, snapped to the
    // nearest not-yet-chosen feasible level (lowest index on ties).
    const double target = lnLo + (lnHi - lnLo) * static_cast<double>(k) / (count - 1);
    std::size_t best = n;
    double bestDist = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (chosen[i]) continue;
      const double dist = std::abs(std::log(static_cast<double>(allocs[i])) - target);
      if (best == n || dist < bestDist) {
        best = i;
        bestDist = dist;
      }
    }
    if (best < n) chosen[best] = true;
  }

  std::vector<std::int32_t> anchors;
  for (std::size_t i = 0; i < n; ++i)
    if (chosen[i]) anchors.push_back(allocs[i]);
  return anchors;
}

InterpolatedProfile InterpolatedProfile::fit(ClassProfile anchored) {
  DPS_CHECK(!anchored.allocs.empty(), "interpolation needs at least one anchor");
  DPS_CHECK(anchored.allocs.size() == anchored.byAlloc.size(),
            "anchor allocations and profiles disagree for " + anchored.name);
  DPS_CHECK(std::is_sorted(anchored.allocs.begin(), anchored.allocs.end()),
            "anchor allocations must be ascending for " + anchored.name);
  for (PhaseProfile& p : anchored.byAlloc) {
    DPS_CHECK(p.phaseSec.size() == anchored.byAlloc.front().phaseSec.size(),
              "inconsistent phase count across anchors of " + anchored.name);
    if (p.remainSec.empty()) p.finalizeRemaining();
  }
  InterpolatedProfile ip;
  ip.anchored_ = std::move(anchored);
  return ip;
}

PhaseProfile InterpolatedProfile::at(std::int32_t nodes) const {
  const std::vector<std::int32_t>& as = anchored_.allocs;
  const std::int32_t clamped = std::clamp(nodes, as.front(), as.back());
  const auto it = std::lower_bound(as.begin(), as.end(), clamped);
  if (it != as.end() && *it == clamped) {
    // Anchor: the stored engine profile, bit-for-bit (only relabelled when
    // the query was outside the anchor range).
    PhaseProfile p = anchored_.byAlloc[static_cast<std::size_t>(it - as.begin())];
    p.nodes = nodes;
    return p;
  }
  const std::size_t hi = static_cast<std::size_t>(it - as.begin());
  const std::size_t lo = hi - 1;
  const PhaseProfile& p0 = anchored_.byAlloc[lo];
  const PhaseProfile& p1 = anchored_.byAlloc[hi];
  const double t = (std::log(static_cast<double>(clamped)) - std::log(static_cast<double>(as[lo]))) /
                   (std::log(static_cast<double>(as[hi])) - std::log(static_cast<double>(as[lo])));

  PhaseProfile out;
  out.nodes = nodes;
  const std::size_t phases = p0.phaseSec.size();
  out.phaseSec.resize(phases);
  out.phaseEff.resize(phases);
  for (std::size_t q = 0; q < phases; ++q) {
    const double d0 = p0.phaseSec[q];
    const double d1 = p1.phaseSec[q];
    // Power law between the bracketing anchors: linear in (log nodes,
    // log seconds).  Degenerate (non-positive) durations fall back to
    // linear so the synthesis never produces NaNs.
    out.phaseSec[q] = (d0 > 0 && d1 > 0) ? std::exp((1.0 - t) * std::log(d0) + t * std::log(d1))
                                         : (1.0 - t) * d0 + t * d1;
    out.phaseEff[q] = std::clamp((1.0 - t) * p0.phaseEff[q] + t * p1.phaseEff[q], 0.0, 1.0);
    out.totalSec += out.phaseSec[q];
  }
  out.finalizeRemaining();
  return out;
}

ClassProfile InterpolatedProfile::synthesize(ClassProfile skeleton) const {
  skeleton.byAlloc.clear();
  skeleton.byAlloc.reserve(skeleton.allocs.size());
  for (std::int32_t a : skeleton.allocs) skeleton.byAlloc.push_back(at(a));
  return skeleton;
}

JobProfileTable JobProfileTable::build(
    const std::vector<JobClass>& classes, std::int32_t clusterNodes,
    const ProfileSettings& settings, unsigned jobs,
    const std::function<EngineRunRecord(const EngineRunSpec&)>& runner,
    const ProfileBuildOptions& options) {
  DPS_CHECK(!classes.empty(), "profile table needs at least one job class");
  JobProfileTable table;
  struct Slot {
    std::size_t klass;
    std::int32_t nodes;
  };
  std::vector<Slot> slots;
  std::vector<ClassProfile> skeletons; // full feasible-allocation lists
  for (std::size_t c = 0; c < classes.size(); ++c) {
    ClassProfile full = classProfileSkeleton(classes[c], clusterNodes);
    table.info_.profiledAllocs += full.allocs.size();

    // The class's engine-run plan: every feasible allocation when exact,
    // only the anchors when interpolating.  A budget covering every level
    // degenerates to the exact build, so small tables are identical both
    // ways.
    ClassProfile anchored = full;
    if (options.interpolate) {
      const std::int32_t levels = static_cast<std::int32_t>(full.allocs.size());
      const std::int32_t budget =
          options.anchors > 0 ? std::clamp(options.anchors, 2, levels)
                              : InterpolatedProfile::autoAnchorCount(full.allocs.size());
      anchored.allocs = InterpolatedProfile::pickAnchors(full.allocs, budget);
      anchored.byAlloc.resize(anchored.allocs.size());
    }
    for (std::int32_t a : anchored.allocs) slots.push_back(Slot{c, a});
    skeletons.push_back(std::move(full));
    table.classes_.push_back(std::move(anchored));
  }
  table.info_.engineRunPoints = slots.size();

  // Independent single-threaded simulations into index-addressed slots:
  // identical tables at any `jobs` value.
  std::atomic<std::size_t> done{0};
  parallelFor(slots.size(), jobs, [&](std::size_t i) {
    ClassProfile& cp = table.classes_[slots[i].klass];
    const std::size_t ai = static_cast<std::size_t>(
        std::find(cp.allocs.begin(), cp.allocs.end(), slots[i].nodes) - cp.allocs.begin());
    const EngineRunSpec spec =
        profileRunSpec(classes[slots[i].klass], slots[i].nodes, settings);
    cp.byAlloc[ai] =
        phaseProfileFromRecord(runner ? runner(spec) : executeEngineRun(spec), slots[i].nodes);
    if (options.onRunDone) options.onRunDone(done.fetch_add(1) + 1, slots.size());
  });

  // Classes whose anchor plan skipped levels get the rest synthesized from
  // the fitted curves; anchor entries keep their engine profiles verbatim.
  for (std::size_t c = 0; c < table.classes_.size(); ++c) {
    if (table.classes_[c].allocs.size() == skeletons[c].allocs.size()) continue;
    const InterpolatedProfile ip = InterpolatedProfile::fit(std::move(table.classes_[c]));
    table.classes_[c] = ip.synthesize(std::move(skeletons[c]));
  }

  for (const ClassProfile& cp : table.classes_) {
    for (const PhaseProfile& p : cp.byAlloc) {
      DPS_CHECK(p.totalSec > 0, "profile with zero makespan for " + cp.name);
      DPS_CHECK(p.phaseSec.size() == cp.byAlloc.front().phaseSec.size(),
                "inconsistent phase count across allocations of " + cp.name);
    }
  }
  return table;
}

JobProfileTable JobProfileTable::fromProfiles(std::vector<ClassProfile> classes) {
  DPS_CHECK(!classes.empty(), "profile table needs at least one job class");
  JobProfileTable table;
  table.classes_ = std::move(classes);
  for (ClassProfile& cp : table.classes_) {
    DPS_CHECK(!cp.allocs.empty() && cp.allocs.size() == cp.byAlloc.size(),
              "hand-built class profile with mismatched allocation lists: " + cp.name);
    DPS_CHECK(std::is_sorted(cp.allocs.begin(), cp.allocs.end()),
              "hand-built class profile allocations must ascend: " + cp.name);
    for (PhaseProfile& p : cp.byAlloc) {
      DPS_CHECK(p.totalSec > 0, "profile with zero makespan for " + cp.name);
      DPS_CHECK(p.phaseSec.size() == cp.byAlloc.front().phaseSec.size(),
                "inconsistent phase count across allocations of " + cp.name);
      if (p.remainSec.empty()) p.finalizeRemaining();
    }
    table.info_.profiledAllocs += cp.allocs.size();
  }
  return table;
}

} // namespace dps::sched
