// In-engine replay validation for the cluster scheduler — closing the
// prediction loop.
//
// The cluster event loop predicts every job's runtime from a per-phase
// profile table: a job at allocation `a` spends phaseSec[p] in phase p, and
// a reallocation costs latency + modelBytes / bandwidth.  None of that has
// been checked against the thing it abstracts: the full per-application
// discrete-event simulation with the mall:: malleability controller really
// migrating column state at iteration boundaries.  This module performs the
// check — the simulator-validation step the paper runs for PDEXEC against
// direct execution (Fig. 13), applied one layer up.
//
// For every job of a finished cluster simulation the allocation history
// (JobOutcome::allocs, one entry per executed phase) is converted into a
// mall::AllocationPlan over max(allocs) workers — shrink steps remove the
// highest-indexed active workers, grow steps re-add the most recently
// removed (so the active set is always a prefix), and a history that starts
// below its maximum begins with a removal at iteration 0, applied through
// the engine's run-start hook before any compute.  The job then runs on the
// DPS engine with the same PDEXEC NOALLOC configuration the profiles used:
//
//   * LU jobs with a varying history run under the full
//     LuMalleabilityController executing the plan (mode "controller");
//   * jobs with a constant history run as a plain simulation at that
//     allocation (mode "static") — any app kind;
//   * Jacobi jobs with a varying history are counted but not replayed
//     (mode "unsupported"): there is no Jacobi malleability controller yet.
//
// The report carries per-job and aggregate *signed* relative errors of the
// scheduler's prediction against the replay, separately for makespan and
// migrated bytes.  Replays are independent, so they fan out on the
// support::ThreadPool into index-addressed slots — bit-identical at any
// `jobs` value, the same determinism contract as the profile table.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "malleable/plan.hpp"
#include "sched/engine_run.hpp"
#include "sched/metrics.hpp"
#include "sched/profile.hpp"
#include "sched/workload.hpp"

namespace dps::sched {

enum class ReplayMode : std::uint8_t { Controller, Static, Unsupported };

const char* replayModeName(ReplayMode mode);

struct JobReplayOutcome {
  std::int32_t id = 0;
  std::string klass;
  ReplayMode mode = ReplayMode::Static;
  std::string plan; // human-readable allocation plan

  double predictedSec = 0;   // scheduler: finish - start (migration stalls included)
  double replayedSec = 0;    // engine: full-simulation makespan
  double predictedBytes = 0; // scheduler: ClassProfile::migrationBytes model
  double replayedBytes = 0;  // engine: controller's shrink+grow byte counters

  /// Signed relative error, (predicted - replayed) / replayed; positive
  /// means the profile-table prediction overestimates.
  double makespanError() const;
  /// Same for migrated bytes; 0 when neither side moved anything.
  double bytesError() const;
};

struct ReplayReport {
  std::string policy;
  std::int32_t nodes = 0;
  std::uint64_t seed = 0;

  std::vector<JobReplayOutcome> jobs;

  // Aggregates (filled by finalize()).
  std::int32_t replayed = 0;    // controller + static
  std::int32_t unsupported = 0; // varying-history Jacobi jobs
  double meanMakespanError = 0; // signed, over replayed jobs
  double meanAbsMakespanError = 0;
  double maxAbsMakespanError = 0;
  std::int32_t bytesJobs = 0; // replayed jobs where either side moved bytes
  double meanBytesError = 0;  // signed, over bytesJobs
  double meanAbsBytesError = 0;
  double maxAbsBytesError = 0;

  void finalize();
  void writeJson(std::ostream& os) const;
  std::string jsonString() const;
};

/// Converts one allocation history (allocation per executed phase) into a
/// plan over max(allocs) workers.  Histories starting below the maximum get
/// a removal step at iteration 0; shrink victims are the highest-indexed
/// active workers, grows re-add the most recently removed.
mall::AllocationPlan planFromHistory(const std::vector<std::int32_t>& allocs);

struct ReplaySettings {
  ProfileSettings engine;
  /// Concurrent replay engines (0 = hardware concurrency).
  unsigned jobs = 1;
  /// Executes the per-job engine runs; null = direct execution.  With
  /// svc::cachedRunner, static replays share cache entries with the profile
  /// build that predicted them (identical specs), so they simulate nothing.
  EngineRunFn runner{};
};

/// Replays every job of `metrics` (a simulateCluster result for `workload`)
/// through the full per-application simulation and reports prediction
/// errors.  Deterministic and bit-identical at any settings.jobs value.
ReplayReport replaySchedule(const ClusterMetrics& metrics, const Workload& workload,
                            const JobProfileTable& profiles, const ReplaySettings& settings);

} // namespace dps::sched
