#include "sched/cluster.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <tuple>

#include "des/scheduler.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "sched/observe.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace dps::sched {

namespace {

/// The whole event loop as one value type: constructed, run, harvested.
///
/// Per-event costs are kept independent of the total job count:
///   * remaining runtime comes from PhaseProfile::remainSec suffix sums
///     (O(1) instead of a tail sum per query),
///   * the EASY shadow-time computation walks an ordered multiset of
///     (estimated finish, nodes) over the *running* jobs, maintained in
///     O(log running) per phase event, instead of rebuilding and sorting a
///     vector scraped from the full jobs_ array,
///   * the queue compacts lazily: backfill removals tombstone their entry
///     and the head scan pops dead entries on contact, so no O(queue)
///     mid-deque erases,
///   * allocation lookups binary-search the ascending feasible list.
/// simulateClusterReference (cluster_reference.cpp) keeps the original
/// linear-scan loop; tests pin this implementation to it bit-for-bit.
class ClusterSim {
public:
  ClusterSim(const ClusterConfig& cfg, const Workload& workload, const JobProfileTable& profiles,
             Policy& policy)
      : cfg_(cfg), workload_(workload), profiles_(profiles), policy_(policy) {
    DPS_CHECK(cfg_.nodes > 0, "cluster needs at least one node");
    DPS_CHECK(cfg_.migrationBandwidthBytesPerSec > 0, "migration bandwidth must be positive");
    free_ = cfg_.nodes;
    jobs_.resize(workload.jobs.size());
    for (std::size_t i = 0; i < workload.jobs.size(); ++i) {
      const Job& job = workload.jobs[i];
      const ClassProfile& profile = profiles_.of(job.klass);
      DPS_CHECK(profile.maxNodes() <= cfg_.nodes,
                "job class " + profile.name + " cannot fit the cluster");
      JobRt& rt = jobs_[i];
      rt.out.id = job.id;
      rt.out.klass = profile.name;
      rt.out.arrivalSec = job.arrivalSec;
      rt.out.bestSec = profile.bestSec();
    }
  }

  ClusterMetrics run() {
    if (cfg_.recorder != nullptr)
      cfg_.recorder->beginRun(policy_.name(), cfg_.nodes, workload_.cfg.seed);
    metrics_.timeline.push_back(UtilizationPoint{0.0, 0});
    for (std::size_t i = 0; i < workload_.jobs.size(); ++i)
      sched_.scheduleAt(simEpoch() + seconds(workload_.jobs[i].arrivalSec),
                        [this, i] { onArrival(i); });
    sched_.run();

    metrics_.policy = policy_.name();
    metrics_.nodes = cfg_.nodes;
    metrics_.seed = workload_.cfg.seed;
    metrics_.events = events_;
    for (JobRt& rt : jobs_) {
      DPS_CHECK(rt.finished, "cluster simulation quiesced with unfinished jobs");
      metrics_.jobs.push_back(std::move(rt.out));
    }
    metrics_.finalize();
    recordClusterRun(cfg_, metrics_, sched_.firedCount(), sched_.queueHighWater());
    return std::move(metrics_);
  }

private:
  /// Ordered running-set index: (estimated finish, nodes, job) ascending.
  /// The job index is a deterministic tiebreak; the (finish, nodes) order
  /// matches what the reference loop's sort produces, and equal-key jobs
  /// contribute identically to the shadow-time accumulation.
  using FinishKey = std::tuple<double, std::int32_t, std::size_t>;
  using FinishIndex = std::multiset<FinishKey>;

  struct JobRt {
    std::int32_t nodes = 0; // current allocation (0 = not running)
    std::int32_t phase = 0; // next phase index
    bool finished = false;
    bool queued = false; // live queue_ entry (false after start = tombstone)
    bool inFinishIndex = false;
    /// Profile-estimated finish assuming the current allocation holds —
    /// the running-job knowledge EASY backfill reserves against.
    double estFinishSec = 0;
    /// Cached &profile.at(nodes) while running.
    const PhaseProfile* prof = nullptr;
    FinishIndex::iterator finishIt;
    /// Wait attribution (integer SimTime ticks, so buckets telescope to
    /// exactly start - arrival): the tick the job arrived, the tick its
    /// current wait interval opened, and that interval's reason.
    std::int64_t arrivalNs = 0;
    std::int64_t waitSinceNs = 0;
    obs::WaitReason waitReason = obs::WaitReason::HeadOfLine;
    JobOutcome out;
  };

  double nowSec() const { return toSeconds(sched_.now().time_since_epoch()); }
  std::int64_t nowNs() const { return sched_.now().time_since_epoch().count(); }

  const ClassProfile& profileOf(std::size_t i) const {
    return profiles_.of(workload_.jobs[i].klass);
  }

  ClusterView view() const {
    ClusterView v;
    v.totalNodes = cfg_.nodes;
    v.freeNodes = free_;
    v.runningJobs = running_;
    v.queuedJobs = queuedLive_;
    return v;
  }

  void recordUse() {
    metrics_.recordUse(nowSec(), cfg_.nodes - free_);
    recordState();
  }

  /// Feeds the recorder's timeseries after any cluster state change (also
  /// called on arrivals, where only the queue depth moves).
  void recordState() {
    if (cfg_.recorder != nullptr)
      cfg_.recorder->stateSample(nowSec(), cfg_.nodes - free_, free_, running_, queuedLive_);
  }

  /// Closes job i's open wait interval at `t` (no-op when zero-length):
  /// banks the integer-ns bucket, hands the interval to the recorder, and
  /// emits the trace child span under the job's queued span.
  void closeWait(JobRt& rt, std::int64_t t) {
    if (t <= rt.waitSinceNs) return;
    rt.out.wait.byReason[static_cast<std::size_t>(rt.waitReason)] += t - rt.waitSinceNs;
    if (cfg_.recorder != nullptr)
      cfg_.recorder->waitInterval(rt.out.id, static_cast<double>(rt.waitSinceNs) * 1e-9,
                                  static_cast<double>(t) * 1e-9, rt.waitReason);
    if (cfg_.trace != nullptr)
      cfg_.trace->completeSpan(obs::waitReasonName(rt.waitReason), "wait",
                               static_cast<double>(rt.waitSinceNs) * 1e-3,
                               static_cast<double>(t - rt.waitSinceNs) * 1e-3, cfg_.tracePid,
                               rt.out.id);
  }

  /// Re-attributes job i's wait from now on: a changed reason closes the
  /// open interval and opens a new one; the same reason lets it run on.
  void markWait(std::size_t i, obs::WaitReason reason) {
    JobRt& rt = jobs_[i];
    if (reason == rt.waitReason) return;
    const std::int64_t t = nowNs();
    closeWait(rt, t);
    rt.waitSinceNs = t;
    rt.waitReason = reason;
  }

  /// Seals job i's attribution at start: closes the last interval under
  /// its standing reason.  Telescoping makes the invariant exact:
  /// sum(byReason) == totalNs == start tick - arrival tick.
  void closeWaitFinal(std::size_t i) {
    JobRt& rt = jobs_[i];
    const std::int64_t t = nowNs();
    closeWait(rt, t);
    rt.out.wait.totalNs = t - rt.arrivalNs;
  }

  /// Re-registers job i in the running-set index under its current
  /// (estFinishSec, nodes); call after either changes.
  void updateFinishIndex(std::size_t i) {
    if (!cfg_.easyBackfill) return;
    JobRt& rt = jobs_[i];
    if (rt.inFinishIndex) runningByFinish_.erase(rt.finishIt);
    rt.finishIt = runningByFinish_.insert(FinishKey{rt.estFinishSec, rt.nodes, i});
    rt.inFinishIndex = true;
  }

  void dropFinishIndex(std::size_t i) {
    JobRt& rt = jobs_[i];
    if (!rt.inFinishIndex) return;
    runningByFinish_.erase(rt.finishIt);
    rt.inFinishIndex = false;
  }

  /// Trace emission (simulated-time microseconds, one tid per job id).
  /// Everything below only *reads* run state — tracing on or off cannot
  /// change a single scheduling decision.
  double nowMicros() const { return nowSec() * 1e6; }

  void traceQueuedSpan(const JobRt& rt, std::int32_t alloc) const {
    cfg_.trace->completeSpan("queued", "queue", rt.out.arrivalSec * 1e6, rt.out.waitSec() * 1e6,
                             cfg_.tracePid, rt.out.id,
                             "{\"alloc\":" + std::to_string(alloc) + "}");
  }

  void traceRunSpan(const JobRt& rt) const {
    cfg_.trace->completeSpan(rt.out.klass, "job", rt.out.startSec * 1e6,
                             (rt.out.finishSec - rt.out.startSec) * 1e6, cfg_.tracePid, rt.out.id,
                             "{\"reallocations\":" + std::to_string(rt.out.reallocations) +
                                 ",\"migrated_bytes\":" + jsonDouble(rt.out.migratedBytes) +
                                 ",\"backfilled\":" + (rt.out.backfilled ? "true" : "false") + "}");
  }

  void traceRealloc(const JobRt& rt, std::int32_t from, std::int32_t to, double bytes) const {
    cfg_.trace->instant("realloc", "job", nowMicros(), cfg_.tracePid, rt.out.id,
                        "{\"from\":" + std::to_string(from) + ",\"to\":" + std::to_string(to) +
                            ",\"bytes\":" + jsonDouble(bytes) + "}");
  }

  void traceMigration(const JobRt& rt, const SimDuration& delay, double bytes) const {
    cfg_.trace->completeSpan("migrate", "job", nowMicros(), toSeconds(delay) * 1e6, cfg_.tracePid,
                             rt.out.id, "{\"bytes\":" + jsonDouble(bytes) + "}");
  }

  void traceBackfill(const JobRt& rt, std::int32_t alloc, double shadow,
                     std::int32_t spare) const {
    cfg_.trace->instant("backfill", "sched", nowMicros(), cfg_.tracePid, rt.out.id,
                        "{\"alloc\":" + std::to_string(alloc) +
                            ",\"shadow_sec\":" + jsonDouble(shadow) +
                            ",\"spare\":" + std::to_string(spare) + "}");
  }

  void maybeProgress() {
    if (cfg_.progressEvery <= 0 || !cfg_.onProgress) return;
    if (events_ - lastProgressEvents_ < cfg_.progressEvery) return;
    lastProgressEvents_ = events_;
    ClusterProgress p;
    p.events = events_;
    p.finishedJobs = finished_;
    p.totalJobs = static_cast<std::int32_t>(jobs_.size());
    p.simNowSec = nowSec();
    p.runningJobs = running_;
    p.queuedJobs = queuedLive_;
    cfg_.onProgress(p);
  }

  void onArrival(std::size_t i) {
    ++events_;
    JobRt& rt = jobs_[i];
    rt.queued = true;
    rt.arrivalNs = rt.waitSinceNs = nowNs();
    rt.waitReason = obs::WaitReason::HeadOfLine;
    queue_.push_back(i);
    ++queuedLive_;
    recordState();
    admissionScan();
    maybeProgress();
  }

  /// Offers queued jobs to the policy strictly in arrival order; stops at
  /// the first one that does not start.  With EASY backfill enabled, a
  /// capacity-blocked head additionally triggers a backfill pass over the
  /// younger queued jobs.
  void admissionScan() {
    for (;;) {
      while (!queue_.empty() && !jobs_[queue_.front()].queued) queue_.pop_front();
      if (queue_.empty()) return;
      const std::size_t i = queue_.front();
      const ClassProfile& profile = profileOf(i);
      QueuedJobView qv;
      qv.id = jobs_[i].out.id;
      qv.waitedSec = nowSec() - jobs_[i].out.arrivalSec;
      DecisionContext ctx;
      const std::int32_t want = policy_.admit(qv, profile, view(), ctx);
      if (want <= 0) { // the policy itself keeps the head queued
        markWait(i, obs::WaitReason::PolicyHeld);
        if (cfg_.recorder != nullptr)
          cfg_.recorder->admitDecision(nowSec(), qv.id, want, 0, free_, false,
                                       obs::WaitReason::PolicyHeld, ctx.rule, ctx.score,
                                       ctx.threshold);
        return;
      }
      const std::int32_t alloc = profile.clampFeasible(std::min(want, profile.maxNodes()));
      if (alloc > free_) { // head-of-line blocked until nodes free up
        markWait(i, obs::WaitReason::InsufficientFree);
        if (cfg_.recorder != nullptr)
          cfg_.recorder->admitDecision(nowSec(), qv.id, want, alloc, free_, false,
                                       obs::WaitReason::InsufficientFree, ctx.rule, ctx.score,
                                       ctx.threshold);
        if (cfg_.easyBackfill) backfillScan(i, alloc);
        return;
      }
      if (cfg_.recorder != nullptr)
        cfg_.recorder->admitDecision(nowSec(), qv.id, want, alloc, free_, true,
                                     obs::WaitReason::HeadOfLine, ctx.rule, ctx.score,
                                     ctx.threshold);
      queue_.pop_front();
      jobs_[i].queued = false;
      --queuedLive_;
      startJob(i, alloc);
    }
  }

  /// EASY backfill (Lifka '95): the blocked head holds a reservation of
  /// `headAlloc` nodes at the *shadow time* — the earliest instant enough
  /// nodes are free assuming running jobs keep their allocations and finish
  /// per their remaining phase profiles.  A younger job may start now only
  /// if it cannot delay that reservation: it finishes before the shadow
  /// time, or it fits into the `spare` nodes left over once the head
  /// starts.
  void backfillScan(std::size_t head, std::int32_t headAlloc) {
    const double now = nowSec();
    std::int32_t avail = free_;
    double shadow = -1;
    std::int32_t spare = 0;
    for (const auto& [finish, nodes, idx] : runningByFinish_) {
      avail += nodes;
      if (avail >= headAlloc) {
        shadow = std::max(finish, now);
        spare = avail - headAlloc;
        break;
      }
    }
    if (shadow < 0) { // the head can never fit; nothing to reserve
      if (cfg_.recorder != nullptr)
        cfg_.recorder->backfillPass(now, jobs_[head].out.id, headAlloc, -1, 0, 0, 0);
      return;
    }
    const std::int32_t spare0 = spare;

    bool pastHead = false;
    std::int32_t considered = 0;
    std::int32_t started = 0;
    for (std::size_t qi = 0; qi < queue_.size(); ++qi) {
      const std::size_t i = queue_[qi];
      if (!jobs_[i].queued) continue; // tombstone of an already-started job
      if (!pastHead) {                // the blocked head itself is not a candidate
        pastHead = true;
        continue;
      }
      if (cfg_.backfillDepth > 0 && considered >= cfg_.backfillDepth) {
        // Only this first excluded candidate is re-attributed (O(1) per
        // pass); deeper jobs stay head-of-line — the scan was never going
        // to reach them anyway.
        markWait(i, obs::WaitReason::DepthCutoff);
        if (cfg_.recorder != nullptr) cfg_.recorder->depthCutoff(now, jobs_[i].out.id);
        break;
      }
      ++considered;
      const ClassProfile& profile = profileOf(i);
      QueuedJobView qv;
      qv.id = jobs_[i].out.id;
      qv.waitedSec = now - jobs_[i].out.arrivalSec;
      DecisionContext ctx;
      const std::int32_t want = policy_.admit(qv, profile, view(), ctx);
      if (want <= 0) {
        markWait(i, obs::WaitReason::PolicyHeld);
        if (cfg_.recorder != nullptr)
          cfg_.recorder->backfillCandidate(now, qv.id, want, 0, free_, spare, false,
                                           obs::WaitReason::PolicyHeld, ctx.rule, ctx.score,
                                           ctx.threshold);
        continue;
      }
      const std::int32_t alloc = profile.clampFeasible(std::min(want, profile.maxNodes()));
      if (alloc > free_) {
        markWait(i, obs::WaitReason::InsufficientFree);
        if (cfg_.recorder != nullptr)
          cfg_.recorder->backfillCandidate(now, qv.id, want, alloc, free_, spare, false,
                                           obs::WaitReason::InsufficientFree, ctx.rule, ctx.score,
                                           ctx.threshold);
        continue;
      }
      const bool finishesInTime = now + profile.at(alloc).totalSec <= shadow + 1e-9;
      if (!finishesInTime && alloc > spare) {
        markWait(i, obs::WaitReason::ShadowTime);
        if (cfg_.recorder != nullptr)
          cfg_.recorder->backfillCandidate(now, qv.id, want, alloc, free_, spare, false,
                                           obs::WaitReason::ShadowTime, ctx.rule, ctx.score,
                                           ctx.threshold);
        continue;
      }
      if (cfg_.recorder != nullptr)
        cfg_.recorder->backfillCandidate(now, qv.id, want, alloc, free_, spare, true,
                                         obs::WaitReason::HeadOfLine, ctx.rule, ctx.score,
                                         ctx.threshold);
      if (!finishesInTime) spare -= alloc; // occupies part of the surplus past the shadow
      jobs_[i].queued = false;
      --queuedLive_;
      jobs_[i].out.backfilled = true;
      ++started;
      if (cfg_.trace != nullptr) traceBackfill(jobs_[i], alloc, shadow, spare);
      startJob(i, alloc);
    }
    if (cfg_.recorder != nullptr)
      cfg_.recorder->backfillPass(now, jobs_[head].out.id, headAlloc, shadow, spare0, considered,
                                  started);
  }

  void startJob(std::size_t i, std::int32_t alloc) {
    JobRt& rt = jobs_[i];
    closeWaitFinal(i);
    free_ -= alloc;
    ++running_;
    rt.nodes = alloc;
    rt.prof = &profileOf(i).at(alloc);
    rt.out.startSec = nowSec();
    if (cfg_.trace != nullptr) traceQueuedSpan(rt, alloc);
    recordUse();
    schedulePhase(i);
  }

  void schedulePhase(std::size_t i) {
    JobRt& rt = jobs_[i];
    rt.out.allocs.push_back(rt.nodes);
    rt.estFinishSec = nowSec() + rt.prof->remainingFrom(rt.phase);
    updateFinishIndex(i);
    sched_.scheduleAfter(seconds(rt.prof->phaseSec[static_cast<std::size_t>(rt.phase)]),
                         [this, i] { onPhaseEnd(i); });
  }

  void onPhaseEnd(std::size_t i) {
    ++events_;
    JobRt& rt = jobs_[i];
    const ClassProfile& profile = profileOf(i);
    ++rt.phase;
    if (rt.phase >= profile.phases()) {
      free_ += rt.nodes;
      --running_;
      ++finished_;
      rt.nodes = 0;
      rt.prof = nullptr;
      rt.finished = true;
      rt.out.finishSec = nowSec();
      if (cfg_.trace != nullptr) traceRunSpan(rt);
      dropFinishIndex(i);
      recordUse();
      admissionScan();
      maybeProgress();
      return;
    }

    RunningJobView rv;
    rv.id = rt.out.id;
    rv.nodes = rt.nodes;
    rv.phase = rt.phase;
    rv.phases = profile.phases();
    rv.efficiencyNext = rt.prof->phaseEff[static_cast<std::size_t>(rt.phase)];
    DecisionContext ctx;
    std::int32_t target = profile.clampFeasible(policy_.reallocate(rv, profile, view(), ctx));
    if (target > rt.nodes) // growth comes out of currently free nodes only
      target = std::min(target, profile.clampFeasible(rt.nodes + free_));

    if (target == rt.nodes) {
      schedulePhase(i);
      maybeProgress();
      return;
    }
    const double bytes = profile.migrationBytes(rt.phase, rt.nodes, target);
    if (cfg_.recorder != nullptr)
      cfg_.recorder->reallocDecision(nowSec(), rt.out.id, rt.nodes, target, free_, bytes, ctx.rule,
                                     ctx.score, ctx.threshold);
    if (cfg_.trace != nullptr) traceRealloc(rt, rt.nodes, target, bytes);
    if (target < rt.nodes) {
      free_ += rt.nodes - target; // released nodes stop computing now
    } else {
      free_ -= target - rt.nodes;
    }
    rt.nodes = target;
    rt.prof = &profile.at(target);
    rt.out.reallocations++;
    rt.out.migratedBytes += bytes;
    // The admission pass below must observe this job exactly as the
    // reference loop does: new allocation, estimated finish not yet
    // refreshed (schedulePhase refreshes it after the migration delay).
    updateFinishIndex(i);
    recordUse();
    admissionScan(); // shrink may have freed capacity for the queue
    if (cfg_.chargeMigration) {
      const SimDuration delay =
          cfg_.migrationLatency + seconds(bytes / cfg_.migrationBandwidthBytesPerSec);
      rt.out.wait.migrationDelayNs += delay.count();
      if (cfg_.recorder != nullptr)
        cfg_.recorder->migrationDelay(nowSec(), rt.out.id, toSeconds(delay), bytes);
      if (cfg_.trace != nullptr) traceMigration(rt, delay, bytes);
      rt.estFinishSec = nowSec() + toSeconds(delay) + rt.prof->remainingFrom(rt.phase);
      updateFinishIndex(i);
      sched_.scheduleAfter(delay, [this, i] { schedulePhase(i); });
    } else {
      schedulePhase(i);
    }
    maybeProgress();
  }

  const ClusterConfig& cfg_;
  const Workload& workload_;
  const JobProfileTable& profiles_;
  Policy& policy_;

  des::Scheduler sched_;
  std::deque<std::size_t> queue_;
  std::vector<JobRt> jobs_;
  FinishIndex runningByFinish_;
  std::int32_t free_ = 0;
  std::int32_t running_ = 0;
  std::int32_t finished_ = 0;
  std::int32_t queuedLive_ = 0;
  std::int64_t events_ = 0;
  std::int64_t lastProgressEvents_ = 0;
  ClusterMetrics metrics_;
};

} // namespace

ClusterMetrics simulateCluster(const ClusterConfig& cfg, const Workload& workload,
                               const JobProfileTable& profiles, Policy& policy) {
  return ClusterSim(cfg, workload, profiles, policy).run();
}

} // namespace dps::sched
