// Pluggable cluster scheduling policies.
//
// The ClusterScheduler consults a policy at two kinds of decision points:
// when a queued job reaches the head of the queue (admission) and when a
// running job crosses a phase boundary (reallocation — the only moment a
// malleable application can reconfigure).  Policies are deterministic,
// stateless functions of the views they are handed, so a cluster simulation
// is a pure function of (workload, profiles, policy, config).
//
//   * FcfsRigid         — the baseline every scheduling study compares
//     against: jobs start strictly in arrival order at their full request
//     and hold it to completion (head-of-line blocking included).
//   * Equipartition     — classic malleable scheduling: every job is
//     entitled to totalNodes / jobs; running jobs shed nodes toward their
//     share at phase boundaries and queued jobs start as soon as their
//     share is free.
//   * EfficiencyShrink  — the online generalization of
//     mall::EfficiencyPolicy (paper §9): jobs start as large as currently
//     possible and release nodes whenever the *profiled* dynamic efficiency
//     of their upcoming phase falls below a threshold.
//   * GrowEager         — the opposite direction: freed nodes are handed to
//     running jobs at their next phase boundary instead of idling.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sched/profile.hpp"

namespace dps::sched {

/// Cluster-level state a policy may consult.
struct ClusterView {
  std::int32_t totalNodes = 0;
  std::int32_t freeNodes = 0;
  std::int32_t runningJobs = 0;
  std::int32_t queuedJobs = 0; // including the job under consideration
};

/// A queued job offered for admission.
struct QueuedJobView {
  std::int32_t id = 0;
  double waitedSec = 0;
};

/// A running job at a phase boundary.
struct RunningJobView {
  std::int32_t id = 0;
  std::int32_t nodes = 0; // current allocation
  std::int32_t phase = 0; // next phase index (0-based)
  std::int32_t phases = 0;
  /// Profiled dynamic efficiency of the upcoming phase at `nodes`.
  double efficiencyNext = 0;
};

/// Decision rationale a policy reports alongside its answer, so the flight
/// recorder can explain *why* an allocation was chosen instead of just
/// what it was.  `rule` is a static string naming the clause that fired
/// ("fair-share", "step-down", ...); score/threshold carry the numeric
/// comparison behind threshold rules (0 when not applicable).  Filling it
/// is mandatory but free: callers that don't record simply ignore it.
struct DecisionContext {
  const char* rule = "";
  double score = 0;
  double threshold = 0;
};

class Policy {
public:
  virtual ~Policy() = default;
  virtual std::string name() const = 0;

  /// Allocation to start the queued job with; 0 keeps it queued.  Jobs are
  /// offered strictly in arrival order and the scan stops at the first job
  /// that does not start (no backfill, so policies compare on allocation
  /// decisions alone).  Returning more than view.freeNodes keeps the job
  /// queued (rigid policies just return the full request).
  virtual std::int32_t admit(const QueuedJobView& job, const ClassProfile& profile,
                             const ClusterView& view, DecisionContext& ctx) = 0;

  /// Target allocation for a running job at a phase boundary.  The
  /// scheduler clamps the answer to the class's feasible allocations and
  /// grants growth only from currently free nodes.
  virtual std::int32_t reallocate(const RunningJobView& job, const ClassProfile& profile,
                                  const ClusterView& view, DecisionContext& ctx) = 0;
};

class FcfsRigid final : public Policy {
public:
  std::string name() const override { return "fcfs-rigid"; }
  std::int32_t admit(const QueuedJobView& job, const ClassProfile& profile,
                     const ClusterView& view, DecisionContext& ctx) override;
  std::int32_t reallocate(const RunningJobView& job, const ClassProfile& profile,
                          const ClusterView& view, DecisionContext& ctx) override;
};

class Equipartition final : public Policy {
public:
  std::string name() const override { return "equipartition"; }
  std::int32_t admit(const QueuedJobView& job, const ClassProfile& profile,
                     const ClusterView& view, DecisionContext& ctx) override;
  std::int32_t reallocate(const RunningJobView& job, const ClassProfile& profile,
                          const ClusterView& view, DecisionContext& ctx) override;

private:
  /// totalNodes / max(1, running + queued), clamped into the class's
  /// feasible allocation set.
  static std::int32_t share(const ClassProfile& profile, const ClusterView& view);
};

class EfficiencyShrink final : public Policy {
public:
  explicit EfficiencyShrink(double threshold = 0.5) : threshold_(threshold) {}
  std::string name() const override { return "efficiency-shrink"; }
  std::int32_t admit(const QueuedJobView& job, const ClassProfile& profile,
                     const ClusterView& view, DecisionContext& ctx) override;
  std::int32_t reallocate(const RunningJobView& job, const ClassProfile& profile,
                          const ClusterView& view, DecisionContext& ctx) override;
  double threshold() const { return threshold_; }

private:
  double threshold_;
};

/// Hands freed nodes straight back to running jobs: admission starts a job
/// at its fitting fair share (like Equipartition), and at every phase
/// boundary a running job grows into whatever nodes are free — the scheduler
/// loop has always granted growth from free nodes, this is the first policy
/// built around asking for it.  Never shrinks.
class GrowEager final : public Policy {
public:
  std::string name() const override { return "grow-eager"; }
  std::int32_t admit(const QueuedJobView& job, const ClassProfile& profile,
                     const ClusterView& view, DecisionContext& ctx) override;
  std::int32_t reallocate(const RunningJobView& job, const ClassProfile& profile,
                          const ClusterView& view, DecisionContext& ctx) override;
};

/// Factory for the tool/bench --policy flags: "fcfs-rigid" | "equipartition"
/// | "efficiency-shrink" | "grow-eager".  Throws ConfigError on unknown
/// names.
std::unique_ptr<Policy> makePolicy(const std::string& name);
/// All policy names, in ranking-report order.
std::vector<std::string> policyNames();

} // namespace dps::sched
