#include "linalg/matrix.hpp"

#include <cmath>
#include <utility>

#include "support/rng.hpp"

namespace dps::lin {

Matrix Matrix::block(std::int32_t r0, std::int32_t c0, std::int32_t rows, std::int32_t cols) const {
  DPS_CHECK(r0 >= 0 && c0 >= 0 && r0 + rows <= rows_ && c0 + cols <= cols_, "block out of range");
  Matrix b(rows, cols);
  for (std::int32_t r = 0; r < rows; ++r)
    for (std::int32_t c = 0; c < cols; ++c) b(r, c) = (*this)(r0 + r, c0 + c);
  return b;
}

void Matrix::setBlock(std::int32_t r0, std::int32_t c0, const Matrix& b) {
  DPS_CHECK(r0 >= 0 && c0 >= 0 && r0 + b.rows() <= rows_ && c0 + b.cols() <= cols_,
            "setBlock out of range");
  for (std::int32_t r = 0; r < b.rows(); ++r)
    for (std::int32_t c = 0; c < b.cols(); ++c) (*this)(r0 + r, c0 + c) = b(r, c);
}

void Matrix::swapRows(std::int32_t r1, std::int32_t r2) {
  DPS_CHECK(r1 >= 0 && r1 < rows_ && r2 >= 0 && r2 < rows_, "swapRows out of range");
  if (r1 == r2) return;
  double* a = rowPtr(r1);
  double* b = rowPtr(r2);
  for (std::int32_t c = 0; c < cols_; ++c) std::swap(a[c], b[c]);
}

double Matrix::normF() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double testEntry(std::uint64_t seed, std::int32_t i, std::int32_t j, std::int32_t n) {
  SplitMix64 sm(seed ^ (static_cast<std::uint64_t>(i) * 0x1000003 + static_cast<std::uint64_t>(j)));
  // Two rounds to decorrelate neighbouring indices.
  sm.next();
  const double u = static_cast<double>(sm.next() >> 11) * 0x1.0p-53; // [0, 1)
  double v = 2.0 * u - 1.0;
  if (i == j) v += 4.0; // keep the matrix comfortably non-singular
  (void)n;
  return v;
}

Matrix testMatrix(std::uint64_t seed, std::int32_t n) {
  Matrix m(n, n);
  for (std::int32_t i = 0; i < n; ++i)
    for (std::int32_t j = 0; j < n; ++j) m(i, j) = testEntry(seed, i, j, n);
  return m;
}

Matrix testPanel(std::uint64_t seed, std::int32_t n, std::int32_t c0, std::int32_t width) {
  Matrix m(n, width);
  for (std::int32_t i = 0; i < n; ++i)
    for (std::int32_t j = 0; j < width; ++j) m(i, j) = testEntry(seed, i, c0 + j, n);
  return m;
}

} // namespace dps::lin
