#include "linalg/kernels.hpp"

#include <cmath>

#include "support/error.hpp"

namespace dps::lin {

void gemmSubtract(const Matrix& a, const Matrix& b, Matrix& c) {
  const std::int32_t m = a.rows();
  const std::int32_t k = a.cols();
  const std::int32_t n = b.cols();
  DPS_CHECK(b.rows() == k && c.rows() == m && c.cols() == n, "gemm shape mismatch");
  // i-k-j order: streams B and C rows sequentially (row-major friendly).
  for (std::int32_t i = 0; i < m; ++i) {
    const double* ai = a.rowPtr(i);
    double* ci = c.rowPtr(i);
    for (std::int32_t kk = 0; kk < k; ++kk) {
      const double aik = ai[kk];
      if (aik == 0.0) continue;
      const double* bk = b.rowPtr(kk);
      for (std::int32_t j = 0; j < n; ++j) ci[j] -= aik * bk[j];
    }
  }
}

Matrix gemm(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  const std::int32_t m = a.rows();
  const std::int32_t k = a.cols();
  const std::int32_t n = b.cols();
  DPS_CHECK(b.rows() == k, "gemm shape mismatch");
  for (std::int32_t i = 0; i < m; ++i) {
    const double* ai = a.rowPtr(i);
    double* ci = c.rowPtr(i);
    for (std::int32_t kk = 0; kk < k; ++kk) {
      const double aik = ai[kk];
      const double* bk = b.rowPtr(kk);
      for (std::int32_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
    }
  }
  return c;
}

void trsmLowerUnit(const Matrix& l, Matrix& b) {
  const std::int32_t k = l.rows();
  DPS_CHECK(l.cols() == k && b.rows() == k, "trsm shape mismatch");
  const std::int32_t n = b.cols();
  // Forward substitution, row by row: X[i] = B[i] - sum_{t<i} L[i,t] X[t].
  for (std::int32_t i = 1; i < k; ++i) {
    double* bi = b.rowPtr(i);
    const double* li = l.rowPtr(i);
    for (std::int32_t t = 0; t < i; ++t) {
      const double lit = li[t];
      if (lit == 0.0) continue;
      const double* bt = b.rowPtr(t);
      for (std::int32_t j = 0; j < n; ++j) bi[j] -= lit * bt[j];
    }
  }
}

bool panelLu(Matrix& panel, std::vector<std::int32_t>& pivots) {
  const std::int32_t m = panel.rows();
  const std::int32_t k = panel.cols();
  DPS_CHECK(m >= k, "panel must be tall");
  pivots.assign(k, 0);
  for (std::int32_t j = 0; j < k; ++j) {
    // Partial pivoting: largest |value| in column j at/below the diagonal.
    std::int32_t piv = j;
    double best = std::fabs(panel(j, j));
    for (std::int32_t i = j + 1; i < m; ++i) {
      const double v = std::fabs(panel(i, j));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    pivots[j] = piv;
    if (best == 0.0) return false;
    panel.swapRows(j, piv);
    const double inv = 1.0 / panel(j, j);
    for (std::int32_t i = j + 1; i < m; ++i) {
      const double lij = panel(i, j) * inv;
      panel(i, j) = lij;
      if (lij == 0.0) continue;
      double* ri = panel.rowPtr(i);
      const double* rj = panel.rowPtr(j);
      for (std::int32_t c = j + 1; c < k; ++c) ri[c] -= lij * rj[c];
    }
  }
  return true;
}

void applyPivots(Matrix& m, const std::vector<std::int32_t>& pivots, std::int32_t offset) {
  for (std::size_t j = 0; j < pivots.size(); ++j)
    m.swapRows(offset + static_cast<std::int32_t>(j), offset + pivots[j]);
}

void applyPivotsReverse(Matrix& m, const std::vector<std::int32_t>& pivots, std::int32_t offset) {
  for (std::size_t j = pivots.size(); j-- > 0;)
    m.swapRows(offset + static_cast<std::int32_t>(j), offset + pivots[j]);
}

} // namespace dps::lin
