// Dense row-major matrix used by the LU test application (paper §5).
//
// Deliberately minimal: the simulator only needs a correct, deterministic
// linear-algebra substrate, not a tuned BLAS.  Kernels live in kernels.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace dps::lin {

class Matrix {
public:
  Matrix() = default;
  Matrix(std::int32_t rows, std::int32_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows) * cols, fill) {
    DPS_CHECK(rows >= 0 && cols >= 0, "negative matrix dimensions");
  }

  std::int32_t rows() const { return rows_; }
  std::int32_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::int32_t r, std::int32_t c) {
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  double operator()(std::int32_t r, std::int32_t c) const {
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }

  double* rowPtr(std::int32_t r) { return data_.data() + static_cast<std::size_t>(r) * cols_; }
  const double* rowPtr(std::int32_t r) const {
    return data_.data() + static_cast<std::size_t>(r) * cols_;
  }
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::vector<double>& storage() { return data_; }
  const std::vector<double>& storage() const { return data_; }

  /// Copies the sub-block [r0, r0+rows) x [c0, c0+cols).
  Matrix block(std::int32_t r0, std::int32_t c0, std::int32_t rows, std::int32_t cols) const;
  /// Writes `b` into this matrix at (r0, c0).
  void setBlock(std::int32_t r0, std::int32_t c0, const Matrix& b);

  void swapRows(std::int32_t r1, std::int32_t r2);

  /// Frobenius norm.
  double normF() const;

  friend bool operator==(const Matrix&, const Matrix&) = default;

private:
  std::int32_t rows_ = 0;
  std::int32_t cols_ = 0;
  std::vector<double> data_;
};

/// Deterministic pseudo-random test matrix: entry (i, j) depends only on
/// (seed, i, j), so distributed owners can generate their blocks locally
/// and a verifier can regenerate the full matrix (no broadcast needed).
double testEntry(std::uint64_t seed, std::int32_t i, std::int32_t j, std::int32_t n);
Matrix testMatrix(std::uint64_t seed, std::int32_t n);
/// One n-row column-block panel (columns [c0, c0+width)) of the test matrix.
Matrix testPanel(std::uint64_t seed, std::int32_t n, std::int32_t c0, std::int32_t width);

} // namespace dps::lin
