// Serial block LU with partial pivoting — the reference implementation of
// the algorithm the DPS application distributes (paper §5, after Golub &
// van Loan), plus verification utilities.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"

namespace dps::lin {

struct BlockLuResult {
  /// Factored matrix: L strictly below the diagonal (unit), U on/above.
  Matrix lu;
  /// Per-level pivot vectors (local indices relative to the level's panel
  /// start), outer index = level.
  std::vector<std::vector<std::int32_t>> pivots;
};

/// Right-looking block LU with block size r (must divide n).
/// Throws on singular panels.
BlockLuResult blockLu(Matrix a, std::int32_t r);

/// Unblocked LU with partial pivoting (ground truth for tests).
BlockLuResult plainLu(Matrix a);

/// Relative residual ‖P·A − L·U‖_F / ‖A‖_F given the original matrix and a
/// factorization result.  P is reconstructed from the pivot history.
double luResidual(const Matrix& original, const BlockLuResult& f, std::int32_t r);

} // namespace dps::lin
