// Dense kernels for the block LU factorization (paper §5).
//
// These replace the BLAS/LAPACK routines the paper relies on (dgemm, dtrsm,
// dgetrf, dlaswp): deterministic, portable, cache-aware-enough triple loops.
// Flop-count helpers feed the PDEXEC cost model.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"

namespace dps::lin {

/// C -= A * B  (A: m x k, B: k x n, C: m x n).  The update form used by the
/// trailing-matrix step of right-looking LU.
void gemmSubtract(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A * B.
Matrix gemm(const Matrix& a, const Matrix& b);

/// Solves L * X = B in place (B := X) where `l` is unit lower triangular
/// (only the strictly-lower part of `l` is read).  BLAS dtrsm counterpart
/// for computing T12 = L11^{-1} A12 (paper §5 step 2).
void trsmLowerUnit(const Matrix& l, Matrix& b);

/// In-place LU factorization with partial pivoting of an m x k panel
/// (m >= k): rows [0, m) of `panel`.  On return the panel holds L below the
/// unit diagonal and U on/above it; `pivots[j]` is the row swapped into row
/// j at elimination step j (LAPACK dgetrf convention, local row indices).
/// Returns false if a zero pivot made the panel singular.
bool panelLu(Matrix& panel, std::vector<std::int32_t>& pivots);

/// Applies panel pivots to another matrix's rows (dlaswp): for each j, swap
/// rows (offset + j) and (offset + pivots[j]).
void applyPivots(Matrix& m, const std::vector<std::int32_t>& pivots, std::int32_t offset);
/// Applies pivots in reverse order (undo).
void applyPivotsReverse(Matrix& m, const std::vector<std::int32_t>& pivots, std::int32_t offset);

// --- flop counts (used by the PDEXEC cost model) ---
constexpr double gemmFlops(std::int32_t m, std::int32_t n, std::int32_t k) {
  return 2.0 * m * static_cast<double>(n) * k;
}
constexpr double trsmFlops(std::int32_t k, std::int32_t n) {
  return static_cast<double>(k) * k * n; // unit-lower solve, k x k against k x n
}
constexpr double panelLuFlops(std::int32_t m, std::int32_t k) {
  // sum_j (m - j - 1) * (k - j - 1) * 2 ~ m k^2 - k^3/3
  return 2.0 * (static_cast<double>(m) * k * k / 2.0 - static_cast<double>(k) * k * k / 6.0);
}

} // namespace dps::lin
