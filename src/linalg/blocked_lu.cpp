#include "linalg/blocked_lu.hpp"

#include "linalg/kernels.hpp"
#include "support/error.hpp"

namespace dps::lin {

BlockLuResult blockLu(Matrix a, std::int32_t r) {
  const std::int32_t n = a.rows();
  DPS_CHECK(a.cols() == n, "blockLu needs a square matrix");
  DPS_CHECK(r > 0 && n % r == 0, "block size must divide n");
  const std::int32_t levels = n / r;

  BlockLuResult out;
  out.pivots.resize(levels);

  for (std::int32_t l = 0; l < levels; ++l) {
    const std::int32_t off = l * r;
    const std::int32_t below = n - off;

    // Step 1: factor the panel (rows [off, n), columns [off, off + r)).
    Matrix panel = a.block(off, off, below, r);
    if (!panelLu(panel, out.pivots[l])) throw Error("singular panel in block LU");
    a.setBlock(off, off, panel);

    // Apply the panel's row swaps to the rest of the matrix (both the
    // trailing columns and the already-factored L columns — paper ops (b)
    // and (g)).
    for (std::size_t j = 0; j < out.pivots[l].size(); ++j) {
      const std::int32_t r1 = off + static_cast<std::int32_t>(j);
      const std::int32_t r2 = off + out.pivots[l][j];
      if (r1 == r2) continue;
      for (std::int32_t c = 0; c < off; ++c) {
        std::swap(a(r1, c), a(r2, c));
      }
      for (std::int32_t c = off + r; c < n; ++c) {
        std::swap(a(r1, c), a(r2, c));
      }
    }

    if (off + r == n) break;

    // Step 2: T12 = L11^{-1} A12 (one trsm across all trailing columns).
    const Matrix l11 = a.block(off, off, r, r);
    Matrix a12 = a.block(off, off + r, r, n - off - r);
    trsmLowerUnit(l11, a12);
    a.setBlock(off, off + r, a12);

    // Step 3: A' = B - L21 * T12.
    const Matrix l21 = a.block(off + r, off, n - off - r, r);
    Matrix b = a.block(off + r, off + r, n - off - r, n - off - r);
    gemmSubtract(l21, a12, b);
    a.setBlock(off + r, off + r, b);
  }

  out.lu = std::move(a);
  return out;
}

BlockLuResult plainLu(Matrix a) {
  BlockLuResult out;
  out.pivots.resize(1);
  if (!panelLu(a, out.pivots[0])) throw Error("singular matrix in plain LU");
  out.lu = std::move(a);
  return out;
}

double luResidual(const Matrix& original, const BlockLuResult& f, std::int32_t r) {
  const std::int32_t n = original.rows();
  // Build P * A by replaying the pivot history level by level.
  Matrix pa = original;
  for (std::size_t l = 0; l < f.pivots.size(); ++l) {
    const std::int32_t off = static_cast<std::int32_t>(l) * (f.pivots.size() == 1 ? 0 : r);
    applyPivots(pa, f.pivots[l], off);
  }

  // Extract L (unit lower) and U (upper) from the packed factor.
  Matrix lmat(n, n);
  Matrix umat(n, n);
  for (std::int32_t i = 0; i < n; ++i) {
    lmat(i, i) = 1.0;
    for (std::int32_t j = 0; j < i; ++j) lmat(i, j) = f.lu(i, j);
    for (std::int32_t j = i; j < n; ++j) umat(i, j) = f.lu(i, j);
  }

  Matrix residual = pa;
  gemmSubtract(lmat, umat, residual); // residual = P*A - L*U
  return residual.normF() / original.normF();
}

} // namespace dps::lin
