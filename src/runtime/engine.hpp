// RuntimeEngine — real concurrent execution of DPS flow-graph programs.
//
// The paper's framework runs applications either for real or under the
// simulator from the same source ("activating a compilation flag", §3).
// This engine is the "real" side: operations execute on OS worker threads
// (one per virtual node), data objects move through in-memory queues, and
// kernels always run.  It shares the programming model, the instance
// ledger, flow control and routing with the simulator, so a program that
// runs here produces byte-identical application results to a DirectExec
// simulation — the cross-validation used by the integration tests.
//
// Concurrency model: a single dispatch mutex guards all bookkeeping
// (queues, ledger, activations); operation bodies run outside the lock.
// This is deliberately coarse — correctness first; the simulator is the
// performance-measurement instrument, not this engine.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/result.hpp"
#include "flow/active_set.hpp"
#include "flow/envelope.hpp"
#include "flow/graph.hpp"
#include "flow/ledger.hpp"
#include "support/rng.hpp"

namespace dps::rt {

struct RuntimeConfig {
  /// Marker hook (called with the dispatch lock held; keep it short).
  std::function<void(const std::string&, std::int64_t)> markerHook;
  std::uint64_t seed = 42;
  /// Record wall-clock step/marker records (RunResult::trace).
  bool recordTrace = false;
};

class RuntimeEngine {
public:
  explicit RuntimeEngine(RuntimeConfig cfg = {});
  ~RuntimeEngine();
  RuntimeEngine(const RuntimeEngine&) = delete;
  RuntimeEngine& operator=(const RuntimeEngine&) = delete;

  /// Runs the program on one OS thread per deployment node; returns when
  /// the application quiesces.  Throws Error on deadlock.
  core::RunResult run(const flow::Program& program);

private:
  struct Task {
    enum class Kind : std::uint8_t { Input, Emit, Finalize } kind = Kind::Input;
    flow::Envelope env;
    std::uint64_t act = 0;
  };

  struct Activation {
    std::uint64_t id = 0;
    flow::OpId op = flow::kNoOp;
    flow::ThreadRef thread;
    std::unique_ptr<flow::Operation> impl;
    flow::InstancePath basePath;
    std::map<std::int32_t, std::uint64_t> openScopes;
    std::uint64_t closingInstance = 0;
    bool isCloser = false;
    bool inputConsumed = false;
    bool finalized = false;
    bool finalizeQueued = false;
    bool parked = false;
    /// At most one Emit task queued per activation (see SimEngine note).
    bool emitQueued = false;
    std::uint32_t inFlight = 0;
  };

  struct ThreadCtx {
    flow::ThreadRef ref;
    flow::NodeId node = -1;
    std::deque<Task> ready;
    bool busy = false;
    std::unique_ptr<flow::ThreadState> state;
    Rng rng;
  };

  class ContextImpl;
  friend class ContextImpl;

  void workerLoop(flow::NodeId node);
  /// Picks a runnable task on `node` (lock held); nullopt if none.
  std::optional<std::pair<flow::ThreadRef, Task>> pickTask(flow::NodeId node);
  /// True if any thread on `node` has runnable work (lock held).
  bool pickReady(flow::NodeId node);
  Activation& resolveInputActivation(ThreadCtx& t, const flow::Envelope& env);
  Activation& activation(std::uint64_t id);
  ThreadCtx& thread(flow::ThreadRef ref);
  /// Post-processing after a body ran (lock held): route posts, fire
  /// markers, bookkeeping, wake-ups.
  void finishTask(ThreadCtx& t, Activation& act, Task::Kind kind,
                  std::optional<flow::InstanceFrame> absorbedFrame,
                  std::vector<std::pair<serial::ObjectPtr, std::int32_t>> posts,
                  std::vector<std::pair<std::string, std::int64_t>> markers);
  void sendObject(Activation& act, serial::ObjectPtr obj, std::int32_t port);
  void drainOrPark(ThreadCtx& t, Activation& act);
  void maybeRetire(Activation& act);
  void scheduleFinalize(std::uint64_t instance);
  std::uint64_t scopeInstance(Activation& act, std::int32_t port);
  void noteWorkQueued(flow::NodeId node);
  void checkQuiescent();

  RuntimeConfig cfg_;

  std::mutex mu_;
  std::vector<std::condition_variable> nodeCv_;
  std::condition_variable doneCv_;
  bool shuttingDown_ = false;
  std::uint64_t outstanding_ = 0; // queued tasks + running bodies

  const flow::FlowGraph* graph_ = nullptr;
  const flow::Deployment* deployment_ = nullptr;
  flow::Ledger ledger_;
  std::vector<std::vector<ThreadCtx>> threads_;
  std::vector<std::vector<flow::ThreadRef>> nodeThreads_; // node -> thread refs
  std::vector<flow::ActiveSet> activeSets_;
  std::unordered_map<std::uint64_t, Activation> activations_;
  std::unordered_map<std::uint64_t, std::uint64_t> closerByInstance_;
  std::unordered_map<std::uint64_t, std::uint64_t> tokenWaiters_;
  std::vector<serial::ObjectPtr> outputs_;
  core::RunCounters counters_;
  std::shared_ptr<trace::Trace> trace_;
  std::uint64_t nextActivation_ = 1;
  std::uint64_t nextSeq_ = 1;
  std::chrono::steady_clock::time_point runStart_{};
};

} // namespace dps::rt
