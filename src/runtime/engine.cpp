#include "runtime/engine.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "support/error.hpp"

namespace dps::rt {

// ---------------------------------------------------------------------------
// OpContext: collects posts/markers during a body; applied under the lock.
// ---------------------------------------------------------------------------

class RuntimeEngine::ContextImpl final : public flow::OpContext {
public:
  // Holds no Activation reference: the activation map may rehash while the
  // body runs on another thread, so only stable data is captured.
  ContextImpl(RuntimeEngine& e, ThreadCtx& t, flow::ThreadRef ref) : e_(e), t_(t), ref_(ref) {}

  SimTime now() const override {
    const auto d = std::chrono::steady_clock::now() - e_.runStart_;
    return simEpoch() + std::chrono::duration_cast<SimDuration>(d);
  }
  std::int32_t threadIndex() const override { return ref_.index; }
  std::int32_t groupSize(flow::GroupId g) const override {
    return static_cast<std::int32_t>(e_.threads_.at(g).size());
  }
  std::span<const std::int32_t> activeThreads(flow::GroupId g) const override {
    // Safe without the lock for our usage: allocation changes happen in
    // marker hooks, which the runtime engine serializes with dispatch.
    return e_.activeSets_.at(g).indices();
  }
  flow::ThreadState* threadState() override { return t_.state.get(); }
  void post(serial::ObjectPtr obj, std::int32_t port) override {
    DPS_CHECK(obj != nullptr, "posting null data object");
    posts_.emplace_back(std::move(obj), port);
    lastPostPort_ = port;
  }
  void charge(SimDuration) override {} // modeled time is meaningless here
  bool executeKernels() const override { return true; }
  bool allocatePayloads() const override { return true; }
  void marker(std::string_view name, std::int64_t value) override {
    markers_.emplace_back(std::string(name), value);
  }
  Rng& rng() override { return t_.rng; }

  std::vector<std::pair<serial::ObjectPtr, std::int32_t>> takePosts() { return std::move(posts_); }
  std::vector<std::pair<std::string, std::int64_t>> takeMarkers() { return std::move(markers_); }
  int posts() const { return static_cast<int>(posts_.size()); }
  std::int32_t lastPostPort() const { return lastPostPort_; }

private:
  RuntimeEngine& e_;
  ThreadCtx& t_;
  flow::ThreadRef ref_;
  std::vector<std::pair<serial::ObjectPtr, std::int32_t>> posts_;
  std::vector<std::pair<std::string, std::int64_t>> markers_;
  std::int32_t lastPostPort_ = -1;
};

// ---------------------------------------------------------------------------

RuntimeEngine::RuntimeEngine(RuntimeConfig cfg) : cfg_(std::move(cfg)) {}
RuntimeEngine::~RuntimeEngine() = default;

RuntimeEngine::ThreadCtx& RuntimeEngine::thread(flow::ThreadRef ref) {
  return threads_.at(ref.group).at(ref.index);
}

RuntimeEngine::Activation& RuntimeEngine::activation(std::uint64_t id) {
  auto it = activations_.find(id);
  DPS_CHECK(it != activations_.end(), "unknown activation");
  return it->second;
}

core::RunResult RuntimeEngine::run(const flow::Program& program) {
  DPS_CHECK(program.graph != nullptr, "program has no graph");
  graph_ = program.graph;
  graph_->validate();
  program.deployment.validateAgainst(*graph_);
  deployment_ = &program.deployment;
  DPS_CHECK(!program.inputs.empty(), "program has no inputs");

  ledger_ = flow::Ledger{};
  activations_.clear();
  closerByInstance_.clear();
  tokenWaiters_.clear();
  outputs_.clear();
  counters_ = core::RunCounters{};
  trace_ = cfg_.recordTrace ? std::make_shared<trace::Trace>() : nullptr;
  nextActivation_ = 1;
  nextSeq_ = 1;
  outstanding_ = 0;
  shuttingDown_ = false;

  Rng master(cfg_.seed);
  threads_.clear();
  threads_.resize(graph_->groupCount());
  activeSets_.assign(graph_->groupCount(), flow::ActiveSet{});
  nodeThreads_.assign(static_cast<std::size_t>(deployment_->nodeCount), {});
  for (std::size_t g = 0; g < graph_->groupCount(); ++g) {
    const std::int32_t n = deployment_->threadsIn(static_cast<flow::GroupId>(g));
    activeSets_[g].reset(n);
    threads_[g].resize(n);
    const auto& stateFactory = graph_->group(static_cast<flow::GroupId>(g)).stateFactory;
    for (std::int32_t i = 0; i < n; ++i) {
      ThreadCtx& t = threads_[g][i];
      t.ref = flow::ThreadRef{static_cast<flow::GroupId>(g), i};
      t.node = deployment_->nodeOf(t.ref);
      t.rng = master.fork();
      if (stateFactory) t.state = stateFactory(i);
      nodeThreads_[t.node].push_back(t.ref);
    }
  }

  std::vector<std::condition_variable> cvs(static_cast<std::size_t>(deployment_->nodeCount));
  nodeCv_.swap(cvs);

  runStart_ = std::chrono::steady_clock::now();

  // Inject inputs, then start one worker per node.
  {
    std::lock_guard<std::mutex> lock(mu_);
    const flow::OpId entry = graph_->entryOp();
    ThreadCtx& t = threads_.at(graph_->op(entry).group).at(graph_->entryThread());
    for (const auto& obj : program.inputs) {
      flow::Envelope env;
      env.payload = obj;
      env.dstOp = entry;
      env.dst = t.ref;
      env.seq = nextSeq_++;
      t.ready.push_back(Task{Task::Kind::Input, std::move(env), 0});
      ++outstanding_;
    }
  }

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(deployment_->nodeCount));
  for (flow::NodeId n = 0; n < deployment_->nodeCount; ++n)
    workers.emplace_back([this, n] { workerLoop(n); });

  // Wait for quiescence.
  {
    std::unique_lock<std::mutex> lock(mu_);
    doneCv_.wait(lock, [this] { return outstanding_ == 0; });
    shuttingDown_ = true;
  }
  for (auto& cv : nodeCv_) cv.notify_all();
  for (auto& w : workers) w.join();

  checkQuiescent();

  core::RunResult result;
  result.makespan = std::chrono::duration_cast<SimDuration>(
      std::chrono::steady_clock::now() - runStart_);
  result.outputs = std::move(outputs_);
  result.counters = counters_;
  result.trace = trace_;
  result.threadStates.resize(threads_.size());
  for (std::size_t g = 0; g < threads_.size(); ++g)
    for (auto& t : threads_[g]) result.threadStates[g].push_back(std::move(t.state));
  result.wallSeconds = toSeconds(result.makespan);
  return result;
}

void RuntimeEngine::checkQuiescent() {
  std::lock_guard<std::mutex> lock(mu_);
  if (activations_.empty() && ledger_.liveInstances() == 0 && tokenWaiters_.empty()) return;
  std::ostringstream os;
  os << "deadlock: runtime quiesced with unfinished work: activations=" << activations_.size()
     << " liveInstances=" << ledger_.liveInstances() << " waiters=" << tokenWaiters_.size();
  throw Error(os.str());
}

void RuntimeEngine::noteWorkQueued(flow::NodeId node) { nodeCv_[node].notify_one(); }

std::optional<std::pair<flow::ThreadRef, RuntimeEngine::Task>> RuntimeEngine::pickTask(
    flow::NodeId node) {
  for (flow::ThreadRef ref : nodeThreads_[node]) {
    ThreadCtx& t = thread(ref);
    if (t.busy || t.ready.empty()) continue;
    Task task = std::move(t.ready.front());
    t.ready.pop_front();
    t.busy = true;
    return std::make_pair(ref, std::move(task));
  }
  return std::nullopt;
}

void RuntimeEngine::workerLoop(flow::NodeId node) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto picked = pickTask(node);
    if (!picked) {
      if (shuttingDown_) return;
      nodeCv_[node].wait(lock, [&] { return shuttingDown_ || pickReady(node); });
      if (shuttingDown_) return;
      continue;
    }
    auto& [ref, task] = *picked;
    ThreadCtx& t = thread(ref);

    Activation* act = nullptr;
    std::optional<flow::InstanceFrame> absorbedFrame;
    switch (task.kind) {
      case Task::Kind::Input:
        act = &resolveInputActivation(t, task.env);
        if (act->isCloser) absorbedFrame = task.env.path.back();
        act->inFlight++;
        break;
      case Task::Kind::Emit:
      case Task::Kind::Finalize:
        act = &activation(task.act);
        break;
    }
    const std::uint64_t actId = act->id;
    flow::Operation* impl = act->impl.get(); // stable: owned by unique_ptr

    ContextImpl ctx(*this, t, ref);
    std::int32_t expectedPort = -1;
    if (task.kind == Task::Kind::Emit) {
      act->emitQueued = false;
      DPS_CHECK(impl->hasPending(), "emit dispatched with nothing pending");
      expectedPort = impl->pendingPort();
    }

    // Run the body WITHOUT the lock: this is where real kernels execute
    // concurrently across nodes.
    lock.unlock();
    const SimTime bodyStart = ctx.now();
    switch (task.kind) {
      case Task::Kind::Input:
        impl->onInput(ctx, *task.env.payload);
        break;
      case Task::Kind::Emit:
        impl->emitOne(ctx);
        break;
      case Task::Kind::Finalize:
        impl->onAllInputsDone(ctx);
        break;
    }
    lock.lock();

    Activation& actRef = activation(actId); // revalidate after relock
    if (task.kind == Task::Kind::Input) actRef.inputConsumed = true;
    if (task.kind == Task::Kind::Emit) {
      DPS_CHECK(ctx.posts() == 1, "emitOne must post exactly one object");
      DPS_CHECK(ctx.lastPostPort() == expectedPort,
                "emitOne posted on a different port than pendingPort()");
    }
    counters_.steps++;
    if (trace_) {
      trace::StepRecord rec;
      rec.node = node;
      rec.thread = ref;
      rec.op = actRef.op;
      rec.kind = task.kind == Task::Kind::Input     ? trace::StepKind::Input
                 : task.kind == Task::Kind::Emit    ? trace::StepKind::Emit
                                                    : trace::StepKind::Finalize;
      rec.start = bodyStart;
      rec.end = ctx.now();
      rec.work = rec.end - rec.start;
      trace_->add(std::move(rec));
    }
    finishTask(t, actRef, task.kind, absorbedFrame, ctx.takePosts(), ctx.takeMarkers());
  }
}

bool RuntimeEngine::pickReady(flow::NodeId node) {
  for (flow::ThreadRef ref : nodeThreads_[node]) {
    ThreadCtx& t = thread(ref);
    if (!t.busy && !t.ready.empty()) return true;
  }
  return false;
}

RuntimeEngine::Activation& RuntimeEngine::resolveInputActivation(ThreadCtx& t,
                                                                 const flow::Envelope& env) {
  const flow::OpSpec& spec = graph_->op(env.dstOp);
  if (spec.kind == flow::OpKind::Leaf || spec.kind == flow::OpKind::Split) {
    const std::uint64_t id = nextActivation_++;
    Activation a;
    a.id = id;
    a.op = env.dstOp;
    a.thread = t.ref;
    a.impl = spec.factory();
    a.basePath = env.path;
    return activations_.emplace(id, std::move(a)).first->second;
  }
  DPS_CHECK(!env.path.empty(),
            "object reached closer '" + spec.name + "' without an enclosing scope");
  const flow::InstanceFrame& frame = env.path.back();
  DPS_CHECK(graph_->closerOf(frame.opener, frame.port) == env.dstOp,
            "object arrived at non-matching closer '" + spec.name + "'");
  if (auto it = closerByInstance_.find(frame.instance); it != closerByInstance_.end()) {
    Activation& a = activation(it->second);
    DPS_CHECK(a.thread == t.ref, "closer instance received objects on two threads");
    return a;
  }
  const std::uint64_t id = nextActivation_++;
  Activation a;
  a.id = id;
  a.op = env.dstOp;
  a.thread = t.ref;
  a.impl = spec.factory();
  a.basePath = env.path;
  a.basePath.pop_back();
  a.isCloser = true;
  a.closingInstance = frame.instance;
  closerByInstance_[frame.instance] = id;
  return activations_.emplace(id, std::move(a)).first->second;
}

std::uint64_t RuntimeEngine::scopeInstance(Activation& act, std::int32_t port) {
  if (auto it = act.openScopes.find(port); it != act.openScopes.end()) return it->second;
  DPS_CHECK(graph_->closerOf(act.op, port) != flow::kNoOp,
            "op '" + graph_->op(act.op).name + "' has no scope on port " + std::to_string(port));
  const auto fc = graph_->flowControlOf(act.op, port);
  const std::uint64_t inst = ledger_.openInstance(act.op, fc.maxInFlight);
  act.openScopes.emplace(port, inst);
  return inst;
}

void RuntimeEngine::sendObject(Activation& act, serial::ObjectPtr obj, std::int32_t port) {
  const flow::OpSpec& spec = graph_->op(act.op);
  flow::Envelope env;
  env.payload = obj;
  env.srcOp = act.op;
  env.src = act.thread;
  env.path = act.basePath;
  std::uint64_t rcEmission = act.basePath.empty() ? 0 : act.basePath.back().emission;

  if (graph_->closerOf(act.op, port) != flow::kNoOp) {
    const std::uint64_t inst = scopeInstance(act, port);
    DPS_CHECK(ledger_.canEmit(inst),
              "flow-controlled port posted without a token; use hasPending()/emitOne()");
    const std::uint64_t emission = ledger_.recordEmission(inst);
    env.path.push_back(flow::InstanceFrame{act.op, port, inst, emission});
    rcEmission = emission;
  }

  counters_.messages++;

  if (graph_->isOutputPort(act.op, port)) {
    outputs_.push_back(std::move(obj));
    return;
  }

  const auto edgeIdx = graph_->edgeAt(act.op, port);
  DPS_CHECK(edgeIdx.has_value(),
            "op '" + spec.name + "' posted on unconnected port " + std::to_string(port));
  const flow::EdgeSpec& edge = graph_->edge(*edgeIdx);
  const flow::GroupId dstGroup = graph_->op(edge.to).group;

  flow::RouteContext rc;
  rc.srcThreadIndex = act.thread.index;
  rc.dstGroupSize = static_cast<std::int32_t>(threads_.at(dstGroup).size());
  rc.dstActive = activeSets_.at(dstGroup).indices();
  rc.emission = rcEmission;
  rc.seq = nextSeq_;
  const std::int32_t dstIdx = edge.route(rc, *obj);
  DPS_CHECK(dstIdx >= 0 && dstIdx < rc.dstGroupSize, "routing out of range");

  env.dstOp = edge.to;
  env.dst = flow::ThreadRef{dstGroup, dstIdx};
  env.seq = nextSeq_++;
  env.wireBytes = obj->wireSize() + 64;
  const flow::NodeId dstNode = deployment_->nodeOf(env.dst);
  if (dstNode != thread(act.thread).node) counters_.networkBytes += env.wireBytes;

  ThreadCtx& dst = thread(env.dst);
  dst.ready.push_back(Task{Task::Kind::Input, std::move(env), 0});
  ++outstanding_;
  noteWorkQueued(dstNode);
}

void RuntimeEngine::finishTask(ThreadCtx& t, Activation& act, Task::Kind kind,
                               std::optional<flow::InstanceFrame> absorbedFrame,
                               std::vector<std::pair<serial::ObjectPtr, std::int32_t>> posts,
                               std::vector<std::pair<std::string, std::int64_t>> markers) {
  // Route collected posts first (they belong to the completed step).
  for (auto& [obj, port] : posts) sendObject(act, std::move(obj), port);
  for (auto& [name, value] : markers) {
    if (trace_) {
      const auto d = std::chrono::steady_clock::now() - runStart_;
      trace_->add(trace::MarkerRecord{name, value,
                                      simEpoch() + std::chrono::duration_cast<SimDuration>(d)});
    }
    if (cfg_.markerHook) cfg_.markerHook(name, value);
  }

  DPS_CHECK(act.inFlight > 0, "task accounting underflow");
  act.inFlight--;

  if (kind == Task::Kind::Input && act.isCloser) {
    DPS_CHECK(absorbedFrame.has_value(), "closer input without frame");
    const std::uint64_t inst = absorbedFrame->instance;
    const bool completed = ledger_.recordAbsorb(inst);
    if (ledger_.releaseToken(inst)) {
      if (auto it = tokenWaiters_.find(inst); it != tokenWaiters_.end()) {
        Activation& waiter = activation(it->second);
        tokenWaiters_.erase(it);
        waiter.parked = false;
        DPS_CHECK(!waiter.emitQueued, "parked activation had a queued emit");
        waiter.emitQueued = true;
        waiter.inFlight++;
        ThreadCtx& wt = thread(waiter.thread);
        wt.ready.push_back(Task{Task::Kind::Emit, {}, waiter.id});
        ++outstanding_;
        noteWorkQueued(wt.node);
      }
    }
    if (completed) scheduleFinalize(inst);
  }

  if (kind == Task::Kind::Finalize) {
    act.finalized = true;
    closerByInstance_.erase(act.closingInstance);
    ledger_.erase(act.closingInstance);
  }

  drainOrPark(t, act);
  maybeRetire(act);
  t.busy = false;

  DPS_CHECK(outstanding_ > 0, "outstanding work underflow");
  --outstanding_;
  if (outstanding_ == 0) doneCv_.notify_all();
  else noteWorkQueued(t.node);
}

void RuntimeEngine::drainOrPark(ThreadCtx& t, Activation& act) {
  if (act.parked || act.emitQueued || !act.impl->hasPending()) return;
  const std::int32_t port = act.impl->pendingPort();
  const std::uint64_t inst = scopeInstance(act, port);
  if (ledger_.canEmit(inst)) {
    act.emitQueued = true;
    act.inFlight++;
    t.ready.push_front(Task{Task::Kind::Emit, {}, act.id});
    ++outstanding_;
  } else {
    act.parked = true;
    DPS_CHECK(tokenWaiters_.emplace(inst, act.id).second, "two emitters parked on one instance");
  }
}

void RuntimeEngine::maybeRetire(Activation& act) {
  if (act.inFlight > 0 || act.parked || act.emitQueued || act.impl->hasPending()) return;
  const flow::OpSpec& spec = graph_->op(act.op);
  bool done = false;
  switch (spec.kind) {
    case flow::OpKind::Leaf:
    case flow::OpKind::Split:
      done = act.inputConsumed;
      break;
    case flow::OpKind::Merge:
    case flow::OpKind::Stream:
      done = act.finalized;
      break;
  }
  if (!done) return;
  for (const auto& [port, inst] : act.openScopes) {
    (void)port;
    if (ledger_.closeEmitter(inst)) scheduleFinalize(inst);
  }
  activations_.erase(act.id);
}

void RuntimeEngine::scheduleFinalize(std::uint64_t instance) {
  auto it = closerByInstance_.find(instance);
  DPS_CHECK(it != closerByInstance_.end(), "completed instance has no closer activation");
  Activation& a = activation(it->second);
  DPS_CHECK(!a.finalizeQueued, "instance finalized twice");
  a.finalizeQueued = true;
  a.inFlight++;
  ThreadCtx& t = thread(a.thread);
  t.ready.push_back(Task{Task::Kind::Finalize, {}, a.id});
  ++outstanding_;
  noteWorkQueued(t.node);
}

} // namespace dps::rt
