// Malleability controller: executes an allocation plan against a running
// simulation (paper §6/§8, "kill N threads after iteration k", extended to
// the §9 direction of true dynamic allocation with grow steps).
//
// At each iteration marker the controller deactivates the scheduled worker
// threads and migrates their column blocks to the remaining active workers
// (updating the shared ColumnDirectory, moving the thread-state data, and
// injecting the corresponding network transfers so the migration cost is
// modeled).  The column whose panel factorization is about to run — column
// `iteration` — stays pinned on its current owner until the next boundary;
// a thread still holding pinned columns is deallocated once they migrate.
//
// Grow steps reverse the process: a previously removed worker is
// reactivated at an iteration boundary and still-unfactored columns are
// rebalanced onto it from the most loaded active workers, injecting the
// reverse migration transfers — so shrink and grow traffic are both part of
// the predicted cost.
//
// With RemovalPolicy::MultOnly threads are merely excluded from the
// round-robin multiplication routing and keep their columns — an ablation
// that isolates load redistribution from node deallocation.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "core/engine.hpp"
#include "lu/builder.hpp"
#include "malleable/plan.hpp"
#include "obs/registry.hpp"

namespace dps::mall {

enum class RemovalPolicy : std::uint8_t {
  MigrateColumns, // full deallocation: columns move, nodes free up
  MultOnly,       // only multiplication work leaves the thread
};

/// Online allocation policy (the paper's future-work direction, §9):
/// after each iteration, evaluate the dynamic efficiency of the interval
/// just completed; whenever it falls below `threshold`, release
/// `shrinkFraction` of the remaining workers (never below `minWorkers`).
struct EfficiencyPolicy {
  double threshold = 0.35;
  double shrinkFraction = 0.5;
  std::int32_t minWorkers = 2;
};

class LuMalleabilityController {
public:
  /// Installs itself as the engine's marker hook.  The controller must
  /// outlive the engine run.
  LuMalleabilityController(core::SimEngine& engine, lu::LuBuild& build, AllocationPlan plan,
                           RemovalPolicy policy = RemovalPolicy::MigrateColumns);

  /// Online variant: no fixed plan; threads are released whenever the
  /// measured per-iteration efficiency drops below the policy threshold.
  /// Requires the engine to record a trace.
  LuMalleabilityController(core::SimEngine& engine, lu::LuBuild& build,
                           EfficiencyPolicy policy);

  /// Attaches migration metrics (mall.shrinks/grows, per-direction byte
  /// counters, a per-column-move size histogram).  Call before the engine
  /// run; a null registry detaches.  Observation only — the controller's
  /// decisions and byte accounting are identical either way.
  void observeWith(obs::Registry* metrics);

  /// Threads removed so far and not re-added (for tests).
  const std::set<std::int32_t>& removed() const { return removed_; }
  /// Total bytes moved by column migrations, both directions.
  std::uint64_t migratedBytes() const { return shrinkMigratedBytes_ + growMigratedBytes_; }
  /// Bytes moved off shrinking workers / back onto regrown workers.
  std::uint64_t shrinkMigratedBytes() const { return shrinkMigratedBytes_; }
  std::uint64_t growMigratedBytes() const { return growMigratedBytes_; }
  /// Per-iteration efficiencies observed by the online policy.
  const std::vector<double>& observedEfficiencies() const { return observedEff_; }

private:
  /// Applies plan steps scheduled at iteration 0: removals that take effect
  /// before the first compute segment (a replayed job that started below
  /// the build's worker count).  Grow steps at iteration 0 are rejected —
  /// there is nothing removed yet to re-add.
  void onRunStart();
  void onMarker(const std::string& name, std::int64_t value, SimTime when);
  void applyStep(const RemovalStep& step, std::int64_t iteration);
  void applyGrow(const GrowStep& step, std::int64_t iteration);
  /// Moves still-unfactored columns from the most loaded active workers
  /// onto the regrown `thread` until it holds an even share.
  void rebalanceOnto(std::int32_t thread, std::int64_t iteration);
  /// Online policy: evaluate the finished interval, maybe shrink.
  void evaluateEfficiency(std::int64_t iteration, SimTime when);
  /// Migrates all movable columns off `thread`; defers the pinned column.
  void migrateColumns(std::int32_t fromThread, std::int64_t iteration);
  /// Moves one column and returns the bytes transferred.
  std::uint64_t moveColumn(std::int32_t col, std::int32_t fromThread, std::int32_t toThread);
  /// Picks the active thread with the fewest owned columns.
  std::int32_t leastLoadedActive() const;

  core::SimEngine& engine_;
  lu::LuBuild& build_;
  AllocationPlan plan_;
  RemovalPolicy policy_;
  std::optional<EfficiencyPolicy> efficiencyPolicy_;
  std::set<std::int32_t> removed_;
  /// Threads waiting for a pinned column to become movable.
  std::set<std::int32_t> pendingMigration_;
  std::uint64_t shrinkMigratedBytes_ = 0;
  std::uint64_t growMigratedBytes_ = 0;
  SimTime lastMarker_{};
  std::vector<double> observedEff_;
  // Null-safe metric handles (no-ops until observeWith attaches a registry).
  obs::Counter obsShrinks_;
  obs::Counter obsGrows_;
  obs::Counter obsShrinkBytes_;
  obs::Counter obsGrowBytes_;
  obs::Histogram obsMoveBytes_;
};

} // namespace dps::mall
