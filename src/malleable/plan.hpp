// Allocation plans: which threads to remove after which iteration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dps::mall {

struct RemovalStep {
  std::int64_t afterIteration = 0;    // applied at marker ("iteration", v)
  std::vector<std::int32_t> threads;  // worker thread indices to remove
};

struct AllocationPlan {
  std::vector<RemovalStep> steps;

  bool empty() const { return steps.empty(); }

  /// The paper's Fig. 12 strategies:
  ///   killAfter({{1, {4,5,6,7}}})          — "kill 4 after it. 1"
  ///   killAfter({{2, {6,7}}, {3, {4,5}}})  — "kill 2 after it. 2 + 2 after it. 3"
  static AllocationPlan killAfter(std::vector<RemovalStep> steps) {
    AllocationPlan p;
    p.steps = std::move(steps);
    return p;
  }

  std::string describe() const;
};

} // namespace dps::mall
