// Allocation plans: which threads to remove or re-add after which iteration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dps::mall {

struct RemovalStep {
  std::int64_t afterIteration = 0;    // applied at marker ("iteration", v)
  std::vector<std::int32_t> threads;  // worker thread indices to remove
};

/// Re-adds previously removed workers at an iteration boundary.  The
/// controller reactivates them and rebalances column ownership back onto
/// them, modeling the reverse migration traffic — the "true dynamic
/// allocation" direction of the paper's §9 (grow as well as shrink).
struct GrowStep {
  std::int64_t afterIteration = 0;
  std::vector<std::int32_t> threads;  // worker thread indices to re-add
};

struct AllocationPlan {
  std::vector<RemovalStep> steps;
  std::vector<GrowStep> grows;

  bool empty() const { return steps.empty() && grows.empty(); }

  /// The paper's Fig. 12 strategies:
  ///   killAfter({{1, {4,5,6,7}}})          — "kill 4 after it. 1"
  ///   killAfter({{2, {6,7}}, {3, {4,5}}})  — "kill 2 after it. 2 + 2 after it. 3"
  static AllocationPlan killAfter(std::vector<RemovalStep> steps) {
    AllocationPlan p;
    p.steps = std::move(steps);
    return p;
  }

  /// Appends a grow step; returns *this so shrink-then-grow plans chain:
  ///   AllocationPlan::killAfter({{2, {2,3}}}).thenGrow(5, {2,3})
  AllocationPlan& thenGrow(std::int64_t afterIteration, std::vector<std::int32_t> threads) {
    grows.push_back(GrowStep{afterIteration, std::move(threads)});
    return *this;
  }

  std::string describe() const;
};

} // namespace dps::mall
