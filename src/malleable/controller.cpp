#include "malleable/controller.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "lu/state.hpp"
#include "support/error.hpp"
#include "support/log.hpp"

namespace dps::mall {

std::string AllocationPlan::describe() const {
  if (steps.empty()) return "static";
  std::ostringstream os;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (i) os << " + ";
    os << "kill " << steps[i].threads.size() << " after it. " << steps[i].afterIteration;
  }
  return os.str();
}

LuMalleabilityController::LuMalleabilityController(core::SimEngine& engine, lu::LuBuild& build,
                                                   AllocationPlan plan, RemovalPolicy policy)
    : engine_(engine), build_(build), plan_(std::move(plan)), policy_(policy) {
  engine_.setMarkerHook([this](const std::string& name, std::int64_t value, SimTime when) {
    onMarker(name, value, when);
  });
}

LuMalleabilityController::LuMalleabilityController(core::SimEngine& engine, lu::LuBuild& build,
                                                   EfficiencyPolicy policy)
    : engine_(engine),
      build_(build),
      policy_(RemovalPolicy::MigrateColumns),
      efficiencyPolicy_(policy) {
  engine_.setMarkerHook([this](const std::string& name, std::int64_t value, SimTime when) {
    onMarker(name, value, when);
  });
}

void LuMalleabilityController::evaluateEfficiency(std::int64_t iteration, SimTime when) {
  const trace::Trace* trace = engine_.liveTrace();
  DPS_CHECK(trace != nullptr, "efficiency policy requires trace recording");
  if (when <= lastMarker_) return;
  const double nodeSeconds = trace->nodeSecondsIn(lastMarker_, when);
  const double eff =
      nodeSeconds > 0 ? toSeconds(trace->workIn(lastMarker_, when)) / nodeSeconds : 0.0;
  observedEff_.push_back(eff);
  lastMarker_ = when;

  const EfficiencyPolicy& p = *efficiencyPolicy_;
  if (eff >= p.threshold) return;
  // Release a fraction of the still-active workers, highest indices first
  // (never the entry thread, never below minWorkers).
  std::vector<std::int32_t> active;
  for (std::int32_t t = 0; t < build_.cfg.workers; ++t)
    if (!removed_.count(t)) active.push_back(t);
  const auto current = static_cast<std::int32_t>(active.size());
  std::int32_t toRemove = std::min<std::int32_t>(
      static_cast<std::int32_t>(static_cast<double>(current) * p.shrinkFraction),
      current - p.minWorkers);
  if (toRemove <= 0) return;
  RemovalStep step;
  step.afterIteration = iteration;
  for (std::int32_t i = 0; i < toRemove; ++i) {
    const std::int32_t victim = active[active.size() - 1 - i];
    if (victim == 0) break; // keep the entry thread
    step.threads.push_back(victim);
  }
  if (!step.threads.empty()) {
    DPS_INFO("efficiency ", eff, " below threshold ", p.threshold, ": releasing ",
             step.threads.size(), " workers after iteration ", iteration);
    applyStep(step, iteration);
  }
}

void LuMalleabilityController::onMarker(const std::string& name, std::int64_t value,
                                        SimTime when) {
  if (name != "iteration") return;
  if (efficiencyPolicy_) evaluateEfficiency(value, when);
  for (const RemovalStep& step : plan_.steps)
    if (step.afterIteration == value) applyStep(step, value);

  if (policy_ == RemovalPolicy::MigrateColumns) {
    // Retry deferred migrations: the previously pinned column is movable now.
    for (auto it = pendingMigration_.begin(); it != pendingMigration_.end();) {
      const std::int32_t t = *it;
      migrateColumns(t, value);
      const bool empty = build_.directory->columnsOf(t).empty();
      if (empty) {
        engine_.deactivateThread(build_.workersGroup, t);
        it = pendingMigration_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void LuMalleabilityController::applyStep(const RemovalStep& step, std::int64_t iteration) {
  for (std::int32_t t : step.threads) {
    DPS_CHECK(!removed_.count(t), "thread removed twice by the allocation plan");
    removed_.insert(t);
    if (policy_ == RemovalPolicy::MultOnly) {
      engine_.deactivateThread(build_.workersGroup, t);
      continue;
    }
    migrateColumns(t, iteration);
    if (build_.directory->columnsOf(t).empty()) {
      engine_.deactivateThread(build_.workersGroup, t);
    } else {
      // A pinned column stays until the next boundary; the thread is
      // deallocated once it leaves.
      pendingMigration_.insert(t);
    }
  }
}

std::int32_t LuMalleabilityController::leastLoadedActive() const {
  std::int32_t best = -1;
  std::size_t bestLoad = std::numeric_limits<std::size_t>::max();
  for (std::int32_t t = 0; t < build_.cfg.workers; ++t) {
    if (removed_.count(t)) continue;
    const std::size_t load = build_.directory->columnsOf(t).size();
    if (load < bestLoad) {
      bestLoad = load;
      best = t;
    }
  }
  DPS_CHECK(best >= 0, "no active thread left to receive columns");
  return best;
}

void LuMalleabilityController::migrateColumns(std::int32_t fromThread, std::int64_t iteration) {
  for (std::int32_t col : build_.directory->columnsOf(fromThread)) {
    // Column `iteration` is pinned: its panel factorization is the next
    // compute segment on its current owner (see header).
    if (col == iteration) continue;
    moveColumn(col, fromThread, leastLoadedActive());
  }
}

void LuMalleabilityController::moveColumn(std::int32_t col, std::int32_t fromThread,
                                          std::int32_t toThread) {
  auto* from = dynamic_cast<lu::LuThreadState*>(
      engine_.threadStateDuringRun(build_.workersGroup, fromThread));
  auto* to = dynamic_cast<lu::LuThreadState*>(
      engine_.threadStateDuringRun(build_.workersGroup, toThread));
  DPS_CHECK(from != nullptr && to != nullptr, "worker states missing during migration");

  const std::size_t bytes =
      static_cast<std::size_t>(build_.cfg.n) * build_.cfg.r * sizeof(double);

  if (auto it = from->columns.find(col); it != from->columns.end()) {
    to->columns.emplace(col, std::move(it->second));
    from->columns.erase(it);
  } else {
    DPS_CHECK(from->phantomColumns.erase(col) == 1,
              "migrating a column the source thread does not own");
    to->phantomColumns.insert(col);
  }
  // Pivot history moves with the panels it belongs to (verification only).
  for (auto it = from->pivotsByLevel.begin(); it != from->pivotsByLevel.end();) {
    if (it->first == col) {
      to->pivotsByLevel[it->first] = std::move(it->second);
      it = from->pivotsByLevel.erase(it);
    } else {
      ++it;
    }
  }

  build_.directory->setOwner(col, toThread);
  engine_.injectTransfer(engine_.nodeOfThread(build_.workersGroup, fromThread),
                         engine_.nodeOfThread(build_.workersGroup, toThread), bytes);
  migratedBytes_ += bytes;
  DPS_INFO("migrated column ", col, " from thread ", fromThread, " to ", toThread);
}

} // namespace dps::mall
