#include "malleable/controller.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "lu/state.hpp"
#include "support/error.hpp"
#include "support/log.hpp"

namespace dps::mall {

std::string AllocationPlan::describe() const {
  if (empty()) return "static";
  std::ostringstream os;
  bool first = true;
  for (const RemovalStep& s : steps) {
    if (!first) os << " + ";
    first = false;
    os << "kill " << s.threads.size() << " after it. " << s.afterIteration;
  }
  for (const GrowStep& g : grows) {
    if (!first) os << " + ";
    first = false;
    os << "grow " << g.threads.size() << " after it. " << g.afterIteration;
  }
  return os.str();
}

LuMalleabilityController::LuMalleabilityController(core::SimEngine& engine, lu::LuBuild& build,
                                                   AllocationPlan plan, RemovalPolicy policy)
    : engine_(engine), build_(build), plan_(std::move(plan)), policy_(policy) {
  engine_.setMarkerHook([this](const std::string& name, std::int64_t value, SimTime when) {
    onMarker(name, value, when);
  });
  engine_.setRunStartHook([this] { onRunStart(); });
}

LuMalleabilityController::LuMalleabilityController(core::SimEngine& engine, lu::LuBuild& build,
                                                   EfficiencyPolicy policy)
    : engine_(engine),
      build_(build),
      policy_(RemovalPolicy::MigrateColumns),
      efficiencyPolicy_(policy) {
  engine_.setMarkerHook([this](const std::string& name, std::int64_t value, SimTime when) {
    onMarker(name, value, when);
  });
  engine_.setRunStartHook([this] { onRunStart(); });
}

void LuMalleabilityController::observeWith(obs::Registry* metrics) {
  if (metrics == nullptr) {
    obsShrinks_ = obs::Counter{};
    obsGrows_ = obs::Counter{};
    obsShrinkBytes_ = obs::Counter{};
    obsGrowBytes_ = obs::Counter{};
    obsMoveBytes_ = obs::Histogram{};
    return;
  }
  obsShrinks_ = metrics->counter("mall.shrinks");
  obsGrows_ = metrics->counter("mall.grows");
  obsShrinkBytes_ = metrics->counter("mall.shrink_bytes");
  obsGrowBytes_ = metrics->counter("mall.grow_bytes");
  obsMoveBytes_ = metrics->histogram("mall.move_bytes", obs::bytesBounds());
}

void LuMalleabilityController::evaluateEfficiency(std::int64_t iteration, SimTime when) {
  const trace::Trace* trace = engine_.liveTrace();
  DPS_CHECK(trace != nullptr, "efficiency policy requires trace recording");
  if (when <= lastMarker_) return;
  const double nodeSeconds = trace->nodeSecondsIn(lastMarker_, when);
  const double eff =
      nodeSeconds > 0 ? toSeconds(trace->workIn(lastMarker_, when)) / nodeSeconds : 0.0;
  observedEff_.push_back(eff);
  lastMarker_ = when;

  const EfficiencyPolicy& p = *efficiencyPolicy_;
  if (eff >= p.threshold) return;
  // Release a fraction of the still-active workers, highest indices first
  // (never the entry thread, never below minWorkers).
  std::vector<std::int32_t> active;
  for (std::int32_t t = 0; t < build_.cfg.workers; ++t)
    if (!removed_.count(t)) active.push_back(t);
  const auto current = static_cast<std::int32_t>(active.size());
  std::int32_t toRemove = std::min<std::int32_t>(
      static_cast<std::int32_t>(static_cast<double>(current) * p.shrinkFraction),
      current - p.minWorkers);
  if (toRemove <= 0) return;
  RemovalStep step;
  step.afterIteration = iteration;
  for (std::int32_t i = 0; i < toRemove; ++i) {
    const std::int32_t victim = active[active.size() - 1 - i];
    if (victim == 0) break; // keep the entry thread
    step.threads.push_back(victim);
  }
  if (!step.threads.empty()) {
    DPS_INFO("efficiency ", eff, " below threshold ", p.threshold, ": releasing ",
             step.threads.size(), " workers after iteration ", iteration);
    applyStep(step, iteration);
  }
}

void LuMalleabilityController::onRunStart() {
  for (const GrowStep& step : plan_.grows)
    DPS_CHECK(step.afterIteration > 0, "grow step at iteration 0 re-adds before any removal");
  for (const RemovalStep& step : plan_.steps)
    if (step.afterIteration == 0) applyStep(step, 0);
}

void LuMalleabilityController::onMarker(const std::string& name, std::int64_t value,
                                        SimTime when) {
  if (name != "iteration") return;
  if (efficiencyPolicy_) evaluateEfficiency(value, when);
  for (const RemovalStep& step : plan_.steps)
    if (step.afterIteration == value) applyStep(step, value);
  for (const GrowStep& step : plan_.grows)
    if (step.afterIteration == value) applyGrow(step, value);

  if (policy_ == RemovalPolicy::MigrateColumns) {
    // Retry deferred migrations: the previously pinned column is movable now.
    for (auto it = pendingMigration_.begin(); it != pendingMigration_.end();) {
      const std::int32_t t = *it;
      migrateColumns(t, value);
      const bool empty = build_.directory->columnsOf(t).empty();
      if (empty) {
        engine_.deactivateThread(build_.workersGroup, t);
        it = pendingMigration_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void LuMalleabilityController::applyStep(const RemovalStep& step, std::int64_t iteration) {
  for (std::int32_t t : step.threads) {
    DPS_CHECK(!removed_.count(t), "thread removed twice by the allocation plan");
    removed_.insert(t);
    obsShrinks_.add();
    if (policy_ == RemovalPolicy::MultOnly) {
      engine_.deactivateThread(build_.workersGroup, t);
      continue;
    }
    migrateColumns(t, iteration);
    if (build_.directory->columnsOf(t).empty()) {
      engine_.deactivateThread(build_.workersGroup, t);
    } else {
      // A pinned column stays until the next boundary; the thread is
      // deallocated once it leaves.
      pendingMigration_.insert(t);
    }
  }
}

void LuMalleabilityController::applyGrow(const GrowStep& step, std::int64_t iteration) {
  for (std::int32_t t : step.threads) {
    DPS_CHECK(removed_.count(t) > 0, "grow step re-adds a thread that was never removed");
    removed_.erase(t);
    obsGrows_.add();
    // A thread still draining a pinned column was never engine-deactivated;
    // activateThread is a no-op for it and the drain is simply abandoned.
    pendingMigration_.erase(t);
    engine_.activateThread(build_.workersGroup, t);
    DPS_INFO("re-added thread ", t, " after iteration ", iteration);
    if (policy_ == RemovalPolicy::MigrateColumns) rebalanceOnto(t, iteration);
  }
}

void LuMalleabilityController::rebalanceOnto(std::int32_t thread, std::int64_t iteration) {
  // Only columns whose panel factorization has not run yet carry future
  // work; completed columns stay put (moving them buys nothing).  Column
  // `iteration` is pinned exactly as during shrink migration.
  const auto futureLoad = [&](std::int32_t t) {
    std::int32_t load = 0;
    for (std::int32_t col : build_.directory->columnsOf(t))
      if (col > iteration) ++load;
    return load;
  };
  std::vector<std::int32_t> active;
  std::int32_t future = 0;
  for (std::int32_t t = 0; t < build_.cfg.workers; ++t) {
    if (removed_.count(t)) continue;
    active.push_back(t);
    future += futureLoad(t);
  }
  // Ceil target: with fewer future columns than workers the regrown thread
  // still takes one whenever any donor holds strictly more than it — the
  // point of growing is that re-added nodes carry work again.
  const auto activeCount = static_cast<std::int32_t>(active.size());
  const std::int32_t target = (future + activeCount - 1) / activeCount;
  while (futureLoad(thread) < target) {
    // Donor: the most loaded active thread (ties -> lowest index).
    std::int32_t donor = -1;
    std::int32_t donorLoad = 0;
    for (std::int32_t t : active) {
      if (t == thread) continue;
      const std::int32_t load = futureLoad(t);
      if (load > donorLoad) {
        donorLoad = load;
        donor = t;
      }
    }
    if (donor < 0 || donorLoad <= futureLoad(thread)) break; // nothing to gain
    // Move the donor's deepest trailing column: it carries the most
    // remaining multiplication work.
    std::int32_t col = -1;
    for (std::int32_t c : build_.directory->columnsOf(donor))
      if (c > iteration) col = c;
    DPS_CHECK(col >= 0, "donor lost its future columns mid-rebalance");
    const std::uint64_t moved = moveColumn(col, donor, thread);
    growMigratedBytes_ += moved;
    obsGrowBytes_.add(moved);
  }
}

std::int32_t LuMalleabilityController::leastLoadedActive() const {
  std::int32_t best = -1;
  std::size_t bestLoad = std::numeric_limits<std::size_t>::max();
  for (std::int32_t t = 0; t < build_.cfg.workers; ++t) {
    if (removed_.count(t)) continue;
    const std::size_t load = build_.directory->columnsOf(t).size();
    if (load < bestLoad) {
      bestLoad = load;
      best = t;
    }
  }
  DPS_CHECK(best >= 0, "no active thread left to receive columns");
  return best;
}

void LuMalleabilityController::migrateColumns(std::int32_t fromThread, std::int64_t iteration) {
  for (std::int32_t col : build_.directory->columnsOf(fromThread)) {
    // Column `iteration` is pinned: its panel factorization is the next
    // compute segment on its current owner (see header).
    if (col == iteration) continue;
    const std::uint64_t moved = moveColumn(col, fromThread, leastLoadedActive());
    shrinkMigratedBytes_ += moved;
    obsShrinkBytes_.add(moved);
  }
}

std::uint64_t LuMalleabilityController::moveColumn(std::int32_t col, std::int32_t fromThread,
                                                   std::int32_t toThread) {
  auto* from = dynamic_cast<lu::LuThreadState*>(
      engine_.threadStateDuringRun(build_.workersGroup, fromThread));
  auto* to = dynamic_cast<lu::LuThreadState*>(
      engine_.threadStateDuringRun(build_.workersGroup, toThread));
  DPS_CHECK(from != nullptr && to != nullptr, "worker states missing during migration");

  const std::size_t bytes =
      static_cast<std::size_t>(build_.cfg.n) * build_.cfg.r * sizeof(double);

  if (auto it = from->columns.find(col); it != from->columns.end()) {
    to->columns.emplace(col, std::move(it->second));
    from->columns.erase(it);
  } else {
    DPS_CHECK(from->phantomColumns.erase(col) == 1,
              "migrating a column the source thread does not own");
    to->phantomColumns.insert(col);
  }
  // Pivot history moves with the panels it belongs to (verification only).
  for (auto it = from->pivotsByLevel.begin(); it != from->pivotsByLevel.end();) {
    if (it->first == col) {
      to->pivotsByLevel[it->first] = std::move(it->second);
      it = from->pivotsByLevel.erase(it);
    } else {
      ++it;
    }
  }

  build_.directory->setOwner(col, toThread);
  obsMoveBytes_.observe(static_cast<double>(bytes));
  engine_.injectTransfer(engine_.nodeOfThread(build_.workersGroup, fromThread),
                         engine_.nodeOfThread(build_.workersGroup, toThread), bytes);
  DPS_INFO("migrated column ", col, " from thread ", fromThread, " to ", toThread);
  return bytes;
}

} // namespace dps::mall
