// Data objects of the Jacobi stencil application.
//
// A second, independent DPS application (besides LU) exercising the
// "neighborhood exchange via relative thread indices" communication
// pattern the paper highlights in §2.  The grid is row-striped across
// worker threads; each sweep exchanges boundary rows with the upper/lower
// neighbours, then relaxes the strip.
#pragma once

#include <cstdint>
#include <vector>

#include "serial/object.hpp"

namespace dps::jacobi {

/// Program input: relax a rows x cols grid for `sweeps` iterations.
struct StartJacobi final : serial::Object<StartJacobi> {
  static constexpr const char* kTypeName = "jacobi.start";
  std::int32_t rows = 0;
  std::int32_t cols = 0;
  std::int32_t sweeps = 0;
  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, rows, cols, sweeps);
  }
};

/// Order to ship one boundary row to a neighbour (+1 = down, -1 = up).
struct MoveOrder final : serial::Object<MoveOrder> {
  static constexpr const char* kTypeName = "jacobi.move";
  std::int32_t thread = 0;    // source strip owner
  std::int32_t direction = 0; // +1 or -1
  std::int32_t sweep = 0;
  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, thread, direction, sweep);
  }
};

/// A boundary row travelling to the neighbouring strip.
struct HaloRow final : serial::Object<HaloRow> {
  static constexpr const char* kTypeName = "jacobi.halo";
  std::int32_t fromThread = 0;
  std::int32_t direction = 0; // as in MoveOrder
  std::int32_t sweep = 0;
  std::vector<double> row;    // cols values (may be phantom-sized)
  std::int32_t phantomCols = 0;
  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, fromThread, direction, sweep);
    // Same wire size whether the payload is real or suppressed (NOALLOC).
    std::uint8_t ph = row.empty() && phantomCols > 0 ? 1 : 0;
    ar.value(ph);
    if constexpr (Ar::isReading) {
      std::int32_t n = 0;
      ar.value(n);
      if (ph) {
        phantomCols = n;
        row.clear();
        ar.phantom(static_cast<std::size_t>(n) * sizeof(double));
      } else {
        row.resize(n);
        if (n) ar.raw(row.data(), static_cast<std::size_t>(n) * sizeof(double));
      }
    } else {
      std::int32_t n = ph ? phantomCols : static_cast<std::int32_t>(row.size());
      ar.value(n);
      if (ph) ar.phantom(static_cast<std::size_t>(n) * sizeof(double));
      else if (n) ar.raw(row.data(), static_cast<std::size_t>(n) * sizeof(double));
    }
  }
};

/// Acknowledgement that a halo row was stored at its destination.
struct HaloStored final : serial::Object<HaloStored> {
  static constexpr const char* kTypeName = "jacobi.halostored";
  std::int32_t atThread = 0;
  std::int32_t sweep = 0;
  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, atThread, sweep);
  }
};

/// Order to relax one strip for the sweep.
struct ComputeOrder final : serial::Object<ComputeOrder> {
  static constexpr const char* kTypeName = "jacobi.compute";
  std::int32_t thread = 0;
  std::int32_t sweep = 0;
  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, thread, sweep);
  }
};

/// Strip relaxed; carries the strip's residual contribution.
struct StripDone final : serial::Object<StripDone> {
  static constexpr const char* kTypeName = "jacobi.stripdone";
  std::int32_t thread = 0;
  std::int32_t sweep = 0;
  double residual = 0; // max |new - old| within the strip
  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, thread, sweep, residual);
  }
};

/// Program output: the relaxation finished.
struct JacobiResult final : serial::Object<JacobiResult> {
  static constexpr const char* kTypeName = "jacobi.result";
  std::int32_t sweeps = 0;
  double residual = 0; // max residual of the final sweep
  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, sweeps, residual);
  }
};

} // namespace dps::jacobi
