// Jacobi stencil application: graph builder, verification, cost model.
//
// BSP formulation, one DAG segment per sweep (like the LU app unrolls its
// levels):
//
//   ExchangeSplit_s ──> HaloLeaf ──> HaloStore ──> ExchangeMerge_s ─┐
//        ^  (master)     (owner)      (neighbour,      (master)     │
//        │                            relative-index routing)       │
//        └───────────── ComputeMerge_{s-1} <── ComputeLeaf <── ComputeSplit_s
//
// The HaloLeaf -> HaloStore edge routes with *relative thread indices*
// (srcThreadIndex + direction) — the neighbourhood-exchange pattern of
// paper §2.  Strips double-buffer in thread state, so halo reads are
// race-free even on the concurrent runtime engine.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "flow/graph.hpp"
#include "linalg/matrix.hpp"
#include "support/fingerprint.hpp"
#include "support/time.hpp"

namespace dps::jacobi {

struct JacobiConfig {
  std::int32_t rows = 256;  // grid rows (must divide evenly by workers)
  std::int32_t cols = 256;  // grid columns
  std::int32_t sweeps = 8;  // relaxation sweeps
  std::int32_t workers = 4; // strip owners
  std::uint64_t seed = 11;  // initial-condition seed

  std::int32_t stripRows() const { return rows / workers; }
  void validate() const;
};

/// Cost model for PDEXEC runs (flop-rate based, like the LU model).
struct JacobiCostModel {
  double cellsPerSec = 25e6; // 4 flops/cell on the 2006 reference machine
  double copyBytesPerSec = 150e6;
  SimDuration perKernelOverhead = microseconds(20);

  SimDuration sweepCost(std::int32_t stripRows, std::int32_t cols) const {
    return perKernelOverhead +
           seconds(static_cast<double>(stripRows) * cols / cellsPerSec);
  }
  SimDuration rowCopy(std::int32_t cols) const {
    return seconds(static_cast<double>(cols) * sizeof(double) / copyBytesPerSec);
  }
};

/// Hashes every semantic field into `fp` (cache-key identity).
inline void fingerprintInto(Fingerprint& fp, const JacobiCostModel& m) {
  fp.add(m.cellsPerSec).add(m.copyBytesPerSec).add(m.perKernelOverhead);
}

/// Worker state: double-buffered strip + received halo rows.
struct JacobiState final : flow::ThreadState {
  lin::Matrix bufA; // strip incl. no halos, stripRows x cols
  lin::Matrix bufB;
  bool currentIsA = true;
  /// Halo rows received for the upcoming sweep: direction -> row values.
  std::map<std::int32_t, std::vector<double>> halos;

  lin::Matrix& current() { return currentIsA ? bufA : bufB; }
  lin::Matrix& next() { return currentIsA ? bufB : bufA; }
};

struct JacobiBuild {
  std::unique_ptr<flow::FlowGraph> graph;
  flow::GroupId master = -1;
  flow::GroupId workers = -1;
  JacobiConfig cfg;
  std::vector<serial::ObjectPtr> inputs;
};

JacobiBuild buildJacobi(const JacobiConfig& cfg, const JacobiCostModel& model,
                        bool allocate = true);

/// Runs the program on the simulator (master on node 0, workers on nodes
/// 1..workers).
core::RunResult runJacobi(core::SimEngine& engine, const JacobiBuild& build);
flow::Program makeProgram(const JacobiBuild& build);

/// Serial reference: relaxes the same grid and returns it.
lin::Matrix referenceJacobi(const JacobiConfig& cfg);
/// Initial grid (deterministic in the seed; Dirichlet boundary kept fixed).
lin::Matrix initialGrid(const JacobiConfig& cfg);

/// Reassembles the distributed grid from harvested thread states and
/// returns max |distributed - reference| (0 expected: bit-identical math).
double verifyJacobi(const JacobiConfig& cfg, const core::RunResult& result,
                    flow::GroupId workers);

} // namespace dps::jacobi
