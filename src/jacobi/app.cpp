#include "jacobi/app.hpp"

#include <algorithm>
#include <cmath>

#include "flow/ops.hpp"
#include "flow/routing.hpp"
#include "jacobi/objects.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace dps::jacobi {

namespace {

struct Env {
  JacobiConfig cfg;
  JacobiCostModel model;
  bool allocate = true;
};
using EnvPtr = std::shared_ptr<const Env>;

JacobiState& state(flow::OpContext& ctx) {
  auto* st = dynamic_cast<JacobiState*>(ctx.threadState());
  DPS_CHECK(st != nullptr, "jacobi op running without JacobiState");
  return *st;
}

double initialValue(std::uint64_t seed, std::int32_t i, std::int32_t j) {
  SplitMix64 sm(seed ^ (static_cast<std::uint64_t>(i) * 0x9E3779B1 + static_cast<std::uint64_t>(j)));
  sm.next();
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

/// Master split of the exchange phase: one MoveOrder per (strip, direction).
class ExchangeSplit final : public flow::QueueEmitter {
public:
  ExchangeSplit(EnvPtr env, std::int32_t sweep) : env_(std::move(env)), sweep_(sweep) {}
  void onInput(flow::OpContext&, const serial::ObjectBase&) override {
    for (std::int32_t t = 0; t < env_->cfg.workers; ++t) {
      for (std::int32_t dir : {-1, +1}) {
        const std::int32_t dst = t + dir;
        if (dst < 0 || dst >= env_->cfg.workers) continue;
        auto order = std::make_shared<MoveOrder>();
        order->thread = t;
        order->direction = dir;
        order->sweep = sweep_;
        enqueue(std::move(order));
      }
    }
  }

private:
  EnvPtr env_;
  std::int32_t sweep_;
};

/// Reads the boundary row and ships it to the neighbour.
class HaloLeaf final : public flow::Operation {
public:
  explicit HaloLeaf(EnvPtr env) : env_(std::move(env)) {}
  void onInput(flow::OpContext& ctx, const serial::ObjectBase& in) override {
    const auto& order = dynamic_cast<const MoveOrder&>(in);
    auto halo = std::make_shared<HaloRow>();
    halo->fromThread = order.thread;
    halo->direction = order.direction;
    halo->sweep = order.sweep;
    if (ctx.executeKernels()) {
      JacobiState& st = state(ctx);
      const lin::Matrix& cur = st.current();
      const std::int32_t row = order.direction < 0 ? 0 : cur.rows() - 1;
      halo->row.assign(cur.rowPtr(row), cur.rowPtr(row) + cur.cols());
    } else {
      ctx.charge(env_->model.rowCopy(env_->cfg.cols));
      if (env_->allocate) halo->row.assign(env_->cfg.cols, 0.0);
      else halo->phantomCols = env_->cfg.cols;
    }
    ctx.post(std::move(halo));
  }

private:
  EnvPtr env_;
};

/// Stores a received halo row and acknowledges to the barrier merge.
class HaloStore final : public flow::Operation {
public:
  explicit HaloStore(EnvPtr env) : env_(std::move(env)) {}
  void onInput(flow::OpContext& ctx, const serial::ObjectBase& in) override {
    const auto& halo = dynamic_cast<const HaloRow&>(in);
    if (ctx.executeKernels()) {
      // Key by the side the halo belongs to from the receiver's viewpoint:
      // a row sent downwards (+1) is the receiver's upper (-1) halo.
      state(ctx).halos[-halo.direction] = halo.row;
    } else {
      ctx.charge(env_->model.rowCopy(env_->cfg.cols));
    }
    auto ack = std::make_shared<HaloStored>();
    ack->atThread = ctx.threadIndex();
    ack->sweep = halo.sweep;
    ctx.post(std::move(ack));
  }

private:
  EnvPtr env_;
};

/// Barrier merge (exchange or compute phase); forwards one token.
class BarrierMerge final : public flow::Operation {
public:
  /// Port 0 carries the continuation token or the final result.
  BarrierMerge(EnvPtr env, std::int32_t sweep, bool lastSweep, bool computePhase)
      : env_(std::move(env)), sweep_(sweep), last_(lastSweep), compute_(computePhase) {}

  void onInput(flow::OpContext&, const serial::ObjectBase& in) override {
    if (const auto* done = dynamic_cast<const StripDone*>(&in))
      residual_ = std::max(residual_, done->residual);
  }

  void onAllInputsDone(flow::OpContext& ctx) override {
    if (compute_) ctx.marker("sweep", sweep_ + 1);
    if (compute_ && last_) {
      auto result = std::make_shared<JacobiResult>();
      result->sweeps = env_->cfg.sweeps;
      result->residual = residual_;
      ctx.post(std::move(result));
      return;
    }
    auto token = std::make_shared<StartJacobi>();
    token->rows = env_->cfg.rows;
    token->cols = env_->cfg.cols;
    token->sweeps = env_->cfg.sweeps;
    ctx.post(std::move(token));
  }

private:
  EnvPtr env_;
  std::int32_t sweep_;
  bool last_;
  bool compute_;
  double residual_ = 0;
};

/// Master split of the compute phase: one ComputeOrder per strip.
class ComputeSplit final : public flow::QueueEmitter {
public:
  ComputeSplit(EnvPtr env, std::int32_t sweep) : env_(std::move(env)), sweep_(sweep) {}
  void onInput(flow::OpContext&, const serial::ObjectBase&) override {
    for (std::int32_t t = 0; t < env_->cfg.workers; ++t) {
      auto order = std::make_shared<ComputeOrder>();
      order->thread = t;
      order->sweep = sweep_;
      enqueue(std::move(order));
    }
  }

private:
  EnvPtr env_;
  std::int32_t sweep_;
};

/// Relaxes one strip: 5-point Jacobi with fixed (Dirichlet) boundary.
class ComputeLeaf final : public flow::Operation {
public:
  explicit ComputeLeaf(EnvPtr env) : env_(std::move(env)) {}
  void onInput(flow::OpContext& ctx, const serial::ObjectBase& in) override {
    const auto& order = dynamic_cast<const ComputeOrder&>(in);
    auto done = std::make_shared<StripDone>();
    done->thread = order.thread;
    done->sweep = order.sweep;

    const JacobiConfig& cfg = env_->cfg;
    if (ctx.executeKernels()) {
      JacobiState& st = state(ctx);
      const lin::Matrix& cur = st.current();
      lin::Matrix& nxt = st.next();
      const std::int32_t S = cfg.stripRows();
      const std::int32_t g0 = order.thread * S;
      double residual = 0;
      for (std::int32_t r = 0; r < S; ++r) {
        const std::int32_t gi = g0 + r;
        const double* mid = cur.rowPtr(r);
        double* out = nxt.rowPtr(r);
        if (gi == 0 || gi == cfg.rows - 1) {
          std::copy(mid, mid + cfg.cols, out);
          continue;
        }
        const double* up =
            r > 0 ? cur.rowPtr(r - 1) : st.halos.at(-1).data();
        const double* down =
            r < S - 1 ? cur.rowPtr(r + 1) : st.halos.at(+1).data();
        out[0] = mid[0];
        out[cfg.cols - 1] = mid[cfg.cols - 1];
        for (std::int32_t j = 1; j < cfg.cols - 1; ++j) {
          out[j] = 0.25 * (up[j] + down[j] + mid[j - 1] + mid[j + 1]);
          residual = std::max(residual, std::fabs(out[j] - mid[j]));
        }
      }
      st.currentIsA = !st.currentIsA;
      st.halos.clear();
      done->residual = residual;
    } else {
      ctx.charge(env_->model.sweepCost(cfg.stripRows(), cfg.cols));
    }
    ctx.post(std::move(done));
  }

private:
  EnvPtr env_;
};

} // namespace

void JacobiConfig::validate() const {
  if (rows < 4 || cols < 4) throw ConfigError("jacobi: grid too small");
  if (sweeps < 1) throw ConfigError("jacobi: need at least one sweep");
  if (workers < 2) throw ConfigError("jacobi: need at least two strips (halo exchange)");
  if (rows % workers != 0) throw ConfigError("jacobi: workers must divide rows");
  if (rows / workers < 1) throw ConfigError("jacobi: empty strips");
}

lin::Matrix initialGrid(const JacobiConfig& cfg) {
  lin::Matrix g(cfg.rows, cfg.cols);
  for (std::int32_t i = 0; i < cfg.rows; ++i)
    for (std::int32_t j = 0; j < cfg.cols; ++j) g(i, j) = initialValue(cfg.seed, i, j);
  return g;
}

lin::Matrix referenceJacobi(const JacobiConfig& cfg) {
  lin::Matrix cur = initialGrid(cfg);
  lin::Matrix nxt = cur;
  for (std::int32_t s = 0; s < cfg.sweeps; ++s) {
    for (std::int32_t i = 1; i < cfg.rows - 1; ++i)
      for (std::int32_t j = 1; j < cfg.cols - 1; ++j)
        nxt(i, j) = 0.25 * (cur(i - 1, j) + cur(i + 1, j) + cur(i, j - 1) + cur(i, j + 1));
    std::swap(cur.storage(), nxt.storage());
  }
  return cur;
}

JacobiBuild buildJacobi(const JacobiConfig& cfg, const JacobiCostModel& model, bool allocate) {
  cfg.validate();
  auto env = std::make_shared<Env>(Env{cfg, model, allocate});

  JacobiBuild build;
  build.cfg = cfg;
  build.graph = std::make_unique<flow::FlowGraph>();
  auto& g = *build.graph;

  build.master = g.addGroup("master");
  build.workers = g.addGroup("strips", [env](std::int32_t t) {
    auto st = std::make_unique<JacobiState>();
    if (env->allocate) {
      const std::int32_t S = env->cfg.stripRows();
      st->bufA = lin::Matrix(S, env->cfg.cols);
      for (std::int32_t r = 0; r < S; ++r)
        for (std::int32_t j = 0; j < env->cfg.cols; ++j)
          st->bufA(r, j) = initialValue(env->cfg.seed, t * S + r, j);
      st->bufB = st->bufA;
    }
    return st;
  });

  using flow::makeOp;
  flow::OpId prevBarrier = flow::kNoOp; // emits the phase token on port 0

  for (std::int32_t s = 0; s < cfg.sweeps; ++s) {
    // Built via append: GCC 12's -Wrestrict misfires on `"_" + std::to_string(s)`
    // at -O2 (GCC PR 105651).
    std::string suffix = "_";
    suffix += std::to_string(s);

    const auto exSplit =
        g.addSplit("exchange" + suffix, build.master, makeOp<ExchangeSplit>(env, s));
    const auto haloLeaf = g.addLeaf("halo" + suffix, build.workers, makeOp<HaloLeaf>(env));
    const auto haloStore = g.addLeaf("store" + suffix, build.workers, makeOp<HaloStore>(env));
    const auto exMerge = g.addMerge("exBarrier" + suffix, build.master,
                                    makeOp<BarrierMerge>(env, s, false, false));
    const auto coSplit =
        g.addSplit("compute" + suffix, build.master, makeOp<ComputeSplit>(env, s));
    const auto coLeaf = g.addLeaf("relax" + suffix, build.workers, makeOp<ComputeLeaf>(env));
    const auto coMerge = g.addMerge("coBarrier" + suffix, build.master,
                                    makeOp<BarrierMerge>(env, s, s == cfg.sweeps - 1, true));

    if (s == 0) g.setEntry(exSplit, 0);
    else g.connect(prevBarrier, 0, exSplit, flow::routeTo(0));

    g.connect(exSplit, 0, haloLeaf,
              flow::byKeyStatic([](const serial::ObjectBase& o) {
                return static_cast<std::uint64_t>(dynamic_cast<const MoveOrder&>(o).thread);
              }));
    g.pair(exSplit, 0, exMerge);
    // Neighbourhood exchange with *relative thread indices* (paper §2).
    g.connect(haloLeaf, 0, haloStore,
              [](const flow::RouteContext& rc, const serial::ObjectBase& o) {
                return rc.srcThreadIndex + dynamic_cast<const HaloRow&>(o).direction;
              });
    g.connect(haloStore, 0, exMerge, flow::routeTo(0));
    g.connect(exMerge, 0, coSplit, flow::routeTo(0));

    g.connect(coSplit, 0, coLeaf,
              flow::byKeyStatic([](const serial::ObjectBase& o) {
                return static_cast<std::uint64_t>(dynamic_cast<const ComputeOrder&>(o).thread);
              }));
    g.pair(coSplit, 0, coMerge);
    g.connect(coLeaf, 0, coMerge, flow::routeTo(0));
    if (s == cfg.sweeps - 1) g.connectOutput(coMerge, 0);
    prevBarrier = coMerge;
  }

  auto start = std::make_shared<StartJacobi>();
  start->rows = cfg.rows;
  start->cols = cfg.cols;
  start->sweeps = cfg.sweeps;
  build.inputs.push_back(std::move(start));
  return build;
}

flow::Program makeProgram(const JacobiBuild& build) {
  flow::Program prog;
  prog.graph = build.graph.get();
  prog.deployment.nodeCount = build.cfg.workers + 1;
  prog.deployment.groupNodes.resize(2);
  prog.deployment.groupNodes[build.master] = {0};
  for (std::int32_t t = 0; t < build.cfg.workers; ++t)
    prog.deployment.groupNodes[build.workers].push_back(1 + t);
  prog.inputs = build.inputs;
  return prog;
}

core::RunResult runJacobi(core::SimEngine& engine, const JacobiBuild& build) {
  return engine.run(makeProgram(build));
}

double verifyJacobi(const JacobiConfig& cfg, const core::RunResult& result,
                    flow::GroupId workers) {
  const lin::Matrix reference = referenceJacobi(cfg);
  double worst = 0;
  const std::int32_t S = cfg.stripRows();
  const auto& states = result.threadStates.at(workers);
  DPS_CHECK(states.size() == static_cast<std::size_t>(cfg.workers), "missing strips");
  for (std::int32_t t = 0; t < cfg.workers; ++t) {
    const auto* st = dynamic_cast<const JacobiState*>(states[t].get());
    DPS_CHECK(st != nullptr, "strip state missing");
    const lin::Matrix& strip = const_cast<JacobiState*>(st)->current();
    for (std::int32_t r = 0; r < S; ++r)
      for (std::int32_t j = 0; j < cfg.cols; ++j)
        worst = std::max(worst, std::fabs(strip(r, j) - reference(t * S + r, j)));
  }
  return worst;
}

} // namespace dps::jacobi
