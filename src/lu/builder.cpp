#include "lu/builder.hpp"

#include <algorithm>

#include "flow/ops.hpp"
#include "flow/routing.hpp"
#include "linalg/kernels.hpp"
#include "lu/objects.hpp"
#include "support/error.hpp"

namespace dps::lu {

namespace {

/// Immutable context shared by every operation of one build.
struct Env {
  LuConfig cfg;
  KernelCostModel model;
  std::shared_ptr<ColumnDirectory> dir;
  bool allocate = true;
  std::shared_ptr<KernelSampler> sampler; // first-n-instances mode (§4)

  bool sampled() const { return sampler != nullptr && allocate; }
};
using EnvPtr = std::shared_ptr<const Env>;

LuThreadState& state(flow::OpContext& ctx) {
  auto* st = dynamic_cast<LuThreadState*>(ctx.threadState());
  DPS_CHECK(st != nullptr, "LU op running without LuThreadState");
  return *st;
}

/// Builds a payload: real data under direct execution, freshly allocated
/// zeros under PDEXEC-with-allocation, phantom under NOALLOC.  `extract`
/// is only invoked when real data is needed.
template <typename Fn>
BlockPayload payloadFor(const Env& env, flow::OpContext& ctx, std::int32_t rows,
                        std::int32_t cols, Fn&& extract) {
  if (ctx.executeKernels()) return BlockPayload::fromMatrix(extract());
  if (env.allocate) {
    BlockPayload p;
    p.rows = rows;
    p.cols = cols;
    p.data.assign(static_cast<std::size_t>(rows) * cols, 0.0);
    return p;
  }
  return BlockPayload::phantomOf(rows, cols);
}

const std::size_t kDoubleBytes = sizeof(double);

/// Typed routing by an object field.
template <typename T>
flow::RoutingFn routeByField(std::int32_t T::*field) {
  return [field](const flow::RouteContext&, const serial::ObjectBase& obj) {
    const auto* o = dynamic_cast<const T*>(&obj);
    DPS_CHECK(o != nullptr, "routing saw unexpected object type");
    return o->*field;
  };
}

/// Routes to the current owner of the column returned by `col(obj)`.
template <typename T>
flow::RoutingFn routeToOwner(EnvPtr env, std::int32_t T::*colField) {
  return [env, colField](const flow::RouteContext&, const serial::ObjectBase& obj) {
    const auto* o = dynamic_cast<const T*>(&obj);
    DPS_CHECK(o != nullptr, "routing saw unexpected object type");
    return env->dir->owner(o->*colField);
  };
}

// ---------------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------------

/// Factors the level's panel column in place and captures L11 + pivots.
/// Shared by PanelSplitOp (level 0) and NextStreamOp (levels >= 1).
struct PanelWork {
  std::shared_ptr<lin::Matrix> l11; // real mode only
  std::vector<std::int32_t> pivots;

  void run(const Env& env, flow::OpContext& ctx, std::int32_t level) {
    const std::int32_t n = env.cfg.n;
    const std::int32_t r = env.cfg.r;
    const std::int32_t off = level * r;
    auto realPanel = [&] {
      LuThreadState& st = state(ctx);
      auto it = st.columns.find(level);
      DPS_CHECK(it != st.columns.end(), "panel column " + std::to_string(level) +
                                            " not on this thread (migration bug?)");
      lin::Matrix& col = it->second;
      lin::Matrix panel = col.block(off, 0, n - off, r);
      DPS_CHECK(lin::panelLu(panel, pivots), "singular panel");
      col.setBlock(off, 0, panel);
      l11 = std::make_shared<lin::Matrix>(panel.block(0, 0, r, r));
      st.pivotsByLevel[level] = pivots;
    };
    if (ctx.executeKernels()) {
      realPanel();
    } else if (env.sampled()) {
      ctx.charge(env.sampler->charge(
          KernelSampler::key(kPanelKernel, static_cast<std::uint64_t>(n - off)), realPanel));
      if (pivots.empty()) pivots.assign(r, 0); // reused instance: no real run
    } else {
      ctx.charge(env.model.panel(n - off, r));
      pivots.assign(r, 0);
    }
  }

  BlockPayload l11Payload(const Env& env, flow::OpContext& ctx) const {
    const std::int32_t r = env.cfg.r;
    return payloadFor(env, ctx, r, r, [&] { return *l11; });
  }
};

/// Entry split: factors panel 0 and emits the level-0 trsm requests.
class PanelSplitOp final : public flow::QueueEmitter {
public:
  explicit PanelSplitOp(EnvPtr env) : env_(std::move(env)) {}

  void onInput(flow::OpContext& ctx, const serial::ObjectBase& in) override {
    const auto* start = dynamic_cast<const StartLu*>(&in);
    DPS_CHECK(start != nullptr, "entry expects StartLu");
    DPS_CHECK(start->n == env_->cfg.n && start->r == env_->cfg.r,
              "StartLu does not match the built graph");
    PanelWork panel;
    panel.run(*env_, ctx, 0);
    const std::int32_t r = env_->cfg.r;
    const auto copyCost = env_->model.copy(static_cast<std::size_t>(r) * r * kDoubleBytes +
                                           static_cast<std::size_t>(r) * 4);
    for (std::int32_t j = 1; j < env_->cfg.levels(); ++j) {
      auto req = std::make_shared<TrsmRequest>();
      req->level = 0;
      req->col = j;
      req->pivots = panel.pivots;
      auto* raw = req.get();
      auto env = env_;
      enqueue(req, 0, copyCost, [env, raw, panel](flow::OpContext& c) {
        raw->l11 = panel.l11Payload(*env, c);
      });
    }
  }

private:
  EnvPtr env_;
};

/// Paper op (b): row-flip own column for this level's pivots, solve the
/// triangular system, store T12 in place and forward it.
class TrsmOp final : public flow::Operation {
public:
  explicit TrsmOp(EnvPtr env) : env_(std::move(env)) {}

  void onInput(flow::OpContext& ctx, const serial::ObjectBase& in) override {
    const auto& req = dynamic_cast<const TrsmRequest&>(in);
    const std::int32_t r = env_->cfg.r;
    const std::int32_t n = env_->cfg.n;
    const std::int32_t off = req.level * r;

    auto out = std::make_shared<T12Ready>();
    out->level = req.level;
    out->col = req.col;

    auto realTrsm = [&] {
      LuThreadState& st = state(ctx);
      auto it = st.columns.find(req.col);
      DPS_CHECK(it != st.columns.end(), "trsm: column not on this thread");
      lin::Matrix& col = it->second;
      // Row flips for the current panel's pivots (rows [off, n)).
      lin::applyPivots(col, req.pivots, off);
      // T12 = L11^{-1} * A12, solved in place in the column.
      lin::Matrix a12 = col.block(off, 0, r, r);
      const lin::Matrix l11 = req.l11.toMatrix();
      lin::trsmLowerUnit(l11, a12);
      col.setBlock(off, 0, a12);
      return a12;
    };
    if (ctx.executeKernels()) {
      out->t12 = BlockPayload::fromMatrix(realTrsm());
    } else {
      if (env_->sampled()) {
        ctx.charge(env_->sampler->charge(
            KernelSampler::key(kTrsmKernel, static_cast<std::uint64_t>(r)),
            [&] { realTrsm(); }));
      } else {
        ctx.charge(env_->model.rowSwaps(r, static_cast<std::size_t>(r) * kDoubleBytes));
        ctx.charge(env_->model.trsm(r, r));
      }
      ctx.charge(env_->model.copy(static_cast<std::size_t>(r) * r * kDoubleBytes));
      out->t12 = payloadFor(*env_, ctx, r, r, [] { return lin::Matrix(); });
    }
    (void)n;
    ctx.post(std::move(out));
  }

private:
  EnvPtr env_;
};

/// Paper op (c): collects T12 blocks and streams out the multiplication
/// requests, each carrying two r x r blocks (L21_i from local state and
/// the received T12_j).  Basic variant buffers until the barrier.
class MultStreamOp final : public flow::QueueEmitter {
public:
  MultStreamOp(EnvPtr env, std::int32_t level) : env_(std::move(env)), level_(level) {}

  void onInput(flow::OpContext& ctx, const serial::ObjectBase& in) override {
    const auto& t = dynamic_cast<const T12Ready&>(in);
    // One buffered copy of T12 shared by all m requests of this column.
    auto t12 = std::make_shared<BlockPayload>(t.t12);
    if (!ctx.executeKernels())
      ctx.charge(env_->model.copy(t.t12.logicalBytes()));
    if (env_->cfg.pipelined) {
      enqueueColumn(ctx, t.col, std::move(t12));
    } else {
      buffered_.emplace_back(t.col, std::move(t12));
    }
  }

  void onAllInputsDone(flow::OpContext& ctx) override {
    for (auto& [col, t12] : buffered_) enqueueColumn(ctx, col, std::move(t12));
    buffered_.clear();
  }

private:
  void enqueueColumn(flow::OpContext& ctx, std::int32_t j,
                     std::shared_ptr<BlockPayload> t12) {
    (void)ctx;
    const std::int32_t r = env_->cfg.r;
    const auto copyCost = env_->model.copy(2 * static_cast<std::size_t>(r) * r * kDoubleBytes);
    for (std::int32_t i = level_ + 1; i < env_->cfg.levels(); ++i) {
      auto req = std::make_shared<MultRequest>();
      req->level = level_;
      req->i = i;
      req->j = j;
      auto* raw = req.get();
      auto env = env_;
      const std::int32_t level = level_;
      enqueue(req, 0, copyCost, [env, raw, t12, level, i, r](flow::OpContext& c) {
        raw->b = *t12;
        raw->a = payloadFor(*env, c, r, r, [&] {
          LuThreadState& st = state(c);
          auto it = st.columns.find(level);
          DPS_CHECK(it != st.columns.end(), "mult stream: L21 column not local");
          return it->second.block(i * r, 0, r, r);
        });
      });
    }
  }

  EnvPtr env_;
  std::int32_t level_;
  std::vector<std::pair<std::int32_t, std::shared_ptr<BlockPayload>>> buffered_;
};

/// Paper op (d): one block multiplication C = L21_i * T12_j.
class MultOp final : public flow::Operation {
public:
  explicit MultOp(EnvPtr env) : env_(std::move(env)) {}

  void onInput(flow::OpContext& ctx, const serial::ObjectBase& in) override {
    const auto& req = dynamic_cast<const MultRequest&>(in);
    const std::int32_t r = env_->cfg.r;
    auto out = std::make_shared<MultResult>();
    out->level = req.level;
    out->i = req.i;
    out->j = req.j;
    if (ctx.executeKernels()) {
      out->c = BlockPayload::fromMatrix(lin::gemm(req.a.toMatrix(), req.b.toMatrix()));
    } else {
      if (env_->sampled()) {
        ctx.charge(env_->sampler->charge(
            KernelSampler::key(kGemmKernel, static_cast<std::uint64_t>(r)), [&] {
              lin::Matrix c = lin::gemm(req.a.toMatrix(), req.b.toMatrix());
              (void)c;
            }));
      } else {
        ctx.charge(env_->model.gemm(r, r, r));
      }
      out->c = payloadFor(*env_, ctx, r, r, [] { return lin::Matrix(); });
    }
    ctx.post(std::move(out));
  }

private:
  EnvPtr env_;
};

/// Paper op (e): subtract the product from the owner's column block.
class SubOp final : public flow::Operation {
public:
  explicit SubOp(EnvPtr env) : env_(std::move(env)) {}

  void onInput(flow::OpContext& ctx, const serial::ObjectBase& in) override {
    const auto& res = dynamic_cast<const MultResult&>(in);
    const std::int32_t r = env_->cfg.r;
    if (ctx.executeKernels()) {
      LuThreadState& st = state(ctx);
      auto it = st.columns.find(res.j);
      DPS_CHECK(it != st.columns.end(), "subtract: column not on this thread");
      lin::Matrix& col = it->second;
      const lin::Matrix c = res.c.toMatrix();
      const std::int32_t r0 = res.i * r;
      for (std::int32_t k = 0; k < r; ++k) {
        double* row = col.rowPtr(r0 + k);
        const double* src = c.rowPtr(k);
        for (std::int32_t q = 0; q < r; ++q) row[q] -= src[q];
      }
    } else {
      // r^2 subtractions: charge at gemm throughput (memory bound anyway).
      ctx.charge(seconds(static_cast<double>(r) * r / env_->model.gemmFlopsPerSec));
    }
    auto note = std::make_shared<SubNotify>();
    note->level = res.level;
    note->i = res.i;
    note->j = res.j;
    ctx.post(std::move(note));
  }

private:
  EnvPtr env_;
};

/// Paper op (f): collects subtraction notifications; factors the next
/// panel as soon as its column completes (pipelined) or at the barrier
/// (basic); streams out next-level trsm requests (port 0), row flips for
/// previous columns (port 1) and — at the last level — the final
/// "factored" notification (port 2).
class NextStreamOp final : public flow::QueueEmitter {
public:
  NextStreamOp(EnvPtr env, std::int32_t level) : env_(std::move(env)), level_(level) {}

  static constexpr std::int32_t kTrsmPort = 0;
  static constexpr std::int32_t kFlipPort = 1;
  static constexpr std::int32_t kDonePort = 2;

  void onInput(flow::OpContext& ctx, const serial::ObjectBase& in) override {
    const auto& note = dynamic_cast<const SubNotify&>(in);
    const std::int32_t m = env_->cfg.levels() - 1 - level_;
    const std::int32_t done = ++colCount_[note.j];
    DPS_CHECK(done <= m, "too many subtraction notifications for a column");
    if (!env_->cfg.pipelined) return;

    if (note.j == level_ + 1 && done == m) {
      panel_.run(*env_, ctx, level_ + 1);
      panelDone_ = true;
      for (std::int32_t j : deferredCols_) enqueueTrsm(ctx, j);
      deferredCols_.clear();
    } else if (done == m) {
      if (panelDone_) enqueueTrsm(ctx, note.j);
      else deferredCols_.push_back(note.j);
    }
  }

  void onAllInputsDone(flow::OpContext& ctx) override {
    // Iteration boundary: the level's trailing update is complete.  The
    // marker fires *before* the next panel's compute segment, so malleable
    // allocation changes take effect at exactly this instant.
    ctx.marker("iteration", level_ + 1);
    if (!env_->cfg.pipelined) {
      panel_.run(*env_, ctx, level_ + 1);
      panelDone_ = true;
      for (std::int32_t j = level_ + 2; j < env_->cfg.levels(); ++j) enqueueTrsm(ctx, j);
    }
    DPS_CHECK(panelDone_, "stream finalized before its panel column completed");

    // Row flips of the new panel's pivots onto previously factored columns
    // (paper op (g) requests).
    for (std::int32_t col = 0; col <= level_; ++col) {
      auto flip = std::make_shared<FlipRequest>();
      flip->level = level_ + 1;
      flip->col = col;
      flip->pivots = panel_.pivots;
      enqueue(std::move(flip), kFlipPort);
    }

    if (level_ == env_->cfg.levels() - 2) {
      auto done = std::make_shared<Factored>();
      done->levels = env_->cfg.levels();
      ctx.post(std::move(done), kDonePort);
    }
  }

private:
  void enqueueTrsm(flow::OpContext& ctx, std::int32_t j) {
    (void)ctx;
    const std::int32_t r = env_->cfg.r;
    const auto copyCost = env_->model.copy(static_cast<std::size_t>(r) * r * kDoubleBytes +
                                           static_cast<std::size_t>(r) * 4);
    auto req = std::make_shared<TrsmRequest>();
    req->level = level_ + 1;
    req->col = j;
    req->pivots = panel_.pivots;
    auto* raw = req.get();
    auto env = env_;
    PanelWork panel = panel_;
    enqueue(req, kTrsmPort, copyCost, [env, raw, panel](flow::OpContext& c) {
      raw->l11 = panel.l11Payload(*env, c);
    });
  }

  EnvPtr env_;
  std::int32_t level_;
  std::map<std::int32_t, std::int32_t> colCount_;
  std::vector<std::int32_t> deferredCols_;
  PanelWork panel_;
  bool panelDone_ = false;
};

/// Paper op (g): apply row flips to a previously factored column.
class FlipOp final : public flow::Operation {
public:
  explicit FlipOp(EnvPtr env) : env_(std::move(env)) {}

  void onInput(flow::OpContext& ctx, const serial::ObjectBase& in) override {
    const auto& req = dynamic_cast<const FlipRequest&>(in);
    const std::int32_t r = env_->cfg.r;
    const std::int32_t off = req.level * r;
    if (ctx.executeKernels()) {
      LuThreadState& st = state(ctx);
      auto it = st.columns.find(req.col);
      DPS_CHECK(it != st.columns.end(), "flip: column not on this thread");
      lin::applyPivots(it->second, req.pivots, off);
    } else {
      ctx.charge(env_->model.rowSwaps(r, static_cast<std::size_t>(r) * kDoubleBytes));
    }
    auto note = std::make_shared<FlipNotify>();
    note->level = req.level;
    note->col = req.col;
    ctx.post(std::move(note));
  }

private:
  EnvPtr env_;
};

/// Paper op (h): collect row-exchange notifications per level; each
/// completed level posts a LevelDone program output.
class TermMergeOp final : public flow::Operation {
public:
  void onInput(flow::OpContext&, const serial::ObjectBase& in) override {
    level_ = dynamic_cast<const FlipNotify&>(in).level;
  }
  void onAllInputsDone(flow::OpContext& ctx) override {
    auto done = std::make_shared<LevelDone>();
    done->level = level_;
    ctx.post(std::move(done));
  }

private:
  std::int32_t level_ = -1;
};

// --- PM: parallel sub-block multiplication (paper Fig. 7) ---

/// Fig. 7 (a): store the first matrix locally, distribute column strips of
/// the second matrix.
class PmSplitOp final : public flow::QueueEmitter {
public:
  explicit PmSplitOp(EnvPtr env) : env_(std::move(env)) {}

  void onInput(flow::OpContext& ctx, const serial::ObjectBase& in) override {
    const auto& req = dynamic_cast<const MultRequest&>(in);
    const std::int32_t r = env_->cfg.r;
    const std::int32_t s = env_->cfg.effSubBlock();
    const std::int32_t q = r / s;
    const std::int32_t home = ctx.threadIndex();

    // Store A for the collect stage (same thread).
    LuThreadState& st = state(ctx);
    const PmKey aKey{req.level, req.i, req.j, -1};
    if (ctx.executeKernels()) {
      st.pmStrips[aKey] = req.a.toMatrix();
    } else {
      if (env_->allocate) st.pmStrips[aKey] = lin::Matrix(r, r);
      else st.pmPhantom.insert(aKey);
      ctx.charge(env_->model.copy(req.a.logicalBytes()));
    }

    // Distribute B column strips.
    auto b = std::make_shared<BlockPayload>(req.b);
    const auto copyCost = env_->model.copy(static_cast<std::size_t>(r) * s * kDoubleBytes);
    for (std::int32_t strip = 0; strip < q; ++strip) {
      auto obj = std::make_shared<PmStrip>();
      obj->level = req.level;
      obj->i = req.i;
      obj->j = req.j;
      obj->strip = strip;
      obj->home = home;
      auto* raw = obj.get();
      auto env = env_;
      enqueue(obj, 0, copyCost, [env, raw, b, strip, r, s](flow::OpContext& c) {
        raw->b = payloadFor(*env, c, r, s, [&] {
          lin::Matrix bm = b->toMatrix();
          return bm.block(0, strip * s, r, s);
        });
      });
    }
  }

private:
  EnvPtr env_;
};

/// Fig. 7 (b): store one strip and acknowledge.
class PmStoreOp final : public flow::Operation {
public:
  explicit PmStoreOp(EnvPtr env) : env_(std::move(env)) {}

  void onInput(flow::OpContext& ctx, const serial::ObjectBase& in) override {
    const auto& strip = dynamic_cast<const PmStrip&>(in);
    LuThreadState& st = state(ctx);
    const PmKey key{strip.level, strip.i, strip.j, strip.strip};
    if (ctx.executeKernels()) {
      st.pmStrips[key] = strip.b.toMatrix();
    } else {
      if (env_->allocate) st.pmStrips[key] = lin::Matrix(strip.b.rows, strip.b.cols);
      else st.pmPhantom.insert(key);
      ctx.charge(env_->model.copy(strip.b.logicalBytes()));
    }
    auto ack = std::make_shared<PmStripStored>();
    ack->level = strip.level;
    ack->i = strip.i;
    ack->j = strip.j;
    ack->strip = strip.strip;
    ack->storedAt = ctx.threadIndex();
    ack->home = strip.home;
    ctx.post(std::move(ack));
  }

private:
  EnvPtr env_;
};

/// Fig. 7 (c)/(d): collect storage acks, then send each line block of the
/// first matrix to every thread storing strips.
class PmCollectOp final : public flow::QueueEmitter {
public:
  explicit PmCollectOp(EnvPtr env) : env_(std::move(env)) {}

  void onInput(flow::OpContext&, const serial::ObjectBase& in) override {
    const auto& ack = dynamic_cast<const PmStripStored&>(in);
    byThread_[ack.storedAt].push_back(ack.strip);
    level_ = ack.level;
    i_ = ack.i;
    j_ = ack.j;
    home_ = ack.home;
  }

  void onAllInputsDone(flow::OpContext& ctx) override {
    const std::int32_t r = env_->cfg.r;
    const std::int32_t s = env_->cfg.effSubBlock();
    const std::int32_t q = r / s;

    // Grab A once; emissions copy line strips out of it.
    LuThreadState& st = state(ctx);
    const PmKey aKey{level_, i_, j_, -1};
    std::shared_ptr<lin::Matrix> a;
    if (ctx.executeKernels()) {
      auto it = st.pmStrips.find(aKey);
      DPS_CHECK(it != st.pmStrips.end(), "PM collect: A block missing");
      a = std::make_shared<lin::Matrix>(std::move(it->second));
      st.pmStrips.erase(it);
    } else {
      st.pmStrips.erase(aKey);
      st.pmPhantom.erase(aKey);
    }

    const auto copyCost = env_->model.copy(static_cast<std::size_t>(s) * r * kDoubleBytes);
    for (std::int32_t rowStrip = 0; rowStrip < q; ++rowStrip) {
      for (const auto& [target, strips] : byThread_) {
        auto work = std::make_shared<PmLineWork>();
        work->level = level_;
        work->i = i_;
        work->j = j_;
        work->rowStrip = rowStrip;
        work->target = target;
        work->home = home_;
        work->lastRowStrip = rowStrip == q - 1 ? 1 : 0;
        work->strips = strips;
        auto* raw = work.get();
        auto env = env_;
        enqueue(work, 0, copyCost, [env, raw, a, rowStrip, s, r](flow::OpContext& c) {
          raw->a = payloadFor(*env, c, s, r, [&] { return a->block(rowStrip * s, 0, s, r); });
        });
      }
    }
  }

private:
  EnvPtr env_;
  std::map<std::int32_t, std::vector<std::int32_t>> byThread_;
  std::int32_t level_ = 0, i_ = 0, j_ = 0, home_ = 0;
};

/// Fig. 7 (e): multiply a line block with every locally stored column strip.
class PmMulOp final : public flow::Operation {
public:
  explicit PmMulOp(EnvPtr env) : env_(std::move(env)) {}

  void onInput(flow::OpContext& ctx, const serial::ObjectBase& in) override {
    const auto& work = dynamic_cast<const PmLineWork&>(in);
    const std::int32_t s = env_->cfg.effSubBlock();
    const std::int32_t r = env_->cfg.r;
    LuThreadState& st = state(ctx);

    auto tiles = std::make_shared<PmTiles>();
    tiles->level = work.level;
    tiles->i = work.i;
    tiles->j = work.j;
    tiles->rowStrip = work.rowStrip;
    tiles->strips = work.strips;

    const auto nStrips = static_cast<std::int32_t>(work.strips.size());
    if (ctx.executeKernels()) {
      const lin::Matrix a = work.a.toMatrix();
      lin::Matrix out(s, s * nStrips);
      for (std::int32_t k = 0; k < nStrips; ++k) {
        const PmKey key{work.level, work.i, work.j, work.strips[k]};
        auto it = st.pmStrips.find(key);
        DPS_CHECK(it != st.pmStrips.end(), "PM mul: strip missing");
        out.setBlock(0, k * s, lin::gemm(a, it->second));
        if (work.lastRowStrip) st.pmStrips.erase(it);
      }
      tiles->tiles = BlockPayload::fromMatrix(out);
    } else {
      for (std::int32_t k = 0; k < nStrips; ++k) {
        ctx.charge(env_->model.gemm(s, s, r));
        if (work.lastRowStrip) {
          const PmKey key{work.level, work.i, work.j, work.strips[k]};
          st.pmStrips.erase(key);
          st.pmPhantom.erase(key);
        }
      }
      tiles->tiles = payloadFor(*env_, ctx, s, s * nStrips, [] { return lin::Matrix(); });
    }
    ctx.post(std::move(tiles));
  }

private:
  EnvPtr env_;
};

/// Fig. 7 (f): assemble the r x r product and forward it to the subtract.
class PmAssembleOp final : public flow::Operation {
public:
  explicit PmAssembleOp(EnvPtr env) : env_(std::move(env)) {}

  void onInput(flow::OpContext& ctx, const serial::ObjectBase& in) override {
    const auto& t = dynamic_cast<const PmTiles&>(in);
    const std::int32_t s = env_->cfg.effSubBlock();
    level_ = t.level;
    i_ = t.i;
    j_ = t.j;
    if (ctx.executeKernels()) {
      if (c_.empty()) c_ = lin::Matrix(env_->cfg.r, env_->cfg.r);
      const lin::Matrix tiles = t.tiles.toMatrix();
      for (std::size_t k = 0; k < t.strips.size(); ++k) {
        c_.setBlock(t.rowStrip * s, t.strips[k] * s,
                    tiles.block(0, static_cast<std::int32_t>(k) * s, s, s));
      }
    } else {
      ctx.charge(env_->model.copy(t.tiles.logicalBytes()));
    }
  }

  void onAllInputsDone(flow::OpContext& ctx) override {
    auto res = std::make_shared<MultResult>();
    res->level = level_;
    res->i = i_;
    res->j = j_;
    if (ctx.executeKernels()) {
      res->c = BlockPayload::fromMatrix(std::move(c_));
    } else {
      res->c = payloadFor(*env_, ctx, env_->cfg.r, env_->cfg.r, [] { return lin::Matrix(); });
    }
    ctx.post(std::move(res));
  }

private:
  EnvPtr env_;
  lin::Matrix c_;
  std::int32_t level_ = 0, i_ = 0, j_ = 0;
};

} // namespace

// ---------------------------------------------------------------------------
// Config + graph assembly
// ---------------------------------------------------------------------------

void LuConfig::validate() const {
  if (n <= 0 || r <= 0) throw ConfigError("LU: dimensions must be positive");
  if (n % r != 0) throw ConfigError("LU: block size must divide n");
  if (levels() < 2) throw ConfigError("LU: need at least two column blocks");
  if (workers <= 0) throw ConfigError("LU: need at least one worker");
  if (parallelMult) {
    const std::int32_t s = effSubBlock();
    if (s <= 0 || r % s != 0) throw ConfigError("LU: sub-block must divide r");
    if (r / s < 2) throw ConfigError("LU: PM needs at least two sub-strips");
  }
  if (flowControl && fcLimit <= 0) throw ConfigError("LU: flow-control limit must be positive");
}

std::string LuConfig::variantName() const {
  std::string v;
  if (pipelined) v += v.empty() ? "P" : "+P";
  if (parallelMult) v += v.empty() ? "PM" : "+PM";
  if (flowControl) v += v.empty() ? "FC" : "+FC";
  if (v.empty()) v = "Basic";
  return v;
}

std::int32_t expectedOutputs(const LuConfig& cfg) {
  return cfg.levels(); // (levels - 1) LevelDone + 1 Factored
}

LuBuild buildLu(const LuConfig& cfg, const KernelCostModel& model, bool allocate,
                std::shared_ptr<KernelSampler> sampler) {
  cfg.validate();
  if (sampler) DPS_CHECK(allocate, "first-n-instances sampling requires allocation");
  const std::int32_t L = cfg.levels();

  LuBuild build;
  build.cfg = cfg;
  build.directory = std::make_shared<ColumnDirectory>(L, cfg.workers);
  auto env =
      std::make_shared<Env>(Env{cfg, model, build.directory, allocate, std::move(sampler)});

  build.graph = std::make_unique<flow::FlowGraph>();
  flow::FlowGraph& g = *build.graph;

  // Worker threads own the column blocks; state is pre-distributed (the
  // paper measures the factorization, not the initial distribution).
  const flow::GroupId workers = g.addGroup("workers", [env](std::int32_t threadIdx) {
    auto st = std::make_unique<LuThreadState>();
    for (std::int32_t col : env->dir->columnsOf(threadIdx)) {
      if (env->allocate) {
        st->columns.emplace(col, lin::testPanel(env->cfg.seed, env->cfg.n,
                                                col * env->cfg.r, env->cfg.r));
      } else {
        st->phantomColumns.insert(col);
      }
    }
    return st;
  });
  build.workersGroup = workers;

  using flow::makeOp;

  const flow::OpId entry =
      g.addSplit("panel0", workers, makeOp<PanelSplitOp>(env));
  g.setEntry(entry, build.directory->owner(0));

  const flow::OpId termMerge = g.addMerge("term", workers, makeOp<TermMergeOp>());
  g.connectOutput(termMerge, 0);

  flow::OpId prevTrsmSource = entry; // emits TrsmRequests for level l on port 0

  for (std::int32_t l = 0; l + 1 < L; ++l) {
    const std::string suffix = "_" + std::to_string(l);
    const flow::OpId trsm = g.addLeaf("trsm" + suffix, workers, makeOp<TrsmOp>(env));
    const flow::OpId multStream =
        g.addStream("multStream" + suffix, workers, makeOp<MultStreamOp>(env, l));
    const flow::OpId sub = g.addLeaf("sub" + suffix, workers, makeOp<SubOp>(env));
    const flow::OpId nextStream =
        g.addStream("nextStream" + suffix, workers, makeOp<NextStreamOp>(env, l));

    // Panel source (entry split or previous nextStream) -> trsm.
    g.connect(prevTrsmSource, 0, trsm, routeToOwner<TrsmRequest>(env, &TrsmRequest::col));
    g.pair(prevTrsmSource, 0, multStream);

    // trsm -> multStream at the level's panel-column owner (where the L21
    // blocks live, paper §5).
    g.connect(trsm, 0, multStream,
              [env, l](const flow::RouteContext&, const serial::ObjectBase&) {
                return env->dir->owner(l);
              });

    if (cfg.parallelMult) {
      const flow::OpId pmSplit =
          g.addSplit("pmSplit" + suffix, workers, makeOp<PmSplitOp>(env));
      const flow::OpId pmStore = g.addLeaf("pmStore" + suffix, workers, makeOp<PmStoreOp>(env));
      const flow::OpId pmCollect =
          g.addStream("pmCollect" + suffix, workers, makeOp<PmCollectOp>(env));
      const flow::OpId pmMul = g.addLeaf("pmMul" + suffix, workers, makeOp<PmMulOp>(env));
      const flow::OpId pmAssemble =
          g.addMerge("pmAssemble" + suffix, workers, makeOp<PmAssembleOp>(env));

      g.connect(multStream, 0, pmSplit, flow::roundRobinActive());
      g.connect(pmSplit, 0, pmStore, flow::roundRobinActive());
      g.pair(pmSplit, 0, pmCollect);
      g.connect(pmStore, 0, pmCollect, routeByField<PmStripStored>(&PmStripStored::home));
      g.connect(pmCollect, 0, pmMul, routeByField<PmLineWork>(&PmLineWork::target));
      g.pair(pmCollect, 0, pmAssemble);
      g.connect(pmMul, 0, pmAssemble, routeToOwner<PmTiles>(env, &PmTiles::j));
      g.connect(pmAssemble, 0, sub, routeToOwner<MultResult>(env, &MultResult::j));
    } else {
      const flow::OpId mult = g.addLeaf("mult" + suffix, workers, makeOp<MultOp>(env));
      g.connect(multStream, 0, mult, flow::roundRobinActive());
      g.connect(mult, 0, sub, routeToOwner<MultResult>(env, &MultResult::j));
    }
    g.pair(multStream, 0, nextStream);
    if (cfg.flowControl)
      g.setFlowControl(multStream, 0, flow::FlowControlSpec{cfg.fcLimit});

    // sub -> nextStream at the *next* panel owner's thread.
    const std::int32_t nextCol = l + 1;
    g.connect(sub, 0, nextStream,
              [env, nextCol](const flow::RouteContext&, const serial::ObjectBase&) {
                return env->dir->owner(nextCol);
              });

    // Row flips for previous columns.
    const flow::OpId flip = g.addLeaf("flip" + suffix, workers, makeOp<FlipOp>(env));
    g.connect(nextStream, NextStreamOp::kFlipPort, flip,
              routeToOwner<FlipRequest>(env, &FlipRequest::col));
    g.pair(nextStream, NextStreamOp::kFlipPort, termMerge);
    g.connect(flip, 0, termMerge, flow::routeTo(0));

    if (l + 2 < L) {
      prevTrsmSource = nextStream; // its port 0 feeds the next level's trsm
    } else {
      g.connectOutput(nextStream, NextStreamOp::kDonePort);
    }
  }

  auto start = std::make_shared<StartLu>();
  start->n = cfg.n;
  start->r = cfg.r;
  start->seed = cfg.seed;
  build.inputs.push_back(std::move(start));
  return build;
}

} // namespace dps::lu
