// High-level LU application runner: build -> run -> verify.
#pragma once

#include "core/engine.hpp"
#include "lu/builder.hpp"

namespace dps::lu {

/// Assembles the Program for a build and runs it on the engine.
core::RunResult runLu(core::SimEngine& engine, const LuBuild& build);

/// Reassembles the factored matrix + pivot history from harvested thread
/// states and returns the relative residual ‖P·A − L·U‖_F / ‖A‖_F against
/// the original test matrix.  Only meaningful after a DirectExec run.
double verifyLu(const LuConfig& cfg, const core::RunResult& result, flow::GroupId workers);

/// Checks that the run produced the expected termination outputs
/// ((levels-1) LevelDone + 1 Factored); throws on mismatch.
void checkOutputs(const LuConfig& cfg, const core::RunResult& result);

} // namespace dps::lu
