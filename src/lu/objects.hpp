// Data objects of the block LU application (paper §5, Fig. 5/7).
//
// Matrix payloads travel as BlockPayload, which supports *phantom* form for
// the NOALLOC simulation mode: the logical dimensions (and hence the exact
// wire size, via SizingArchive) are preserved while no element storage is
// allocated (paper §4/§7).
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"
#include "serial/object.hpp"

namespace dps::lu {

struct BlockPayload {
  std::int32_t rows = 0;
  std::int32_t cols = 0;
  std::vector<double> data; // empty while rows*cols > 0 => phantom

  bool phantom() const { return data.empty() && rows > 0 && cols > 0; }
  std::size_t logicalBytes() const {
    return static_cast<std::size_t>(rows) * cols * sizeof(double);
  }

  static BlockPayload fromMatrix(const lin::Matrix& m) {
    BlockPayload p;
    p.rows = m.rows();
    p.cols = m.cols();
    p.data = m.storage();
    return p;
  }
  static BlockPayload phantomOf(std::int32_t rows, std::int32_t cols) {
    BlockPayload p;
    p.rows = rows;
    p.cols = cols;
    return p;
  }
  lin::Matrix toMatrix() const;

  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, rows, cols);
    std::uint8_t ph = phantom() ? 1 : 0;
    ar.value(ph);
    if constexpr (Ar::isReading) {
      if (ph) {
        data.clear();
        ar.phantom(logicalBytes());
      } else {
        data.resize(static_cast<std::size_t>(rows) * cols);
        if (!data.empty()) ar.raw(data.data(), logicalBytes());
      }
    } else {
      if (ph) ar.phantom(logicalBytes());
      else if (!data.empty()) ar.raw(data.data(), logicalBytes());
    }
  }
};

/// Program input: factorize the n x n test matrix with block size r.
struct StartLu final : serial::Object<StartLu> {
  static constexpr const char* kTypeName = "lu.start";
  std::int32_t n = 0;
  std::int32_t r = 0;
  std::uint64_t seed = 0;
  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, n, r, seed);
  }
};

/// Panel results for one trailing column: L11 + pivots (paper step 2).
struct TrsmRequest final : serial::Object<TrsmRequest> {
  static constexpr const char* kTypeName = "lu.trsm";
  std::int32_t level = 0;
  std::int32_t col = 0;
  BlockPayload l11;                  // r x r unit-lower factor
  std::vector<std::int32_t> pivots;  // panel-local pivot rows
  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, level, col, pivots);
    l11.describe(ar);
  }
};

/// T12 block ready; carries the solved block to the multiplication stream.
struct T12Ready final : serial::Object<T12Ready> {
  static constexpr const char* kTypeName = "lu.t12";
  std::int32_t level = 0;
  std::int32_t col = 0;
  BlockPayload t12; // r x r
  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, level, col);
    t12.describe(ar);
  }
};

/// One block multiplication L21_i * T12_j: "two matrix blocks of size r x r"
/// (paper §5).
struct MultRequest final : serial::Object<MultRequest> {
  static constexpr const char* kTypeName = "lu.mult";
  std::int32_t level = 0;
  std::int32_t i = 0; // absolute row block index
  std::int32_t j = 0; // absolute column block index
  BlockPayload a;     // L21_i  (r x r)
  BlockPayload b;     // T12_j  (r x r)
  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, level, i, j);
    a.describe(ar);
    b.describe(ar);
  }
};

/// Product block heading to the subtraction at the column owner.
struct MultResult final : serial::Object<MultResult> {
  static constexpr const char* kTypeName = "lu.multres";
  std::int32_t level = 0;
  std::int32_t i = 0;
  std::int32_t j = 0;
  BlockPayload c; // r x r
  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, level, i, j);
    c.describe(ar);
  }
};

/// Subtraction done for block (i, j) of the level's trailing matrix.
struct SubNotify final : serial::Object<SubNotify> {
  static constexpr const char* kTypeName = "lu.subdone";
  std::int32_t level = 0;
  std::int32_t i = 0;
  std::int32_t j = 0;
  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, level, i, j);
  }
};

/// Row-flip request for an already-factored column (paper op (g)).
struct FlipRequest final : serial::Object<FlipRequest> {
  static constexpr const char* kTypeName = "lu.flip";
  std::int32_t level = 0; // level whose pivots are applied
  std::int32_t col = 0;   // target column block (col < level)
  std::vector<std::int32_t> pivots;
  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, level, col, pivots);
  }
};

/// Row flips applied (termination bookkeeping, paper op (h)).
struct FlipNotify final : serial::Object<FlipNotify> {
  static constexpr const char* kTypeName = "lu.flipdone";
  std::int32_t level = 0;
  std::int32_t col = 0;
  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, level, col);
  }
};

/// Output object: all row flips of `level`'s pivots are applied.
struct LevelDone final : serial::Object<LevelDone> {
  static constexpr const char* kTypeName = "lu.leveldone";
  std::int32_t level = 0;
  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, level);
  }
};

/// Output object: the final panel is factored.
struct Factored final : serial::Object<Factored> {
  static constexpr const char* kTypeName = "lu.factored";
  std::int32_t levels = 0;
  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, levels);
  }
};

// --- parallel sub-block multiplication (PM, paper Fig. 7) ---

/// Column strip of the second matrix (r x s), distributed for storage.
struct PmStrip final : serial::Object<PmStrip> {
  static constexpr const char* kTypeName = "lu.pm.strip";
  std::int32_t level = 0, i = 0, j = 0;
  std::int32_t strip = 0;      // strip index within B
  std::int32_t home = 0;       // thread coordinating this multiplication
  BlockPayload b;              // r x s
  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, level, i, j, strip, home);
    b.describe(ar);
  }
};

/// Storage acknowledgement for one strip.
struct PmStripStored final : serial::Object<PmStripStored> {
  static constexpr const char* kTypeName = "lu.pm.stored";
  std::int32_t level = 0, i = 0, j = 0;
  std::int32_t strip = 0;
  std::int32_t storedAt = 0; // worker thread holding the strip
  std::int32_t home = 0;
  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, level, i, j, strip, storedAt, home);
  }
};

/// Line block of the first matrix (s x r) sent to one storing thread.
struct PmLineWork final : serial::Object<PmLineWork> {
  static constexpr const char* kTypeName = "lu.pm.line";
  std::int32_t level = 0, i = 0, j = 0;
  std::int32_t rowStrip = 0; // strip index within A
  std::int32_t target = 0;   // thread that stores the B strips below
  std::int32_t home = 0;
  std::int32_t lastRowStrip = 0; // 1 when this is the final line for cleanup
  std::vector<std::int32_t> strips; // B strips stored at `target`
  BlockPayload a; // s x r
  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, level, i, j, rowStrip, target, home, lastRowStrip, strips);
    a.describe(ar);
  }
};

/// All s x s tiles produced by one line block on one storing thread,
/// concatenated column-wise (tiles.cols = s * strips.size()).
struct PmTiles final : serial::Object<PmTiles> {
  static constexpr const char* kTypeName = "lu.pm.tiles";
  std::int32_t level = 0, i = 0, j = 0;
  std::int32_t rowStrip = 0;
  std::vector<std::int32_t> strips;
  BlockPayload tiles;
  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, level, i, j, rowStrip, strips);
    tiles.describe(ar);
  }
};

/// Registers all LU object types with the serialization registry (for wire
/// round-trip tests); safe to call multiple times.
void registerLuObjects();

} // namespace dps::lu
