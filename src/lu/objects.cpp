#include "lu/objects.hpp"

#include <mutex>

#include "support/error.hpp"

namespace dps::lu {

lin::Matrix BlockPayload::toMatrix() const {
  DPS_CHECK(!phantom(), "cannot materialize a phantom payload");
  lin::Matrix m(rows, cols);
  m.storage() = data;
  return m;
}

void registerLuObjects() {
  static std::once_flag once;
  std::call_once(once, [] {
    auto& reg = serial::Registry::instance();
    reg.add(StartLu::kTypeName, [] { return std::make_unique<StartLu>(); });
    reg.add(TrsmRequest::kTypeName, [] { return std::make_unique<TrsmRequest>(); });
    reg.add(T12Ready::kTypeName, [] { return std::make_unique<T12Ready>(); });
    reg.add(MultRequest::kTypeName, [] { return std::make_unique<MultRequest>(); });
    reg.add(MultResult::kTypeName, [] { return std::make_unique<MultResult>(); });
    reg.add(SubNotify::kTypeName, [] { return std::make_unique<SubNotify>(); });
    reg.add(FlipRequest::kTypeName, [] { return std::make_unique<FlipRequest>(); });
    reg.add(FlipNotify::kTypeName, [] { return std::make_unique<FlipNotify>(); });
    reg.add(LevelDone::kTypeName, [] { return std::make_unique<LevelDone>(); });
    reg.add(Factored::kTypeName, [] { return std::make_unique<Factored>(); });
    reg.add(PmStrip::kTypeName, [] { return std::make_unique<PmStrip>(); });
    reg.add(PmStripStored::kTypeName, [] { return std::make_unique<PmStripStored>(); });
    reg.add(PmLineWork::kTypeName, [] { return std::make_unique<PmLineWork>(); });
    reg.add(PmTiles::kTypeName, [] { return std::make_unique<PmTiles>(); });
  });
}

} // namespace dps::lu
