// Kernel cost model for partial direct execution (paper §4/§7).
//
// PDEXEC replaces kernel invocations with "benchmarked times"; this model
// provides them, either from platform presets (the paper's UltraSparc II)
// or calibrated on the simulation host by measuring the real kernels — the
// paper's "measure the running times of the first n instances" approach,
// performed once up front.
#pragma once

#include <cstdint>

#include "support/fingerprint.hpp"
#include "support/time.hpp"

namespace dps::lu {

struct KernelCostModel {
  double gemmFlopsPerSec = 60e6;
  double trsmFlopsPerSec = 55e6;
  double panelFlopsPerSec = 45e6;
  /// Payload assembly / serialization copies.
  double copyBytesPerSec = 180e6;
  /// Row swapping throughput (two rows touched per swap).
  double swapBytesPerSec = 120e6;
  /// Fixed dispatch cost charged per kernel invocation.
  SimDuration perKernelOverhead = microseconds(20);

  SimDuration gemm(std::int32_t m, std::int32_t n, std::int32_t k) const;
  SimDuration trsm(std::int32_t k, std::int32_t n) const;
  SimDuration panel(std::int32_t m, std::int32_t k) const;
  SimDuration copy(std::size_t bytes) const;
  /// Cost of `swaps` row exchanges across `rowBytes`-wide rows.
  SimDuration rowSwaps(std::int32_t swaps, std::size_t rowBytes) const;

  /// Scales all throughputs by `f` (>1 = faster platform).
  KernelCostModel scaled(double f) const;

  /// The paper's measurement platform (440 MHz UltraSparc II): tuned so the
  /// serial 2592x2592 LU takes ~185 s (Table 1's serial reference).
  static KernelCostModel ultraSparc440();

  /// Measures the real kernels on the current host with short probes and
  /// fits the throughput parameters; `probeSize` controls probe dimensions.
  static KernelCostModel calibrateHost(std::int32_t probeSize = 192);
};

/// Hashes every semantic field into `fp` (cache-key identity).
inline void fingerprintInto(Fingerprint& fp, const KernelCostModel& m) {
  fp.add(m.gemmFlopsPerSec)
      .add(m.trsmFlopsPerSec)
      .add(m.panelFlopsPerSec)
      .add(m.copyBytesPerSec)
      .add(m.swapBytesPerSec)
      .add(m.perKernelOverhead);
}

} // namespace dps::lu
