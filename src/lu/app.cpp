#include "lu/app.hpp"

#include "linalg/blocked_lu.hpp"
#include "lu/objects.hpp"
#include "support/error.hpp"

namespace dps::lu {

core::RunResult runLu(core::SimEngine& engine, const LuBuild& build) {
  flow::Program prog;
  prog.graph = build.graph.get();
  const std::int32_t nodes = build.cfg.workers;
  prog.deployment = flow::Deployment::roundRobin(*build.graph, {build.cfg.workers}, nodes);
  prog.inputs = build.inputs;
  return engine.run(prog);
}

double verifyLu(const LuConfig& cfg, const core::RunResult& result, flow::GroupId workers) {
  const std::int32_t n = cfg.n;
  const std::int32_t r = cfg.r;
  lin::BlockLuResult factored;
  factored.lu = lin::Matrix(n, n);
  factored.pivots.resize(cfg.levels());

  const auto& states = result.threadStates.at(workers);
  std::int32_t columnsSeen = 0;
  for (const auto& stPtr : states) {
    const auto* st = dynamic_cast<const LuThreadState*>(stPtr.get());
    DPS_CHECK(st != nullptr, "worker state is not LuThreadState");
    for (const auto& [col, panel] : st->columns) {
      DPS_CHECK(panel.rows() == n && panel.cols() == r, "bad column dimensions");
      factored.lu.setBlock(0, col * r, panel);
      ++columnsSeen;
    }
    for (const auto& [level, pivots] : st->pivotsByLevel) {
      DPS_CHECK(factored.pivots.at(level).empty(), "duplicate pivots for a level");
      factored.pivots[level] = pivots;
    }
  }
  DPS_CHECK(columnsSeen == cfg.levels(), "not all columns were harvested");
  for (const auto& p : factored.pivots)
    DPS_CHECK(!p.empty(), "missing pivot history for a level");

  const lin::Matrix original = lin::testMatrix(cfg.seed, n);
  return lin::luResidual(original, factored, r);
}

void checkOutputs(const LuConfig& cfg, const core::RunResult& result) {
  const std::int32_t expected = expectedOutputs(cfg);
  DPS_CHECK(static_cast<std::int32_t>(result.outputs.size()) == expected,
            "LU produced " + std::to_string(result.outputs.size()) + " outputs, expected " +
                std::to_string(expected));
  std::int32_t levelDone = 0;
  std::int32_t factored = 0;
  for (const auto& obj : result.outputs) {
    if (dynamic_cast<const LevelDone*>(obj.get())) ++levelDone;
    if (dynamic_cast<const Factored*>(obj.get())) ++factored;
  }
  DPS_CHECK(levelDone == cfg.levels() - 1, "wrong LevelDone count");
  DPS_CHECK(factored == 1, "missing Factored output");
}

} // namespace dps::lu
