// Per-thread application state and the shared column directory.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "flow/operation.hpp"
#include "linalg/matrix.hpp"
#include "support/error.hpp"

namespace dps::lu {

/// Maps column blocks to owning worker threads.  Shared by routing
/// functions and operations; mutated only at iteration boundaries when the
/// malleability controller migrates columns off deallocated threads.
class ColumnDirectory {
public:
  ColumnDirectory(std::int32_t columns, std::int32_t threads) {
    DPS_CHECK(columns > 0 && threads > 0, "bad directory dimensions");
    owners_.resize(columns);
    for (std::int32_t c = 0; c < columns; ++c) owners_[c] = c % threads;
  }

  std::int32_t columns() const { return static_cast<std::int32_t>(owners_.size()); }
  std::int32_t owner(std::int32_t col) const { return owners_.at(col); }
  void setOwner(std::int32_t col, std::int32_t thread) { owners_.at(col) = thread; }

  std::vector<std::int32_t> columnsOf(std::int32_t thread) const {
    std::vector<std::int32_t> out;
    for (std::int32_t c = 0; c < columns(); ++c)
      if (owners_[c] == thread) out.push_back(c);
    return out;
  }

private:
  std::vector<std::int32_t> owners_;
};

/// Key for PM strip storage: (level, i, j, strip).
struct PmKey {
  std::int32_t level = 0, i = 0, j = 0, strip = 0;
  friend auto operator<=>(const PmKey&, const PmKey&) = default;
};

/// Worker-thread state: the column blocks this thread owns (full n x r
/// panels), plus PM strip storage.  In NOALLOC mode columns are tracked by
/// id only — no element storage exists.
struct LuThreadState final : flow::ThreadState {
  /// col -> n x r panel.  Present only when allocation is enabled.
  std::map<std::int32_t, lin::Matrix> columns;
  /// Columns owned in NOALLOC mode (ids only).
  std::set<std::int32_t> phantomColumns;
  /// PM: stored column strips of B (real mode).
  std::map<PmKey, lin::Matrix> pmStrips;
  /// PM: stored strip ids (NOALLOC mode).
  std::set<PmKey> pmPhantom;
  /// Pivot history of panels factored on this thread (level -> pivots);
  /// harvested after a run to verify the factorization.
  std::map<std::int32_t, std::vector<std::int32_t>> pivotsByLevel;

  bool ownsColumn(std::int32_t col) const {
    return columns.count(col) > 0 || phantomColumns.count(col) > 0;
  }
};

} // namespace dps::lu
