// Flow-graph construction for the block LU application (paper §5–§6).
//
// Four graph variants, freely combinable exactly as in the paper:
//   * Basic      — the streams act as merge-split barriers (no pipelining);
//   * P          — pipelined: streams emit eagerly as groups complete;
//   * FC         — flow control on the multiplication-request stream;
//   * PM         — block multiplications further parallelized over sub
//                  blocks (paper Fig. 7).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "flow/graph.hpp"
#include "lu/cost_model.hpp"
#include "lu/sampler.hpp"
#include "lu/state.hpp"

namespace dps::lu {

struct LuConfig {
  std::int32_t n = 648;    // matrix dimension
  std::int32_t r = 162;    // decomposition block size (must divide n)
  std::uint64_t seed = 7;  // test-matrix seed

  bool pipelined = false;    // P
  bool flowControl = false;  // FC (only meaningful with streams emitting)
  std::int32_t fcLimit = 8;  // max in-flight multiplication requests/instance
  bool parallelMult = false; // PM
  std::int32_t subBlock = 0; // PM sub-block size s; 0 => r/2

  std::int32_t workers = 4; // worker DPS threads (column owners)

  std::int32_t levels() const { return n / r; }
  std::int32_t effSubBlock() const { return subBlock > 0 ? subBlock : r / 2; }
  void validate() const;
  /// Short tag like "P+FC r=216" for experiment tables.
  std::string variantName() const;
};

/// Everything an engine needs to run the application.
struct LuBuild {
  std::unique_ptr<flow::FlowGraph> graph;
  std::shared_ptr<ColumnDirectory> directory;
  flow::GroupId workersGroup = -1;
  LuConfig cfg;
  /// Input objects for the Program.
  std::vector<serial::ObjectPtr> inputs;
};

/// Builds the graph.  `allocate` = false produces the NOALLOC variant
/// (phantom payloads, no column storage; kernels must not execute).
/// With a `sampler` (PDEXEC + allocation), the first n instances of each
/// kernel shape execute and are measured; later instances charge the
/// average — the paper's first-n-instances calibration (§4).
LuBuild buildLu(const LuConfig& cfg, const KernelCostModel& model, bool allocate = true,
                std::shared_ptr<KernelSampler> sampler = nullptr);

/// Expected number of program outputs: one LevelDone per level with flips
/// plus the final Factored notification.
std::int32_t expectedOutputs(const LuConfig& cfg);

} // namespace dps::lu
