#include "lu/cost_model.hpp"

#include <chrono>

#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"
#include "support/error.hpp"

namespace dps::lu {

namespace {
SimDuration flopsTime(double flops, double rate, SimDuration overhead) {
  DPS_CHECK(rate > 0, "non-positive kernel throughput");
  return overhead + seconds(flops / rate);
}
} // namespace

SimDuration KernelCostModel::gemm(std::int32_t m, std::int32_t n, std::int32_t k) const {
  return flopsTime(lin::gemmFlops(m, n, k), gemmFlopsPerSec, perKernelOverhead);
}

SimDuration KernelCostModel::trsm(std::int32_t k, std::int32_t n) const {
  return flopsTime(lin::trsmFlops(k, n), trsmFlopsPerSec, perKernelOverhead);
}

SimDuration KernelCostModel::panel(std::int32_t m, std::int32_t k) const {
  return flopsTime(lin::panelLuFlops(m, k), panelFlopsPerSec, perKernelOverhead);
}

SimDuration KernelCostModel::copy(std::size_t bytes) const {
  return seconds(static_cast<double>(bytes) / copyBytesPerSec);
}

SimDuration KernelCostModel::rowSwaps(std::int32_t swaps, std::size_t rowBytes) const {
  return seconds(static_cast<double>(swaps) * 2.0 * static_cast<double>(rowBytes) /
                 swapBytesPerSec);
}

KernelCostModel KernelCostModel::scaled(double f) const {
  DPS_CHECK(f > 0, "scale factor must be positive");
  KernelCostModel m = *this;
  m.gemmFlopsPerSec *= f;
  m.trsmFlopsPerSec *= f;
  m.panelFlopsPerSec *= f;
  m.copyBytesPerSec *= f;
  m.swapBytesPerSec *= f;
  m.perKernelOverhead = scale(m.perKernelOverhead, 1.0 / f);
  return m;
}

KernelCostModel KernelCostModel::ultraSparc440() {
  KernelCostModel m;
  // 2/3 * 2592^3 = 1.16e10 flops at ~63 MFlop/s ~= 184 s serial — matches
  // the paper's 185.1 s single-node reference (Table 1).
  m.gemmFlopsPerSec = 66e6;
  m.trsmFlopsPerSec = 58e6;
  m.panelFlopsPerSec = 48e6;
  m.copyBytesPerSec = 150e6;
  m.swapBytesPerSec = 110e6;
  m.perKernelOverhead = microseconds(30);
  return m;
}

KernelCostModel KernelCostModel::calibrateHost(std::int32_t probeSize) {
  using clock = std::chrono::steady_clock;
  const std::int32_t p = probeSize;
  lin::Matrix a = lin::testMatrix(11, p);
  lin::Matrix b = lin::testMatrix(13, p);
  lin::Matrix c(p, p);

  auto timeIt = [](auto&& fn) {
    const auto t0 = clock::now();
    fn();
    return std::chrono::duration<double>(clock::now() - t0).count();
  };

  KernelCostModel m;

  // gemm probe (run twice, keep the second to skip cold caches).
  timeIt([&] { lin::gemmSubtract(a, b, c); });
  const double tg = timeIt([&] { lin::gemmSubtract(a, b, c); });
  m.gemmFlopsPerSec = lin::gemmFlops(p, p, p) / tg;

  // trsm probe.
  lin::Matrix rhs = b;
  const double tt = timeIt([&] { lin::trsmLowerUnit(a, rhs); });
  m.trsmFlopsPerSec = lin::trsmFlops(p, p) / tt;

  // panel probe (2p x p tall panel).
  lin::Matrix panel = lin::testPanel(17, 2 * p, 0, p);
  std::vector<std::int32_t> piv;
  const double tp = timeIt([&] { lin::panelLu(panel, piv); });
  m.panelFlopsPerSec = lin::panelLuFlops(2 * p, p) / tp;

  // copy probe.
  std::vector<double> src(static_cast<std::size_t>(p) * p, 1.0);
  std::vector<double> dst(src.size());
  const double tc = timeIt([&] {
    for (int rep = 0; rep < 8; ++rep) dst = src;
  });
  m.copyBytesPerSec = 8.0 * static_cast<double>(src.size() * sizeof(double)) / tc;
  m.swapBytesPerSec = m.copyBytesPerSec / 2.0;
  m.perKernelOverhead = microseconds(2);
  return m;
}

} // namespace dps::lu
