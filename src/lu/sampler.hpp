// First-n-instances kernel sampling (paper §4): "For parallel programs
// that perform the same operations repeatedly, we may measure the running
// times of the first n instances of an operation, and reuse the averaged
// measure for the remaining instances."
//
// Used by the LU application in PDEXEC mode with allocation enabled: the
// first `samplesPerKey` invocations of each kernel shape really execute
// (and are timed on the wall clock); every later invocation charges the
// running average instead.  This makes predictions host-accurate without
// paying the full direct-execution cost — the paper's hybrid between
// direct execution and modeling.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>

#include "support/time.hpp"

namespace dps::lu {

class KernelSampler {
public:
  explicit KernelSampler(int samplesPerKey = 3) : samplesPerKey_(samplesPerKey) {}

  /// Runs `realWork` and measures it while fewer than samplesPerKey
  /// instances of `key` have been seen; afterwards skips the work and
  /// returns the average of the measured instances.
  template <typename Fn>
  SimDuration charge(std::uint64_t key, Fn&& realWork) {
    Stat& s = stats_[key];
    if (s.count < samplesPerKey_) {
      const auto t0 = std::chrono::steady_clock::now();
      realWork();
      const double sec = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      ++s.count;
      s.totalSec += sec;
      return seconds(sec);
    }
    ++s.reused;
    return seconds(s.totalSec / s.count);
  }

  /// Kernel-shape key: kind tag + dominant dimension.
  static std::uint64_t key(std::uint32_t kind, std::uint64_t dim) {
    return (static_cast<std::uint64_t>(kind) << 48) ^ dim;
  }

  std::uint64_t sampledCount() const {
    std::uint64_t n = 0;
    for (const auto& [k, s] : stats_) {
      (void)k;
      n += static_cast<std::uint64_t>(s.count);
    }
    return n;
  }
  std::uint64_t reusedCount() const {
    std::uint64_t n = 0;
    for (const auto& [k, s] : stats_) {
      (void)k;
      n += s.reused;
    }
    return n;
  }

private:
  struct Stat {
    int count = 0;
    double totalSec = 0;
    std::uint64_t reused = 0;
  };
  int samplesPerKey_;
  std::map<std::uint64_t, Stat> stats_;
};

/// Kernel kind tags for sampler keys.
enum SampledKernel : std::uint32_t {
  kPanelKernel = 1,
  kTrsmKernel = 2,
  kGemmKernel = 3,
};

} // namespace dps::lu
