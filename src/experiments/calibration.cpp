#include "experiments/calibration.hpp"

#include <cmath>
#include <vector>

#include "core/engine.hpp"
#include "flow/graph.hpp"
#include "flow/ops.hpp"
#include "flow/routing.hpp"
#include "support/error.hpp"

namespace dps::exp {

namespace {

/// Probe payload: opaque bytes of a configurable size.
struct ProbeMsg final : serial::Object<ProbeMsg> {
  static constexpr const char* kTypeName = "calib.probe";
  std::int64_t index = 0;
  std::vector<std::uint8_t> payload;
  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, index, payload);
  }
};

struct ProbeDone final : serial::Object<ProbeDone> {
  static constexpr const char* kTypeName = "calib.done";
  std::int64_t count = 0;
  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, count);
  }
};

class ProbeSplit final : public flow::QueueEmitter {
public:
  ProbeSplit(int rounds, std::size_t bytes) : rounds_(rounds), bytes_(bytes) {}
  void onInput(flow::OpContext&, const serial::ObjectBase&) override {
    for (int i = 0; i < rounds_; ++i) {
      auto msg = std::make_shared<ProbeMsg>();
      msg->index = i;
      msg->payload.assign(bytes_, static_cast<std::uint8_t>(i));
      enqueue(std::move(msg));
    }
  }

private:
  int rounds_;
  std::size_t bytes_;
};

class ProbeSink final : public flow::Operation {
public:
  void onInput(flow::OpContext&, const serial::ObjectBase&) override { ++count_; }
  void onAllInputsDone(flow::OpContext& ctx) override {
    auto done = std::make_shared<ProbeDone>();
    done->count = count_;
    ctx.post(std::move(done));
  }

private:
  std::int64_t count_ = 0;
};

/// Cross-node transfer durations (in trace order) for `rounds` probes of
/// `bytes` each, serialized one at a time (flow control 1) so they never
/// contend.
std::vector<SimDuration> probeDurations(const core::SimConfig& cfg, int rounds,
                                        std::size_t bytes) {
  flow::FlowGraph g;
  const auto sender = g.addGroup("sender");
  const auto receiver = g.addGroup("receiver");
  using flow::makeOp;
  const auto split = g.addSplit("probe", sender, makeOp<ProbeSplit>(rounds, bytes));
  const auto sink = g.addMerge("sink", receiver, makeOp<ProbeSink>());
  g.setEntry(split);
  g.connect(split, 0, sink, flow::routeTo(0));
  g.pair(split, 0, sink);
  g.setFlowControl(split, 0, flow::FlowControlSpec{1});
  g.connectOutput(sink, 0);

  flow::Program prog;
  prog.graph = &g;
  prog.deployment.nodeCount = 2;
  prog.deployment.groupNodes = {{0}, {1}};
  prog.inputs.push_back(std::make_shared<ProbeMsg>());

  core::SimConfig probeCfg = cfg;
  probeCfg.recordTrace = true;
  core::SimEngine engine(probeCfg);
  auto result = engine.run(prog);
  DPS_CHECK(result.trace != nullptr, "calibration needs trace recording");

  std::vector<SimDuration> durations;
  durations.reserve(static_cast<std::size_t>(rounds));
  for (const auto& t : result.trace->transfers()) {
    if (t.src == t.dst) continue;
    durations.push_back(t.end - t.start);
  }
  DPS_CHECK(!durations.empty(), "calibration probes produced no transfers");
  return durations;
}

SimDuration meanOf(const std::vector<SimDuration>& durations) {
  SimDuration total{};
  for (SimDuration d : durations) total += d;
  return SimDuration{total.count() / static_cast<std::int64_t>(durations.size())};
}

} // namespace

CalibrationResult calibratePlatform(const core::SimConfig& referenceCfg,
                                    std::uint64_t fidelitySeed, int rounds,
                                    std::size_t smallBytes, std::size_t largeBytes) {
  DPS_CHECK(rounds > 0, "calibration needs probes");
  DPS_CHECK(largeBytes > smallBytes, "probe sizes must differ");
  core::SimConfig cfg = referenceCfg;
  cfg.fidelity.seed = fidelitySeed;

  CalibrationResult fit;
  const auto smallProbes = probeDurations(cfg, rounds, smallBytes);
  const auto largeProbes = probeDurations(cfg, rounds, largeBytes);
  fit.smallMean = meanOf(smallProbes);
  fit.largeMean = meanOf(largeProbes);
  fit.probeCount = smallProbes.size() + largeProbes.size();

  // Two-point fit of t = l + s/b.  The envelope adds a constant to both
  // probe sizes, so it cancels in the bandwidth estimate.
  const double dSec = toSeconds(fit.largeMean - fit.smallMean);
  DPS_CHECK(dSec > 0, "large probes not slower than small ones");
  fit.bytesPerSec = static_cast<double>(largeBytes - smallBytes) / dSec;
  fit.latency =
      fit.smallMean - seconds(static_cast<double>(smallBytes) / fit.bytesPerSec);
  DPS_CHECK(fit.latency > SimDuration::zero(), "fitted negative latency");

  // Goodness of fit over the individual probes (the means sit on the fitted
  // line by construction; the spread around it does not).
  double residual = 0;
  auto accumulate = [&](const std::vector<SimDuration>& probes, std::size_t bytes) {
    const double model =
        toSeconds(fit.latency) + static_cast<double>(bytes) / fit.bytesPerSec;
    for (SimDuration d : probes) residual += std::abs(toSeconds(d) - model) / model;
  };
  accumulate(smallProbes, smallBytes);
  accumulate(largeProbes, largeBytes);
  fit.residual = residual / static_cast<double>(fit.probeCount);
  return fit;
}

CalibrationResult calibratePlatform(const core::SimConfig& referenceCfg, int rounds,
                                    std::size_t smallBytes, std::size_t largeBytes) {
  return calibratePlatform(referenceCfg, referenceCfg.fidelity.seed, rounds, smallBytes,
                           largeBytes);
}

net::PlatformProfile applyCalibration(net::PlatformProfile base, const CalibrationResult& fit) {
  base.latency = fit.latency;
  base.bandwidthBytesPerSec = fit.bytesPerSec;
  return base;
}

} // namespace dps::exp
