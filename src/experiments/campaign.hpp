// Experiment campaigns: declarative sweeps of (config x seed x plan)
// observations executed concurrently on a thread pool.
//
// Every figure/table reproduction is a campaign: a list of scenario points
// handed to ScenarioRunner.  Points are independent single-threaded
// simulations, so a campaign fans them out across cores and still returns a
// result set that is ordered by point index and bit-identical to a serial
// run — each engine is seeded from its point alone, and results land in
// pre-sized slots (no completion-order dependence).
//
// Grids expand in row-major order (n, r, workers, variant, plan/policy,
// fidelity seed innermost), mirroring the nested loops the benches used to
// hand-roll.  Aggregates (mean/stddev/min/max of measured, predicted and
// signed error) plus JSON/CSV emitters make campaign outputs diffable
// across PRs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "experiments/scenario.hpp"
#include "malleable/controller.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"

namespace dps::exp {

/// One observation to make: a scenario configuration plus the "machine
/// state" seed of its reference run.
struct CampaignPoint {
  lu::LuConfig cfg;
  mall::AllocationPlan plan{};
  std::uint64_t fidelitySeed = 1;
  mall::RemovalPolicy policy = mall::RemovalPolicy::MigrateColumns;
  /// Optional display label; empty uses ScenarioRunner's default.
  std::string label;
};

/// Named combination of the LU flow-graph toggles.
struct VariantSpec {
  std::string name;
  bool pipelined = false;
  bool parallelMult = false;
  bool flowControl = false;
};

/// Declarative sweep: the cartesian product of the listed dimensions.
/// Empty dimensions inherit the single value from `base` (or the defaults).
struct SweepGrid {
  lu::LuConfig base;                        // seed, fcLimit, subBlock, ...
  std::vector<std::int32_t> n;              // matrix sizes
  std::vector<std::int32_t> r;              // block sizes
  std::vector<std::int32_t> workers;        // node counts
  std::vector<VariantSpec> variants;        // graph variants
  std::vector<mall::AllocationPlan> plans;  // allocation plans
  std::vector<mall::RemovalPolicy> policies;
  std::vector<std::uint64_t> fidelitySeeds; // reference-run machine states

  /// Expands to points in deterministic row-major order.
  std::vector<CampaignPoint> expand() const;
  std::size_t size() const;
};

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).  Shared by the campaign emitters and
/// the benches' --json writers.
std::string jsonEscape(const std::string& s);

/// Campaign-level aggregate statistics.
struct CampaignAggregate {
  OnlineStats measuredSec;
  OnlineStats predictedSec;
  OnlineStats error; // signed, paper Fig. 13 convention
};

struct CampaignResult {
  std::vector<CampaignPoint> points;
  std::vector<Observation> observations; // index-aligned with `points`
  unsigned jobs = 1;                     // concurrency the run used

  CampaignAggregate aggregate() const;

  /// Signed errors in point order (histogram / fractionWithin input).
  std::vector<double> errors() const;

  /// JSON object {"jobs":..,"observations":[..],"aggregate":{..}}.
  void writeJson(std::ostream& os) const;
  std::string jsonString() const;

  /// CSV with one row per observation, header included.
  void writeCsv(std::ostream& os) const;
};

/// A set of campaign points executed against one ScenarioRunner.
class Campaign {
public:
  explicit Campaign(EngineSettings settings = {});

  /// Adds one point; returns its index (== observation index in results).
  std::size_t add(CampaignPoint point);
  std::size_t add(const lu::LuConfig& cfg, const mall::AllocationPlan& plan = {},
                  std::uint64_t fidelitySeed = 1,
                  mall::RemovalPolicy policy = mall::RemovalPolicy::MigrateColumns,
                  std::string label = {});
  /// Appends a whole grid; returns the index of its first point.
  std::size_t add(const SweepGrid& grid);

  std::size_t size() const { return points_.size(); }
  const std::vector<CampaignPoint>& points() const { return points_; }
  const ScenarioRunner& runner() const { return runner_; }

  /// Executes all points with up to `jobs` concurrent simulations
  /// (0 = hardware concurrency).  jobs == 1 runs serially on the caller;
  /// any jobs value produces bit-identical observations in point order.
  CampaignResult run(unsigned jobs = 0) const;
  /// Same, on an existing pool (pool workers + the calling thread).
  CampaignResult run(ThreadPool& pool) const;

private:
  CampaignResult prepare(unsigned jobs) const;
  Observation execute(std::size_t index) const;

  ScenarioRunner runner_;
  std::vector<CampaignPoint> points_;
};

} // namespace dps::exp
