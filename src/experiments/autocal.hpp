// Automated calibration search (paper §4: platform parameters "must be
// measured or estimated separately for each target parallel machine").
//
// exp::calibratePlatform performs a single two-point ping-pong fit of l and
// b.  This subsystem instead frames calibration as *parallel optimization*
// (CGSim / McDonald-&-Suter style): a bounded ParamSpace over the
// predictor's platform profile and kernel-cost scale, an ObjectiveSpec of
// validation scenarios scored by mean |signed error| of predicted vs
// reference runs, and pluggable search strategies (grid, seeded random,
// coordinate-descent refinement) driven by a budgeted search loop.
//
// Candidate evaluations fan out over the campaign thread pool: each
// (candidate, scenario) prediction is an independent single-threaded
// simulation whose result lands in an index-addressed slot, so a search is
// bit-identical at any --jobs — the same determinism contract as
// exp::Campaign.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "experiments/scenario.hpp"
#include "jacobi/app.hpp"
#include "support/rng.hpp"

namespace dps::exp {

// ---------------------------------------------------------------------------
// Candidate + ParamSpace

/// One point of the calibration search: a full predictor platform profile
/// plus a scale factor on the kernel cost model's throughputs.  kernelScale
/// is stored explicitly (not folded into the model) so encode() can read it
/// back — apply/encode round-trip exactly.
struct Candidate {
  net::PlatformProfile profile;
  /// Multiplier on every modeled kernel throughput (LU KernelCostModel and
  /// the Jacobi cost model alike); >1 = faster compute than the base model.
  double kernelScale = 1.0;
};

/// The tunable knobs a ParamSpace dimension can address.  Durations are
/// encoded in seconds.
enum class Param : std::uint8_t {
  LatencySec,             // profile.latency
  BandwidthBytesPerSec,   // profile.bandwidthBytesPerSec
  PerStepOverheadSec,     // profile.perStepOverhead
  LocalDeliverySec,       // profile.localDelivery
  CpuPerOutgoingTransfer, // profile.cpuPerOutgoingTransfer
  CpuPerIncomingTransfer, // profile.cpuPerIncomingTransfer
  ComputeScale,           // profile.computeScale
  KernelScale,            // Candidate::kernelScale
};

const char* paramName(Param p);
double getParam(const Candidate& c, Param p);
void setParam(Candidate& c, Param p, double v);

/// One named, bounded search dimension.
struct ParamDim {
  Param key{};
  double lo = 0;
  double hi = 0;
  double width() const { return hi - lo; }
};

/// An ordered list of bounded dimensions; candidate encodings are vectors
/// of dimension values in this order.
class ParamSpace {
public:
  /// Adds a dimension (lo < hi required); returns *this for chaining.
  ParamSpace& add(Param key, double lo, double hi);

  std::size_t size() const { return dims_.size(); }
  const std::vector<ParamDim>& dims() const { return dims_; }

  /// Reads the dimension values out of a candidate.
  std::vector<double> encode(const Candidate& c) const;
  /// Returns `base` with the dimension values overwritten from `x`
  /// (non-dimension fields keep their base values).  Inverse of encode():
  /// encode(apply(base, x)) == x up to duration quantization (1 ns).
  Candidate apply(Candidate base, const std::vector<double>& x) const;
  /// Clamps each coordinate into its dimension's [lo, hi] box.
  std::vector<double> clamp(std::vector<double> x) const;
  /// Midpoint of the box.
  std::vector<double> center() const;

  /// The default search box around a warm-start candidate: latency and
  /// bandwidth within [1/4, 4]x of the warm start, per-step overhead up to
  /// 4x, kernel scale within [1/2, 2]x.  With `includeFidelityDims` the box
  /// additionally searches the dimensions the fidelity layer perturbs —
  /// local delivery (per-message overhead), the per-transfer CPU costs and
  /// the compute-speed scale (bandwidth derating shows up as effective
  /// latency/bandwidth, these as the residual per-message/CPU error) — the
  /// ROADMAP's "search the fidelity-layer dimensions themselves".
  static ParamSpace around(const Candidate& warmStart, bool includeFidelityDims = false);

private:
  std::vector<ParamDim> dims_;
};

// ---------------------------------------------------------------------------
// Objective

/// One validation scenario: an application configuration plus the fidelity
/// seed ("machine state") of its reference run.
struct ValidationScenario {
  enum class App : std::uint8_t { Lu, Jacobi };
  App app = App::Lu;
  std::string label;
  lu::LuConfig lu;
  mall::AllocationPlan plan{};
  mall::RemovalPolicy policy = mall::RemovalPolicy::MigrateColumns;
  jacobi::JacobiConfig jacobi{};
  std::uint64_t fidelitySeed = 1;

  static ValidationScenario luCase(
      const lu::LuConfig& cfg, std::uint64_t fidelitySeed, const mall::AllocationPlan& plan = {},
      mall::RemovalPolicy policy = mall::RemovalPolicy::MigrateColumns);
  static ValidationScenario jacobiCase(const jacobi::JacobiConfig& cfg,
                                       std::uint64_t fidelitySeed);
};

/// The validation set a search is scored against, plus the scoring rule.
struct ObjectiveSpec {
  std::vector<ValidationScenario> scenarios;

  /// Mean |signed error| — the number the search minimizes.
  static double score(const std::vector<double>& signedErrors);

  /// Cross-app default set: LU at several matrix/block sizes, one dynamic
  /// allocation plan, and a Jacobi stencil case.  Sized so a full budgeted
  /// search stays CI-friendly.
  static ObjectiveSpec validationSet();
};

/// Abstract candidate scorer: encoding -> per-scenario signed errors.
/// scenarioError must be const + thread-safe (it is called concurrently
/// from pool workers).
class Objective {
public:
  virtual ~Objective() = default;
  virtual std::size_t scenarioCount() const = 0;
  virtual std::string scenarioLabel(std::size_t scenario) const = 0;
  /// Signed prediction error (paper Fig. 13 convention) of the candidate
  /// encoded by `x` on one scenario.
  virtual double scenarioError(const std::vector<double>& x, std::size_t scenario) const = 0;
};

/// Simulator-backed objective: reference runs (fidelity layer ON, per-
/// scenario machine-state seed) are executed once up front — fanned out on
/// the thread pool — then each candidate evaluation runs only the
/// prediction leg per scenario with the candidate's profile and scaled
/// cost model.
class ScenarioObjective final : public Objective {
public:
  /// `reference` describes the machine being calibrated against (profile +
  /// cost model + fidelity config); `base` is the candidate whose fields
  /// non-searched dimensions inherit.  Reference runs execute in the
  /// constructor with up to `jobs` concurrent simulations (0 = hardware).
  ScenarioObjective(EngineSettings reference, Candidate base, ParamSpace space,
                    ObjectiveSpec spec, unsigned jobs = 1);

  std::size_t scenarioCount() const override { return scenarios_.size(); }
  std::string scenarioLabel(std::size_t scenario) const override;
  double scenarioError(const std::vector<double>& x, std::size_t scenario) const override;

  double referenceSec(std::size_t scenario) const { return referenceSec_[scenario]; }
  const Candidate& base() const { return base_; }
  const ParamSpace& space() const { return space_; }

private:
  double predictSec(const Candidate& c, const ValidationScenario& s) const;
  double measureReferenceSec(const ValidationScenario& s) const;

  EngineSettings reference_;
  Candidate base_;
  ParamSpace space_;
  std::vector<ValidationScenario> scenarios_;
  std::vector<double> referenceSec_;
  jacobi::JacobiCostModel jacobiModel_{};
};

// ---------------------------------------------------------------------------
// Search strategies

/// One scored evaluation.
struct EvalRecord {
  std::size_t index = 0;      // evaluation order, 0-based
  std::string strategy;       // which strategy proposed it
  std::vector<double> x;      // candidate encoding
  std::vector<double> errors; // per-scenario signed errors
  double score = 0;           // ObjectiveSpec::score(errors)
};

/// Evaluation trace + incumbent tracking (earliest record wins score ties,
/// so the incumbent is independent of evaluation concurrency).
struct SearchHistory {
  std::vector<EvalRecord> records;
  std::size_t bestIndex = 0;

  bool empty() const { return records.empty(); }
  const EvalRecord& best() const { return records[bestIndex]; }
  void append(EvalRecord rec);
};

/// A search strategy proposes candidate batches; the driver evaluates them
/// and appends the results to the shared history before asking again.
/// Strategies must be deterministic functions of their construction
/// arguments (including any seed) and the history — never of wall clock,
/// thread timing or evaluation order within a batch.
class SearchStrategy {
public:
  virtual ~SearchStrategy() = default;
  virtual std::string name() const = 0;
  /// Returns at most `maxCandidates` encodings to evaluate next; empty
  /// means the strategy is finished.
  virtual std::vector<std::vector<double>> propose(const ParamSpace& space,
                                                   const SearchHistory& history,
                                                   std::size_t maxCandidates) = 0;
};

/// Full-factorial sweep: the largest per-dimension level count whose
/// product fits the point budget, expanded row-major (last dim innermost).
class GridSearch final : public SearchStrategy {
public:
  explicit GridSearch(std::size_t points);
  std::string name() const override { return "grid"; }
  std::vector<std::vector<double>> propose(const ParamSpace& space,
                                           const SearchHistory& history,
                                           std::size_t maxCandidates) override;

private:
  std::size_t points_;
  bool emitted_ = false;
};

/// Uniform seeded sampling of the box; draws happen on the caller thread in
/// a fixed order, so the proposal sequence depends only on the seed.
class RandomSearch final : public SearchStrategy {
public:
  RandomSearch(std::size_t points, std::uint64_t seed);
  std::string name() const override { return "random"; }
  std::vector<std::vector<double>> propose(const ParamSpace& space,
                                           const SearchHistory& history,
                                           std::size_t maxCandidates) override;

private:
  std::size_t remaining_;
  Rng rng_;
};

/// Local refinement from the incumbent: probes +-step (as a fraction of each
/// dimension's width) along one dimension at a time, moves on improvement,
/// and halves the step after a full pass without one.
class CoordinateDescent final : public SearchStrategy {
public:
  explicit CoordinateDescent(double initialStep = 0.25, double minStep = 1e-3);
  std::string name() const override { return "coordinate-descent"; }
  std::vector<std::vector<double>> propose(const ParamSpace& space,
                                           const SearchHistory& history,
                                           std::size_t maxCandidates) override;

private:
  void absorbPending(const SearchHistory& history);
  void advanceDim(std::size_t dimCount);

  double step_;
  double minStep_;
  bool initialized_ = false;
  bool done_ = false;
  std::vector<double> center_;
  double centerScore_ = 0;
  std::size_t dim_ = 0;
  bool improvedThisPass_ = false;
  std::size_t pendingFirst_ = 0; // record index of the pending batch
  std::size_t pendingCount_ = 0;
};

// ---------------------------------------------------------------------------
// Driver

struct SearchOptions {
  /// Total objective evaluations, warm start included.
  std::size_t budget = 64;
  /// Concurrent (candidate, scenario) simulations; 0 = hardware
  /// concurrency.  Results are bit-identical at any value.
  unsigned jobs = 0;
  /// Optional encoding evaluated first (clamped into the box) — typically
  /// the calibratePlatform two-point fit.  Because it enters the history,
  /// the returned best can never score worse than the warm start.
  std::vector<double> warmStart;
};

struct AutocalResult {
  SearchHistory history;
  unsigned jobs = 1;
  bool hasWarmStart = false;

  const EvalRecord& best() const { return history.best(); }
  /// The warm start is always evaluation 0 when present.
  const EvalRecord& warmStart() const { return history.records.front(); }
  /// Record indices sorted by ascending score (ties by evaluation order).
  std::vector<std::size_t> ranking() const;
};

/// Runs the strategies in order against one objective until the budget is
/// exhausted or every strategy has finished.  Deterministic for fixed
/// (objective, space, strategies, options) at any `jobs`.
AutocalResult runCalibrationSearch(const Objective& objective, const ParamSpace& space,
                                   const std::vector<std::shared_ptr<SearchStrategy>>& strategies,
                                   const SearchOptions& options);

/// JSON report: jobs/evaluation counts, scenario labels, warm start, best
/// fit (dimension values + the applied profile), and the full ranked
/// evaluation trace.
void writeReportJson(std::ostream& os, const AutocalResult& result, const Objective& objective,
                     const ParamSpace& space, const Candidate& base);

} // namespace dps::exp
