// Platform-parameter calibration (paper §4: the latency and bandwidth
// parameters "must be measured or estimated separately for each target
// parallel machine").
//
// Runs message-probe programs on a reference-configured engine (i.e.
// through the fidelity layer standing in for the real machine) and fits
// the effective l and b of the t = l + s/b model from the observed
// per-transfer durations of small and large messages — the same two-point
// fit a ping-pong benchmark performs on physical hardware.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/config.hpp"
#include "net/profile.hpp"
#include "support/time.hpp"

namespace dps::exp {

struct CalibrationResult {
  SimDuration latency{};     // fitted l
  double bytesPerSec = 0;    // fitted b
  std::size_t probeCount = 0;
  SimDuration smallMean{};   // mean duration of the small-message probes
  SimDuration largeMean{};   // mean duration of the large-message probes
  /// Goodness of fit: mean relative deviation |observed - (l + s/b)| /
  /// (l + s/b) over every individual probe.  0 on a noiseless platform;
  /// grows with fidelity jitter — a large residual means the two-point
  /// model explains the machine poorly and a search (exp::autocal) is
  /// worth its budget.
  double residual = 0;
};

/// Measures l and b under `referenceCfg` with the fidelity "machine state"
/// pinned to `fidelitySeed` (overriding whatever seed the config carries),
/// so repeated calibrations are reproducible without mutating ambient
/// config state.  `rounds` probes are sent per message size.
CalibrationResult calibratePlatform(const core::SimConfig& referenceCfg,
                                    std::uint64_t fidelitySeed, int rounds = 16,
                                    std::size_t smallBytes = 256,
                                    std::size_t largeBytes = 1 << 20);

/// Forwarding shim: calibrates under the seed already present in
/// `referenceCfg.fidelity`.
CalibrationResult calibratePlatform(const core::SimConfig& referenceCfg, int rounds = 16,
                                    std::size_t smallBytes = 256,
                                    std::size_t largeBytes = 1 << 20);

/// Returns `base` with its latency/bandwidth replaced by the fit.
net::PlatformProfile applyCalibration(net::PlatformProfile base, const CalibrationResult& fit);

} // namespace dps::exp
