#include "experiments/autocal.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>

#include "core/engine.hpp"
#include "experiments/campaign.hpp"
#include "lu/app.hpp"
#include "sched/engine_run.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/thread_pool.hpp"
#include "svc/profile_cache.hpp"

namespace dps::exp {

// ---------------------------------------------------------------------------
// Candidate + ParamSpace

const char* paramName(Param p) {
  switch (p) {
    case Param::LatencySec: return "latency_sec";
    case Param::BandwidthBytesPerSec: return "bandwidth_bytes_per_sec";
    case Param::PerStepOverheadSec: return "per_step_overhead_sec";
    case Param::LocalDeliverySec: return "local_delivery_sec";
    case Param::CpuPerOutgoingTransfer: return "cpu_per_outgoing_transfer";
    case Param::CpuPerIncomingTransfer: return "cpu_per_incoming_transfer";
    case Param::ComputeScale: return "compute_scale";
    case Param::KernelScale: return "kernel_scale";
  }
  return "unknown";
}

double getParam(const Candidate& c, Param p) {
  switch (p) {
    case Param::LatencySec: return toSeconds(c.profile.latency);
    case Param::BandwidthBytesPerSec: return c.profile.bandwidthBytesPerSec;
    case Param::PerStepOverheadSec: return toSeconds(c.profile.perStepOverhead);
    case Param::LocalDeliverySec: return toSeconds(c.profile.localDelivery);
    case Param::CpuPerOutgoingTransfer: return c.profile.cpuPerOutgoingTransfer;
    case Param::CpuPerIncomingTransfer: return c.profile.cpuPerIncomingTransfer;
    case Param::ComputeScale: return c.profile.computeScale;
    case Param::KernelScale: return c.kernelScale;
  }
  return 0;
}

void setParam(Candidate& c, Param p, double v) {
  switch (p) {
    case Param::LatencySec: c.profile.latency = seconds(v); return;
    case Param::BandwidthBytesPerSec: c.profile.bandwidthBytesPerSec = v; return;
    case Param::PerStepOverheadSec: c.profile.perStepOverhead = seconds(v); return;
    case Param::LocalDeliverySec: c.profile.localDelivery = seconds(v); return;
    case Param::CpuPerOutgoingTransfer: c.profile.cpuPerOutgoingTransfer = v; return;
    case Param::CpuPerIncomingTransfer: c.profile.cpuPerIncomingTransfer = v; return;
    case Param::ComputeScale: c.profile.computeScale = v; return;
    case Param::KernelScale: c.kernelScale = v; return;
  }
}

ParamSpace& ParamSpace::add(Param key, double lo, double hi) {
  DPS_CHECK(lo < hi, std::string("degenerate bounds for ") + paramName(key));
  for (const auto& d : dims_)
    DPS_CHECK(d.key != key, std::string("duplicate dimension ") + paramName(key));
  dims_.push_back(ParamDim{key, lo, hi});
  return *this;
}

std::vector<double> ParamSpace::encode(const Candidate& c) const {
  std::vector<double> x;
  x.reserve(dims_.size());
  for (const auto& d : dims_) x.push_back(getParam(c, d.key));
  return x;
}

Candidate ParamSpace::apply(Candidate base, const std::vector<double>& x) const {
  DPS_CHECK(x.size() == dims_.size(), "encoding size does not match the space");
  for (std::size_t i = 0; i < dims_.size(); ++i) setParam(base, dims_[i].key, x[i]);
  return base;
}

std::vector<double> ParamSpace::clamp(std::vector<double> x) const {
  DPS_CHECK(x.size() == dims_.size(), "encoding size does not match the space");
  for (std::size_t i = 0; i < dims_.size(); ++i)
    x[i] = std::min(dims_[i].hi, std::max(dims_[i].lo, x[i]));
  return x;
}

std::vector<double> ParamSpace::center() const {
  std::vector<double> x;
  x.reserve(dims_.size());
  for (const auto& d : dims_) x.push_back(0.5 * (d.lo + d.hi));
  return x;
}

ParamSpace ParamSpace::around(const Candidate& warmStart, bool includeFidelityDims) {
  const double lat = toSeconds(warmStart.profile.latency);
  const double bw = warmStart.profile.bandwidthBytesPerSec;
  const double step = toSeconds(warmStart.profile.perStepOverhead);
  DPS_CHECK(lat > 0 && bw > 0, "warm start needs positive latency and bandwidth");
  ParamSpace space;
  space.add(Param::LatencySec, lat * 0.25, lat * 4.0);
  space.add(Param::BandwidthBytesPerSec, bw * 0.25, bw * 4.0);
  space.add(Param::PerStepOverheadSec, 0.0, std::max(step * 4.0, 1e-6));
  space.add(Param::KernelScale, 0.5, 2.0);
  if (includeFidelityDims) {
    const double local = toSeconds(warmStart.profile.localDelivery);
    const double out = warmStart.profile.cpuPerOutgoingTransfer;
    const double in = warmStart.profile.cpuPerIncomingTransfer;
    const double compute = warmStart.profile.computeScale;
    space.add(Param::LocalDeliverySec, 0.0, std::max(local * 4.0, 1e-6));
    space.add(Param::CpuPerOutgoingTransfer, 0.0, std::max(out * 4.0, 0.04));
    space.add(Param::CpuPerIncomingTransfer, 0.0, std::max(in * 4.0, 0.08));
    DPS_CHECK(compute > 0, "warm start needs a positive compute scale");
    space.add(Param::ComputeScale, compute * 0.5, compute * 2.0);
  }
  return space;
}

// ---------------------------------------------------------------------------
// Objective

ValidationScenario ValidationScenario::luCase(const lu::LuConfig& cfg,
                                              std::uint64_t fidelitySeed,
                                              const mall::AllocationPlan& plan,
                                              mall::RemovalPolicy policy) {
  ValidationScenario s;
  s.app = App::Lu;
  s.lu = cfg;
  s.plan = plan;
  s.policy = policy;
  s.fidelitySeed = fidelitySeed;
  s.label = "LU " + cfg.variantName() + " n=" + std::to_string(cfg.n) + " r=" +
            std::to_string(cfg.r) + " w=" + std::to_string(cfg.workers) +
            (plan.empty() ? std::string{} : " [" + plan.describe() + "]");
  return s;
}

ValidationScenario ValidationScenario::jacobiCase(const jacobi::JacobiConfig& cfg,
                                                  std::uint64_t fidelitySeed) {
  ValidationScenario s;
  s.app = App::Jacobi;
  s.jacobi = cfg;
  s.fidelitySeed = fidelitySeed;
  s.label = "Jacobi " + std::to_string(cfg.rows) + "x" + std::to_string(cfg.cols) +
            " s=" + std::to_string(cfg.sweeps) + " w=" + std::to_string(cfg.workers);
  return s;
}

double ObjectiveSpec::score(const std::vector<double>& signedErrors) {
  DPS_CHECK(!signedErrors.empty(), "scoring needs at least one error");
  double sum = 0;
  for (double e : signedErrors) sum += std::abs(e);
  return sum / static_cast<double>(signedErrors.size());
}

ObjectiveSpec ObjectiveSpec::validationSet() {
  ObjectiveSpec spec;
  lu::LuConfig lu;
  lu.n = 64;
  lu.r = 16;
  lu.workers = 2;
  spec.scenarios.push_back(ValidationScenario::luCase(lu, 11));

  lu::LuConfig coarse = lu;
  coarse.r = 32;
  spec.scenarios.push_back(ValidationScenario::luCase(coarse, 12));

  lu::LuConfig wide;
  wide.n = 96;
  wide.r = 24;
  wide.workers = 4;
  wide.pipelined = true;
  spec.scenarios.push_back(ValidationScenario::luCase(wide, 13));

  lu::LuConfig shrinking = lu;
  shrinking.workers = 4;
  spec.scenarios.push_back(ValidationScenario::luCase(
      shrinking, 14, mall::AllocationPlan::killAfter({{1, {2, 3}}})));

  jacobi::JacobiConfig jac;
  jac.rows = 64;
  jac.cols = 64;
  jac.sweeps = 6;
  jac.workers = 4;
  spec.scenarios.push_back(ValidationScenario::jacobiCase(jac, 15));
  return spec;
}

namespace {

/// Runs one scenario on a fresh engine and returns its makespan in seconds.
double runScenarioSec(const core::SimConfig& cfg, const lu::KernelCostModel& luModel,
                      const jacobi::JacobiCostModel& jacobiModel,
                      const ValidationScenario& s) {
  core::SimEngine engine(cfg);
  if (s.app == ValidationScenario::App::Lu) {
    lu::LuBuild build = lu::buildLu(s.lu, luModel, /*allocate=*/false);
    std::unique_ptr<mall::LuMalleabilityController> controller;
    if (!s.plan.empty())
      controller =
          std::make_unique<mall::LuMalleabilityController>(engine, build, s.plan, s.policy);
    return toSeconds(lu::runLu(engine, build).makespan);
  }
  jacobi::JacobiBuild build = jacobi::buildJacobi(s.jacobi, jacobiModel, /*allocate=*/false);
  return toSeconds(jacobi::runJacobi(engine, build).makespan);
}

} // namespace

ScenarioObjective::ScenarioObjective(EngineSettings reference, Candidate base, ParamSpace space,
                                     ObjectiveSpec spec, unsigned jobs)
    : reference_(std::move(reference)),
      base_(std::move(base)),
      space_(std::move(space)),
      scenarios_(std::move(spec.scenarios)) {
  DPS_CHECK(!scenarios_.empty(), "objective needs at least one scenario");
  referenceSec_.resize(scenarios_.size());
  parallelFor(scenarios_.size(), jobs,
              [&](std::size_t i) { referenceSec_[i] = measureReferenceSec(scenarios_[i]); });
  for (double r : referenceSec_) DPS_CHECK(r > 0, "reference run with zero makespan");
}

std::string ScenarioObjective::scenarioLabel(std::size_t scenario) const {
  return scenarios_[scenario].label;
}

double ScenarioObjective::measureReferenceSec(const ValidationScenario& s) const {
  core::SimConfig cfg;
  cfg.profile = reference_.profile;
  cfg.mode = core::ExecutionMode::Pdexec;
  cfg.allocatePayloads = false;
  cfg.recordTrace = false; // only the makespan is read; skip trace recording
  cfg.fidelity = reference_.fidelity;
  cfg.fidelity.enabled = true;
  cfg.fidelity.seed = s.fidelitySeed;
  // Reference runs are pure functions of (scenario, settings): acquire them
  // through the profile service so repeated objectives (re-runs, warm
  // starts, tests) reuse earlier simulations.  Prediction legs stay direct
  // — every candidate is new, so caching them would only grow the map.
  sched::EngineRunSpec spec;
  spec.app =
      s.app == ValidationScenario::App::Lu ? sched::AppKind::Lu : sched::AppKind::Jacobi;
  spec.lu = s.lu;
  spec.jacobi = s.jacobi;
  spec.plan = s.plan;
  spec.policy = s.policy;
  spec.slicePhases = false;
  spec.config = cfg;
  spec.luModel = reference_.model;
  spec.jacobiModel = jacobiModel_;
  return svc::acquireRun(spec).totalSec;
}

double ScenarioObjective::predictSec(const Candidate& c, const ValidationScenario& s) const {
  core::SimConfig cfg;
  cfg.profile = c.profile;
  cfg.mode = core::ExecutionMode::Pdexec;
  cfg.allocatePayloads = false;
  cfg.recordTrace = false; // only the makespan is read; skip trace recording
  jacobi::JacobiCostModel jm = jacobiModel_;
  jm.cellsPerSec *= c.kernelScale;
  jm.copyBytesPerSec *= c.kernelScale;
  jm.perKernelOverhead = scale(jm.perKernelOverhead, 1.0 / c.kernelScale);
  return runScenarioSec(cfg, reference_.model.scaled(c.kernelScale), jm, s);
}

double ScenarioObjective::scenarioError(const std::vector<double>& x,
                                        std::size_t scenario) const {
  const Candidate c = space_.apply(base_, x);
  const double predicted = predictSec(c, scenarios_[scenario]);
  return (predicted - referenceSec_[scenario]) / referenceSec_[scenario];
}

// ---------------------------------------------------------------------------
// Search strategies

void SearchHistory::append(EvalRecord rec) {
  rec.index = records.size();
  records.push_back(std::move(rec));
  // Strict < keeps the earliest record on ties, independent of concurrency.
  if (records.back().score < records[bestIndex].score) bestIndex = records.size() - 1;
}

GridSearch::GridSearch(std::size_t points) : points_(points) {}

std::vector<std::vector<double>> GridSearch::propose(const ParamSpace& space,
                                                     const SearchHistory& history,
                                                     std::size_t maxCandidates) {
  (void)history;
  if (emitted_ || maxCandidates == 0 || space.size() == 0 || points_ == 0) return {};
  emitted_ = true;
  const std::size_t budget = std::min(points_, maxCandidates);

  // Largest per-dimension level count whose full factorial fits the budget.
  std::size_t levels = 1;
  while (true) {
    std::size_t total = 1;
    bool overflow = false;
    for (std::size_t d = 0; d < space.size(); ++d) {
      total *= levels + 1;
      if (total > budget) {
        overflow = true;
        break;
      }
    }
    if (overflow) break;
    ++levels;
  }

  std::vector<std::vector<double>> axes;
  for (const auto& d : space.dims()) {
    std::vector<double> axis;
    if (levels == 1) {
      axis.push_back(0.5 * (d.lo + d.hi));
    } else {
      for (std::size_t i = 0; i < levels; ++i)
        axis.push_back(d.lo + d.width() * static_cast<double>(i) /
                                  static_cast<double>(levels - 1));
    }
    axes.push_back(std::move(axis));
  }

  // Row-major expansion (last dimension innermost), truncated to the budget.
  std::vector<std::vector<double>> out;
  std::vector<std::size_t> idx(space.size(), 0);
  while (out.size() < budget) {
    std::vector<double> x(space.size());
    for (std::size_t d = 0; d < space.size(); ++d) x[d] = axes[d][idx[d]];
    out.push_back(std::move(x));
    std::size_t d = space.size();
    while (d > 0) {
      --d;
      if (++idx[d] < axes[d].size()) break;
      idx[d] = 0;
      if (d == 0) return out; // full grid emitted
    }
  }
  return out;
}

RandomSearch::RandomSearch(std::size_t points, std::uint64_t seed)
    : remaining_(points), rng_(seed) {}

std::vector<std::vector<double>> RandomSearch::propose(const ParamSpace& space,
                                                       const SearchHistory& history,
                                                       std::size_t maxCandidates) {
  (void)history;
  if (space.size() == 0) return {};
  const std::size_t count = std::min(remaining_, maxCandidates);
  remaining_ -= count;
  std::vector<std::vector<double>> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<double> x;
    x.reserve(space.size());
    for (const auto& d : space.dims()) x.push_back(rng_.uniform(d.lo, d.hi));
    out.push_back(std::move(x));
  }
  return out;
}

CoordinateDescent::CoordinateDescent(double initialStep, double minStep)
    : step_(initialStep), minStep_(minStep) {
  DPS_CHECK(initialStep > 0 && minStep > 0 && minStep <= initialStep,
            "coordinate-descent steps must satisfy 0 < minStep <= initialStep");
}

void CoordinateDescent::advanceDim(std::size_t dimCount) {
  if (++dim_ < dimCount) return;
  dim_ = 0;
  if (!improvedThisPass_) {
    step_ *= 0.5;
    if (step_ < minStep_) done_ = true;
  }
  improvedThisPass_ = false;
}

void CoordinateDescent::absorbPending(const SearchHistory& history) {
  const bool bootstrap = !std::isfinite(centerScore_);
  bool moved = false;
  for (std::size_t i = pendingFirst_; i < pendingFirst_ + pendingCount_; ++i) {
    const EvalRecord& rec = history.records[i];
    if (rec.score < centerScore_) {
      centerScore_ = rec.score;
      center_ = rec.x;
      moved = true;
    }
  }
  pendingCount_ = 0;
  if (bootstrap) return; // the center's own evaluation is not a probe
  if (moved) improvedThisPass_ = true;
  advanceDim(center_.size());
}

std::vector<std::vector<double>> CoordinateDescent::propose(const ParamSpace& space,
                                                            const SearchHistory& history,
                                                            std::size_t maxCandidates) {
  if (done_ || maxCandidates == 0 || space.size() == 0) return {};
  if (!initialized_) {
    initialized_ = true;
    if (history.empty()) {
      // No incumbent yet: evaluate the box center to bootstrap one.
      center_ = space.center();
      centerScore_ = std::numeric_limits<double>::infinity();
      pendingFirst_ = history.records.size();
      pendingCount_ = 1;
      return {center_};
    }
    center_ = history.best().x;
    centerScore_ = history.best().score;
  }
  if (pendingCount_ > 0) absorbPending(history);

  while (!done_) {
    const ParamDim& d = space.dims()[dim_];
    const double delta = step_ * d.width();
    std::vector<std::vector<double>> batch;
    for (double sign : {+1.0, -1.0}) {
      std::vector<double> x = center_;
      x[dim_] = std::min(d.hi, std::max(d.lo, x[dim_] + sign * delta));
      if (x[dim_] != center_[dim_]) batch.push_back(std::move(x));
    }
    if (batch.empty()) {
      // Both probes clamp onto the center; nothing to learn on this dim.
      advanceDim(space.size());
      continue;
    }
    if (batch.size() > maxCandidates) batch.resize(maxCandidates);
    pendingFirst_ = history.records.size();
    pendingCount_ = batch.size();
    return batch;
  }
  return {};
}

// ---------------------------------------------------------------------------
// Driver

namespace {

void evaluateBatch(const Objective& objective, const std::vector<std::vector<double>>& batch,
                   const std::string& strategy, unsigned jobs, SearchHistory& history) {
  const std::size_t scenarios = objective.scenarioCount();
  DPS_CHECK(scenarios > 0, "objective has no scenarios");
  std::vector<std::vector<double>> errors(batch.size(), std::vector<double>(scenarios, 0.0));
  // One slot per (candidate, scenario): deterministic at any job count.
  parallelFor(batch.size() * scenarios, jobs, [&](std::size_t k) {
    errors[k / scenarios][k % scenarios] =
        objective.scenarioError(batch[k / scenarios], k % scenarios);
  });
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EvalRecord rec;
    rec.strategy = strategy;
    rec.x = batch[i];
    rec.errors = std::move(errors[i]);
    rec.score = ObjectiveSpec::score(rec.errors);
    history.append(std::move(rec));
  }
}

} // namespace

std::vector<std::size_t> AutocalResult::ranking() const {
  std::vector<std::size_t> order(history.records.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return history.records[a].score < history.records[b].score;
  });
  return order;
}

AutocalResult runCalibrationSearch(const Objective& objective, const ParamSpace& space,
                                   const std::vector<std::shared_ptr<SearchStrategy>>& strategies,
                                   const SearchOptions& options) {
  AutocalResult result;
  result.jobs = options.jobs == 0 ? ThreadPool::hardwareJobs() : options.jobs;
  std::size_t left = options.budget;

  if (!options.warmStart.empty() && left > 0) {
    evaluateBatch(objective, {space.clamp(options.warmStart)}, "warm-start", result.jobs,
                  result.history);
    result.hasWarmStart = true;
    --left;
  }

  for (const auto& strategy : strategies) {
    DPS_CHECK(strategy != nullptr, "null search strategy");
    while (left > 0) {
      auto batch = strategy->propose(space, result.history, left);
      if (batch.empty()) break;
      if (batch.size() > left) batch.resize(left);
      for (auto& x : batch) x = space.clamp(std::move(x));
      evaluateBatch(objective, batch, strategy->name(), result.jobs, result.history);
      left -= batch.size();
    }
  }
  DPS_CHECK(!result.history.empty(), "search made no evaluations (budget 0 and no warm start?)");
  return result;
}

// ---------------------------------------------------------------------------
// Report

namespace {

void writeParams(JsonWriter& w, const ParamSpace& space, const std::vector<double>& x) {
  w.beginObject();
  for (std::size_t i = 0; i < space.dims().size(); ++i)
    w.field(paramName(space.dims()[i].key), x[i]);
  w.endObject();
}

void writeProfile(JsonWriter& w, const Candidate& c) {
  w.beginObject()
      .field("latency_sec", toSeconds(c.profile.latency))
      .field("bandwidth_bytes_per_sec", c.profile.bandwidthBytesPerSec)
      .field("per_step_overhead_sec", toSeconds(c.profile.perStepOverhead))
      .field("local_delivery_sec", toSeconds(c.profile.localDelivery))
      .field("cpu_per_outgoing_transfer", c.profile.cpuPerOutgoingTransfer)
      .field("cpu_per_incoming_transfer", c.profile.cpuPerIncomingTransfer)
      .field("compute_scale", c.profile.computeScale)
      .field("kernel_scale", c.kernelScale)
      .endObject();
}

void writeEval(JsonWriter& w, const EvalRecord& rec, const ParamSpace& space) {
  w.beginObject()
      .field("index", rec.index)
      .field("strategy", rec.strategy)
      .field("score", rec.score);
  w.key("params");
  writeParams(w, space, rec.x);
  w.endObject();
}

} // namespace

void writeReportJson(std::ostream& os, const AutocalResult& result, const Objective& objective,
                     const ParamSpace& space, const Candidate& base) {
  JsonWriter w(os);
  w.beginObject()
      .field("jobs", result.jobs)
      .field("evaluations", result.history.records.size());
  w.key("scenarios").beginArray();
  for (std::size_t i = 0; i < objective.scenarioCount(); ++i)
    w.value(objective.scenarioLabel(i));
  w.endArray();
  w.key("warm_start");
  if (result.hasWarmStart) {
    writeEval(w, result.warmStart(), space);
  } else {
    w.null();
  }

  const EvalRecord& best = result.best();
  w.key("best")
      .beginObject()
      .field("index", best.index)
      .field("strategy", best.strategy)
      .field("score", best.score);
  w.key("params");
  writeParams(w, space, best.x);
  w.key("profile");
  writeProfile(w, space.apply(base, best.x));
  w.key("per_scenario").beginArray();
  for (std::size_t i = 0; i < best.errors.size(); ++i) {
    w.beginObject()
        .field("label", objective.scenarioLabel(i))
        .field("error", best.errors[i])
        .endObject();
  }
  w.endArray().endObject();

  w.key("ranking").beginArray();
  for (std::size_t idx : result.ranking()) w.value(idx);
  w.endArray();
  w.key("trace").beginArray();
  for (const EvalRecord& rec : result.history.records) writeEval(w, rec, space);
  w.endArray().endObject();
  DPS_CHECK(w.closed(), "unbalanced autocal report JSON");
}

} // namespace dps::exp
