#include "experiments/campaign.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "support/csv.hpp"
#include "support/json.hpp"

namespace dps::exp {

namespace {

template <typename T>
std::vector<T> orDefault(const std::vector<T>& dim, T fallback) {
  if (!dim.empty()) return dim;
  return {std::move(fallback)};
}

/// Round-trippable double formatting for the JSON/CSV emitters.
std::string fmtDouble(double v) { return dps::jsonDouble(v); }

void writeStats(JsonWriter& w, const OnlineStats& s) {
  w.beginObject()
      .field("count", s.count())
      .field("mean", s.mean())
      .field("stddev", s.stddev())
      .field("min", s.min())
      .field("max", s.max())
      .endObject();
}

} // namespace

std::string jsonEscape(const std::string& s) { return dps::jsonEscape(s); }

std::vector<CampaignPoint> SweepGrid::expand() const {
  const auto ns = orDefault(n, base.n);
  const auto rs = orDefault(r, base.r);
  const auto ws = orDefault(workers, base.workers);
  const auto vs = orDefault(variants, VariantSpec{"Basic", base.pipelined, base.parallelMult,
                                                 base.flowControl});
  const auto ps = orDefault(plans, mall::AllocationPlan{});
  const auto pols = orDefault(policies, mall::RemovalPolicy::MigrateColumns);
  const auto seeds = orDefault(fidelitySeeds, std::uint64_t{1});

  std::vector<CampaignPoint> out;
  out.reserve(size());
  for (std::int32_t nn : ns)
    for (std::int32_t rr : rs)
      for (std::int32_t ww : ws)
        for (const auto& v : vs)
          for (const auto& plan : ps)
            for (auto policy : pols)
              for (std::uint64_t seed : seeds) {
                CampaignPoint p;
                p.cfg = base;
                p.cfg.n = nn;
                p.cfg.r = rr;
                p.cfg.workers = ww;
                p.cfg.pipelined = v.pipelined;
                p.cfg.parallelMult = v.parallelMult;
                p.cfg.flowControl = v.flowControl;
                p.plan = plan;
                p.policy = policy;
                p.fidelitySeed = seed;
                out.push_back(std::move(p));
              }
  return out;
}

std::size_t SweepGrid::size() const {
  auto dim = [](std::size_t d) { return d > 0 ? d : std::size_t{1}; };
  return dim(n.size()) * dim(r.size()) * dim(workers.size()) * dim(variants.size()) *
         dim(plans.size()) * dim(policies.size()) * dim(fidelitySeeds.size());
}

CampaignAggregate CampaignResult::aggregate() const {
  CampaignAggregate agg;
  for (const auto& obs : observations) {
    agg.measuredSec.add(obs.measuredSec);
    agg.predictedSec.add(obs.predictedSec);
    agg.error.add(obs.error());
  }
  return agg;
}

std::vector<double> CampaignResult::errors() const {
  std::vector<double> out;
  out.reserve(observations.size());
  for (const auto& obs : observations) out.push_back(obs.error());
  return out;
}

void CampaignResult::writeJson(std::ostream& os) const {
  JsonWriter w(os);
  w.beginObject().field("jobs", jobs);
  w.key("observations").beginArray();
  for (std::size_t i = 0; i < observations.size(); ++i) {
    const auto& obs = observations[i];
    const auto& p = points[i];
    w.beginObject()
        .field("label", obs.label)
        .field("n", p.cfg.n)
        .field("r", p.cfg.r)
        .field("workers", p.cfg.workers)
        .field("variant", p.cfg.variantName())
        .field("plan", p.plan.describe())
        .field("fidelity_seed", p.fidelitySeed)
        .field("measured_sec", obs.measuredSec)
        .field("predicted_sec", obs.predictedSec)
        .field("error", obs.error())
        .endObject();
  }
  w.endArray();
  const auto agg = aggregate();
  w.key("aggregate").beginObject();
  w.key("measured_sec");
  writeStats(w, agg.measuredSec);
  w.key("predicted_sec");
  writeStats(w, agg.predictedSec);
  w.key("error");
  writeStats(w, agg.error);
  w.endObject().endObject();
  DPS_CHECK(w.closed(), "unbalanced campaign JSON");
}

std::string CampaignResult::jsonString() const {
  std::ostringstream os;
  writeJson(os);
  return os.str();
}

void CampaignResult::writeCsv(std::ostream& os) const {
  os << "label,n,r,workers,variant,plan,fidelity_seed,measured_sec,predicted_sec,error\n";
  for (std::size_t i = 0; i < observations.size(); ++i) {
    const auto& obs = observations[i];
    const auto& p = points[i];
    os << csvQuote(obs.label) << "," << p.cfg.n << ',' << p.cfg.r << ',' << p.cfg.workers << ','
       << csvQuote(p.cfg.variantName()) << ',' << csvQuote(p.plan.describe()) << ','
       << p.fidelitySeed << ','
       << fmtDouble(obs.measuredSec) << ',' << fmtDouble(obs.predictedSec) << ','
       << fmtDouble(obs.error()) << '\n';
  }
}

Campaign::Campaign(EngineSettings settings) : runner_(std::move(settings)) {}

std::size_t Campaign::add(CampaignPoint point) {
  points_.push_back(std::move(point));
  return points_.size() - 1;
}

std::size_t Campaign::add(const lu::LuConfig& cfg, const mall::AllocationPlan& plan,
                          std::uint64_t fidelitySeed, mall::RemovalPolicy policy,
                          std::string label) {
  CampaignPoint p;
  p.cfg = cfg;
  p.plan = plan;
  p.fidelitySeed = fidelitySeed;
  p.policy = policy;
  p.label = std::move(label);
  return add(std::move(p));
}

std::size_t Campaign::add(const SweepGrid& grid) {
  const std::size_t first = points_.size();
  for (auto& p : grid.expand()) points_.push_back(std::move(p));
  return first;
}

CampaignResult Campaign::prepare(unsigned jobs) const {
  CampaignResult res;
  res.points = points_;
  res.observations.resize(points_.size());
  res.jobs = jobs;
  return res;
}

Observation Campaign::execute(std::size_t index) const {
  const CampaignPoint& p = points_[index];
  Observation obs = runner_.run(p.cfg, p.plan, p.fidelitySeed, p.policy);
  if (!p.label.empty()) obs.label = p.label;
  return obs;
}

CampaignResult Campaign::run(unsigned jobs) const {
  if (jobs == 0) jobs = ThreadPool::hardwareJobs();
  CampaignResult res = prepare(jobs);
  parallelFor(points_.size(), jobs,
              [&](std::size_t i) { res.observations[i] = execute(i); });
  return res;
}

CampaignResult Campaign::run(ThreadPool& pool) const {
  CampaignResult res = prepare(pool.threadCount() + 1);
  parallelFor(pool, points_.size(),
              [&](std::size_t i) { res.observations[i] = execute(i); });
  return res;
}

} // namespace dps::exp
