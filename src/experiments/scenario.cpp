#include "experiments/scenario.hpp"

#include "lu/app.hpp"

namespace dps::exp {

core::FidelityConfig EngineSettings::defaultFidelity() {
  core::FidelityConfig f;
  f.enabled = true;
  f.computeJitter = 0.03;
  f.perNodeSpeedSigma = 0.02;
  f.perRunSpeedSigma = 0.015;
  f.perMessageOverhead = microseconds(55);
  f.perMessageJitter = microseconds(30);
  f.chunkBytes = 1460;
  f.perChunkOverhead = microseconds(2);
  f.bandwidthEfficiency = 0.93;
  return f;
}

ScenarioRunner::ScenarioRunner(EngineSettings settings) : settings_(std::move(settings)) {}

net::PlatformProfile ScenarioRunner::calibratedProfile() const {
  const auto& f = settings_.fidelity;
  net::PlatformProfile p = settings_.profile;
  // What a ping-pong benchmark through the fidelity layer measures:
  // latency absorbs the mean per-message overhead; streaming bandwidth
  // absorbs derating plus per-chunk costs.
  p.latency += f.perMessageOverhead + scale(f.perMessageJitter, 0.5);
  const double nominal = p.bandwidthBytesPerSec * f.bandwidthEfficiency;
  const double perByteChunk =
      f.chunkBytes > 0 ? toSeconds(f.perChunkOverhead) / static_cast<double>(f.chunkBytes) : 0.0;
  p.bandwidthBytesPerSec = 1.0 / (1.0 / nominal + perByteChunk);
  return p;
}

core::SimConfig ScenarioRunner::predictorConfig() const {
  core::SimConfig c;
  c.profile = calibratedProfile();
  c.mode = core::ExecutionMode::Pdexec;
  c.allocatePayloads = false; // NOALLOC: fast and memory-light
  c.recordTrace = true;
  return c;
}

core::SimConfig ScenarioRunner::referenceConfig(std::uint64_t fidelitySeed) const {
  core::SimConfig c;
  c.profile = settings_.profile;
  c.mode = core::ExecutionMode::Pdexec;
  c.allocatePayloads = false;
  c.recordTrace = true;
  c.fidelity = settings_.fidelity;
  c.fidelity.enabled = true;
  c.fidelity.seed = fidelitySeed;
  return c;
}

core::RunResult ScenarioRunner::runOne(const lu::LuConfig& cfg, bool fidelity,
                                       const mall::AllocationPlan& plan,
                                       std::uint64_t fidelitySeed,
                                       core::SimConfig overrides) const {
  (void)fidelity;
  core::SimEngine engine(overrides);
  // Fresh build per run: the column directory mutates under malleability.
  lu::LuBuild build = lu::buildLu(cfg, settings_.model, /*allocate=*/false);
  std::unique_ptr<mall::LuMalleabilityController> controller;
  if (!plan.empty())
    controller = std::make_unique<mall::LuMalleabilityController>(engine, build, plan);
  (void)fidelitySeed;
  return lu::runLu(engine, build);
}

Observation ScenarioRunner::run(const lu::LuConfig& cfg, const mall::AllocationPlan& plan,
                                std::uint64_t fidelitySeed, mall::RemovalPolicy policy) const {
  Observation obs;
  obs.label = cfg.variantName() + " r=" + std::to_string(cfg.r) + " w=" +
              std::to_string(cfg.workers) +
              (plan.empty() ? std::string{} : " [" + plan.describe() + "]");

  {
    core::SimEngine engine(referenceConfig(fidelitySeed));
    lu::LuBuild build = lu::buildLu(cfg, settings_.model, false);
    std::unique_ptr<mall::LuMalleabilityController> controller;
    if (!plan.empty())
      controller = std::make_unique<mall::LuMalleabilityController>(engine, build, plan, policy);
    obs.measured = lu::runLu(engine, build);
    lu::checkOutputs(cfg, obs.measured);
    obs.measuredSec = toSeconds(obs.measured.makespan);
  }
  {
    core::SimEngine engine(predictorConfig());
    lu::LuBuild build = lu::buildLu(cfg, settings_.model, false);
    std::unique_ptr<mall::LuMalleabilityController> controller;
    if (!plan.empty())
      controller = std::make_unique<mall::LuMalleabilityController>(engine, build, plan, policy);
    obs.predicted = lu::runLu(engine, build);
    lu::checkOutputs(cfg, obs.predicted);
    obs.predictedSec = toSeconds(obs.predicted.makespan);
  }
  return obs;
}

} // namespace dps::exp
