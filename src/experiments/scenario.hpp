// Scenario runner: the measured-vs-predicted harness behind every table
// and figure reproduction (DESIGN.md §4/§5).
//
// Each scenario runs twice on the discrete-event engine:
//   * the *reference* run — fidelity layer ON (per-message overheads,
//     packetization, bandwidth derating, per-node/per-run speed variation,
//     per-step jitter).  This stands in for the paper's physical cluster
//     measurements (no cluster here; see DESIGN.md §4).
//   * the *prediction* run — the paper's model: pure l + s/b with
//     calibrated latency/bandwidth, equal-share contention, even CPU
//     sharing, no noise.  Calibration mirrors the paper's procedure of
//     measuring platform parameters once per target machine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/result.hpp"
#include "lu/builder.hpp"
#include "lu/cost_model.hpp"
#include "malleable/controller.hpp"
#include "malleable/plan.hpp"
#include "net/profile.hpp"

namespace dps::exp {

struct EngineSettings {
  net::PlatformProfile profile = net::ultraSparc440();
  lu::KernelCostModel model = lu::KernelCostModel::ultraSparc440();
  core::FidelityConfig fidelity = defaultFidelity();

  static core::FidelityConfig defaultFidelity();
};

struct Observation {
  std::string label;
  double measuredSec = 0.0;
  double predictedSec = 0.0;
  core::RunResult measured;
  core::RunResult predicted;

  /// Signed prediction error, paper Fig. 13 convention.
  double error() const { return (predictedSec - measuredSec) / measuredSec; }
};

class ScenarioRunner {
public:
  explicit ScenarioRunner(EngineSettings settings = {});

  /// Runs reference + prediction for one configuration (and optional
  /// allocation plan).  `fidelitySeed` varies the "machine state" of the
  /// reference run, like repeating a measurement on different days.
  /// const and stateless beyond the settings: safe to call concurrently
  /// from campaign workers (each call owns its engines and build).
  Observation run(const lu::LuConfig& cfg, const mall::AllocationPlan& plan = {},
                  std::uint64_t fidelitySeed = 1,
                  mall::RemovalPolicy policy = mall::RemovalPolicy::MigrateColumns) const;

  /// One leg only (used by ablation benches).
  core::RunResult runOne(const lu::LuConfig& cfg, bool fidelity,
                         const mall::AllocationPlan& plan, std::uint64_t fidelitySeed,
                         core::SimConfig overrides) const;

  /// The platform parameters the predictor uses: nominal profile with the
  /// latency/bandwidth a calibration benchmark would measure through the
  /// fidelity layer (the paper's "measured or estimated separately for
  /// each target parallel machine", §4).
  net::PlatformProfile calibratedProfile() const;

  core::SimConfig predictorConfig() const;
  core::SimConfig referenceConfig(std::uint64_t fidelitySeed) const;

  const EngineSettings& settings() const { return settings_; }

private:
  EngineSettings settings_;
};

} // namespace dps::exp
