// obs::WallClock + obs::ProgressMeter — the one wall-clock source behind
// progress lines, service metrics, and wall-time trace spans.
//
// Tools used to carry private steady_clock/ETA lambdas; routing them all
// through one clock object means a run's progress output, its metrics
// timestamps, and its trace spans agree on a single time origin.
#pragma once

#include <chrono>

namespace dps::obs {

/// Monotonic elapsed time since construction.
class WallClock {
public:
  WallClock() : origin_(std::chrono::steady_clock::now()) {}

  double elapsedSec() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - origin_).count();
  }
  /// Trace-event timestamp unit.
  double elapsedMicros() const { return elapsedSec() * 1e6; }

private:
  std::chrono::steady_clock::time_point origin_;
};

/// Rate-limits progress reporting and centralizes the ETA arithmetic.
class ProgressMeter {
public:
  explicit ProgressMeter(const WallClock& clock, double minIntervalSec = 1.0)
      : clock_(&clock), minInterval_(minIntervalSec) {}

  /// True at most once per interval; the caller prints when it is.
  bool due() {
    const double now = clock_->elapsedSec();
    if (now - lastSec_ < minInterval_) return false;
    lastSec_ = now;
    return true;
  }

  double elapsedSec() const { return clock_->elapsedSec(); }

  /// Remaining-time estimate from linear extrapolation; 0 before any
  /// progress exists to extrapolate from.
  static double etaSec(double elapsedSec, double done, double total) {
    if (done <= 0 || total <= done) return 0;
    return elapsedSec * (total - done) / done;
  }

private:
  const WallClock* clock_;
  double minInterval_;
  double lastSec_ = -1e300; // first due() always fires
};

} // namespace dps::obs
