// obs::Recorder — the scheduler flight recorder.
//
// A cluster event loop with a recorder attached narrates every decision it
// makes: each admission verdict (started, or held with a typed wait
// reason), each backfill pass with its shadow-time reservation and
// per-candidate outcomes, each shrink/grow grant with the policy's scoring
// inputs, each migration stall, plus per-job wait intervals and a
// simulated-time timeseries of cluster gauges.  Like the metrics registry
// and trace sink, a null recorder pointer means "disabled": instrumented
// code checks and skips, recording never feeds back into simulation state,
// and BOTH cluster loops (optimized and reference) feed a recorder from the
// same semantic points — so equal recorder contents across the two loops is
// a correctness check on the optimized hot paths, decision by decision.
//
// Wait attribution is integer arithmetic by design: intervals are measured
// in simulated nanoseconds (the SimTime tick), so a job's per-reason
// buckets telescope to exactly start - arrival with no floating-point
// residue — the sum-to-total invariant tests assert equality, not
// tolerance.  The WaitAttribution struct lives here (not in sched) so
// ClusterMetrics can embed it while the recorder renders and explains it.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dps::obs {

/// Why a queued job was not running during one wait interval.
enum class WaitReason : std::uint8_t {
  /// Queued behind a blocked head (or not yet considered at all) — the
  /// default state of every job deeper in the queue.
  HeadOfLine = 0,
  /// The job itself was offered and its granted allocation exceeds the
  /// currently free nodes.
  InsufficientFree = 1,
  /// The policy returned "keep queued" (admit() <= 0).
  PolicyHeld = 2,
  /// First backfill candidate the --backfill-depth bound excluded from the
  /// scan (deeper jobs stay HeadOfLine — they were never reachable anyway).
  DepthCutoff = 3,
  /// Backfilling the job now would delay the blocked head's shadow-time
  /// reservation (EASY's one invariant).
  ShadowTime = 4,
};
inline constexpr std::size_t kWaitReasonCount = 5;

/// JSON slug, e.g. "head_of_line".
const char* waitReasonName(WaitReason r);
/// Human label for narratives, e.g. "head-of-line blocked".
const char* waitReasonLabel(WaitReason r);

/// Per-job queue-wait decomposition in integer simulated nanoseconds.
/// Invariant (exact, integer telescoping): sum(byReason) == totalNs ==
/// start tick - arrival tick.  migrationDelayNs is NOT queue time — it
/// accumulates the realloc stalls charged while the job runs.
struct WaitAttribution {
  std::array<std::int64_t, kWaitReasonCount> byReason{};
  std::int64_t totalNs = 0;
  std::int64_t migrationDelayNs = 0;

  std::int64_t sumNs() const {
    std::int64_t s = 0;
    for (std::int64_t v : byReason) s += v;
    return s;
  }
  /// Largest bucket (lowest reason index wins ties — deterministic).
  WaitReason dominant() const;
  /// dominant bucket / totalNs; 0 when the job never waited.
  double dominantShare() const;
};

/// One run's flight record.  beginRun resets, the event-loop hooks append,
/// endRun seals; writeJson/explain render.  Not thread-safe (one recorder
/// per single-threaded event loop — attach one per policy).
class Recorder {
public:
  /// Decision-row taxonomy, public so auditors (sched::explore's invariant
  /// verifier) can re-check every recorded decision against the rules the
  /// loop claims to follow.
  enum class Kind : std::uint8_t { Admit, Candidate, Cutoff, Pass, Realloc, Migration };

  /// One recorded decision row — a union-ish record keyed by `kind`; the
  /// field groups below each kind's comment are only meaningful for it.
  struct Decision {
    Kind kind = Kind::Admit;
    double tSec = 0;
    std::int32_t job = -1; // the head job for Kind::Pass
    std::int32_t want = 0, alloc = 0, freeNodes = 0, spare = 0;
    bool started = false;
    WaitReason reason = WaitReason::HeadOfLine;
    std::string rule;
    double score = 0, threshold = 0;
    // Kind::Pass
    std::int32_t considered = 0, startedCount = 0;
    double shadowSec = 0;
    // Kind::Realloc / Kind::Migration
    std::int32_t fromNodes = 0, toNodes = 0;
    double bytes = 0, delaySec = 0;
  };

  /// `timeseriesCadenceSec` > 0 samples the cluster gauges every that many
  /// *simulated* seconds (piecewise-constant between state changes); 0
  /// disables the timeseries.
  explicit Recorder(double timeseriesCadenceSec = 0);

  // ----------------------------------------------------------------- feed --
  // Called by the cluster event loops, in simulated time.

  void beginRun(const std::string& policy, std::int32_t nodes, std::uint64_t seed);
  /// Head-of-queue admission verdict.  `denial` is meaningful when
  /// !started; rule/score/threshold echo the policy's DecisionContext.
  void admitDecision(double tSec, std::int32_t job, std::int32_t want, std::int32_t alloc,
                     std::int32_t freeNodes, bool started, WaitReason denial, const char* rule,
                     double score, double threshold);
  /// One backfill candidate's verdict (spare = surplus beyond the head's
  /// reservation at evaluation time).
  void backfillCandidate(double tSec, std::int32_t job, std::int32_t want, std::int32_t alloc,
                         std::int32_t freeNodes, std::int32_t spare, bool started,
                         WaitReason denial, const char* rule, double score, double threshold);
  /// First candidate the backfill depth bound excluded this pass.
  void depthCutoff(double tSec, std::int32_t job);
  /// Pass summary, emitted after the candidate walk (shadowSec < 0: the
  /// head can never fit, no reservation was possible).
  void backfillPass(double tSec, std::int32_t headJob, std::int32_t headAlloc, double shadowSec,
                    std::int32_t spare, std::int32_t considered, std::int32_t started);
  /// A shrink/grow grant at a phase boundary (never called for "hold").
  void reallocDecision(double tSec, std::int32_t job, std::int32_t fromNodes,
                       std::int32_t toNodes, std::int32_t freeNodes, double bytes,
                       const char* rule, double score, double threshold);
  /// Migration stall charged after a grant.
  void migrationDelay(double tSec, std::int32_t job, double delaySec, double bytes);
  /// One closed wait interval [fromSec, toSec) attributed to `reason`.
  void waitInterval(std::int32_t job, double fromSec, double toSec, WaitReason reason);
  /// Cluster gauges after a state change at tSec; drives the timeseries.
  void stateSample(double tSec, std::int32_t usedNodes, std::int32_t freeNodes,
                   std::int32_t runningJobs, std::int32_t queuedJobs);
  /// Final per-job row (from the finalized metrics fold).
  void jobSummary(std::int32_t job, const std::string& klass, double arrivalSec, double startSec,
                  double finishSec, bool backfilled, const WaitAttribution& attribution);
  /// Seals the run: flushes timeseries samples up to the makespan.
  void endRun(double makespanSec);

  // --------------------------------------------------------------- render --

  /// {"policy":...,"decisions":[...],"jobs":[...],"timeseries":{...}} —
  /// deterministic, so equal recorder contents compare as equal strings.
  void writeJson(std::ostream& os) const;
  std::string jsonString() const;
  /// Human-readable causal narrative for one job: arrival, every decision
  /// that touched it, every wait interval with its reason, every realloc,
  /// finish, and the attribution summary naming the dominant reason.
  std::string explain(std::int32_t job) const;

  std::size_t decisionCount() const { return decisions_.size(); }
  std::size_t sampleCount() const { return tsSec_.size(); }
  double cadenceSec() const { return cadenceSec_; }
  /// The decision rows in the order the loop emitted them (audit access).
  const std::vector<Decision>& decisions() const { return decisions_; }

private:
  struct Interval {
    std::int32_t job = 0;
    double fromSec = 0, toSec = 0;
    WaitReason reason = WaitReason::HeadOfLine;
  };

  struct JobRow {
    std::int32_t id = 0;
    std::string klass;
    double arrivalSec = 0, startSec = 0, finishSec = 0;
    bool backfilled = false;
    WaitAttribution attribution;
  };

  /// Emits every pending sample instant strictly before `uptoSec` using the
  /// state standing since the previous change.
  void flushSamples(double uptoSec);
  void pushSample(double tSec);

  double cadenceSec_ = 0;
  std::string policy_;
  std::int32_t nodes_ = 0;
  std::uint64_t seed_ = 0;
  double makespanSec_ = 0;
  std::vector<Decision> decisions_;
  std::vector<Interval> intervals_;
  std::vector<JobRow> jobs_;
  // Timeseries columns + the piecewise-constant state between changes.
  std::vector<double> tsSec_;
  std::vector<std::int32_t> tsUsed_, tsFree_, tsRunning_, tsQueued_;
  std::int32_t used_ = 0, free_ = 0, running_ = 0, queued_ = 0;
  std::int64_t nextSample_ = 0; // next sample index k; instant = k * cadence
};

} // namespace dps::obs
