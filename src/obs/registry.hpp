// obs::Registry — named counters, gauges, and fixed-bucket histograms
// shared by every layer (the observability side of the ROADMAP's
// production-service north star).
//
// Design constraints, in order:
//   * zero-cost when disabled — instrumented code holds null-safe handles;
//     a default-constructed Counter/Gauge/Histogram is a no-op, so layers
//     instrument unconditionally and pay one branch when no registry is
//     attached;
//   * thread-safe without a hot shared lock — each thread writes its own
//     shard (registered on first use, guarded by a per-shard mutex that is
//     uncontended except while snapshot() folds), so pool workers never
//     serialize on a global metrics mutex;
//   * deterministic output — snapshot() folds shards into one name-sorted
//     value set, so the emitted JSON is stable across thread interleavings
//     whenever the recorded totals are (counters sum, gauges fold by max —
//     high-water semantics — histograms merge bucket-wise).
//
// Instrumentation must stay OUTSIDE result computation: nothing in this
// header feeds back into simulation state, and the determinism tests run
// with metrics attached to prove it.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dps {
class JsonWriter;
} // namespace dps

namespace dps::obs {

class Registry;

/// Monotonic event count.  Null-safe: default-constructed handles no-op.
class Counter {
public:
  Counter() = default;
  void add(std::uint64_t n = 1) const;

private:
  friend class Registry;
  Counter(Registry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  Registry* reg_ = nullptr;
  std::uint32_t id_ = 0;
};

/// Point-in-time value; shards fold by MAX at snapshot (high-water
/// semantics — the common use is queue-depth / score high-water marks).
class Gauge {
public:
  Gauge() = default;
  void set(double v) const;

private:
  friend class Registry;
  Gauge(Registry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  Registry* reg_ = nullptr;
  std::uint32_t id_ = 0;
};

/// Fixed upper-bound bucket histogram (latencies, sizes).  Values above the
/// last bound land in an overflow bucket; count/sum/min/max are exact.
class Histogram {
public:
  Histogram() = default;
  void observe(double v) const;

private:
  friend class Registry;
  Histogram(Registry* reg, std::uint32_t id, std::shared_ptr<const std::vector<double>> bounds)
      : reg_(reg), id_(id), bounds_(std::move(bounds)) {}
  Registry* reg_ = nullptr;
  std::uint32_t id_ = 0;
  std::shared_ptr<const std::vector<double>> bounds_;
};

/// Log-spaced second bounds, 1us .. 1000s (service latencies and simulated
/// durations alike).
std::vector<double> secondsBounds();
/// Power-of-16 byte bounds, 1KiB .. 16GiB (migration / state sizes).
std::vector<double> bytesBounds();

/// One consistent fold of every shard, name-sorted.
struct Snapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;        // ascending upper bounds
    std::vector<std::uint64_t> counts; // bounds.size() + 1 (last = overflow)
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    /// Upper-bound estimate from the cumulative bucket counts (the exact
    /// max for the overflow bucket); 0 on an empty histogram.
    double quantile(double q) const;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Lookup helpers for tests and embedders; zero / null when absent.
  std::uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  const HistogramValue* histogram(const std::string& name) const;

  /// {"counters":{...},"gauges":{...},"histograms":{...}} at value
  /// position, every section name-sorted.
  void writeJson(JsonWriter& w) const;
  std::string jsonString() const;
};

class Registry {
public:
  Registry();
  ~Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Idempotent registration: the same name always returns a handle to the
  /// same metric (re-registering under a different kind is an error).
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  /// `bounds` must be ascending and non-empty; re-registration must repeat
  /// the same bounds.
  Histogram histogram(const std::string& name, std::vector<double> bounds = secondsBounds());

  Snapshot snapshot() const;
  std::string jsonString() const;

private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  enum class Kind : std::uint8_t { Counter, Gauge, Histogram };

  struct Metric {
    std::string name;
    Kind kind = Kind::Counter;
    std::shared_ptr<const std::vector<double>> bounds; // histograms only
  };

  /// Per-metric slot inside one thread's shard; only the fields of the
  /// metric's kind are used.
  struct Cell {
    std::uint64_t count = 0;
    double gaugeValue = 0;
    bool gaugeSet = false;
    std::vector<std::uint64_t> bucketCounts;
    double sum = 0;
    double min = 0;
    double max = 0;
  };

  struct Shard {
    std::mutex mu;
    std::vector<Cell> cells;
  };

  void counterAdd(std::uint32_t id, std::uint64_t n);
  void gaugeSet(std::uint32_t id, double v);
  void observe(std::uint32_t id, const std::vector<double>& bounds, double v);

  std::uint32_t intern(const std::string& name, Kind kind,
                       std::shared_ptr<const std::vector<double>> bounds);
  Shard& localShard();
  static Cell& cellFor(Shard& shard, std::uint32_t id);

  mutable std::mutex mu_; // metrics_ + shards_ registration and snapshot
  std::vector<Metric> metrics_;
  std::vector<std::unique_ptr<Shard>> shards_;
  const std::uint64_t uid_; // process-unique; keys the thread-local shard map
};

} // namespace dps::obs
