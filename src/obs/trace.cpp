#include "obs/trace.hpp"

#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/json.hpp"

namespace dps::obs {

void TraceSink::completeSpan(std::string name, std::string category, double tsMicros,
                             double durMicros, std::int32_t pid, std::int32_t tid,
                             std::string argsJson) {
  Event e;
  e.phase = 'X';
  e.name = std::move(name);
  e.category = std::move(category);
  e.args = std::move(argsJson);
  e.ts = tsMicros;
  e.dur = durMicros;
  e.pid = pid;
  e.tid = tid;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void TraceSink::instant(std::string name, std::string category, double tsMicros, std::int32_t pid,
                        std::int32_t tid, std::string argsJson) {
  Event e;
  e.phase = 'i';
  e.name = std::move(name);
  e.category = std::move(category);
  e.args = std::move(argsJson);
  e.ts = tsMicros;
  e.pid = pid;
  e.tid = tid;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void TraceSink::processName(std::int32_t pid, const std::string& name) {
  Event e;
  e.phase = 'M';
  e.name = "process_name";
  e.args = "{\"name\":\"" + jsonEscape(name) + "\"}";
  e.pid = pid;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void TraceSink::threadName(std::int32_t pid, std::int32_t tid, const std::string& name) {
  Event e;
  e.phase = 'M';
  e.name = "thread_name";
  e.args = "{\"name\":\"" + jsonEscape(name) + "\"}";
  e.pid = pid;
  e.tid = tid;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

std::size_t TraceSink::eventCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceSink::write(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w(os);
  w.beginObject().key("traceEvents").beginArray();
  for (const Event& e : events_) {
    w.beginObject().field("name", e.name);
    if (!e.category.empty()) w.field("cat", e.category);
    w.field("ph", std::string_view(&e.phase, 1));
    if (e.phase != 'M') w.field("ts", e.ts);
    if (e.phase == 'X') w.field("dur", e.dur);
    if (e.phase == 'i') w.field("s", "t"); // thread-scoped instant
    w.field("pid", e.pid).field("tid", e.tid);
    if (!e.args.empty()) w.key("args").raw(e.args);
    w.endObject();
  }
  w.endArray().endObject();
  DPS_CHECK(w.closed(), "unbalanced trace-event JSON");
}

std::string TraceSink::jsonString() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

bool TraceSink::writeFile(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write(os);
  return static_cast<bool>(os);
}

} // namespace dps::obs
