#include "obs/recorder.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "support/error.hpp"
#include "support/json.hpp"

namespace dps::obs {

const char* waitReasonName(WaitReason r) {
  switch (r) {
    case WaitReason::HeadOfLine: return "head_of_line";
    case WaitReason::InsufficientFree: return "insufficient_free";
    case WaitReason::PolicyHeld: return "policy_held";
    case WaitReason::DepthCutoff: return "depth_cutoff";
    case WaitReason::ShadowTime: return "shadow_time";
  }
  return "unknown";
}

const char* waitReasonLabel(WaitReason r) {
  switch (r) {
    case WaitReason::HeadOfLine: return "head-of-line blocked";
    case WaitReason::InsufficientFree: return "insufficient free nodes";
    case WaitReason::PolicyHeld: return "held by policy";
    case WaitReason::DepthCutoff: return "backfill-depth cutoff";
    case WaitReason::ShadowTime: return "shadow-time violation";
  }
  return "unknown";
}

WaitReason WaitAttribution::dominant() const {
  std::size_t best = 0;
  for (std::size_t r = 1; r < kWaitReasonCount; ++r)
    if (byReason[r] > byReason[best]) best = r;
  return static_cast<WaitReason>(best);
}

double WaitAttribution::dominantShare() const {
  if (totalNs <= 0) return 0;
  return static_cast<double>(byReason[static_cast<std::size_t>(dominant())]) /
         static_cast<double>(totalNs);
}

namespace {

/// Fixed-point seconds for narratives (JSON keeps full %.17g precision).
std::string sec3(double s) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", s);
  return buf;
}

std::string mb(double bytes) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / 1e6);
  return buf;
}

} // namespace

Recorder::Recorder(double timeseriesCadenceSec) : cadenceSec_(timeseriesCadenceSec) {
  DPS_CHECK(timeseriesCadenceSec >= 0, "recorder timeseries cadence must be >= 0");
}

void Recorder::beginRun(const std::string& policy, std::int32_t nodes, std::uint64_t seed) {
  policy_ = policy;
  nodes_ = nodes;
  seed_ = seed;
  makespanSec_ = 0;
  decisions_.clear();
  intervals_.clear();
  jobs_.clear();
  tsSec_.clear();
  tsUsed_.clear();
  tsFree_.clear();
  tsRunning_.clear();
  tsQueued_.clear();
  used_ = running_ = queued_ = 0;
  free_ = nodes;
  nextSample_ = 0;
}

void Recorder::admitDecision(double tSec, std::int32_t job, std::int32_t want, std::int32_t alloc,
                             std::int32_t freeNodes, bool started, WaitReason denial,
                             const char* rule, double score, double threshold) {
  Decision d;
  d.kind = Kind::Admit;
  d.tSec = tSec;
  d.job = job;
  d.want = want;
  d.alloc = alloc;
  d.freeNodes = freeNodes;
  d.started = started;
  d.reason = denial;
  d.rule = rule;
  d.score = score;
  d.threshold = threshold;
  decisions_.push_back(std::move(d));
}

void Recorder::backfillCandidate(double tSec, std::int32_t job, std::int32_t want,
                                 std::int32_t alloc, std::int32_t freeNodes, std::int32_t spare,
                                 bool started, WaitReason denial, const char* rule, double score,
                                 double threshold) {
  Decision d;
  d.kind = Kind::Candidate;
  d.tSec = tSec;
  d.job = job;
  d.want = want;
  d.alloc = alloc;
  d.freeNodes = freeNodes;
  d.spare = spare;
  d.started = started;
  d.reason = denial;
  d.rule = rule;
  d.score = score;
  d.threshold = threshold;
  decisions_.push_back(std::move(d));
}

void Recorder::depthCutoff(double tSec, std::int32_t job) {
  Decision d;
  d.kind = Kind::Cutoff;
  d.tSec = tSec;
  d.job = job;
  d.reason = WaitReason::DepthCutoff;
  decisions_.push_back(std::move(d));
}

void Recorder::backfillPass(double tSec, std::int32_t headJob, std::int32_t headAlloc,
                            double shadowSec, std::int32_t spare, std::int32_t considered,
                            std::int32_t started) {
  Decision d;
  d.kind = Kind::Pass;
  d.tSec = tSec;
  d.job = headJob;
  d.alloc = headAlloc;
  d.shadowSec = shadowSec;
  d.spare = spare;
  d.considered = considered;
  d.startedCount = started;
  decisions_.push_back(std::move(d));
}

void Recorder::reallocDecision(double tSec, std::int32_t job, std::int32_t fromNodes,
                               std::int32_t toNodes, std::int32_t freeNodes, double bytes,
                               const char* rule, double score, double threshold) {
  Decision d;
  d.kind = Kind::Realloc;
  d.tSec = tSec;
  d.job = job;
  d.fromNodes = fromNodes;
  d.toNodes = toNodes;
  d.freeNodes = freeNodes;
  d.bytes = bytes;
  d.rule = rule;
  d.score = score;
  d.threshold = threshold;
  decisions_.push_back(std::move(d));
}

void Recorder::migrationDelay(double tSec, std::int32_t job, double delaySec, double bytes) {
  Decision d;
  d.kind = Kind::Migration;
  d.tSec = tSec;
  d.job = job;
  d.delaySec = delaySec;
  d.bytes = bytes;
  decisions_.push_back(std::move(d));
}

void Recorder::waitInterval(std::int32_t job, double fromSec, double toSec, WaitReason reason) {
  intervals_.push_back(Interval{job, fromSec, toSec, reason});
}

void Recorder::pushSample(double tSec) {
  tsSec_.push_back(tSec);
  tsUsed_.push_back(used_);
  tsFree_.push_back(free_);
  tsRunning_.push_back(running_);
  tsQueued_.push_back(queued_);
}

void Recorder::flushSamples(double uptoSec) {
  if (cadenceSec_ <= 0) return;
  for (;;) {
    const double s = static_cast<double>(nextSample_) * cadenceSec_;
    if (s >= uptoSec) return;
    pushSample(s);
    ++nextSample_;
  }
}

void Recorder::stateSample(double tSec, std::int32_t usedNodes, std::int32_t freeNodes,
                           std::int32_t runningJobs, std::int32_t queuedJobs) {
  // Samples strictly before this change carry the state standing since the
  // previous one; a sample instant that coincides with tSec is emitted
  // later, with the new state (last change at an instant wins).
  flushSamples(tSec);
  used_ = usedNodes;
  free_ = freeNodes;
  running_ = runningJobs;
  queued_ = queuedJobs;
}

void Recorder::jobSummary(std::int32_t job, const std::string& klass, double arrivalSec,
                          double startSec, double finishSec, bool backfilled,
                          const WaitAttribution& attribution) {
  JobRow row;
  row.id = job;
  row.klass = klass;
  row.arrivalSec = arrivalSec;
  row.startSec = startSec;
  row.finishSec = finishSec;
  row.backfilled = backfilled;
  row.attribution = attribution;
  jobs_.push_back(std::move(row));
}

void Recorder::endRun(double makespanSec) {
  makespanSec_ = makespanSec;
  if (cadenceSec_ <= 0) return;
  // Flush the remaining instants up to and including the makespan with the
  // final (idle) state.
  for (;;) {
    const double s = static_cast<double>(nextSample_) * cadenceSec_;
    if (s > makespanSec) return;
    pushSample(s);
    ++nextSample_;
  }
}

void Recorder::writeJson(std::ostream& os) const {
  JsonWriter w(os);
  w.beginObject()
      .field("policy", policy_)
      .field("nodes", nodes_)
      .field("seed", seed_)
      .field("makespan_sec", makespanSec_)
      .field("decision_count", static_cast<std::uint64_t>(decisions_.size()));
  w.key("wait_reasons").beginArray();
  for (std::size_t r = 0; r < kWaitReasonCount; ++r)
    w.value(waitReasonName(static_cast<WaitReason>(r)));
  w.endArray();

  w.key("decisions").beginArray();
  for (const Decision& d : decisions_) {
    w.beginObject();
    switch (d.kind) {
      case Kind::Admit:
      case Kind::Candidate:
        w.field("kind", d.kind == Kind::Admit ? "admit" : "backfill_candidate")
            .field("t_sec", d.tSec)
            .field("job", d.job)
            .field("want", d.want)
            .field("alloc", d.alloc)
            .field("free", d.freeNodes);
        if (d.kind == Kind::Candidate) w.field("spare", d.spare);
        w.field("started", d.started);
        if (!d.started) w.field("reason", waitReasonName(d.reason));
        w.field("rule", d.rule).field("score", d.score).field("threshold", d.threshold);
        break;
      case Kind::Cutoff:
        w.field("kind", "depth_cutoff").field("t_sec", d.tSec).field("job", d.job);
        break;
      case Kind::Pass:
        w.field("kind", "backfill_pass")
            .field("t_sec", d.tSec)
            .field("head_job", d.job)
            .field("head_alloc", d.alloc)
            .field("shadow_sec", d.shadowSec)
            .field("spare", d.spare)
            .field("considered", d.considered)
            .field("started", d.startedCount);
        break;
      case Kind::Realloc:
        w.field("kind", "realloc")
            .field("t_sec", d.tSec)
            .field("job", d.job)
            .field("from", d.fromNodes)
            .field("to", d.toNodes)
            .field("free", d.freeNodes)
            .field("bytes", d.bytes)
            .field("rule", d.rule)
            .field("score", d.score)
            .field("threshold", d.threshold);
        break;
      case Kind::Migration:
        w.field("kind", "migration")
            .field("t_sec", d.tSec)
            .field("job", d.job)
            .field("delay_sec", d.delaySec)
            .field("bytes", d.bytes);
        break;
    }
    w.endObject();
  }
  w.endArray();

  w.key("wait_intervals").beginArray();
  for (const Interval& iv : intervals_)
    w.beginObject()
        .field("job", iv.job)
        .field("from_sec", iv.fromSec)
        .field("to_sec", iv.toSec)
        .field("reason", waitReasonName(iv.reason))
        .endObject();
  w.endArray();

  w.key("jobs").beginArray();
  for (const JobRow& j : jobs_) {
    w.beginObject()
        .field("id", j.id)
        .field("class", j.klass)
        .field("arrival_sec", j.arrivalSec)
        .field("start_sec", j.startSec)
        .field("finish_sec", j.finishSec)
        .field("backfilled", j.backfilled);
    w.key("wait_ns").beginObject();
    for (std::size_t r = 0; r < kWaitReasonCount; ++r)
      w.field(waitReasonName(static_cast<WaitReason>(r)), j.attribution.byReason[r]);
    w.field("total", j.attribution.totalNs).endObject();
    w.field("migration_delay_ns", j.attribution.migrationDelayNs)
        .field("dominant", j.attribution.totalNs > 0
                               ? waitReasonName(j.attribution.dominant())
                               : "none")
        .field("dominant_share", j.attribution.dominantShare())
        .endObject();
  }
  w.endArray();

  w.key("timeseries")
      .beginObject()
      .field("cadence_sec", cadenceSec_)
      .field("points", static_cast<std::uint64_t>(tsSec_.size()));
  w.key("t_sec").beginArray();
  for (double t : tsSec_) w.value(t);
  w.endArray();
  w.key("used_nodes").beginArray();
  for (std::int32_t v : tsUsed_) w.value(v);
  w.endArray();
  w.key("free_nodes").beginArray();
  for (std::int32_t v : tsFree_) w.value(v);
  w.endArray();
  w.key("running_jobs").beginArray();
  for (std::int32_t v : tsRunning_) w.value(v);
  w.endArray();
  w.key("queue_depth").beginArray();
  for (std::int32_t v : tsQueued_) w.value(v);
  w.endArray();
  w.key("utilization").beginArray();
  for (std::int32_t v : tsUsed_)
    w.value(nodes_ > 0 ? static_cast<double>(v) / static_cast<double>(nodes_) : 0.0);
  w.endArray().endObject();

  w.endObject();
  DPS_CHECK(w.closed(), "unbalanced recorder JSON");
}

std::string Recorder::jsonString() const {
  std::ostringstream os;
  writeJson(os);
  return os.str();
}

std::string Recorder::explain(std::int32_t job) const {
  const JobRow* row = nullptr;
  for (const JobRow& j : jobs_)
    if (j.id == job) row = &j;
  std::ostringstream os;
  if (row == nullptr) {
    os << "job " << job << ": not found in this record (policy " << policy_ << ")\n";
    return os.str();
  }

  const WaitAttribution& wa = row->attribution;
  const double waitSec = static_cast<double>(wa.totalNs) * 1e-9;
  os << "job " << row->id << " (" << row->klass << ") under " << policy_ << ": arrived t="
     << sec3(row->arrivalSec) << "s, started t=" << sec3(row->startSec) << "s"
     << (row->backfilled ? " (backfilled)" : "") << ", finished t=" << sec3(row->finishSec)
     << "s\n";
  os << "queue wait " << sec3(waitSec) << "s";
  if (wa.totalNs > 0) {
    os << ", attributed to:";
    bool any = false;
    for (std::size_t r = 0; r < kWaitReasonCount; ++r) {
      if (wa.byReason[r] <= 0) continue;
      const double frac =
          static_cast<double>(wa.byReason[r]) / static_cast<double>(wa.totalNs) * 100.0;
      char pct[16];
      std::snprintf(pct, sizeof(pct), "%.0f%%", frac);
      os << (any ? "; " : " ") << waitReasonLabel(static_cast<WaitReason>(r)) << " "
         << sec3(static_cast<double>(wa.byReason[r]) * 1e-9) << "s (" << pct << ")";
      any = true;
    }
    os << "\ndominant wait reason: " << waitReasonLabel(wa.dominant()) << "\n";
  } else {
    os << " (started on arrival)\n";
  }
  if (wa.migrationDelayNs > 0)
    os << "migration stalls while running: " << sec3(static_cast<double>(wa.migrationDelayNs) * 1e-9)
       << "s\n";

  os << "timeline:\n";
  os << "  t=" << sec3(row->arrivalSec) << "s  arrived\n";
  // Merge this job's decisions (by decision time) and wait intervals (by
  // close time; on a tie the interval reads first — it led up to the
  // decision that closed it).  Both streams are chronological per job.
  std::vector<const Decision*> ds;
  for (const Decision& d : decisions_)
    if (d.job == job) ds.push_back(&d);
  std::vector<const Interval*> ivs;
  for (const Interval& iv : intervals_)
    if (iv.job == job) ivs.push_back(&iv);
  std::size_t di = 0, ii = 0;
  while (di < ds.size() || ii < ivs.size()) {
    const bool takeInterval =
        ii < ivs.size() && (di >= ds.size() || ivs[ii]->toSec <= ds[di]->tSec);
    if (takeInterval) {
      const Interval& iv = *ivs[ii++];
      os << "  t=" << sec3(iv.fromSec) << "s -> " << sec3(iv.toSec) << "s  waited "
         << sec3(iv.toSec - iv.fromSec) << "s: " << waitReasonLabel(iv.reason) << "\n";
      continue;
    }
    const Decision& d = *ds[di++];
    os << "  t=" << sec3(d.tSec) << "s  ";
    switch (d.kind) {
      case Kind::Admit:
      case Kind::Candidate: {
        const char* where = d.kind == Kind::Admit ? "admit" : "backfill";
        if (d.started) {
          os << where << ": started on " << d.alloc << " nodes";
        } else {
          os << where << ": held — " << waitReasonLabel(d.reason) << " (want " << d.want
             << ", alloc " << d.alloc << ", free " << d.freeNodes;
          if (d.kind == Kind::Candidate) os << ", spare " << d.spare;
          os << ")";
        }
        if (!d.rule.empty()) os << " [rule=" << d.rule << "]";
        os << "\n";
        break;
      }
      case Kind::Cutoff:
        os << "backfill pass skipped this job: " << waitReasonLabel(WaitReason::DepthCutoff)
           << "\n";
        break;
      case Kind::Pass:
        os << "backfill pass for this blocked head: reservation of " << d.alloc << " nodes at t="
           << sec3(d.shadowSec) << "s (spare " << d.spare << "), considered " << d.considered
           << ", started " << d.startedCount << "\n";
        break;
      case Kind::Realloc:
        os << "realloc " << d.fromNodes << " -> " << d.toNodes << " ("
           << (d.toNodes < d.fromNodes ? "shrink" : "grow") << ", " << mb(d.bytes) << " moved)";
        if (!d.rule.empty()) {
          os << " [rule=" << d.rule;
          if (d.threshold > 0) os << ", score " << sec3(d.score) << " vs threshold "
                                  << sec3(d.threshold);
          os << "]";
        }
        os << "\n";
        break;
      case Kind::Migration:
        os << "migration stall " << sec3(d.delaySec) << "s (" << mb(d.bytes) << ")\n";
        break;
    }
  }
  os << "  t=" << sec3(row->finishSec) << "s  finished\n";
  return os.str();
}

} // namespace dps::obs
