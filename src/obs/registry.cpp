#include "obs/registry.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "support/error.hpp"
#include "support/json.hpp"

namespace dps::obs {

namespace {

/// Process-unique registry ids: the thread-local shard map is keyed by uid,
/// never by address, so a registry allocated where a destroyed one lived
/// cannot inherit its stale shards.
std::uint64_t nextUid() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

std::vector<double> secondsBounds() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0, 1000.0};
}

std::vector<double> bytesBounds() {
  return {1024.0, 16384.0, 262144.0, 4194304.0, 67108864.0, 1073741824.0, 17179869184.0};
}

void Counter::add(std::uint64_t n) const {
  if (reg_ != nullptr) reg_->counterAdd(id_, n);
}

void Gauge::set(double v) const {
  if (reg_ != nullptr) reg_->gaugeSet(id_, v);
}

void Histogram::observe(double v) const {
  if (reg_ != nullptr) reg_->observe(id_, *bounds_, v);
}

Registry::Registry() : uid_(nextUid()) {}

Counter Registry::counter(const std::string& name) {
  return Counter{this, intern(name, Kind::Counter, nullptr)};
}

Gauge Registry::gauge(const std::string& name) {
  return Gauge{this, intern(name, Kind::Gauge, nullptr)};
}

Histogram Registry::histogram(const std::string& name, std::vector<double> bounds) {
  DPS_CHECK(!bounds.empty(), "histogram needs at least one bucket bound");
  DPS_CHECK(std::is_sorted(bounds.begin(), bounds.end()), "histogram bounds must ascend");
  auto shared = std::make_shared<const std::vector<double>>(std::move(bounds));
  const std::uint32_t id = intern(name, Kind::Histogram, shared);
  std::shared_ptr<const std::vector<double>> canonical;
  {
    std::lock_guard<std::mutex> lock(mu_);
    canonical = metrics_[id].bounds; // the first registration's bounds win
  }
  return Histogram{this, id, std::move(canonical)};
}

std::uint32_t Registry::intern(const std::string& name, Kind kind,
                               std::shared_ptr<const std::vector<double>> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::uint32_t i = 0; i < metrics_.size(); ++i) {
    if (metrics_[i].name != name) continue;
    DPS_CHECK(metrics_[i].kind == kind, "metric '" + name + "' re-registered as another kind");
    if (kind == Kind::Histogram)
      DPS_CHECK(*metrics_[i].bounds == *bounds,
                "histogram '" + name + "' re-registered with different bounds");
    return i;
  }
  metrics_.push_back(Metric{name, kind, std::move(bounds)});
  return static_cast<std::uint32_t>(metrics_.size() - 1);
}

Registry::Shard& Registry::localShard() {
  thread_local std::unordered_map<std::uint64_t, Shard*> shardOf;
  auto it = shardOf.find(uid_);
  if (it != shardOf.end()) return *it->second;
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  shardOf.emplace(uid_, shard);
  return *shard;
}

Registry::Cell& Registry::cellFor(Shard& shard, std::uint32_t id) {
  if (shard.cells.size() <= id) shard.cells.resize(id + 1);
  return shard.cells[id];
}

void Registry::counterAdd(std::uint32_t id, std::uint64_t n) {
  Shard& shard = localShard();
  std::lock_guard<std::mutex> lock(shard.mu);
  cellFor(shard, id).count += n;
}

void Registry::gaugeSet(std::uint32_t id, double v) {
  Shard& shard = localShard();
  std::lock_guard<std::mutex> lock(shard.mu);
  Cell& cell = cellFor(shard, id);
  cell.gaugeValue = v;
  cell.gaugeSet = true;
}

void Registry::observe(std::uint32_t id, const std::vector<double>& bounds, double v) {
  Shard& shard = localShard();
  std::lock_guard<std::mutex> lock(shard.mu);
  Cell& cell = cellFor(shard, id);
  if (cell.bucketCounts.empty()) cell.bucketCounts.assign(bounds.size() + 1, 0);
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
  ++cell.bucketCounts[bucket];
  if (cell.count == 0) {
    cell.min = cell.max = v;
  } else {
    cell.min = std::min(cell.min, v);
    cell.max = std::max(cell.max, v);
  }
  ++cell.count;
  cell.sum += v;
}

Snapshot Registry::snapshot() const {
  std::vector<Metric> metrics;
  std::vector<Shard*> shards;
  {
    std::lock_guard<std::mutex> lock(mu_);
    metrics = metrics_;
    shards.reserve(shards_.size());
    for (const auto& s : shards_) shards.push_back(s.get());
  }

  // Fold every shard's cells into one value per metric.
  std::vector<Cell> folded(metrics.size());
  std::vector<bool> any(metrics.size(), false);
  for (Shard* shard : shards) {
    std::lock_guard<std::mutex> lock(shard->mu);
    const std::size_t n = std::min(shard->cells.size(), folded.size());
    for (std::size_t i = 0; i < n; ++i) {
      const Cell& c = shard->cells[i];
      Cell& f = folded[i];
      switch (metrics[i].kind) {
        case Kind::Counter: f.count += c.count; break;
        case Kind::Gauge:
          if (!c.gaugeSet) break;
          f.gaugeValue = any[i] ? std::max(f.gaugeValue, c.gaugeValue) : c.gaugeValue;
          any[i] = true;
          break;
        case Kind::Histogram:
          if (c.count == 0) break;
          if (f.bucketCounts.empty()) f.bucketCounts.assign(c.bucketCounts.size(), 0);
          for (std::size_t b = 0; b < c.bucketCounts.size(); ++b)
            f.bucketCounts[b] += c.bucketCounts[b];
          f.min = any[i] ? std::min(f.min, c.min) : c.min;
          f.max = any[i] ? std::max(f.max, c.max) : c.max;
          any[i] = true;
          f.count += c.count;
          f.sum += c.sum;
          break;
      }
    }
  }

  Snapshot snap;
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const Cell& f = folded[i];
    switch (metrics[i].kind) {
      case Kind::Counter:
        snap.counters.push_back(Snapshot::CounterValue{metrics[i].name, f.count});
        break;
      case Kind::Gauge:
        snap.gauges.push_back(Snapshot::GaugeValue{metrics[i].name, any[i] ? f.gaugeValue : 0.0});
        break;
      case Kind::Histogram: {
        Snapshot::HistogramValue h;
        h.name = metrics[i].name;
        h.bounds = *metrics[i].bounds;
        h.counts = f.bucketCounts.empty() ? std::vector<std::uint64_t>(h.bounds.size() + 1, 0)
                                          : f.bucketCounts;
        h.count = f.count;
        h.sum = f.sum;
        h.min = any[i] ? f.min : 0.0;
        h.max = any[i] ? f.max : 0.0;
        snap.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  auto byName = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), byName);
  std::sort(snap.gauges.begin(), snap.gauges.end(), byName);
  std::sort(snap.histograms.begin(), snap.histograms.end(), byName);
  return snap;
}

std::string Registry::jsonString() const { return snapshot().jsonString(); }

double Snapshot::HistogramValue::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    cumulative += counts[b];
    if (static_cast<double>(cumulative) >= target && counts[b] > 0)
      return b < bounds.size() ? std::min(bounds[b], max) : max;
  }
  return max;
}

std::uint64_t Snapshot::counter(const std::string& name) const {
  for (const CounterValue& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

double Snapshot::gauge(const std::string& name) const {
  for (const GaugeValue& g : gauges)
    if (g.name == name) return g.value;
  return 0.0;
}

const Snapshot::HistogramValue* Snapshot::histogram(const std::string& name) const {
  for (const HistogramValue& h : histograms)
    if (h.name == name) return &h;
  return nullptr;
}

void Snapshot::writeJson(JsonWriter& w) const {
  w.beginObject();
  w.key("counters").beginObject();
  for (const CounterValue& c : counters) w.field(c.name, c.value);
  w.endObject();
  w.key("gauges").beginObject();
  for (const GaugeValue& g : gauges) w.field(g.name, g.value);
  w.endObject();
  w.key("histograms").beginObject();
  for (const HistogramValue& h : histograms) {
    w.key(h.name).beginObject();
    w.field("count", h.count)
        .field("sum", h.sum)
        .field("min", h.min)
        .field("max", h.max)
        .field("p50", h.quantile(0.5))
        .field("p99", h.quantile(0.99));
    w.key("buckets").beginArray();
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      w.beginObject();
      if (b < h.bounds.size()) w.field("le", h.bounds[b]);
      else w.field("le", "+Inf");
      w.field("count", h.counts[b]).endObject();
    }
    w.endArray().endObject();
  }
  w.endObject();
  w.endObject();
}

std::string Snapshot::jsonString() const {
  std::ostringstream os;
  JsonWriter w(os);
  writeJson(w);
  DPS_CHECK(w.closed(), "unbalanced metrics snapshot JSON");
  return os.str();
}

} // namespace dps::obs
