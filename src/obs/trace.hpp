// obs::TraceSink — Chrome trace-event JSON (chrome://tracing / Perfetto).
//
// The sink buffers complete spans ("X"), instant events ("i") and
// process/thread-name metadata ("M") and writes the standard
// {"traceEvents":[...]} document.  Timestamps are microseconds, in whatever
// clock the instrumented layer lives in: the DES cluster loop records
// *simulated* time (simNowSec * 1e6), the profile service records *wall*
// time (obs::WallClock::elapsedMicros) — the pid axis keeps them apart, so
// one file can carry both.
//
// Thread-safe behind one mutex: tracing is for inspection runs, not hot
// paths, so a shared lock is the right simplicity trade-off (pool workers
// emit a handful of spans per request, not per event).  Like the metrics
// registry, a null sink pointer means "disabled" — instrumented layers
// check and skip, so traces cost nothing when not requested.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace dps::obs {

class TraceSink {
public:
  TraceSink() = default;
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// A complete span ("ph":"X") covering [tsMicros, tsMicros + durMicros].
  /// `argsJson`, when non-empty, must be a complete JSON object literal.
  void completeSpan(std::string name, std::string category, double tsMicros, double durMicros,
                    std::int32_t pid, std::int32_t tid, std::string argsJson = {});
  /// A thread-scoped instant event ("ph":"i").
  void instant(std::string name, std::string category, double tsMicros, std::int32_t pid,
               std::int32_t tid, std::string argsJson = {});
  /// Metadata: names the pid / (pid, tid) lane in the viewer.
  void processName(std::int32_t pid, const std::string& name);
  void threadName(std::int32_t pid, std::int32_t tid, const std::string& name);

  std::size_t eventCount() const;

  /// The {"traceEvents":[...]} document, events in emission order.
  void write(std::ostream& os) const;
  std::string jsonString() const;
  /// Returns false (and writes nothing) when the file cannot be opened.
  bool writeFile(const std::string& path) const;

private:
  struct Event {
    char phase = 'X';
    std::string name;
    std::string category;
    std::string args; // pre-rendered JSON object ("" = none)
    double ts = 0;
    double dur = 0;
    std::int32_t pid = 0;
    std::int32_t tid = 0;
  };

  mutable std::mutex mu_;
  std::vector<Event> events_;
};

} // namespace dps::obs
