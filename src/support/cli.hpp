// Minimal command-line option parser for examples and bench binaries.
//
// Accepts `--key=value`, `--key value` and boolean `--flag` forms; anything
// else is a positional argument.  Unknown options are an error so typos in
// experiment sweeps fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dps {

class Cli {
public:
  Cli(int argc, const char* const* argv);

  /// Declares an option so `--help` can describe it and parsing accepts it.
  /// Returns the value (or `def` when absent).
  std::string str(const std::string& key, const std::string& def, const std::string& help = {});
  std::int64_t integer(const std::string& key, std::int64_t def, const std::string& help = {});
  double real(const std::string& key, double def, const std::string& help = {});
  bool flag(const std::string& key, const std::string& help = {});

  const std::vector<std::string>& positionals() const { return positionals_; }
  bool helpRequested() const { return help_; }
  std::string helpText() const;

  /// Throws ConfigError if any provided --option was never declared.
  void finish() const;

private:
  std::optional<std::string> lookup(const std::string& key);
  void describe(const std::string& key, const std::string& def, const std::string& help);

  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
  std::vector<std::string> positionals_;
  std::vector<std::string> descriptions_;
  bool help_ = false;
};

} // namespace dps
