#include "support/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/error.hpp"

namespace dps {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  DPS_CHECK(bins > 0, "histogram needs at least one bin");
  DPS_CHECK(hi > lo, "histogram range must be non-empty");
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  ++total_;
  std::size_t idx;
  if (x < lo_) {
    ++underflow_;
    idx = 0;
  } else if (x >= hi_) {
    ++overflow_;
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
}

void Histogram::addAll(const std::vector<double>& xs) {
  for (double x : xs) add(x);
}

double Histogram::binLo(std::size_t bin) const { return lo_ + width_ * static_cast<double>(bin); }
double Histogram::binHi(std::size_t bin) const { return binLo(bin) + width_; }

std::size_t Histogram::modeBin() const {
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

std::string Histogram::render(std::size_t barWidth) const {
  const std::size_t maxCount = counts_.empty() ? 0 : counts_[modeBin()];
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double c = binCenter(i);
    std::size_t bar = maxCount == 0
                          ? 0
                          : (counts_[i] * barWidth + maxCount - 1) / maxCount;
    std::snprintf(line, sizeof line, "%+8.1f%% | %-*s %zu\n", c * 100.0,
                  static_cast<int>(barWidth),
                  std::string(bar, '#').c_str(), counts_[i]);
    out += line;
  }
  return out;
}

} // namespace dps
