// Aligned text tables for benchmark / experiment output.
//
// Every bench binary prints the same rows the paper's tables and figures
// report; this printer keeps that output readable and diffable.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace dps {

class Table {
public:
  enum class Align { Left, Right };

  explicit Table(std::string title = {});

  /// Sets the header row; column count is fixed from here on.
  void header(std::vector<std::string> names);
  /// Per-column alignment; default is Left for col 0, Right otherwise.
  void align(std::vector<Align> aligns);

  void row(std::vector<std::string> cells);

  /// Convenience formatting helpers.
  static std::string num(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);
  static std::string secs(double seconds, int precision = 2);

  void print(std::ostream& os) const;
  std::string str() const;

  std::size_t rows() const { return rows_.size(); }

private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

} // namespace dps
