#include "support/thread_pool.hpp"

#include <atomic>
#include <memory>

#include "support/error.hpp"

namespace dps {

unsigned ThreadPool::hardwareJobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1u;
}

ThreadPool::ThreadPool(unsigned threads) {
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  DPS_CHECK(!workers_.empty(), "submit() on a worker-less pool would never run the task");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return; // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

/// Shared state of one parallelFor: an atomic work counter plus completion
/// accounting.  Heap-allocated so pool tasks that wake after the caller has
/// already returned (having drained everything itself) stay valid.
struct ForState {
  explicit ForState(std::size_t n, const std::function<void(std::size_t)>& b)
      : count(n), body(b) {}

  const std::size_t count;
  const std::function<void(std::size_t)>& body; // caller outlives all workers
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> abort{false};
  std::mutex mutex;
  std::condition_variable cv;
  std::exception_ptr error; // first failure; guarded by mutex

  /// Claims and runs items until the counter is exhausted.  After a failure
  /// the remaining items are still claimed (so `done` reaches `count` and
  /// the caller wakes) but their bodies are skipped.
  void drain() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      if (!abort.load(std::memory_order_relaxed)) {
        try {
          body(i);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(mutex);
            if (!error) error = std::current_exception();
          }
          abort.store(true, std::memory_order_relaxed);
        }
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
        std::lock_guard<std::mutex> lock(mutex);
        cv.notify_all();
      }
    }
  }
};

} // namespace

void parallelFor(ThreadPool& pool, std::size_t count,
                 const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (count == 1 || pool.threadCount() == 0) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  auto state = std::make_shared<ForState>(count, body);
  // One helper task per worker that could usefully claim an item; the
  // caller participates too, so helpers = min(workers, count - 1).
  const std::size_t helpers =
      std::min<std::size_t>(pool.threadCount(), count - 1);
  for (std::size_t i = 0; i < helpers; ++i) pool.submit([state] { state->drain(); });
  state->drain();
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) == state->count;
    });
    if (state->error) std::rethrow_exception(state->error);
  }
}

void parallelFor(std::size_t count, unsigned jobs,
                 const std::function<void(std::size_t)>& body) {
  if (jobs == 0) jobs = ThreadPool::hardwareJobs();
  if (jobs <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  // The caller participates, so jobs - 1 pool workers give `jobs`
  // concurrent bodies.
  ThreadPool pool(static_cast<unsigned>(
      std::min<std::size_t>(jobs - 1, count > 0 ? count - 1 : 0)));
  parallelFor(pool, count, body);
}

} // namespace dps
