// Fixed-size thread pool + deterministic parallelFor.
//
// The pool is the substrate of the experiment-campaign subsystem: many
// independent simulations (each single-threaded, each owning its engine)
// fan out across cores.  parallelFor gives deterministic work->result
// ordering — body(i) writes to slot i, so results are ordered by index no
// matter which thread ran which item or in what order items finished.
//
// The calling thread participates in parallelFor, so a pool with T workers
// yields up to T+1 concurrent bodies and `parallelFor(n, jobs, body)` with
// jobs == 1 degenerates to a plain serial loop on the caller (no pool, no
// synchronization — bit-identical to never having used this header).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dps {

class ThreadPool {
public:
  /// Spawns exactly `threads` workers.  A pool of 0 workers is valid and
  /// makes parallelFor run inline on the caller — `ThreadPool(jobs - 1)`
  /// therefore yields exactly `jobs` concurrent bodies for any jobs >= 1.
  explicit ThreadPool(unsigned threads = hardwareJobs());
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned threadCount() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task; it runs as soon as a worker frees up.  Requires at
  /// least one worker (throws otherwise).  Tasks must not block waiting for
  /// later-submitted tasks (classic pool deadlock).
  void submit(std::function<void()> task);

  /// max(1, std::thread::hardware_concurrency()).
  static unsigned hardwareJobs();

private:
  void workerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

/// Runs body(0) ... body(count-1) across the pool's workers plus the calling
/// thread; returns when every body has finished.  Items are claimed from an
/// atomic counter, so assignment to threads is racy, but callers index their
/// result slots by `i` — results are deterministically ordered regardless.
/// The first exception thrown by any body is rethrown on the caller after
/// all remaining items were drained (bodies after the throw are skipped).
void parallelFor(ThreadPool& pool, std::size_t count,
                 const std::function<void(std::size_t)>& body);

/// Convenience form: `jobs` == 0 picks hardwareJobs(); jobs <= 1 or
/// count <= 1 runs inline on the caller without any pool or locking.
void parallelFor(std::size_t count, unsigned jobs,
                 const std::function<void(std::size_t)>& body);

} // namespace dps
