// Heap accounting used by the Table 1 reproduction (memory column of the
// PDEXEC / NOALLOC comparison).
//
// The accounting operators new/delete live in the separate `dps_memtrack`
// library; link it into a binary to activate tracking.  Binaries that do not
// link it get the weak fallbacks below, which report zero.
#pragma once

#include <cstddef>

namespace dps::memtrack {

/// Bytes currently allocated through operator new (0 if tracking inactive).
std::size_t currentBytes();
/// High-water mark since process start or the last resetPeak().
std::size_t peakBytes();
void resetPeak();
/// True when the accounting allocator is linked in.
bool active();

} // namespace dps::memtrack
