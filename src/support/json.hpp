// Minimal JSON emission helpers shared by every layer's report writers
// (campaign/autocal emitters, sched cluster metrics, bench --json).
#pragma once

#include <cstdio>
#include <string>

namespace dps {

/// Round-trippable double formatting for JSON/CSV emitters: %.17g prints
/// enough digits to reconstruct the exact bit pattern.
inline std::string jsonDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
inline std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

} // namespace dps
