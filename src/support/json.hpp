// Minimal JSON emission helpers shared by every layer's report writers
// (campaign/autocal emitters, sched cluster metrics, bench --json), plus
// the JsonWriter object API those emitters are built on.
#pragma once

#include <concepts>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace dps {

/// Round-trippable double formatting for JSON/CSV emitters: %.17g prints
/// enough digits to reconstruct the exact bit pattern.
inline std::string jsonDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
inline std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Streaming compact-JSON writer: the one emitter behind every report
/// (campaign, autocal, cluster metrics, replay, benches).  Commas and
/// nesting are handled by a small state stack so emitters state only their
/// structure; formatting matches the historical hand-rolled writers byte
/// for byte — doubles through jsonDouble (%.17g), integers streamed raw,
/// strings through jsonEscape — so CI's JSON assertions keep holding.
class JsonWriter {
public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& beginObject() {
    valuePrefix();
    os_ << '{';
    stack_.push_back(Frame{true, false});
    return *this;
  }
  JsonWriter& endObject() {
    DPS_CHECK(!stack_.empty() && stack_.back().isObject && !afterKey_,
              "endObject outside an object (or after a dangling key)");
    stack_.pop_back();
    os_ << '}';
    return *this;
  }
  JsonWriter& beginArray() {
    valuePrefix();
    os_ << '[';
    stack_.push_back(Frame{false, false});
    return *this;
  }
  JsonWriter& endArray() {
    DPS_CHECK(!stack_.empty() && !stack_.back().isObject, "endArray outside an array");
    stack_.pop_back();
    os_ << ']';
    return *this;
  }

  JsonWriter& key(std::string_view k) {
    DPS_CHECK(!stack_.empty() && stack_.back().isObject && !afterKey_,
              "key() outside an object (or doubled)");
    if (stack_.back().any) os_ << ',';
    stack_.back().any = true;
    os_ << '"' << jsonEscape(std::string(k)) << "\":";
    afterKey_ = true;
    return *this;
  }

  JsonWriter& value(double v) {
    valuePrefix();
    os_ << jsonDouble(v);
    return *this;
  }
  JsonWriter& value(bool v) {
    valuePrefix();
    os_ << (v ? "true" : "false");
    return *this;
  }
  template <typename T>
    requires(std::integral<T> && !std::same_as<T, bool>)
  JsonWriter& value(T v) {
    valuePrefix();
    os_ << v;
    return *this;
  }
  JsonWriter& value(std::string_view s) {
    valuePrefix();
    os_ << '"' << jsonEscape(std::string(s)) << '"';
    return *this;
  }
  /// Without this overload a string literal would convert to bool (a
  /// standard conversion, preferred over the string_view constructor).
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& null() {
    valuePrefix();
    os_ << "null";
    return *this;
  }
  /// Splices a pre-rendered JSON fragment at value position (the benches'
  /// extraJson escape hatch).
  JsonWriter& raw(std::string_view json) {
    valuePrefix();
    os_ << json;
    return *this;
  }
  /// Splices pre-rendered `"key":value[,...]` members into the current
  /// object (no-op on an empty fragment).
  JsonWriter& rawMembers(std::string_view fragment) {
    if (fragment.empty()) return *this;
    DPS_CHECK(!stack_.empty() && stack_.back().isObject && !afterKey_,
              "rawMembers outside an object");
    if (stack_.back().any) os_ << ',';
    stack_.back().any = true;
    os_ << fragment;
    return *this;
  }

  /// key(k).value(v) in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// True once every begun object/array is ended (emitters assert this).
  bool closed() const { return stack_.empty() && !afterKey_; }

private:
  struct Frame {
    bool isObject;
    bool any; // a key (object) or value (array) was already emitted
  };

  void valuePrefix() {
    if (afterKey_) {
      afterKey_ = false;
      return;
    }
    if (stack_.empty()) return; // top-level value
    DPS_CHECK(!stack_.back().isObject, "object members need key() before the value");
    if (stack_.back().any) os_ << ',';
    stack_.back().any = true;
  }

  std::ostream& os_;
  std::vector<Frame> stack_;
  bool afterKey_ = false;
};

} // namespace dps
