#include "support/time.hpp"

#include <cmath>
#include <cstdio>

namespace dps {

std::string formatDuration(SimDuration d) {
  const double ns = static_cast<double>(d.count());
  const double abs = std::fabs(ns);
  char buf[48];
  if (abs >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.3fs", ns * 1e-9);
  } else if (abs >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3fms", ns * 1e-6);
  } else if (abs >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3fus", ns * 1e-3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fns", ns);
  }
  return buf;
}

} // namespace dps
