// Deterministic random number generation.
//
// All stochastic behaviour in the framework (fidelity noise, workload
// generators, property tests) goes through Xoshiro256** seeded explicitly,
// so every experiment is reproducible bit-for-bit from its seed.
#pragma once

#include <cstdint>
#include <limits>

namespace dps {

/// SplitMix64 — used to expand a single seed into generator state.
class SplitMix64 {
public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

private:
  std::uint64_t state_;
};

/// Xoshiro256** 1.0 — fast, high-quality, reproducible across platforms.
/// Satisfies UniformRandomBitGenerator so it plugs into <random>.
class Rng {
public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n); n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's multiply-shift rejection method: unbiased and fast.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method (deterministic, no libm state).
  double normal();

  /// Normal with given mean / standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with the given rate (mean 1/rate); rate must be > 0.
  /// Inter-arrival times of a Poisson process — the workload generators'
  /// arrival model.
  double exponential(double rate);

  /// Poisson-distributed count with the given mean (> 0).  Knuth's product
  /// method below mean 32, normal approximation (rounded, clamped at 0)
  /// above — deterministic in the draw sequence either way.
  std::uint64_t poisson(double mean);

  /// Derives an independent child generator (for per-node noise streams).
  Rng fork() { return Rng((*this)() ^ 0xD2B74407B1CE6E93ull); }

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  bool haveSpare_ = false;
  double spare_ = 0.0;
};

} // namespace dps
