// Fixed-width histogram with ASCII rendering (used for the paper's Fig. 13
// prediction-error histogram and for distribution diagnostics in tests).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dps {

class Histogram {
public:
  /// Bins of equal width covering [lo, hi); values outside are clamped into
  /// the first/last bin and counted as underflow/overflow as well.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void addAll(const std::vector<double>& xs);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  double binLo(std::size_t bin) const;
  double binHi(std::size_t bin) const;
  double binCenter(std::size_t bin) const { return 0.5 * (binLo(bin) + binHi(bin)); }

  /// Index of the most populated bin.
  std::size_t modeBin() const;

  /// Multi-line ASCII bar chart; `label(binCenter)` formats the axis.
  std::string render(std::size_t barWidth = 40) const;

private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

} // namespace dps
