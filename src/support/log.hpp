// Lightweight leveled logging.  Off by default; enable with
// DPS_LOG_LEVEL=debug|info|warn in the environment or setLevel().
#pragma once

#include <sstream>
#include <string>

namespace dps::log {

enum class Level { Debug = 0, Info = 1, Warn = 2, Off = 3 };

Level level();
void setLevel(Level l);
bool enabled(Level l);
void write(Level l, const std::string& msg);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
} // namespace detail

} // namespace dps::log

#define DPS_LOG(levelName, ...)                                                  \
  do {                                                                           \
    if (::dps::log::enabled(::dps::log::Level::levelName))                       \
      ::dps::log::write(::dps::log::Level::levelName,                            \
                        ::dps::log::detail::concat(__VA_ARGS__));                \
  } while (0)

#define DPS_DEBUG(...) DPS_LOG(Debug, __VA_ARGS__)
#define DPS_INFO(...) DPS_LOG(Info, __VA_ARGS__)
#define DPS_WARN(...) DPS_LOG(Warn, __VA_ARGS__)
