// Weak fallbacks: report "tracking inactive" unless dps_memtrack is linked.
#include "support/memtrack.hpp"

namespace dps::memtrack {

__attribute__((weak)) std::size_t currentBytes() { return 0; }
__attribute__((weak)) std::size_t peakBytes() { return 0; }
__attribute__((weak)) void resetPeak() {}
__attribute__((weak)) bool active() { return false; }

} // namespace dps::memtrack
