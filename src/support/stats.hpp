// Streaming and batch statistics used by the experiment harness.
#pragma once

#include <cstddef>
#include <vector>

namespace dps {

/// Welford online accumulator: mean / variance / min / max in one pass.
class OnlineStats {
public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator (parallel reduction friendly).
  void merge(const OnlineStats& other);

private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample set with linear interpolation; `p` in [0, 100].
/// Copies its input; fine for experiment-sized data.
double percentile(std::vector<double> samples, double p);

/// Signed relative error of `predicted` against `measured` (paper Fig. 13
/// convention: (predicted - measured) / measured).
double relativeError(double predicted, double measured);

/// Fraction of |errors| <= bound.
double fractionWithin(const std::vector<double>& errors, double bound);

} // namespace dps
