#include "support/rng.hpp"

#include <cmath>

namespace dps {

double Rng::normal() {
  if (haveSpare_) {
    haveSpare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  haveSpare_ = true;
  return u * factor;
}

} // namespace dps
