#include "support/rng.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace dps {

double Rng::exponential(double rate) {
  DPS_CHECK(rate > 0.0, "exponential rate must be positive");
  // uniform() is in [0, 1); flip to (0, 1] so log never sees zero.
  return -std::log(1.0 - uniform()) / rate;
}

std::uint64_t Rng::poisson(double mean) {
  DPS_CHECK(mean > 0.0, "poisson mean must be positive");
  if (mean < 32.0) {
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double product = uniform();
    while (product > limit) {
      ++k;
      product *= uniform();
    }
    return k;
  }
  const double draw = std::round(normal(mean, std::sqrt(mean)));
  return static_cast<std::uint64_t>(std::max(0.0, draw));
}

double Rng::normal() {
  if (haveSpare_) {
    haveSpare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  haveSpare_ = true;
  return u * factor;
}

} // namespace dps
