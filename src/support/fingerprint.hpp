// Stable structural fingerprints for configuration structs.
//
// The svc:: profile cache keys memoized simulation results by the exact
// engine configuration that produced them; a configuration that differs in
// *any* semantic field must never alias another's cache entry.  Fingerprint
// is the shared accumulator every layer's config hashes itself into: FNV-1a
// over the fields' byte-exact representations (doubles via their bit
// pattern, durations via their nanosecond count), order-sensitive, with a
// type tag mixed in per value so adjacent fields of different types cannot
// cancel out.
//
// The value is deterministic across processes and platforms of equal
// endianness and stable across runs — suitable for cache keys and for
// diffing configurations in reports, not for cryptographic purposes.
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

#include "support/time.hpp"

namespace dps {

class Fingerprint {
public:
  /// FNV-1a 64-bit offset basis / prime.
  static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;

  std::uint64_t value() const { return h_; }

  Fingerprint& add(std::uint64_t v) { return tag('u').mixWord(v); }
  Fingerprint& add(std::int64_t v) { return tag('i').mixWord(static_cast<std::uint64_t>(v)); }
  Fingerprint& add(std::int32_t v) { return add(static_cast<std::int64_t>(v)); }
  Fingerprint& add(bool v) { return tag('b').mixWord(v ? 1 : 0); }
  Fingerprint& add(double v) {
    // +0.0 and -0.0 hash identically (they simulate identically); NaNs are
    // not expected in configurations.
    if (v == 0.0) v = 0.0;
    return tag('d').mixWord(std::bit_cast<std::uint64_t>(v));
  }
  Fingerprint& add(SimDuration d) { return tag('t').mixWord(static_cast<std::uint64_t>(d.count())); }
  Fingerprint& add(std::string_view s) {
    tag('s').mixWord(s.size());
    for (char c : s) mixByte(static_cast<unsigned char>(c));
    return *this;
  }

private:
  Fingerprint& tag(unsigned char t) {
    mixByte(t);
    return *this;
  }
  Fingerprint& mixWord(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mixByte(static_cast<unsigned char>(v >> (8 * i)));
    return *this;
  }
  void mixByte(unsigned char b) {
    h_ ^= b;
    h_ *= kPrime;
  }

  std::uint64_t h_ = kOffset;
};

} // namespace dps
