#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace dps::log {

namespace {

Level initialLevel() {
  const char* env = std::getenv("DPS_LOG_LEVEL");
  if (!env) return Level::Warn;
  if (std::strcmp(env, "debug") == 0) return Level::Debug;
  if (std::strcmp(env, "info") == 0) return Level::Info;
  if (std::strcmp(env, "warn") == 0) return Level::Warn;
  return Level::Off;
}

std::atomic<Level> g_level{initialLevel()};
std::mutex g_mutex;

const char* name(Level l) {
  switch (l) {
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO ";
    case Level::Warn: return "WARN ";
    default: return "?";
  }
}

} // namespace

Level level() { return g_level.load(std::memory_order_relaxed); }
void setLevel(Level l) { g_level.store(l, std::memory_order_relaxed); }
bool enabled(Level l) { return static_cast<int>(l) >= static_cast<int>(level()); }

void write(Level l, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[dps %s] %s\n", name(l), msg.c_str());
}

} // namespace dps::log
