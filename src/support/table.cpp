#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/error.hpp"

namespace dps {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::header(std::vector<std::string> names) {
  DPS_CHECK(!names.empty(), "table header must have columns");
  header_ = std::move(names);
  if (aligns_.empty()) {
    aligns_.assign(header_.size(), Align::Right);
    aligns_[0] = Align::Left;
  }
}

void Table::align(std::vector<Align> aligns) {
  DPS_CHECK(header_.empty() || aligns.size() == header_.size(),
            "alignment count must match column count");
  aligns_ = std::move(aligns);
}

void Table::row(std::vector<std::string> cells) {
  DPS_CHECK(cells.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::secs(double seconds, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*fs", precision, seconds);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c) widths[c] = std::max(widths[c], r[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const auto pad = widths[c] - cells[c].size();
      if (c) os << "  ";
      if (aligns_[c] == Align::Right) os << std::string(pad, ' ') << cells[c];
      else os << cells[c] << std::string(pad, ' ');
    }
    os << '\n';
  };

  std::size_t total = 0;
  for (auto w : widths) total += w;
  total += 2 * (widths.size() - 1);

  if (!title_.empty()) os << title_ << '\n';
  emit(header_);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

std::string Table::str() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

} // namespace dps
