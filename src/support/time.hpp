// Virtual-time types used throughout the simulator.
//
// Simulation time is a distinct clock from wall-clock time so the two can
// never be mixed accidentally.  Resolution is one nanosecond, stored in a
// 64-bit integer (plenty for multi-day simulations).
#pragma once

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>

namespace dps {

/// Tag clock for simulated time; never ticks on its own.
struct VirtualClock {
  using rep = std::int64_t;
  using period = std::nano;
  using duration = std::chrono::duration<rep, period>;
  using time_point = std::chrono::time_point<VirtualClock>;
  static constexpr bool is_steady = true;
};

/// A duration in simulated time.
using SimDuration = VirtualClock::duration;
/// An instant in simulated time (starts at zero when a simulation begins).
using SimTime = VirtualClock::time_point;

constexpr SimDuration nanoseconds(std::int64_t n) { return SimDuration{n}; }
constexpr SimDuration microseconds(std::int64_t n) { return SimDuration{n * 1000}; }
constexpr SimDuration milliseconds(std::int64_t n) { return SimDuration{n * 1000000}; }

/// Converts a floating-point second count into a SimDuration (rounded).
constexpr SimDuration seconds(double s) {
  return SimDuration{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
}

constexpr double toSeconds(SimDuration d) { return static_cast<double>(d.count()) * 1e-9; }
constexpr double toMillis(SimDuration d) { return static_cast<double>(d.count()) * 1e-6; }
constexpr double toMicros(SimDuration d) { return static_cast<double>(d.count()) * 1e-3; }

constexpr SimTime simEpoch() { return SimTime{SimDuration{0}}; }

/// Scales a duration by a dimensionless factor (e.g. slowdown of a platform).
constexpr SimDuration scale(SimDuration d, double factor) {
  return SimDuration{static_cast<std::int64_t>(static_cast<double>(d.count()) * factor + 0.5)};
}

/// Formats a duration with an adaptive unit, e.g. "62.31s", "4.20ms".
std::string formatDuration(SimDuration d);

inline std::ostream& operator<<(std::ostream& os, SimDuration d) { return os << formatDuration(d); }
inline std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << formatDuration(t.time_since_epoch());
}

} // namespace dps
