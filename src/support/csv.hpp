// Minimal CSV emission helper shared by the report writers (campaign /
// cluster-metrics CSV emitters).
#pragma once

#include <string>

namespace dps {

/// Renders one RFC-4180 CSV field: the value wrapped in double quotes with
/// any embedded quote doubled.  Always quoting keeps emitters simple and is
/// explicitly allowed by the RFC; commas, quotes and newlines inside the
/// value all survive a round trip.
inline std::string csvQuote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

} // namespace dps
