// Accounting operator new/delete.  Link `dps_memtrack` to activate.
//
// Uses malloc_usable_size-free bookkeeping: each allocation is padded with a
// 16-byte header holding its size, so deallocation can subtract exactly.
// Thread-safe via relaxed atomics; the peak is maintained with a CAS loop.
#include "support/memtrack.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::size_t> g_current{0};
std::atomic<std::size_t> g_peak{0};

constexpr std::size_t kHeader = 16; // keeps 16-byte alignment for the payload

void recordAlloc(std::size_t bytes) {
  const std::size_t now = g_current.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::size_t peak = g_peak.load(std::memory_order_relaxed);
  while (now > peak && !g_peak.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

void* allocate(std::size_t size) {
  void* raw = std::malloc(size + kHeader);
  if (!raw) throw std::bad_alloc();
  *static_cast<std::size_t*>(raw) = size;
  recordAlloc(size);
  return static_cast<char*>(raw) + kHeader;
}

void deallocate(void* p) noexcept {
  if (!p) return;
  void* raw = static_cast<char*>(p) - kHeader;
  g_current.fetch_sub(*static_cast<std::size_t*>(raw), std::memory_order_relaxed);
  std::free(raw);
}

} // namespace

namespace dps::memtrack {

std::size_t currentBytes() { return g_current.load(std::memory_order_relaxed); }
std::size_t peakBytes() { return g_peak.load(std::memory_order_relaxed); }
void resetPeak() { g_peak.store(g_current.load(std::memory_order_relaxed), std::memory_order_relaxed); }
bool active() { return true; }

} // namespace dps::memtrack

void* operator new(std::size_t size) { return allocate(size); }
void* operator new[](std::size_t size) { return allocate(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return allocate(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return allocate(size);
  } catch (...) {
    return nullptr;
  }
}
void operator delete(void* p) noexcept { deallocate(p); }
void operator delete[](void* p) noexcept { deallocate(p); }
void operator delete(void* p, std::size_t) noexcept { deallocate(p); }
void operator delete[](void* p, std::size_t) noexcept { deallocate(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { deallocate(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { deallocate(p); }
