#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace dps {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) * static_cast<double>(other.n_) / n;
  mean_ += delta * static_cast<double>(other.n_) / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

double percentile(std::vector<double> samples, double p) {
  DPS_CHECK(!samples.empty(), "percentile of empty sample set");
  DPS_CHECK(p >= 0.0 && p <= 100.0, "percentile out of range");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double relativeError(double predicted, double measured) {
  DPS_CHECK(measured != 0.0, "relative error against zero measurement");
  return (predicted - measured) / measured;
}

double fractionWithin(const std::vector<double>& errors, double bound) {
  if (errors.empty()) return 0.0;
  std::size_t within = 0;
  for (double e : errors)
    if (std::fabs(e) <= bound) ++within;
  return static_cast<double>(within) / static_cast<double>(errors.size());
}

} // namespace dps
