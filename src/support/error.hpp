// Error handling primitives shared by every DPS module.
//
// The framework throws exceptions for programmer errors (malformed flow
// graphs, violated invariants) and never for expected runtime conditions;
// hot paths use DPS_ASSERT which compiles out in release unless
// DPS_ENABLE_ASSERTS is defined.
#pragma once

#include <stdexcept>
#include <string>

namespace dps {

/// Base class for all errors raised by the DPS framework.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A flow graph failed structural validation (cycle, dangling port, ...).
class GraphError : public Error {
public:
  explicit GraphError(const std::string& what) : Error("graph: " + what) {}
};

/// An engine was configured inconsistently (bad deployment, missing model).
class ConfigError : public Error {
public:
  explicit ConfigError(const std::string& what) : Error("config: " + what) {}
};

/// An internal invariant was violated; indicates a bug in the framework.
class InternalError : public Error {
public:
  explicit InternalError(const std::string& what) : Error("internal: " + what) {}
};

[[noreturn]] void throwInternal(const char* file, int line, const std::string& msg);

} // namespace dps

/// Precondition / invariant check that is always on.  Use for conditions
/// whose failure means a framework bug; cost must be negligible.
#define DPS_CHECK(cond, msg)                                       \
  do {                                                             \
    if (!(cond)) ::dps::throwInternal(__FILE__, __LINE__, (msg)); \
  } while (0)
