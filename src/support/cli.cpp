#include "support/cli.hpp"

#include <cstdlib>
#include <sstream>

#include "support/error.hpp"

namespace dps {

Cli::Cli(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "prog";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::string body = arg.substr(2);
      auto eq = body.find('=');
      if (eq != std::string::npos) {
        values_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[body] = argv[++i];
      } else {
        values_[body] = "true";
      }
    } else {
      positionals_.push_back(std::move(arg));
    }
  }
}

std::optional<std::string> Cli::lookup(const std::string& key) {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  consumed_[key] = true;
  return it->second;
}

void Cli::describe(const std::string& key, const std::string& def, const std::string& help) {
  std::ostringstream os;
  os << "  --" << key;
  if (!def.empty()) os << " (default: " << def << ")";
  if (!help.empty()) os << "  " << help;
  descriptions_.push_back(os.str());
}

std::string Cli::str(const std::string& key, const std::string& def, const std::string& help) {
  describe(key, def, help);
  return lookup(key).value_or(def);
}

std::int64_t Cli::integer(const std::string& key, std::int64_t def, const std::string& help) {
  describe(key, std::to_string(def), help);
  auto v = lookup(key);
  if (!v) return def;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    throw ConfigError("option --" + key + " expects an integer, got '" + *v + "'");
  }
}

double Cli::real(const std::string& key, double def, const std::string& help) {
  describe(key, std::to_string(def), help);
  auto v = lookup(key);
  if (!v) return def;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw ConfigError("option --" + key + " expects a number, got '" + *v + "'");
  }
}

bool Cli::flag(const std::string& key, const std::string& help) {
  describe(key, "false", help);
  auto v = lookup(key);
  return v && *v != "false" && *v != "0";
}

std::string Cli::helpText() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [options]\n";
  for (const auto& d : descriptions_) os << d << '\n';
  return os.str();
}

void Cli::finish() const {
  for (const auto& [key, value] : values_) {
    (void)value;
    if (!consumed_.count(key)) throw ConfigError("unknown option --" + key);
  }
}

} // namespace dps
