#include "svc/profile_cache.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/fingerprint.hpp"
#include "support/thread_pool.hpp"

namespace dps::svc {

std::size_t CacheKeyHash::operator()(const CacheKey& k) const {
  Fingerprint fp;
  fp.add(k.engineFp).add(k.spec);
  return static_cast<std::size_t>(fp.value());
}

void ProfileCache::attachRegistry(obs::Registry* metrics) {
  std::unique_lock<std::mutex> lock(mu_);
  metrics_ = metrics;
  if (metrics == nullptr) {
    obsHits_ = obs::Counter{};
    obsJoined_ = obs::Counter{};
    obsMisses_ = obs::Counter{};
    obsEngineRuns_ = obs::Counter{};
    obsRunSec_ = obs::Histogram{};
    obsJoinWaitSec_ = obs::Histogram{};
    return;
  }
  obsHits_ = metrics->counter("svc.cache.hits");
  obsJoined_ = metrics->counter("svc.cache.joined");
  obsMisses_ = metrics->counter("svc.cache.misses");
  obsEngineRuns_ = metrics->counter("svc.cache.engine_runs");
  obsRunSec_ = metrics->histogram("svc.cache.run_sec", obs::secondsBounds());
  obsJoinWaitSec_ = metrics->histogram("svc.cache.join_wait_sec", obs::secondsBounds());
}

sched::EngineRunRecord ProfileCache::run(const sched::EngineRunSpec& spec) {
  const CacheKey key{spec.engineFingerprint(), spec.cacheSpec()};
  for (;;) {
    std::shared_ptr<Entry> entry;
    bool claimed = false;
    obs::Registry* metrics = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      metrics = metrics_;
      auto it = entries_.find(key);
      if (it == entries_.end()) {
        entry = std::make_shared<Entry>();
        entries_.emplace(key, entry);
        claimed = true;
        ++stats_.misses;
        obsMisses_.add();
      } else {
        entry = it->second;
        if (entry->state == Entry::State::Ready) {
          ++stats_.hits;
          obsHits_.add();
          return entry->record;
        }
        ++stats_.joined;
        obsJoined_.add();
      }
    }

    if (claimed) {
      // Simulate inline on this thread: every Pending entry always has a
      // live executing owner, so joiners are guaranteed progress even when
      // every pool worker is blocked here.
      try {
        const double runStartSec = clock_.elapsedSec();
        sched::EngineRunRecord rec = sched::executeEngineRun(spec, metrics);
        obsRunSec_.observe(clock_.elapsedSec() - runStartSec);
        std::unique_lock<std::mutex> lock(mu_);
        ++stats_.engineRuns;
        obsEngineRuns_.add();
        entry->record = std::move(rec);
        entry->state = Entry::State::Ready;
        lock.unlock();
        cv_.notify_all();
        return entry->record;
      } catch (...) {
        {
          std::unique_lock<std::mutex> lock(mu_);
          auto it = entries_.find(key);
          if (it != entries_.end() && it->second == entry) entries_.erase(it);
          entry->state = Entry::State::Failed;
        }
        cv_.notify_all();
        throw;
      }
    }

    // Joiner (already counted in `joined`): wait for the claimer.  On
    // failure the entry is gone from the map — loop back and re-claim so
    // the retry surfaces the real error.
    const double waitStartSec = clock_.elapsedSec();
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return entry->state != Entry::State::Pending; });
    obsJoinWaitSec_.observe(clock_.elapsedSec() - waitStartSec);
    if (entry->state == Entry::State::Ready) return entry->record;
  }
}

CacheStats ProfileCache::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  return stats_;
}

std::size_t ProfileCache::size() const {
  std::unique_lock<std::mutex> lock(mu_);
  return entries_.size();
}

void ProfileCache::clear() {
  std::unique_lock<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second->state == Entry::State::Ready) it = entries_.erase(it);
    else ++it;
  }
}

ProfileCache& instance() {
  static ProfileCache cache;
  return cache;
}

sched::EngineRunFn cachedRunner(ProfileCache& cache) {
  return [&cache](const sched::EngineRunSpec& spec) { return cache.run(spec); };
}

sched::EngineRunRecord acquireRun(const sched::EngineRunSpec& spec) {
  return instance().run(spec);
}

sched::EngineRunRecord acquireRun(const sched::EngineRunSpec& spec, ProfileCache& cache) {
  return cache.run(spec);
}

sched::ClassProfile acquireProfile(const sched::ProfileSettings& settings,
                                   const sched::JobClass& classSpec,
                                   const std::vector<std::int32_t>& allocs, unsigned jobs) {
  return acquireProfile(settings, classSpec, allocs, jobs, instance());
}

sched::ClassProfile acquireProfile(const sched::ProfileSettings& settings,
                                   const sched::JobClass& classSpec,
                                   const std::vector<std::int32_t>& allocs, unsigned jobs,
                                   ProfileCache& cache) {
  DPS_CHECK(!allocs.empty(), "acquireProfile needs at least one allocation");
  // Skeleton over the *requested* allocations (ascending, like the builder).
  sched::ClassProfile cp = sched::classProfileSkeleton(classSpec, allocs.back());
  cp.allocs = allocs;
  std::sort(cp.allocs.begin(), cp.allocs.end());
  cp.allocs.erase(std::unique(cp.allocs.begin(), cp.allocs.end()), cp.allocs.end());
  for (std::int32_t a : cp.allocs)
    DPS_CHECK(classSpec.feasibleAt(a),
              cp.name + " cannot run on " + std::to_string(a) + " nodes");
  cp.byAlloc.assign(cp.allocs.size(), {});
  parallelFor(cp.allocs.size(), jobs, [&](std::size_t i) {
    cp.byAlloc[i] = sched::phaseProfileFromRecord(
        cache.run(sched::profileRunSpec(classSpec, cp.allocs[i], settings)), cp.allocs[i]);
  });
  return cp;
}

sched::JobProfileTable buildProfileTable(const std::vector<sched::JobClass>& classes,
                                         std::int32_t clusterNodes,
                                         const sched::ProfileSettings& settings, unsigned jobs,
                                         const sched::ProfileBuildOptions& options) {
  return buildProfileTable(classes, clusterNodes, settings, jobs, instance(), options);
}

sched::JobProfileTable buildProfileTable(const std::vector<sched::JobClass>& classes,
                                         std::int32_t clusterNodes,
                                         const sched::ProfileSettings& settings, unsigned jobs,
                                         ProfileCache& cache,
                                         const sched::ProfileBuildOptions& options) {
  return sched::JobProfileTable::build(classes, clusterNodes, settings, jobs, cachedRunner(cache),
                                       options);
}

} // namespace dps::svc
