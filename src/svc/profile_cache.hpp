// svc::ProfileCache — the memoized profile service (paper §9 outlook,
// ROADMAP "keystone refactor").
//
// A cluster server answering what-if and scheduling queries for many
// applications keeps re-running identical PDEXEC simulations: every
// JobProfileTable build, every static replay, every repeated what-if query
// is a pure function of an EngineRunSpec.  This cache memoizes those runs:
//
//   * Keys are exact.  CacheKey = (engine fingerprint, canonical spec
//     string); the fingerprint hashes the SimConfig + both kernel cost
//     models (the same bytes ProfileSettings::fingerprint() hashes), the
//     string canonicalizes the app config/plan half — string equality makes
//     aliasing impossible even under hash collision.
//   * Hits are bit-identical to fresh builds: the cached value *is* the
//     EngineRunRecord a direct executeEngineRun would return, because the
//     claimer produced it with exactly that call.
//   * Single-flight: the first requester of a key claims its entry and
//     simulates inline on its own thread; concurrent requesters of the same
//     key block on the in-flight slot and receive the claimer's result.
//     Claimers never enqueue pool work, so a full ThreadPool cannot
//     deadlock the cache.  A failed claim removes the entry; one blocked
//     joiner re-claims and surfaces the real error.
//
// Everything profile-shaped flows through the acquisition API below —
// acquireProfile / buildProfileTable for class profiles, acquireRun for raw
// what-if runs, cachedRunner to inject memoization into sched:: fan-outs.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/clock.hpp"
#include "obs/registry.hpp"
#include "sched/engine_run.hpp"
#include "sched/profile.hpp"
#include "sched/workload.hpp"

namespace dps::svc {

struct CacheKey {
  std::uint64_t engineFp = 0; // SimConfig + kernel cost models
  std::string spec;           // canonical app/plan/slicing string
  bool operator==(const CacheKey& other) const = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const;
};

/// Monotonic counters; a consistent snapshot is returned by stats().
struct CacheStats {
  std::uint64_t hits = 0;       // served from a completed entry
  std::uint64_t joined = 0;     // blocked on an in-flight entry, no run
  std::uint64_t misses = 0;     // claimed an entry (an engine run started)
  std::uint64_t engineRuns = 0; // engine runs actually executed

  std::uint64_t lookups() const { return hits + joined + misses; }
  /// Fraction of lookups that did not execute an engine run.
  double hitRate() const {
    const std::uint64_t total = lookups();
    return total == 0 ? 0.0 : static_cast<double>(hits + joined) / static_cast<double>(total);
  }
};

class ProfileCache {
public:
  ProfileCache() = default;
  ProfileCache(const ProfileCache&) = delete;
  ProfileCache& operator=(const ProfileCache&) = delete;

  /// Memoized executeEngineRun: first caller per key simulates inline,
  /// concurrent callers block on the in-flight slot, later callers hit.
  sched::EngineRunRecord run(const sched::EngineRunSpec& spec);

  /// Attaches observability: svc.cache.{hits,joined,misses,engine_runs}
  /// counters mirror the CacheStats fields exactly, svc.cache.run_sec /
  /// svc.cache.join_wait_sec record wall-clock engine-run and single-flight
  /// wait latencies, and engine runs executed through the cache record
  /// their own engine.*/mall.* metrics into the same registry.  Call before
  /// the cache is shared across threads; null detaches.
  void attachRegistry(obs::Registry* metrics);

  CacheStats stats() const;
  std::size_t size() const;
  /// Drops every completed entry (in-flight entries drain first).
  void clear();

private:
  struct Entry {
    enum class State { Pending, Ready, Failed };
    State state = State::Pending;
    sched::EngineRunRecord record;
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<CacheKey, std::shared_ptr<Entry>, CacheKeyHash> entries_;
  CacheStats stats_;
  // Observability (null-safe no-ops until attachRegistry).  The counter
  // handles are bumped at the exact statements that bump stats_, so the
  // registry and CacheStats can never disagree.
  obs::Registry* metrics_ = nullptr;
  obs::Counter obsHits_;
  obs::Counter obsJoined_;
  obs::Counter obsMisses_;
  obs::Counter obsEngineRuns_;
  obs::Histogram obsRunSec_;
  obs::Histogram obsJoinWaitSec_;
  obs::WallClock clock_;
};

/// The process-wide cache every default acquisition call shares.
ProfileCache& instance();

/// An EngineRunFn bound to `cache` — inject into ReplaySettings::runner or
/// JobProfileTable::build so sched:: fan-outs memoize their runs.
sched::EngineRunFn cachedRunner(ProfileCache& cache);

/// Memoized single engine run (what-if queries, reference runs).
sched::EngineRunRecord acquireRun(const sched::EngineRunSpec& spec);
sched::EngineRunRecord acquireRun(const sched::EngineRunSpec& spec, ProfileCache& cache);

/// The acquisition API: one class profiled across `allocs`, every
/// (class, allocation) run served through the cache.  `jobs` bounds the
/// concurrent cold-path simulations (0 = hardware concurrency); results are
/// bit-identical at any jobs value and identical to a direct
/// JobProfileTable build of the same class.
sched::ClassProfile acquireProfile(const sched::ProfileSettings& settings,
                                   const sched::JobClass& classSpec,
                                   const std::vector<std::int32_t>& allocs, unsigned jobs = 1);
sched::ClassProfile acquireProfile(const sched::ProfileSettings& settings,
                                   const sched::JobClass& classSpec,
                                   const std::vector<std::int32_t>& allocs, unsigned jobs,
                                   ProfileCache& cache);

/// Full profile table through the cache (the consumers' replacement for
/// JobProfileTable::build).  `options` selects interpolated vs exhaustive
/// construction; with interpolation only the anchor allocations reach the
/// cache (and hence the engine) — synthesized entries cost no lookups.
sched::JobProfileTable buildProfileTable(const std::vector<sched::JobClass>& classes,
                                         std::int32_t clusterNodes,
                                         const sched::ProfileSettings& settings, unsigned jobs = 1,
                                         const sched::ProfileBuildOptions& options = {});
sched::JobProfileTable buildProfileTable(const std::vector<sched::JobClass>& classes,
                                         std::int32_t clusterNodes,
                                         const sched::ProfileSettings& settings, unsigned jobs,
                                         ProfileCache& cache,
                                         const sched::ProfileBuildOptions& options = {});

} // namespace dps::svc
