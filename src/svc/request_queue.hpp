// svc::RequestQueue — bounded admission in front of the profile cache.
//
// A profile service that accepts every query melts down exactly when it is
// most loaded: cold-path queries each cost a full engine simulation.  This
// queue bounds the number of admitted-but-unserved requests; a submit that
// would exceed the bound is rejected immediately with a retry hint derived
// from the observed service rate (EWMA of per-request service time times
// the backlog ahead of the retrier) — callers back off instead of piling
// on.
//
// Two draining modes:
//   * workers > 0 — the queue owns that many service threads, each popping
//     requests and resolving them through the cache;
//   * workers = 0 — manual mode: nothing drains until the owner calls
//     drainOne(), which serves exactly one request inline.  Tests use this
//     to fill the queue deterministically and exercise the rejection path.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/engine_run.hpp"
#include "svc/profile_cache.hpp"

namespace dps::svc {

struct Admission {
  enum class Decision : std::uint8_t { Accepted, Rejected };
  Decision decision = Decision::Accepted;
  /// Queue depth observed at the admission decision (the accepted request
  /// included when accepted).
  std::size_t depth = 0;
  /// Backpressure hint: estimated seconds until the queue has room again.
  /// 0 when accepted.
  double retryAfterSec = 0;

  bool accepted() const { return decision == Decision::Accepted; }
};

class RequestQueue {
public:
  struct Options {
    /// Maximum admitted-but-unserved requests; submits beyond it reject.
    std::size_t capacity = 64;
    /// Service threads; 0 = manual drainOne() mode.
    unsigned workers = 0;
    /// Smoothing factor of the service-time EWMA behind retryAfterSec.
    double ewmaAlpha = 0.2;
    /// Optional observability: svc.queue.{accepted,rejected,served}
    /// counters, an admission→completion wall-latency histogram, and the
    /// backlog-depth high-water gauge.  Null = disabled.
    obs::Registry* metrics = nullptr;
  };

  using Completion = std::function<void(const sched::EngineRunRecord&)>;

  RequestQueue(ProfileCache& cache, Options options);
  ~RequestQueue();
  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Admits or rejects the request.  Accepted requests are served in FIFO
  /// order; `done` (optional) runs on the serving thread with the result.
  Admission submit(sched::EngineRunSpec spec, Completion done = {});

  /// Manual mode: serves the oldest queued request inline; false when the
  /// queue is empty.
  bool drainOne();

  /// Blocks until every admitted request has been served.
  void drain();

  std::size_t depth() const;
  std::uint64_t served() const;
  std::uint64_t rejectedCount() const;
  /// Current EWMA of per-request service time (seconds); 0 before any
  /// request completes.
  double ewmaServiceSec() const;

private:
  struct Request {
    sched::EngineRunSpec spec;
    Completion done;
    double submitSec = 0; // queue clock at admission (latency histogram)
  };

  void serve(Request req);
  bool popFront(Request& out);
  void workerLoop();

  ProfileCache& cache_;
  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;      // wakes workers on submit/stop
  std::condition_variable drained_; // wakes drain() on completion
  std::deque<Request> queue_;
  std::size_t inService_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t rejected_ = 0;
  double ewmaServiceSec_ = 0;
  bool stopping_ = false;
  std::size_t depthHighWater_ = 0;
  // Null-safe metric handles (no-ops when Options::metrics is null).
  obs::WallClock clock_;
  obs::Counter obsAccepted_;
  obs::Counter obsRejected_;
  obs::Counter obsServed_;
  obs::Histogram obsLatencySec_;
  obs::Gauge obsDepthHighWater_;
  std::vector<std::thread> workers_;
};

} // namespace dps::svc
