#include "svc/request_queue.hpp"

#include <algorithm>
#include <chrono>

#include "support/error.hpp"

namespace dps::svc {

RequestQueue::RequestQueue(ProfileCache& cache, Options options)
    : cache_(cache), options_(options) {
  DPS_CHECK(options_.capacity >= 1, "request queue needs capacity >= 1");
  DPS_CHECK(options_.ewmaAlpha > 0 && options_.ewmaAlpha <= 1,
            "EWMA smoothing factor must be in (0, 1]");
  if (options_.metrics != nullptr) {
    obsAccepted_ = options_.metrics->counter("svc.queue.accepted");
    obsRejected_ = options_.metrics->counter("svc.queue.rejected");
    obsServed_ = options_.metrics->counter("svc.queue.served");
    obsLatencySec_ = options_.metrics->histogram("svc.queue.latency_sec", obs::secondsBounds());
    obsDepthHighWater_ = options_.metrics->gauge("svc.queue.depth_high_water");
  }
  workers_.reserve(options_.workers);
  for (unsigned i = 0; i < options_.workers; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

RequestQueue::~RequestQueue() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

Admission RequestQueue::submit(sched::EngineRunSpec spec, Completion done) {
  Admission adm;
  {
    std::unique_lock<std::mutex> lock(mu_);
    const std::size_t backlog = queue_.size() + inService_;
    if (backlog >= options_.capacity) {
      ++rejected_;
      obsRejected_.add();
      adm.decision = Admission::Decision::Rejected;
      adm.depth = backlog;
      // Expected seconds until the head of the backlog has cleared enough
      // for a retry to land: the backlog spread over the serving threads
      // (one lane in manual mode), paced at the observed service time.  A
      // cold queue has no observation yet; hint one service slot.
      const double lanes = std::max(1u, options_.workers);
      const double perRequest = ewmaServiceSec_ > 0 ? ewmaServiceSec_ : 1e-3;
      adm.retryAfterSec = perRequest * static_cast<double>(backlog) / lanes;
      return adm;
    }
    queue_.push_back(Request{std::move(spec), std::move(done), clock_.elapsedSec()});
    adm.depth = queue_.size() + inService_;
    obsAccepted_.add();
    if (adm.depth > depthHighWater_) {
      depthHighWater_ = adm.depth;
      obsDepthHighWater_.set(static_cast<double>(depthHighWater_));
    }
  }
  cv_.notify_one();
  return adm;
}

bool RequestQueue::popFront(Request& out) {
  std::unique_lock<std::mutex> lock(mu_);
  if (queue_.empty()) return false;
  out = std::move(queue_.front());
  queue_.pop_front();
  ++inService_;
  return true;
}

void RequestQueue::serve(Request req) {
  const auto start = std::chrono::steady_clock::now();
  const sched::EngineRunRecord rec = cache_.run(req.spec);
  const double sec = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (req.done) req.done(rec);
  obsServed_.add();
  obsLatencySec_.observe(clock_.elapsedSec() - req.submitSec);
  {
    std::unique_lock<std::mutex> lock(mu_);
    --inService_;
    ++served_;
    ewmaServiceSec_ = ewmaServiceSec_ == 0
                          ? sec
                          : options_.ewmaAlpha * sec + (1 - options_.ewmaAlpha) * ewmaServiceSec_;
  }
  drained_.notify_all();
}

bool RequestQueue::drainOne() {
  Request req;
  if (!popFront(req)) return false;
  serve(std::move(req));
  return true;
}

void RequestQueue::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [&] { return queue_.empty() && inService_ == 0; });
}

void RequestQueue::workerLoop() {
  for (;;) {
    Request req;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return; // stopping, backlog drained
      req = std::move(queue_.front());
      queue_.pop_front();
      ++inService_;
    }
    serve(std::move(req));
  }
}

std::size_t RequestQueue::depth() const {
  std::unique_lock<std::mutex> lock(mu_);
  return queue_.size() + inService_;
}

std::uint64_t RequestQueue::served() const {
  std::unique_lock<std::mutex> lock(mu_);
  return served_;
}

std::uint64_t RequestQueue::rejectedCount() const {
  std::unique_lock<std::mutex> lock(mu_);
  return rejected_;
}

double RequestQueue::ewmaServiceSec() const {
  std::unique_lock<std::mutex> lock(mu_);
  return ewmaServiceSec_;
}

} // namespace dps::svc
