// Event-driven star-topology network (paper §4).
//
// Every node owns a full-duplex link into an ideal crossbar switch that is
// never a bottleneck.  Concurrent transfers on a node's outgoing (resp.
// incoming) link each receive an equal share of the link bandwidth; a
// transfer drains at the minimum of its sender-side and receiver-side
// shares.  Unused capacity is *not* redistributed — exactly the equal-share
// assumption stated in the paper (progressive filling would be a different,
// stronger model; see tests/net for the behavioural contrast).
//
// A transfer costs  t = l + s / b_effective  where the latency phase does
// not occupy the link.  Hooks allow the high-fidelity reference executor to
// add per-message overheads and bandwidth derating (DESIGN.md §4).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "des/scheduler.hpp"
#include "support/time.hpp"

namespace dps::net {

using NodeIndex = std::int32_t;
using TransferId = std::uint64_t;

class StarNetwork {
public:
  struct Config {
    SimDuration latency = microseconds(100);
    double bytesPerSec = 12.5e6;
    SimDuration localDelivery = microseconds(1);
    /// Scales usable bandwidth (high-fidelity derating; 1.0 = nominal).
    double bandwidthEfficiency = 1.0;
    /// Ablation knob: when false, transfers never contend — every transfer
    /// receives full link bandwidth (the "network contention is inexistent"
    /// assumption of MPI-SIM/COMPASS the paper improves upon, §1).
    bool fairShare = true;
    /// Optional per-message extra latency (protocol/chunking overheads);
    /// receives the transfer size.  Null = pure l + s/b.
    std::function<SimDuration(std::size_t bytes)> extraLatency;
  };

  /// Notified when a node's count of active (draining) transfers changes;
  /// the CPU model uses this to charge communication overhead.
  using ActivityObserver =
      std::function<void(NodeIndex node, int activeIn, int activeOut)>;
  using DeliveryFn = std::function<void()>;

  StarNetwork(des::Scheduler& sched, Config cfg, std::size_t nodeCount);

  /// Starts a transfer of `bytes` from `src` to `dst`; `onDelivered` fires
  /// when the last byte arrives.  Same-node transfers bypass the network.
  TransferId send(NodeIndex src, NodeIndex dst, std::size_t bytes, DeliveryFn onDelivered);

  void setActivityObserver(ActivityObserver obs) { observer_ = std::move(obs); }

  int activeIncoming(NodeIndex node) const { return nodes_.at(node).activeIn; }
  int activeOutgoing(NodeIndex node) const { return nodes_.at(node).activeOut; }
  std::size_t nodeCount() const { return nodes_.size(); }

  /// Total payload bytes accepted for cross-node delivery (statistics).
  std::uint64_t bytesSent() const { return bytesSent_; }
  std::uint64_t transfersStarted() const { return transfersStarted_; }

  /// Analytic uncontended transfer time (used by tests and calibration).
  SimDuration uncontendedTime(std::size_t bytes) const;

private:
  struct Transfer {
    NodeIndex src;
    NodeIndex dst;
    double remainingBytes;
    double rate = 0.0; // bytes/sec currently granted
    SimTime lastUpdate;
    DeliveryFn onDelivered;
    des::EventId completion;
  };

  struct NodeState {
    int activeIn = 0;
    int activeOut = 0;
    std::vector<TransferId> incoming;
    std::vector<TransferId> outgoing;
  };

  void beginDraining(TransferId id);
  void finish(TransferId id);
  /// Re-derives the rate of every transfer touching `node` after a
  /// membership change; reschedules completion events as needed.
  void replanNode(NodeIndex node);
  void replanTransfer(TransferId id);
  double shareOut(NodeIndex node) const;
  double shareIn(NodeIndex node) const;
  void notifyActivity(NodeIndex node);

  des::Scheduler& sched_;
  Config cfg_;
  std::vector<NodeState> nodes_;
  std::unordered_map<TransferId, Transfer> transfers_;
  TransferId nextId_ = 1;
  ActivityObserver observer_;
  std::uint64_t bytesSent_ = 0;
  std::uint64_t transfersStarted_ = 0;
};

} // namespace dps::net
