#include "net/profile.hpp"

namespace dps::net {

PlatformProfile ultraSparc440() {
  PlatformProfile p;
  p.name = "ultrasparc440-fast-ethernet";
  p.latency = microseconds(120);
  p.bandwidthBytesPerSec = 11.5e6; // ~92% of 100 Mb/s achievable over TCP
  p.cpuPerOutgoingTransfer = 0.015;
  p.cpuPerIncomingTransfer = 0.035;
  p.computeScale = 1.0;
  p.perStepOverhead = microseconds(25);
  p.localDelivery = microseconds(5);
  return p;
}

PlatformProfile pentium4_2800() {
  PlatformProfile p;
  p.name = "pentium4-2800-fast-ethernet";
  p.latency = microseconds(90);
  p.bandwidthBytesPerSec = 11.5e6;
  p.cpuPerOutgoingTransfer = 0.006;
  p.cpuPerIncomingTransfer = 0.014;
  p.computeScale = 1.0 / 6.5; // Table 1: 193.0s / 29.7s direct-exec ratio
  p.perStepOverhead = microseconds(4);
  p.localDelivery = microseconds(1);
  return p;
}

PlatformProfile commodityGigabit() {
  PlatformProfile p;
  p.name = "commodity-gigabit";
  p.latency = microseconds(30);
  p.bandwidthBytesPerSec = 117e6;
  p.cpuPerOutgoingTransfer = 0.004;
  p.cpuPerIncomingTransfer = 0.009;
  p.computeScale = 1.0 / 40.0;
  p.perStepOverhead = microseconds(1);
  p.localDelivery = nanoseconds(300);
  return p;
}

} // namespace dps::net
