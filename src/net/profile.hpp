// Platform profiles: the "small set of platform-specific parameters" of
// paper §4 — network latency/bandwidth, CPU cost of communication, and a
// compute-speed scale used to port modeled kernel times between hosts.
//
// Parameters are characterized once per target machine, independently of the
// simulated application (paper §4 last paragraph).
#pragma once

#include <string>

#include "support/fingerprint.hpp"
#include "support/time.hpp"

namespace dps::net {

struct PlatformProfile {
  std::string name;

  /// One-way network latency `l` of the t = l + s/b model.
  SimDuration latency = microseconds(100);
  /// Per-link full-duplex bandwidth `b` in bytes/second.
  double bandwidthBytesPerSec = 12.5e6; // Fast Ethernet

  /// Fraction of one node's CPU consumed per active outgoing transfer.
  double cpuPerOutgoingTransfer = 0.01;
  /// Fraction per active incoming transfer; receiving induces more
  /// interrupts and memory copies, hence costlier (paper §4).
  double cpuPerIncomingTransfer = 0.02;

  /// Multiplier applied to modeled kernel durations: 1.0 = reference host,
  /// >1 = slower CPU.  Used to express one host's calibration on another.
  double computeScale = 1.0;

  /// Fixed framework cost charged per atomic step (dispatch, queue ops).
  SimDuration perStepOverhead = microseconds(2);

  /// Delivery delay for same-node communication (in-memory queue hop).
  SimDuration localDelivery = microseconds(1);
};

/// The paper's measurement platform: 440 MHz UltraSparc II workstations on
/// switched Fast Ethernet (full crossbar).  computeScale 1.0 means "modeled
/// kernel times are calibrated in this platform's units".
PlatformProfile ultraSparc440();

/// The paper's Table 1 portability host: Pentium 4 2.8 GHz (Windows).  The
/// ~6.5x compute-speed ratio matches Table 1's direct-execution row ratio
/// (193.0s vs 29.7s).
PlatformProfile pentium4_2800();

/// A modern-commodity profile (gigabit network, fast CPU) used by examples
/// and what-if studies.
PlatformProfile commodityGigabit();

/// Hashes every semantic field into `fp` (cache-key identity).
inline void fingerprintInto(Fingerprint& fp, const PlatformProfile& p) {
  fp.add(p.name)
      .add(p.latency)
      .add(p.bandwidthBytesPerSec)
      .add(p.cpuPerOutgoingTransfer)
      .add(p.cpuPerIncomingTransfer)
      .add(p.computeScale)
      .add(p.perStepOverhead)
      .add(p.localDelivery);
}

} // namespace dps::net
