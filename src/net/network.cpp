#include "net/network.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace dps::net {

StarNetwork::StarNetwork(des::Scheduler& sched, Config cfg, std::size_t nodeCount)
    : sched_(sched), cfg_(std::move(cfg)), nodes_(nodeCount) {
  DPS_CHECK(cfg_.bytesPerSec > 0, "bandwidth must be positive");
  DPS_CHECK(cfg_.bandwidthEfficiency > 0 && cfg_.bandwidthEfficiency <= 1.0,
            "bandwidth efficiency must be in (0, 1]");
}

SimDuration StarNetwork::uncontendedTime(std::size_t bytes) const {
  const double secs = static_cast<double>(bytes) /
                      (cfg_.bytesPerSec * cfg_.bandwidthEfficiency);
  return cfg_.latency + seconds(secs);
}

TransferId StarNetwork::send(NodeIndex src, NodeIndex dst, std::size_t bytes,
                             DeliveryFn onDelivered) {
  DPS_CHECK(src >= 0 && static_cast<std::size_t>(src) < nodes_.size(), "bad src node");
  DPS_CHECK(dst >= 0 && static_cast<std::size_t>(dst) < nodes_.size(), "bad dst node");
  const TransferId id = nextId_++;

  if (src == dst) {
    // Local hop: in-memory queue move, no link usage, no CPU comm overhead.
    sched_.scheduleAfter(cfg_.localDelivery, std::move(onDelivered));
    return id;
  }

  ++transfersStarted_;
  bytesSent_ += bytes;

  Transfer t;
  t.src = src;
  t.dst = dst;
  t.remainingBytes = static_cast<double>(bytes);
  t.lastUpdate = sched_.now();
  t.onDelivered = std::move(onDelivered);
  transfers_.emplace(id, std::move(t));

  SimDuration lead = cfg_.latency;
  if (cfg_.extraLatency) lead += cfg_.extraLatency(bytes);
  sched_.scheduleAfter(lead, [this, id] { beginDraining(id); });
  return id;
}

double StarNetwork::shareOut(NodeIndex node) const {
  const int n = cfg_.fairShare ? std::max(1, nodes_[node].activeOut) : 1;
  return cfg_.bytesPerSec * cfg_.bandwidthEfficiency / n;
}

double StarNetwork::shareIn(NodeIndex node) const {
  const int n = cfg_.fairShare ? std::max(1, nodes_[node].activeIn) : 1;
  return cfg_.bytesPerSec * cfg_.bandwidthEfficiency / n;
}

void StarNetwork::notifyActivity(NodeIndex node) {
  if (observer_) observer_(node, nodes_[node].activeIn, nodes_[node].activeOut);
}

void StarNetwork::beginDraining(TransferId id) {
  auto it = transfers_.find(id);
  DPS_CHECK(it != transfers_.end(), "unknown transfer begins draining");
  Transfer& t = it->second;
  t.lastUpdate = sched_.now();

  NodeState& s = nodes_[t.src];
  NodeState& d = nodes_[t.dst];
  s.outgoing.push_back(id);
  d.incoming.push_back(id);
  ++s.activeOut;
  ++d.activeIn;

  // Membership changed on both links: replan everyone they touch.
  replanNode(t.src);
  if (t.dst != t.src) replanNode(t.dst);
  notifyActivity(t.src);
  notifyActivity(t.dst);
}

void StarNetwork::replanNode(NodeIndex node) {
  // Copy: replanTransfer may fire zero-remaining completions synchronously
  // via the scheduler later, but never mutates membership right now.
  std::vector<TransferId> touched = nodes_[node].outgoing;
  touched.insert(touched.end(), nodes_[node].incoming.begin(), nodes_[node].incoming.end());
  for (TransferId id : touched) replanTransfer(id);
}

void StarNetwork::replanTransfer(TransferId id) {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  Transfer& t = it->second;

  // Settle progress under the old rate.
  const SimTime now = sched_.now();
  if (t.rate > 0.0) {
    const double elapsed = toSeconds(now - t.lastUpdate);
    t.remainingBytes = std::max(0.0, t.remainingBytes - t.rate * elapsed);
  }
  t.lastUpdate = now;

  // Equal-share allocation: min of the per-link fair shares.
  t.rate = std::min(shareOut(t.src), shareIn(t.dst));
  DPS_CHECK(t.rate > 0.0, "transfer granted zero rate");

  if (t.completion.pending()) sched_.cancel(t.completion);
  const SimDuration eta = seconds(t.remainingBytes / t.rate);
  t.completion = sched_.scheduleAfter(eta, [this, id] { finish(id); });
}

void StarNetwork::finish(TransferId id) {
  auto it = transfers_.find(id);
  DPS_CHECK(it != transfers_.end(), "unknown transfer finishes");
  const NodeIndex src = it->second.src;
  const NodeIndex dst = it->second.dst;
  DeliveryFn deliver = std::move(it->second.onDelivered);

  auto drop = [id](std::vector<TransferId>& v) {
    v.erase(std::remove(v.begin(), v.end(), id), v.end());
  };
  drop(nodes_[src].outgoing);
  drop(nodes_[dst].incoming);
  --nodes_[src].activeOut;
  --nodes_[dst].activeIn;
  transfers_.erase(it);

  replanNode(src);
  if (dst != src) replanNode(dst);
  notifyActivity(src);
  notifyActivity(dst);

  deliver();
}

} // namespace dps::net
