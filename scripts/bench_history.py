#!/usr/bin/env python3
"""Track key bench metrics across commits and flag regressions.

Reads the same JSON artifacts the dashboard consumes (CLUSTER_*.json,
SERVER_*.json, CALIB_*.json, OPTIMALITY_*.json, REPLAY_*.json), distills
each into a small
set of named metrics, appends one {"commit", "metrics"} record to a
committed JSONL history, and renders a trend table comparing the newest
record against the best value the history has ever seen.

Regression rule: a metric that is more than 10% worse than its best-ever
value is flagged.  Only *deterministic* metrics gate the exit code
(prediction errors, slowdowns, hit rates, anchor-run reductions — values
that are bit-stable for a given commit); wall-clock metrics (speedups,
latencies) vary with the host, so they warn unless --strict promotes
them.

Usage:
    bench_history.py --commit SHA [--history BENCH_HISTORY.jsonl]
                     [--out BENCH_TREND.md] [--strict] [--no-append]
                     [artifact.json ...]

With no artifact files, globs the standard patterns in the current
directory.  Missing artifacts/metrics are fine — the record carries
whatever exists.  Exits non-zero when a gated metric regressed.
"""

import argparse
import glob
import json
import sys

PATTERNS = ["CALIB_*.json", "CLUSTER_*.json", "OPTIMALITY_*.json",
            "REPLAY_*.json", "SERVER_*.json"]

# Metric catalogue: name -> (extractor, direction, gated).
#   extractor  takes the parsed artifact dict, returns a number or None
#   direction  "lower" = smaller is better, "higher" = bigger is better
#   gated      True  = deterministic for a commit; regressions fail the run
#              False = wall-clock-dependent; regressions warn (or fail
#                      under --strict)


def _dig(doc, *keys):
    for k in keys:
        if not isinstance(doc, dict) or k not in doc:
            return None
        doc = doc[k]
    return doc if isinstance(doc, (int, float)) else None


def _policy(doc, name, field):
    for p in doc.get("policies") or []:
        if isinstance(p, dict) and p.get("policy") == name:
            v = p.get(field)
            return v if isinstance(v, (int, float)) else None
    return None


def _policy_attr(doc, name, field):
    """Reads the per-policy wait-attribution block dps_cluster emits."""
    for p in doc.get("policies") or []:
        if isinstance(p, dict) and p.get("policy") == name:
            attr = p.get("attribution")
            if isinstance(attr, dict):
                v = attr.get(field)
                return v if isinstance(v, (int, float)) else None
    return None


def _optimality(doc, field):
    opt = doc.get("optimality")
    if not isinstance(opt, dict):
        return None
    v = opt.get(field)
    return v if isinstance(v, (int, float)) else None


def _optimality_policy(doc, name, field):
    opt = doc.get("optimality")
    if not isinstance(opt, dict):
        return None
    for p in opt.get("policies") or []:
        if isinstance(p, dict) and p.get("policy") == name:
            v = p.get(field)
            return v if isinstance(v, (int, float)) else None
    return None


METRICS = {
    # dps_cluster --smoke report (deterministic seeded workload)
    "cluster.equipartition_mean_slowdown":
        (lambda d: _policy(d, "equipartition", "mean_slowdown"), "lower", True),
    "cluster.equipartition_utilization":
        (lambda d: _policy(d, "equipartition", "utilization"), "higher", True),
    # wait attribution (deterministic): the share of queue wait behind the
    # dominant reason — a concentration shift means scheduling behaviour
    # changed, which should be a reviewed decision, not drift
    "cluster.equipartition_dominant_wait_share":
        (lambda d: _policy_attr(d, "equipartition", "dominant_share"), "lower", True),
    "cluster.fcfs_total_wait_sec":
        (lambda d: _policy_attr(d, "fcfs-rigid", "total_wait_sec"), "lower", True),
    # in-engine replay validation (deterministic prediction error)
    "replay.mean_abs_makespan_error":
        (lambda d: _dig(d, "replay", "makespan_error", "mean_abs"), "lower", True),
    # cluster_scale bench
    "scale.speedup_vs_reference":
        (lambda d: _dig(d, "baseline", "speedup"), "higher", False),
    "scale.interp_run_reduction":
        (lambda d: _dig(d, "interpolation", "run_reduction"), "higher", True),
    "scale.interp_mean_abs_error":
        (lambda d: _dig(d, "interpolation", "mean_abs_makespan_error"), "lower", True),
    # profile-service load bench
    "server.cache_hit_rate":
        (lambda d: _dig(d, "load", "cache", "hit_rate"), "higher", True),
    "server.steady_speedup":
        (lambda d: _dig(d, "load", "speedup"), "higher", False),
    "server.steady_p99_ms":
        (lambda d: _dig(d, "load", "steady", "p99_ms"), "lower", False),
    # calibration search (seeded, deterministic score)
    "calibrate.best_score":
        (lambda d: _dig(d, "best", "score"), "lower", True),
    # policy-optimality oracle (deterministic: seeded workloads + exhaustive
    # search): how close the shipped policies get to the proven optimum.
    # A scheduler change that walks a policy away from optimal fails here.
    "optimality.best_policy_makespan_pct":
        (lambda d: _optimality(d, "best_policy_makespan_pct"), "higher", True),
    "optimality.best_policy_slowdown_pct":
        (lambda d: _optimality(d, "best_policy_slowdown_pct"), "higher", True),
    "optimality.fcfs_rigid_makespan_pct":
        (lambda d: _optimality_policy(d, "fcfs-rigid", "makespan_pct_of_optimal"),
         "higher", True),
    "optimality.efficiency_shrink_makespan_pct":
        (lambda d: _optimality_policy(d, "efficiency-shrink",
                                      "makespan_pct_of_optimal"),
         "higher", True),
}

WORSE_THAN_BEST = 0.10  # >10% worse than best-ever flags the metric


def extract(paths):
    """One flat {metric: value} dict over every readable artifact."""
    metrics = {}
    for path in paths:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"skipping {path}: {e}", file=sys.stderr)
            continue
        for name, (extractor, _, _) in METRICS.items():
            v = extractor(doc)
            if v is not None and name not in metrics:
                metrics[name] = v
    return metrics


def load_history(path):
    records = []
    try:
        with open(path) as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as e:
                    print(f"{path}:{lineno}: bad record: {e}", file=sys.stderr)
                    continue
                if isinstance(rec, dict) and isinstance(rec.get("metrics"), dict):
                    records.append(rec)
    except OSError:
        pass  # first run: no history yet
    return records


def is_worse(value, best, direction):
    """More than WORSE_THAN_BEST relatively worse than the best value."""
    if best == 0:
        return False
    if direction == "lower":
        return value > best * (1 + WORSE_THAN_BEST)
    return value < best * (1 - WORSE_THAN_BEST)


def fmt(v):
    if v is None:
        return "-"
    if isinstance(v, float):
        if v != 0 and (abs(v) >= 1e5 or abs(v) < 1e-3):
            return f"{v:.3e}"
        return f"{v:.4f}".rstrip("0").rstrip(".")
    return str(v)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*",
                    help="artifact JSON files (default: glob standard patterns)")
    ap.add_argument("--commit", required=True, help="commit id for the new record")
    ap.add_argument("--history", default="BENCH_HISTORY.jsonl",
                    help="JSONL history path (default: %(default)s)")
    ap.add_argument("--out", default="BENCH_TREND.md",
                    help="markdown trend output (default: %(default)s)")
    ap.add_argument("--strict", action="store_true",
                    help="wall-clock metrics gate the exit code too")
    ap.add_argument("--no-append", action="store_true",
                    help="compare against history without writing the new record")
    args = ap.parse_args()

    paths = args.files or sorted(p for pat in PATTERNS for p in glob.glob(pat))
    current = extract(paths)
    if not current:
        print("no metrics extracted; nothing to record", file=sys.stderr)
        return 0

    history = load_history(args.history)
    record = {"commit": args.commit, "metrics": current}
    if not args.no_append:
        with open(args.history, "a") as f:
            f.write(json.dumps(record, sort_keys=True) + "\n")
    history.append(record)

    prev = history[-2]["metrics"] if len(history) >= 2 else {}
    lines = [f"# Bench trend ({len(history)} records)", "",
             "| metric | best | previous | latest | vs best | status |",
             "|---|---|---|---|---|---|"]
    gated_failures = []
    warnings = []
    for name, (_, direction, gated) in METRICS.items():
        value = current.get(name)
        if value is None:
            continue
        seen = [r["metrics"][name] for r in history
                if isinstance(r["metrics"].get(name), (int, float))]
        best = min(seen) if direction == "lower" else max(seen)
        delta = (value / best - 1) * 100 if best else 0.0
        worse = is_worse(value, best, direction)
        if worse and (gated or args.strict):
            status = "**FAIL**"
            gated_failures.append(name)
        elif worse:
            status = "warn"
            warnings.append(name)
        else:
            status = "ok"
        lines.append(f"| {name} | {fmt(best)} | {fmt(prev.get(name))} "
                     f"| {fmt(value)} | {delta:+.1f}% | {status} |")
    lines.append("")
    lines.append(f"Flag rule: >{WORSE_THAN_BEST:.0%} worse than best-ever; "
                 "wall-clock metrics warn only"
                 + (" (promoted to gates by --strict)." if not args.strict else "."))
    text = "\n".join(lines) + "\n"
    with open(args.out, "w") as f:
        f.write(text)
    print(text)
    print(f"wrote {args.out}; history at {args.history} "
          f"({'appended' if not args.no_append else 'not appended'})")

    for name in warnings:
        print(f"warning: {name} regressed >10% vs best (wall-clock; not gating)",
              file=sys.stderr)
    if gated_failures:
        print("regression vs best-ever in: " + ", ".join(gated_failures),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
