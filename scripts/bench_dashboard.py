#!/usr/bin/env python3
"""Aggregate the bench/tool JSON artifacts into one markdown dashboard.

Every bench and smoke step emits a JSON artifact (BENCH_*.json,
CALIB_*.json, CLUSTER_*.json, EXPLORE_*.json, OPTIMALITY_*.json,
REPLAY_*.json, SERVER_*.json).  This script
renders them into a single human-readable summary — check verdicts first,
then the headline numbers of each artifact kind — so a PR's bench
trajectory is one artifact download away instead of five JSON files.

Usage:
    bench_dashboard.py [--out SUMMARY.md] [--strict] [file.json ...]

With no files, globs the default artifact patterns in the current
directory.  Unknown or partially-shaped files degrade to their check
verdicts (or are listed as unrecognized) instead of failing the run;
missing or unreadable files are a warned skip (stderr, no section) so a
fresh checkout renders cleanly.  Exits non-zero when an artifact records
a failed [CHECK] — and, under --strict (CI), when any referenced
artifact was missing or unreadable.
"""

import argparse
import glob
import json
import os
import sys

PATTERNS = ["BENCH_*.json", "CALIB_*.json", "CLUSTER_*.json",
            "EXPLORE_*.json", "OPTIMALITY_*.json",
            "REPLAY_*.json", "SERVER_*.json"]


def fmt(v, digits=3):
    """Compact numeric formatting for tables."""
    if isinstance(v, bool):
        return "yes" if v else "no"
    if isinstance(v, int):
        return f"{v:,}"
    if isinstance(v, float):
        if v != 0 and (abs(v) >= 1e5 or abs(v) < 1e-3):
            return f"{v:.2e}"
        return f"{v:.{digits}f}".rstrip("0").rstrip(".")
    return str(v)


def table(headers, rows):
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    out += ["| " + " | ".join(str(c) for c in row) + " |" for row in rows]
    return out


def checks_of(doc):
    if not isinstance(doc, dict):
        return []
    return [c for c in doc.get("checks", [])
            if isinstance(c, dict) and "claim" in c]


def section_checks(doc):
    checks = checks_of(doc)
    if not checks:
        return []
    failed = [c for c in checks if not c.get("pass")]
    lines = [f"**Checks: {len(checks) - len(failed)}/{len(checks)} passed**"]
    for c in failed:
        lines.append(f"- :x: FAILED: {c['claim']}")
    return lines


def section_campaign(doc):
    camp = doc.get("campaign") or {}
    agg = camp.get("aggregate") or {}
    obs = camp.get("observations")
    lines = []
    if isinstance(obs, list):
        lines.append(f"{len(obs)} observations")
    if isinstance(agg, dict) and agg:
        rows = [(k, fmt(v)) for k, v in sorted(agg.items())
                if isinstance(v, (int, float, bool))]
        if rows:
            lines += table(["aggregate", "value"], rows)
    return lines


def section_calibration(doc):
    warm = (doc.get("warm_start") or {}).get("score")
    best = (doc.get("best") or {}).get("score")
    lines = [f"{fmt(doc['evaluations'])} evaluations" if "evaluations" in doc else ""]
    if warm is not None and best is not None:
        gain = (1 - best / warm) * 100 if warm else 0.0
        lines.append(f"warm start {fmt(warm)} -> best {fmt(best)} "
                     f"({fmt(gain, 1)}% better)")
    return [ln for ln in lines if ln]


def section_cluster_scale(doc):
    lines = []
    grid = doc.get("grid") or []
    if grid:
        rows = [(fmt(g.get("job_count")), fmt(g.get("nodes")),
                 fmt(g.get("wall_sec"), 2), fmt(g.get("events")),
                 fmt(g.get("events_per_sec"), 0), fmt(g.get("jobs_per_sec"), 0),
                 fmt(g.get("utilization"), 2)) for g in grid]
        lines += table(["jobs", "nodes", "wall [s]", "events", "events/s",
                        "jobs/s", "util"], rows)
    base = doc.get("baseline") or {}
    if base:
        lines.append("")
        lines.append(
            f"Reference-loop comparison at {fmt(base.get('comparison_job_count'))} jobs / "
            f"{fmt(base.get('comparison_nodes'))} nodes: "
            f"**{fmt(base.get('speedup'), 1)}x** "
            f"({fmt(base.get('reference_wall_sec'), 2)}s -> "
            f"{fmt(base.get('optimized_wall_sec'), 2)}s), "
            f"bit-identical: {fmt(base.get('identical'))}")
    interp = doc.get("interpolation") or {}
    if interp:
        lines.append(
            f"Interpolated profiles: {fmt(interp.get('engine_runs'))} engine runs for "
            f"{fmt(interp.get('alloc_points'))} allocation points "
            f"(**{fmt(interp.get('run_reduction'), 1)}x** fewer), replay-validated "
            f"|makespan error| mean {fmt(100 * interp.get('mean_abs_makespan_error', 0), 2)}% / "
            f"max {fmt(100 * interp.get('max_abs_makespan_error', 0), 2)}% "
            f"over {fmt(interp.get('replayed'))} jobs")
    return lines


def section_cluster_tool(doc):
    lines = []
    pols = doc.get("policies") or []
    rows = [(p.get("policy"), fmt(p.get("makespan_sec"), 1),
             fmt(p.get("utilization"), 2), fmt(p.get("mean_slowdown"), 2),
             fmt(p.get("mean_wait_sec"), 1), fmt(p.get("reallocations")))
            for p in pols if isinstance(p, dict)]
    if rows:
        lines += table(["policy", "makespan [s]", "util", "mean slowdown",
                        "mean wait [s]", "reallocs"], rows)
    rep = doc.get("replay") or {}
    if rep:
        mk = rep.get("makespan_error") or {}
        by = rep.get("bytes_error") or {}
        lines.append("")
        lines.append(
            f"Replay ({rep.get('policy')}): {fmt(rep.get('replayed'))} replayed, "
            f"{fmt(rep.get('unsupported'))} unsupported; |makespan error| "
            f"mean {fmt(100 * mk.get('mean_abs', 0), 2)}% / "
            f"max {fmt(100 * mk.get('max_abs', 0), 2)}%; |bytes error| "
            f"mean {fmt(100 * by.get('mean_abs', 0), 2)}%")
    return lines


def section_server(doc):
    load = doc.get("load") or {}
    if not load:
        return []
    lines = []
    rows = []
    for phase in ("cold", "steady"):
        p = load.get(phase) or {}
        if p:
            rows.append((phase, fmt(p.get("qps"), 0), fmt(p.get("p50_ms"), 2),
                         fmt(p.get("p99_ms"), 2)))
    if rows:
        lines += table(["phase", "qps", "p50 [ms]", "p99 [ms]"], rows)
    cache = load.get("cache") or {}
    lines.append("")
    lines.append(f"steady/cold speedup **{fmt(load.get('speedup'), 1)}x**, "
                 f"cache hit rate {fmt(cache.get('hit_rate'), 3)}, "
                 f"{fmt(cache.get('engine_runs'))} engine runs")
    return lines


def section_optimality(doc):
    """Shared by the policy_optimality bench and dps_explore --optimality."""
    opt = doc.get("optimality") or {}
    lines = []
    pols = opt.get("policies") or []
    rows = [(p.get("policy"), fmt(p.get("backfill", False)),
             fmt(p.get("makespan_pct_of_optimal"), 1),
             fmt(p.get("slowdown_pct_of_optimal"), 1))
            for p in pols if isinstance(p, dict)]
    if rows:
        lines += table(["policy", "backfill", "makespan % of opt",
                        "slowdown % of opt"], rows)
    best_mk = opt.get("best_policy_makespan_pct")
    best_sl = opt.get("best_policy_slowdown_pct")
    if best_mk is not None:
        lines.append("")
        lines.append(f"best policy: **{fmt(best_mk, 1)}%** of optimal makespan, "
                     f"**{fmt(best_sl, 1)}%** of optimal mean slowdown")
    mk = opt.get("makespan_search") or {}
    if mk:
        lines.append(f"oracle: {fmt(mk.get('states_explored'))} states, "
                     f"{fmt(mk.get('branches_pruned'))} pruned, "
                     f"complete: {fmt(mk.get('complete'))}")
    return lines


def section_verify(doc):
    ver = doc.get("verify") or {}
    if not ver:
        return []
    lines = []
    space = (ver.get("space") or {}).get("report") or {}
    if space:
        lines.append(f"space walk: {fmt(space.get('checks_total'))} invariant checks, "
                     f"{fmt(space.get('violations'))} violations, "
                     f"pass: {fmt(space.get('pass'))}")
    pols = ver.get("policies") or []
    if pols:
        failed = [p for p in pols
                  if not ((p.get("report") or {}).get("pass"))]
        lines.append(f"policy audits: {len(pols) - len(failed)}/{len(pols)} "
                     "policy x backfill configurations pass")
        for p in failed:
            lines.append(f"- :x: {p.get('policy')} "
                         f"(backfill: {fmt(p.get('backfill', False))})")
    mut = ver.get("mutant") or {}
    if mut:
        lines.append(f"head-hold mutant: {fmt(mut.get('violations'))} violations, "
                     f"starvation caught: {fmt(mut.get('starvation_violation'))}, "
                     f"replay confirmed: {fmt(mut.get('replay_confirmed'))}")
    return lines


def render(path, doc):
    name = path.split("/")[-1]
    lines = [f"## {name}", ""]
    if not isinstance(doc, dict):
        return lines + ["(unrecognized shape; no summary extracted)", ""]
    lines += section_checks(doc)
    body = []
    if "optimality" in doc or "verify" in doc:
        body = section_optimality(doc)
        verify = section_verify(doc)
        if body and verify:
            body.append("")
        body += verify
    elif "grid" in doc or "baseline" in doc or "interpolation" in doc:
        body = section_cluster_scale(doc)
    elif "policies" in doc:
        body = section_cluster_tool(doc)
    elif "load" in doc:
        body = section_server(doc)
    elif "campaign" in doc:
        body = section_campaign(doc)
    elif "best" in doc and "warm_start" in doc:
        body = section_calibration(doc)
    if body and lines[-1] != "":
        lines.append("")
    lines += body
    if len(lines) == 2:
        lines.append("(unrecognized shape; no summary extracted)")
    lines.append("")
    return lines


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*", help="artifact JSON files "
                    "(default: glob the standard patterns in cwd)")
    ap.add_argument("--out", default="BENCH_DASHBOARD.md",
                    help="markdown output path (default: %(default)s)")
    ap.add_argument("--strict", action="store_true",
                    help="missing or unreadable artifacts fail the run (CI)")
    args = ap.parse_args()

    paths = args.files or sorted(p for pat in PATTERNS for p in glob.glob(pat))
    out = ["# Bench dashboard", ""]
    total = passed = 0
    parsed = skipped = 0
    for path in paths:
        if not os.path.exists(path):
            print(f"warning: missing artifact {path}: skipped", file=sys.stderr)
            skipped += 1
            continue
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"warning: unreadable artifact {path}: {e}: skipped",
                  file=sys.stderr)
            skipped += 1
            continue
        parsed += 1
        checks = checks_of(doc)
        total += len(checks)
        passed += sum(1 for c in checks if c.get("pass"))
        out += render(path, doc)

    out.insert(2, f"{parsed} artifacts; {passed}/{total} checks passed" +
               (" :warning:" if passed < total else "") +
               (f"; {skipped} skipped" if skipped else "") + "\n")
    text = "\n".join(out)
    with open(args.out, "w") as f:
        f.write(text)
    print(f"wrote {args.out} ({parsed} artifacts, {passed}/{total} checks"
          + (f", {skipped} skipped" if skipped else "") + ")")
    if passed < total:
        print("failed checks present", file=sys.stderr)
        return 1
    if args.strict and skipped:
        print(f"--strict: {skipped} artifacts missing/unreadable", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
