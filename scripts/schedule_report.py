#!/usr/bin/env python3
"""Render a dps_cluster flight record into a markdown schedule report.

Reads the JSON file `dps_cluster --record PATH` wrote (one flight record
per policy: decision audit log, per-job wait attribution, simulated-time
timeseries) and renders:

  * a wait-reason table per policy — total seconds and share of queue
    wait attributed to each reason, plus migration stalls,
  * the top-N most-delayed jobs across policies with their per-reason
    breakdown and dominant cause,
  * timeseries sparklines (utilization and queue depth over simulated
    time) per policy.

Usage:
    schedule_report.py RECORD.json [--out SCHEDULE_REPORT.md] [--top 10]

Prints to stdout when --out is omitted.  Exits non-zero on a malformed
record (missing per-job buckets, buckets not summing to the recorded
total — the invariant both cluster loops guarantee exactly).
"""

import argparse
import json
import sys

REASONS = ["head_of_line", "insufficient_free", "policy_held", "depth_cutoff", "shadow_time"]
LABELS = {
    "head_of_line": "head-of-line blocked",
    "insufficient_free": "insufficient free nodes",
    "policy_held": "held by policy",
    "depth_cutoff": "backfill-depth cutoff",
    "shadow_time": "shadow-time violation",
}
SPARKS = "▁▂▃▄▅▆▇█"


def sparkline(values, width=60):
    """Downsamples to `width` buckets and maps each to a block glyph."""
    if not values:
        return "(no samples)"
    if len(values) > width:
        step = len(values) / width
        values = [values[int(k * step)] for k in range(width)]
    lo, hi = min(values), max(values)
    if hi <= lo:
        return SPARKS[0] * len(values)
    return "".join(SPARKS[int((v - lo) / (hi - lo) * (len(SPARKS) - 1))] for v in values)


def check_job(policy, job):
    """The exact-sum invariant: buckets telescope to the recorded total."""
    wait = job["wait_ns"]
    total = sum(wait[r] for r in REASONS)
    if total != wait["total"]:
        raise SystemExit(
            f"invariant violation: {policy} job {job['id']} buckets sum to "
            f"{total} ns but total is {wait['total']} ns"
        )


def reason_table(policies):
    lines = [
        "| policy | " + " | ".join(LABELS[r] for r in REASONS)
        + " | total wait | migration stalls | dominant |",
        "|---" * (len(REASONS) + 4) + "|",
    ]
    for pol in policies:
        sums = {r: 0 for r in REASONS}
        total = 0
        stalls = 0
        for job in pol["jobs"]:
            check_job(pol["policy"], job)
            for r in REASONS:
                sums[r] += job["wait_ns"][r]
            total += job["wait_ns"]["total"]
            stalls += job["migration_delay_ns"]
        cells = []
        for r in REASONS:
            sec = sums[r] * 1e-9
            share = sums[r] / total * 100 if total else 0
            cells.append(f"{sec:.2f}s ({share:.0f}%)")
        dominant = max(REASONS, key=lambda r: sums[r]) if total else None
        lines.append(
            f"| {pol['policy']} | " + " | ".join(cells)
            + f" | {total * 1e-9:.2f}s | {stalls * 1e-9:.2f}s | "
            + (LABELS[dominant] if dominant else "none") + " |"
        )
    return lines


def delayed_jobs(policies, top):
    rows = []
    for pol in policies:
        for job in pol["jobs"]:
            rows.append((job["wait_ns"]["total"], pol["policy"], job))
    rows.sort(key=lambda r: (-r[0], r[1], r[2]["id"]))
    lines = [
        "| policy | job | class | wait | dominant reason | share | breakdown |",
        "|---|---|---|---|---|---|---|",
    ]
    for total, policy, job in rows[:top]:
        if total <= 0:
            continue
        parts = [
            f"{LABELS[r]} {job['wait_ns'][r] * 1e-9:.2f}s"
            for r in REASONS
            if job["wait_ns"][r] > 0
        ]
        lines.append(
            f"| {policy} | {job['id']} | {job['class']} | {total * 1e-9:.2f}s "
            f"| {LABELS[job['dominant']]} | {job['dominant_share'] * 100:.0f}% "
            f"| {'; '.join(parts)} |"
        )
    return lines


def timeseries_section(policies):
    lines = []
    for pol in policies:
        ts = pol["timeseries"]
        if not ts["points"]:
            lines.append(f"- **{pol['policy']}**: no timeseries (cadence 0)")
            continue
        span = f"0s .. {ts['t_sec'][-1]:.0f}s" if ts["t_sec"] else "-"
        lines.append(f"**{pol['policy']}** ({ts['points']} samples, {span}, "
                     f"cadence {ts['cadence_sec']:.0f}s)")
        lines.append("")
        lines.append(f"    utilization  {sparkline(ts['utilization'])}")
        lines.append(f"    queue depth  {sparkline(ts['queue_depth'])}")
        lines.append(f"    free nodes   {sparkline(ts['free_nodes'])}")
        lines.append("")
    return lines


def render(doc, top):
    policies = doc["policies"]
    out = [
        "# Schedule report",
        "",
        f"{doc['nodes']} nodes, seed {doc['seed']}, primary policy "
        f"`{doc['primary']}`, {len(policies)} policies, "
        f"{sum(len(p['jobs']) for p in policies)} job rows.",
        "",
        "## Wait-reason attribution per policy",
        "",
        *reason_table(policies),
        "",
        f"## Top-{top} most-delayed jobs",
        "",
        *delayed_jobs(policies, top),
        "",
        "## Cluster timeseries (simulated time)",
        "",
        *timeseries_section(policies),
    ]
    return "\n".join(out) + "\n"


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("record", help="JSON file written by dps_cluster --record")
    ap.add_argument("--out", help="write the markdown report here (default: stdout)")
    ap.add_argument("--top", type=int, default=10, help="most-delayed jobs to list")
    args = ap.parse_args()

    try:
        with open(args.record) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"cannot read record {args.record}: {e}", file=sys.stderr)
        return 2

    report = render(doc, args.top)
    if args.out:
        with open(args.out, "w") as f:
            f.write(report)
        print(f"wrote {args.out}")
    else:
        print(report, end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
