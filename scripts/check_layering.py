#!/usr/bin/env python3
"""Static layering check: includes must follow the declared layer graph.

The architecture is the layer ordering in src/CMakeLists.txt: support at
the base, the DES kernel/serialization on it, the simulation core
composing them, and the application layers (lu, jacobi, malleable, sched,
svc, experiments) on top.  Each layer declares what it may use via
`dps_add_layer(<name> DEPS <layers...>)`, but the compiler only enforces
that for *linked* symbols — a header-only upward include (say sched/
reaching into svc/) compiles fine and silently inverts the architecture.

This script closes that hole:

1. parses every src/*/CMakeLists.txt `dps_add_layer` declaration into a
   dependency graph and rejects cycles (the graph must topologically
   sort, i.e. the DEPS edges must agree with *some* linear layer order);
2. scans every src/<layer>/*.{hpp,cpp} for quoted layer-qualified
   includes (`#include "other/file.hpp"`) and fails when the included
   layer is not the including layer itself and not in the transitive
   closure of its declared DEPS — catching upward includes
   (malleable -> sched -> svc -> experiments all point strictly down)
   and undeclared sideways ones alike.

Usage:
    check_layering.py [--root REPO_ROOT] [--verbose]

Exits non-zero with one line per violation, so CI can run it next to the
format check without a build tree.
"""

import argparse
import os
import re
import sys

ADD_LAYER_RE = re.compile(
    r"dps_add_layer\(\s*(?P<name>[a-z_]+)(?P<body>[^)]*)\)", re.S)
DEPS_RE = re.compile(r"\bDEPS\s+(?P<deps>[a-z_\s]+?)(?:\bSOURCES\b|\bEXCLUDE\b|$)")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"(?P<path>[^"]+)"')


def parse_layers(src_dir):
    """{layer: set(declared DEPS)} from every src/*/CMakeLists.txt."""
    layers = {}
    for entry in sorted(os.listdir(src_dir)):
        cml = os.path.join(src_dir, entry, "CMakeLists.txt")
        if not os.path.isfile(cml):
            continue
        with open(cml) as f:
            text = f.read()
        for m in ADD_LAYER_RE.finditer(text):
            deps = set()
            dm = DEPS_RE.search(m.group("body"))
            if dm:
                deps = set(dm.group("deps").split())
            layers[m.group("name")] = deps
    return layers


def transitive_closure(layers):
    """{layer: every layer reachable through declared DEPS}."""
    closure = {}

    def reach(name, stack):
        if name in closure:
            return closure[name]
        if name in stack:
            order = " -> ".join(list(stack) + [name])
            raise ValueError(f"dependency cycle in dps_add_layer DEPS: {order}")
        out = set()
        for dep in layers.get(name, ()):
            out.add(dep)
            out |= reach(dep, stack + [name])
        closure[name] = out
        return out

    for name in layers:
        reach(name, [])
    return closure


def check_includes(src_dir, layers, closure, verbose):
    violations = []
    scanned = 0
    for layer in sorted(layers):
        layer_dir = os.path.join(src_dir, layer)
        if not os.path.isdir(layer_dir):
            continue
        allowed = {layer} | closure[layer]
        for fname in sorted(os.listdir(layer_dir)):
            if not fname.endswith((".hpp", ".cpp")):
                continue
            path = os.path.join(layer_dir, fname)
            scanned += 1
            with open(path) as f:
                for lineno, line in enumerate(f, 1):
                    m = INCLUDE_RE.match(line)
                    if not m:
                        continue
                    target = m.group("path").split("/")[0]
                    if target not in layers:
                        continue  # common/ headers, same-dir includes
                    if target not in allowed:
                        rel = os.path.relpath(path, os.path.dirname(src_dir))
                        violations.append(
                            f"{rel}:{lineno}: layer '{layer}' includes "
                            f"'{m.group('path')}' but does not declare DEPS "
                            f"on '{target}' (declared: "
                            f"{' '.join(sorted(layers[layer])) or '(none)'})")
    if verbose:
        print(f"scanned {scanned} files across {len(layers)} layers")
    return violations


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: the checkout containing this script)")
    ap.add_argument("--verbose", action="store_true",
                    help="print the parsed layer graph and scan stats")
    args = ap.parse_args()

    src_dir = os.path.join(args.root, "src")
    if not os.path.isdir(src_dir):
        print(f"error: {src_dir} is not a directory", file=sys.stderr)
        return 2
    layers = parse_layers(src_dir)
    if not layers:
        print("error: no dps_add_layer declarations found", file=sys.stderr)
        return 2
    try:
        closure = transitive_closure(layers)
    except ValueError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    if args.verbose:
        for name in sorted(layers):
            print(f"{name}: deps {sorted(layers[name])} "
                  f"closure {sorted(closure[name])}")

    violations = check_includes(src_dir, layers, closure, args.verbose)
    for v in violations:
        print(v, file=sys.stderr)
    if violations:
        print(f"{len(violations)} layering violation(s)", file=sys.stderr)
        return 1
    print(f"layering OK: {len(layers)} layers, acyclic DEPS graph, "
          "no undeclared cross-layer includes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
