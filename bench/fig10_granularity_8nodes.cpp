// Figure 10 — decomposition granularity r x {Basic, P, P+FC} on 8 nodes;
// reference = basic flow graph r=324 (84.2 s in the paper).
//
// Paper shape: on 8 nodes pipelining becomes significant; P+FC is best and
// its optimum moves to finer granularity; the basic graph degrades sharply
// at fine granularity.
#include <cstdio>
#include <iostream>
#include <map>

#include "bench_common.hpp"

using namespace dps;

int main(int argc, char** argv) {
  // --smoke shrinks the sweep (1296^2 matrix, coarse granularities only) so CI
  // can exercise the full bench pipeline in well under a second.
  const auto args = bench::BenchArgs::parse(argc, argv, /*withSmoke=*/true);
  const bool smoke = args.smoke;
  const auto& opts = args.opts;

  const std::int32_t n = smoke ? 1296 : 2592;
  auto lu = [&](std::int32_t r, std::int32_t workers) {
    auto cfg = bench::paperLu(r, workers);
    cfg.n = n;
    return cfg;
  };

  const std::vector<std::int32_t> sizes = smoke ? std::vector<std::int32_t>{162, 216, 324}
                                                : std::vector<std::int32_t>{81, 108, 162, 216, 324};
  const std::vector<std::string> variants{"Basic", "P", "P+FC"};

  exp::Campaign campaign(bench::paperSettings());
  const std::size_t iRef = campaign.add(lu(324, 8), {}, /*fidelitySeed=*/10);
  // point index per (variant, r) — the campaign preserves this ordering.
  std::map<std::string, std::map<std::int32_t, std::size_t>> pointOf;
  for (std::int32_t r : sizes) {
    for (const auto& v : variants) {
      auto cfg = lu(r, 8);
      cfg.pipelined = v != "Basic";
      cfg.flowControl = v == "P+FC";
      pointOf[v][r] = campaign.add(cfg, {}, 10);
    }
  }

  const auto result = campaign.run(opts.jobs);
  const auto& reference = result.observations[iRef];
  std::printf("Figure 10 reproduction: LU %d^2, 8 nodes, reference Basic r=324\n", n);
  std::printf("reference: measured %.1fs, predicted %.1fs (paper: 84.2s at 2592^2)\n\n",
              reference.measuredSec, reference.predictedSec);

  // improvement[variant][r] for measured and predicted legs.
  std::map<std::string, std::map<std::int32_t, std::pair<double, double>>> curve;
  for (std::int32_t r : sizes) {
    for (const auto& v : variants) {
      const auto& obs = result.observations[pointOf[v][r]];
      curve[v][r] = {reference.measuredSec / obs.measuredSec,
                     reference.predictedSec / obs.predictedSec};
    }
  }

  Table t;
  t.header({"block size r", "Basic", "Basic (sim)", "P", "P (sim)", "P+FC", "P+FC (sim)"});
  for (std::int32_t r : sizes) {
    t.row({std::to_string(r), Table::num(curve["Basic"][r].first, 2),
           Table::num(curve["Basic"][r].second, 2), Table::num(curve["P"][r].first, 2),
           Table::num(curve["P"][r].second, 2), Table::num(curve["P+FC"][r].first, 2),
           Table::num(curve["P+FC"][r].second, 2)});
  }
  t.print(std::cout);
  std::printf("\npaper shape: P+FC ~1.6-1.8 at fine r; Basic degrades below r=216;\n");
  std::printf("P strictly above Basic; P+FC at or above P everywhere\n\n");

  bool pBeatsBasic = true, fcBeatsP = true;
  for (std::int32_t r : sizes) {
    if (curve["P"][r].first <= curve["Basic"][r].first) pBeatsBasic = false;
    if (curve["P+FC"][r].first + 1e-9 < curve["P"][r].first) fcBeatsP = false;
  }
  bench::check(pBeatsBasic, "pipelining beats the basic graph at every granularity");
  // The remaining claims are paper-scale shapes (2592^2); at --smoke size flow
  // control can lose at coarse granularity, so only the full run asserts them.
  if (!smoke) {
    bench::check(fcBeatsP, "flow control never hurts pipelining");
    bench::check(curve["Basic"][81].first < 0.9,
                 "basic graph degrades sharply at fine granularity (r=81)");
    bench::check(curve["P+FC"][108].first > 1.5,
                 "P+FC reaches a large improvement at fine granularity");
  }
  // Optimum of P+FC sits at finer granularity than the Basic optimum.
  auto argmax = [&](const std::string& v) {
    std::int32_t best = sizes.front();
    for (std::int32_t r : sizes)
      if (curve[v][r].first > curve[v][best].first) best = r;
    return best;
  };
  bench::check(argmax("P+FC") <= argmax("Basic"),
               "optimal block size for P+FC is at least as fine as for Basic");
  // Simulator curves track the measured ones.
  double worstGap = 0;
  for (const auto& v : variants)
    for (std::int32_t r : sizes)
      worstGap = std::max(worstGap,
                          std::abs(curve[v][r].first - curve[v][r].second) / curve[v][r].first);
  bench::check(worstGap < 0.08, "simulated improvement curves track measured within 8%");
  return bench::finish("fig10_granularity_8nodes", opts, &result);
}
