// Microbenchmarks of the linear-algebra substrate (google-benchmark):
// throughput of the kernels behind the LU application, and of the
// calibration probes the host cost model uses.
#include <benchmark/benchmark.h>

#include "linalg/blocked_lu.hpp"
#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"

namespace {

using dps::lin::gemmFlops;
using dps::lin::Matrix;

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const Matrix a = dps::lin::testMatrix(1, n);
  const Matrix b = dps::lin::testMatrix(2, n);
  Matrix c(n, n);
  for (auto _ : state) {
    dps::lin::gemmSubtract(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      gemmFlops(n, n, n) * static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(216)->Arg(324);

void BM_Trsm(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const Matrix l = dps::lin::testMatrix(3, n);
  for (auto _ : state) {
    Matrix b = dps::lin::testMatrix(4, n);
    dps::lin::trsmLowerUnit(l, b);
    benchmark::DoNotOptimize(b.data());
  }
}
BENCHMARK(BM_Trsm)->Arg(128)->Arg(216);

void BM_PanelLu(benchmark::State& state) {
  const auto k = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    Matrix panel = dps::lin::testPanel(5, 4 * k, 0, k);
    std::vector<std::int32_t> pivots;
    dps::lin::panelLu(panel, pivots);
    benchmark::DoNotOptimize(panel.data());
  }
}
BENCHMARK(BM_PanelLu)->Arg(64)->Arg(128);

void BM_BlockLuEndToEnd(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const Matrix a = dps::lin::testMatrix(6, n);
  for (auto _ : state) {
    auto f = dps::lin::blockLu(a, n / 4);
    benchmark::DoNotOptimize(f.lu.data());
  }
}
BENCHMARK(BM_BlockLuEndToEnd)->Arg(128)->Arg(256);

} // namespace

BENCHMARK_MAIN();
