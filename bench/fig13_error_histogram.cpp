// Figure 13 — histogram of prediction errors over the full measurement
// campaign (paper §8: 168 measurements; 71.4% within ±4%, 81.6% within
// ±6%, >95% within ±12%).
//
// The campaign replays the scenario grid behind Figs. 8-12 across several
// "machine states" (fidelity seeds — like measuring on different days).
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "support/histogram.hpp"
#include "support/stats.hpp"

using namespace dps;

int main() {
  exp::ScenarioRunner runner(bench::paperSettings());

  // Scenario grid: granularities x variants x node counts x plans.
  struct Scenario {
    lu::LuConfig cfg;
    mall::AllocationPlan plan;
  };
  std::vector<Scenario> grid;
  for (std::int32_t workers : {4, 8}) {
    for (std::int32_t r : {108, 162, 216, 324}) {
      for (int v = 0; v < 3; ++v) {
        auto cfg = bench::paperLu(r, workers);
        cfg.pipelined = v > 0;
        cfg.flowControl = v > 1;
        grid.push_back({cfg, {}});
      }
    }
  }
  // PM variants (coarse granularities, where the paper evaluates them).
  for (std::int32_t r : {324, 648}) {
    auto cfg = bench::paperLu(r, 4);
    cfg.parallelMult = true;
    grid.push_back({cfg, {}});
  }
  // Removal strategies.
  {
    auto cfg = bench::paperLu(324, 8);
    grid.push_back({cfg, mall::AllocationPlan::killAfter({{1, {4, 5, 6, 7}}})});
    grid.push_back({cfg, mall::AllocationPlan::killAfter({{4, {4, 5, 6, 7}}})});
    grid.push_back({cfg, mall::AllocationPlan::killAfter({{2, {6, 7}}, {3, {4, 5}}})});
  }

  const std::vector<std::uint64_t> seeds{101, 202, 303, 404, 505, 606};
  std::vector<double> errors;
  errors.reserve(grid.size() * seeds.size());
  for (const auto& sc : grid)
    for (std::uint64_t seed : seeds)
      errors.push_back(runner.run(sc.cfg, sc.plan, seed).error());

  Histogram hist(-0.16, 0.16, 16); // 2%-wide bins like the paper's figure
  hist.addAll(errors);

  std::printf("Figure 13 reproduction: prediction-error histogram over %zu measurements\n\n",
              errors.size());
  std::printf("%s\n", hist.render(50).c_str());

  const double within4 = fractionWithin(errors, 0.04);
  const double within6 = fractionWithin(errors, 0.06);
  const double within12 = fractionWithin(errors, 0.12);
  OnlineStats stats;
  for (double e : errors) stats.add(e);
  std::printf("within +-4%%: %.1f%%   within +-6%%: %.1f%%   within +-12%%: %.1f%%\n",
              within4 * 100, within6 * 100, within12 * 100);
  std::printf("mean error %.2f%%, stddev %.2f%%, min %.2f%%, max %.2f%%\n",
              stats.mean() * 100, stats.stddev() * 100, stats.min() * 100, stats.max() * 100);
  std::printf("\npaper: 71.4%% within +-4%%, 81.6%% within +-6%%, >95%% within +-12%%\n\n");

  bench::check(errors.size() >= 168, "campaign size matches the paper's 168 measurements");
  bench::check(within4 >= 0.714, "at least 71.4% of predictions within +-4% (paper)");
  bench::check(within6 >= 0.816, "at least 81.6% of predictions within +-6% (paper)");
  bench::check(within12 >= 0.95, "more than 95% of predictions within +-12% (paper)");
  bench::check(std::abs(stats.mean()) < 0.05, "errors are not grossly biased");
  bench::check(hist.modeBin() >= 6 && hist.modeBin() <= 9,
               "error mass concentrates around zero");
  return bench::finish();
}
