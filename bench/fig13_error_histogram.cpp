// Figure 13 — histogram of prediction errors over the full measurement
// campaign (paper §8: 168 measurements; 71.4% within ±4%, 81.6% within
// ±6%, >95% within ±12%).
//
// The campaign replays the scenario grid behind Figs. 8-12 across several
// "machine states" (fidelity seeds — like measuring on different days).
// This is the largest sweep in the suite, declared as exp::SweepGrid grids
// and executed on the campaign pool (--jobs).
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "support/histogram.hpp"
#include "support/stats.hpp"

using namespace dps;

int main(int argc, char** argv) {
  const auto opts = bench::BenchArgs::parse(argc, argv).opts;

  const std::vector<std::uint64_t> seeds{101, 202, 303, 404, 505, 606};
  exp::Campaign campaign(bench::paperSettings());

  // Scenario grid: granularities x variants x node counts, every machine state.
  exp::SweepGrid grid;
  grid.base = bench::paperLu(324, 8);
  grid.r = {108, 162, 216, 324};
  grid.workers = {4, 8};
  grid.variants = {{"Basic", false, false, false},
                   {"P", true, false, false},
                   {"P+FC", true, false, true}};
  grid.fidelitySeeds = seeds;
  campaign.add(grid);

  // PM variants (coarse granularities, where the paper evaluates them).
  exp::SweepGrid pm;
  pm.base = bench::paperLu(324, 4);
  pm.r = {324, 648};
  pm.variants = {{"PM", false, true, false}};
  pm.fidelitySeeds = seeds;
  campaign.add(pm);

  // Removal strategies.
  exp::SweepGrid removal;
  removal.base = bench::paperLu(324, 8);
  removal.plans = {mall::AllocationPlan::killAfter({{1, {4, 5, 6, 7}}}),
                   mall::AllocationPlan::killAfter({{4, {4, 5, 6, 7}}}),
                   mall::AllocationPlan::killAfter({{2, {6, 7}}, {3, {4, 5}}})};
  removal.fidelitySeeds = seeds;
  campaign.add(removal);

  const auto result = campaign.run(opts.jobs);
  const std::vector<double> errors = result.errors();

  Histogram hist(-0.16, 0.16, 16); // 2%-wide bins like the paper's figure
  hist.addAll(errors);

  std::printf("Figure 13 reproduction: prediction-error histogram over %zu measurements\n\n",
              errors.size());
  std::printf("%s\n", hist.render(50).c_str());

  const double within4 = fractionWithin(errors, 0.04);
  const double within6 = fractionWithin(errors, 0.06);
  const double within12 = fractionWithin(errors, 0.12);
  const auto agg = result.aggregate();
  std::printf("within +-4%%: %.1f%%   within +-6%%: %.1f%%   within +-12%%: %.1f%%\n",
              within4 * 100, within6 * 100, within12 * 100);
  std::printf("mean error %.2f%%, stddev %.2f%%, min %.2f%%, max %.2f%%\n",
              agg.error.mean() * 100, agg.error.stddev() * 100, agg.error.min() * 100,
              agg.error.max() * 100);
  std::printf("\npaper: 71.4%% within +-4%%, 81.6%% within +-6%%, >95%% within +-12%%\n\n");

  bench::check(errors.size() >= 168, "campaign size matches the paper's 168 measurements");
  bench::check(within4 >= 0.714, "at least 71.4% of predictions within +-4% (paper)");
  bench::check(within6 >= 0.816, "at least 81.6% of predictions within +-6% (paper)");
  bench::check(within12 >= 0.95, "more than 95% of predictions within +-12% (paper)");
  bench::check(std::abs(agg.error.mean()) < 0.05, "errors are not grossly biased");
  bench::check(hist.modeBin() >= 6 && hist.modeBin() <= 9,
               "error mass concentrates around zero");
  return bench::finish("fig13_error_histogram", opts, &result);
}
