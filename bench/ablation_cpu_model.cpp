// Ablation A2 — the CPU model of paper §4: communication consumes
// processing power (receive > send) and the remainder is shared evenly
// among running operations.
//
// Method: predict fine-granularity configurations with the full model,
// without communication CPU overhead, and without CPU sharing; compare
// against the high-fidelity reference (which always models both).
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace dps;

int main() {
  exp::ScenarioRunner runner(bench::paperSettings());

  std::printf("Ablation: CPU sharing / communication CPU overhead\n\n");
  Table t;
  t.header({"config", "reference [s]", "full [s]", "no comm-CPU [s]", "no sharing [s]",
            "err full", "err no-comm", "err no-share"});

  double worstFull = 0, worstNoComm = 0, worstNoShare = 0;
  for (std::int32_t r : {81, 108}) {
    auto cfg = bench::paperLu(r, 8);
    cfg.pipelined = true;
    cfg.flowControl = true;

    const auto obs = runner.run(cfg, {}, 22);

    auto noCommCfg = runner.predictorConfig();
    noCommCfg.commCpuOverhead = false;
    const double tNoComm = toSeconds(runner.runOne(cfg, false, {}, 22, noCommCfg).makespan);

    auto noShareCfg = runner.predictorConfig();
    noShareCfg.cpuSharing = false;
    const double tNoShare = toSeconds(runner.runOne(cfg, false, {}, 22, noShareCfg).makespan);

    const double errFull = obs.error();
    const double errNoComm = (tNoComm - obs.measuredSec) / obs.measuredSec;
    const double errNoShare = (tNoShare - obs.measuredSec) / obs.measuredSec;
    worstFull = std::max(worstFull, std::abs(errFull));
    worstNoComm = std::max(worstNoComm, std::abs(errNoComm));
    worstNoShare = std::max(worstNoShare, std::abs(errNoShare));
    t.row({"P+FC r=" + std::to_string(r), Table::num(obs.measuredSec, 1),
           Table::num(obs.predictedSec, 1), Table::num(tNoComm, 1), Table::num(tNoShare, 1),
           Table::pct(errFull, 1), Table::pct(errNoComm, 1), Table::pct(errNoShare, 1)});
  }
  t.print(std::cout);
  std::printf("\n");

  bench::check(worstFull <= worstNoComm,
               "dropping comm CPU overhead does not improve accuracy");
  bench::check(worstFull <= worstNoShare,
               "dropping CPU sharing does not improve accuracy");
  bench::check(worstFull < 0.08, "full model stays within 8%");
  return bench::finish();
}
