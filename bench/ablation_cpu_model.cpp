// Ablation A2 — the CPU model of paper §4: communication consumes
// processing power (receive > send) and the remainder is shared evenly
// among running operations.
//
// Method: predict fine-granularity configurations with the full model,
// without communication CPU overhead, and without CPU sharing; compare
// against the high-fidelity reference (which always models both).
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"

using namespace dps;

int main(int argc, char** argv) {
  const auto opts = bench::BenchArgs::parse(argc, argv).opts;

  const std::vector<std::int32_t> rs{81, 108};
  exp::Campaign campaign(bench::paperSettings());
  std::vector<lu::LuConfig> cfgs;
  std::vector<std::size_t> obsIdx;
  for (std::int32_t r : rs) {
    auto cfg = bench::paperLu(r, 8);
    cfg.pipelined = true;
    cfg.flowControl = true;
    obsIdx.push_back(campaign.add(cfg, {}, /*fidelitySeed=*/22));
    cfgs.push_back(cfg);
  }
  // One shared caller-participates pool serves the campaign and the
  // ablated legs.
  ThreadPool pool(bench::poolWorkers(opts));
  const auto result = campaign.run(pool);

  // Ablated predictor legs (two per configuration), fanned out as one batch.
  auto noCommCfg = campaign.runner().predictorConfig();
  noCommCfg.commCpuOverhead = false;
  auto noShareCfg = campaign.runner().predictorConfig();
  noShareCfg.cpuSharing = false;
  std::vector<double> tNoComm(cfgs.size()), tNoShare(cfgs.size());
  parallelFor(pool, cfgs.size() * 2, [&](std::size_t task) {
    const std::size_t i = task / 2;
    const auto& cfg = cfgs[i];
    if (task % 2 == 0)
      tNoComm[i] = toSeconds(campaign.runner().runOne(cfg, false, {}, 22, noCommCfg).makespan);
    else
      tNoShare[i] = toSeconds(campaign.runner().runOne(cfg, false, {}, 22, noShareCfg).makespan);
  });

  std::printf("Ablation: CPU sharing / communication CPU overhead\n\n");
  Table t;
  t.header({"config", "reference [s]", "full [s]", "no comm-CPU [s]", "no sharing [s]",
            "err full", "err no-comm", "err no-share"});

  double worstFull = 0, worstNoComm = 0, worstNoShare = 0;
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const auto& obs = result.observations[obsIdx[i]];
    const double errFull = obs.error();
    const double errNoComm = (tNoComm[i] - obs.measuredSec) / obs.measuredSec;
    const double errNoShare = (tNoShare[i] - obs.measuredSec) / obs.measuredSec;
    worstFull = std::max(worstFull, std::abs(errFull));
    worstNoComm = std::max(worstNoComm, std::abs(errNoComm));
    worstNoShare = std::max(worstNoShare, std::abs(errNoShare));
    t.row({"P+FC r=" + std::to_string(rs[i]), Table::num(obs.measuredSec, 1),
           Table::num(obs.predictedSec, 1), Table::num(tNoComm[i], 1),
           Table::num(tNoShare[i], 1), Table::pct(errFull, 1), Table::pct(errNoComm, 1),
           Table::pct(errNoShare, 1)});
  }
  t.print(std::cout);
  std::printf("\n");

  bench::check(worstFull <= worstNoComm,
               "dropping comm CPU overhead does not improve accuracy");
  bench::check(worstFull <= worstNoShare,
               "dropping CPU sharing does not improve accuracy");
  bench::check(worstFull < 0.08, "full model stays within 8%");
  return bench::finish("ablation_cpu_model", opts, &result);
}
