// Figure 11 — dynamic efficiency of the LU factorization per iteration:
// 8 threads vs 4 threads vs "kill 4 after iteration 1", measured and
// simulated (paper §8).
//
// Paper shape: iteration-1 efficiency ~60% on 4 nodes vs ~38% on 8 nodes;
// the 4-vs-8 efficiency ratio reaches 2x by iteration ~6; removing threads
// after iteration 1 lifts subsequent efficiency onto the 4-thread curve.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "trace/efficiency.hpp"

using namespace dps;

namespace {

std::vector<double> efficiencies(const core::RunResult& r) {
  const auto pts =
      trace::dynamicEfficiency(*r.trace, "iteration", simEpoch(), simEpoch() + r.makespan);
  std::vector<double> out;
  for (const auto& p : pts) out.push_back(p.efficiency);
  return out;
}

} // namespace

int main(int argc, char** argv) {
  const auto opts = bench::BenchArgs::parse(argc, argv).opts;

  auto cfg = bench::paperLu(324, 8); // 8 column blocks, basic graph
  auto cfg4 = cfg;
  cfg4.workers = 4;

  exp::Campaign campaign(bench::paperSettings());
  const std::size_t iEight = campaign.add(cfg, {}, /*fidelitySeed=*/11);
  const std::size_t iFour = campaign.add(cfg4, {}, 11);
  const std::size_t iKilled =
      campaign.add(cfg, mall::AllocationPlan::killAfter({{1, {4, 5, 6, 7}}}), 11);
  const auto result = campaign.run(opts.jobs);
  const auto& eight = result.observations[iEight];
  const auto& four = result.observations[iFour];
  const auto& killed = result.observations[iKilled];

  const auto e8m = efficiencies(eight.measured);
  const auto e8p = efficiencies(eight.predicted);
  const auto e4m = efficiencies(four.measured);
  const auto e4p = efficiencies(four.predicted);
  const auto ekm = efficiencies(killed.measured);
  const auto ekp = efficiencies(killed.predicted);

  std::printf("Figure 11 reproduction: dynamic efficiency per LU iteration\n");
  std::printf("(2592^2, r=324, basic graph; efficiency = work / (allocated nodes x time))\n\n");
  Table t;
  t.header({"iteration", "8 thr", "8 thr sim", "4 thr", "4 thr sim", "kill4@1", "kill4@1 sim"});
  const std::size_t iters = e8m.size();
  for (std::size_t i = 0; i < iters; ++i) {
    auto cell = [&](const std::vector<double>& v) {
      return i < v.size() ? Table::pct(v[i], 1) : std::string("-");
    };
    t.row({std::to_string(i + 1), cell(e8m), cell(e8p), cell(e4m), cell(e4p), cell(ekm),
           cell(ekp)});
  }
  t.print(std::cout);
  std::printf("\npaper: iteration 1: 60.2%% (4 thr) vs 37.6%% (8 thr); ratio reaches 2x by\n");
  std::printf("iteration 6; kill-4-after-1 jumps onto the 4-thread efficiency curve\n\n");

  bench::check(e4m[0] > 0.5 && e4m[0] < 0.75,
               "iteration-1 efficiency on 4 nodes ~60% (paper: 60.2%)");
  bench::check(e8m[0] > 0.28 && e8m[0] < 0.5,
               "iteration-1 efficiency on 8 nodes ~38% (paper: 37.6%)");
  bench::check(e4m[0] / e8m[0] > 1.3 && e4m[0] / e8m[0] < 2.0,
               "4 nodes ~50% more efficient than 8 at iteration 1");
  bench::check(e4m[5] / e8m[5] >= 1.8, "efficiency ratio reaches ~2x by iteration 6");
  // Efficiency decreases over the bulk of the run (paper: the parallel
  // computation of LU iterations becomes less efficient over time).
  bench::check(e8m[4] < e8m[0] && e4m[4] < e4m[0],
               "efficiency decreases over iterations on both allocations");
  // After the kill, efficiency tracks the 4-thread curve.
  double worstGap = 0;
  for (std::size_t i = 1; i < std::min(ekm.size(), e4m.size()) - 1; ++i)
    worstGap = std::max(worstGap, std::abs(ekm[i] - e4m[i]));
  bench::check(worstGap < 0.08,
               "kill-4-after-1 efficiency matches the 4-thread curve from iteration 2");
  // Simulation tracks measurement.
  double simGap = 0;
  for (std::size_t i = 0; i + 1 < iters; ++i) {
    simGap = std::max(simGap, std::abs(e8m[i] - e8p[i]));
    simGap = std::max(simGap, std::abs(e4m[i] - e4p[i]));
  }
  bench::check(simGap < 0.06, "simulated efficiency within 6 points of measured");
  return bench::finish("fig11_dynamic_efficiency", opts, &result);
}
