// Shared infrastructure for the table/figure reproduction benches.
//
// Every bench prints (a) the rows/series the paper reports, (b) a
// paper-vs-measured comparison where the paper gives concrete numbers, and
// (c) [CHECK] lines asserting the *shape* claims (who wins, by roughly what
// factor, where crossovers fall).  Absolute times are not expected to match
// the authors' 2006 testbed; shapes are (DESIGN.md §5).
//
// Benches execute their sweeps as exp::Campaign runs: observations fan out
// over --jobs concurrent simulations (default: all cores) and come back in
// deterministic point order, so the printed tables and [CHECK] verdicts are
// identical at any job count.  --json <path> dumps the campaign result set,
// aggregates and check verdicts for cross-PR trajectory tracking.
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "experiments/campaign.hpp"
#include "experiments/scenario.hpp"
#include "lu/builder.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace dps::bench {

/// The paper's experiment platform at paper scale.
inline exp::EngineSettings paperSettings() { return exp::EngineSettings{}; }

/// 2592 x 2592 matrix — the size every evaluation section experiment uses.
inline lu::LuConfig paperLu(std::int32_t r, std::int32_t workers) {
  lu::LuConfig cfg;
  cfg.n = 2592;
  cfg.r = r;
  cfg.workers = workers;
  cfg.seed = 20060425; // IPPS 2006
  cfg.fcLimit = 8;
  return cfg;
}

/// Sweep execution options shared by every bench binary.
struct RunOptions {
  unsigned jobs = 0;    // 0 = hardware concurrency
  std::string jsonPath; // empty = no JSON emission
};

/// Declares --jobs/--json on the bench's Cli (call before helpRequested()).
inline RunOptions runOptions(Cli& cli) {
  RunOptions o;
  const std::int64_t jobs =
      cli.integer("jobs", 0, "concurrent simulations (0 = hardware concurrency)");
  if (jobs < 0 || jobs > 4096)
    throw ConfigError("--jobs must be in [0, 4096], got " + std::to_string(jobs));
  o.jobs = static_cast<unsigned>(jobs);
  o.jsonPath = cli.str("json", "", "write results + check verdicts to this JSON file");
  return o;
}

/// Concurrency the options resolve to (0 = hardware).
inline unsigned effectiveJobs(const RunOptions& o) {
  return o.jobs == 0 ? ThreadPool::hardwareJobs() : o.jobs;
}

/// The fully parsed shared bench command line.  Every bench main starts with
/// BenchArgs::parse instead of hand-rolling Cli handling: --help prints the
/// usage text and exits 0; unknown or malformed options print the error plus
/// usage and exit 2 — never silently ignored, never an uncaught throw.
struct BenchArgs {
  RunOptions opts;
  bool smoke = false;

  static BenchArgs parse(int argc, const char* const* argv, bool withSmoke = false) {
    Cli cli(argc, argv);
    BenchArgs args;
    try {
      if (withSmoke)
        args.smoke =
            cli.flag("smoke", "reduced-size CI run; skips paper-scale shape checks");
      args.opts = runOptions(cli);
      if (cli.helpRequested()) {
        std::printf("%s", cli.helpText().c_str());
        std::exit(0);
      }
      cli.finish();
    } catch (const Error& e) {
      std::fprintf(stderr, "%s\n%s", e.what(), cli.helpText().c_str());
      std::exit(2);
    }
    return args;
  }
};

/// Worker count for a shared caller-participates pool: the calling thread
/// plus this many workers give exactly effectiveJobs() concurrent bodies
/// (0 workers = serial inline execution).
inline unsigned poolWorkers(const RunOptions& o) { return effectiveJobs(o) - 1; }

struct CheckRecord {
  std::string claim;
  bool ok = false;
};

// Campaign sweeps run checks and [CHECK] output from pool threads in some
// benches; the counter is atomic and the output + record list mutex-guarded
// so lines never interleave and no verdict is lost.
inline std::atomic<int> g_checksFailed{0};
inline std::mutex g_checkMutex;
inline std::vector<CheckRecord> g_checks;

/// Records a shape-claim check; failures flip the process exit code so the
/// bench sweep doubles as a regression harness.
inline void check(bool ok, const std::string& claim) {
  std::lock_guard<std::mutex> lock(g_checkMutex);
  std::printf("[CHECK] %-70s %s\n", claim.c_str(), ok ? "PASS" : "FAIL");
  g_checks.push_back({claim, ok});
  if (!ok) g_checksFailed.fetch_add(1, std::memory_order_relaxed);
}

/// Writes the bench's JSON artifact: name, job count, check verdicts and
/// (when the bench is campaign-based) the full observation set + aggregates.
/// `extraJson` lets non-Campaign benches (e.g. the sched cluster sweep)
/// append their own top-level members: pass `"key":value[,...]` fragments.
inline void writeJson(const std::string& path, const std::string& benchName,
                      const RunOptions& opts, const exp::CampaignResult* campaign,
                      const std::string& extraJson = {}) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write JSON to %s\n", path.c_str());
    return;
  }
  JsonWriter w(os);
  w.beginObject().field("bench", benchName).field("jobs", effectiveJobs(opts));
  w.key("checks").beginArray();
  {
    std::lock_guard<std::mutex> lock(g_checkMutex);
    for (const CheckRecord& c : g_checks)
      w.beginObject().field("claim", c.claim).field("pass", c.ok).endObject();
  }
  w.endArray();
  if (campaign) w.key("campaign").raw(campaign->jsonString());
  w.rawMembers(extraJson);
  w.endObject();
  DPS_CHECK(w.closed(), "unbalanced bench JSON");
  os << "\n";
  std::printf("wrote %s\n", path.c_str());
}

/// Prints the verdict summary, emits JSON when requested, and returns the
/// process exit code.
inline int finish(const std::string& benchName = {}, const RunOptions& opts = {},
                  const exp::CampaignResult* campaign = nullptr,
                  const std::string& extraJson = {}) {
  if (!opts.jsonPath.empty()) writeJson(opts.jsonPath, benchName, opts, campaign, extraJson);
  const int failed = g_checksFailed.load(std::memory_order_relaxed);
  if (failed > 0) {
    std::printf("\n%d shape check(s) FAILED\n", failed);
    return 1;
  }
  std::printf("\nall shape checks passed\n");
  return 0;
}

} // namespace dps::bench
