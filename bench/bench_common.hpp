// Shared infrastructure for the table/figure reproduction benches.
//
// Every bench prints (a) the rows/series the paper reports, (b) a
// paper-vs-measured comparison where the paper gives concrete numbers, and
// (c) [CHECK] lines asserting the *shape* claims (who wins, by roughly what
// factor, where crossovers fall).  Absolute times are not expected to match
// the authors' 2006 testbed; shapes are (DESIGN.md §5).
#pragma once

#include <cstdio>
#include <string>

#include "experiments/scenario.hpp"
#include "lu/builder.hpp"
#include "support/table.hpp"

namespace dps::bench {

/// The paper's experiment platform at paper scale.
inline exp::EngineSettings paperSettings() { return exp::EngineSettings{}; }

/// 2592 x 2592 matrix — the size every evaluation section experiment uses.
inline lu::LuConfig paperLu(std::int32_t r, std::int32_t workers) {
  lu::LuConfig cfg;
  cfg.n = 2592;
  cfg.r = r;
  cfg.workers = workers;
  cfg.seed = 20060425; // IPPS 2006
  cfg.fcLimit = 8;
  return cfg;
}

inline int g_checksFailed = 0;

/// Records a shape-claim check; failures flip the process exit code so the
/// bench sweep doubles as a regression harness.
inline void check(bool ok, const std::string& claim) {
  std::printf("[CHECK] %-70s %s\n", claim.c_str(), ok ? "PASS" : "FAIL");
  if (!ok) ++g_checksFailed;
}

inline int finish() {
  if (g_checksFailed > 0) {
    std::printf("\n%d shape check(s) FAILED\n", g_checksFailed);
    return 1;
  }
  std::printf("\nall shape checks passed\n");
  return 0;
}

} // namespace dps::bench
