// Cluster scheduling-policy campaign: the sched:: subsystem's counterpart
// of the figure benches.
//
// One profile table (built once, fanned over --jobs engines) feeds a sweep
// of (workload seed x arrival rate) cluster simulations under every policy.
// The [CHECK] claims encode what the malleable-scheduling literature — and
// the paper's §9 outlook — predict:
//   * equipartition beats the rigid FCFS baseline on mean job slowdown, on
//     the default workload and on the sweep aggregate;
//   * the efficiency-driven shrink policy releases nodes (reallocations
//     happen) and still completes every job;
//   * every simulation conserves nodes (utilization in (0, 1]).
#include <iostream>
#include <map>
#include <memory>
#include <sstream>

#include "bench_common.hpp"
#include "obs/recorder.hpp"
#include "sched/cluster.hpp"
#include "support/json.hpp"
#include "svc/profile_cache.hpp"

using namespace dps;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, /*withSmoke=*/true);
  const std::int32_t nodes = 8;
  const std::vector<std::uint64_t> seeds =
      args.smoke ? std::vector<std::uint64_t>{1, 2} : std::vector<std::uint64_t>{1, 2, 3, 4, 5};
  const std::vector<double> rates =
      args.smoke ? std::vector<double>{0.15} : std::vector<double>{0.08, 0.15, 0.3};

  const auto classes = sched::Workload::defaultMix(nodes);
  const sched::ProfileSettings settings;
  const auto profiles =
      svc::buildProfileTable(classes, nodes, settings, bench::effectiveJobs(args.opts));
  const auto ccfg = sched::ClusterConfig::fromProfile(settings.platform, nodes);

  struct PolicyAgg {
    OnlineStats slowdown, utilization, wait;
    std::int32_t reallocations = 0;
    std::int32_t growthGrants = 0; // phase-boundary allocation increases
    obs::WaitAttribution attr;     // summed integer-ns wait attribution
  };
  std::map<std::string, PolicyAgg> agg;
  std::ostringstream pointsJson;
  JsonWriter points(pointsJson);
  points.beginArray();
  double defaultFcfs = 0, defaultEquip = 0; // seed 1, rate 0.15 — the acceptance point

  for (double rate : rates) {
    Table t("cluster of " + std::to_string(nodes) + " nodes, arrival rate " +
            Table::num(rate, 2) + "/s (mean slowdown | utilization)");
    std::vector<std::string> head{"seed"};
    for (const auto& name : sched::policyNames()) head.push_back(name);
    t.header(head);
    for (std::uint64_t seed : seeds) {
      sched::WorkloadConfig wcfg;
      wcfg.seed = seed;
      // The event loop is cheap next to the (shared) profile table, so even
      // the smoke run plays the full default workload — the growth-grant
      // check needs its tail jobs.
      wcfg.jobCount = 12;
      wcfg.arrivalRatePerSec = rate;
      wcfg.classes = classes;
      const auto workload = sched::Workload::generate(wcfg, nodes);

      std::vector<std::string> cells{std::to_string(seed)};
      for (const auto& name : sched::policyNames()) {
        auto policy = sched::makePolicy(name);
        const auto m = sched::simulateCluster(ccfg, workload, profiles, *policy);
        bench::check(!m.jobs.empty() && m.utilization > 0 && m.utilization <= 1.0 + 1e-9,
                     name + " seed " + std::to_string(seed) + " rate " + Table::num(rate, 2) +
                         ": all jobs served, utilization in (0,1]");
        cells.push_back(Table::num(m.meanSlowdown, 2) + " | " + Table::pct(m.utilization, 0));
        PolicyAgg& a = agg[name];
        a.slowdown.add(m.meanSlowdown);
        a.utilization.add(m.utilization);
        a.wait.add(m.meanWaitSec);
        a.reallocations += m.reallocations;
        for (std::size_t r = 0; r < obs::kWaitReasonCount; ++r)
          a.attr.byReason[r] += m.attribution.byReason[r];
        a.attr.totalNs += m.attribution.totalNs;
        a.attr.migrationDelayNs += m.attribution.migrationDelayNs;
        for (const auto& j : m.jobs)
          for (std::size_t p = 1; p < j.allocs.size(); ++p)
            a.growthGrants += j.allocs[p] > j.allocs[p - 1];
        if (seed == 1 && rate == 0.15) {
          if (name == "fcfs-rigid") defaultFcfs = m.meanSlowdown;
          if (name == "equipartition") defaultEquip = m.meanSlowdown;
        }
        points.beginObject()
            .field("seed", seed)
            .field("rate", rate)
            .key("metrics")
            .raw(m.jsonString())
            .endObject();
      }
      t.row(cells);
    }
    t.print(std::cout);
  }

  bench::check(defaultEquip > 0 && defaultEquip < defaultFcfs,
               "equipartition beats fcfs-rigid on mean slowdown (default workload)");
  bench::check(agg["equipartition"].slowdown.mean() < agg["fcfs-rigid"].slowdown.mean(),
               "equipartition beats fcfs-rigid on mean slowdown (sweep aggregate)");
  bench::check(agg["efficiency-shrink"].reallocations > 0,
               "efficiency-shrink policy actually releases nodes");
  bench::check(agg["grow-eager"].growthGrants > 0,
               "grow-eager policy triggers growth grants on the default workload sweep");
  bench::check(agg["fcfs-rigid"].growthGrants == 0, "rigid jobs never grow");
  bench::check(agg["equipartition"].wait.mean() < agg["fcfs-rigid"].wait.mean(),
               "malleable scheduling shortens mean job wait vs rigid FCFS");

  points.endArray();
  DPS_CHECK(points.closed(), "unbalanced points JSON");

  std::ostringstream aggJson;
  JsonWriter aw(aggJson);
  aw.beginObject();
  for (const auto& [name, a] : agg) {
    aw.key(name)
        .beginObject()
        .field("mean_slowdown", a.slowdown.mean())
        .field("mean_utilization", a.utilization.mean())
        .field("mean_wait_sec", a.wait.mean())
        .field("reallocations", a.reallocations)
        .field("growth_grants", a.growthGrants)
        .key("wait_attr")
        .beginObject();
    for (std::size_t r = 0; r < obs::kWaitReasonCount; ++r) {
      std::string k = obs::waitReasonName(static_cast<obs::WaitReason>(r));
      k += "_sec";
      aw.field(k, static_cast<double>(a.attr.byReason[r]) * 1e-9);
    }
    aw.field("total_wait_sec", static_cast<double>(a.attr.totalNs) * 1e-9)
        .field("migration_delay_sec", static_cast<double>(a.attr.migrationDelayNs) * 1e-9)
        .field("dominant",
               a.attr.totalNs > 0 ? obs::waitReasonName(a.attr.dominant()) : "none")
        .field("dominant_share", a.attr.dominantShare())
        .endObject()
        .endObject();
  }
  aw.endObject();
  DPS_CHECK(aw.closed(), "unbalanced aggregate JSON");

  const std::string extra =
      "\"aggregate\":" + aggJson.str() + ",\"points\":" + pointsJson.str();
  return bench::finish("cluster_policies", args.opts, nullptr, extra);
}
