// Profile-service load bench: thousands of mixed what-if and cluster
// profile queries pushed through svc::RequestQueue + svc::ProfileCache, the
// stack a cluster server answering allocation queries would run (paper §9).
//
// Two phases over one query universe:
//   * cold   — every distinct query once; each is a full engine simulation
//     (fanned over --jobs service threads, backpressure on overload);
//   * steady — thousands of queries drawn from the same universe by a
//     seeded generator; the cache serves them without touching the engine.
//
// Reported per phase: throughput plus p50/p99 submit-to-completion latency;
// plus cache hit/miss/run counters and queue admission stats.  The [CHECK]
// claims pin the service-layer contract: the steady phase runs zero new
// simulations and sustains >= 10x the cold-phase throughput.
#include <chrono>
#include <cmath>
#include <iostream>
#include <sstream>
#include <thread>

#include "bench_common.hpp"
#include "obs/registry.hpp"
#include "sched/engine_run.hpp"
#include "support/rng.hpp"
#include "svc/profile_cache.hpp"
#include "svc/request_queue.hpp"

using namespace dps;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The distinct queries the server answers: every (class, allocation)
/// profile point of the default cluster mix, plus the cluster_server
/// example's what-if sweep ("shrink to half after iteration q") over a few
/// job shapes.
std::vector<sched::EngineRunSpec> queryUniverse(bool smoke) {
  const sched::ProfileSettings settings;
  std::vector<sched::EngineRunSpec> universe;

  const std::int32_t nodes = smoke ? 4 : 8;
  for (const auto& klass : sched::Workload::defaultMix(nodes))
    for (std::int32_t alloc : sched::feasibleAllocations(klass, nodes))
      universe.push_back(sched::profileRunSpec(klass, alloc, settings));

  std::vector<lu::LuConfig> shapes;
  lu::LuConfig wi;
  wi.n = 648;
  wi.r = 162;
  wi.workers = 4;
  shapes.push_back(wi);
  if (!smoke) {
    wi.r = 81;
    wi.workers = 8;
    shapes.push_back(wi);
  }
  for (const auto& cfg : shapes)
    for (std::int64_t q = 0; q < cfg.levels() - 1; ++q) {
      sched::EngineRunSpec spec;
      spec.app = sched::AppKind::Lu;
      spec.lu = cfg;
      spec.config = settings.simConfig();
      spec.luModel = settings.luModel;
      spec.jacobiModel = settings.jacobiModel;
      spec.slicePhases = q == 0;
      if (q >= 1) {
        mall::RemovalStep step;
        step.afterIteration = q;
        for (std::int32_t t = cfg.workers / 2; t < cfg.workers; ++t) step.threads.push_back(t);
        spec.plan = mall::AllocationPlan::killAfter({step});
      }
      universe.push_back(spec);
    }
  return universe;
}

struct PhaseResult {
  std::size_t requests = 0;
  double seconds = 0;
  std::vector<double> latencySec; // submit-to-completion, request order
  std::uint64_t rejections = 0;   // admissions retried after backpressure

  double qps() const { return seconds > 0 ? static_cast<double>(requests) / seconds : 0; }
  double percentileMs(double p) const {
    if (latencySec.empty()) return 0;
    auto sorted = latencySec;
    std::sort(sorted.begin(), sorted.end());
    const auto idx = static_cast<std::size_t>(
        std::llround(p * static_cast<double>(sorted.size() - 1)));
    return sorted[idx] * 1e3;
  }
};

/// Pushes `specs[pick(i)]` for i in [0, count) through the queue, retrying
/// rejected submits after the admission hint (counted as backpressure
/// events, not as extra requests).
template <typename Pick>
PhaseResult runPhase(svc::RequestQueue& queue, const std::vector<sched::EngineRunSpec>& specs,
                     std::size_t count, Pick pick) {
  PhaseResult res;
  res.requests = count;
  res.latencySec.assign(count, 0);
  const auto phaseStart = Clock::now();
  for (std::size_t i = 0; i < count; ++i) {
    const auto submitAt = Clock::now();
    double* slot = &res.latencySec[i];
    for (;;) {
      const auto adm = queue.submit(specs[pick(i)], [slot, submitAt](
                                                        const sched::EngineRunRecord&) {
        *slot = secondsSince(submitAt);
      });
      if (adm.accepted()) break;
      ++res.rejections;
      std::this_thread::sleep_for(std::chrono::duration<double>(adm.retryAfterSec));
    }
  }
  queue.drain();
  res.seconds = secondsSince(phaseStart);
  return res;
}

void phaseJson(JsonWriter& w, const PhaseResult& r) {
  w.beginObject()
      .field("requests", r.requests)
      .field("seconds", r.seconds)
      .field("qps", r.qps())
      .field("p50_ms", r.percentileMs(0.50))
      .field("p99_ms", r.percentileMs(0.99))
      .field("rejections", r.rejections)
      .endObject();
}

} // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, /*withSmoke=*/true);
  const auto universe = queryUniverse(args.smoke);
  const std::size_t steadyCount = args.smoke ? 800 : 4000;

  // The whole service stack records into one registry: svc.cache.* from the
  // cache, svc.queue.* from the admission queue, engine.*/mall.* from the
  // engine runs the cold phase executes.
  obs::Registry registry;
  svc::ProfileCache cache;
  cache.attachRegistry(&registry);
  svc::RequestQueue::Options qopts;
  qopts.capacity = 64;
  qopts.workers = bench::effectiveJobs(args.opts);
  qopts.metrics = &registry;
  svc::RequestQueue queue(cache, qopts);

  std::printf("query universe: %zu distinct specs, %u service threads, queue capacity %zu\n\n",
              universe.size(), qopts.workers, qopts.capacity);

  // Cold phase: every distinct query once — all engine simulations.
  const auto cold =
      runPhase(queue, universe, universe.size(), [](std::size_t i) { return i; });

  // Steady phase: a seeded stream of repeat queries — all cache hits.
  Rng rng(20060425);
  const auto steady = runPhase(queue, universe, steadyCount, [&](std::size_t) {
    return static_cast<std::size_t>(rng.below(universe.size()));
  });

  const auto cs = cache.stats();
  Table t("profile service under load (" + std::to_string(qopts.workers) + " service threads)");
  t.header({"phase", "requests", "time [s]", "qps", "p50 [ms]", "p99 [ms]", "rejections"});
  t.row({"cold (distinct)", std::to_string(cold.requests), Table::num(cold.seconds, 2),
         Table::num(cold.qps(), 1), Table::num(cold.percentileMs(0.50), 2),
         Table::num(cold.percentileMs(0.99), 2), std::to_string(cold.rejections)});
  t.row({"steady (repeat)", std::to_string(steady.requests), Table::num(steady.seconds, 2),
         Table::num(steady.qps(), 1), Table::num(steady.percentileMs(0.50), 2),
         Table::num(steady.percentileMs(0.99), 2), std::to_string(steady.rejections)});
  t.print(std::cout);
  std::printf("\ncache: %llu lookups, %llu engine runs, hit rate %.1f%%; queue served %llu, "
              "rejected %llu\n\n",
              static_cast<unsigned long long>(cs.lookups()),
              static_cast<unsigned long long>(cs.engineRuns), cs.hitRate() * 100.0,
              static_cast<unsigned long long>(queue.served()),
              static_cast<unsigned long long>(queue.rejectedCount()));

  bench::check(cs.engineRuns == universe.size(),
               "steady phase executes zero new engine runs (all served from cache)");
  bench::check(cs.hitRate() > 0, "cache hit rate is nonzero after the steady phase");
  bench::check(steady.qps() >= 10.0 * cold.qps(),
               "repeated-query throughput >= 10x cold-phase throughput");
  bench::check(steady.percentileMs(0.99) >= steady.percentileMs(0.50) &&
                   steady.percentileMs(0.50) > 0,
               "latency percentiles are reported and ordered (p99 >= p50 > 0)");

  const auto snap = registry.snapshot();
  bench::check(snap.counter("svc.cache.hits") == cs.hits &&
                   snap.counter("svc.cache.joined") == cs.joined &&
                   snap.counter("svc.cache.misses") == cs.misses &&
                   snap.counter("svc.cache.engine_runs") == cs.engineRuns,
               "obs registry cache counters agree with CacheStats exactly");
  bench::check(snap.counter("svc.queue.served") == queue.served() &&
                   snap.counter("svc.queue.rejected") == queue.rejectedCount(),
               "obs registry queue counters agree with the queue's own counts");

  std::ostringstream extra;
  JsonWriter w(extra);
  w.beginObject();
  w.field("universe", universe.size()).field("service_threads", qopts.workers);
  w.key("cold");
  phaseJson(w, cold);
  w.key("steady");
  phaseJson(w, steady);
  w.field("speedup", cold.qps() > 0 ? steady.qps() / cold.qps() : 0);
  w.key("cache")
      .beginObject()
      .field("hits", cs.hits)
      .field("joined", cs.joined)
      .field("misses", cs.misses)
      .field("engine_runs", cs.engineRuns)
      .field("hit_rate", cs.hitRate())
      .endObject();
  w.key("queue")
      .beginObject()
      .field("served", queue.served())
      .field("rejected", queue.rejectedCount())
      .field("ewma_service_sec", queue.ewmaServiceSec())
      .endObject();
  w.endObject();
  DPS_CHECK(w.closed(), "unbalanced server_load JSON");
  return bench::finish("server_load", args.opts, nullptr,
                       "\"load\":" + extra.str() + ",\"metrics\":" + registry.jsonString());
}
