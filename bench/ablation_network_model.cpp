// Ablation A1 — what the equal-share network contention model buys
// (paper §1: unlike simulators that "assume that network contention is
// inexistent", this simulator models it).
//
// Method: predict the comm-heavy fine-granularity LU configurations with
// the full model and with contention disabled, and compare both against
// the high-fidelity reference.  The contention-free model must be
// noticeably more optimistic on comm-heavy runs.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace dps;

int main() {
  exp::ScenarioRunner runner(bench::paperSettings());

  std::printf("Ablation: network contention model on/off\n\n");
  Table t;
  t.header({"config", "reference [s]", "full model [s]", "no contention [s]",
            "err full", "err no-contention"});

  double worstFull = 0, worstAblated = 0;
  for (std::int32_t r : {81, 108, 162}) {
    auto cfg = bench::paperLu(r, 8);
    cfg.pipelined = true; // pipelined runs overlap transfers the most

    const auto obs = runner.run(cfg, {}, 21);
    auto ablatedCfg = runner.predictorConfig();
    ablatedCfg.networkContention = false;
    const auto ablated = runner.runOne(cfg, false, {}, 21, ablatedCfg);
    const double tAblated = toSeconds(ablated.makespan);

    const double errFull = obs.error();
    const double errAblated = (tAblated - obs.measuredSec) / obs.measuredSec;
    worstFull = std::max(worstFull, std::abs(errFull));
    worstAblated = std::max(worstAblated, std::abs(errAblated));
    t.row({"P r=" + std::to_string(r), Table::num(obs.measuredSec, 1),
           Table::num(obs.predictedSec, 1), Table::num(tAblated, 1),
           Table::pct(errFull, 1), Table::pct(errAblated, 1)});
  }
  t.print(std::cout);
  std::printf("\n");

  bench::check(worstAblated > worstFull,
               "disabling contention degrades prediction accuracy on comm-heavy runs");
  bench::check(worstFull < 0.08, "full model stays within 8% on comm-heavy runs");
  return bench::finish();
}
