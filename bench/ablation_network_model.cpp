// Ablation A1 — what the equal-share network contention model buys
// (paper §1: unlike simulators that "assume that network contention is
// inexistent", this simulator models it).
//
// Method: predict the comm-heavy fine-granularity LU configurations with
// the full model and with contention disabled, and compare both against
// the high-fidelity reference.  The contention-free model must be
// noticeably more optimistic on comm-heavy runs.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"

using namespace dps;

int main(int argc, char** argv) {
  const auto opts = bench::BenchArgs::parse(argc, argv).opts;

  const std::vector<std::int32_t> rs{81, 108, 162};
  exp::Campaign campaign(bench::paperSettings());
  std::vector<lu::LuConfig> cfgs;
  std::vector<std::size_t> obsIdx;
  for (std::int32_t r : rs) {
    auto cfg = bench::paperLu(r, 8);
    cfg.pipelined = true; // pipelined runs overlap transfers the most
    obsIdx.push_back(campaign.add(cfg, {}, /*fidelitySeed=*/21));
    cfgs.push_back(cfg);
  }
  // One shared caller-participates pool serves the campaign and the
  // ablated legs.
  ThreadPool pool(bench::poolWorkers(opts));
  const auto result = campaign.run(pool);

  // Ablated predictor legs, fanned out the same way.
  auto ablatedCfg = campaign.runner().predictorConfig();
  ablatedCfg.networkContention = false;
  std::vector<double> tAblated(cfgs.size());
  parallelFor(pool, cfgs.size(), [&](std::size_t i) {
    tAblated[i] = toSeconds(campaign.runner().runOne(cfgs[i], false, {}, 21, ablatedCfg).makespan);
  });

  std::printf("Ablation: network contention model on/off\n\n");
  Table t;
  t.header({"config", "reference [s]", "full model [s]", "no contention [s]",
            "err full", "err no-contention"});

  double worstFull = 0, worstAblated = 0;
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const auto& obs = result.observations[obsIdx[i]];
    const double errFull = obs.error();
    const double errAblated = (tAblated[i] - obs.measuredSec) / obs.measuredSec;
    worstFull = std::max(worstFull, std::abs(errFull));
    worstAblated = std::max(worstAblated, std::abs(errAblated));
    t.row({"P r=" + std::to_string(rs[i]), Table::num(obs.measuredSec, 1),
           Table::num(obs.predictedSec, 1), Table::num(tAblated[i], 1),
           Table::pct(errFull, 1), Table::pct(errAblated, 1)});
  }
  t.print(std::cout);
  std::printf("\n");

  bench::check(worstAblated > worstFull,
               "disabling contention degrades prediction accuracy on comm-heavy runs");
  bench::check(worstFull < 0.08, "full model stays within 8% on comm-heavy runs");
  return bench::finish("ablation_network_model", opts, &result);
}
