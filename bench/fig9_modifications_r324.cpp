// Figure 9 — PM / P / FC modifications on 4 nodes with r=324 (eight column
// blocks, two per node); reference = basic flow graph, r=324 (paper §8).
//
// Paper shape: with the well-balanced r=324 decomposition, the extra
// communication of parallel sub-block multiplications (PM) *slows the
// execution down*, while pipelining (P) and flow control (FC) bring small
// improvements; prediction errors stay below 5%.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"

using namespace dps;

int main(int argc, char** argv) {
  const auto opts = bench::BenchArgs::parse(argc, argv).opts;

  exp::Campaign campaign(bench::paperSettings());
  const std::size_t iRef = campaign.add(bench::paperLu(324, 4), {}, /*fidelitySeed=*/9);

  struct Entry {
    std::string label;
    std::size_t idx = 0;
  };
  std::vector<Entry> entries;
  auto add = [&](std::string label, bool p, bool pm, bool fc) {
    auto cfg = bench::paperLu(324, 4);
    cfg.pipelined = p;
    cfg.parallelMult = pm;
    cfg.flowControl = fc;
    entries.push_back({std::move(label), campaign.add(cfg, {}, 9)});
  };
  add("PM", false, true, false);
  add("P", true, false, false);
  add("P+PM", true, true, false);
  add("P+FC", true, false, true);
  add("P+PM+FC", true, true, true);

  const auto result = campaign.run(opts.jobs);
  const auto& reference = result.observations[iRef];
  std::printf("Figure 9 reproduction: LU 2592^2, 4 nodes, reference Basic r=324\n");
  std::printf("reference: measured %.1fs, predicted %.1fs (paper reference: 101.8s)\n\n",
              reference.measuredSec, reference.predictedSec);

  Table t;
  t.header({"variant", "measured [s]", "predicted [s]", "improvement (meas)",
            "improvement (pred)", "pred err"});
  double worstPredErr = 0;
  auto gain = [&](const exp::Observation& o) { return reference.measuredSec / o.measuredSec; };
  for (const auto& [label, idx] : entries) {
    const auto& obs = result.observations[idx];
    t.row({label, Table::num(obs.measuredSec, 1), Table::num(obs.predictedSec, 1),
           Table::num(gain(obs), 3),
           Table::num(reference.predictedSec / obs.predictedSec, 3),
           Table::pct(obs.error(), 1)});
    worstPredErr = std::max(worstPredErr, std::abs(obs.error()));
  }
  t.print(std::cout);
  std::printf("\npaper: PM ~0.95 (slowdown), P/FC ~1.0-1.05; prediction errors below 5%%\n\n");

  auto find = [&](const std::string& l) -> const exp::Observation& {
    for (const auto& e : entries)
      if (e.label == l) return result.observations[e.idx];
    throw Error("missing entry");
  };
  bench::check(gain(find("PM")) < 1.0,
               "PM slows execution down at r=324 (extra sub-block communication)");
  bench::check(gain(find("P+PM")) < gain(find("P")),
               "adding PM to P makes it worse");
  bench::check(gain(find("P")) >= 1.0, "pipelining alone does not hurt");
  bench::check(gain(find("P+FC")) >= gain(find("P")),
               "flow control adds on top of pipelining");
  bench::check(worstPredErr < 0.05, "prediction errors below 5% (paper Fig. 9 caption)");
  return bench::finish("fig9_modifications_r324", opts, &result);
}
