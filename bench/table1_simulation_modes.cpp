// Table 1 — simulation times, memory consumption and predicted running
// times under the three simulation settings (paper §7):
//   direct execution / PDEXEC / PDEXEC + NOALLOC,
// plus the real-application references and the host-portability argument.
//
// Substitutions (DESIGN.md §4): the "real application" rows come from the
// high-fidelity virtual cluster (UltraSparc-440 platform profile); wall
// times and peak heap of the simulator process itself are measured for
// real on this host (dps_memtrack is linked into this binary).
// The simulator rows stay strictly serial whatever --jobs says: they report
// the process-wide peak heap, which concurrent runs would pollute.  Only the
// two reference-executor rows (no memory column) fan out.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "lu/app.hpp"
#include "support/memtrack.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

using namespace dps;

namespace {

struct Row {
  std::string label;
  double wallSec = 0;
  std::size_t peakMb = 0;
  double predictedSec = -1; // -1 = N/A
};

Row measure(const std::string& label, core::SimConfig cfg, const lu::LuConfig& lucfg,
            const lu::KernelCostModel& model, bool allocate,
            std::shared_ptr<lu::KernelSampler> sampler = nullptr) {
  memtrack::resetPeak();
  const std::size_t base = memtrack::currentBytes();
  core::SimEngine engine(cfg);
  lu::LuBuild build = lu::buildLu(lucfg, model, allocate, std::move(sampler));
  auto result = lu::runLu(engine, build);
  lu::checkOutputs(lucfg, result);
  Row row;
  row.label = label;
  row.wallSec = result.wallSeconds;
  row.peakMb = (memtrack::peakBytes() - std::min(base, memtrack::peakBytes())) >> 20;
  row.predictedSec = toSeconds(result.makespan);
  return row;
}

} // namespace

int main(int argc, char** argv) {
  const auto opts = bench::BenchArgs::parse(argc, argv).opts;

  const auto lucfg = bench::paperLu(216, 8); // the Table 1 configuration
  const auto usModel = lu::KernelCostModel::ultraSparc440();
  exp::ScenarioRunner runner(bench::paperSettings());

  std::printf("Table 1 reproduction: LU 2592x2592, r=216, 8 nodes, basic flow graph\n");
  std::printf("(virtual platform: %s; simulation host: this machine)\n\n",
              runner.settings().profile.name.c_str());

  Table t;
  t.header({"setting", "sim wall [s]", "peak mem [MB]", "predicted app time [s]"});

  // --- "real application" references on the virtual cluster (no memory
  // column: these two legs may run concurrently) ---
  double realParallel = 0, realSerial = 0;
  parallelFor(2, opts.jobs, [&](std::size_t leg) {
    if (leg == 0) {
      core::SimEngine refEngine(runner.referenceConfig(/*fidelitySeed=*/1));
      lu::LuBuild refBuild = lu::buildLu(lucfg, usModel, false);
      realParallel = toSeconds(lu::runLu(refEngine, refBuild).makespan);
    } else {
      auto serialCfg = lucfg;
      serialCfg.workers = 1;
      core::SimEngine serialEngine(runner.referenceConfig(1));
      lu::LuBuild serialBuild = lu::buildLu(serialCfg, usModel, false);
      realSerial = toSeconds(lu::runLu(serialEngine, serialBuild).makespan);
    }
  });

  t.row({"real application (8 nodes, reference executor)", "-", "-",
         Table::num(realParallel, 1)});
  t.row({"real application (1 node, reference executor)", "-", "-", Table::num(realSerial, 1)});

  // --- simulator rows, measured for real on this host ---
  // Direct execution: kernels run, durations measured -> predictions are in
  // *this host's* time units (the paper's point about representativeness).
  core::SimConfig direct;
  direct.profile = runner.calibratedProfile();
  direct.mode = core::ExecutionMode::DirectExec;
  const Row rowDirect = measure("direct execution (sim, host kernels)", direct, lucfg,
                                usModel, /*allocate=*/true);

  core::SimConfig pdexec;
  pdexec.profile = runner.calibratedProfile();
  pdexec.mode = core::ExecutionMode::Pdexec;
  const Row rowPdexec =
      measure("PDEXEC (sim)", pdexec, lucfg, usModel, /*allocate=*/true);

  core::SimConfig noalloc = pdexec;
  noalloc.allocatePayloads = false;
  const Row rowNoalloc =
      measure("PDEXEC NOALLOC (sim)", noalloc, lucfg, usModel, /*allocate=*/false);

  // Host-calibrated PDEXEC: predictions for *this* host, comparable with
  // the direct-execution row.
  const auto hostModel = lu::KernelCostModel::calibrateHost();
  const Row rowHostCal = measure("PDEXEC (sim, host-calibrated model)", pdexec, lucfg,
                                 hostModel, /*allocate=*/true);

  // The paper's first-n-instances mode (§4): execute + measure the first
  // three instances of each kernel shape, charge the average afterwards.
  auto sampler = std::make_shared<lu::KernelSampler>(3);
  const Row rowSampled = measure("PDEXEC (sim, first-3-instances sampling)", pdexec, lucfg,
                                 usModel, /*allocate=*/true, sampler);

  auto addRow = [&](const Row& r) {
    t.row({r.label, Table::num(r.wallSec, 2), std::to_string(r.peakMb),
           r.predictedSec < 0 ? "-" : Table::num(r.predictedSec, 1)});
  };
  addRow(rowDirect);
  addRow(rowHostCal);
  addRow(rowSampled);
  addRow(rowPdexec);
  addRow(rowNoalloc);
  t.print(std::cout);

  std::printf("\npaper reference (UltraSparc II 440 MHz): real 62.3 s / serial 185.1 s;\n");
  std::printf("direct-exec sim 193.0 s/127 MB; PDEXEC 9.1 s/124 MB; NOALLOC 6.5 s/14 MB;\n");
  std::printf("predictions 60.7 / 60.3 / 59.9 s (within 1.4%%)\n\n");

  // --- shape checks (paper §7 claims) ---
  bench::check(realSerial / realParallel > 2.0 && realSerial / realParallel < 4.0,
               "8-node speedup over serial is ~3x (paper: 185.1/62.3 = 2.97)");
  bench::check(rowDirect.wallSec > 5.0 * rowPdexec.wallSec,
               "PDEXEC simulation is much faster than direct execution");
  bench::check(rowNoalloc.wallSec <= rowPdexec.wallSec * 1.2,
               "NOALLOC is at least as fast as PDEXEC");
  bench::check(rowPdexec.peakMb >= 5 * std::max<std::size_t>(rowNoalloc.peakMb, 1),
               "NOALLOC cuts simulation memory by ~10x (paper: 124 MB -> 14 MB)");
  bench::check(rowPdexec.predictedSec == rowNoalloc.predictedSec,
               "NOALLOC does not change the predicted running time");
  const double predVsReal = rowPdexec.predictedSec / realParallel;
  bench::check(predVsReal > 0.9 && predVsReal < 1.1,
               "PDEXEC prediction within 10% of the reference execution");
  // Portability: direct execution on this (faster) host predicts a
  // substantially shorter time than the UltraSparc-calibrated model —
  // "prediction results based on direct execution are not representative"
  // (§7).  The paper's hosts differed by 6.5x; this host's kernels are
  // ~2x the UltraSparc model, so we require a >=20% gap.
  bench::check(rowDirect.predictedSec < 0.8 * rowPdexec.predictedSec,
               "host direct-exec predictions are not representative of the target");
  const double calAgree = rowHostCal.predictedSec / rowDirect.predictedSec;
  bench::check(calAgree > 0.5 && calAgree < 2.0,
               "host-calibrated PDEXEC tracks direct execution on the same host");
  // The paper's PDEXEC validation: sampled-first-n predictions agree with
  // direct execution (60.3 s vs 60.7 s in Table 1) at a fraction of the
  // simulation cost.
  const double sampledAgree = rowSampled.predictedSec / rowDirect.predictedSec;
  bench::check(sampledAgree > 0.85 && sampledAgree < 1.15,
               "first-n-instances sampling predicts within 15% of direct execution");
  bench::check(rowSampled.wallSec < rowDirect.wallSec * 0.6,
               "sampling mode is much cheaper than full direct execution");

  return bench::finish("table1_simulation_modes", opts);
}
