// Microbenchmarks of the simulation infrastructure (google-benchmark):
// event-queue throughput, fair-share network replanning, the sizing
// serializer, thread-pool dispatch, and end-to-end simulator event rates.
//
// Scheduler hot-path history: the queue moved from std::priority_queue
// (whose top() forces a per-event Entry copy and whose storage cannot be
// pre-reserved) to an explicit reserved std::vector heap with move-only
// push/pop; BM_SchedulerThroughput and BM_SchedulerReuse are the
// before/after yardsticks for that path.
#include <benchmark/benchmark.h>

#include <atomic>

#include "core/engine.hpp"
#include "des/scheduler.hpp"
#include "lu/app.hpp"
#include "lu/builder.hpp"
#include "lu/objects.hpp"
#include "net/network.hpp"
#include "net/profile.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace dps;

void BM_SchedulerThroughput(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    des::Scheduler sched;
    for (std::size_t i = 0; i < n; ++i)
      sched.scheduleAfter(nanoseconds(static_cast<std::int64_t>((i * 7919) % 100000)), [] {});
    benchmark::DoNotOptimize(sched.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_SchedulerThroughput)->Arg(10000)->Arg(100000);

// Steady-state schedule/fire rate of a long-lived scheduler: reset() keeps
// the heap's reserved capacity, so refills never touch the allocator.
void BM_SchedulerReuse(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  des::Scheduler sched(n);
  for (auto _ : state) {
    sched.reset();
    for (std::size_t i = 0; i < n; ++i)
      sched.scheduleAfter(nanoseconds(static_cast<std::int64_t>((i * 7919) % 100000)), [] {});
    benchmark::DoNotOptimize(sched.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_SchedulerReuse)->Arg(10000)->Arg(100000);

// Fan-out overhead of the campaign substrate: items are trivial, so this
// measures claim/complete bookkeeping, not useful work.
void BM_ParallelForDispatch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ThreadPool pool(ThreadPool::hardwareJobs());
  std::atomic<std::uint64_t> sum{0};
  for (auto _ : state) {
    parallelFor(pool, n, [&](std::size_t i) { sum.fetch_add(i, std::memory_order_relaxed); });
  }
  benchmark::DoNotOptimize(sum.load());
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ParallelForDispatch)->Arg(64)->Arg(1024);

void BM_NetworkFairShare(benchmark::State& state) {
  const int transfers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    des::Scheduler sched;
    net::StarNetwork::Config cfg;
    cfg.latency = microseconds(100);
    cfg.bytesPerSec = 100e6;
    net::StarNetwork net(sched, cfg, 8);
    for (int i = 0; i < transfers; ++i)
      net.send(i % 8, (i + 1) % 8, 100000, [] {});
    sched.run();
    benchmark::DoNotOptimize(net.bytesSent());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(transfers) * state.iterations());
}
BENCHMARK(BM_NetworkFairShare)->Arg(64)->Arg(512);

void BM_SizingSerializer(benchmark::State& state) {
  lu::MultRequest req;
  req.a = lu::BlockPayload::phantomOf(324, 324);
  req.b = lu::BlockPayload::phantomOf(324, 324);
  for (auto _ : state) benchmark::DoNotOptimize(req.wireSize());
}
BENCHMARK(BM_SizingSerializer);

void BM_EncodeSerializer(benchmark::State& state) {
  lu::MultRequest req;
  req.a = lu::BlockPayload::fromMatrix(lin::testMatrix(1, 128));
  req.b = lu::BlockPayload::fromMatrix(lin::testMatrix(2, 128));
  for (auto _ : state) benchmark::DoNotOptimize(req.encode());
  state.SetBytesProcessed(static_cast<std::int64_t>(req.wireSize()) * state.iterations());
}
BENCHMARK(BM_EncodeSerializer);

void BM_LuSimulationEndToEnd(benchmark::State& state) {
  const auto r = static_cast<std::int32_t>(state.range(0));
  std::uint64_t steps = 0;
  for (auto _ : state) {
    lu::LuConfig cfg;
    cfg.n = 2592;
    cfg.r = r;
    cfg.workers = 8;
    core::SimConfig sc;
    sc.profile = net::ultraSparc440();
    sc.mode = core::ExecutionMode::Pdexec;
    sc.allocatePayloads = false;
    sc.recordTrace = false;
    core::SimEngine engine(sc);
    lu::LuBuild build = lu::buildLu(cfg, lu::KernelCostModel::ultraSparc440(), false);
    auto result = lu::runLu(engine, build);
    steps += result.counters.steps;
    benchmark::DoNotOptimize(result.makespan);
  }
  state.counters["steps/s"] = benchmark::Counter(static_cast<double>(steps),
                                                 benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LuSimulationEndToEnd)->Arg(324)->Arg(162)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
