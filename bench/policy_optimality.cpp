// Policy optimality bench: how close do the shipped scheduling policies
// get to the *provably optimal* schedule?
//
// The exhaustive explorer (sched::explore) is the oracle: on explorer-scale
// workloads (4 jobs on 8 nodes, dense arrivals) it enumerates every
// schedule any policy could produce and proves the optimal makespan and
// mean slowdown by branch-and-bound over the joint decision space.  Each
// seeded workload then scores the five policy configurations — the four
// policies plus fcfs-rigid under EASY backfill — as a percentage of
// optimal, and the [CHECK] claims pin the oracle contract: the optimum is
// proven (search complete), never beaten by any policy, and its decision
// trace replays through the instant machine bit-identically.
//
// The per-policy mean percentages land in BENCH_HISTORY.jsonl (direction:
// higher is better), so a scheduler change that walks a policy away from
// optimal fails the history gate.
#include <algorithm>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "sched/cluster.hpp"
#include "sched/explore.hpp"
#include "svc/profile_cache.hpp"

using namespace dps;

namespace {

struct PolicyCfg {
  std::string label;
  std::string policy;
  bool backfill = false;
};

std::vector<PolicyCfg> policyConfigs() {
  return {
      {"fcfs-rigid", "fcfs-rigid", false},
      {"fcfs-easy", "fcfs-rigid", true},
      {"equipartition", "equipartition", false},
      {"efficiency-shrink", "efficiency-shrink", false},
      {"grow-eager", "grow-eager", false},
  };
}

struct SeedScore {
  double optimalMakespan = 0;
  double optimalSlowdown = 0;
  std::vector<double> makespanPct; // per policy config
  std::vector<double> slowdownPct;
};

} // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, /*withSmoke=*/true);
  const std::int32_t nodes = 8;
  const std::int32_t jobCount = args.smoke ? 3 : 4;
  const std::vector<std::uint64_t> seeds =
      args.smoke ? std::vector<std::uint64_t>{1, 2} : std::vector<std::uint64_t>{1, 2, 3, 4, 5};
  const auto cfgs = policyConfigs();

  const sched::ProfileSettings settings;
  const auto classes = sched::exploreMix(nodes);
  const auto profiles = svc::buildProfileTable(classes, nodes, settings,
                                               bench::effectiveJobs(args.opts));
  const auto ccfg = sched::ClusterConfig::fromProfile(settings.platform, nodes);

  std::printf("oracle sweep: %zu seeds x (%zu policy configs + 2 exhaustive searches), "
              "%d jobs on %d nodes\n\n",
              seeds.size(), cfgs.size(), jobCount, nodes);

  std::vector<SeedScore> scores;
  for (const std::uint64_t seed : seeds) {
    sched::WorkloadConfig wcfg;
    wcfg.seed = seed;
    wcfg.jobCount = jobCount;
    wcfg.arrivalRatePerSec = 20.0;
    wcfg.classes = classes;
    const auto workload = sched::Workload::generate(wcfg, nodes);

    std::vector<sched::ClusterMetrics> runs;
    for (const PolicyCfg& pc : cfgs) {
      auto policy = sched::makePolicy(pc.policy);
      sched::ClusterConfig cc = ccfg;
      cc.easyBackfill = pc.backfill;
      runs.push_back(sched::simulateCluster(cc, workload, profiles, *policy));
    }
    double bestMakespan = runs.front().makespanSec;
    double bestSlowdown = runs.front().meanSlowdown;
    for (const auto& m : runs) {
      bestMakespan = std::min(bestMakespan, m.makespanSec);
      bestSlowdown = std::min(bestSlowdown, m.meanSlowdown);
    }

    sched::ExploreLimits mkLimits;
    mkLimits.upperBound = bestMakespan;
    const auto mk = sched::exploreOptimal(ccfg, workload, profiles,
                                          sched::ExploreObjective::Makespan, mkLimits);
    sched::ExploreLimits slLimits;
    slLimits.upperBound = bestSlowdown;
    const auto sl = sched::exploreOptimal(ccfg, workload, profiles,
                                          sched::ExploreObjective::MeanSlowdown, slLimits);
    const std::string tag = "seed " + std::to_string(seed);
    bench::check(mk.found && mk.stats.complete && sl.found && sl.stats.complete,
                 tag + ": both optima proven (searches complete)");
    const auto mkReplay = sched::replayTrace(ccfg, workload, profiles, mk.trace);
    bench::check(mkReplay.makespanSec == mk.makespanSec,
                 tag + ": optimal trace replays bit-identically");

    SeedScore s;
    s.optimalMakespan = mk.makespanSec;
    s.optimalSlowdown = sl.meanSlowdown;
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
      bench::check(mk.makespanSec <= runs[i].makespanSec + 1e-9,
                   tag + ": optimum <= " + cfgs[i].label + " makespan");
      s.makespanPct.push_back(100.0 * mk.makespanSec / runs[i].makespanSec);
      s.slowdownPct.push_back(100.0 * sl.meanSlowdown / runs[i].meanSlowdown);
    }
    scores.push_back(std::move(s));
  }

  // Per-policy means across seeds; the history-gated series.
  std::vector<double> meanMk(cfgs.size(), 0), meanSl(cfgs.size(), 0);
  double meanBestMk = 0, meanBestSl = 0;
  for (const SeedScore& s : scores) {
    meanBestMk += *std::max_element(s.makespanPct.begin(), s.makespanPct.end());
    meanBestSl += *std::max_element(s.slowdownPct.begin(), s.slowdownPct.end());
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
      meanMk[i] += s.makespanPct[i];
      meanSl[i] += s.slowdownPct[i];
    }
  }
  const double n = static_cast<double>(scores.size());
  meanBestMk /= n;
  meanBestSl /= n;
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    meanMk[i] /= n;
    meanSl[i] /= n;
  }

  Table t("policy optimality, mean over " + std::to_string(seeds.size()) + " seeds (" +
          std::to_string(jobCount) + " jobs, " + std::to_string(nodes) + " nodes)");
  t.header({"policy", "makespan % of optimal", "slowdown % of optimal"});
  for (std::size_t i = 0; i < cfgs.size(); ++i)
    t.row({cfgs[i].label, Table::num(meanMk[i], 1), Table::num(meanSl[i], 1)});
  t.row({"(best per seed)", Table::num(meanBestMk, 1), Table::num(meanBestSl, 1)});
  t.print(std::cout);

  bench::check(meanBestMk > 0 && meanBestMk <= 100.0 + 1e-9,
               "best-policy makespan percentage is in (0, 100]");
  bench::check(meanBestSl > 0 && meanBestSl <= 100.0 + 1e-9,
               "best-policy slowdown percentage is in (0, 100]");
  // Dense arrivals mean real contention: if every policy were always
  // optimal the oracle would be vacuous, so at least one configuration must
  // measurably trail the optimum somewhere in the sweep.
  double worstMk = 100.0;
  for (double v : meanMk) worstMk = std::min(worstMk, v);
  bench::check(worstMk < 99.0, "at least one policy measurably trails the optimum");
  // Malleability pays: the best adaptive policy dominates rigid fcfs on
  // makespan across the sweep (the paper's core premise at cluster scale).
  const auto rigid = static_cast<std::size_t>(
      std::find_if(cfgs.begin(), cfgs.end(),
                   [](const PolicyCfg& c) { return c.label == "fcfs-rigid"; }) -
      cfgs.begin());
  bench::check(meanBestMk >= meanMk[rigid],
               "best adaptive config >= fcfs-rigid on mean makespan percentage");

  std::ostringstream extra;
  JsonWriter w(extra);
  w.beginObject();
  w.field("seeds", seeds.size())
      .field("job_count", jobCount)
      .field("nodes", nodes)
      .field("best_policy_makespan_pct", meanBestMk)
      .field("best_policy_slowdown_pct", meanBestSl);
  w.key("policies").beginArray();
  for (std::size_t i = 0; i < cfgs.size(); ++i)
    w.beginObject()
        .field("policy", cfgs[i].label)
        .field("backfill", cfgs[i].backfill)
        .field("makespan_pct_of_optimal", meanMk[i])
        .field("slowdown_pct_of_optimal", meanSl[i])
        .endObject();
  w.endArray().endObject();
  return bench::finish("policy_optimality", args.opts, nullptr, "\"optimality\":" + extra.str());
}
