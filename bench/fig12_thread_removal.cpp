// Figure 12 — total running times of the dynamic thread-removal
// strategies (paper §8): 4 threads, 8 threads, kill 4 after iteration 1,
// kill 4 after iteration 4, kill 2 after it. 2 + 2 after it. 3.
//
// Paper shape: late removal (after it. 4) costs essentially nothing vs the
// full 8-thread run; early removal costs far less than running on 4
// threads throughout; predictions track measurements.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"

using namespace dps;

int main() {
  exp::ScenarioRunner runner(bench::paperSettings());
  const auto cfg8 = bench::paperLu(324, 8);
  auto cfg4 = cfg8;
  cfg4.workers = 4;

  struct Entry {
    std::string label;
    exp::Observation obs;
  };
  std::vector<Entry> entries;
  entries.push_back({"4 threads", runner.run(cfg4, {}, 12)});
  entries.push_back({"8 threads", runner.run(cfg8, {}, 12)});
  entries.push_back({"8 thr, kill 4 after it. 1",
                     runner.run(cfg8, mall::AllocationPlan::killAfter({{1, {4, 5, 6, 7}}}), 12)});
  entries.push_back({"8 thr, kill 4 after it. 4",
                     runner.run(cfg8, mall::AllocationPlan::killAfter({{4, {4, 5, 6, 7}}}), 12)});
  entries.push_back(
      {"8 thr, kill 2 after it. 2 + 2 after it. 3",
       runner.run(cfg8, mall::AllocationPlan::killAfter({{2, {6, 7}}, {3, {4, 5}}}), 12)});

  std::printf("Figure 12 reproduction: running time under thread-removal strategies\n");
  std::printf("(2592^2, r=324, basic flow graph, 8 -> fewer nodes)\n\n");
  Table t;
  t.header({"strategy", "measured [s]", "predicted [s]", "pred err"});
  for (const auto& [label, obs] : entries)
    t.row({label, Table::num(obs.measuredSec, 1), Table::num(obs.predictedSec, 1),
           Table::pct(obs.error(), 1)});
  t.print(std::cout);
  std::printf("\npaper (values ~85-101s): kill4@4 ~ 8 threads; kill4@1 well below 4 threads\n\n");

  const double t4 = entries[0].obs.measuredSec;
  const double t8 = entries[1].obs.measuredSec;
  const double k41 = entries[2].obs.measuredSec;
  const double k44 = entries[3].obs.measuredSec;
  const double k22 = entries[4].obs.measuredSec;

  bench::check(t8 < t4, "8 threads faster than 4 threads");
  bench::check(k44 < t8 * 1.03, "killing 4 threads after iteration 4 costs almost nothing");
  bench::check(k41 < t4 * 0.97, "killing 4 after iteration 1 is clearly faster than 4 threads");
  bench::check(k41 >= t8 * 0.99, "early removal cannot beat the full 8-thread run");
  bench::check(k22 > k44 * 0.99 && k22 < k41 * 1.03,
               "staged removal lands between early and late removal");
  double worstErr = 0;
  for (const auto& e : entries) worstErr = std::max(worstErr, std::abs(e.obs.error()));
  bench::check(worstErr < 0.06, "predictions track removal strategies within 6%");
  return bench::finish();
}
