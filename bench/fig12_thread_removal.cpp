// Figure 12 — total running times of the dynamic thread-removal
// strategies (paper §8): 4 threads, 8 threads, kill 4 after iteration 1,
// kill 4 after iteration 4, kill 2 after it. 2 + 2 after it. 3.
//
// Paper shape: late removal (after it. 4) costs essentially nothing vs the
// full 8-thread run; early removal costs far less than running on 4
// threads throughout; predictions track measurements.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"

using namespace dps;

int main(int argc, char** argv) {
  const auto opts = bench::BenchArgs::parse(argc, argv).opts;

  const auto cfg8 = bench::paperLu(324, 8);
  auto cfg4 = cfg8;
  cfg4.workers = 4;

  exp::Campaign campaign(bench::paperSettings());
  struct Entry {
    std::string label;
    std::size_t idx = 0;
  };
  std::vector<Entry> entries;
  auto add = [&](std::string label, const lu::LuConfig& cfg, const mall::AllocationPlan& plan) {
    entries.push_back({std::move(label), campaign.add(cfg, plan, /*fidelitySeed=*/12)});
  };
  add("4 threads", cfg4, {});
  add("8 threads", cfg8, {});
  add("8 thr, kill 4 after it. 1", cfg8, mall::AllocationPlan::killAfter({{1, {4, 5, 6, 7}}}));
  add("8 thr, kill 4 after it. 4", cfg8, mall::AllocationPlan::killAfter({{4, {4, 5, 6, 7}}}));
  add("8 thr, kill 2 after it. 2 + 2 after it. 3", cfg8,
      mall::AllocationPlan::killAfter({{2, {6, 7}}, {3, {4, 5}}}));

  const auto result = campaign.run(opts.jobs);

  std::printf("Figure 12 reproduction: running time under thread-removal strategies\n");
  std::printf("(2592^2, r=324, basic flow graph, 8 -> fewer nodes)\n\n");
  Table t;
  t.header({"strategy", "measured [s]", "predicted [s]", "pred err"});
  for (const auto& [label, idx] : entries) {
    const auto& obs = result.observations[idx];
    t.row({label, Table::num(obs.measuredSec, 1), Table::num(obs.predictedSec, 1),
           Table::pct(obs.error(), 1)});
  }
  t.print(std::cout);
  std::printf("\npaper (values ~85-101s): kill4@4 ~ 8 threads; kill4@1 well below 4 threads\n\n");

  const double t4 = result.observations[entries[0].idx].measuredSec;
  const double t8 = result.observations[entries[1].idx].measuredSec;
  const double k41 = result.observations[entries[2].idx].measuredSec;
  const double k44 = result.observations[entries[3].idx].measuredSec;
  const double k22 = result.observations[entries[4].idx].measuredSec;

  bench::check(t8 < t4, "8 threads faster than 4 threads");
  bench::check(k44 < t8 * 1.03, "killing 4 threads after iteration 4 costs almost nothing");
  bench::check(k41 < t4 * 0.97, "killing 4 after iteration 1 is clearly faster than 4 threads");
  bench::check(k41 >= t8 * 0.99, "early removal cannot beat the full 8-thread run");
  bench::check(k22 > k44 * 0.99 && k22 < k41 * 1.03,
               "staged removal lands between early and late removal");
  double worstErr = 0;
  for (const auto& e : entries)
    worstErr = std::max(worstErr, std::abs(result.observations[e.idx].error()));
  bench::check(worstErr < 0.06, "predictions track removal strategies within 6%");
  return bench::finish("fig12_thread_removal", opts, &result);
}
