// Cluster event-loop scaling curve + interpolated-profile validation.
//
// Two claims from the "make the cluster loop fast at 10,000x today's scale"
// push, measured and [CHECK]-asserted:
//
//   1. Event-loop throughput.  A (job-count x nodes) grid of saturated
//      EASY-backfill runs reports wall time, events/sec and jobs/sec for
//      the optimized simulateCluster; at the comparison point the
//      pre-optimization loop (simulateClusterReference) runs the identical
//      configuration and must be >= 10x slower per event — while producing
//      bit-identical metrics JSON, so the speedup is an optimization, not a
//      behaviour change.  Saturation matters: an idle cluster never
//      exercises the backfill scan whose full-array rebuild was the
//      quadratic wall.
//
//   2. Interpolated profile tables.  The scaled mix (dense malleability
//      levels) is profiled from anchor engine runs only; the anchor-run
//      reduction must be >= 4x, anchor entries must be served back from the
//      profile cache bit-for-bit, and the synthesized entries are validated
//      end-to-end by the replay harness: jobs pinned to *non-anchor*
//      allocations run a full engine simulation (static replay) and the
//      aggregate |makespan error| of the interpolated prediction must stay
//      under 5%.
//
// JSON artifact (CLUSTER_scale.json): the grid, the baseline comparison and
// the interpolation error block, consumed by CI assertions and the bench
// dashboard.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/registry.hpp"
#include "sched/cluster.hpp"
#include "sched/replay.hpp"
#include "support/json.hpp"
#include "svc/profile_cache.hpp"

using namespace dps;

namespace {

double wallSec(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - since).count();
}

/// Pins every job to a predetermined allocation: admission asks for exactly
/// allocFor[id] and phase boundaries keep it, so each job's history is
/// constant — the static-replay shape that isolates pure profile error.
class PinnedAlloc final : public sched::Policy {
public:
  explicit PinnedAlloc(std::vector<std::int32_t> byJob) : byJob_(std::move(byJob)) {}
  std::string name() const override { return "pinned"; }
  std::int32_t admit(const sched::QueuedJobView& job, const sched::ClassProfile&,
                     const sched::ClusterView&, sched::DecisionContext& ctx) override {
    ctx.rule = "pinned";
    return byJob_.at(static_cast<std::size_t>(job.id));
  }
  std::int32_t reallocate(const sched::RunningJobView& job, const sched::ClassProfile&,
                          const sched::ClusterView&, sched::DecisionContext& ctx) override {
    ctx.rule = "pinned";
    return job.nodes;
  }

private:
  std::vector<std::int32_t> byJob_;
};

struct GridPoint {
  std::int32_t jobCount;
  std::int32_t nodes;
  double rate; // chosen to keep the machine saturated (queue + backfill hot)
};

} // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, /*withSmoke=*/true);
  const unsigned jobs = bench::effectiveJobs(args.opts);

  // ---------------------------------------------------------------- grid --
  // Saturated EASY-backfill runs under fcfs-rigid (the policy whose blocked
  // head triggers backfill passes constantly — the pre-optimization hot
  // spot).  The last point doubles as the reference-loop comparison point;
  // it is sized so the reference finishes in CI time even under sanitizers.
  const std::vector<GridPoint> grid =
      args.smoke ? std::vector<GridPoint>{{2000, 64, 8.0}, {20000, 256, 30.0}, {20000, 64, 8.0}}
                 : std::vector<GridPoint>{{10000, 64, 8.0},
                                          {50000, 256, 30.0},
                                          {100000, 1024, 120.0},
                                          {100000, 4096, 480.0},
                                          {20000, 64, 8.0}};

  std::int32_t maxNodes = 0;
  for (const GridPoint& g : grid) maxNodes = std::max(maxNodes, g.nodes);

  const sched::ProfileSettings settings;
  svc::ProfileCache cache;
  // The default mix tops out at 8 workers, so one small profile table
  // serves every grid point (same class set at any cluster size).
  const auto classes = sched::Workload::defaultMix(maxNodes);
  const auto profiles = svc::buildProfileTable(classes, maxNodes, settings, jobs, cache);

  Table t("event-loop scaling (fcfs-rigid + EASY backfill, saturated arrivals)");
  t.header({"jobs", "nodes", "rate [1/s]", "wall [s]", "events", "events/s", "jobs/s",
            "mean slowdown"});
  std::ostringstream gridJson;
  JsonWriter gw(gridJson);
  gw.beginArray();
  sched::ClusterMetrics lastOpt;
  sched::ClusterConfig lastCfg;
  sched::Workload lastWorkload;
  double lastWall = 0;
  // Every grid point records into one registry under its own prefix; the
  // reference loop re-records the comparison point under "reference." so
  // the two loops' observability can be compared counter-for-counter.
  obs::Registry registry;
  std::string comparisonPrefix;
  for (const GridPoint& g : grid) {
    sched::WorkloadConfig wcfg;
    wcfg.seed = 1;
    wcfg.jobCount = g.jobCount;
    wcfg.arrivalRatePerSec = g.rate;
    wcfg.classes = classes;
    const auto workload = sched::Workload::generate(wcfg, g.nodes);

    auto ccfg = sched::ClusterConfig::fromProfile(settings.platform, g.nodes);
    ccfg.easyBackfill = true;
    // SLURM-style bounded backfill (bf_max_job_test analogue).  Unlimited
    // depth makes every blocked-head pass O(queue) in BOTH loops — the
    // shared candidate walk, not this PR's target — and no production
    // scheduler runs EASY unbounded at this queue depth anyway.
    ccfg.backfillDepth = 100;
    ccfg.metrics = &registry;
    ccfg.metricsPrefix =
        "grid." + std::to_string(g.jobCount) + "x" + std::to_string(g.nodes) + ".";
    comparisonPrefix = ccfg.metricsPrefix;
    sched::FcfsRigid policy;
    const auto start = std::chrono::steady_clock::now();
    const auto m = sched::simulateCluster(ccfg, workload, profiles, policy);
    const double wall = wallSec(start);
    const double evPerSec = wall > 0 ? static_cast<double>(m.events) / wall : 0;
    const double jobsPerSec = wall > 0 ? static_cast<double>(g.jobCount) / wall : 0;
    t.row({std::to_string(g.jobCount), std::to_string(g.nodes), Table::num(g.rate, 1),
           Table::num(wall, 2), std::to_string(m.events), Table::num(evPerSec, 0),
           Table::num(jobsPerSec, 0), Table::num(m.meanSlowdown, 2)});
    bench::check(m.utilization > 0.5,
                 std::to_string(g.jobCount) + " jobs / " + std::to_string(g.nodes) +
                     " nodes: grid point is actually saturated (utilization > 50%)");
    gw.beginObject()
        .field("job_count", g.jobCount)
        .field("nodes", g.nodes)
        .field("rate", g.rate)
        .field("backfill_depth", ccfg.backfillDepth)
        .field("wall_sec", wall)
        .field("events", m.events)
        .field("events_per_sec", evPerSec)
        .field("jobs_per_sec", jobsPerSec)
        .field("makespan_sec", m.makespanSec)
        .field("utilization", m.utilization)
        .field("mean_slowdown", m.meanSlowdown);
    {
      std::ostringstream attr;
      m.writeAttributionJson(attr);
      gw.key("wait_attr").raw(attr.str());
    }
    gw.endObject();
    lastOpt = m;
    lastCfg = ccfg;
    lastWorkload = workload;
    lastWall = wall;
  }
  gw.endArray();
  DPS_CHECK(gw.closed(), "unbalanced grid JSON");
  t.print(std::cout);

  // ---------------------------------------------- reference-loop baseline --
  // The pre-optimization loop on the comparison point: same config, same
  // workload, same profiles.  Its per-event cost carries the full-array
  // backfill rebuild and per-query tail sums, so the ratio is the measured
  // value of this PR's hot-path work.
  std::printf("\nrunning the pre-optimization reference loop on the comparison point "
              "(%d jobs / %d nodes)...\n",
              lastWorkload.cfg.jobCount, lastCfg.nodes);
  sched::FcfsRigid refPolicy;
  lastCfg.metricsPrefix = "reference.";
  const auto refStart = std::chrono::steady_clock::now();
  const auto refMetrics =
      sched::simulateClusterReference(lastCfg, lastWorkload, profiles, refPolicy);
  const double refWall = wallSec(refStart);
  const double speedup = lastWall > 0 ? refWall / lastWall : 0;
  const bool identical = refMetrics.jsonString() == lastOpt.jsonString();
  std::printf("reference: %.2fs, optimized: %.2fs -> %.1fx\n", refWall, lastWall, speedup);
  bench::check(identical,
               "optimized loop bit-identical to the reference loop (full metrics JSON)");
  // The observability layer must be loop-independent too: both loops fold
  // the same run facts into the registry, prefix aside.
  const auto snap = registry.snapshot();
  bool obsIdentical = true;
  for (const char* key :
       {"events_processed", "jobs_finished", "reallocations", "backfill_fires"})
    obsIdentical = obsIdentical && snap.counter(comparisonPrefix + key) ==
                                       snap.counter(std::string("reference.") + key);
  bench::check(obsIdentical,
               "optimized and reference loops record identical obs counters");
  bench::check(speedup >= 10.0, "optimized event loop >= 10x reference throughput "
                                "at the comparison point (got " +
                                    Table::num(speedup, 1) + "x)");

  // ----------------------------------------------- interpolated profiles --
  // Dense-malleability scaled mix at 48 nodes: anchors only on the engine.
  const std::int32_t interpNodes = 48;
  const auto scaled = sched::Workload::scaledMix(interpNodes);
  svc::ProfileCache interpCache;
  sched::ProfileBuildOptions popts; // interpolate = true, auto anchors
  const auto interpStart = std::chrono::steady_clock::now();
  const auto interp =
      svc::buildProfileTable(scaled, interpNodes, settings, jobs, interpCache, popts);
  const double interpWall = wallSec(interpStart);
  const auto& binfo = interp.buildInfo();
  std::printf("\ninterpolated scaled-mix table: %zu engine runs for %zu allocation points "
              "(%.1fx reduction, %.1fs)\n",
              binfo.engineRunPoints, binfo.profiledAllocs, binfo.runReduction(), interpWall);
  bench::check(binfo.runReduction() >= 4.0,
               "anchor engine runs reduced >= 4x vs exhaustive profiling (got " +
                   Table::num(binfo.runReduction(), 1) + "x)");

  // Anchor entries must be the engine profiles bit-for-bit: re-acquiring
  // every anchor through the same cache must hit (no new engine runs) and
  // return exactly the table's stored profile.
  const auto runsBefore = interpCache.stats().engineRuns;
  bool anchorsExact = true;
  for (std::size_t c = 0; c < interp.classCount(); ++c) {
    const auto& cp = interp.of(c);
    const auto full = sched::feasibleAllocations(scaled[c], interpNodes);
    const auto anchors = sched::InterpolatedProfile::pickAnchors(
        full, sched::InterpolatedProfile::autoAnchorCount(full.size()));
    const auto again = svc::acquireProfile(settings, scaled[c], anchors, jobs, interpCache);
    for (std::size_t a = 0; a < anchors.size(); ++a) {
      const auto& fresh = again.at(anchors[a]);
      const auto& stored = cp.at(anchors[a]);
      anchorsExact = anchorsExact && fresh.totalSec == stored.totalSec &&
                     fresh.phaseSec == stored.phaseSec && fresh.phaseEff == stored.phaseEff;
    }
  }
  bench::check(anchorsExact, "interpolated table reproduces anchor engine profiles bit-for-bit");
  bench::check(interpCache.stats().engineRuns == runsBefore,
               "re-acquiring anchors is pure cache hits (no new engine runs)");

  // Replay validation of the synthesized entries: pin each job of a small
  // workload to a NON-anchor allocation of its class, simulate, then replay
  // the constant histories on the real engine (static mode).  The
  // prediction error is pure interpolation error.
  sched::WorkloadConfig wcfg;
  wcfg.seed = 7;
  wcfg.jobCount = 12;
  wcfg.arrivalRatePerSec = 0.01; // light load: every pinned job gets its nodes
  wcfg.classes = scaled;
  const auto interpWorkload = sched::Workload::generate(wcfg, interpNodes);
  std::vector<std::int32_t> pinned(interpWorkload.jobs.size(), 0);
  std::vector<std::size_t> perClassPick(scaled.size(), 0);
  for (const auto& job : interpWorkload.jobs) {
    const auto full = sched::feasibleAllocations(scaled[job.klass], interpNodes);
    const auto anchors = sched::InterpolatedProfile::pickAnchors(
        full, sched::InterpolatedProfile::autoAnchorCount(full.size()));
    std::vector<std::int32_t> nonAnchors;
    for (std::int32_t a : full)
      if (!std::binary_search(anchors.begin(), anchors.end(), a)) nonAnchors.push_back(a);
    DPS_CHECK(!nonAnchors.empty(), "scaled-mix class with no non-anchor allocations");
    pinned[static_cast<std::size_t>(job.id)] =
        nonAnchors[perClassPick[job.klass]++ % nonAnchors.size()];
  }
  PinnedAlloc pinPolicy(pinned);
  auto interpCcfg = sched::ClusterConfig::fromProfile(settings.platform, interpNodes);
  const auto pinMetrics = sched::simulateCluster(interpCcfg, interpWorkload, interp, pinPolicy);

  std::printf("replaying %zu non-anchor pinned jobs in-engine (--jobs %u)...\n",
              pinMetrics.jobs.size(), jobs);
  sched::ReplaySettings rs;
  rs.engine = settings;
  rs.jobs = jobs;
  rs.runner = svc::cachedRunner(interpCache);
  const auto report = sched::replaySchedule(pinMetrics, interpWorkload, interp, rs);
  std::printf("interpolation error vs engine: mean %+.2f%%, |mean| %.2f%%, |max| %.2f%% over "
              "%d replayed jobs\n",
              report.meanMakespanError * 100.0, report.meanAbsMakespanError * 100.0,
              report.maxAbsMakespanError * 100.0, report.replayed);
  bench::check(report.replayed == static_cast<std::int32_t>(pinMetrics.jobs.size()),
               "every pinned job replays (constant histories are static-mode)");
  bench::check(report.meanAbsMakespanError < 0.05,
               "interpolated profiles within 5% aggregate makespan error (replay-validated, "
               "got " +
                   Table::num(report.meanAbsMakespanError * 100.0, 2) + "%)");

  std::ostringstream extra;
  {
    JsonWriter w(extra);
    w.beginObject()
        .field("comparison_job_count", lastWorkload.cfg.jobCount)
        .field("comparison_nodes", lastCfg.nodes)
        .field("reference_wall_sec", refWall)
        .field("optimized_wall_sec", lastWall)
        .field("speedup", speedup)
        .field("identical", identical)
        .endObject();
    DPS_CHECK(w.closed(), "unbalanced baseline JSON");
  }
  std::ostringstream interpJson;
  {
    JsonWriter w(interpJson);
    w.beginObject()
        .field("nodes", interpNodes)
        .field("engine_runs", static_cast<std::uint64_t>(binfo.engineRunPoints))
        .field("alloc_points", static_cast<std::uint64_t>(binfo.profiledAllocs))
        .field("run_reduction", binfo.runReduction())
        .field("build_wall_sec", interpWall)
        .field("replayed", report.replayed)
        .field("mean_makespan_error", report.meanMakespanError)
        .field("mean_abs_makespan_error", report.meanAbsMakespanError)
        .field("max_abs_makespan_error", report.maxAbsMakespanError)
        .endObject();
    DPS_CHECK(w.closed(), "unbalanced interpolation JSON");
  }
  const std::string extraJson = "\"grid\":" + gridJson.str() + ",\"baseline\":" + extra.str() +
                                ",\"interpolation\":" + interpJson.str() +
                                ",\"metrics\":" + registry.jsonString();
  return bench::finish("cluster_scale", args.opts, nullptr, extraJson);
}
