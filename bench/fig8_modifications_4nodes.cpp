// Figure 8 — impact of the flow-graph modifications and decomposition
// granularity on 4 nodes; reference = basic graph, r=648 (paper §8).
//
// Paper shape: PM / P / FC tweaks bring only a few percent, "negligible
// compared with the gains obtained by simply changing the decomposition
// granularity"; the best granularity beats the reference severalfold, and
// predictions stay within a few percent of measurements.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "support/stats.hpp"

using namespace dps;

int main() {
  exp::ScenarioRunner runner(bench::paperSettings());

  struct Entry {
    std::string label;
    exp::Observation obs;
  };
  std::vector<Entry> entries;

  auto run = [&](std::string label, lu::LuConfig cfg) {
    entries.push_back({std::move(label), runner.run(cfg, {}, /*fidelitySeed=*/8)});
  };

  const auto reference = runner.run(bench::paperLu(648, 4), {}, 8);
  std::printf("Figure 8 reproduction: LU 2592^2, 4 nodes; reference Basic r=648\n");
  std::printf("reference: measured %.1fs, predicted %.1fs (paper reference: 259.4s)\n\n",
              reference.measuredSec, reference.predictedSec);

  // Graph modifications at the reference granularity.
  {
    auto cfg = bench::paperLu(648, 4);
    cfg.parallelMult = true;
    run("PM        r=648", cfg);
  }
  {
    auto cfg = bench::paperLu(648, 4);
    cfg.pipelined = true;
    run("P         r=648", cfg);
  }
  {
    auto cfg = bench::paperLu(648, 4);
    cfg.pipelined = true;
    cfg.parallelMult = true;
    run("P+PM      r=648", cfg);
  }
  {
    auto cfg = bench::paperLu(648, 4);
    cfg.pipelined = true;
    cfg.flowControl = true;
    run("P+FC      r=648", cfg);
  }
  {
    auto cfg = bench::paperLu(648, 4);
    cfg.pipelined = true;
    cfg.parallelMult = true;
    cfg.flowControl = true;
    run("P+PM+FC   r=648", cfg);
  }
  // Granularity changes (the dominant effect).
  for (std::int32_t r : {324, 216, 162, 108}) run("Basic     r=" + std::to_string(r),
                                                  bench::paperLu(r, 4));

  Table t;
  t.header({"variant", "measured [s]", "predicted [s]",
            "improvement (meas)", "improvement (pred)", "pred err"});
  double bestGranularityGain = 0;
  double bestTweakGain = 0;
  double worstPredErr = 0;
  for (const auto& [label, obs] : entries) {
    const double gainMeas = reference.measuredSec / obs.measuredSec;
    const double gainPred = reference.predictedSec / obs.predictedSec;
    t.row({label, Table::num(obs.measuredSec, 1), Table::num(obs.predictedSec, 1),
           Table::num(gainMeas, 2), Table::num(gainPred, 2), Table::pct(obs.error(), 1)});
    if (label.rfind("Basic", 0) == 0) bestGranularityGain = std::max(bestGranularityGain, gainMeas);
    else bestTweakGain = std::max(bestTweakGain, gainMeas);
    worstPredErr = std::max(worstPredErr, std::abs(obs.error()));
  }
  t.print(std::cout);
  std::printf("\npaper: graph tweaks ~3%%; best granularity ~3.5x; prediction within a few %%\n\n");

  bench::check(bestGranularityGain > 1.2,
               "changing granularity improves substantially over Basic r=648");
  bench::check(bestGranularityGain > bestTweakGain,
               "granularity gains dominate the PM/P/FC graph modifications");
  // Individual errors can reach several percent (the paper's own campaign
  // has a +-16% tail, Fig. 13); the curve as a whole must track closely.
  std::vector<double> errs;
  for (const auto& e : entries) errs.push_back(std::abs(e.obs.error()));
  bench::check(percentile(errs, 50) < 0.03, "median prediction error below 3%");
  bench::check(worstPredErr < 0.12, "worst prediction error within the paper's +-12% band");
  // The predictor's preferred configuration is (within noise) as good as
  // the true best — the property that makes the simulator usable as an
  // optimization tool (§4).
  std::string bestPred;
  double bp = 0, bm = 0;
  double bestPredMeasuredGain = 0;
  for (const auto& [label, obs] : entries) {
    bm = std::max(bm, reference.measuredSec / obs.measuredSec);
    if (reference.predictedSec / obs.predictedSec > bp) {
      bp = reference.predictedSec / obs.predictedSec;
      bestPred = label;
      bestPredMeasuredGain = reference.measuredSec / obs.measuredSec;
    }
  }
  bench::check(bestPredMeasuredGain > 0.97 * bm,
               "the simulator's preferred configuration is within 3% of the true best");
  return bench::finish();
}
