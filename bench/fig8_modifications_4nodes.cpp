// Figure 8 — impact of the flow-graph modifications and decomposition
// granularity on 4 nodes; reference = basic graph, r=648 (paper §8).
//
// Paper shape: PM / P / FC tweaks bring only a few percent, "negligible
// compared with the gains obtained by simply changing the decomposition
// granularity"; the best granularity beats the reference severalfold, and
// predictions stay within a few percent of measurements.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "support/stats.hpp"

using namespace dps;

int main(int argc, char** argv) {
  const auto opts = bench::BenchArgs::parse(argc, argv).opts;

  exp::Campaign campaign(bench::paperSettings());
  const std::size_t iRef = campaign.add(bench::paperLu(648, 4), {}, /*fidelitySeed=*/8);

  struct Entry {
    std::string label;
    std::size_t idx = 0;
  };
  std::vector<Entry> entries;
  auto add = [&](std::string label, const lu::LuConfig& cfg) {
    entries.push_back({std::move(label), campaign.add(cfg, {}, 8)});
  };

  // Graph modifications at the reference granularity.
  {
    auto cfg = bench::paperLu(648, 4);
    cfg.parallelMult = true;
    add("PM        r=648", cfg);
  }
  {
    auto cfg = bench::paperLu(648, 4);
    cfg.pipelined = true;
    add("P         r=648", cfg);
  }
  {
    auto cfg = bench::paperLu(648, 4);
    cfg.pipelined = true;
    cfg.parallelMult = true;
    add("P+PM      r=648", cfg);
  }
  {
    auto cfg = bench::paperLu(648, 4);
    cfg.pipelined = true;
    cfg.flowControl = true;
    add("P+FC      r=648", cfg);
  }
  {
    auto cfg = bench::paperLu(648, 4);
    cfg.pipelined = true;
    cfg.parallelMult = true;
    cfg.flowControl = true;
    add("P+PM+FC   r=648", cfg);
  }
  // Granularity changes (the dominant effect).
  for (std::int32_t r : {324, 216, 162, 108})
    add("Basic     r=" + std::to_string(r), bench::paperLu(r, 4));

  const auto result = campaign.run(opts.jobs);
  const auto& reference = result.observations[iRef];
  std::printf("Figure 8 reproduction: LU 2592^2, 4 nodes; reference Basic r=648\n");
  std::printf("reference: measured %.1fs, predicted %.1fs (paper reference: 259.4s)\n\n",
              reference.measuredSec, reference.predictedSec);

  Table t;
  t.header({"variant", "measured [s]", "predicted [s]",
            "improvement (meas)", "improvement (pred)", "pred err"});
  double bestGranularityGain = 0;
  double bestTweakGain = 0;
  double worstPredErr = 0;
  for (const auto& [label, idx] : entries) {
    const auto& obs = result.observations[idx];
    const double gainMeas = reference.measuredSec / obs.measuredSec;
    const double gainPred = reference.predictedSec / obs.predictedSec;
    t.row({label, Table::num(obs.measuredSec, 1), Table::num(obs.predictedSec, 1),
           Table::num(gainMeas, 2), Table::num(gainPred, 2), Table::pct(obs.error(), 1)});
    if (label.rfind("Basic", 0) == 0) bestGranularityGain = std::max(bestGranularityGain, gainMeas);
    else bestTweakGain = std::max(bestTweakGain, gainMeas);
    worstPredErr = std::max(worstPredErr, std::abs(obs.error()));
  }
  t.print(std::cout);
  std::printf("\npaper: graph tweaks ~3%%; best granularity ~3.5x; prediction within a few %%\n\n");

  bench::check(bestGranularityGain > 1.2,
               "changing granularity improves substantially over Basic r=648");
  bench::check(bestGranularityGain > bestTweakGain,
               "granularity gains dominate the PM/P/FC graph modifications");
  // Individual errors can reach several percent (the paper's own campaign
  // has a +-16% tail, Fig. 13); the curve as a whole must track closely.
  std::vector<double> errs;
  for (const auto& e : entries) errs.push_back(std::abs(result.observations[e.idx].error()));
  bench::check(percentile(errs, 50) < 0.03, "median prediction error below 3%");
  bench::check(worstPredErr < 0.12, "worst prediction error within the paper's +-12% band");
  // The predictor's preferred configuration is (within noise) as good as
  // the true best — the property that makes the simulator usable as an
  // optimization tool (§4).
  std::string bestPred;
  double bp = 0, bm = 0;
  double bestPredMeasuredGain = 0;
  for (const auto& [label, idx] : entries) {
    const auto& obs = result.observations[idx];
    bm = std::max(bm, reference.measuredSec / obs.measuredSec);
    if (reference.predictedSec / obs.predictedSec > bp) {
      bp = reference.predictedSec / obs.predictedSec;
      bestPred = label;
      bestPredMeasuredGain = reference.measuredSec / obs.measuredSec;
    }
  }
  bench::check(bestPredMeasuredGain > 0.97 * bm,
               "the simulator's preferred configuration is within 3% of the true best");
  return bench::finish("fig8_modifications_4nodes", opts, &result);
}
