#include "test_graphs.hpp"

#include "flow/ops.hpp"
#include "flow/routing.hpp"

namespace dps::test {

namespace {

class FanSplit final : public flow::QueueEmitter {
public:
  explicit FanSplit(FanoutSpec spec) : spec_(spec) {}
  void onInput(flow::OpContext&, const serial::ObjectBase&) override {
    for (std::int32_t j = 0; j < spec_.jobs; ++j) {
      auto item = std::make_shared<Item>();
      item->value = j;
      item->padding.assign(spec_.payloadBytes, static_cast<std::uint8_t>(j));
      enqueue(std::move(item), 0, spec_.splitCost);
    }
  }

private:
  FanoutSpec spec_;
};

class FanLeaf final : public flow::Operation {
public:
  explicit FanLeaf(FanoutSpec spec) : spec_(spec) {}
  void onInput(flow::OpContext& ctx, const serial::ObjectBase& in) override {
    const auto& item = dynamic_cast<const Item&>(in);
    ctx.charge(spec_.computeCost);
    if (spec_.leafMarker) ctx.marker("job", item.value);
    auto out = std::make_shared<Item>();
    out->value = item.value * 2;
    out->padding = item.padding;
    ctx.post(std::move(out));
  }

private:
  FanoutSpec spec_;
};

/// Leaf that drops its result into a program output instead of the merge.
class LeakyLeaf final : public flow::Operation {
public:
  void onInput(flow::OpContext& ctx, const serial::ObjectBase& in) override {
    const auto& item = dynamic_cast<const Item&>(in);
    auto out = std::make_shared<Item>();
    out->value = item.value;
    ctx.post(std::move(out), 0);
  }
};

class FanMerge final : public flow::Operation {
public:
  explicit FanMerge(FanoutSpec spec) : spec_(spec) {}
  void onInput(flow::OpContext& ctx, const serial::ObjectBase& in) override {
    const auto& item = dynamic_cast<const Item&>(in);
    ctx.charge(spec_.mergeCost);
    total_ += item.value;
    ++count_;
  }
  void onAllInputsDone(flow::OpContext& ctx) override {
    ctx.charge(spec_.finalizeCost);
    auto sum = std::make_shared<Sum>();
    sum->total = total_;
    sum->count = count_;
    ctx.post(std::move(sum));
  }

private:
  FanoutSpec spec_;
  std::int64_t total_ = 0;
  std::int64_t count_ = 0;
};

} // namespace

FanoutBuild buildFanout(FanoutSpec spec) {
  FanoutBuild b;
  b.spec = spec;
  b.graph = std::make_unique<flow::FlowGraph>();
  auto& g = *b.graph;
  b.master = g.addGroup("master");
  b.workers = g.addGroup("workers");

  using flow::makeOp;
  const auto split = g.addSplit("split", b.master, makeOp<FanSplit>(spec));
  const auto leaf = g.addLeaf("compute", b.workers, makeOp<FanLeaf>(spec));
  const auto merge = g.addMerge("merge", b.master, makeOp<FanMerge>(spec));

  g.setEntry(split, 0);
  g.connect(split, 0, leaf, flow::roundRobinActive());
  g.pair(split, 0, merge);
  if (spec.fcLimit > 0) g.setFlowControl(split, 0, flow::FlowControlSpec{spec.fcLimit});
  g.connect(leaf, 0, merge, flow::routeTo(0));
  g.connectOutput(merge, 0);

  auto start = std::make_shared<Item>();
  start->value = -1;
  b.inputs.push_back(std::move(start));
  return b;
}

FanoutBuild buildBrokenFanout(FanoutSpec spec) {
  FanoutBuild b;
  b.spec = spec;
  b.graph = std::make_unique<flow::FlowGraph>();
  auto& g = *b.graph;
  b.master = g.addGroup("master");
  b.workers = g.addGroup("workers");

  using flow::makeOp;
  const auto split = g.addSplit("split", b.master, makeOp<FanSplit>(spec));
  const auto leaf = g.addLeaf("leaky", b.workers, makeOp<LeakyLeaf>());
  const auto merge = g.addMerge("merge", b.master, makeOp<FanMerge>(spec));

  g.setEntry(split, 0);
  g.connect(split, 0, leaf, flow::roundRobinActive());
  g.pair(split, 0, merge);
  g.connectOutput(leaf, 0); // results leak to the output, never the merge
  g.connectOutput(merge, 0);

  auto start = std::make_shared<Item>();
  b.inputs.push_back(std::move(start));
  return b;
}

flow::Deployment spreadDeployment(const FanoutBuild& build) {
  flow::Deployment d;
  d.nodeCount = 1 + build.spec.workers;
  d.groupNodes.resize(2);
  d.groupNodes[build.master] = {0};
  for (std::int32_t i = 0; i < build.spec.workers; ++i)
    d.groupNodes[build.workers].push_back(1 + i);
  return d;
}

flow::Deployment singleNodeDeployment(const FanoutBuild& build) {
  flow::Deployment d;
  d.nodeCount = 1;
  d.groupNodes.resize(2);
  d.groupNodes[build.master] = {0};
  d.groupNodes[build.workers].assign(static_cast<std::size_t>(build.spec.workers), 0);
  return d;
}

} // namespace dps::test
