#include <gtest/gtest.h>

#include "lu/objects.hpp"
#include "serial/archive.hpp"
#include "serial/object.hpp"

namespace dps::serial {
namespace {

struct Simple final : Object<Simple> {
  static constexpr const char* kTypeName = "test.simple";
  std::int32_t a = 0;
  double b = 0;
  std::string name;
  std::vector<std::int64_t> values;
  template <typename Ar>
  void describe(Ar& ar) {
    fields(ar, a, b, name, values);
  }
};

struct Nested final : Object<Nested> {
  static constexpr const char* kTypeName = "test.nested";
  std::vector<std::pair<std::int32_t, std::string>> entries;
  template <typename Ar>
  void describe(Ar& ar) {
    fields(ar, entries);
  }
};

DPS_REGISTER_OBJECT(Simple)
DPS_REGISTER_OBJECT(Nested)

TEST(ArchiveTest, RoundTripPrimitivesAndContainers) {
  Simple s;
  s.a = 42;
  s.b = 3.25;
  s.name = "hello world";
  s.values = {1, -2, 3000000000LL};

  const auto bytes = s.encode();
  Simple back;
  ReadArchive ar({bytes.data(), bytes.size()});
  back.load(ar);
  EXPECT_EQ(back.a, 42);
  EXPECT_DOUBLE_EQ(back.b, 3.25);
  EXPECT_EQ(back.name, "hello world");
  EXPECT_EQ(back.values, s.values);
  EXPECT_EQ(ar.remaining(), 0u);
}

TEST(ArchiveTest, SizingMatchesEncodedBytesExactly) {
  Simple s;
  s.a = 1;
  s.name = std::string(100, 'x');
  s.values.assign(17, 9);
  EXPECT_EQ(s.wireSize(), s.encode().size());

  Nested n;
  n.entries = {{1, "a"}, {2, "bb"}, {3, ""}};
  EXPECT_EQ(n.wireSize(), n.encode().size());
}

TEST(ArchiveTest, SizingNeverTouchesPayloadMemory) {
  // The sizing archive must accept null data pointers — that is the whole
  // point of the paper's modified serializer (no allocation, no copies).
  SizingArchive ar;
  ar.raw(nullptr, 1234);
  ar.phantom(4096);
  EXPECT_EQ(ar.size(), 1234u + 4096u);
}

TEST(ArchiveTest, ReadUnderflowThrows) {
  std::vector<std::byte> tiny(4);
  ReadArchive ar({tiny.data(), tiny.size()});
  std::int64_t v;
  EXPECT_THROW(ar.raw(&v, 8), Error);
}

TEST(RegistryTest, FramedRoundTrip) {
  Simple s;
  s.a = 7;
  s.name = "framed";
  const auto framed = encodeFramed(s);
  auto obj = Registry::instance().decodeFramed({framed.data(), framed.size()});
  auto* back = dynamic_cast<Simple*>(obj.get());
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->a, 7);
  EXPECT_EQ(back->name, "framed");
}

TEST(RegistryTest, UnknownTypeThrows) {
  EXPECT_THROW(Registry::instance().create("no.such.type"), Error);
}

TEST(RegistryTest, DuplicateRegistrationThrows) {
  EXPECT_THROW(
      Registry::instance().add("test.simple", [] { return std::make_unique<Simple>(); }),
      Error);
}

// --- phantom payloads (NOALLOC) ---

TEST(PhantomTest, PhantomAndRealHaveIdenticalWireSize) {
  lu::registerLuObjects();
  lu::MultRequest real;
  real.level = 1;
  real.i = 2;
  real.j = 3;
  real.a = lu::BlockPayload::fromMatrix(lin::testMatrix(1, 16));
  real.b = lu::BlockPayload::fromMatrix(lin::testMatrix(2, 16));

  lu::MultRequest phantom;
  phantom.level = 1;
  phantom.i = 2;
  phantom.j = 3;
  phantom.a = lu::BlockPayload::phantomOf(16, 16);
  phantom.b = lu::BlockPayload::phantomOf(16, 16);

  EXPECT_EQ(real.wireSize(), phantom.wireSize());
  // And the encoded frame of the real object matches the measured size.
  EXPECT_EQ(real.encode().size(), real.wireSize());
  EXPECT_EQ(phantom.encode().size(), phantom.wireSize());
}

TEST(PhantomTest, PhantomRoundTripsAsPhantom) {
  lu::registerLuObjects();
  lu::T12Ready t;
  t.level = 4;
  t.col = 5;
  t.t12 = lu::BlockPayload::phantomOf(8, 8);
  const auto bytes = t.encode();
  lu::T12Ready back;
  ReadArchive ar({bytes.data(), bytes.size()});
  back.load(ar);
  EXPECT_TRUE(back.t12.phantom());
  EXPECT_EQ(back.t12.rows, 8);
  EXPECT_EQ(back.t12.cols, 8);
}

TEST(PhantomTest, MaterializingPhantomThrows) {
  auto p = lu::BlockPayload::phantomOf(4, 4);
  EXPECT_THROW(p.toMatrix(), Error);
}

TEST(PhantomTest, RealPayloadRoundTripsData) {
  const lin::Matrix m = lin::testMatrix(3, 12);
  auto p = lu::BlockPayload::fromMatrix(m);
  lu::MultResult res;
  res.c = p;
  const auto bytes = res.encode();
  lu::MultResult back;
  ReadArchive ar({bytes.data(), bytes.size()});
  back.load(ar);
  EXPECT_EQ(back.c.toMatrix(), m);
}

} // namespace
} // namespace dps::serial
