// Reproduces the paper's Fig. 2 / Fig. 4 timing-diagram semantics and
// exercises nested split/merge scopes and stream-operation behaviour that
// the LU application relies on implicitly.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "flow/graph.hpp"
#include "flow/ops.hpp"
#include "flow/routing.hpp"
#include "net/profile.hpp"
#include "test_graphs.hpp"

namespace dps::core {
namespace {

using test::Item;
using test::Sum;

net::PlatformProfile analyticProfile() {
  net::PlatformProfile p;
  p.latency = milliseconds(1);
  p.bandwidthBytesPerSec = 1e6;
  p.perStepOverhead = SimDuration::zero();
  p.localDelivery = SimDuration::zero();
  p.cpuPerIncomingTransfer = 0.0;
  p.cpuPerOutgoingTransfer = 0.0;
  return p;
}

SimConfig analyticConfig() {
  SimConfig c;
  c.profile = analyticProfile();
  c.mode = ExecutionMode::Pdexec;
  return c;
}

// --- Fig. 2: split on node 0 sends two objects to nodes 1 and 2 ---------

TEST(Fig2SemanticsTest, TransfersOverlapLaterSplitSteps) {
  // The paper's key property (Fig. 4): "Although T1 was queued before S2,
  // both atomic steps run in parallel in respect to their simulation
  // time."  We verify it from the trace: the transfer T1 departs at the
  // end of S1 and overlaps the S2 emission step.
  test::FanoutSpec spec;
  spec.jobs = 2;
  spec.workers = 2;
  spec.splitCost = milliseconds(3);  // S1, S2
  spec.computeCost = milliseconds(5); // O1, O2
  spec.mergeCost = milliseconds(2);   // M1, M2
  spec.payloadBytes = 1000 - 8 - 8 - 64;
  auto b = test::buildFanout(spec);
  SimEngine engine(analyticConfig());
  flow::Program prog;
  prog.graph = b.graph.get();
  prog.deployment = test::spreadDeployment(b);
  prog.inputs = b.inputs;
  auto result = engine.run(prog);
  ASSERT_TRUE(result.trace);

  // Locate the two emission steps (S1, S2) on node 0 and the transfers.
  std::vector<trace::StepRecord> emits;
  for (const auto& s : result.trace->steps())
    if (s.kind == trace::StepKind::Emit) emits.push_back(s);
  ASSERT_EQ(emits.size(), 2u);
  const auto& transfers = result.trace->transfers();
  ASSERT_EQ(transfers.size(), 4u); // T1, T2, T1', T2'

  // T1 starts exactly when S1 ends, and runs while S2 executes.
  const auto& s1 = emits[0];
  const auto& s2 = emits[1];
  const auto& t1 = transfers[0];
  EXPECT_EQ(t1.start, s1.end);
  EXPECT_LT(t1.start, s2.end);
  EXPECT_GT(t1.end, s2.start);

  // O1 and O2 overlap in virtual time (distinct nodes).
  std::vector<trace::StepRecord> leafs;
  for (const auto& s : result.trace->steps())
    if (s.kind == trace::StepKind::Input && s.node != 0 && s.work >= milliseconds(5))
      leafs.push_back(s);
  ASSERT_EQ(leafs.size(), 2u);
  EXPECT_LT(leafs[0].start, leafs[1].end);
  EXPECT_GT(leafs[0].end, leafs[1].start);

  // The merge absorbs M1 then waits (gap) for O2's result: M2 starts at
  // T2' delivery, strictly after M1 ends.  (Filter out the split's own
  // zero-work input step on node 0.)
  std::vector<trace::StepRecord> absorbs;
  for (const auto& s : result.trace->steps())
    if (s.kind == trace::StepKind::Input && s.node == 0 && s.work >= milliseconds(2))
      absorbs.push_back(s);
  ASSERT_EQ(absorbs.size(), 2u);
  EXPECT_GT(absorbs[1].start, absorbs[0].end); // the Fig. 2 "gap"
}

TEST(Fig2SemanticsTest, OperationsOnOneThreadNeverOverlap) {
  // Steps of the same DPS thread are sequential even when steps of
  // different threads overlap (Fig. 4 upper diagram).
  test::FanoutSpec spec;
  spec.jobs = 6;
  spec.workers = 3;
  auto b = test::buildFanout(spec);
  SimEngine engine(analyticConfig());
  flow::Program prog;
  prog.graph = b.graph.get();
  prog.deployment = test::spreadDeployment(b);
  prog.inputs = b.inputs;
  auto result = engine.run(prog);
  ASSERT_TRUE(result.trace);

  std::map<flow::ThreadRef, std::vector<std::pair<SimTime, SimTime>>> byThread;
  for (const auto& s : result.trace->steps())
    byThread[s.thread].emplace_back(s.start, s.end);
  for (auto& [ref, spans] : byThread) {
    (void)ref;
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i)
      EXPECT_GE(spans[i].first, spans[i - 1].second);
  }
}

// --- nested split/merge scopes -------------------------------------------

/// Outer split -> inner split -> leaf -> inner merge -> outer merge.
struct NestedBuild {
  std::unique_ptr<flow::FlowGraph> graph;
  flow::GroupId grp;
};

class InnerSplit final : public flow::QueueEmitter {
public:
  explicit InnerSplit(int fan, SimDuration perEmission = SimDuration::zero())
      : fan_(fan), perEmission_(perEmission) {}
  void onInput(flow::OpContext& ctx, const serial::ObjectBase& in) override {
    (void)ctx;
    const auto& item = dynamic_cast<const Item&>(in);
    for (int i = 0; i < fan_; ++i) {
      auto obj = std::make_shared<Item>();
      obj->value = item.value * 100 + i;
      enqueue(std::move(obj), 0, perEmission_);
    }
  }

private:
  int fan_;
  SimDuration perEmission_;
};

class SumMerge final : public flow::Operation {
public:
  void onInput(flow::OpContext&, const serial::ObjectBase& in) override {
    total_ += dynamic_cast<const Item&>(in).value;
  }
  void onAllInputsDone(flow::OpContext& ctx) override {
    auto out = std::make_shared<Item>();
    out->value = total_;
    ctx.post(std::move(out));
  }

private:
  std::int64_t total_ = 0;
};

NestedBuild buildNested(int outerFan, int innerFan, int workers) {
  NestedBuild b;
  b.graph = std::make_unique<flow::FlowGraph>();
  auto& g = *b.graph;
  b.grp = g.addGroup("grp");
  using flow::makeOp;
  auto outerSplit = g.addSplit("outer", b.grp, makeOp<InnerSplit>(outerFan));
  auto innerSplit = g.addSplit("inner", b.grp, makeOp<InnerSplit>(innerFan));
  auto leaf = g.addLeaf("double", b.grp, makeOp<flow::LambdaLeaf>([](flow::OpContext& ctx,
                                                                     const serial::ObjectBase& in) {
                          auto out = std::make_shared<Item>();
                          out->value = dynamic_cast<const Item&>(in).value;
                          ctx.post(std::move(out));
                        }));
  auto innerMerge = g.addMerge("innerMerge", b.grp, makeOp<SumMerge>());
  auto outerMerge = g.addMerge("outerMerge", b.grp, makeOp<SumMerge>());
  g.setEntry(outerSplit);
  g.connect(outerSplit, 0, innerSplit, flow::roundRobinActive());
  g.pair(outerSplit, 0, outerMerge);
  g.connect(innerSplit, 0, leaf, flow::roundRobinActive());
  g.pair(innerSplit, 0, innerMerge);
  // All results of one inner instance must reach the same thread: key by
  // the outer index encoded in the value (instance-consistent routing).
  g.connect(leaf, 0, innerMerge, flow::byKeyStatic([](const serial::ObjectBase& o) {
              return static_cast<std::uint64_t>(dynamic_cast<const Item&>(o).value / 100);
            }));
  g.connect(innerMerge, 0, outerMerge, flow::routeTo(0));
  g.connectOutput(outerMerge, 0);
  (void)workers;
  return b;
}

class NestedScopeSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(NestedScopeSweep, NestedSumsAreExact) {
  const auto [outer, inner, workers] = GetParam();
  auto b = buildNested(outer, inner, workers);
  flow::Program prog;
  prog.graph = b.graph.get();
  prog.deployment = flow::Deployment::roundRobin(*b.graph, {workers}, workers);
  auto start = std::make_shared<Item>();
  start->value = 1;
  prog.inputs.push_back(start);

  SimEngine engine(analyticConfig());
  auto result = engine.run(prog);
  ASSERT_EQ(result.outputs.size(), 1u);
  // Expected: sum over o of sum over i of ((1*100+o)*100 + i).
  std::int64_t expected = 0;
  for (int o = 0; o < outer; ++o)
    for (int i = 0; i < inner; ++i) expected += (100 + o) * 100 + i;
  EXPECT_EQ(dynamic_cast<const Item&>(*result.outputs[0]).value, expected);
}

INSTANTIATE_TEST_SUITE_P(Fans, NestedScopeSweep,
                         ::testing::Values(std::tuple{2, 2, 1}, std::tuple{2, 3, 2},
                                           std::tuple{4, 4, 3}, std::tuple{1, 8, 2},
                                           std::tuple{8, 1, 4}, std::tuple{5, 7, 2}));

// --- stream semantics -----------------------------------------------------

/// Stream that re-emits each input immediately (eager) or buffers until the
/// group completes (barrier) — the Basic-vs-P distinction of the LU app.
class Relay final : public flow::QueueEmitter {
public:
  explicit Relay(bool eager) : eager_(eager) {}
  void onInput(flow::OpContext& ctx, const serial::ObjectBase& in) override {
    (void)ctx;
    auto obj = std::make_shared<Item>();
    obj->value = dynamic_cast<const Item&>(in).value + 1000;
    if (eager_) enqueue(std::move(obj));
    else buffered_.push_back(std::move(obj));
  }
  void onAllInputsDone(flow::OpContext&) override {
    for (auto& o : buffered_) enqueue(std::move(o));
    buffered_.clear();
  }

private:
  bool eager_;
  std::vector<std::shared_ptr<Item>> buffered_;
};

SimDuration runStream(bool eager) {
  // Split emissions are spaced 20 ms apart; the single downstream worker
  // takes 50 ms per item.  An eager stream lets the worker start on item k
  // while the split still generates item k+1; a barrier stream releases
  // everything only when the group completes (paper Fig. 6).
  flow::FlowGraph g;
  auto grp = g.addGroup("grp");
  using flow::makeOp;
  auto split = g.addSplit("split", grp, makeOp<InnerSplit>(4, milliseconds(20)));
  auto stream = g.addStream("relay", grp, makeOp<Relay>(eager));
  auto leaf = g.addLeaf("work", grp,
                        makeOp<flow::LambdaLeaf>([](flow::OpContext& ctx,
                                                    const serial::ObjectBase& in) {
                          ctx.charge(milliseconds(50));
                          auto out = std::make_shared<Item>();
                          out->value = dynamic_cast<const Item&>(in).value;
                          ctx.post(std::move(out));
                        }));
  auto merge = g.addMerge("merge", grp, makeOp<SumMerge>());
  g.setEntry(split);
  // Split, stream and worker each get their own thread: an operation runs
  // to completion on its thread (Fig. 4), so co-locating the stream with
  // the split would serialize them regardless of streaming mode.
  g.connect(split, 0, stream, flow::routeTo(1));
  g.pair(split, 0, stream);
  g.connect(stream, 0, leaf, flow::routeTo(2)); // one dedicated worker thread
  g.pair(stream, 0, merge);
  g.connect(leaf, 0, merge, flow::routeTo(0));
  g.connectOutput(merge, 0);

  flow::Program prog;
  prog.graph = &g;
  prog.deployment = flow::Deployment::roundRobin(g, {3}, 3);
  auto start = std::make_shared<Item>();
  prog.inputs.push_back(start);

  SimEngine engine(analyticConfig());
  auto result = engine.run(prog);
  // Same result either way.
  EXPECT_EQ(result.outputs.size(), 1u);
  return result.makespan;
}

TEST(StreamSemanticsTest, EagerStreamingPipelinesBetterThanBarrier) {
  // "By refining the synchronization granularity, stream operations allow
  // programmers to maximize the pipelining of parallel operations" (§2).
  const auto eager = runStream(true);
  const auto barrier = runStream(false);
  EXPECT_LT(eager, barrier);
}

} // namespace
} // namespace dps::core
