// sched:: cluster-workload subsystem: workload generation, job profiles,
// scheduling policies, the cluster event loop and its metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "obs/recorder.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sched/cluster.hpp"

namespace dps::sched {
namespace {

/// Tiny mix for fast unit tests (8-level LU + 6-sweep Jacobi).
std::vector<JobClass> tinyMix() {
  JobClass lu;
  lu.name = "lu-tiny";
  lu.app = AppKind::Lu;
  lu.lu.n = 64;
  lu.lu.r = 8;
  lu.lu.workers = 4;
  lu.lu.seed = 3;
  JobClass ja;
  ja.name = "jacobi-tiny";
  ja.app = AppKind::Jacobi;
  ja.jacobi.rows = 64;
  ja.jacobi.cols = 64;
  ja.jacobi.sweeps = 6;
  ja.jacobi.workers = 4;
  return {lu, ja};
}

Workload tinyWorkload(std::uint64_t seed, std::int32_t jobCount = 8, double rate = 1.0) {
  WorkloadConfig cfg;
  cfg.seed = seed;
  cfg.jobCount = jobCount;
  cfg.arrivalRatePerSec = rate;
  cfg.classes = tinyMix();
  return Workload::generate(cfg, 4);
}

TEST(WorkloadTest, DeterministicInSeed) {
  const auto a = tinyWorkload(7);
  const auto b = tinyWorkload(7);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].arrivalSec, b.jobs[i].arrivalSec);
    EXPECT_EQ(a.jobs[i].klass, b.jobs[i].klass);
  }
  const auto c = tinyWorkload(8);
  bool differs = false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i)
    differs = differs || a.jobs[i].arrivalSec != c.jobs[i].arrivalSec;
  EXPECT_TRUE(differs);
}

TEST(WorkloadTest, ArrivalsFollowTheConfiguredRate) {
  const auto wl = tinyWorkload(1, 4000, 0.5);
  // Mean inter-arrival gap of a rate-0.5 Poisson process is 2 s.
  const double meanGap = wl.jobs.back().arrivalSec / static_cast<double>(wl.jobs.size());
  EXPECT_NEAR(meanGap, 2.0, 0.2);
  for (std::size_t i = 1; i < wl.jobs.size(); ++i)
    EXPECT_GT(wl.jobs[i].arrivalSec, wl.jobs[i - 1].arrivalSec);
}

TEST(WorkloadTest, MixCoversAllClasses) {
  const auto wl = tinyWorkload(1, 200);
  std::vector<int> counts(wl.cfg.classes.size(), 0);
  for (const Job& j : wl.jobs) counts[j.klass]++;
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(WorkloadTest, FeasibleAllocationsRespectAppConstraints) {
  const auto mix = tinyMix();
  // LU: any worker count down to 1 is feasible.
  EXPECT_EQ(feasibleAllocations(mix[0], 4), (std::vector<std::int32_t>{1, 2, 4}));
  // Jacobi: at least two strips.
  EXPECT_EQ(feasibleAllocations(mix[1], 4), (std::vector<std::int32_t>{2, 4}));
  // Cluster smaller than the request clamps the top allocation.
  EXPECT_EQ(feasibleAllocations(mix[0], 2), (std::vector<std::int32_t>{1, 2}));
  // A non-power-of-two request is still offered as the job's maximum.
  JobClass wide = mix[0];
  wide.lu.workers = 6;
  EXPECT_EQ(feasibleAllocations(wide, 8), (std::vector<std::int32_t>{1, 2, 4, 6}));
}

TEST(WorkloadTest, DenseAllocationsCoverEveryFeasibleLevel) {
  JobClass lu = tinyMix()[0];
  lu.lu.workers = 12;
  lu.denseAllocs = true;
  EXPECT_EQ(feasibleAllocations(lu, 16),
            (std::vector<std::int32_t>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}));
  EXPECT_EQ(feasibleAllocations(lu, 7), (std::vector<std::int32_t>{1, 2, 3, 4, 5, 6, 7}));
  JobClass ja = tinyMix()[1];
  ja.jacobi.rows = 60;
  ja.jacobi.workers = 30;
  ja.denseAllocs = true;
  // Jacobi strips must divide the grid rows; dense = every such divisor >= 2.
  EXPECT_EQ(feasibleAllocations(ja, 64),
            (std::vector<std::int32_t>{2, 3, 4, 5, 6, 10, 12, 15, 20, 30}));
}

TEST(WorkloadTest, ScaledMixIsDenselyMalleable) {
  // The --mix scaled classes are what interpolation is for: every class
  // dense, and the default anchor policy buys >= 4x fewer engine runs both
  // per class (12+ levels each) and in aggregate.
  for (const std::int32_t nodes : {48, 4096}) {
    const auto classes = Workload::scaledMix(nodes);
    ASSERT_EQ(classes.size(), 4u);
    std::size_t levels = 0, anchors = 0;
    for (const JobClass& k : classes) {
      EXPECT_TRUE(k.denseAllocs) << k.name;
      const auto allocs = feasibleAllocations(k, nodes);
      EXPECT_GE(allocs.size(), 12u) << k.name;
      levels += allocs.size();
      anchors += static_cast<std::size_t>(InterpolatedProfile::autoAnchorCount(allocs.size()));
    }
    EXPECT_GE(static_cast<double>(levels) / static_cast<double>(anchors), 4.0) << nodes;
  }
}

TEST(ProfileTableTest, BitIdenticalAtAnyBuildConcurrency) {
  const auto classes = tinyMix();
  const auto serial = JobProfileTable::build(classes, 4, {}, 1);
  const auto parallel = JobProfileTable::build(classes, 4, {}, 4);
  ASSERT_EQ(serial.classCount(), parallel.classCount());
  for (std::size_t c = 0; c < serial.classCount(); ++c) {
    const auto& a = serial.of(c);
    const auto& b = parallel.of(c);
    ASSERT_EQ(a.allocs, b.allocs);
    for (std::size_t i = 0; i < a.byAlloc.size(); ++i) {
      EXPECT_EQ(a.byAlloc[i].totalSec, b.byAlloc[i].totalSec); // bitwise
      EXPECT_EQ(a.byAlloc[i].phaseSec, b.byAlloc[i].phaseSec);
      EXPECT_EQ(a.byAlloc[i].phaseEff, b.byAlloc[i].phaseEff);
    }
  }
}

TEST(ProfileTableTest, PhaseDurationsSumToMakespan) {
  const auto table = JobProfileTable::build(tinyMix(), 4, {}, 1);
  for (std::size_t c = 0; c < table.classCount(); ++c) {
    const auto& cp = table.of(c);
    EXPECT_GE(cp.phases(), 2);
    for (const PhaseProfile& p : cp.byAlloc) {
      double sum = 0;
      for (double s : p.phaseSec) sum += s;
      EXPECT_NEAR(sum, p.totalSec, 1e-9 * p.totalSec + 1e-12);
      for (double e : p.phaseEff) {
        EXPECT_GE(e, 0.0);
        EXPECT_LE(e, 1.0);
      }
    }
  }
}

TEST(ProfileTableTest, MigrationModelMirrorsControllerAccounting) {
  const auto table = JobProfileTable::build(tinyMix(), 4, {}, 1);
  const auto& lu = table.of(0); // 8 columns, stateShrinks
  EXPECT_EQ(lu.migrationBytes(1, 4, 4), 0.0);
  // Shrink: a removed worker migrates every column it owns — factored
  // columns included — so shrink traffic does not decay with progress.
  const double earlyShrink = lu.migrationBytes(1, 4, 2);
  const double lateShrink = lu.migrationBytes(lu.phases() - 1, 4, 2);
  EXPECT_GT(earlyShrink, 0.0);
  EXPECT_DOUBLE_EQ(lateShrink, earlyShrink);
  EXPECT_DOUBLE_EQ(earlyShrink, lu.stateBytes / 2); // (4-2)/4 of all columns
  // Grow: only still-unfactored columns rebalance onto re-added workers, so
  // grow traffic decays as the factorization progresses.
  const double earlyGrow = lu.migrationBytes(1, 2, 4);
  const double lateGrow = lu.migrationBytes(lu.phases() - 2, 2, 4);
  EXPECT_GT(lateGrow, 0.0);
  EXPECT_LT(lateGrow, earlyGrow);
  // Phase 1: 6 future columns, re-adding workers 3 and 4 pulls
  // ceil(6/3) + ceil(6/4) = 4 of the 8 column blocks.
  EXPECT_DOUBLE_EQ(earlyGrow, lu.stateBytes / 2);
  EXPECT_DOUBLE_EQ(lu.migrationBytes(lu.phases() - 1, 2, 4), 0.0); // nothing left to move
  // The Jacobi grid stays live for the whole run, in both directions.
  const auto& ja = table.of(1);
  EXPECT_EQ(ja.migrationBytes(1, 4, 2), ja.migrationBytes(ja.phases() - 1, 4, 2));
  EXPECT_EQ(ja.migrationBytes(1, 2, 4), ja.migrationBytes(1, 4, 2));
}

/// 12-level dense LU class: small enough to profile exhaustively in a unit
/// test, dense enough (> 5 levels) that the default build interpolates.
JobClass denseLu() {
  JobClass k;
  k.name = "lu-dense";
  k.app = AppKind::Lu;
  k.lu.n = 64;
  k.lu.r = 8;
  k.lu.workers = 12;
  k.lu.seed = 3;
  k.denseAllocs = true;
  return k;
}

TEST(ProfileTableTest, RemainingFromMatchesForwardTailSumBitwise) {
  // The event loop's O(1) suffix-sum lookup must round exactly like the
  // pre-optimization loop's on-the-spot left-to-right tail sum.
  PhaseProfile p;
  p.nodes = 4;
  for (int i = 1; i <= 37; ++i) p.phaseSec.push_back(1.0 / (3.0 * i) + 0.1 * i);
  p.phaseEff.assign(p.phaseSec.size(), 1.0);
  p.finalizeRemaining();
  ASSERT_EQ(p.remainSec.size(), p.phaseSec.size());
  for (std::size_t i = 0; i < p.phaseSec.size(); ++i) {
    double rest = 0;
    for (std::size_t q = i; q < p.phaseSec.size(); ++q) rest += p.phaseSec[q];
    EXPECT_EQ(p.remainingFrom(static_cast<std::int32_t>(i)), rest) << "phase " << i; // bitwise
  }
  // A hand-built profile that never called finalizeRemaining falls back to
  // the direct sum — same values.
  PhaseProfile raw = p;
  raw.remainSec.clear();
  for (std::size_t i = 0; i < p.phaseSec.size(); ++i)
    EXPECT_EQ(raw.remainingFrom(static_cast<std::int32_t>(i)),
              p.remainingFrom(static_cast<std::int32_t>(i)));
}

TEST(InterpolationTest, PickAnchorsKeepsEndpointsAndSpacing) {
  const std::vector<std::int32_t> allocs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  const auto three = InterpolatedProfile::pickAnchors(allocs, 3);
  ASSERT_EQ(three.size(), 3u);
  EXPECT_EQ(three.front(), 1);
  EXPECT_EQ(three.back(), 12);
  EXPECT_GT(three[1], 1);
  EXPECT_LT(three[1], 12);
  const auto two = InterpolatedProfile::pickAnchors(allocs, 2);
  EXPECT_EQ(two, (std::vector<std::int32_t>{1, 12}));
  // Budget >= levels returns every level; anchors are always a sorted
  // distinct subset.
  EXPECT_EQ(InterpolatedProfile::pickAnchors(allocs, 99), allocs);
  const auto five = InterpolatedProfile::pickAnchors(allocs, 5);
  ASSERT_EQ(five.size(), 5u);
  for (std::size_t i = 1; i < five.size(); ++i) EXPECT_LT(five[i - 1], five[i]);
  for (std::int32_t a : five) EXPECT_TRUE(std::binary_search(allocs.begin(), allocs.end(), a));
}

TEST(InterpolationTest, AutoAnchorCountPolicy) {
  // Cheap classes profile exhaustively; dense classes get levels/4 in
  // [3, 8] — at least a 4x engine-run reduction from 12 levels up.
  for (std::size_t levels : {1u, 2u, 3u, 4u, 5u})
    EXPECT_EQ(InterpolatedProfile::autoAnchorCount(levels), static_cast<std::int32_t>(levels));
  EXPECT_EQ(InterpolatedProfile::autoAnchorCount(6), 3);
  EXPECT_EQ(InterpolatedProfile::autoAnchorCount(12), 3);
  EXPECT_EQ(InterpolatedProfile::autoAnchorCount(20), 5);
  EXPECT_EQ(InterpolatedProfile::autoAnchorCount(32), 8);
  EXPECT_EQ(InterpolatedProfile::autoAnchorCount(64), 8); // capped
}

TEST(InterpolationTest, ExactAtAnchorsBoundedBetween) {
  const std::vector<JobClass> classes{denseLu()};
  ProfileBuildOptions exact;
  exact.interpolate = false;
  const auto exhaustive = JobProfileTable::build(classes, 12, {}, 1, {}, exact);
  const auto interp = JobProfileTable::build(classes, 12, {}, 1, {}); // default interpolates
  const auto& e = exhaustive.of(0);
  const auto& s = interp.of(0);
  ASSERT_EQ(e.allocs, s.allocs); // same allocation coverage
  ASSERT_EQ(e.allocs.size(), 12u);
  EXPECT_EQ(interp.buildInfo().engineRunPoints, 3u); // autoAnchorCount(12)
  EXPECT_EQ(interp.buildInfo().profiledAllocs, 12u);
  const auto anchors =
      InterpolatedProfile::pickAnchors(e.allocs, InterpolatedProfile::autoAnchorCount(12));
  for (std::int32_t a : e.allocs) {
    const auto& pe = e.at(a);
    const auto& ps = s.at(a);
    ASSERT_EQ(pe.phaseSec.size(), ps.phaseSec.size()) << a;
    if (std::binary_search(anchors.begin(), anchors.end(), a)) {
      // Anchors are the engine profiles bit-for-bit.
      EXPECT_EQ(pe.totalSec, ps.totalSec) << a;
      EXPECT_EQ(pe.phaseSec, ps.phaseSec) << a;
      EXPECT_EQ(pe.phaseEff, ps.phaseEff) << a;
    } else {
      // Synthesized entries track the real engine profile.  The bound is
      // loose because this LU is tiny (64 x 64): overhead-dominated
      // runtimes bend away from the power law in the sparse low bracket
      // (measured: ~20% at 2 of {1,3}, under 2% everywhere else).  At
      // paper scale bench/cluster_scale replay-validates < 5% aggregate.
      EXPECT_NEAR(ps.totalSec, pe.totalSec, 0.25 * pe.totalSec) << a;
      for (std::size_t q = 0; q < pe.phaseEff.size(); ++q)
        EXPECT_NEAR(ps.phaseEff[q], pe.phaseEff[q], 0.15) << a << " phase " << q;
    }
    // Synthesized or not, the profile is internally consistent: suffix sums
    // filled, durations positive, efficiencies in [0, 1].
    ASSERT_EQ(ps.remainSec.size(), ps.phaseSec.size()) << a;
    EXPECT_EQ(ps.remainingFrom(0), ps.remainSec[0]) << a;
    for (std::size_t q = 0; q < ps.phaseSec.size(); ++q) {
      EXPECT_GT(ps.phaseSec[q], 0.0) << a;
      EXPECT_GE(ps.phaseEff[q], 0.0) << a;
      EXPECT_LE(ps.phaseEff[q], 1.0) << a;
    }
  }
}

TEST(ProfileTableTest, ClampFeasible) {
  const auto table = JobProfileTable::build(tinyMix(), 4, {}, 1);
  const auto& ja = table.of(1); // allocs {2, 4}
  EXPECT_EQ(ja.clampFeasible(8), 4);
  EXPECT_EQ(ja.clampFeasible(3), 2);
  EXPECT_EQ(ja.clampFeasible(1), 2); // below minimum -> minimum
}

// ---------------------------------------------------------------------------
// Policies

TEST(PolicyTest, ShareAdmissionClampsToTheLargestFeasibleFit) {
  const auto table = JobProfileTable::build(tinyMix(), 4, {}, 1);
  const auto& lu = table.of(0); // allocs {1, 2, 4}
  Equipartition equip;
  ClusterView view;
  view.totalNodes = 4;
  view.runningJobs = 1;
  view.queuedJobs = 1;
  DecisionContext ctx;
  view.freeNodes = 3; // fair share 4/2 = 2 fits
  EXPECT_EQ(equip.admit(QueuedJobView{}, lu, view, ctx), 2);
  EXPECT_STREQ(ctx.rule, "fair-share");
  // Share does not fit: start at the largest feasible allocation that does
  // instead of idling the free node behind the queue head.
  view.totalNodes = 8; // fair share 8/2 = 4, but only 1 node free
  view.freeNodes = 1;
  EXPECT_EQ(equip.admit(QueuedJobView{}, lu, view, ctx), 1);
  EXPECT_STREQ(ctx.rule, "largest-fit");
  // Nothing feasible fits: the too-large share keeps the job queued.
  view.freeNodes = 0;
  EXPECT_GT(equip.admit(QueuedJobView{}, lu, view, ctx), view.freeNodes);
  EXPECT_STREQ(ctx.rule, "share-too-large");
}

TEST(PolicyTest, GrowEagerOnlyGrows) {
  const auto table = JobProfileTable::build(tinyMix(), 4, {}, 1);
  const auto& lu = table.of(0); // allocs {1, 2, 4}
  GrowEager policy;
  RunningJobView job;
  job.nodes = 2;
  ClusterView view;
  view.totalNodes = 4;
  DecisionContext ctx;
  view.freeNodes = 2;
  EXPECT_EQ(policy.reallocate(job, lu, view, ctx), 4); // absorbs the free nodes
  EXPECT_STREQ(ctx.rule, "absorb-free");
  view.freeNodes = 1;
  EXPECT_EQ(policy.reallocate(job, lu, view, ctx), 2); // 3 is not feasible
  view.freeNodes = 0;
  EXPECT_EQ(policy.reallocate(job, lu, view, ctx), 2); // never shrinks
}

TEST(PolicyTest, GrowEagerTriggersGrowthGrants) {
  // Tiny jobs finish in milliseconds, so contention (and with it a chance
  // to be admitted below the maximum and grow later) needs arrivals at a
  // matching rate.
  const auto classes = tinyMix();
  const auto table = JobProfileTable::build(classes, 4, {}, 1);
  ClusterConfig cfg;
  cfg.nodes = 4;
  std::int32_t growth = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    GrowEager policy;
    const auto m = simulateCluster(cfg, tinyWorkload(seed, 10, 200.0), table, policy);
    for (const auto& j : m.jobs)
      for (std::size_t p = 1; p < j.allocs.size(); ++p) {
        EXPECT_GE(j.allocs[p], j.allocs[p - 1]); // grow-eager never shrinks
        growth += j.allocs[p] > j.allocs[p - 1];
      }
  }
  EXPECT_GT(growth, 0); // the sched loop's growth grants actually trigger
}

// ---------------------------------------------------------------------------
// Cluster event loop

ClusterMetrics runTiny(Policy& policy, std::uint64_t seed = 1) {
  const auto wl = tinyWorkload(seed, 10, 2.0);
  const auto table = JobProfileTable::build(wl.cfg.classes, 4, {}, 1);
  ClusterConfig cfg;
  cfg.nodes = 4;
  return simulateCluster(cfg, wl, table, policy);
}

TEST(ClusterTest, AllJobsServedAndAccountingConsistent) {
  for (const std::string& name : policyNames()) {
    auto policy = makePolicy(name);
    const auto m = runTiny(*policy);
    ASSERT_EQ(m.jobs.size(), 10u) << name;
    for (const auto& j : m.jobs) {
      EXPECT_GE(j.startSec, 0.0);
      EXPECT_GE(j.finishSec, j.startSec);
      EXPECT_GE(j.slowdown(), 0.99) << name; // nanosecond quantization slack
      EXPECT_FALSE(j.allocs.empty());
    }
    EXPECT_GT(m.makespanSec, 0.0);
    EXPECT_GT(m.utilization, 0.0);
    EXPECT_LE(m.utilization, 1.0 + 1e-9);
    for (const auto& p : m.timeline) {
      EXPECT_GE(p.usedNodes, 0);
      EXPECT_LE(p.usedNodes, 4);
    }
  }
}

TEST(ClusterTest, RigidPolicyNeverReallocates) {
  FcfsRigid policy;
  const auto m = runTiny(policy);
  EXPECT_EQ(m.reallocations, 0);
  EXPECT_EQ(m.migratedBytes, 0.0);
  for (const auto& j : m.jobs)
    for (std::int32_t a : j.allocs) EXPECT_EQ(a, j.allocs.front());
}

TEST(ClusterTest, EfficiencyShrinkReleasesNodesAndChargesMigration) {
  EfficiencyShrink policy(0.9); // aggressive: LU efficiency decays well below
  const auto m = runTiny(policy);
  EXPECT_GT(m.reallocations, 0);
  EXPECT_GT(m.migratedBytes, 0.0);
  bool shrank = false;
  for (const auto& j : m.jobs)
    for (std::size_t p = 1; p < j.allocs.size(); ++p)
      shrank = shrank || j.allocs[p] < j.allocs[p - 1];
  EXPECT_TRUE(shrank);
}

TEST(ClusterTest, DeterministicAcrossRunsAndProfileJobs) {
  // The dps_cluster acceptance contract: identical reports across
  // repetitions and across profile-build concurrency.
  const auto wl = tinyWorkload(1, 10, 2.0);
  const auto serial = JobProfileTable::build(wl.cfg.classes, 4, {}, 1);
  const auto parallel = JobProfileTable::build(wl.cfg.classes, 4, {}, 4);
  ClusterConfig cfg;
  cfg.nodes = 4;
  Equipartition a, b;
  EXPECT_EQ(simulateCluster(cfg, wl, serial, a).jsonString(),
            simulateCluster(cfg, wl, parallel, b).jsonString());
}

TEST(ClusterTest, ObservationDoesNotPerturbResults) {
  // The obs:: contract: attaching a metrics registry and a trace sink is a
  // read-only tap — the metrics JSON stays bit-identical for every policy,
  // and the registry's counters restate the run's own aggregates.
  const auto wl = tinyWorkload(1, 10, 2.0);
  const auto table = JobProfileTable::build(wl.cfg.classes, 4, {}, 1);
  for (const std::string& name : policyNames()) {
    ClusterConfig plain;
    plain.nodes = 4;
    plain.easyBackfill = true;
    auto p1 = makePolicy(name);
    const auto bare = simulateCluster(plain, wl, table, *p1);

    obs::Registry registry;
    obs::TraceSink trace;
    ClusterConfig observed = plain;
    observed.metrics = &registry;
    observed.metricsPrefix = "cluster.";
    observed.trace = &trace;
    auto p2 = makePolicy(name);
    const auto traced = simulateCluster(observed, wl, table, *p2);

    EXPECT_EQ(bare.jsonString(), traced.jsonString()) << name;
    const auto snap = registry.snapshot();
    EXPECT_EQ(snap.counter("cluster.events_processed"),
              static_cast<std::uint64_t>(traced.events))
        << name;
    EXPECT_EQ(snap.counter("cluster.jobs_finished"), traced.jobs.size()) << name;
    EXPECT_EQ(snap.counter("cluster.reallocations"),
              static_cast<std::uint64_t>(traced.reallocations))
        << name;
    EXPECT_EQ(snap.counter("cluster.backfill_fires"),
              static_cast<std::uint64_t>(traced.backfillFires))
        << name;
    EXPECT_DOUBLE_EQ(snap.gauge("cluster.makespan_sec"), traced.makespanSec) << name;
    const auto* wait = snap.histogram("cluster.job_wait_sec");
    ASSERT_NE(wait, nullptr) << name;
    EXPECT_EQ(wait->count, traced.jobs.size()) << name;
    // One queued span + one run span per job, at minimum.
    EXPECT_GE(trace.eventCount(), 2 * traced.jobs.size()) << name;
  }
}

TEST(ClusterTest, ReferenceLoopRecordsTheSameRegistryContents) {
  // Both loops fold the identical run facts through recordClusterRun, so
  // the observability layer cannot mask an optimized-loop divergence.
  const auto wl = tinyWorkload(3, 10, 2.0);
  const auto table = JobProfileTable::build(wl.cfg.classes, 4, {}, 1);
  obs::Registry optReg, refReg;
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.easyBackfill = true;
  cfg.metricsPrefix = "c.";
  Equipartition a, b;
  cfg.metrics = &optReg;
  simulateCluster(cfg, wl, table, a);
  cfg.metrics = &refReg;
  simulateClusterReference(cfg, wl, table, b);
  EXPECT_EQ(optReg.jsonString(), refReg.jsonString());
}

TEST(ClusterTest, EquipartitionBeatsFcfsRigidOnTheBenchDefaultWorkload) {
  // The cluster_policies bench default point: 8 nodes, default mix, seed 1,
  // rate 0.15, 12 jobs — equipartition must win on mean slowdown.
  WorkloadConfig wcfg;
  wcfg.seed = 1;
  wcfg.jobCount = 12;
  wcfg.arrivalRatePerSec = 0.15;
  const auto wl = Workload::generate(wcfg, 8);
  const auto table = JobProfileTable::build(wl.cfg.classes, 8, {}, 1);
  const auto ccfg = ClusterConfig::fromProfile(ProfileSettings{}.platform, 8);
  FcfsRigid fcfs;
  Equipartition equip;
  const auto mFcfs = simulateCluster(ccfg, wl, table, fcfs);
  const auto mEquip = simulateCluster(ccfg, wl, table, equip);
  EXPECT_LT(mEquip.meanSlowdown, mFcfs.meanSlowdown);
  EXPECT_LT(mEquip.meanWaitSec, mFcfs.meanWaitSec);
}

TEST(ClusterTest, ZeroCostMigrationAblationNeverSlower) {
  const auto wl = tinyWorkload(1, 10, 2.0);
  const auto table = JobProfileTable::build(wl.cfg.classes, 4, {}, 1);
  ClusterConfig charged;
  charged.nodes = 4;
  ClusterConfig zero = charged;
  zero.chargeMigration = false;
  EfficiencyShrink a(0.9), b(0.9);
  const auto mCharged = simulateCluster(charged, wl, table, a);
  const auto mZero = simulateCluster(zero, wl, table, b);
  EXPECT_LE(mZero.makespanSec, mCharged.makespanSec + 1e-9);
}

TEST(ClusterTest, EasyBackfillNeverDelaysTheBlockedHead) {
  // EASY's contract: backfilled jobs may not delay the earliest feasible
  // start of the job at the head of the queue.  Under FCFS-rigid the
  // running jobs' remaining-profile estimates are exact, so the first
  // blocked head must start at the same instant with and without backfill.
  // A backfill window needs heterogeneous requests *and* durations: while a
  // long 2-node job runs and a 4-node request blocks at the head, a short
  // 2-node job can slip into the free half and finish before the shadow
  // time.
  auto classes = tinyMix();
  classes[1].name = "jacobi-long";
  classes[1].jacobi.workers = 2;
  classes[1].jacobi.sweeps = 96;
  JobClass shortJob = classes[1];
  shortJob.name = "jacobi-short";
  shortJob.jacobi.sweeps = 4;
  classes.push_back(shortJob);
  const auto table = JobProfileTable::build(classes, 4, {}, 1);
  ClusterConfig plain;
  plain.nodes = 4;
  ClusterConfig easy = plain;
  easy.easyBackfill = true;
  bool sawBlockedHead = false, sawBackfill = false;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    WorkloadConfig wcfg;
    wcfg.seed = seed;
    wcfg.jobCount = 12;
    wcfg.arrivalRatePerSec = 200.0; // tiny jobs need matching arrival rates
    wcfg.classes = classes;
    const auto wl = Workload::generate(wcfg, 4);
    FcfsRigid a, b;
    const auto mPlain = simulateCluster(plain, wl, table, a);
    const auto mEasy = simulateCluster(easy, wl, table, b);
    ASSERT_EQ(mPlain.jobs.size(), mEasy.jobs.size());
    for (const auto& j : mEasy.jobs) sawBackfill = sawBackfill || j.backfilled;
    // First waiting job under no-backfill: it was at the queue head when it
    // blocked (FCFS admits strictly in order, so all earlier jobs started
    // on arrival and the queue was empty when it arrived).
    for (std::size_t i = 0; i < mPlain.jobs.size(); ++i) {
      if (mPlain.jobs[i].waitSec() <= 1e-9) continue;
      sawBlockedHead = true;
      EXPECT_LE(mEasy.jobs[i].startSec, mPlain.jobs[i].startSec + 1e-9)
          << "seed " << seed << " job " << mPlain.jobs[i].id;
      break;
    }
  }
  EXPECT_TRUE(sawBlockedHead); // the property was actually exercised
  EXPECT_TRUE(sawBackfill);    // and backfill actually fired somewhere
}

TEST(ClusterTest, OptimizedLoopBitIdenticalToReferenceLoop) {
  // The acceptance contract of the event-loop optimization: the production
  // loop and the kept pre-optimization loop produce byte-identical metrics
  // JSON — every policy, backfill on and off, and a saturated stress point
  // where the queue and the backfill scan actually work.
  const auto wl = tinyWorkload(1, 12, 2.0);
  const auto table = JobProfileTable::build(wl.cfg.classes, 4, {}, 1);
  for (const std::string& name : policyNames()) {
    for (const bool backfill : {false, true}) {
      ClusterConfig cfg;
      cfg.nodes = 4;
      cfg.easyBackfill = backfill;
      auto a = makePolicy(name);
      auto b = makePolicy(name);
      EXPECT_EQ(simulateCluster(cfg, wl, table, *a).jsonString(),
                simulateClusterReference(cfg, wl, table, *b).jsonString())
          << name << (backfill ? " +backfill" : "");
    }
  }
  const auto stress = tinyWorkload(2, 200, 200.0); // deep queue, hot backfill
  for (const std::int32_t depth : {0, 3}) {
    ClusterConfig cfg;
    cfg.nodes = 4;
    cfg.easyBackfill = true;
    cfg.backfillDepth = depth;
    FcfsRigid a, b;
    EXPECT_EQ(simulateCluster(cfg, stress, table, a).jsonString(),
              simulateClusterReference(cfg, stress, table, b).jsonString())
        << "stress depth " << depth;
  }
}

TEST(ClusterTest, RecorderDoesNotPerturbResults) {
  // The flight-recorder contract: attaching a recorder is a read-only tap.
  // The metrics JSON (which now carries the wait attribution, so this also
  // proves the attribution bookkeeping is always-on) stays bit-identical
  // for every policy, backfill on and off — while the recorder itself
  // actually captured the run.
  const auto wl = tinyWorkload(1, 12, 2.0);
  const auto table = JobProfileTable::build(wl.cfg.classes, 4, {}, 1);
  for (const std::string& name : policyNames()) {
    for (const bool backfill : {false, true}) {
      ClusterConfig plain;
      plain.nodes = 4;
      plain.easyBackfill = backfill;
      auto p1 = makePolicy(name);
      const auto bare = simulateCluster(plain, wl, table, *p1);

      obs::Recorder recorder(10.0);
      ClusterConfig recorded = plain;
      recorded.recorder = &recorder;
      auto p2 = makePolicy(name);
      const auto flown = simulateCluster(recorded, wl, table, *p2);

      EXPECT_EQ(bare.jsonString(), flown.jsonString())
          << name << (backfill ? " +backfill" : "");
      EXPECT_GT(recorder.decisionCount(), 0u) << name;
      EXPECT_GT(recorder.sampleCount(), 0u) << name;
    }
  }
}

TEST(ClusterTest, OptimizedAndReferenceLoopsRecordEqualDecisions) {
  // Stronger than metrics bit-identity: the two loops must narrate the SAME
  // decision sequence — every admit verdict, backfill pass, wait interval
  // and timeseries sample — rendered to equal recorder JSON.  This checks
  // the optimized hot paths decision by decision, not just by outcome.
  const auto wl = tinyWorkload(1, 12, 2.0);
  const auto table = JobProfileTable::build(wl.cfg.classes, 4, {}, 1);
  for (const std::string& name : policyNames()) {
    for (const bool backfill : {false, true}) {
      ClusterConfig cfg;
      cfg.nodes = 4;
      cfg.easyBackfill = backfill;
      obs::Recorder opt(10.0), ref(10.0);
      auto a = makePolicy(name);
      auto b = makePolicy(name);
      cfg.recorder = &opt;
      simulateCluster(cfg, wl, table, *a);
      cfg.recorder = &ref;
      simulateClusterReference(cfg, wl, table, *b);
      EXPECT_EQ(opt.jsonString(), ref.jsonString())
          << name << (backfill ? " +backfill" : "");
    }
  }
  // A saturated stress point where the queue is deep, backfill works, and
  // the depth cutoff actually fires.
  const auto stress = tinyWorkload(2, 200, 200.0);
  for (const std::int32_t depth : {0, 3}) {
    ClusterConfig cfg;
    cfg.nodes = 4;
    cfg.easyBackfill = true;
    cfg.backfillDepth = depth;
    obs::Recorder opt(5.0), ref(5.0);
    FcfsRigid a, b;
    cfg.recorder = &opt;
    simulateCluster(cfg, stress, table, a);
    cfg.recorder = &ref;
    simulateClusterReference(cfg, stress, table, b);
    EXPECT_EQ(opt.jsonString(), ref.jsonString()) << "stress depth " << depth;
  }
}

TEST(ClusterTest, WaitAttributionBucketsSumExactlyToQueueWait) {
  // The integer-telescoping invariant: each job's per-reason buckets sum to
  // EXACTLY its recorded queue wait (start tick - arrival tick), asserted
  // as integer equality — no tolerance.  Saturated workload so the buckets
  // are non-trivial, both loops, all policies.
  const auto wl = tinyWorkload(2, 60, 200.0);
  const auto table = JobProfileTable::build(wl.cfg.classes, 4, {}, 1);
  for (const std::string& name : policyNames()) {
    ClusterConfig cfg;
    cfg.nodes = 4;
    cfg.easyBackfill = true;
    auto p1 = makePolicy(name);
    auto p2 = makePolicy(name);
    const auto opt = simulateCluster(cfg, wl, table, *p1);
    const auto ref = simulateClusterReference(cfg, wl, table, *p2);
    std::int64_t waited = 0;
    for (const auto* m : {&opt, &ref}) {
      for (const auto& j : m->jobs) {
        EXPECT_EQ(j.wait.sumNs(), j.wait.totalNs) << name << " job " << j.id;
        // The integer total restates the metrics' own double-seconds wait.
        EXPECT_NEAR(static_cast<double>(j.wait.totalNs) * 1e-9, j.waitSec(), 1e-9)
            << name << " job " << j.id;
        waited += j.wait.totalNs;
      }
      // The run aggregate telescopes too.
      EXPECT_EQ(m->attribution.sumNs(), m->attribution.totalNs) << name;
    }
    EXPECT_GT(waited, 0) << name; // the invariant was exercised non-trivially
  }
}

TEST(ClusterTest, BackfillDepthBoundsTheCandidateScan) {
  // bf_max_job_test semantics: depth 0 is classic unbounded EASY, a bounded
  // depth may only reduce how many jobs jump the queue, never change who is
  // at the head.  Backfill needs heterogeneous requests: long 2-node jobs
  // leave half the machine free while a 4-node head blocks, and short
  // 2-node jobs slip in (the EasyBackfill test's setup, denser arrivals).
  auto classes = tinyMix();
  classes[1].name = "jacobi-long";
  classes[1].jacobi.workers = 2;
  classes[1].jacobi.sweeps = 96;
  JobClass shortJob = classes[1];
  shortJob.name = "jacobi-short";
  shortJob.jacobi.sweeps = 4;
  classes.push_back(shortJob);
  WorkloadConfig wcfg;
  wcfg.seed = 3;
  wcfg.jobCount = 60;
  wcfg.arrivalRatePerSec = 200.0;
  wcfg.classes = classes;
  const auto wl = Workload::generate(wcfg, 4);
  const auto table = JobProfileTable::build(classes, 4, {}, 1);
  auto run = [&](std::int32_t depth) {
    ClusterConfig cfg;
    cfg.nodes = 4;
    cfg.easyBackfill = true;
    cfg.backfillDepth = depth;
    FcfsRigid policy;
    return simulateCluster(cfg, wl, table, policy);
  };
  const auto unbounded = run(0);
  std::int32_t backfilledUnbounded = 0;
  for (const auto& j : unbounded.jobs) backfilledUnbounded += j.backfilled;
  ASSERT_GT(backfilledUnbounded, 0); // the scan has actual work to bound
  const auto bounded = run(1);
  std::int32_t backfilledBounded = 0;
  for (const auto& j : bounded.jobs) backfilledBounded += j.backfilled;
  EXPECT_LE(backfilledBounded, backfilledUnbounded);
  // A large-enough depth is exactly unbounded.
  EXPECT_EQ(run(1000).jsonString(), unbounded.jsonString());
}

TEST(ClusterTest, ProgressCallbackReportsMonotoneEventCounts) {
  const auto wl = tinyWorkload(1, 10, 2.0);
  const auto table = JobProfileTable::build(wl.cfg.classes, 4, {}, 1);
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.progressEvery = 1; // every event
  std::vector<ClusterProgress> seen;
  cfg.onProgress = [&](const ClusterProgress& p) { seen.push_back(p); };
  Equipartition policy;
  const auto m = simulateCluster(cfg, wl, table, policy);
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.back().events, m.events);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].totalJobs, 10);
    EXPECT_GE(seen[i].finishedJobs, 0);
    EXPECT_LE(seen[i].finishedJobs, 10);
    if (i > 0) {
      EXPECT_GT(seen[i].events, seen[i - 1].events);
      EXPECT_GE(seen[i].simNowSec, seen[i - 1].simNowSec);
    }
  }
  // progressEvery = 0 never calls back.
  ClusterConfig quiet = cfg;
  quiet.progressEvery = 0;
  bool called = false;
  quiet.onProgress = [&](const ClusterProgress&) { called = true; };
  Equipartition p2;
  simulateCluster(quiet, wl, table, p2);
  EXPECT_FALSE(called);
}

// ---------------------------------------------------------------------------
// Metrics

TEST(MetricsTest, FinalizeMatchesHandComputation) {
  ClusterMetrics m;
  m.nodes = 4;
  JobOutcome a;
  a.arrivalSec = 0;
  a.startSec = 0;
  a.finishSec = 10;
  a.bestSec = 5; // slowdown 2
  JobOutcome b;
  b.arrivalSec = 2;
  b.startSec = 6;
  b.finishSec = 8;
  b.bestSec = 2; // slowdown 3, wait 4
  m.jobs = {a, b};
  m.timeline = {{0.0, 2}, {5.0, 4}};
  m.finalize();
  EXPECT_DOUBLE_EQ(m.makespanSec, 10.0);
  EXPECT_DOUBLE_EQ(m.meanSlowdown, 2.5);
  EXPECT_DOUBLE_EQ(m.maxSlowdown, 3.0);
  EXPECT_DOUBLE_EQ(m.meanWaitSec, 2.0);
  // (2 nodes * 5 s + 4 nodes * 5 s) / (4 nodes * 10 s)
  EXPECT_DOUBLE_EQ(m.utilization, 0.75);
}

TEST(MetricsTest, EmittersAreWellFormed) {
  Equipartition policy;
  const auto m = runTiny(policy);
  const std::string json = m.jsonString();
  for (const char* key : {"\"policy\":\"equipartition\"", "\"mean_slowdown\":",
                          "\"utilization\":", "\"jobs\":[", "\"timeline\":[", "\"allocs\":["})
    EXPECT_NE(json.find(key), std::string::npos) << key;
  std::ostringstream csv;
  m.writeCsv(csv);
  std::size_t lines = 0;
  for (char c : csv.str()) lines += c == '\n';
  EXPECT_EQ(lines, m.jobs.size() + 1); // header + one row per job
}

TEST(MetricsTest, RecordUseCoalescesTheTimeline) {
  ClusterMetrics m;
  m.recordUse(0.0, 2);
  m.recordUse(1.0, 2); // unchanged value: dropped
  ASSERT_EQ(m.timeline.size(), 1u);
  m.recordUse(1.0, 4); // same instant, new value: appended
  m.recordUse(1.0, 6); // same instant again: overwrites, no growth
  ASSERT_EQ(m.timeline.size(), 2u);
  EXPECT_EQ(m.timeline[1].timeSec, 1.0);
  EXPECT_EQ(m.timeline[1].usedNodes, 6);
  m.recordUse(1.0, 2); // back to the predecessor's value: zero-width point dies
  ASSERT_EQ(m.timeline.size(), 1u);
  EXPECT_EQ(m.timeline[0].timeSec, 0.0);
  EXPECT_EQ(m.timeline[0].usedNodes, 2);
  m.recordUse(2.0, 3);
  ASSERT_EQ(m.timeline.size(), 2u);
  EXPECT_EQ(m.timeline[1].usedNodes, 3);
}

TEST(MetricsTest, TimelineDownsampleKeepsEndpointsAndAggregates) {
  ClusterMetrics m;
  m.nodes = 4;
  JobOutcome j;
  j.finishSec = 100.0;
  j.bestSec = 1.0;
  m.jobs = {j};
  for (int i = 0; i < 100; ++i) m.recordUse(i, 1 + i % 4);
  m.finalize();
  const std::string full = m.jsonString();
  const std::string sampled = m.jsonString(10);
  auto countPoints = [](const std::string& json) {
    const std::string needle = "{\"t\":";
    std::size_t n = 0;
    for (std::size_t at = json.find(needle); at != std::string::npos;
         at = json.find(needle, at + 1))
      ++n;
    return n;
  };
  EXPECT_EQ(countPoints(full), 100u);
  EXPECT_LE(countPoints(sampled), 10u);
  EXPECT_GE(countPoints(sampled), 2u);
  // First and last points survive; the full resolution is still reported.
  EXPECT_NE(sampled.find("{\"t\":0,\"used\":1}"), std::string::npos);
  EXPECT_NE(sampled.find("{\"t\":99,\"used\":4}"), std::string::npos);
  EXPECT_NE(sampled.find("\"timeline_points\":100"), std::string::npos);
  // Down-sampling only affects the emitted timeline, never the aggregates.
  const std::string head = full.substr(0, full.find("\"jobs\""));
  EXPECT_EQ(head, sampled.substr(0, sampled.find("\"jobs\"")));
  // The in-memory timeline is untouched either way.
  EXPECT_EQ(m.timeline.size(), 100u);
}

/// Minimal RFC-4180 parser for one CSV line (quotes, doubled quotes,
/// embedded commas).
std::vector<std::string> parseCsvRow(const std::string& line) {
  std::vector<std::string> fields{""};
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"' && i + 1 < line.size() && line[i + 1] == '"') {
        fields.back() += '"';
        ++i;
      } else if (c == '"') {
        quoted = false;
      } else {
        fields.back() += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.emplace_back();
    } else {
      fields.back() += c;
    }
  }
  return fields;
}

TEST(MetricsTest, CsvRoundTripsCommaAndQuoteInClassName) {
  // The class name is user-definable (workload configs name their own
  // mixes); a comma or quote in it must not shear the row apart.
  ClusterMetrics m;
  m.nodes = 4;
  JobOutcome j;
  j.id = 7;
  j.klass = "lu \"wide\", 8 nodes";
  j.arrivalSec = 1;
  j.startSec = 2;
  j.finishSec = 5;
  j.bestSec = 1.5;
  j.allocs = {4, 4};
  j.backfilled = true;
  m.jobs = {j};
  m.finalize();
  std::ostringstream os;
  m.writeCsv(os);
  const std::string text = os.str();
  const std::string header = text.substr(0, text.find('\n'));
  const std::string row = text.substr(text.find('\n') + 1,
                                      text.rfind('\n') - text.find('\n') - 1);
  const auto cols = parseCsvRow(header);
  const auto fields = parseCsvRow(row);
  ASSERT_EQ(fields.size(), cols.size()); // the embedded comma did not split
  EXPECT_EQ(fields[0], "7");
  EXPECT_EQ(fields[1], j.klass); // quote + comma round-trip intact
  EXPECT_EQ(fields.back(), "1"); // backfilled flag
}

} // namespace
} // namespace dps::sched
