// sched:: cluster-workload subsystem: workload generation, job profiles,
// scheduling policies, the cluster event loop and its metrics.
#include <gtest/gtest.h>

#include <sstream>

#include "sched/cluster.hpp"

namespace dps::sched {
namespace {

/// Tiny mix for fast unit tests (8-level LU + 6-sweep Jacobi).
std::vector<JobClass> tinyMix() {
  JobClass lu;
  lu.name = "lu-tiny";
  lu.app = AppKind::Lu;
  lu.lu.n = 64;
  lu.lu.r = 8;
  lu.lu.workers = 4;
  lu.lu.seed = 3;
  JobClass ja;
  ja.name = "jacobi-tiny";
  ja.app = AppKind::Jacobi;
  ja.jacobi.rows = 64;
  ja.jacobi.cols = 64;
  ja.jacobi.sweeps = 6;
  ja.jacobi.workers = 4;
  return {lu, ja};
}

Workload tinyWorkload(std::uint64_t seed, std::int32_t jobCount = 8, double rate = 1.0) {
  WorkloadConfig cfg;
  cfg.seed = seed;
  cfg.jobCount = jobCount;
  cfg.arrivalRatePerSec = rate;
  cfg.classes = tinyMix();
  return Workload::generate(cfg, 4);
}

TEST(WorkloadTest, DeterministicInSeed) {
  const auto a = tinyWorkload(7);
  const auto b = tinyWorkload(7);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].arrivalSec, b.jobs[i].arrivalSec);
    EXPECT_EQ(a.jobs[i].klass, b.jobs[i].klass);
  }
  const auto c = tinyWorkload(8);
  bool differs = false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i)
    differs = differs || a.jobs[i].arrivalSec != c.jobs[i].arrivalSec;
  EXPECT_TRUE(differs);
}

TEST(WorkloadTest, ArrivalsFollowTheConfiguredRate) {
  const auto wl = tinyWorkload(1, 4000, 0.5);
  // Mean inter-arrival gap of a rate-0.5 Poisson process is 2 s.
  const double meanGap = wl.jobs.back().arrivalSec / static_cast<double>(wl.jobs.size());
  EXPECT_NEAR(meanGap, 2.0, 0.2);
  for (std::size_t i = 1; i < wl.jobs.size(); ++i)
    EXPECT_GT(wl.jobs[i].arrivalSec, wl.jobs[i - 1].arrivalSec);
}

TEST(WorkloadTest, MixCoversAllClasses) {
  const auto wl = tinyWorkload(1, 200);
  std::vector<int> counts(wl.cfg.classes.size(), 0);
  for (const Job& j : wl.jobs) counts[j.klass]++;
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(WorkloadTest, FeasibleAllocationsRespectAppConstraints) {
  const auto mix = tinyMix();
  // LU: any worker count down to 1 is feasible.
  EXPECT_EQ(feasibleAllocations(mix[0], 4), (std::vector<std::int32_t>{1, 2, 4}));
  // Jacobi: at least two strips.
  EXPECT_EQ(feasibleAllocations(mix[1], 4), (std::vector<std::int32_t>{2, 4}));
  // Cluster smaller than the request clamps the top allocation.
  EXPECT_EQ(feasibleAllocations(mix[0], 2), (std::vector<std::int32_t>{1, 2}));
  // A non-power-of-two request is still offered as the job's maximum.
  JobClass wide = mix[0];
  wide.lu.workers = 6;
  EXPECT_EQ(feasibleAllocations(wide, 8), (std::vector<std::int32_t>{1, 2, 4, 6}));
}

TEST(ProfileTableTest, BitIdenticalAtAnyBuildConcurrency) {
  const auto classes = tinyMix();
  const auto serial = JobProfileTable::build(classes, 4, {}, 1);
  const auto parallel = JobProfileTable::build(classes, 4, {}, 4);
  ASSERT_EQ(serial.classCount(), parallel.classCount());
  for (std::size_t c = 0; c < serial.classCount(); ++c) {
    const auto& a = serial.of(c);
    const auto& b = parallel.of(c);
    ASSERT_EQ(a.allocs, b.allocs);
    for (std::size_t i = 0; i < a.byAlloc.size(); ++i) {
      EXPECT_EQ(a.byAlloc[i].totalSec, b.byAlloc[i].totalSec); // bitwise
      EXPECT_EQ(a.byAlloc[i].phaseSec, b.byAlloc[i].phaseSec);
      EXPECT_EQ(a.byAlloc[i].phaseEff, b.byAlloc[i].phaseEff);
    }
  }
}

TEST(ProfileTableTest, PhaseDurationsSumToMakespan) {
  const auto table = JobProfileTable::build(tinyMix(), 4, {}, 1);
  for (std::size_t c = 0; c < table.classCount(); ++c) {
    const auto& cp = table.of(c);
    EXPECT_GE(cp.phases(), 2);
    for (const PhaseProfile& p : cp.byAlloc) {
      double sum = 0;
      for (double s : p.phaseSec) sum += s;
      EXPECT_NEAR(sum, p.totalSec, 1e-9 * p.totalSec + 1e-12);
      for (double e : p.phaseEff) {
        EXPECT_GE(e, 0.0);
        EXPECT_LE(e, 1.0);
      }
    }
  }
}

TEST(ProfileTableTest, MigrationModelShrinksWithProgress) {
  const auto table = JobProfileTable::build(tinyMix(), 4, {}, 1);
  const auto& lu = table.of(0);
  EXPECT_EQ(lu.migrationBytes(1, 4, 4), 0.0);
  const double early = lu.migrationBytes(1, 4, 2);
  const double late = lu.migrationBytes(lu.phases() - 1, 4, 2);
  EXPECT_GT(early, 0.0);
  EXPECT_GT(late, 0.0);
  EXPECT_LT(late, early); // factored LU columns no longer move
  // The Jacobi grid stays live for the whole run.
  const auto& ja = table.of(1);
  EXPECT_EQ(ja.migrationBytes(1, 4, 2), ja.migrationBytes(ja.phases() - 1, 4, 2));
}

TEST(ProfileTableTest, ClampFeasible) {
  const auto table = JobProfileTable::build(tinyMix(), 4, {}, 1);
  const auto& ja = table.of(1); // allocs {2, 4}
  EXPECT_EQ(ja.clampFeasible(8), 4);
  EXPECT_EQ(ja.clampFeasible(3), 2);
  EXPECT_EQ(ja.clampFeasible(1), 2); // below minimum -> minimum
}

// ---------------------------------------------------------------------------
// Cluster event loop

ClusterMetrics runTiny(Policy& policy, std::uint64_t seed = 1) {
  const auto wl = tinyWorkload(seed, 10, 2.0);
  const auto table = JobProfileTable::build(wl.cfg.classes, 4, {}, 1);
  ClusterConfig cfg;
  cfg.nodes = 4;
  return simulateCluster(cfg, wl, table, policy);
}

TEST(ClusterTest, AllJobsServedAndAccountingConsistent) {
  for (const std::string& name : policyNames()) {
    auto policy = makePolicy(name);
    const auto m = runTiny(*policy);
    ASSERT_EQ(m.jobs.size(), 10u) << name;
    for (const auto& j : m.jobs) {
      EXPECT_GE(j.startSec, 0.0);
      EXPECT_GE(j.finishSec, j.startSec);
      EXPECT_GE(j.slowdown(), 0.99) << name; // nanosecond quantization slack
      EXPECT_FALSE(j.allocs.empty());
    }
    EXPECT_GT(m.makespanSec, 0.0);
    EXPECT_GT(m.utilization, 0.0);
    EXPECT_LE(m.utilization, 1.0 + 1e-9);
    for (const auto& p : m.timeline) {
      EXPECT_GE(p.usedNodes, 0);
      EXPECT_LE(p.usedNodes, 4);
    }
  }
}

TEST(ClusterTest, RigidPolicyNeverReallocates) {
  FcfsRigid policy;
  const auto m = runTiny(policy);
  EXPECT_EQ(m.reallocations, 0);
  EXPECT_EQ(m.migratedBytes, 0.0);
  for (const auto& j : m.jobs)
    for (std::int32_t a : j.allocs) EXPECT_EQ(a, j.allocs.front());
}

TEST(ClusterTest, EfficiencyShrinkReleasesNodesAndChargesMigration) {
  EfficiencyShrink policy(0.9); // aggressive: LU efficiency decays well below
  const auto m = runTiny(policy);
  EXPECT_GT(m.reallocations, 0);
  EXPECT_GT(m.migratedBytes, 0.0);
  bool shrank = false;
  for (const auto& j : m.jobs)
    for (std::size_t p = 1; p < j.allocs.size(); ++p)
      shrank = shrank || j.allocs[p] < j.allocs[p - 1];
  EXPECT_TRUE(shrank);
}

TEST(ClusterTest, DeterministicAcrossRunsAndProfileJobs) {
  // The dps_cluster acceptance contract: identical reports across
  // repetitions and across profile-build concurrency.
  const auto wl = tinyWorkload(1, 10, 2.0);
  const auto serial = JobProfileTable::build(wl.cfg.classes, 4, {}, 1);
  const auto parallel = JobProfileTable::build(wl.cfg.classes, 4, {}, 4);
  ClusterConfig cfg;
  cfg.nodes = 4;
  Equipartition a, b;
  EXPECT_EQ(simulateCluster(cfg, wl, serial, a).jsonString(),
            simulateCluster(cfg, wl, parallel, b).jsonString());
}

TEST(ClusterTest, EquipartitionBeatsFcfsRigidOnTheBenchDefaultWorkload) {
  // The cluster_policies bench default point: 8 nodes, default mix, seed 1,
  // rate 0.15, 12 jobs — equipartition must win on mean slowdown.
  WorkloadConfig wcfg;
  wcfg.seed = 1;
  wcfg.jobCount = 12;
  wcfg.arrivalRatePerSec = 0.15;
  const auto wl = Workload::generate(wcfg, 8);
  const auto table = JobProfileTable::build(wl.cfg.classes, 8, {}, 1);
  const auto ccfg = ClusterConfig::fromProfile(ProfileSettings{}.platform, 8);
  FcfsRigid fcfs;
  Equipartition equip;
  const auto mFcfs = simulateCluster(ccfg, wl, table, fcfs);
  const auto mEquip = simulateCluster(ccfg, wl, table, equip);
  EXPECT_LT(mEquip.meanSlowdown, mFcfs.meanSlowdown);
  EXPECT_LT(mEquip.meanWaitSec, mFcfs.meanWaitSec);
}

TEST(ClusterTest, ZeroCostMigrationAblationNeverSlower) {
  const auto wl = tinyWorkload(1, 10, 2.0);
  const auto table = JobProfileTable::build(wl.cfg.classes, 4, {}, 1);
  ClusterConfig charged;
  charged.nodes = 4;
  ClusterConfig zero = charged;
  zero.chargeMigration = false;
  EfficiencyShrink a(0.9), b(0.9);
  const auto mCharged = simulateCluster(charged, wl, table, a);
  const auto mZero = simulateCluster(zero, wl, table, b);
  EXPECT_LE(mZero.makespanSec, mCharged.makespanSec + 1e-9);
}

// ---------------------------------------------------------------------------
// Metrics

TEST(MetricsTest, FinalizeMatchesHandComputation) {
  ClusterMetrics m;
  m.nodes = 4;
  JobOutcome a;
  a.arrivalSec = 0;
  a.startSec = 0;
  a.finishSec = 10;
  a.bestSec = 5; // slowdown 2
  JobOutcome b;
  b.arrivalSec = 2;
  b.startSec = 6;
  b.finishSec = 8;
  b.bestSec = 2; // slowdown 3, wait 4
  m.jobs = {a, b};
  m.timeline = {{0.0, 2}, {5.0, 4}};
  m.finalize();
  EXPECT_DOUBLE_EQ(m.makespanSec, 10.0);
  EXPECT_DOUBLE_EQ(m.meanSlowdown, 2.5);
  EXPECT_DOUBLE_EQ(m.maxSlowdown, 3.0);
  EXPECT_DOUBLE_EQ(m.meanWaitSec, 2.0);
  // (2 nodes * 5 s + 4 nodes * 5 s) / (4 nodes * 10 s)
  EXPECT_DOUBLE_EQ(m.utilization, 0.75);
}

TEST(MetricsTest, EmittersAreWellFormed) {
  Equipartition policy;
  const auto m = runTiny(policy);
  const std::string json = m.jsonString();
  for (const char* key : {"\"policy\":\"equipartition\"", "\"mean_slowdown\":",
                          "\"utilization\":", "\"jobs\":[", "\"timeline\":[", "\"allocs\":["})
    EXPECT_NE(json.find(key), std::string::npos) << key;
  std::ostringstream csv;
  m.writeCsv(csv);
  std::size_t lines = 0;
  for (char c : csv.str()) lines += c == '\n';
  EXPECT_EQ(lines, m.jobs.size() + 1); // header + one row per job
}

} // namespace
} // namespace dps::sched
