#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blocked_lu.hpp"
#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"

namespace dps::lin {
namespace {

TEST(MatrixTest, BlockExtractAndInsertRoundTrip) {
  Matrix m = testMatrix(1, 8);
  Matrix b = m.block(2, 4, 3, 2);
  EXPECT_EQ(b.rows(), 3);
  EXPECT_EQ(b.cols(), 2);
  EXPECT_DOUBLE_EQ(b(0, 0), m(2, 4));
  Matrix m2 = m;
  m2.setBlock(2, 4, b);
  EXPECT_EQ(m2, m);
}

TEST(MatrixTest, SwapRows) {
  Matrix m(3, 3);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) m(i, j) = i * 10 + j;
  m.swapRows(0, 2);
  EXPECT_DOUBLE_EQ(m(0, 1), 21);
  EXPECT_DOUBLE_EQ(m(2, 1), 1);
  m.swapRows(1, 1); // no-op
  EXPECT_DOUBLE_EQ(m(1, 1), 11);
}

TEST(MatrixTest, OutOfRangeBlockThrows) {
  Matrix m(4, 4);
  EXPECT_THROW(m.block(2, 2, 3, 3), Error);
  Matrix b(3, 3);
  EXPECT_THROW(m.setBlock(2, 2, b), Error);
}

TEST(MatrixTest, TestMatrixIsDeterministicAndSeedDependent) {
  EXPECT_EQ(testMatrix(5, 16), testMatrix(5, 16));
  EXPECT_NE(testMatrix(5, 16), testMatrix(6, 16));
}

TEST(MatrixTest, TestPanelMatchesFullMatrix) {
  const Matrix full = testMatrix(9, 12);
  const Matrix panel = testPanel(9, 12, 4, 3);
  for (int i = 0; i < 12; ++i)
    for (int j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(panel(i, j), full(i, 4 + j));
}

TEST(KernelsTest, GemmMatchesManual) {
  Matrix a(2, 3), b(3, 2);
  int v = 1;
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 3; ++j) a(i, j) = v++;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 2; ++j) b(i, j) = v++;
  const Matrix c = gemm(a, b);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  EXPECT_DOUBLE_EQ(c(0, 0), 1 * 7 + 2 * 9 + 3 * 11);
  EXPECT_DOUBLE_EQ(c(1, 1), 4 * 8 + 5 * 10 + 6 * 12);
}

TEST(KernelsTest, GemmSubtractIsGemmNegated) {
  const Matrix a = testMatrix(2, 6);
  const Matrix b = testMatrix(3, 6);
  Matrix c = testMatrix(4, 6);
  const Matrix expected = c;
  gemmSubtract(a, b, c);
  const Matrix prod = gemm(a, b);
  for (int i = 0; i < 6; ++i)
    for (int j = 0; j < 6; ++j)
      EXPECT_NEAR(c(i, j), expected(i, j) - prod(i, j), 1e-12);
}

TEST(KernelsTest, TrsmSolvesUnitLowerSystem) {
  const int k = 8;
  Matrix l = testMatrix(11, k);
  // Make strictly-lower-triangular content meaningful; diagonal is implicit 1.
  Matrix b = testMatrix(12, k);
  Matrix x = b;
  trsmLowerUnit(l, x);
  // Verify L * x == b with unit diagonal.
  Matrix lUnit(k, k);
  for (int i = 0; i < k; ++i) {
    lUnit(i, i) = 1.0;
    for (int j = 0; j < i; ++j) lUnit(i, j) = l(i, j);
  }
  const Matrix back = gemm(lUnit, x);
  for (int i = 0; i < k; ++i)
    for (int j = 0; j < k; ++j) EXPECT_NEAR(back(i, j), b(i, j), 1e-9);
}

TEST(KernelsTest, PanelLuFactorsTallPanel) {
  const int m = 16, k = 4;
  Matrix panel = testPanel(3, m, 0, k);
  const Matrix original = panel;
  std::vector<std::int32_t> pivots;
  ASSERT_TRUE(panelLu(panel, pivots));
  ASSERT_EQ(pivots.size(), static_cast<std::size_t>(k));

  // Rebuild P*A from L and U and compare.
  Matrix pa = original;
  applyPivots(pa, pivots, 0);
  Matrix l(m, k), u(k, k);
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < k; ++j) {
      if (i == j) {
        l(i, j) = 1.0;
        u(i, j) = panel(i, j);
      } else if (i > j) {
        l(i, j) = panel(i, j);
      } else {
        u(i, j) = panel(i, j);
      }
    }
  const Matrix lu = gemm(l, u);
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < k; ++j) EXPECT_NEAR(lu(i, j), pa(i, j), 1e-9);
}

TEST(KernelsTest, PanelLuDetectsSingularity) {
  Matrix panel(4, 2, 0.0); // all zeros
  std::vector<std::int32_t> pivots;
  EXPECT_FALSE(panelLu(panel, pivots));
}

TEST(KernelsTest, PivotApplicationReversible) {
  Matrix m = testMatrix(7, 10);
  const Matrix original = m;
  std::vector<std::int32_t> pivots{3, 1, 4, 3};
  applyPivots(m, pivots, 2);
  EXPECT_NE(m, original);
  applyPivotsReverse(m, pivots, 2);
  EXPECT_EQ(m, original);
}

TEST(KernelsTest, FlopCountsArePositiveAndScale) {
  EXPECT_DOUBLE_EQ(gemmFlops(2, 3, 4), 48.0);
  EXPECT_GT(trsmFlops(8, 8), 0.0);
  EXPECT_GT(panelLuFlops(16, 8), panelLuFlops(8, 8));
}

TEST(BlockLuTest, MatchesPlainLuResidual) {
  const int n = 48;
  const Matrix a = testMatrix(21, n);
  for (int r : {4, 8, 16, 24}) {
    const auto f = blockLu(a, r);
    const double res = luResidual(a, f, r);
    EXPECT_LT(res, 1e-10) << "block size " << r;
  }
}

TEST(BlockLuTest, PlainLuResidualIsTiny) {
  const int n = 32;
  const Matrix a = testMatrix(33, n);
  const auto f = plainLu(a);
  EXPECT_LT(luResidual(a, f, n), 1e-10);
}

TEST(BlockLuTest, BlockAndPlainAgreeOnFactors) {
  const int n = 24;
  const Matrix a = testMatrix(5, n);
  const auto blocked = blockLu(a, 8);
  const auto plain = plainLu(a);
  // Same matrix, same pivoting strategy: identical packed factors.
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      EXPECT_NEAR(blocked.lu(i, j), plain.lu(i, j), 1e-9) << i << "," << j;
}

TEST(BlockLuTest, RejectsBadBlockSize) {
  const Matrix a = testMatrix(1, 12);
  EXPECT_THROW(blockLu(a, 5), Error);
}

class BlockLuSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(BlockLuSweep, ResidualSmallAcrossSizes) {
  const auto [n, r] = GetParam();
  const Matrix a = testMatrix(static_cast<std::uint64_t>(n) * 31 + r, n);
  const auto f = blockLu(a, r);
  EXPECT_LT(luResidual(a, f, r), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BlockLuSweep,
                         ::testing::Values(std::pair{16, 4}, std::pair{32, 8},
                                           std::pair{40, 10}, std::pair{64, 16},
                                           std::pair{64, 32}, std::pair{96, 24}));

} // namespace
} // namespace dps::lin
