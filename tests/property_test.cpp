// Property-based and fuzz tests: randomized inputs, structural invariants.
#include <gtest/gtest.h>

#include <map>

#include "core/engine.hpp"
#include "des/scheduler.hpp"
#include "net/network.hpp"
#include "serial/archive.hpp"
#include "support/rng.hpp"
#include "test_graphs.hpp"

namespace dps {
namespace {

// --- scheduler fuzz -------------------------------------------------------

TEST(SchedulerFuzz, RandomScheduleAndCancelKeepsInvariants) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    des::Scheduler sched;
    std::vector<des::EventId> pending;
    int fired = 0;
    int scheduled = 0;
    int cancelled = 0;
    SimTime lastFired = simEpoch();
    bool monotonic = true;

    for (int i = 0; i < 2000; ++i) {
      const auto roll = rng.below(10);
      if (roll < 6) {
        // Schedule at a random future offset.
        const auto delay = nanoseconds(static_cast<std::int64_t>(rng.below(1000000)));
        pending.push_back(sched.scheduleAfter(delay, [&] {
          if (sched.now() < lastFired) monotonic = false;
          lastFired = sched.now();
          ++fired;
        }));
        ++scheduled;
      } else if (roll < 8 && !pending.empty()) {
        const auto idx = rng.below(pending.size());
        if (sched.cancel(pending[idx])) ++cancelled;
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(idx));
      } else {
        sched.step();
      }
    }
    sched.run();
    EXPECT_TRUE(monotonic) << "seed " << seed;
    EXPECT_EQ(fired + cancelled, scheduled) << "seed " << seed;
    EXPECT_TRUE(sched.empty());
  }
}

// --- network fuzz ---------------------------------------------------------

TEST(NetworkFuzz, RandomTransfersRespectPhysicalBounds) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed * 97);
    des::Scheduler sched;
    net::StarNetwork::Config cfg;
    cfg.latency = microseconds(100);
    cfg.bytesPerSec = 10e6;
    cfg.localDelivery = microseconds(1);
    net::StarNetwork net(sched, cfg, 6);

    struct Sent {
      SimTime at{};
      std::size_t bytes = 0;
      bool crossNode = false;
      SimTime delivered{};
    };
    auto sent = std::make_shared<std::vector<Sent>>();

    for (int i = 0; i < 300; ++i) {
      const auto src = static_cast<net::NodeIndex>(rng.below(6));
      const auto dst = static_cast<net::NodeIndex>(rng.below(6));
      const std::size_t bytes = 64 + rng.below(1 << 18);
      const auto launchAt = nanoseconds(static_cast<std::int64_t>(rng.below(50000000)));
      sched.scheduleAfter(launchAt, [&net, &sched, sent, src, dst, bytes] {
        const std::size_t idx = sent->size();
        sent->push_back({sched.now(), bytes, src != dst, {}});
        net.send(src, dst, bytes, [&sched, sent, idx] {
          (*sent)[idx].delivered = sched.now();
        });
      });
    }
    sched.run();

    ASSERT_EQ(sent->size(), 300u);
    for (const auto& s : *sent) {
      ASSERT_GT(s.delivered, s.at); // everything delivered, time advanced
      if (s.crossNode) {
        // Never faster than the uncontended l + s/b bound.
        EXPECT_GE(s.delivered - s.at, net.uncontendedTime(s.bytes));
      } else {
        EXPECT_EQ(s.delivered - s.at, cfg.localDelivery);
      }
    }
    // Links fully drained.
    for (net::NodeIndex n = 0; n < 6; ++n) {
      EXPECT_EQ(net.activeIncoming(n), 0);
      EXPECT_EQ(net.activeOutgoing(n), 0);
    }
  }
}

TEST(NetworkFuzz, DeterministicAcrossIdenticalRuns) {
  auto runOnce = [](std::uint64_t seed) {
    Rng rng(seed);
    des::Scheduler sched;
    net::StarNetwork::Config cfg;
    cfg.latency = microseconds(80);
    cfg.bytesPerSec = 5e6;
    net::StarNetwork net(sched, cfg, 4);
    std::int64_t checksum = 0;
    for (int i = 0; i < 200; ++i) {
      const auto src = static_cast<net::NodeIndex>(rng.below(4));
      const auto dst = static_cast<net::NodeIndex>((src + 1 + rng.below(3)) % 4);
      const std::size_t bytes = 100 + rng.below(100000);
      const auto at = nanoseconds(static_cast<std::int64_t>(rng.below(10000000)));
      sched.scheduleAfter(at, [&net, &sched, &checksum, src, dst, bytes] {
        net.send(src, dst, bytes, [&sched, &checksum] {
          checksum = checksum * 31 + sched.now().time_since_epoch().count();
        });
      });
    }
    sched.run();
    return checksum;
  };
  EXPECT_EQ(runOnce(7), runOnce(7));
  EXPECT_NE(runOnce(7), runOnce(8));
}

// --- serialization fuzz ----------------------------------------------------

struct FuzzObj final : serial::Object<FuzzObj> {
  static constexpr const char* kTypeName = "fuzz.obj";
  std::int32_t a = 0;
  std::int64_t b = 0;
  double c = 0;
  std::string s;
  std::vector<double> v;
  std::vector<std::pair<std::int32_t, std::string>> pairs;
  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, a, b, c, s, v, pairs);
  }
};

TEST(SerialFuzz, RandomObjectsRoundTripAndSizeExactly) {
  Rng rng(2024);
  for (int i = 0; i < 200; ++i) {
    FuzzObj obj;
    obj.a = static_cast<std::int32_t>(rng());
    obj.b = static_cast<std::int64_t>(rng());
    obj.c = rng.uniform(-1e10, 1e10);
    obj.s.assign(rng.below(200), 'x');
    for (auto& ch : obj.s) ch = static_cast<char>('a' + rng.below(26));
    obj.v.resize(rng.below(100));
    for (auto& d : obj.v) d = rng.normal();
    const auto nPairs = rng.below(10);
    for (std::uint64_t p = 0; p < nPairs; ++p)
      obj.pairs.emplace_back(static_cast<std::int32_t>(rng()),
                             std::string(rng.below(20), 'q'));

    const auto bytes = obj.encode();
    EXPECT_EQ(bytes.size(), obj.wireSize());

    FuzzObj back;
    serial::ReadArchive ar({bytes.data(), bytes.size()});
    back.load(ar);
    EXPECT_EQ(ar.remaining(), 0u);
    EXPECT_EQ(back.a, obj.a);
    EXPECT_EQ(back.b, obj.b);
    EXPECT_DOUBLE_EQ(back.c, obj.c);
    EXPECT_EQ(back.s, obj.s);
    EXPECT_EQ(back.v, obj.v);
    EXPECT_EQ(back.pairs, obj.pairs);
  }
}

// --- engine sweep: conservation across the parameter grid ------------------

struct GridParam {
  std::int32_t jobs;
  std::int32_t workers;
  std::int32_t fc;
};

class FanoutGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(FanoutGrid, MessagesAndResultsConserved) {
  const auto& p = GetParam();
  test::FanoutSpec spec;
  spec.jobs = p.jobs;
  spec.workers = p.workers;
  spec.fcLimit = p.fc;
  spec.payloadBytes = 256;
  auto b = test::buildFanout(spec);

  core::SimConfig cfg;
  cfg.profile = net::PlatformProfile{};
  core::SimEngine engine(cfg);
  flow::Program prog;
  prog.graph = b.graph.get();
  prog.deployment = test::spreadDeployment(b);
  prog.inputs = b.inputs;
  auto result = engine.run(prog);

  const auto& sum = dynamic_cast<const test::Sum&>(*result.outputs.at(0));
  EXPECT_EQ(sum.count, p.jobs);
  EXPECT_EQ(sum.total, 2LL * (static_cast<std::int64_t>(p.jobs) * (p.jobs - 1) / 2));
  // jobs out + jobs back + 1 output.
  EXPECT_EQ(result.counters.messages, static_cast<std::uint64_t>(2 * p.jobs + 1));
  // steps: 1 split input + jobs emits + jobs computes + jobs absorbs + 1 finalize.
  EXPECT_EQ(result.counters.steps, static_cast<std::uint64_t>(3 * p.jobs + 2));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FanoutGrid,
    ::testing::Values(GridParam{1, 1, 0}, GridParam{7, 3, 0}, GridParam{16, 4, 0},
                      GridParam{16, 4, 1}, GridParam{16, 4, 3}, GridParam{33, 5, 2},
                      GridParam{100, 2, 0}, GridParam{100, 7, 5}, GridParam{64, 8, 8},
                      GridParam{13, 13, 1}),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      return "j" + std::to_string(info.param.jobs) + "_w" + std::to_string(info.param.workers) +
             "_fc" + std::to_string(info.param.fc);
    });

// --- CPU model conservation -------------------------------------------------

TEST(CpuModelProperty, WorkIsConservedUnderSharing) {
  // However steps interleave, the total virtual time to finish all steps on
  // one node equals the total work when the node is never idle.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed * 13);
    des::Scheduler sched;
    core::CpuModel::Config cfg;
    cfg.sharing = true;
    cfg.commOverhead = false;
    core::CpuModel cpu(sched, cfg, 1);
    SimDuration total{};
    const int n = 20;
    for (int i = 0; i < n; ++i) {
      const auto work = microseconds(static_cast<std::int64_t>(1 + rng.below(5000)));
      total += work;
      cpu.startStep(0, work, [] {});
    }
    sched.run();
    EXPECT_EQ(sched.now().time_since_epoch(), total) << "seed " << seed;
  }
}

} // namespace
} // namespace dps
