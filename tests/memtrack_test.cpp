// Heap accounting used by the Table 1 memory column.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "support/memtrack.hpp"

namespace dps::memtrack {
namespace {

TEST(MemtrackTest, ActiveWhenLinked) { EXPECT_TRUE(active()); }

TEST(MemtrackTest, TracksAllocationAndRelease) {
  const std::size_t before = currentBytes();
  {
    auto buf = std::make_unique<std::vector<double>>(1 << 16); // 512 KiB
    EXPECT_GE(currentBytes(), before + (1u << 16) * sizeof(double));
  }
  EXPECT_LE(currentBytes(), before + 4096); // back down (modulo noise)
}

TEST(MemtrackTest, PeakHoldsHighWaterMark) {
  resetPeak();
  const std::size_t base = peakBytes();
  {
    std::vector<char> big(8 << 20); // 8 MiB
    EXPECT_GE(peakBytes(), base + (8u << 20));
  }
  // Peak persists after the allocation is gone.
  EXPECT_GE(peakBytes(), base + (8u << 20));
  resetPeak();
  EXPECT_LT(peakBytes(), base + (8u << 20));
}

} // namespace
} // namespace dps::memtrack
