// The distributed LU application on the simulator: correctness under
// direct execution (real kernels, residual check) and behaviour under
// PDEXEC / NOALLOC (paper §5, §7).
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "lu/app.hpp"
#include "lu/builder.hpp"
#include "lu/cost_model.hpp"
#include "net/profile.hpp"

// Sanitizer instrumentation skews host-measured kernel timings (allocation
// poisoning makes the sampled first instances unrepresentative), so the
// calibration-accuracy assertion below is skipped when ASan is active.
#if defined(__SANITIZE_ADDRESS__)
#define DPS_ASAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DPS_ASAN_ACTIVE 1
#endif
#endif
#ifndef DPS_ASAN_ACTIVE
#define DPS_ASAN_ACTIVE 0
#endif

namespace dps::lu {
namespace {

LuConfig smallConfig() {
  LuConfig cfg;
  cfg.n = 48;
  cfg.r = 12; // 4 levels
  cfg.workers = 2;
  cfg.seed = 77;
  return cfg;
}

core::SimConfig simConfig(core::ExecutionMode mode, bool allocate = true) {
  core::SimConfig c;
  c.profile = net::commodityGigabit();
  c.mode = mode;
  c.allocatePayloads = allocate;
  return c;
}

KernelCostModel fastModel() {
  // A fast model keeps virtual times small in unit tests.
  return KernelCostModel::ultraSparc440().scaled(100.0);
}

TEST(LuConfigTest, Validation) {
  LuConfig cfg = smallConfig();
  EXPECT_NO_THROW(cfg.validate());
  cfg.r = 13; // does not divide n
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg = smallConfig();
  cfg.r = cfg.n; // single level
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg = smallConfig();
  cfg.parallelMult = true;
  cfg.subBlock = 5; // does not divide r
  EXPECT_THROW(cfg.validate(), ConfigError);
}

TEST(LuConfigTest, VariantNames) {
  LuConfig cfg = smallConfig();
  EXPECT_EQ(cfg.variantName(), "Basic");
  cfg.pipelined = true;
  EXPECT_EQ(cfg.variantName(), "P");
  cfg.flowControl = true;
  EXPECT_EQ(cfg.variantName(), "P+FC");
  cfg.parallelMult = true;
  EXPECT_EQ(cfg.variantName(), "P+PM+FC");
  cfg.pipelined = false;
  cfg.flowControl = false;
  EXPECT_EQ(cfg.variantName(), "PM");
}

TEST(LuDirectTest, BasicGraphFactorsCorrectly) {
  const LuConfig cfg = smallConfig();
  core::SimEngine engine(simConfig(core::ExecutionMode::DirectExec));
  LuBuild build = buildLu(cfg, fastModel(), /*allocate=*/true);
  auto result = runLu(engine, build);
  checkOutputs(cfg, result);
  EXPECT_LT(verifyLu(cfg, result, build.workersGroup), 1e-10);
}

TEST(LuDirectTest, PipelinedGraphFactorsCorrectly) {
  LuConfig cfg = smallConfig();
  cfg.pipelined = true;
  core::SimEngine engine(simConfig(core::ExecutionMode::DirectExec));
  LuBuild build = buildLu(cfg, fastModel(), true);
  auto result = runLu(engine, build);
  EXPECT_LT(verifyLu(cfg, result, build.workersGroup), 1e-10);
}

TEST(LuDirectTest, FlowControlGraphFactorsCorrectly) {
  LuConfig cfg = smallConfig();
  cfg.pipelined = true;
  cfg.flowControl = true;
  cfg.fcLimit = 2;
  core::SimEngine engine(simConfig(core::ExecutionMode::DirectExec));
  LuBuild build = buildLu(cfg, fastModel(), true);
  auto result = runLu(engine, build);
  EXPECT_LT(verifyLu(cfg, result, build.workersGroup), 1e-10);
}

TEST(LuDirectTest, ParallelMultGraphFactorsCorrectly) {
  LuConfig cfg = smallConfig();
  cfg.parallelMult = true;
  cfg.subBlock = 6;
  core::SimEngine engine(simConfig(core::ExecutionMode::DirectExec));
  LuBuild build = buildLu(cfg, fastModel(), true);
  auto result = runLu(engine, build);
  EXPECT_LT(verifyLu(cfg, result, build.workersGroup), 1e-10);
}

TEST(LuDirectTest, AllVariantsCombinedFactorCorrectly) {
  LuConfig cfg = smallConfig();
  cfg.pipelined = true;
  cfg.flowControl = true;
  cfg.fcLimit = 3;
  cfg.parallelMult = true;
  cfg.subBlock = 6;
  core::SimEngine engine(simConfig(core::ExecutionMode::DirectExec));
  LuBuild build = buildLu(cfg, fastModel(), true);
  auto result = runLu(engine, build);
  EXPECT_LT(verifyLu(cfg, result, build.workersGroup), 1e-10);
}

TEST(LuDirectTest, MoreWorkersStillCorrect) {
  LuConfig cfg = smallConfig();
  cfg.workers = 4;
  cfg.r = 8; // 6 levels
  cfg.n = 48;
  core::SimEngine engine(simConfig(core::ExecutionMode::DirectExec));
  LuBuild build = buildLu(cfg, fastModel(), true);
  auto result = runLu(engine, build);
  EXPECT_LT(verifyLu(cfg, result, build.workersGroup), 1e-10);
}

TEST(LuPdexecTest, CompletesWithoutKernels) {
  const LuConfig cfg = smallConfig();
  core::SimEngine engine(simConfig(core::ExecutionMode::Pdexec));
  LuBuild build = buildLu(cfg, KernelCostModel::ultraSparc440(), true);
  auto result = runLu(engine, build);
  checkOutputs(cfg, result);
  EXPECT_GT(result.makespan, SimDuration::zero());
}

TEST(LuPdexecTest, NoallocCompletesAndMatchesPrediction) {
  const LuConfig cfg = smallConfig();
  const auto model = KernelCostModel::ultraSparc440();

  core::SimEngine e1(simConfig(core::ExecutionMode::Pdexec, /*allocate=*/true));
  LuBuild b1 = buildLu(cfg, model, true);
  auto r1 = runLu(e1, b1);

  core::SimEngine e2(simConfig(core::ExecutionMode::Pdexec, /*allocate=*/false));
  LuBuild b2 = buildLu(cfg, model, false);
  auto r2 = runLu(e2, b2);

  // NOALLOC must not change the predicted time at all: payload sizes are
  // identical (phantom) and charges are identical.
  EXPECT_EQ(r1.makespan, r2.makespan);
  EXPECT_EQ(r1.counters.networkBytes, r2.counters.networkBytes);
}

TEST(LuPdexecTest, DeterministicAcrossRuns) {
  const LuConfig cfg = smallConfig();
  const auto model = KernelCostModel::ultraSparc440();
  SimDuration first{};
  for (int i = 0; i < 2; ++i) {
    core::SimEngine engine(simConfig(core::ExecutionMode::Pdexec, false));
    LuBuild build = buildLu(cfg, model, false);
    auto r = runLu(engine, build);
    if (i == 0) first = r.makespan;
    else EXPECT_EQ(r.makespan, first);
  }
}

TEST(LuPdexecTest, IterationMarkersCoverAllLevels) {
  const LuConfig cfg = smallConfig();
  core::SimEngine engine(simConfig(core::ExecutionMode::Pdexec, false));
  LuBuild build = buildLu(cfg, KernelCostModel::ultraSparc440(), false);
  auto result = runLu(engine, build);
  ASSERT_TRUE(result.trace);
  const auto markers = result.trace->markersNamed("iteration");
  ASSERT_EQ(markers.size(), static_cast<std::size_t>(cfg.levels() - 1));
  for (std::size_t i = 0; i < markers.size(); ++i) {
    EXPECT_EQ(markers[i].value, static_cast<std::int64_t>(i + 1));
    if (i > 0) {
      EXPECT_GT(markers[i].time, markers[i - 1].time);
    }
  }
}

TEST(LuPdexecTest, MessageCountMatchesAnalyticFormula) {
  const LuConfig cfg = smallConfig(); // L = 4 levels
  core::SimEngine engine(simConfig(core::ExecutionMode::Pdexec, false));
  LuBuild build = buildLu(cfg, KernelCostModel::ultraSparc440(), false);
  auto result = runLu(engine, build);
  const std::int64_t L = cfg.levels();
  // Per level l (0..L-2), m = L-1-l: m trsm + m T12 + m^2 mult + m^2 results
  // + m^2 subnotify; plus per level l: (l+1) flips + (l+1) notifies; plus
  // L-1 LevelDone + 1 Factored outputs.
  std::int64_t expected = 0;
  for (std::int64_t l = 0; l + 1 < L; ++l) {
    const std::int64_t m = L - 1 - l;
    expected += 2 * m + 3 * m * m;
    expected += 2 * (l + 1); // flips + notifies
  }
  expected += L; // outputs
  EXPECT_EQ(result.counters.messages, static_cast<std::uint64_t>(expected));
}

TEST(LuPdexecTest, SerialCostDominatedByGemmBudget) {
  // The total charged work should be close to 2/3 n^3 / gemm rate.
  LuConfig cfg = smallConfig();
  cfg.n = 96;
  cfg.r = 24;
  const auto model = KernelCostModel::ultraSparc440();
  core::SimEngine engine(simConfig(core::ExecutionMode::Pdexec, false));
  LuBuild build = buildLu(cfg, model, false);
  auto result = runLu(engine, build);
  ASSERT_TRUE(result.trace);
  const double work = toSeconds(result.trace->totalWork());
  const double gemmOnly =
      2.0 / 3.0 * std::pow(static_cast<double>(cfg.n), 3) / model.gemmFlopsPerSec;
  EXPECT_GT(work, gemmOnly * 0.8);
  EXPECT_LT(work, gemmOnly * 2.5);
}

TEST(LuFlowControlTest, FlowControlStartsLaterIterationsEarlier) {
  // Paper Fig. 6: "Improved interleaving thanks to the flow control
  // mechanism enables iterations 2 and 3 to be started earlier."  Without
  // FC the iteration-1 multiplication requests flood the worker queues and
  // iteration-2 requests wait behind them.
  LuConfig cfg;
  cfg.n = 2592 / 4;
  cfg.r = 81; // 8 levels
  cfg.workers = 4;
  cfg.pipelined = true;

  auto firstMultStartOfLevel1 = [&](bool fc) {
    auto c = cfg;
    c.flowControl = fc;
    c.fcLimit = 4;
    core::SimConfig sc;
    sc.profile = net::ultraSparc440();
    sc.mode = core::ExecutionMode::Pdexec;
    sc.allocatePayloads = false;
    core::SimEngine engine(sc);
    LuBuild build = buildLu(c, KernelCostModel::ultraSparc440(), false);
    auto result = runLu(engine, build);
    SimTime first = simEpoch() + result.makespan;
    for (const auto& s : result.trace->steps()) {
      if (s.kind != trace::StepKind::Input) continue;
      if (build.graph->op(s.op).name == "mult_1" && s.start < first) first = s.start;
    }
    return first;
  };

  const SimTime withFc = firstMultStartOfLevel1(true);
  const SimTime withoutFc = firstMultStartOfLevel1(false);
  EXPECT_LT(withFc, withoutFc);
}

TEST(LuSamplerTest, FirstNInstancesSamplingTracksDirectExecution) {
  // Paper §4: measure the first n instances of an operation, reuse the
  // average for the rest.  Predictions must track full direct execution.
  LuConfig cfg;
  cfg.n = 96;
  cfg.r = 16; // 6 levels -> plenty of repeated kernel instances
  cfg.workers = 2;
  const auto model = KernelCostModel::ultraSparc440();

  core::SimEngine direct(simConfig(core::ExecutionMode::DirectExec));
  LuBuild db = buildLu(cfg, model, true);
  const double tDirect = toSeconds(runLu(direct, db).makespan);

  auto sampler = std::make_shared<KernelSampler>(3);
  core::SimEngine sampled(simConfig(core::ExecutionMode::Pdexec));
  LuBuild sb = buildLu(cfg, model, true, sampler);
  auto result = runLu(sampled, sb);
  const double tSampled = toSeconds(result.makespan);

  EXPECT_GT(sampler->sampledCount(), 0u);
  EXPECT_GT(sampler->reusedCount(), sampler->sampledCount())
      << "most instances should reuse the measured average";
  if (DPS_ASAN_ACTIVE) {
    GTEST_SKIP() << "host-timing calibration is not meaningful under sanitizers";
  }
  EXPECT_NEAR(tSampled, tDirect, tDirect * 0.35)
      << "sampled prediction should track direct execution on the same host";
}

TEST(LuSamplerTest, SamplingRequiresAllocation) {
  LuConfig cfg = smallConfig();
  EXPECT_THROW(buildLu(cfg, KernelCostModel::ultraSparc440(), /*allocate=*/false,
                       std::make_shared<KernelSampler>(2)),
               Error);
}

TEST(LuScalingTest, MoreWorkersReduceMakespanAtPaperScale) {
  LuConfig cfg;
  cfg.n = 648;
  cfg.r = 81; // 8 levels
  cfg.seed = 3;
  const auto model = KernelCostModel::ultraSparc440();

  auto makespan = [&](std::int32_t workers) {
    cfg.workers = workers;
    core::SimEngine engine(simConfig(core::ExecutionMode::Pdexec, false));
    LuBuild build = buildLu(cfg, model, false);
    return toSeconds(runLu(engine, build).makespan);
  };
  const double t1 = makespan(1);
  const double t2 = makespan(2);
  const double t4 = makespan(4);
  EXPECT_LT(t2, t1);
  EXPECT_LT(t4, t2);
  // Efficiency decreases with scale (communication overheads).
  EXPECT_GT(t4, t1 / 4.0);
}

} // namespace
} // namespace dps::lu
