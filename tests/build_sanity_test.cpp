// Build-system sanity: asserts the layer-dependency invariants the CMake
// superstructure encodes.  This TU includes only support/ and des/ headers and
// links only dps::des (+ its transitive dps::support) — if the DES kernel ever
// grows an include on a higher layer (core, flow, apps), this target stops
// compiling or linking, which is exactly the regression we want to catch.
#include <gtest/gtest.h>

#include <type_traits>

#include "des/scheduler.hpp"
#include "support/time.hpp"

namespace dps::des {
namespace {

// The scheduler must stay a self-contained kernel: value-constructible without
// any engine/app context, and non-copyable (it owns the event queue).
static_assert(std::is_default_constructible_v<Scheduler>);
static_assert(!std::is_copy_constructible_v<Scheduler>);
static_assert(!std::is_copy_assignable_v<Scheduler>);

TEST(BuildSanityTest, SchedulerUsableWithoutAppLayers) {
  Scheduler sched;
  EXPECT_TRUE(sched.empty());
  EXPECT_EQ(sched.pendingCount(), 0u);
  EXPECT_EQ(sched.now(), simEpoch());
}

TEST(BuildSanityTest, RunOnEmptyQueueReturnsZero) {
  Scheduler sched;
  EXPECT_EQ(sched.run(), 0u);
  EXPECT_EQ(sched.firedCount(), 0u);
  // The clock does not move when nothing fires.
  EXPECT_EQ(sched.now(), simEpoch());
}

TEST(BuildSanityTest, RunCountsFiredEvents) {
  Scheduler sched;
  int fired = 0;
  sched.scheduleAfter(SimDuration{}, [&] { ++fired; });
  EXPECT_EQ(sched.run(), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.run(), 0u); // queue drained; second run is a no-op
}

} // namespace
} // namespace dps::des
