// Shared miniature flow-graph applications for engine tests: the classic
// split -> compute -> merge fan-out of the paper's Fig. 1, parameterized
// for timing analytics, plus a deliberately broken graph for deadlock
// detection tests.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "flow/graph.hpp"
#include "serial/object.hpp"
#include "support/time.hpp"

namespace dps::test {

/// Work item with a padded payload (controls transfer sizes).
struct Item final : serial::Object<Item> {
  static constexpr const char* kTypeName = "test.item";
  std::int64_t value = 0;
  std::vector<std::uint8_t> padding;
  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, value, padding);
  }
};

/// Aggregate result from the merge.
struct Sum final : serial::Object<Sum> {
  static constexpr const char* kTypeName = "test.sum";
  std::int64_t total = 0;
  std::int64_t count = 0;
  template <typename Ar>
  void describe(Ar& ar) {
    serial::fields(ar, total, count);
  }
};

struct FanoutSpec {
  std::int32_t jobs = 4;
  std::int32_t workers = 2;
  SimDuration splitCost = microseconds(100);   // charged per emission
  SimDuration computeCost = milliseconds(1);   // charged per leaf input
  SimDuration mergeCost = microseconds(50);    // charged per absorb
  SimDuration finalizeCost = SimDuration::zero();
  std::size_t payloadBytes = 1024;             // Item padding size
  std::int32_t fcLimit = 0;                    // 0 = no flow control
  bool leafMarker = false;                     // leaf emits ("job", value)
};

struct FanoutBuild {
  std::unique_ptr<flow::FlowGraph> graph;
  flow::GroupId master = -1;
  flow::GroupId workers = -1;
  std::vector<serial::ObjectPtr> inputs;
  FanoutSpec spec;
};

/// Split (master) -> compute leaf (workers, round robin) -> merge (master).
/// Leaf doubles each value; the merge sums.  All costs are charges, so the
/// graph is fully deterministic under PDEXEC and still runs correctly (with
/// negligible wall durations) under DirectExec and the runtime engine.
FanoutBuild buildFanout(FanoutSpec spec);

/// Like buildFanout but the leaf posts into the void (a second output port)
/// instead of the merge, so the split/merge scope never completes: engines
/// must detect the deadlock at quiescence.
FanoutBuild buildBrokenFanout(FanoutSpec spec);

/// Deployment with the master on node 0 and worker i on node 1 + i.
flow::Deployment spreadDeployment(const FanoutBuild& build);
/// Deployment with every thread on a single node.
flow::Deployment singleNodeDeployment(const FanoutBuild& build);

} // namespace dps::test
