#include <gtest/gtest.h>

#include "des/scheduler.hpp"
#include "net/network.hpp"
#include "net/profile.hpp"

namespace dps::net {
namespace {

StarNetwork::Config basicConfig() {
  StarNetwork::Config c;
  c.latency = milliseconds(1);
  c.bytesPerSec = 1e6; // 1 MB/s -> 1 ms per KB
  c.localDelivery = SimDuration::zero();
  return c;
}

TEST(NetworkTest, SingleTransferIsLatencyPlusBytesOverBandwidth) {
  des::Scheduler sched;
  StarNetwork net(sched, basicConfig(), 3);
  SimTime delivered{};
  net.send(0, 1, 2000, [&] { delivered = sched.now(); });
  sched.run();
  // 1 ms latency + 2000 B / 1e6 B/s = 2 ms -> 3 ms total.
  EXPECT_EQ(delivered, simEpoch() + milliseconds(3));
  EXPECT_EQ(net.bytesSent(), 2000u);
  EXPECT_EQ(net.transfersStarted(), 1u);
}

TEST(NetworkTest, UncontendedTimeHelperMatches) {
  des::Scheduler sched;
  StarNetwork net(sched, basicConfig(), 2);
  EXPECT_EQ(net.uncontendedTime(2000), milliseconds(3));
}

TEST(NetworkTest, LocalDeliveryBypassesNetwork) {
  des::Scheduler sched;
  auto cfg = basicConfig();
  cfg.localDelivery = microseconds(5);
  StarNetwork net(sched, cfg, 2);
  SimTime delivered{};
  net.send(1, 1, 1 << 20, [&] { delivered = sched.now(); });
  sched.run();
  EXPECT_EQ(delivered, simEpoch() + microseconds(5));
  EXPECT_EQ(net.bytesSent(), 0u); // local hops do not count as wire bytes
}

TEST(NetworkTest, TwoOutgoingTransfersShareTheSenderLink) {
  des::Scheduler sched;
  StarNetwork net(sched, basicConfig(), 3);
  SimTime d1{}, d2{};
  // Same start: both drain at half rate until one finishes.
  net.send(0, 1, 1000, [&] { d1 = sched.now(); });
  net.send(0, 2, 1000, [&] { d2 = sched.now(); });
  sched.run();
  // Latency 1 ms, then both share 1 MB/s -> 0.5 MB/s each -> 2 ms drain.
  EXPECT_EQ(d1, simEpoch() + milliseconds(3));
  EXPECT_EQ(d2, simEpoch() + milliseconds(3));
}

TEST(NetworkTest, TwoIncomingTransfersShareTheReceiverLink) {
  des::Scheduler sched;
  StarNetwork net(sched, basicConfig(), 3);
  SimTime d1{}, d2{};
  net.send(1, 0, 1000, [&] { d1 = sched.now(); });
  net.send(2, 0, 1000, [&] { d2 = sched.now(); });
  sched.run();
  EXPECT_EQ(d1, simEpoch() + milliseconds(3));
  EXPECT_EQ(d2, simEpoch() + milliseconds(3));
}

TEST(NetworkTest, DisjointPairsDoNotContend) {
  des::Scheduler sched;
  StarNetwork net(sched, basicConfig(), 4);
  SimTime d1{}, d2{};
  net.send(0, 1, 1000, [&] { d1 = sched.now(); });
  net.send(2, 3, 1000, [&] { d2 = sched.now(); });
  sched.run();
  EXPECT_EQ(d1, simEpoch() + milliseconds(2));
  EXPECT_EQ(d2, simEpoch() + milliseconds(2));
}

TEST(NetworkTest, RateRecomputesWhenTransferFinishes) {
  des::Scheduler sched;
  StarNetwork net(sched, basicConfig(), 3);
  SimTime dSmall{}, dBig{};
  net.send(0, 1, 500, [&] { dSmall = sched.now(); });
  net.send(0, 2, 1500, [&] { dBig = sched.now(); });
  sched.run();
  // Shared phase: both at 0.5 MB/s.  Small (500 B) finishes after 1 ms of
  // draining (at t=2ms).  Big has 1000 B left, now at full rate: +1 ms.
  EXPECT_EQ(dSmall, simEpoch() + milliseconds(2));
  EXPECT_EQ(dBig, simEpoch() + milliseconds(3));
}

TEST(NetworkTest, StaggeredStartSharesOnlyTheOverlap) {
  des::Scheduler sched;
  StarNetwork net(sched, basicConfig(), 3);
  SimTime d1{};
  net.send(0, 1, 2000, [&] { d1 = sched.now(); });
  // Second transfer enters its drain phase at t=2ms (sent at 1ms + latency).
  sched.runUntil(simEpoch() + milliseconds(1));
  net.send(0, 2, 1000, [] {});
  sched.run();
  // First: drains alone 1 ms (t in [1,2]), 1000 B left; shares 0.5 MB/s
  // from t=2 -> needs 2 more ms -> t=4ms.
  EXPECT_EQ(d1, simEpoch() + milliseconds(4));
}

TEST(NetworkTest, FairShareOffGivesFullBandwidthToAll) {
  des::Scheduler sched;
  auto cfg = basicConfig();
  cfg.fairShare = false;
  StarNetwork net(sched, cfg, 3);
  SimTime d1{}, d2{};
  net.send(0, 1, 1000, [&] { d1 = sched.now(); });
  net.send(0, 2, 1000, [&] { d2 = sched.now(); });
  sched.run();
  EXPECT_EQ(d1, simEpoch() + milliseconds(2));
  EXPECT_EQ(d2, simEpoch() + milliseconds(2));
}

TEST(NetworkTest, BandwidthEfficiencyDeratesThroughput) {
  des::Scheduler sched;
  auto cfg = basicConfig();
  cfg.bandwidthEfficiency = 0.5;
  StarNetwork net(sched, cfg, 2);
  SimTime d{};
  net.send(0, 1, 1000, [&] { d = sched.now(); });
  sched.run();
  EXPECT_EQ(d, simEpoch() + milliseconds(3)); // 1 + 1000/(0.5 MB/s) = 3 ms
}

TEST(NetworkTest, ExtraLatencyHookApplies) {
  des::Scheduler sched;
  auto cfg = basicConfig();
  cfg.extraLatency = [](std::size_t bytes) {
    return microseconds(static_cast<std::int64_t>(bytes / 100));
  };
  StarNetwork net(sched, cfg, 2);
  SimTime d{};
  net.send(0, 1, 1000, [&] { d = sched.now(); });
  sched.run();
  // 1 ms latency + 10 us hook + 1 ms drain.
  EXPECT_EQ(d, simEpoch() + milliseconds(2) + microseconds(10));
}

TEST(NetworkTest, ActivityObserverSeesDrainPhases) {
  des::Scheduler sched;
  StarNetwork net(sched, basicConfig(), 3);
  int maxOut = 0;
  net.setActivityObserver([&](NodeIndex node, int in, int out) {
    (void)in;
    if (node == 0) maxOut = std::max(maxOut, out);
  });
  net.send(0, 1, 1000, [] {});
  net.send(0, 2, 1000, [] {});
  sched.run();
  EXPECT_EQ(maxOut, 2);
  EXPECT_EQ(net.activeOutgoing(0), 0);
  EXPECT_EQ(net.activeIncoming(1), 0);
}

TEST(NetworkTest, ManyToOneConvergecastScalesShare) {
  des::Scheduler sched;
  StarNetwork net(sched, basicConfig(), 5);
  std::vector<SimTime> done(4);
  for (int s = 1; s <= 4; ++s)
    net.send(s, 0, 1000, [&, s] { done[s - 1] = sched.now(); });
  sched.run();
  // Four equal transfers into one link: 4 ms drain for everyone.
  for (const auto& t : done) EXPECT_EQ(t, simEpoch() + milliseconds(5));
}

TEST(ProfileTest, PresetsAreSane) {
  for (const auto& p : {ultraSparc440(), pentium4_2800(), commodityGigabit()}) {
    EXPECT_GT(p.bandwidthBytesPerSec, 0);
    EXPECT_GT(p.latency, SimDuration::zero());
    EXPECT_GT(p.cpuPerIncomingTransfer, p.cpuPerOutgoingTransfer)
        << "receiving must cost more CPU than sending (paper §4)";
    EXPECT_GT(p.computeScale, 0);
  }
  // Table 1 portability: the Pentium 4 is ~6.5x faster.
  EXPECT_NEAR(pentium4_2800().computeScale, 1.0 / 6.5, 1e-9);
}

} // namespace
} // namespace dps::net
