// RuntimeEngine: the same applications on real OS threads, and
// cross-validation against the simulator (paper §3: real and simulated
// applications run identically).
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "lu/app.hpp"
#include "net/profile.hpp"
#include "runtime/engine.hpp"
#include "test_graphs.hpp"

namespace dps::rt {
namespace {

using test::buildBrokenFanout;
using test::buildFanout;
using test::FanoutSpec;
using test::spreadDeployment;
using test::Sum;

flow::Program program(const test::FanoutBuild& b, flow::Deployment d) {
  flow::Program p;
  p.graph = b.graph.get();
  p.deployment = std::move(d);
  p.inputs = b.inputs;
  return p;
}

TEST(RuntimeTest, FanoutProducesCorrectSum) {
  FanoutSpec spec;
  spec.jobs = 12;
  spec.workers = 3;
  auto b = buildFanout(spec);
  RuntimeEngine engine;
  auto result = engine.run(program(b, spreadDeployment(b)));
  ASSERT_EQ(result.outputs.size(), 1u);
  const auto& sum = dynamic_cast<const Sum&>(*result.outputs[0]);
  EXPECT_EQ(sum.count, 12);
  EXPECT_EQ(sum.total, 2 * (11 * 12 / 2));
  EXPECT_EQ(result.counters.messages, 12u + 12u + 1u);
}

TEST(RuntimeTest, FlowControlBoundsInFlightObjects) {
  FanoutSpec spec;
  spec.jobs = 20;
  spec.workers = 2;
  spec.fcLimit = 2;
  auto b = buildFanout(spec);
  RuntimeEngine engine;
  auto result = engine.run(program(b, spreadDeployment(b)));
  const auto& sum = dynamic_cast<const Sum&>(*result.outputs[0]);
  EXPECT_EQ(sum.count, 20);
}

TEST(RuntimeTest, DeadlockDetected) {
  FanoutSpec spec;
  spec.jobs = 2;
  spec.workers = 2;
  auto b = buildBrokenFanout(spec);
  RuntimeEngine engine;
  EXPECT_THROW(engine.run(program(b, spreadDeployment(b))), Error);
}

TEST(RuntimeTest, MarkersReachHook) {
  FanoutSpec spec;
  spec.jobs = 5;
  spec.workers = 2;
  spec.leafMarker = true;
  auto b = buildFanout(spec);
  std::atomic<int> markers{0};
  RuntimeConfig cfg;
  cfg.markerHook = [&](const std::string& name, std::int64_t) {
    EXPECT_EQ(name, "job");
    ++markers;
  };
  RuntimeEngine engine(cfg);
  engine.run(program(b, spreadDeployment(b)));
  EXPECT_EQ(markers.load(), 5);
}

TEST(RuntimeTest, ManyJobsStress) {
  FanoutSpec spec;
  spec.jobs = 500;
  spec.workers = 4;
  spec.payloadBytes = 64;
  auto b = buildFanout(spec);
  RuntimeEngine engine;
  auto result = engine.run(program(b, spreadDeployment(b)));
  const auto& sum = dynamic_cast<const Sum&>(*result.outputs[0]);
  EXPECT_EQ(sum.count, 500);
}

TEST(RuntimeCrossValidationTest, LuFactorizationMatchesSimulatorExactly) {
  // The same LU program on the runtime engine and the DirectExec simulator
  // must produce the identical factorization (bit-for-bit): both execute
  // the same kernels on the same data, only the scheduling differs.
  lu::LuConfig cfg;
  cfg.n = 48;
  cfg.r = 12;
  cfg.workers = 2;
  cfg.seed = 99;
  const auto model = lu::KernelCostModel::ultraSparc440().scaled(100.0);

  // Runtime engine run.
  lu::LuBuild rb = lu::buildLu(cfg, model, true);
  RuntimeEngine rtEngine;
  flow::Program rp;
  rp.graph = rb.graph.get();
  rp.deployment = flow::Deployment::roundRobin(*rb.graph, {cfg.workers}, cfg.workers);
  rp.inputs = rb.inputs;
  auto rtResult = rtEngine.run(rp);
  lu::checkOutputs(cfg, rtResult);
  EXPECT_LT(lu::verifyLu(cfg, rtResult, rb.workersGroup), 1e-10);

  // Simulator run.
  core::SimConfig sc;
  sc.profile = net::commodityGigabit();
  sc.mode = core::ExecutionMode::DirectExec;
  core::SimEngine simEngine(sc);
  lu::LuBuild sb = lu::buildLu(cfg, model, true);
  auto simResult = lu::runLu(simEngine, sb);

  // Compare the factored columns element-wise across engines.
  auto gather = [&](const core::RunResult& res, flow::GroupId g) {
    std::map<std::int32_t, lin::Matrix> cols;
    for (const auto& st : res.threadStates.at(g)) {
      const auto* ls = dynamic_cast<const lu::LuThreadState*>(st.get());
      for (const auto& [c, m] : ls->columns) cols[c] = m;
    }
    return cols;
  };
  const auto rtCols = gather(rtResult, rb.workersGroup);
  const auto simCols = gather(simResult, sb.workersGroup);
  ASSERT_EQ(rtCols.size(), simCols.size());
  for (const auto& [c, m] : rtCols) {
    ASSERT_TRUE(simCols.count(c));
    EXPECT_EQ(m, simCols.at(c)) << "column " << c;
  }
}

TEST(RuntimeCrossValidationTest, PipelinedLuAlsoMatches) {
  lu::LuConfig cfg;
  cfg.n = 48;
  cfg.r = 8;
  cfg.workers = 3;
  cfg.pipelined = true;
  cfg.flowControl = true;
  cfg.fcLimit = 2;
  cfg.seed = 123;
  const auto model = lu::KernelCostModel::ultraSparc440().scaled(100.0);

  lu::LuBuild rb = lu::buildLu(cfg, model, true);
  RuntimeEngine rtEngine;
  flow::Program rp;
  rp.graph = rb.graph.get();
  rp.deployment = flow::Deployment::roundRobin(*rb.graph, {cfg.workers}, cfg.workers);
  rp.inputs = rb.inputs;
  auto rtResult = rtEngine.run(rp);
  EXPECT_LT(lu::verifyLu(cfg, rtResult, rb.workersGroup), 1e-10);
}

} // namespace
} // namespace dps::rt
