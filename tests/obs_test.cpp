// obs:: unit tests — registry fold semantics, snapshot determinism, JSON
// shape, and the trace-event sink.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/clock.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace dps::obs {
namespace {

TEST(RegistryTest, DefaultHandlesAreNoOps) {
  Counter c;
  Gauge g;
  Histogram h;
  c.add();
  c.add(41);
  g.set(7.0);
  h.observe(0.5); // no registry, no crash, nothing recorded
}

TEST(RegistryTest, CountersSumAndInternIsIdempotent) {
  Registry reg;
  const Counter a = reg.counter("x");
  const Counter b = reg.counter("x"); // same metric, second handle
  a.add();
  b.add(2);
  EXPECT_EQ(reg.snapshot().counter("x"), 3u);
  EXPECT_EQ(reg.snapshot().counter("absent"), 0u);
}

TEST(RegistryTest, GaugeFoldsByMaxAcrossShards) {
  Registry reg;
  const Gauge g = reg.gauge("high_water");
  g.set(3.0);
  std::thread other([&] { g.set(7.0); }); // second thread = second shard
  other.join();
  EXPECT_DOUBLE_EQ(reg.snapshot().gauge("high_water"), 7.0);
  // A later lower value on this thread's shard cannot win the max fold.
  g.set(1.0);
  EXPECT_DOUBLE_EQ(reg.snapshot().gauge("high_water"), 7.0);
}

TEST(RegistryTest, UnsetGaugeReadsZero) {
  Registry reg;
  (void)reg.gauge("never_set");
  EXPECT_DOUBLE_EQ(reg.snapshot().gauge("never_set"), 0.0);
}

TEST(RegistryTest, HistogramBucketsMinMaxSumQuantiles) {
  Registry reg;
  const Histogram h = reg.histogram("lat", {1.0, 2.0, 4.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(3.0);
  h.observe(10.0); // overflow bucket
  const auto snap = reg.snapshot();
  const auto* v = snap.histogram("lat");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->count, 4u);
  EXPECT_DOUBLE_EQ(v->sum, 15.0);
  EXPECT_DOUBLE_EQ(v->min, 0.5);
  EXPECT_DOUBLE_EQ(v->max, 10.0);
  ASSERT_EQ(v->counts.size(), 4u); // 3 bounds + overflow
  EXPECT_EQ(v->counts[0], 1u);
  EXPECT_EQ(v->counts[1], 1u);
  EXPECT_EQ(v->counts[2], 1u);
  EXPECT_EQ(v->counts[3], 1u);
  EXPECT_DOUBLE_EQ(v->quantile(0.25), 1.0); // first bucket's upper bound
  EXPECT_DOUBLE_EQ(v->quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(v->quantile(0.99), 10.0); // overflow reports the exact max
}

TEST(RegistryTest, SingleObservationQuantileIsClampedToMax) {
  Registry reg;
  reg.histogram("one", {1.0, 2.0}).observe(0.5);
  const auto snap = reg.snapshot();
  // The bucket bound is 1.0 but only 0.5 was ever seen.
  EXPECT_DOUBLE_EQ(snap.histogram("one")->quantile(0.5), 0.5);
}

TEST(RegistryTest, EmptyHistogramIsZeroedInSnapshot) {
  Registry reg;
  (void)reg.histogram("empty", {1.0});
  const auto snap = reg.snapshot();
  const auto* v = snap.histogram("empty");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->count, 0u);
  EXPECT_EQ(v->counts, (std::vector<std::uint64_t>{0, 0}));
  EXPECT_DOUBLE_EQ(v->quantile(0.5), 0.0);
}

TEST(RegistryTest, ConcurrentShardsFoldToExactTotals) {
  Registry reg;
  const Counter c = reg.counter("events");
  const Histogram h = reg.histogram("vals", {10.0, 100.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.observe(static_cast<double>(t));
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter("events"), static_cast<std::uint64_t>(kThreads * kPerThread));
  const auto* v = snap.histogram("vals");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->count, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(v->min, 0.0);
  EXPECT_DOUBLE_EQ(v->max, kThreads - 1.0);
}

TEST(RegistryTest, JsonIsNameSortedAndRegistrationOrderIndependent) {
  Registry first;
  first.counter("b").add(2);
  first.counter("a").add(1);
  first.gauge("z").set(3.0);
  Registry second; // same facts, opposite registration order
  second.gauge("z").set(3.0);
  second.counter("a").add(1);
  second.counter("b").add(2);
  EXPECT_EQ(first.jsonString(), second.jsonString());
  const std::string json = first.jsonString();
  EXPECT_NE(json.find("\"counters\":{\"a\":1,\"b\":2}"), std::string::npos) << json;
}

TEST(RegistryTest, HistogramJsonCarriesBucketsWithInfUpperBound) {
  Registry reg;
  reg.histogram("h", {1.0, 2.0}).observe(5.0);
  const std::string json = reg.jsonString();
  EXPECT_NE(json.find("\"le\":\"+Inf\",\"count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":1,\"sum\":5"), std::string::npos) << json;
}

TEST(TraceSinkTest, EmitsChromeTraceEventDocument) {
  TraceSink sink;
  sink.processName(1, "policy: fcfs");
  sink.threadName(1, 0, "cluster");
  sink.completeSpan("job", "run", 1000.0, 500.0, 1, 0, "{\"alloc\":4}");
  sink.instant("backfill", "sched", 1200.0, 1, 0);
  EXPECT_EQ(sink.eventCount(), 4u);
  const std::string json = sink.jsonString();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":500"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"args\":{\"alloc\":4}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"args\":{\"name\":\"policy: fcfs\"}"), std::string::npos) << json;
}

TEST(TraceSinkTest, WriteFileFailsCleanlyOnBadPath) {
  TraceSink sink;
  EXPECT_FALSE(sink.writeFile("/nonexistent-dir/trace.json"));
}

TEST(ProgressMeterTest, RateLimitsAndExtrapolates) {
  WallClock clock;
  ProgressMeter meter(clock, /*minIntervalSec=*/3600.0);
  EXPECT_TRUE(meter.due());  // first call always fires
  EXPECT_FALSE(meter.due()); // within the interval
  EXPECT_DOUBLE_EQ(ProgressMeter::etaSec(10.0, 5.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(ProgressMeter::etaSec(10.0, 0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(ProgressMeter::etaSec(10.0, 10.0, 10.0), 0.0);
}

} // namespace
} // namespace dps::obs
