// obs:: unit tests — registry fold semantics, snapshot determinism, JSON
// shape, and the trace-event sink.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/clock.hpp"
#include "obs/recorder.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace dps::obs {
namespace {

TEST(RegistryTest, DefaultHandlesAreNoOps) {
  Counter c;
  Gauge g;
  Histogram h;
  c.add();
  c.add(41);
  g.set(7.0);
  h.observe(0.5); // no registry, no crash, nothing recorded
}

TEST(RegistryTest, CountersSumAndInternIsIdempotent) {
  Registry reg;
  const Counter a = reg.counter("x");
  const Counter b = reg.counter("x"); // same metric, second handle
  a.add();
  b.add(2);
  EXPECT_EQ(reg.snapshot().counter("x"), 3u);
  EXPECT_EQ(reg.snapshot().counter("absent"), 0u);
}

TEST(RegistryTest, GaugeFoldsByMaxAcrossShards) {
  Registry reg;
  const Gauge g = reg.gauge("high_water");
  g.set(3.0);
  std::thread other([&] { g.set(7.0); }); // second thread = second shard
  other.join();
  EXPECT_DOUBLE_EQ(reg.snapshot().gauge("high_water"), 7.0);
  // A later lower value on this thread's shard cannot win the max fold.
  g.set(1.0);
  EXPECT_DOUBLE_EQ(reg.snapshot().gauge("high_water"), 7.0);
}

TEST(RegistryTest, UnsetGaugeReadsZero) {
  Registry reg;
  (void)reg.gauge("never_set");
  EXPECT_DOUBLE_EQ(reg.snapshot().gauge("never_set"), 0.0);
}

TEST(RegistryTest, HistogramBucketsMinMaxSumQuantiles) {
  Registry reg;
  const Histogram h = reg.histogram("lat", {1.0, 2.0, 4.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(3.0);
  h.observe(10.0); // overflow bucket
  const auto snap = reg.snapshot();
  const auto* v = snap.histogram("lat");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->count, 4u);
  EXPECT_DOUBLE_EQ(v->sum, 15.0);
  EXPECT_DOUBLE_EQ(v->min, 0.5);
  EXPECT_DOUBLE_EQ(v->max, 10.0);
  ASSERT_EQ(v->counts.size(), 4u); // 3 bounds + overflow
  EXPECT_EQ(v->counts[0], 1u);
  EXPECT_EQ(v->counts[1], 1u);
  EXPECT_EQ(v->counts[2], 1u);
  EXPECT_EQ(v->counts[3], 1u);
  EXPECT_DOUBLE_EQ(v->quantile(0.25), 1.0); // first bucket's upper bound
  EXPECT_DOUBLE_EQ(v->quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(v->quantile(0.99), 10.0); // overflow reports the exact max
}

TEST(RegistryTest, SingleObservationQuantileIsClampedToMax) {
  Registry reg;
  reg.histogram("one", {1.0, 2.0}).observe(0.5);
  const auto snap = reg.snapshot();
  // The bucket bound is 1.0 but only 0.5 was ever seen.
  EXPECT_DOUBLE_EQ(snap.histogram("one")->quantile(0.5), 0.5);
}

TEST(RegistryTest, EmptyHistogramIsZeroedInSnapshot) {
  Registry reg;
  (void)reg.histogram("empty", {1.0});
  const auto snap = reg.snapshot();
  const auto* v = snap.histogram("empty");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->count, 0u);
  EXPECT_EQ(v->counts, (std::vector<std::uint64_t>{0, 0}));
  EXPECT_DOUBLE_EQ(v->quantile(0.5), 0.0);
}

TEST(RegistryTest, ConcurrentShardsFoldToExactTotals) {
  Registry reg;
  const Counter c = reg.counter("events");
  const Histogram h = reg.histogram("vals", {10.0, 100.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.observe(static_cast<double>(t));
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter("events"), static_cast<std::uint64_t>(kThreads * kPerThread));
  const auto* v = snap.histogram("vals");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->count, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(v->min, 0.0);
  EXPECT_DOUBLE_EQ(v->max, kThreads - 1.0);
}

TEST(RegistryTest, JsonIsNameSortedAndRegistrationOrderIndependent) {
  Registry first;
  first.counter("b").add(2);
  first.counter("a").add(1);
  first.gauge("z").set(3.0);
  Registry second; // same facts, opposite registration order
  second.gauge("z").set(3.0);
  second.counter("a").add(1);
  second.counter("b").add(2);
  EXPECT_EQ(first.jsonString(), second.jsonString());
  const std::string json = first.jsonString();
  EXPECT_NE(json.find("\"counters\":{\"a\":1,\"b\":2}"), std::string::npos) << json;
}

TEST(RegistryTest, HistogramJsonCarriesBucketsWithInfUpperBound) {
  Registry reg;
  reg.histogram("h", {1.0, 2.0}).observe(5.0);
  const std::string json = reg.jsonString();
  EXPECT_NE(json.find("\"le\":\"+Inf\",\"count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":1,\"sum\":5"), std::string::npos) << json;
}

TEST(TraceSinkTest, EmitsChromeTraceEventDocument) {
  TraceSink sink;
  sink.processName(1, "policy: fcfs");
  sink.threadName(1, 0, "cluster");
  sink.completeSpan("job", "run", 1000.0, 500.0, 1, 0, "{\"alloc\":4}");
  sink.instant("backfill", "sched", 1200.0, 1, 0);
  EXPECT_EQ(sink.eventCount(), 4u);
  const std::string json = sink.jsonString();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":500"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"args\":{\"alloc\":4}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"args\":{\"name\":\"policy: fcfs\"}"), std::string::npos) << json;
}

TEST(TraceSinkTest, WriteFileFailsCleanlyOnBadPath) {
  TraceSink sink;
  EXPECT_FALSE(sink.writeFile("/nonexistent-dir/trace.json"));
}

TEST(RecorderTest, WaitAttributionHelpers) {
  WaitAttribution a;
  EXPECT_EQ(a.sumNs(), 0);
  EXPECT_EQ(a.dominant(), WaitReason::HeadOfLine); // lowest index on all-zero
  EXPECT_DOUBLE_EQ(a.dominantShare(), 0.0);        // never waited -> 0
  a.byReason[1] = 300;
  a.byReason[4] = 700;
  a.totalNs = 1000;
  EXPECT_EQ(a.sumNs(), 1000);
  EXPECT_EQ(a.dominant(), WaitReason::ShadowTime);
  EXPECT_DOUBLE_EQ(a.dominantShare(), 0.7);
  a.byReason[0] = 700; // tie with reason 4: lowest index wins, deterministic
  a.totalNs = 1700;
  EXPECT_EQ(a.dominant(), WaitReason::HeadOfLine);
  // Every reason has a distinct slug and label.
  for (std::size_t r = 0; r < kWaitReasonCount; ++r)
    for (std::size_t s = r + 1; s < kWaitReasonCount; ++s) {
      EXPECT_STRNE(waitReasonName(static_cast<WaitReason>(r)),
                   waitReasonName(static_cast<WaitReason>(s)));
      EXPECT_STRNE(waitReasonLabel(static_cast<WaitReason>(r)),
                   waitReasonLabel(static_cast<WaitReason>(s)));
    }
}

TEST(RecorderTest, JsonCarriesDecisionsIntervalsJobsAndTimeseries) {
  Recorder rec(/*timeseriesCadenceSec=*/0); // no timeseries at cadence 0
  rec.beginRun("fcfs-rigid", 4, 7);
  rec.admitDecision(0.0, 1, 4, 4, 4, /*started=*/true, WaitReason::HeadOfLine,
                    "full-request", 0, 0);
  rec.admitDecision(1.0, 2, 4, 4, 0, /*started=*/false, WaitReason::InsufficientFree,
                    "full-request", 0, 0);
  rec.backfillCandidate(1.0, 3, 2, 2, 2, 2, /*started=*/true, WaitReason::HeadOfLine,
                        "full-request", 0, 0);
  rec.depthCutoff(1.0, 4);
  rec.backfillPass(1.0, 2, 4, 9.5, 2, 1, 1);
  rec.reallocDecision(2.0, 1, 4, 2, 0, 64.0, "step-down", 0.4, 0.5);
  rec.migrationDelay(2.0, 1, 0.25, 64.0);
  rec.waitInterval(2, 1.0, 3.0, WaitReason::InsufficientFree);
  WaitAttribution wait;
  wait.byReason[1] = 2000000000;
  wait.totalNs = 2000000000;
  rec.jobSummary(2, "lu-tiny", 1.0, 3.0, 5.0, false, wait);
  rec.endRun(5.0);
  EXPECT_EQ(rec.decisionCount(), 7u);
  EXPECT_EQ(rec.sampleCount(), 0u);
  const std::string json = rec.jsonString();
  for (const char* needle :
       {"\"policy\":\"fcfs-rigid\"", "\"kind\":\"admit\"", "\"kind\":\"backfill_candidate\"",
        "\"kind\":\"depth_cutoff\"", "\"kind\":\"backfill_pass\"", "\"kind\":\"realloc\"",
        "\"kind\":\"migration\"", "\"reason\":\"insufficient_free\"", "\"rule\":\"step-down\"",
        "\"shadow_sec\":9.5", "\"wait_intervals\":", "\"dominant\":\"insufficient_free\"",
        "\"dominant_share\":1", "\"points\":0"})
    EXPECT_NE(json.find(needle), std::string::npos) << needle << " missing in " << json;
  // The explain narrative names the job's dominant reason, human-readable.
  const std::string story = rec.explain(2);
  EXPECT_NE(story.find("dominant wait reason: insufficient free nodes"), std::string::npos)
      << story;
  EXPECT_NE(story.find("arrived"), std::string::npos) << story;
}

TEST(RecorderTest, TimeseriesSamplesPiecewiseConstantState) {
  // Samples fire at k * cadence.  An instant strictly before a state change
  // carries the OLD state (the state is piecewise-constant between change
  // points), and endRun flushes every instant <= makespan with the final
  // state.
  Recorder rec(/*timeseriesCadenceSec=*/1.0);
  rec.beginRun("equipartition", 4, 1);
  rec.stateSample(0.0, 4, 0, 1, 0);  // sample k=0 pending until next change
  rec.stateSample(2.5, 2, 2, 1, 3);  // flushes k=0,1,2 with the OLD state
  rec.endRun(4.0);                   // flushes k=3,4 with the final state
  EXPECT_EQ(rec.sampleCount(), 5u);
  const std::string json = rec.jsonString();
  EXPECT_NE(json.find("\"t_sec\":[0,1,2,3,4]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"used_nodes\":[4,4,4,2,2]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"queue_depth\":[0,0,0,3,3]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cadence_sec\":1"), std::string::npos) << json;
}

TEST(ProgressMeterTest, RateLimitsAndExtrapolates) {
  WallClock clock;
  ProgressMeter meter(clock, /*minIntervalSec=*/3600.0);
  EXPECT_TRUE(meter.due());  // first call always fires
  EXPECT_FALSE(meter.due()); // within the interval
  EXPECT_DOUBLE_EQ(ProgressMeter::etaSec(10.0, 5.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(ProgressMeter::etaSec(10.0, 0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(ProgressMeter::etaSec(10.0, 10.0, 10.0), 0.0);
}

} // namespace
} // namespace dps::obs
