// Model-level behaviour of the simulator: network contention, CPU sharing
// and communication CPU overhead as observed through whole-program runs —
// the properties §4 of the paper claims distinguish it from contention-free
// simulators.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "net/profile.hpp"
#include "test_graphs.hpp"

namespace dps::core {
namespace {

using test::buildFanout;
using test::FanoutSpec;
using test::singleNodeDeployment;
using test::spreadDeployment;
using test::Sum;

net::PlatformProfile analyticProfile() {
  net::PlatformProfile p;
  p.latency = milliseconds(1);
  p.bandwidthBytesPerSec = 1e6;
  p.perStepOverhead = SimDuration::zero();
  p.localDelivery = SimDuration::zero();
  p.cpuPerIncomingTransfer = 0.0;
  p.cpuPerOutgoingTransfer = 0.0;
  return p;
}

flow::Program program(const test::FanoutBuild& b, flow::Deployment d) {
  flow::Program p;
  p.graph = b.graph.get();
  p.deployment = std::move(d);
  p.inputs = b.inputs;
  return p;
}

SimDuration runWith(FanoutSpec spec, SimConfig cfg, bool singleNode = false) {
  auto b = buildFanout(spec);
  SimEngine engine(cfg);
  auto d = singleNode ? singleNodeDeployment(b) : spreadDeployment(b);
  auto result = engine.run(program(b, std::move(d)));
  const auto& sum = dynamic_cast<const Sum&>(*result.outputs.at(0));
  EXPECT_EQ(sum.count, spec.jobs);
  return result.makespan;
}

TEST(EngineModelTest, NetworkContentionStretchesCommHeavyRuns) {
  FanoutSpec spec;
  spec.jobs = 8;
  spec.workers = 4;
  spec.splitCost = SimDuration::zero();
  spec.computeCost = SimDuration::zero();
  spec.mergeCost = SimDuration::zero();
  spec.payloadBytes = 40000; // 40 ms per transfer at 1 MB/s

  SimConfig contended;
  contended.profile = analyticProfile();
  SimConfig uncontended = contended;
  uncontended.networkContention = false;

  const auto tC = runWith(spec, contended);
  const auto tU = runWith(spec, uncontended);
  EXPECT_GT(tC, tU);
}

TEST(EngineModelTest, CpuSharingStretchesColocatedCompute) {
  FanoutSpec spec;
  spec.jobs = 2;
  spec.workers = 2;
  spec.splitCost = SimDuration::zero();
  spec.computeCost = milliseconds(5);
  spec.mergeCost = milliseconds(7);
  spec.payloadBytes = 1000 - 8 - 8 - 64;

  SimConfig shared;
  shared.profile = analyticProfile();
  SimConfig unshared = shared;
  unshared.cpuSharing = false;

  // Single node: both leaf computations overlap and contend for the CPU.
  const auto tShared = runWith(spec, shared, /*singleNode=*/true);
  const auto tUnshared = runWith(spec, unshared, /*singleNode=*/true);
  // Shared: leaves run 0-10ms at half rate, absorbs 10-17, 17-24.
  EXPECT_EQ(tShared, milliseconds(24));
  // Unshared: leaves 0-5ms, absorbs 5-12, 12-19.
  EXPECT_EQ(tUnshared, milliseconds(19));
}

TEST(EngineModelTest, CommCpuOverheadSlowsOverlappingCompute) {
  FanoutSpec spec;
  spec.jobs = 2;
  spec.workers = 1;
  spec.splitCost = SimDuration::zero();
  spec.computeCost = milliseconds(5);
  spec.mergeCost = SimDuration::zero();
  spec.payloadBytes = 1000 - 8 - 8 - 64;

  SimConfig withOverhead;
  withOverhead.profile = analyticProfile();
  withOverhead.profile.cpuPerIncomingTransfer = 0.5;
  withOverhead.profile.cpuPerOutgoingTransfer = 0.1;
  SimConfig noOverhead = withOverhead;
  noOverhead.commCpuOverhead = false;

  const auto tOn = runWith(spec, withOverhead);
  const auto tOff = runWith(spec, noOverhead);
  EXPECT_GT(tOn, tOff);
}

TEST(EngineModelTest, FasterNetworkShortensCommBoundRuns) {
  FanoutSpec spec;
  spec.jobs = 4;
  spec.workers = 2;
  spec.computeCost = microseconds(100);
  spec.payloadBytes = 100000;

  SimConfig slow;
  slow.profile = analyticProfile();
  SimConfig fast = slow;
  fast.profile.bandwidthBytesPerSec = 10e6;

  EXPECT_GT(runWith(spec, slow), runWith(spec, fast));
}

TEST(EngineModelTest, LatencyDominatesSmallMessages) {
  FanoutSpec spec;
  spec.jobs = 16;
  spec.workers = 4;
  spec.computeCost = SimDuration::zero();
  spec.splitCost = SimDuration::zero();
  spec.mergeCost = SimDuration::zero();
  spec.payloadBytes = 16;

  SimConfig lowLat;
  lowLat.profile = analyticProfile();
  lowLat.profile.latency = microseconds(10);
  SimConfig highLat = lowLat;
  highLat.profile.latency = milliseconds(5);

  const auto tLow = runWith(spec, lowLat);
  const auto tHigh = runWith(spec, highLat);
  EXPECT_GT(tHigh, tLow + milliseconds(9)); // at least 2 serialized hops
}

TEST(EngineModelTest, MoreWorkersSpeedUpComputeBoundRuns) {
  FanoutSpec spec;
  spec.jobs = 8;
  spec.workers = 1;
  spec.computeCost = milliseconds(20);
  spec.payloadBytes = 128;

  SimConfig cfg;
  cfg.profile = analyticProfile();
  const auto t1 = runWith(spec, cfg);
  spec.workers = 4;
  const auto t4 = runWith(spec, cfg);
  EXPECT_LT(toSeconds(t4), toSeconds(t1) * 0.5);
}

TEST(EngineModelTest, FidelityLayerAddsRealisticOverheadNotChaos) {
  FanoutSpec spec;
  spec.jobs = 16;
  spec.workers = 4;
  spec.computeCost = milliseconds(2);
  spec.payloadBytes = 4000;

  SimConfig clean;
  clean.profile = analyticProfile();
  SimConfig noisy = clean;
  noisy.fidelity.enabled = true;
  noisy.fidelity.seed = 99;

  const double tClean = toSeconds(runWith(spec, clean));
  const double tNoisy = toSeconds(runWith(spec, noisy));
  EXPECT_GT(tNoisy, tClean); // overheads make reality slower than the model
  EXPECT_LT(tNoisy, tClean * 1.5); // but within a sane envelope
}

} // namespace
} // namespace dps::core
